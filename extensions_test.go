package influcomm

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// TestIndexFileRoundTrip is the acceptance criterion end to end:
// LoadIndex(SaveIndex(BuildIndex(g))) serves TopK answers identical to the
// online influcomm.TopK for every valid (k, γ) on the test graph.
func TestIndexFileRoundTrip(t *testing.T) {
	g := figure1(t)
	ix, err := BuildIndexContext(context.Background(), g, 2)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "fig1.icx")
	if err := SaveIndex(path, ix); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadIndex(path, g)
	if err != nil {
		t.Fatal(err)
	}
	for gamma := 1; gamma <= int(loaded.GammaMax())+1; gamma++ {
		for k := 1; k <= 5; k++ {
			online, err := TopK(g, k, gamma)
			if err != nil {
				t.Fatal(err)
			}
			served, err := loaded.TopK(k, int32(gamma))
			if err != nil {
				t.Fatal(err)
			}
			if len(served) != len(online.Communities) {
				t.Fatalf("k=%d γ=%d: index served %d communities, online %d", k, gamma, len(served), len(online.Communities))
			}
			for i := range served {
				a := fmt.Sprintf("%v:%d:%v", served[i].Influence(), served[i].Keynode(), served[i].Vertices())
				b := fmt.Sprintf("%v:%d:%v", online.Communities[i].Influence(), online.Communities[i].Keynode(), online.Communities[i].Vertices())
				if a != b {
					t.Fatalf("k=%d γ=%d community %d: index %s, online %s", k, gamma, i, a, b)
				}
			}
		}
	}
	// A stale index (different vertex count) is rejected at load time.
	var b Builder
	b.AddVertex(0, 1)
	b.AddVertex(1, 2)
	b.AddEdge(0, 1)
	g2, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LoadIndex(path, g2); err == nil {
		t.Error("loading an index against a graph with a different vertex count: want error")
	}
	if _, err := LoadIndex(filepath.Join(t.TempDir(), "missing.icx"), g); err == nil {
		t.Error("missing index file: want error")
	}
}

// TestSaveIndexAtomic: rebuilding over an existing index file must leave
// exactly one loadable file — no truncation window, no temp litter — and a
// save into an unwritable location must not disturb anything.
func TestSaveIndexAtomic(t *testing.T) {
	g := figure1(t)
	ix, err := BuildIndex(g)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "g.icx")
	if err := SaveIndex(path, ix); err != nil {
		t.Fatal(err)
	}
	if err := SaveIndex(path, ix); err != nil { // overwrite in place
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "g.icx" {
		t.Fatalf("directory holds %v, want exactly g.icx", entries)
	}
	if _, err := LoadIndex(path, g); err != nil {
		t.Fatalf("rewritten index does not load: %v", err)
	}
	if err := SaveIndex(filepath.Join(dir, "nosuchdir", "g.icx"), ix); err == nil {
		t.Error("unwritable destination: want error")
	}
}

func TestPublicIndex(t *testing.T) {
	g := figure1(t)
	ix, err := BuildIndex(g)
	if err != nil {
		t.Fatal(err)
	}
	comms, err := ix.TopK(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	want, err := TopK(g, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(comms) != len(want.Communities) {
		t.Fatalf("index returned %d communities, online %d", len(comms), len(want.Communities))
	}
	for i := range comms {
		if comms[i].Influence() != want.Communities[i].Influence() {
			t.Errorf("community %d influence differs: %v vs %v",
				i, comms[i].Influence(), want.Communities[i].Influence())
		}
	}
}

func TestPublicEditsInvalidateIndex(t *testing.T) {
	g := figure1(t)
	// Delete one K4 edge: the 5-vertex community degrades.
	g2, err := ApplyEdits(g, Edit{RemoveEdges: [][2]int32{{3, 4}}})
	if err != nil {
		t.Fatal(err)
	}
	before, err := TopK(g, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	after, err := TopK(g2, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(after.Communities) > 0 && len(before.Communities) > 0 &&
		after.Communities[0].Influence() == before.Communities[0].Influence() &&
		after.Communities[0].Size() == before.Communities[0].Size() {
		t.Error("removing a community edge changed nothing")
	}
	// Fresh queries on the edited graph still verify.
	if err := VerifyResult(g2, 3, after); err != nil {
		t.Fatalf("edited-graph result fails verification: %v", err)
	}
}

func TestPublicVerify(t *testing.T) {
	g := figure1(t)
	res, err := TopK(g, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyResult(g, 3, res); err != nil {
		t.Fatalf("verifier rejected a correct result: %v", err)
	}
	if err := Verify(g, 3, res.Communities[0]); err != nil {
		t.Fatalf("verifier rejected a correct community: %v", err)
	}
	if Verify(g, 4, res.Communities[0]) == nil {
		t.Error("verifier accepted a community under the wrong γ")
	}
}

func TestPublicQuerySeeds(t *testing.T) {
	g := figure1(t)
	// Seed at the low-weight K4's keynode (rank of original v0 = 9).
	var seed int32 = -1
	for u := int32(0); int(u) < g.NumVertices(); u++ {
		if g.OrigID(u) == 0 {
			seed = u
		}
	}
	rw, res, err := TopKNearQuery(g, []int32{seed}, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Communities) == 0 {
		t.Fatal("no community near the seed")
	}
	// The top community must contain the seed's clique {0,1,5,6}.
	members := map[int32]bool{}
	for _, v := range res.Communities[0].Vertices() {
		members[rw.OrigID(v)] = true
	}
	for _, want := range []int32{0, 1, 5, 6} {
		if !members[want] {
			t.Errorf("query-centric community misses %d: %v", want, members)
		}
	}
	if _, _, err := TopKNearQuery(g, nil, 1, 3); err == nil {
		t.Error("no seeds: want error")
	}
}
