package influcomm

import "testing"

func TestPublicIndex(t *testing.T) {
	g := figure1(t)
	ix, err := BuildIndex(g)
	if err != nil {
		t.Fatal(err)
	}
	comms, err := ix.TopK(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	want, err := TopK(g, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(comms) != len(want.Communities) {
		t.Fatalf("index returned %d communities, online %d", len(comms), len(want.Communities))
	}
	for i := range comms {
		if comms[i].Influence() != want.Communities[i].Influence() {
			t.Errorf("community %d influence differs: %v vs %v",
				i, comms[i].Influence(), want.Communities[i].Influence())
		}
	}
}

func TestPublicEditsInvalidateIndex(t *testing.T) {
	g := figure1(t)
	// Delete one K4 edge: the 5-vertex community degrades.
	g2, err := ApplyEdits(g, Edit{RemoveEdges: [][2]int32{{3, 4}}})
	if err != nil {
		t.Fatal(err)
	}
	before, err := TopK(g, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	after, err := TopK(g2, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(after.Communities) > 0 && len(before.Communities) > 0 &&
		after.Communities[0].Influence() == before.Communities[0].Influence() &&
		after.Communities[0].Size() == before.Communities[0].Size() {
		t.Error("removing a community edge changed nothing")
	}
	// Fresh queries on the edited graph still verify.
	if err := VerifyResult(g2, 3, after); err != nil {
		t.Fatalf("edited-graph result fails verification: %v", err)
	}
}

func TestPublicVerify(t *testing.T) {
	g := figure1(t)
	res, err := TopK(g, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyResult(g, 3, res); err != nil {
		t.Fatalf("verifier rejected a correct result: %v", err)
	}
	if err := Verify(g, 3, res.Communities[0]); err != nil {
		t.Fatalf("verifier rejected a correct community: %v", err)
	}
	if Verify(g, 4, res.Communities[0]) == nil {
		t.Error("verifier accepted a community under the wrong γ")
	}
}

func TestPublicQuerySeeds(t *testing.T) {
	g := figure1(t)
	// Seed at the low-weight K4's keynode (rank of original v0 = 9).
	var seed int32 = -1
	for u := int32(0); int(u) < g.NumVertices(); u++ {
		if g.OrigID(u) == 0 {
			seed = u
		}
	}
	rw, res, err := TopKNearQuery(g, []int32{seed}, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Communities) == 0 {
		t.Fatal("no community near the seed")
	}
	// The top community must contain the seed's clique {0,1,5,6}.
	members := map[int32]bool{}
	for _, v := range res.Communities[0].Vertices() {
		members[rw.OrigID(v)] = true
	}
	for _, want := range []int32{0, 1, 5, 6} {
		if !members[want] {
			t.Errorf("query-centric community misses %d: %v", want, members)
		}
	}
	if _, _, err := TopKNearQuery(g, nil, 1, 3); err == nil {
		t.Error("no seeds: want error")
	}
}
