package influcomm

// This file is the public surface of the distributed serving tier
// (internal/cluster): graph partitioning for shard deployment and the
// scatter-gather coordinator client. The serving processes themselves are
// cmd/icserver (shards) and cmd/iccoord (coordinator); docs/CLUSTER.md
// specifies the wire protocol and docs/OPERATIONS.md the deployment runbook.

import (
	"influcomm/internal/cluster"
	"influcomm/internal/graph"
)

// ClusterShard names one partition of a dataset and its replica URLs.
type ClusterShard = cluster.Shard

// ClusterResult is one merged scatter-gather answer: the global top-k, the
// per-shard snapshot epoch vector, and the degradation markers.
type ClusterResult = cluster.Result

// ClusterCommunity is the wire shape of one community, shared by shard
// streams, single-node /v1/topk responses, and merged coordinator answers.
type ClusterCommunity = cluster.Community

// ClusterOption configures a coordinator built with NewClusterCoordinator.
type ClusterOption = cluster.Option

// ClusterCoordinator scatters top-k queries across icserver shards and
// merges their progressive decreasing-influence streams into the global
// answer, stopping each shard as soon as the k best global results dominate
// its next candidate. Safe for concurrent use.
type ClusterCoordinator = cluster.Coordinator

// Query semantics accepted by shards and coordinators.
const (
	// ClusterModeCore is the paper's default containment semantics.
	ClusterModeCore = cluster.ModeCore
	// ClusterModeNonContainment keeps only communities with no nested
	// sub-community.
	ClusterModeNonContainment = cluster.ModeNonContainment
	// ClusterModeTruss uses the γ-truss cohesiveness measure.
	ClusterModeTruss = cluster.ModeTruss
)

// NewClusterCoordinator builds a coordinator over the given shard topology.
// Results merged from shards built with PartitionGraph are byte-identical to
// single-node answers over the unpartitioned graph.
func NewClusterCoordinator(shards []ClusterShard, opts ...ClusterOption) (*ClusterCoordinator, error) {
	return cluster.NewCoordinator(shards, opts...)
}

// WithClusterShardTimeout bounds each shard attempt; a replica exceeding it
// is failed over like a dead one. A non-positive duration keeps the 30s
// default — a shard attempt always has a bound.
var WithClusterShardTimeout = cluster.WithShardTimeout

// WithClusterPartialResults selects degraded serving: when a shard exhausts
// its replicas the query continues over the survivors and the result is
// marked partial. The default is strict — any shard failure fails the query.
var WithClusterPartialResults = cluster.WithPartialResults

// WithClusterHTTPClient substitutes the HTTP client used for shard streams
// and health probes.
var WithClusterHTTPClient = cluster.WithHTTPClient

// WithClusterHealthProbes enables active background health probing of every
// replica's /healthz at the given interval, maintaining up/ready state and a
// latency EWMA that drive health-aware replica selection. A non-positive
// interval disables probing (the default); a non-positive timeout keeps the
// 1s default.
var WithClusterHealthProbes = cluster.WithHealthProbes

// WithClusterBreaker configures the per-replica circuit breakers: threshold
// consecutive failures open a breaker, and after cooldown it admits a
// half-open trial. Zero threshold disables breakers; the defaults are 5
// failures and a 5s cooldown.
var WithClusterBreaker = cluster.WithBreaker

// WithClusterHedge enables hedged stream opens: when a shard's header has
// not arrived within delay, a second open races on the next admitted
// replica and the first header wins. Zero (the default) disables hedging.
var WithClusterHedge = cluster.WithHedge

// WithClusterOpenRetries sets how many extra jittered-backoff passes over a
// shard's replica list a query makes after the first, before the shard is
// declared failed. The default is 1 extra pass.
var WithClusterOpenRetries = cluster.WithOpenRetries

// ClusterShardStatus reports one shard's per-replica resilience state, as
// returned by ClusterCoordinator.Status and /v1/cluster.
type ClusterShardStatus = cluster.ShardStatus

// ClusterReplicaStatus is one replica's resilience state: breaker state,
// probe results, and the latency EWMA (documented field-by-field in
// docs/CLUSTER.md).
type ClusterReplicaStatus = cluster.ReplicaStatus

// PartitionGraph splits g into at most n shard graphs whose vertex sets are
// unions of whole connected components, balanced by vertex count. Every
// influential community (core or truss) is connected, so it lives entirely
// inside one shard; serving the shards behind a coordinator reproduces the
// unpartitioned graph's answers exactly. Fewer than n graphs are returned
// when g has fewer components than n — a shard is never empty.
func PartitionGraph(g *Graph, n int) ([]*Graph, error) {
	return cluster.Partition(g, n)
}

// Subgraph extracts the subgraph of g induced by the given vertices (weight
// ranks, strictly ascending), preserving weights, original IDs, labels, and
// relative rank order.
func Subgraph(g *Graph, vertices []int32) (*Graph, error) {
	return graph.InducedSubgraph(g, vertices)
}
