package influcomm

// This file is the public surface of the distributed serving tier
// (internal/cluster): graph partitioning for shard deployment and the
// scatter-gather coordinator client. The serving processes themselves are
// cmd/icserver (shards) and cmd/iccoord (coordinator); docs/CLUSTER.md
// specifies the wire protocol and docs/OPERATIONS.md the deployment runbook.

import (
	"influcomm/internal/cluster"
	"influcomm/internal/graph"
)

// ClusterShard names one partition of a dataset and its replica URLs.
type ClusterShard = cluster.Shard

// ClusterResult is one merged scatter-gather answer: the global top-k, the
// per-shard snapshot epoch vector, and the degradation markers.
type ClusterResult = cluster.Result

// ClusterCommunity is the wire shape of one community, shared by shard
// streams, single-node /v1/topk responses, and merged coordinator answers.
type ClusterCommunity = cluster.Community

// ClusterOption configures a coordinator built with NewClusterCoordinator.
type ClusterOption = cluster.Option

// ClusterCoordinator scatters top-k queries across icserver shards and
// merges their progressive decreasing-influence streams into the global
// answer, stopping each shard as soon as the k best global results dominate
// its next candidate. Safe for concurrent use.
type ClusterCoordinator = cluster.Coordinator

// Query semantics accepted by shards and coordinators.
const (
	// ClusterModeCore is the paper's default containment semantics.
	ClusterModeCore = cluster.ModeCore
	// ClusterModeNonContainment keeps only communities with no nested
	// sub-community.
	ClusterModeNonContainment = cluster.ModeNonContainment
	// ClusterModeTruss uses the γ-truss cohesiveness measure.
	ClusterModeTruss = cluster.ModeTruss
)

// NewClusterCoordinator builds a coordinator over the given shard topology.
// Results merged from shards built with PartitionGraph are byte-identical to
// single-node answers over the unpartitioned graph.
func NewClusterCoordinator(shards []ClusterShard, opts ...ClusterOption) (*ClusterCoordinator, error) {
	return cluster.NewCoordinator(shards, opts...)
}

// WithClusterShardTimeout bounds each shard attempt; a replica exceeding it
// is failed over like a dead one. Zero disables the per-shard bound.
var WithClusterShardTimeout = cluster.WithShardTimeout

// WithClusterPartialResults selects degraded serving: when a shard exhausts
// its replicas the query continues over the survivors and the result is
// marked partial. The default is strict — any shard failure fails the query.
var WithClusterPartialResults = cluster.WithPartialResults

// WithClusterHTTPClient substitutes the HTTP client used for shard streams.
var WithClusterHTTPClient = cluster.WithHTTPClient

// PartitionGraph splits g into at most n shard graphs whose vertex sets are
// unions of whole connected components, balanced by vertex count. Every
// influential community (core or truss) is connected, so it lives entirely
// inside one shard; serving the shards behind a coordinator reproduces the
// unpartitioned graph's answers exactly. Fewer than n graphs are returned
// when g has fewer components than n — a shard is never empty.
func PartitionGraph(g *Graph, n int) ([]*Graph, error) {
	return cluster.Partition(g, n)
}

// Subgraph extracts the subgraph of g induced by the given vertices (weight
// ranks, strictly ascending), preserving weights, original IDs, labels, and
// relative rank order.
func Subgraph(g *Graph, vertices []int32) (*Graph, error) {
	return graph.InducedSubgraph(g, vertices)
}
