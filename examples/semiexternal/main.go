// Semi-external scenario: the graph's edges live on disk and only
// per-vertex data fits in memory (the paper's §3.1 remark and Eval-VI).
// LocalSearch-SE answers a top-k query by reading just a prefix of the edge
// file, while the semi-external OnlineAll must ingest all of it.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"influcomm"
	"influcomm/internal/gen"
	"influcomm/internal/semiext"
)

func main() {
	// Sized so the deliberately slow global baseline finishes in seconds;
	// scale n up to watch the gap widen (the benchmark suite runs this
	// comparison at 700k+ edges, where OnlineAll-SE needs minutes).
	raw, err := gen.PreferentialAttachment(10000, 8, 7)
	if err != nil {
		log.Fatal(err)
	}
	g, err := influcomm.PageRankWeights(raw)
	if err != nil {
		log.Fatal(err)
	}

	dir, err := os.MkdirTemp("", "influcomm-example-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "graph.edges")
	if err := semiext.WriteEdgeFile(path, g); err != nil {
		log.Fatal(err)
	}
	info, _ := os.Stat(path)
	fmt.Printf("edge file: %d vertices, %d edges, %.1f MB on disk\n\n",
		g.NumVertices(), g.NumEdges(), float64(info.Size())/(1<<20))

	const k, gamma = 10, 8

	start := time.Now()
	comms, st, err := semiext.LocalSearchSE(path, k, gamma)
	if err != nil {
		log.Fatal(err)
	}
	lsTime := time.Since(start)
	fmt.Printf("LocalSearch-SE: %d communities in %.1fms\n", len(comms), float64(lsTime)/1e6)
	fmt.Printf("  read %.2f%% of the edge payload (%d bytes), loaded %.2f%% of edges\n\n",
		100*float64(st.BytesRead)/float64(4*g.NumEdges()), st.BytesRead, 100*st.VisitedFraction)

	start = time.Now()
	_, stOA, err := semiext.OnlineAllSE(path, k, gamma)
	if err != nil {
		log.Fatal(err)
	}
	oaTime := time.Since(start)
	fmt.Printf("OnlineAll-SE:   same answer in %.1fms\n", float64(oaTime)/1e6)
	fmt.Printf("  read 100%% of the edge payload (%d bytes), loaded 100%% of edges\n\n", stOA.BytesRead)

	fmt.Printf("speedup %.1fx, visited-graph ratio %.3f (the paper's Figures 16-17)\n",
		float64(oaTime)/float64(lsTime), st.VisitedFraction/stOA.VisitedFraction)
}
