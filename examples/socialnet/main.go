// Social network scenario: find the most influential cohesive circles in a
// large synthetic social graph, progressively — the use case that motivates
// LocalSearch-P in the paper's introduction (detecting communities of
// celebrities / influential people without scanning the whole network, and
// without choosing k up front).
//
// The graph is a 50k-vertex preferential-attachment network weighted by
// PageRank, the exact weighting of the paper's experiments. Results stream
// in decreasing influence order; we stop as soon as we have seen five
// circles whose members are all in the global top 1% by influence.
package main

import (
	"fmt"
	"log"
	"time"

	"influcomm"
	"influcomm/internal/gen"
)

func main() {
	raw, err := gen.PreferentialAttachment(50000, 10, 2026)
	if err != nil {
		log.Fatal(err)
	}
	g, err := influcomm.PageRankWeights(raw)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("social graph: %d users, %d friendships\n", g.NumVertices(), g.NumEdges())

	const gamma = 8 // every member has >= 8 friends inside the circle
	topPercentile := int32(g.NumVertices() / 100)

	start := time.Now()
	found := 0
	stats, err := influcomm.Stream(g, gamma, func(c *influcomm.Community) bool {
		found++
		elite := true
		for _, v := range c.Vertices() {
			if v >= topPercentile { // rank >= 1% boundary
				elite = false
				break
			}
		}
		marker := ""
		if elite {
			marker = "  <- all members in global top 1%"
		}
		fmt.Printf("circle #%d after %6.2fms: influence %.2e, %d members%s\n",
			found, float64(time.Since(start))/float64(time.Millisecond),
			c.Influence(), c.Size(), marker)
		return found < 5
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nstopped after %d circles; the search accessed %d of %d vertices (%d round(s))\n",
		found, stats.FinalPrefix, g.NumVertices(), stats.Rounds)
	fmt.Println("a global algorithm (OnlineAll/Forward) would have scanned the entire graph")
}
