// Quickstart: build a small weighted graph with the public API and run a
// top-k influential community query. This is the Figure 1 graph of the
// paper: with γ = 3 it holds exactly two influential communities.
package main

import (
	"fmt"
	"log"

	"influcomm"
)

func main() {
	// Vertices v0..v9 with influence weights 10..19 (e.g. follower counts).
	var b influcomm.Builder
	for id := int32(0); id < 10; id++ {
		b.AddVertex(id, float64(10+id))
	}
	for _, e := range [][2]int32{
		{0, 1}, {0, 5}, {0, 6}, {1, 5}, {1, 6}, {5, 6}, // community A
		{3, 4}, {3, 7}, {3, 8}, {4, 7}, {4, 8}, {7, 8}, // community B core
		{3, 9}, {7, 9}, {8, 9}, // v9 joins community B
		{1, 2}, {2, 3}, // v2 bridges A and B
	} {
		b.AddEdge(e[0], e[1])
	}
	g, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	// Top-2 influential 3-communities: every member has >= 3 in-community
	// connections, reported by decreasing influence (minimum member weight).
	res, err := influcomm.TopK(g, 2, 3)
	if err != nil {
		log.Fatal(err)
	}
	for i, c := range res.Communities {
		fmt.Printf("community #%d: influence %.0f, members", i+1, c.Influence())
		for _, v := range c.Vertices() {
			fmt.Printf(" v%d", g.OrigID(v))
		}
		fmt.Println()
	}
	fmt.Printf("LocalSearch looked at %d of %d vertices in %d round(s)\n",
		res.Stats.FinalPrefix, g.NumVertices(), res.Stats.Rounds)
}
