// Query-centric search (the extension of the paper's footnote 1): instead
// of a global influence vector, vertex weights are computed online as the
// reciprocal shortest distance to user-supplied seed vertices. The top
// communities are then the most cohesive groups closest to the seeds —
// an ad-hoc weight vector that no precomputed index could serve, which is
// exactly the scenario motivating index-free local search.
package main

import (
	"fmt"
	"log"

	"influcomm"
	"influcomm/internal/gen"
)

func main() {
	g, err := gen.SocialNetwork(20000, 8, 0.5, 99)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("graph: %d vertices, %d edges\n", g.NumVertices(), g.NumEdges())

	// Two seed users somewhere in the middle of the network.
	seeds := []int32{1234, 5678}
	rw, res, err := influcomm.TopKNearQuery(g, seeds, 3, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("top-3 influential 5-communities around seeds %v:\n", seeds)
	for i, c := range res.Communities {
		fmt.Printf("  #%d: %d members, influence %.4f (max seed distance %d hops)\n",
			i+1, c.Size(), c.Influence(), int(1/c.Influence()-1))
		// Map a few members back to the original graph's IDs.
		vs := c.Vertices()
		if len(vs) > 6 {
			vs = vs[:6]
		}
		fmt.Printf("      members (original IDs):")
		for _, v := range vs {
			fmt.Printf(" %d", rw.OrigID(v))
		}
		fmt.Println(" ...")
	}
	fmt.Printf("\nthe search accessed %d of %d vertices (%d rounds) — no index, ad-hoc weights\n",
		res.Stats.FinalPrefix, g.NumVertices(), res.Stats.Rounds)
}
