// Collaboration network case study (the paper's Eval-IX on DBLP): compare
// the top-1 influential γ-community with the top-1 influential γ-truss
// community on a co-author network, and contrast both with the plain
// (weight-oblivious) 5-core community, which is far larger.
package main

import (
	"fmt"
	"log"

	"influcomm"
	"influcomm/internal/core"
	"influcomm/internal/gen"
)

func main() {
	raw, err := gen.Collab(120, 14, 2026)
	if err != nil {
		log.Fatal(err)
	}
	g, err := influcomm.PageRankWeights(raw)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("co-author network: %d researchers, %d collaborations\n\n", g.NumVertices(), g.NumEdges())

	// Top-1 influential 5-community: a group where everyone has co-authored
	// with at least 5 others in the group, maximizing the least influential
	// member's PageRank.
	res, err := influcomm.TopK(g, 1, 5)
	if err != nil {
		log.Fatal(err)
	}
	if len(res.Communities) == 0 {
		log.Fatal("no influential 5-community found")
	}
	top := res.Communities[0]
	fmt.Printf("top-1 influential 5-community (%d members):\n", top.Size())
	for _, v := range top.Vertices() {
		fmt.Printf("  %-28s pagerank rank %d\n", g.Label(v), v+1)
	}

	// Top-1 influential 6-truss community: denser (every co-authorship is
	// embedded in >= 4 triangles) but typically less influential, as the
	// paper observes.
	trussComms, err := influcomm.TopKTruss(g, 1, 6)
	if err != nil {
		log.Fatal(err)
	}
	if len(trussComms) > 0 {
		tt := trussComms[0]
		fmt.Printf("\ntop-1 influential 6-truss community (%d members):\n", tt.Size())
		for _, v := range tt.Vertices() {
			fmt.Printf("  %-28s pagerank rank %d\n", g.Label(v), v+1)
		}
		fmt.Printf("\ntruss influence %.3e <= core influence %.3e: the harder constraint\n",
			tt.Influence(), top.Influence())
		fmt.Println("admits smaller, denser, but less influential groups (paper, Eval-IX)")
	}

	// The weight-oblivious 5-core community around the same keynode shows
	// why influence filtering matters (the paper's Figure 21: 1148 vertices
	// vs the 14 of Figure 20(a)).
	eng := core.NewEngine(g, 5)
	eng.Peel(g.NumVertices())
	if eng.Alive(top.Keynode()) {
		comp := eng.Component(top.Keynode())
		fmt.Printf("\nplain 5-core community of the same keynode: %d researchers\n", len(comp))
		fmt.Printf("influence filtering refined it to the %d core members above\n", top.Size())
	}
}
