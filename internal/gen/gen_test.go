package gen

import (
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give the same stream")
		}
	}
	c := NewRNG(43)
	same := true
	a42 := NewRNG(42)
	for i := 0; i < 10; i++ {
		if a42.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced the same stream")
	}
}

func TestRNGRanges(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 1000; i++ {
		if v := r.Intn(13); v < 0 || v >= 13 {
			t.Fatalf("Intn out of range: %d", v)
		}
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	r.Intn(0)
}

func TestPerm(t *testing.T) {
	r := NewRNG(9)
	p := r.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || int(v) >= 20 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestPreferentialAttachmentShape(t *testing.T) {
	g, err := PreferentialAttachment(2000, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 2000 {
		t.Fatalf("n = %d", g.NumVertices())
	}
	// Roughly m edges per vertex (duplicates reduce the count slightly).
	if g.NumEdges() < 6000 || g.NumEdges() > 8000 {
		t.Errorf("edge count %d outside expected band", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("invalid graph: %v", err)
	}
	// Heavy tail: the max degree should far exceed the average.
	s := g.Statistics()
	if float64(s.MaxDegree) < 4*s.AvgDegree {
		t.Errorf("no heavy tail: dmax=%d davg=%v", s.MaxDegree, s.AvgDegree)
	}
}

// clustering computes the global clustering coefficient (3×triangles over
// connected triples) by brute force; test-only.
func clustering(tb testing.TB, seed uint64, triangleP float64) float64 {
	tb.Helper()
	g, err := SocialNetwork(800, 6, triangleP, seed)
	if err != nil {
		tb.Fatal(err)
	}
	var triangles, triples int64
	n := g.NumVertices()
	adj := make(map[int64]bool)
	for u := int32(0); int(u) < n; u++ {
		for _, v := range g.Neighbors(u) {
			adj[int64(u)*int64(n)+int64(v)] = true
		}
	}
	for u := int32(0); int(u) < n; u++ {
		nb := g.Neighbors(u)
		d := int64(len(nb))
		triples += d * (d - 1) / 2
		for i := 0; i < len(nb); i++ {
			for j := i + 1; j < len(nb); j++ {
				if adj[int64(nb[i])*int64(n)+int64(nb[j])] {
					triangles++
				}
			}
		}
	}
	if triples == 0 {
		return 0
	}
	return float64(triangles) / float64(triples)
}

func TestSocialNetworkClustering(t *testing.T) {
	low := clustering(t, 3, 0)
	high := clustering(t, 3, 0.7)
	if high <= low {
		t.Errorf("triangle closure did not raise clustering: %v vs %v", low, high)
	}
	if high < 0.05 {
		t.Errorf("clustering %v too low for a social stand-in", high)
	}
}

func TestSocialNetworkValidation(t *testing.T) {
	if _, err := SocialNetwork(0, 3, 0.5, 1); err == nil {
		t.Error("n=0: want error")
	}
	if _, err := SocialNetwork(10, 0, 0.5, 1); err == nil {
		t.Error("m=0: want error")
	}
	if _, err := SocialNetwork(10, 2, 1.5, 1); err == nil {
		t.Error("p>1: want error")
	}
}

func TestGNM(t *testing.T) {
	g, err := GNM(100, 300, 5)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 300 {
		t.Errorf("GNM edges = %d, want 300", g.NumEdges())
	}
	// Requesting more edges than possible caps at the complete graph.
	g2, err := GNM(5, 100, 5)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != 10 {
		t.Errorf("overfull GNM edges = %d, want 10", g2.NumEdges())
	}
	if _, err := GNM(1, 0, 1); err == nil {
		t.Error("n=1: want error")
	}
}

func TestPlantedCommunities(t *testing.T) {
	g, err := PlantedCommunities(5, 10, 0.8, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 50 {
		t.Errorf("n = %d, want 50", g.NumVertices())
	}
	if _, err := PlantedCommunities(0, 10, 0.5, 1, 2); err == nil {
		t.Error("0 communities: want error")
	}
	if _, err := PlantedCommunities(3, 1, 0.5, 1, 2); err == nil {
		t.Error("size-1 communities: want error")
	}
}

func TestPlantedArchipelago(t *testing.T) {
	g, err := PlantedArchipelago(6, 12, 0.8, 5)
	if err != nil {
		t.Fatal(err)
	}
	// 6 blocks of 12 plus 5 connectors.
	if g.NumVertices() != 6*12+5 {
		t.Fatalf("n = %d, want %d", g.NumVertices(), 6*12+5)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Connectors have degree 2 and the smallest weights (last ranks).
	for r := g.NumVertices() - 5; r < g.NumVertices(); r++ {
		if d := g.Degree(int32(r)); d != 2 {
			t.Errorf("connector rank %d degree = %d, want 2", r, d)
		}
	}
	if _, err := PlantedArchipelago(0, 12, 0.8, 5); err == nil {
		t.Error("0 blocks: want error")
	}
}

func TestCollab(t *testing.T) {
	g, err := Collab(20, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !g.HasLabels() {
		t.Fatal("collab graph must carry researcher names")
	}
	seen := map[string]bool{}
	for u := int32(0); int(u) < g.NumVertices(); u++ {
		name := g.Label(u)
		if name == "" {
			t.Fatalf("vertex %d has empty label", u)
		}
		if seen[name] {
			t.Fatalf("duplicate researcher name %q", name)
		}
		seen[name] = true
	}
	if _, err := Collab(0, 8, 3); err == nil {
		t.Error("0 groups: want error")
	}
	if _, err := Collab(5, 2, 3); err == nil {
		t.Error("tiny groups: want error")
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	f := func(seed uint64) bool {
		a, err1 := SocialNetwork(200, 4, 0.5, seed)
		b, err2 := SocialNetwork(200, 4, 0.5, seed)
		if err1 != nil || err2 != nil {
			return false
		}
		if a.NumEdges() != b.NumEdges() {
			return false
		}
		for u := int32(0); int(u) < a.NumVertices(); u++ {
			if a.Weight(u) != b.Weight(u) || a.Degree(u) != b.Degree(u) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestRandomNeverPanics(t *testing.T) {
	for n := 1; n < 20; n++ {
		g := Random(n, 3, uint64(n))
		if g.NumVertices() < 1 {
			t.Fatalf("Random(%d) produced empty graph", n)
		}
	}
}
