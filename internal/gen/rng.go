// Package gen provides deterministic synthetic graph generators used as
// stand-ins for the paper's real-world datasets (SNAP and LAW graphs are
// not available offline; see DESIGN.md §4 for the substitution rationale).
package gen

// RNG is a small, fast, deterministic splitmix64 generator. It avoids any
// dependence on math/rand internals so generated graphs are stable across
// Go releases.
type RNG struct{ state uint64 }

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next pseudo-random value.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Intn returns a uniform value in [0, n). n must be positive.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("gen: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int32 {
	p := make([]int32, n)
	for i := range p {
		p[i] = int32(i)
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
