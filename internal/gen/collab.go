package gen

import (
	"fmt"

	"influcomm/internal/graph"
)

// Collab generates a deterministic collaboration network resembling the
// DBLP co-author graph of the paper's case study (Eval-IX): research groups
// of varying size with dense internal co-authorship, sparser cross-group
// collaborations, and a few very prolific hub researchers. Vertices carry
// synthetic researcher names so the case study can print readable
// communities like Figure 20.
func Collab(numGroups, meanGroupSize int, seed uint64) (*graph.Graph, error) {
	if numGroups < 1 || meanGroupSize < 3 {
		return nil, fmt.Errorf("gen: implausible collaboration shape %d groups of ~%d", numGroups, meanGroupSize)
	}
	r := NewRNG(seed)
	var b graph.Builder
	id := int32(0)
	type group struct{ members []int32 }
	groups := make([]group, numGroups)
	for gi := range groups {
		size := meanGroupSize/2 + r.Intn(meanGroupSize)
		if size < 3 {
			size = 3
		}
		for i := 0; i < size; i++ {
			b.AddLabeledVertex(id, r.Float64(), researcherName(int(id)))
			groups[gi].members = append(groups[gi].members, id)
			id++
		}
	}
	// Dense intra-group collaboration.
	for _, gr := range groups {
		for i := 0; i < len(gr.members); i++ {
			for j := i + 1; j < len(gr.members); j++ {
				if r.Float64() < 0.6 {
					b.AddEdge(gr.members[i], gr.members[j])
				}
			}
		}
	}
	// Cross-group collaborations: each group collaborates with a few others.
	for gi := range groups {
		for t := 0; t < 3; t++ {
			gj := r.Intn(numGroups)
			if gj == gi {
				continue
			}
			u := groups[gi].members[r.Intn(len(groups[gi].members))]
			v := groups[gj].members[r.Intn(len(groups[gj].members))]
			b.AddEdge(u, v)
		}
	}
	// Prolific hubs: a handful of researchers who co-author across many groups.
	numHubs := numGroups/10 + 1
	for h := 0; h < numHubs; h++ {
		b.AddLabeledVertex(id, r.Float64(), researcherName(int(id)))
		for t := 0; t < numGroups/2+3; t++ {
			gr := groups[r.Intn(numGroups)]
			b.AddEdge(id, gr.members[r.Intn(len(gr.members))])
		}
		id++
	}
	return b.Build()
}

var firstNames = []string{
	"Ada", "Alan", "Barbara", "Claude", "Donald", "Edsger", "Frances", "Grace",
	"Hedy", "Ivan", "John", "Katherine", "Leslie", "Margaret", "Niklaus",
	"Olga", "Peter", "Radia", "Shafi", "Tim", "Ursula", "Vint", "Whitfield",
	"Xiao", "Yukihiro", "Zhenyu",
}

var lastNames = []string{
	"Lovelace", "Turing", "Liskov", "Shannon", "Knuth", "Dijkstra", "Allen",
	"Hopper", "Lamarr", "Sutherland", "Backus", "Johnson", "Lamport",
	"Hamilton", "Wirth", "Tausova", "Naur", "Perlman", "Goldwasser",
	"Berners-Lee", "Franklin", "Cerf", "Diffie", "Wang", "Matsumoto", "Chen",
}

func researcherName(id int) string {
	f := firstNames[id%len(firstNames)]
	l := lastNames[(id/len(firstNames))%len(lastNames)]
	gen := id / (len(firstNames) * len(lastNames))
	if gen == 0 {
		return f + " " + l
	}
	return fmt.Sprintf("%s %s %d", f, l, gen+1)
}
