package gen

import (
	"fmt"

	"influcomm/internal/graph"
)

// PreferentialAttachment generates a Barabási–Albert-style graph with n
// vertices where each new vertex attaches to edgesPerVertex existing
// vertices chosen proportionally to degree. The result has a heavy-tailed
// degree distribution like the paper's web and social graphs. Vertex
// weights are initialized uniformly at random (callers typically replace
// them with PageRank; see pagerank.Reweight).
func PreferentialAttachment(n, edgesPerVertex int, seed uint64) (*graph.Graph, error) {
	return SocialNetwork(n, edgesPerVertex, 0, seed)
}

// SocialNetwork generates a Holme–Kim graph: preferential attachment where
// each additional link of a new vertex closes a triangle with probability
// triangleP. With triangleP = 0 this is plain Barabási–Albert; values
// around 0.5 yield the high clustering coefficients of real social and web
// graphs, which the paper's truss experiments depend on.
func SocialNetwork(n, edgesPerVertex int, triangleP float64, seed uint64) (*graph.Graph, error) {
	if n <= 0 {
		return nil, fmt.Errorf("gen: need positive n, got %d", n)
	}
	if edgesPerVertex < 1 {
		return nil, fmt.Errorf("gen: need edgesPerVertex >= 1, got %d", edgesPerVertex)
	}
	if triangleP < 0 || triangleP > 1 {
		return nil, fmt.Errorf("gen: triangle probability %v outside [0,1]", triangleP)
	}
	r := NewRNG(seed)
	var b graph.Builder
	for id := 0; id < n; id++ {
		b.AddVertex(int32(id), r.Float64())
	}
	// targets holds one entry per edge endpoint so far; sampling an index
	// uniformly samples a vertex proportionally to its degree. adj records
	// neighbor lists for the triangle-closure step.
	m0 := edgesPerVertex + 1
	if m0 > n {
		m0 = n
	}
	targets := make([]int32, 0, 2*n*edgesPerVertex)
	adj := make([][]int32, n)
	link := func(u, v int32) {
		b.AddEdge(u, v)
		targets = append(targets, u, v)
		adj[u] = append(adj[u], v)
		adj[v] = append(adj[v], u)
	}
	for u := 1; u < m0; u++ {
		link(int32(u), int32(u-1))
	}
	for u := m0; u < n; u++ {
		prev := int32(-1)
		for t := 0; t < edgesPerVertex; t++ {
			var v int32
			if prev >= 0 && len(adj[prev]) > 0 && r.Float64() < triangleP {
				// Triangle closure: link to a neighbor of the previous
				// target.
				v = adj[prev][r.Intn(len(adj[prev]))]
			} else {
				v = targets[r.Intn(len(targets))]
			}
			if int(v) == u {
				v = int32(r.Intn(u))
			}
			link(int32(u), v)
			prev = v
		}
	}
	return b.Build()
}

// GNM generates a uniform random graph with n vertices and (up to) m
// distinct edges, with uniform random weights.
func GNM(n int, m int64, seed uint64) (*graph.Graph, error) {
	if n <= 1 {
		return nil, fmt.Errorf("gen: GNM needs n >= 2, got %d", n)
	}
	maxEdges := int64(n) * int64(n-1) / 2
	if m > maxEdges {
		m = maxEdges
	}
	r := NewRNG(seed)
	var b graph.Builder
	for id := 0; id < n; id++ {
		b.AddVertex(int32(id), r.Float64())
	}
	seen := make(map[int64]bool, m)
	for int64(len(seen)) < m {
		u := int32(r.Intn(n))
		v := int32(r.Intn(n))
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		key := int64(u)*int64(n) + int64(v)
		if seen[key] {
			continue
		}
		seen[key] = true
		b.AddEdge(u, v)
	}
	return b.Build()
}

// PlantedCommunities generates numComm dense groups of commSize vertices
// each (internal edge probability pIn) connected by a sparse random
// background (expected pOutDeg inter-community edges per vertex). Weights
// are assigned so that community c has a weight band centered on its index,
// giving a known influence ordering that tests can assert against.
func PlantedCommunities(numComm, commSize int, pIn float64, pOutDeg float64, seed uint64) (*graph.Graph, error) {
	if numComm < 1 || commSize < 2 {
		return nil, fmt.Errorf("gen: implausible planted-community shape %dx%d", numComm, commSize)
	}
	r := NewRNG(seed)
	n := numComm * commSize
	var b graph.Builder
	for id := 0; id < n; id++ {
		c := id / commSize
		// Higher community index => higher weight band; jitter within band.
		b.AddVertex(int32(id), float64(c)+0.9*r.Float64())
	}
	for c := 0; c < numComm; c++ {
		base := c * commSize
		for i := 0; i < commSize; i++ {
			for j := i + 1; j < commSize; j++ {
				if r.Float64() < pIn {
					b.AddEdge(int32(base+i), int32(base+j))
				}
			}
		}
	}
	nOut := int64(float64(n) * pOutDeg / 2)
	for e := int64(0); e < nOut; e++ {
		u := int32(r.Intn(n))
		v := int32(r.Intn(n))
		if u != v {
			b.AddEdge(u, v)
		}
	}
	return b.Build()
}

// PlantedArchipelago generates numComm dense blocks (internal edge
// probability pIn) that are joined into one connected graph only through
// low-degree connector vertices. Because every connector has degree 2, the
// γ-core of the graph (for γ ≥ 3) consists of the blocks alone, pairwise
// disconnected — so each block contributes its own chain to the community
// containment forest and, unlike PlantedCommunities, the graph has many
// non-containment communities spread across the weight order. This is the
// structure the non-containment experiments (Eval-VII) rely on.
func PlantedArchipelago(numComm, commSize int, pIn float64, seed uint64) (*graph.Graph, error) {
	if numComm < 1 || commSize < 2 {
		return nil, fmt.Errorf("gen: implausible archipelago shape %dx%d", numComm, commSize)
	}
	r := NewRNG(seed)
	n := numComm * commSize
	var b graph.Builder
	for id := 0; id < n; id++ {
		c := id / commSize
		b.AddVertex(int32(id), float64(c)+0.9*r.Float64())
	}
	for c := 0; c < numComm; c++ {
		base := c * commSize
		for i := 0; i < commSize; i++ {
			for j := i + 1; j < commSize; j++ {
				if r.Float64() < pIn {
					b.AddEdge(int32(base+i), int32(base+j))
				}
			}
		}
	}
	// Connectors: one degree-2 vertex joining each block to the next,
	// with the lowest weights so they sort last.
	id := int32(n)
	for c := 0; c+1 < numComm; c++ {
		b.AddVertex(id, -1-r.Float64())
		b.AddEdge(id, int32(c*commSize+r.Intn(commSize)))
		b.AddEdge(id, int32((c+1)*commSize+r.Intn(commSize)))
		id++
	}
	return b.Build()
}

// Random generates an arbitrary small graph for property-based testing:
// n vertices, each of avgDeg expected degree, uniform weights.
func Random(n int, avgDeg float64, seed uint64) *graph.Graph {
	if n < 1 {
		n = 1
	}
	m := int64(float64(n) * avgDeg / 2)
	g, err := GNM(n, m, seed)
	if err != nil {
		// n == 1: fall back to a single vertex.
		b := graph.Builder{}
		b.AddVertex(0, 0.5)
		g, err = b.Build()
		if err != nil {
			panic(err)
		}
	}
	return g
}
