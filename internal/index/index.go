// Package index implements the index-based algorithm category that the
// paper contrasts LocalSearch against (IndexAll, Li et al. [26]): a
// pre-built structure that materializes the keynode and community-aware
// vertex sequences of *every* γ value in compact form, so any (k, γ) query
// is answered in time proportional to its output.
//
// The index exhibits exactly the trade-offs the paper's introduction
// describes: construction costs O(γmax · size(G)), the structure must be
// rebuilt when the graph changes, and it serves only the single vertex
// weight vector it was built with — whereas LocalSearch needs no
// preparation at all. BenchmarkIndexAll* quantifies both sides.
package index

import (
	"errors"
	"fmt"

	"influcomm/internal/core"
	"influcomm/internal/graph"
	"influcomm/internal/kcore"
)

// Index holds one CountIC decomposition per γ ∈ [1, γmax]. Queries share
// the graph the index was built on.
type Index struct {
	g        *graph.Graph
	gammaMax int32
	perGamma []*core.CVS // index γ-1
}

// Build constructs the full index in O(γmax · size(G)).
func Build(g *graph.Graph) (*Index, error) {
	if g == nil || g.NumVertices() == 0 {
		return nil, errors.New("index: nil or empty graph")
	}
	gmax := kcore.MaxCore(g)
	ix := &Index{g: g, gammaMax: gmax, perGamma: make([]*core.CVS, gmax)}
	n := g.NumVertices()
	for gamma := int32(1); gamma <= gmax; gamma++ {
		ix.perGamma[gamma-1] = core.NewEngine(g, gamma).Run(n, 0, core.WantSeq)
	}
	return ix, nil
}

// Graph returns the graph the index serves.
func (ix *Index) Graph() *graph.Graph { return ix.g }

// GammaMax returns the largest γ with a non-empty γ-core.
func (ix *Index) GammaMax() int32 { return ix.gammaMax }

// CommunityCount returns the number of influential γ-communities in the
// whole graph, in O(1).
func (ix *Index) CommunityCount(gamma int32) int {
	if gamma < 1 || gamma > ix.gammaMax {
		return 0
	}
	return ix.perGamma[gamma-1].Count()
}

// TopK answers a query from the materialized sequences: it runs EnumIC
// restricted to the last k keynodes, so the cost is proportional to the
// size of the reported communities, not to the graph.
func (ix *Index) TopK(k int, gamma int32) ([]*core.Community, error) {
	if k < 1 {
		return nil, fmt.Errorf("index: k must be >= 1, got %d", k)
	}
	if gamma < 1 {
		return nil, fmt.Errorf("index: gamma must be >= 1, got %d", gamma)
	}
	if gamma > ix.gammaMax {
		return nil, nil // no γ-core, no communities
	}
	return core.EnumIC(ix.g, ix.perGamma[gamma-1], k), nil
}

// MemoryFootprint returns the number of int32 slots the materialized
// sequences occupy: the index-size burden the paper's introduction warns
// about.
func (ix *Index) MemoryFootprint() int64 {
	var total int64
	for _, c := range ix.perGamma {
		total += int64(len(c.Keys)) + int64(len(c.KeyPos)) + int64(len(c.Seq))
	}
	return total
}
