// Package index implements the index-based algorithm category that the
// paper contrasts LocalSearch against (IndexAll, Li et al. [26]): a
// pre-built structure that materializes the keynode and community-aware
// vertex sequences of *every* γ value in compact form, so any (k, γ) query
// is answered in time proportional to its output.
//
// The index exhibits exactly the trade-offs the paper's introduction
// describes: construction costs O(γmax · size(G)), the structure must be
// rebuilt when the graph changes, and it serves only the single vertex
// weight vector it was built with — whereas LocalSearch needs no
// preparation at all. BenchmarkIndexAll* and BenchmarkIndexBuild quantify
// both sides.
//
// The per-γ decompositions are independent, so Build fans them out over a
// bounded worker pool (BuildContext controls worker count and
// cancellation). A built index can be persisted with WriteTo and attached
// to its graph again with ReadFrom, which is what the icindex command and
// the server's index-first serving path are built on.
package index

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"influcomm/internal/core"
	"influcomm/internal/graph"
	"influcomm/internal/kcore"
)

// Index holds one CountIC decomposition per γ ∈ [1, γmax]. Queries share
// the graph the index was built on.
type Index struct {
	g        *graph.Graph
	gammaMax int32
	perGamma []*core.CVS // index γ-1
}

// Build constructs the full index in O(γmax · size(G)) total work, using
// all available cores (the per-γ decompositions are independent). Use
// BuildContext for cancellation or an explicit worker count.
func Build(g *graph.Graph) (*Index, error) {
	return BuildContext(context.Background(), g, 0)
}

// parallelBuildMinWork is the total build work — γmax · size(G) elementary
// peeling units — below which BuildContext skips the worker pool even when
// asked for several workers: under roughly two million units the whole
// build completes in a few milliseconds, where goroutine startup, the
// shared claim counter, and cross-core cache traffic cost more than the
// parallelism recovers (the seed's benchmark showed "parallel" slower than
// sequential on exactly such a graph).
const parallelBuildMinWork = 2 << 20

// BuildContext constructs the index with a bounded pool of workers, each
// owning one search engine and pulling γ values off a shared counter.
// workers <= 0 uses GOMAXPROCS, dropping to a sequential build when the
// total work is below parallelBuildMinWork; workers == 1 builds
// sequentially on the calling goroutine; an explicit count is always
// honored. Cancelling ctx aborts the build (workers observe the context
// every few thousand peeling steps) and returns ctx.Err().
//
// Scheduling is size-aware: workers claim γ values in decreasing order.
// The high-γ decompositions peel the largest fraction of the graph in
// their initial cascade and are the longest tasks on the skewed graphs
// real workloads serve, so fronting them keeps the pool busy to the end
// instead of leaving the slowest task to run alone after the others drain
// (longest-processing-time-first scheduling).
//
// The result is deterministic: every worker computes the same per-γ
// decomposition a sequential build would, so the index content is
// identical regardless of worker count or claim order.
func BuildContext(ctx context.Context, g *graph.Graph, workers int) (*Index, error) {
	if g == nil || g.NumVertices() == 0 {
		return nil, errors.New("index: nil or empty graph")
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	gmax := kcore.MaxCore(g)
	ix := &Index{g: g, gammaMax: gmax, perGamma: make([]*core.CVS, gmax)}
	if gmax == 0 {
		return ix, nil
	}
	n := g.NumVertices()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
		// Only the automatic sizing applies the work threshold: an
		// explicit worker count is a caller decision (and what the
		// determinism tests use to force the pool on small graphs).
		if int64(gmax)*g.Size() < parallelBuildMinWork {
			workers = 1
		}
	}
	if workers > int(gmax) {
		workers = int(gmax)
	}
	if workers == 1 {
		// Sequential fast path: one engine, reset per γ, no goroutines.
		eng := core.NewEngine(g, 1)
		for gamma := int32(1); gamma <= gmax; gamma++ {
			eng.Reset(gamma)
			eng.SetContext(ctx)
			cvs, err := eng.RunInto(nil, n, 0, core.WantSeq)
			if err != nil {
				return nil, err
			}
			ix.perGamma[gamma-1] = cvs
		}
		return ix, nil
	}

	var (
		claims   atomic.Int32 // γ claim counter; claim c maps to γ = gmax-c+1
		failed   atomic.Bool
		errMu    sync.Mutex
		firstErr error
		wg       sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			eng := core.NewEngine(g, 1)
			for !failed.Load() {
				c := claims.Add(1)
				if c > gmax {
					return
				}
				gamma := gmax - c + 1
				eng.Reset(gamma)
				eng.SetContext(ctx)
				cvs, err := eng.RunInto(nil, n, 0, core.WantSeq)
				if err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					failed.Store(true)
					return
				}
				ix.perGamma[gamma-1] = cvs
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return ix, nil
}

// Graph returns the graph the index serves.
func (ix *Index) Graph() *graph.Graph { return ix.g }

// GammaMax returns the largest γ with a non-empty γ-core.
func (ix *Index) GammaMax() int32 { return ix.gammaMax }

// CommunityCount returns the number of influential γ-communities in the
// whole graph, in O(1).
func (ix *Index) CommunityCount(gamma int32) int {
	if gamma < 1 || gamma > ix.gammaMax {
		return 0
	}
	return ix.perGamma[gamma-1].Count()
}

// TopK answers a query from the materialized sequences: it runs EnumIC
// restricted to the last k keynodes, so the cost is proportional to the
// size of the reported communities, not to the graph.
func (ix *Index) TopK(k int, gamma int32) ([]*core.Community, error) {
	if k < 1 {
		return nil, fmt.Errorf("index: k must be >= 1, got %d", k)
	}
	if gamma < 1 {
		return nil, fmt.Errorf("index: gamma must be >= 1, got %d", gamma)
	}
	if gamma > ix.gammaMax {
		return nil, nil // no γ-core, no communities
	}
	return core.EnumIC(ix.g, ix.perGamma[gamma-1], k), nil
}

// MemoryFootprint returns the number of int32 slots the materialized
// sequences occupy: the index-size burden the paper's introduction warns
// about.
func (ix *Index) MemoryFootprint() int64 {
	var total int64
	for _, c := range ix.perGamma {
		total += int64(len(c.Keys)) + int64(len(c.KeyPos)) + int64(len(c.Seq))
	}
	return total
}
