package index

import (
	"bytes"
	"fmt"
	"testing"

	"influcomm/internal/gen"
)

// fuzzGraph is the fixed graph fuzz inputs are bound against; ReadFrom
// validates input against the graph, so the graph must stay constant while
// the bytes vary.
func fuzzGraph() (*Index, []byte) {
	g := gen.Random(40, 5, 11)
	ix, err := Build(g)
	if err != nil {
		panic(err)
	}
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		panic(err)
	}
	return ix, buf.Bytes()
}

// FuzzReadFrom feeds arbitrary bytes to the deserializer: it must reject
// anything malformed with an error — never panic — and anything it does
// accept must answer queries with in-range vertices only.
func FuzzReadFrom(f *testing.F) {
	ix, valid := fuzzGraph()
	g := ix.Graph()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:7])
	f.Add([]byte{})
	mut := append([]byte(nil), valid...)
	mut[9] ^= 0xFF
	f.Add(mut)
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadFrom(bytes.NewReader(data), g)
		if err != nil {
			return
		}
		for gamma := int32(1); gamma <= got.GammaMax(); gamma++ {
			comms, err := got.TopK(3, gamma)
			if err != nil {
				continue
			}
			for _, c := range comms {
				for _, v := range c.Vertices() {
					if v < 0 || int(v) >= g.NumVertices() {
						t.Fatalf("accepted input produced out-of-range vertex %d", v)
					}
				}
			}
		}
	})
}

// TestRoundTripAllQueries is the full property the acceptance criteria
// name: WriteTo → ReadFrom on generated graphs yields identical TopK
// answers for every valid (k, γ), including γ beyond γmax and k beyond the
// community count.
func TestRoundTripAllQueries(t *testing.T) {
	for seed := uint64(1); seed <= 6; seed++ {
		g := gen.Random(60+10*int(seed), 4+float64(seed)/2, seed)
		ix, err := Build(g)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if _, err := ix.WriteTo(&buf); err != nil {
			t.Fatal(err)
		}
		ix2, err := ReadFrom(bytes.NewReader(buf.Bytes()), g)
		if err != nil {
			t.Fatal(err)
		}
		for gamma := int32(1); gamma <= ix.GammaMax()+2; gamma++ {
			maxK := ix.CommunityCount(gamma) + 2
			for k := 1; k <= maxK; k++ {
				a, err := ix.TopK(k, gamma)
				if err != nil {
					t.Fatal(err)
				}
				b, err := ix2.TopK(k, gamma)
				if err != nil {
					t.Fatal(err)
				}
				if len(a) != len(b) {
					t.Fatalf("seed %d γ=%d k=%d: %d vs %d communities", seed, gamma, k, len(a), len(b))
				}
				for i := range a {
					x := fmt.Sprintf("%v:%d:%v", a[i].Influence(), a[i].Keynode(), a[i].Vertices())
					y := fmt.Sprintf("%v:%d:%v", b[i].Influence(), b[i].Keynode(), b[i].Vertices())
					if x != y {
						t.Fatalf("seed %d γ=%d k=%d: community %d differs after round trip\n got %s\nwant %s", seed, gamma, k, i, y, x)
					}
				}
			}
		}
	}
}
