package index

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"testing"

	"influcomm/internal/core"
	"influcomm/internal/gen"
	"influcomm/internal/graph"
)

func TestIndexMatchesNaive(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		g := gen.Random(70, 5, seed)
		ix, err := Build(g)
		if err != nil {
			t.Fatal(err)
		}
		for gamma := int32(1); gamma <= ix.GammaMax()+1; gamma++ {
			want := core.NaiveCommunities(g, gamma)
			if got := ix.CommunityCount(gamma); got != len(want) {
				t.Fatalf("seed %d γ=%d: count %d, want %d", seed, gamma, got, len(want))
			}
			for _, k := range []int{1, 3, 1 << 20} {
				comms, err := ix.TopK(k, gamma)
				if err != nil {
					t.Fatal(err)
				}
				wantK := want
				if len(wantK) > k {
					wantK = wantK[:k]
				}
				if len(comms) != len(wantK) {
					t.Fatalf("seed %d γ=%d k=%d: got %d communities, want %d",
						seed, gamma, k, len(comms), len(wantK))
				}
				for i := range wantK {
					a := fmt.Sprintf("%d:%v", comms[i].Keynode(), comms[i].Vertices())
					b := fmt.Sprintf("%d:%v", wantK[i].Keynode, wantK[i].Vertices)
					if a != b {
						t.Fatalf("seed %d γ=%d k=%d: community %d mismatch\n got %s\nwant %s",
							seed, gamma, k, i, a, b)
					}
				}
			}
		}
	}
}

func TestIndexOnlyServesItsWeightVector(t *testing.T) {
	// The paper's criticism: an index is bound to one weight vector. A
	// reweighted copy of the graph must produce different answers than the
	// stale index.
	g := gen.Random(60, 6, 3)
	ix, err := Build(g)
	if err != nil {
		t.Fatal(err)
	}
	// Reverse all weights: ranks flip.
	var b graph.Builder
	for u := int32(0); int(u) < g.NumVertices(); u++ {
		b.AddVertex(g.OrigID(u), -g.Weight(u))
	}
	for u := int32(0); int(u) < g.NumVertices(); u++ {
		for _, v := range g.UpNeighbors(u) {
			b.AddEdge(g.OrigID(v), g.OrigID(u))
		}
	}
	g2, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := core.TopK(g2, 1, 3, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	stale, err := ix.TopK(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(fresh.Communities) > 0 && len(stale) > 0 {
		a := fresh.Communities[0].Influence()
		b := stale[0].Influence()
		if a == b {
			t.Skip("weight flip coincidentally preserved the top influence")
		}
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	g := gen.Random(80, 6, 9)
	ix, err := Build(g)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	ix2, err := ReadFrom(bytes.NewReader(buf.Bytes()), g)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if ix2.GammaMax() != ix.GammaMax() {
		t.Fatalf("gammaMax %d vs %d", ix2.GammaMax(), ix.GammaMax())
	}
	for gamma := int32(1); gamma <= ix.GammaMax(); gamma++ {
		if ix2.CommunityCount(gamma) != ix.CommunityCount(gamma) {
			t.Fatalf("γ=%d count differs after round trip", gamma)
		}
		a, err := ix.TopK(5, gamma)
		if err != nil {
			t.Fatal(err)
		}
		b, err := ix2.TopK(5, gamma)
		if err != nil {
			t.Fatal(err)
		}
		for i := range a {
			x := fmt.Sprintf("%d:%v", a[i].Keynode(), a[i].Vertices())
			y := fmt.Sprintf("%d:%v", b[i].Keynode(), b[i].Vertices())
			if x != y {
				t.Fatalf("γ=%d community %d differs after round trip", gamma, i)
			}
		}
	}
}

func TestSerializationErrors(t *testing.T) {
	g := gen.Random(30, 4, 2)
	ix, err := Build(g)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFrom(bytes.NewReader(nil), g); err == nil {
		t.Error("empty input: want error")
	}
	if _, err := ReadFrom(bytes.NewReader(make([]byte, 16)), g); err == nil {
		t.Error("bad magic: want error")
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := ReadFrom(bytes.NewReader(trunc), g); err == nil {
		t.Error("truncated input: want error")
	}
	other := gen.Random(31, 4, 2)
	if _, err := ReadFrom(bytes.NewReader(buf.Bytes()), other); err == nil {
		t.Error("vertex count mismatch: want error")
	}
}

func TestSerializationRejectsCorruptPayload(t *testing.T) {
	g := gen.Random(30, 5, 6)
	ix, err := Build(g)
	if err != nil {
		t.Fatal(err)
	}
	if ix.GammaMax() < 1 {
		t.Skip("fixture has no communities")
	}
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	base := buf.Bytes()
	// Flip bytes throughout the payload; every corruption must either be
	// rejected or produce an index whose queries still stay in range.
	for off := 12; off < len(base); off += 7 {
		corrupt := append([]byte(nil), base...)
		corrupt[off] ^= 0xA5
		ix2, err := ReadFrom(bytes.NewReader(corrupt), g)
		if err != nil {
			continue // rejected: good
		}
		for gamma := int32(1); gamma <= ix2.GammaMax(); gamma++ {
			comms, err := ix2.TopK(3, gamma)
			if err != nil {
				continue
			}
			for _, c := range comms {
				for _, v := range c.Vertices() {
					if v < 0 || int(v) >= g.NumVertices() {
						t.Fatalf("offset %d: corrupt index produced out-of-range vertex %d", off, v)
					}
				}
			}
		}
	}
}

// TestReadFromRejectsEmptyGroups guards the never-panic contract against
// a crafted file whose header passes every size check but declares an
// empty keynode group: ReadFrom must return an error, not index past the
// end of the (empty) sequence.
func TestReadFromRejectsEmptyGroups(t *testing.T) {
	g := gen.Random(30, 4, 2)
	craft := func(words []uint32) []byte {
		buf := make([]byte, 0, 4*len(words))
		for _, w := range words {
			var b [4]byte
			binary.LittleEndian.PutUint32(b[:], w)
			buf = append(buf, b[:]...)
		}
		return buf
	}
	n := uint32(g.NumVertices())
	cases := map[string][]uint32{
		// gmax=1; nk=1, ns=0: one keynode whose group is empty.
		"trailing empty group": {indexMagic, indexVersion, n, 1, 1, 0, 0, 0, 0},
		// gmax=1; nk=2, ns=1, KeyPos=[0,1,1]: the second group is empty.
		"mid empty group": {indexMagic, indexVersion, n, 1, 2, 1, 0, 1, 0, 1, 1, 0},
	}
	for name, words := range cases {
		if _, err := ReadFrom(bytes.NewReader(craft(words)), g); err == nil {
			t.Errorf("%s: want error, got accepted index", name)
		}
	}
}

func TestIndexValidation(t *testing.T) {
	if _, err := Build(nil); err == nil {
		t.Error("nil graph: want error")
	}
	g := gen.Random(20, 3, 1)
	ix, err := Build(g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.TopK(0, 1); err == nil {
		t.Error("k=0: want error")
	}
	if _, err := ix.TopK(1, 0); err == nil {
		t.Error("gamma=0: want error")
	}
	comms, err := ix.TopK(1, ix.GammaMax()+5)
	if err != nil || comms != nil {
		t.Errorf("γ beyond γmax should return no communities, got %v, %v", comms, err)
	}
	if ix.MemoryFootprint() <= 0 {
		t.Error("memory footprint should be positive")
	}
	if ix.CommunityCount(-3) != 0 {
		t.Error("negative gamma count should be 0")
	}
}
