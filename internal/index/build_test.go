package index

import (
	"context"
	"fmt"
	"reflect"
	"testing"
	"time"

	"influcomm/internal/gen"
	"influcomm/internal/graph"
)

// TestBuildContextMatchesSequential is the determinism contract of the
// parallel build: any worker count produces exactly the per-γ sequences of
// a sequential build.
func TestBuildContextMatchesSequential(t *testing.T) {
	ctx := context.Background()
	for seed := uint64(1); seed <= 5; seed++ {
		g := gen.Random(120, 8, seed)
		seq, err := BuildContext(ctx, g, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{0, 2, 3, 7} {
			par, err := BuildContext(ctx, g, workers)
			if err != nil {
				t.Fatalf("seed %d workers %d: %v", seed, workers, err)
			}
			if par.GammaMax() != seq.GammaMax() {
				t.Fatalf("seed %d workers %d: γmax %d, want %d", seed, workers, par.GammaMax(), seq.GammaMax())
			}
			for gi := range seq.perGamma {
				a, b := seq.perGamma[gi], par.perGamma[gi]
				if !reflect.DeepEqual(a.Keys, b.Keys) || !reflect.DeepEqual(a.KeyPos, b.KeyPos) || !reflect.DeepEqual(a.Seq, b.Seq) {
					t.Fatalf("seed %d workers %d: γ=%d decomposition differs from sequential", seed, workers, gi+1)
				}
			}
		}
	}
}

func TestBuildContextCancellation(t *testing.T) {
	g := gen.Random(400, 10, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := BuildContext(ctx, g, 4); err == nil {
		t.Error("cancelled context: want error")
	}
	if _, err := BuildContext(ctx, g, 1); err == nil {
		t.Error("cancelled context, sequential: want error")
	}
	// An expiring deadline must abort a running build, not just a pending one.
	dctx, dcancel := context.WithTimeout(context.Background(), time.Microsecond)
	defer dcancel()
	big := gen.Random(3000, 20, 2)
	if _, err := BuildContext(dctx, big, 2); err == nil {
		t.Error("expired deadline mid-build: want error")
	}
}

func TestBuildContextEdgeCases(t *testing.T) {
	if _, err := BuildContext(context.Background(), nil, 0); err == nil {
		t.Error("nil graph: want error")
	}
	// More workers than γ values must still build the whole index.
	g := gen.Random(40, 3, 4)
	ix, err := BuildContext(context.Background(), g, 64)
	if err != nil {
		t.Fatal(err)
	}
	for gamma := int32(1); gamma <= ix.GammaMax(); gamma++ {
		if ix.perGamma[gamma-1] == nil {
			t.Fatalf("γ=%d slot not built", gamma)
		}
	}
}

// BenchmarkIndexBuild compares sequential and parallel construction. The
// small case (γmax·size ≈ 1.3M work units) sits below the parallel work
// threshold, where auto-sized builds now skip the pool — the seed measured
// "parallel" *slower* than sequential exactly here, paying goroutine and
// claim-counter overhead for a few milliseconds of work. The large case
// (≈ 5.3M units) is where the pool engages and, on a multi-core runner,
// demonstrably wins; on a single-core machine both collapse to the same
// sequential path.
func BenchmarkIndexBuild(b *testing.B) {
	small := gen.Random(6000, 24, 7)
	large := gen.Random(24000, 24, 7)
	for _, bc := range []struct {
		name    string
		g       *graph.Graph
		workers int
	}{
		{"sequential", small, 1},
		{"parallel", small, 0},
		{"large-sequential", large, 1},
		{"large-parallel", large, 0},
	} {
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := BuildContext(context.Background(), bc.g, bc.workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkIndexServe measures the index-first query path end to end for a
// few k values, the serving-side half of the build/query trade-off.
func BenchmarkIndexServe(b *testing.B) {
	g := gen.Random(6000, 24, 7)
	ix, err := Build(g)
	if err != nil {
		b.Fatal(err)
	}
	gamma := ix.GammaMax() / 2
	if gamma < 1 {
		gamma = 1
	}
	for _, k := range []int{1, 10, 100} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := ix.TopK(k, gamma); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
