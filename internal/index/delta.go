package index

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"influcomm/internal/core"
	"influcomm/internal/graph"
	"influcomm/internal/kcore"
)

// ApplyDelta repairs the index for a graph produced by
// graph.ApplyEdgeDeltaCut, recomputing only the part of every γ
// decomposition the delta can have changed. See ApplyDeltaContext.
func (ix *Index) ApplyDelta(ng *graph.Graph, cut int) (*Index, error) {
	return ix.ApplyDeltaContext(context.Background(), ng, cut, 0)
}

// ApplyDeltaContext returns a fresh index over ng, equal in content to
// BuildContext(ctx, ng, ...) but built by reusing ix: ng must come from
// graph.ApplyEdgeDeltaCut on ix's graph, and cut is the returned delta
// cut. The repair exploits that every prefix subgraph G[0, p) with
// p <= cut is identical in the old and new graphs, so for each γ the
// keynodes with rank < cut — and their groups, byte-for-byte including
// segment order — are unchanged: when the peeling loop first reaches a
// keynode below the cut, every vertex still alive has rank < cut (the
// iteration removes the maximum-rank alive keynode each step), and from
// that state on the old and new runs see identical degrees, adjacency
// rows, and queues. The repair therefore runs the peeling only down to
// the cut on the new graph (the head) and splices the old decomposition's
// below-cut tail behind it verbatim.
//
// A γ beyond the old γmax (degeneracy grew) has no tail: a keynode below
// the cut would witness a non-empty γ-core in an unchanged prefix of the
// old graph, which contradicts the old γmax. Symmetrically, a γ beyond
// the new γmax is dropped with nothing lost: any old below-cut keynode
// would still witness a non-empty γ-core in the new graph.
//
// Worker semantics match BuildContext (0 = GOMAXPROCS with the
// small-work sequential escape; per-γ repairs are independent). The
// result is deterministic and, serialized, byte-identical to a fresh
// build at any worker count — the property tests enforce exactly that.
// The cost is still O(size(G)) per γ to peel down to the cut, but the
// below-cut suffix — the bulk of the decomposition when updates touch
// only high-rank (low-weight) vertices — is spliced, not recomputed.
// Cancelling ctx aborts the repair and returns ctx.Err(). ix is never
// modified; queries may keep serving from it throughout.
func (ix *Index) ApplyDeltaContext(ctx context.Context, ng *graph.Graph, cut, workers int) (*Index, error) {
	if ng == nil || ng.NumVertices() == 0 {
		return nil, errors.New("index: nil or empty graph")
	}
	n := ng.NumVertices()
	if ix.g == nil || n != ix.g.NumVertices() {
		return nil, fmt.Errorf("index: delta graph has %d vertices, index was built for %d", n, ix.g.NumVertices())
	}
	if cut < 0 || cut > n {
		return nil, fmt.Errorf("index: delta cut %d out of range [0, %d]", cut, n)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if cut == n {
		// Empty delta: same edge set, so the decompositions carry over;
		// only the graph binding changes.
		return &Index{g: ng, gammaMax: ix.gammaMax, perGamma: ix.perGamma}, nil
	}
	gmax := kcore.MaxCore(ng)
	out := &Index{g: ng, gammaMax: gmax, perGamma: make([]*core.CVS, gmax)}
	if gmax == 0 {
		return out, nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
		if int64(gmax)*ng.Size() < parallelBuildMinWork {
			workers = 1
		}
	}
	if workers > int(gmax) {
		workers = int(gmax)
	}
	if workers == 1 {
		eng := core.NewEngine(ng, 1)
		for gamma := int32(1); gamma <= gmax; gamma++ {
			cvs, err := ix.repairGamma(ctx, eng, gamma, cut)
			if err != nil {
				return nil, err
			}
			out.perGamma[gamma-1] = cvs
		}
		return out, nil
	}

	var (
		claims   atomic.Int32 // claim c maps to γ = gmax-c+1, largest first
		failed   atomic.Bool
		errMu    sync.Mutex
		firstErr error
		wg       sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			eng := core.NewEngine(ng, 1)
			for !failed.Load() {
				c := claims.Add(1)
				if c > gmax {
					return
				}
				gamma := gmax - c + 1
				cvs, err := ix.repairGamma(ctx, eng, gamma, cut)
				if err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					failed.Store(true)
					return
				}
				out.perGamma[gamma-1] = cvs
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// repairGamma computes the γ decomposition of the post-delta graph: the
// at-or-above-cut head by peeling eng's graph, plus the old
// decomposition's below-cut tail spliced on unchanged.
func (ix *Index) repairGamma(ctx context.Context, eng *core.Engine, gamma int32, cut int) (*core.CVS, error) {
	eng.Reset(gamma)
	eng.SetContext(ctx)
	head, err := eng.RunInto(nil, ix.g.NumVertices(), cut, core.WantSeq)
	if err != nil {
		return nil, err
	}
	if gamma > ix.gammaMax {
		return head, nil // no old decomposition; the head is complete
	}
	old := ix.perGamma[gamma-1]
	// Keys are emitted in decreasing rank order, so the tail of keynodes
	// below the cut is a suffix.
	j := sort.Search(len(old.Keys), func(i int) bool { return old.Keys[i] < int32(cut) })
	if j == len(old.Keys) {
		return head, nil
	}
	base := old.KeyPos[j]
	shift := int32(len(head.Seq)) - base
	head.Keys = append(head.Keys, old.Keys[j:]...)
	for _, kp := range old.KeyPos[j+1:] {
		head.KeyPos = append(head.KeyPos, kp+shift)
	}
	head.Seq = append(head.Seq, old.Seq[base:]...)
	return head, nil
}
