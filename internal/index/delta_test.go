package index

import (
	"bytes"
	"context"
	"math/rand"
	"testing"

	"influcomm/internal/gen"
	"influcomm/internal/graph"
)

// serialized returns the on-disk form of ix: the byte-identity yardstick
// the delta-repair property tests compare against a fresh build.
func serialized(t testing.TB, ix *Index) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// randomToggleBatch picks edges among ranks [lo, n) and splits them into
// inserts (currently absent) and deletes (currently present), disjoint and
// duplicate-free — the shape ApplyEdgeDelta requires.
func randomToggleBatch(g *graph.Graph, rng *rand.Rand, lo, size int) (inserts, deletes [][2]int32) {
	n := g.NumVertices()
	seen := map[[2]int32]bool{}
	for len(seen) < size {
		u := int32(lo + rng.Intn(n-lo))
		v := int32(lo + rng.Intn(n-lo))
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		e := [2]int32{u, v}
		if seen[e] {
			continue
		}
		seen[e] = true
		if g.HasEdge(u, v) {
			deletes = append(deletes, e)
		} else {
			inserts = append(inserts, e)
		}
	}
	return inserts, deletes
}

// TestReindexDeltaRepairMatchesFreshBuild is the repair's core property:
// across chained random update batches, the repaired index — at several
// worker counts — serializes byte-identically to a fresh Build on the
// post-update graph. Batches drawn over the full rank range exercise
// arbitrary cuts, including cut 0 (nothing splices, everything recomputes)
// and high cuts (almost everything splices); γmax drifts both ways as
// edges toggle.
func TestReindexDeltaRepairMatchesFreshBuild(t *testing.T) {
	ctx := context.Background()
	for seed := uint64(1); seed <= 4; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		g := gen.Random(120, 8, seed)
		ix, err := Build(g)
		if err != nil {
			t.Fatal(err)
		}
		for round := 0; round < 6; round++ {
			// Alternate whole-range batches with batches confined to the
			// high-rank half, where the splice carries most of the index.
			lo := 0
			if round%2 == 1 {
				lo = g.NumVertices() / 2
			}
			ins, del := randomToggleBatch(g, rng, lo, 1+rng.Intn(8))
			ng, cut, err := graph.ApplyEdgeDeltaCut(g, ins, del)
			if err != nil {
				t.Fatal(err)
			}
			fresh, err := Build(ng)
			if err != nil {
				t.Fatal(err)
			}
			want := serialized(t, fresh)
			var repaired *Index
			for _, workers := range []int{1, 0, 4} {
				rix, err := ix.ApplyDeltaContext(ctx, ng, cut, workers)
				if err != nil {
					t.Fatalf("seed %d round %d workers %d: %v", seed, round, workers, err)
				}
				if got := serialized(t, rix); !bytes.Equal(got, want) {
					t.Fatalf("seed %d round %d workers %d cut %d: repaired index differs from fresh build", seed, round, workers, cut)
				}
				repaired = rix
			}
			// Chain: the next round repairs the repaired index, so drift
			// would compound and surface.
			g, ix = ng, repaired
		}
	}
}

// TestReindexDeltaRepairTargeted pins the analytically interesting cuts:
// an edge at rank 0 forces a full recompute; a change confined to the two
// highest ranks splices all but the last groups; γmax growth and shrink
// must add and drop γ slots exactly as a fresh build does.
func TestReindexDeltaRepairTargeted(t *testing.T) {
	g := gen.Random(80, 6, 3)
	ix, err := Build(g)
	if err != nil {
		t.Fatal(err)
	}
	n := int32(g.NumVertices())

	check := func(name string, ins, del [][2]int32) (*graph.Graph, *Index) {
		t.Helper()
		ng, cut, err := graph.ApplyEdgeDeltaCut(g, ins, del)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		fresh, err := Build(ng)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		rix, err := ix.ApplyDelta(ng, cut)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !bytes.Equal(serialized(t, rix), serialized(t, fresh)) {
			t.Fatalf("%s: repaired index differs from fresh build (cut %d)", name, cut)
		}
		return ng, rix
	}

	// Touch rank 0: cut is 0, the head is the entire decomposition.
	var e0 [2]int32
	if g.HasEdge(0, n-1) {
		e0 = [2]int32{0, n - 1}
		check("rank0-delete", nil, [][2]int32{e0})
	} else {
		e0 = [2]int32{0, n - 1}
		check("rank0-insert", [][2]int32{e0}, nil)
	}

	// Touch only the two lowest-weight vertices: maximal splice.
	hi := [2]int32{n - 2, n - 1}
	if g.HasEdge(hi[0], hi[1]) {
		check("highrank-delete", nil, [][2]int32{hi})
	} else {
		check("highrank-insert", [][2]int32{hi}, nil)
	}

	// Grow γmax: complete a clique over the 8 highest ranks, then tear it
	// down again to shrink it. Both directions must track a fresh build's
	// γ slot count.
	var cliqueIns [][2]int32
	for u := n - 8; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if !g.HasEdge(u, v) {
				cliqueIns = append(cliqueIns, [2]int32{u, v})
			}
		}
	}
	ng, rix := check("gammamax-grow", cliqueIns, nil)
	if rix.GammaMax() <= ix.GammaMax() {
		t.Fatalf("clique insert did not grow γmax (%d -> %d)", ix.GammaMax(), rix.GammaMax())
	}
	g, ix = ng, rix
	var cliqueDel [][2]int32
	for u := n - 8; u < n; u++ {
		for v := u + 1; v < n; v++ {
			if g.HasEdge(u, v) {
				cliqueDel = append(cliqueDel, [2]int32{u, v})
			}
		}
	}
	_, rix = check("gammamax-shrink", nil, cliqueDel)
	if rix.GammaMax() >= ix.GammaMax() {
		t.Fatalf("clique delete did not shrink γmax (%d -> %d)", ix.GammaMax(), rix.GammaMax())
	}
}

// TestReindexDeltaRepairEmptyDelta covers cut == n: the repaired index
// rebinds the existing decompositions to the new (content-identical)
// graph without recomputing anything.
func TestReindexDeltaRepairEmptyDelta(t *testing.T) {
	g := gen.Random(60, 5, 9)
	ix, err := Build(g)
	if err != nil {
		t.Fatal(err)
	}
	ng, cut, err := graph.ApplyEdgeDeltaCut(g, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ng != g || cut != g.NumVertices() {
		t.Fatalf("empty delta: got graph %p cut %d, want %p cut %d", ng, cut, g, g.NumVertices())
	}
	rix, err := ix.ApplyDelta(ng, cut)
	if err != nil {
		t.Fatal(err)
	}
	if rix.Graph() != ng {
		t.Error("empty delta repair did not rebind the graph")
	}
	if !bytes.Equal(serialized(t, rix), serialized(t, ix)) {
		t.Error("empty delta repair changed the index content")
	}
}

func TestReindexDeltaRepairErrors(t *testing.T) {
	g := gen.Random(50, 4, 11)
	ix, err := Build(g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.ApplyDelta(nil, 0); err == nil {
		t.Error("nil graph: want error")
	}
	other := gen.Random(49, 4, 11)
	if _, err := ix.ApplyDelta(other, 0); err == nil {
		t.Error("vertex-count mismatch: want error")
	}
	if _, err := ix.ApplyDelta(g, -1); err == nil {
		t.Error("negative cut: want error")
	}
	if _, err := ix.ApplyDelta(g, g.NumVertices()+1); err == nil {
		t.Error("oversized cut: want error")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ix.ApplyDeltaContext(ctx, g, 0, 2); err == nil {
		t.Error("cancelled context: want error")
	}
}
