package index

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"os"

	"influcomm/internal/core"
	"influcomm/internal/graph"
)

const (
	indexMagic = uint32(0x1C91DE3A)
	// indexVersion is the on-disk format version. Bump it whenever the
	// layout changes; ReadFrom rejects any other version so a server never
	// silently misinterprets an index written by a different build.
	indexVersion = uint32(1)
)

// WriteTo serializes the index's materialized sequences (not the graph —
// an index is only valid together with the exact graph and weight vector
// it was built from, which callers persist separately). The layout is
// little-endian uint32s: magic, version, vertex count, γmax, then for each
// γ the key count, sequence length, keys, group offsets, and sequence.
func (ix *Index) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var written int64
	le := binary.LittleEndian
	put32 := func(v uint32) error {
		var buf [4]byte
		le.PutUint32(buf[:], v)
		n, err := bw.Write(buf[:])
		written += int64(n)
		return err
	}
	if err := put32(indexMagic); err != nil {
		return written, err
	}
	if err := put32(indexVersion); err != nil {
		return written, err
	}
	if err := put32(uint32(ix.g.NumVertices())); err != nil {
		return written, err
	}
	if err := put32(uint32(ix.gammaMax)); err != nil {
		return written, err
	}
	for _, c := range ix.perGamma {
		if err := put32(uint32(len(c.Keys))); err != nil {
			return written, err
		}
		if err := put32(uint32(len(c.Seq))); err != nil {
			return written, err
		}
		for _, k := range c.Keys {
			if err := put32(uint32(k)); err != nil {
				return written, err
			}
		}
		for _, p := range c.KeyPos {
			if err := put32(uint32(p)); err != nil {
				return written, err
			}
		}
		for _, v := range c.Seq {
			if err := put32(uint32(v)); err != nil {
				return written, err
			}
		}
	}
	return written, bw.Flush()
}

// ReadFrom deserializes an index previously written with WriteTo, binding
// it to g. It validates the magic, the format version, and that the vertex
// count matches g; deeper consistency (same weights, same edges) is the
// caller's responsibility, exactly the fragility the paper attributes to
// index-based approaches. Corrupt or truncated input returns an error,
// never a panic, and every structural invariant EnumIC relies on is
// re-checked before the index is accepted.
func ReadFrom(r io.Reader, g *graph.Graph) (*Index, error) {
	if g == nil {
		return nil, errors.New("index: nil graph")
	}
	br := bufio.NewReader(r)
	le := binary.LittleEndian
	var buf [4]byte
	get32 := func() (uint32, error) {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return 0, err
		}
		return le.Uint32(buf[:]), nil
	}
	magic, err := get32()
	if err != nil {
		return nil, fmt.Errorf("index: reading header: %w", err)
	}
	if magic != indexMagic {
		return nil, fmt.Errorf("index: bad magic %#x (not an index file)", magic)
	}
	version, err := get32()
	if err != nil {
		return nil, fmt.Errorf("index: reading version: %w", err)
	}
	if version != indexVersion {
		return nil, fmt.Errorf("index: unsupported format version %d (this build reads version %d)", version, indexVersion)
	}
	n, err := get32()
	if err != nil {
		return nil, err
	}
	if int(n) != g.NumVertices() {
		return nil, fmt.Errorf("index: stale index: built for %d vertices, graph has %d (rebuild with icindex)", n, g.NumVertices())
	}
	gmaxRaw, err := get32()
	if err != nil {
		return nil, err
	}
	// γmax is bounded by the maximum degree, hence by n; anything larger
	// is a corrupt or hostile header.
	if gmaxRaw > math.MaxInt32 || int64(gmaxRaw) > int64(g.NumVertices()) {
		return nil, fmt.Errorf("index: implausible gammaMax %d for %d vertices", gmaxRaw, g.NumVertices())
	}
	ix := &Index{g: g, gammaMax: int32(gmaxRaw), perGamma: make([]*core.CVS, gmaxRaw)}
	for gi := range ix.perGamma {
		nk, err := get32()
		if err != nil {
			return nil, fmt.Errorf("index: reading γ=%d header: %w", gi+1, err)
		}
		ns, err := get32()
		if err != nil {
			return nil, err
		}
		if int64(ns) > int64(g.NumVertices()) || int64(nk) > int64(ns)+1 {
			return nil, fmt.Errorf("index: implausible sizes for γ=%d (keys=%d seq=%d)", gi+1, nk, ns)
		}
		c := &core.CVS{
			P:      g.NumVertices(),
			Keys:   make([]int32, nk),
			KeyPos: make([]int32, nk+1),
			Seq:    make([]int32, ns),
		}
		for i := range c.Keys {
			v, err := get32()
			if err != nil {
				return nil, fmt.Errorf("index: truncated reading γ=%d keynodes: %w", gi+1, err)
			}
			if v >= n {
				return nil, fmt.Errorf("index: γ=%d keynode %d out of range", gi+1, v)
			}
			c.Keys[i] = int32(v)
		}
		for i := range c.KeyPos {
			v, err := get32()
			if err != nil {
				return nil, fmt.Errorf("index: truncated reading γ=%d group offsets: %w", gi+1, err)
			}
			if int64(v) > int64(ns) || (i > 0 && int32(v) < c.KeyPos[i-1]) {
				return nil, fmt.Errorf("index: γ=%d group offsets corrupt", gi+1)
			}
			c.KeyPos[i] = int32(v)
		}
		if len(c.KeyPos) > 0 && (c.KeyPos[0] != 0 || int(c.KeyPos[len(c.KeyPos)-1]) != len(c.Seq)) {
			return nil, fmt.Errorf("index: γ=%d group offsets do not span the sequence", gi+1)
		}
		for i := range c.Seq {
			v, err := get32()
			if err != nil {
				return nil, fmt.Errorf("index: truncated reading γ=%d sequence: %w", gi+1, err)
			}
			if v >= n {
				return nil, fmt.Errorf("index: γ=%d sequence vertex %d out of range", gi+1, v)
			}
			c.Seq[i] = int32(v)
		}
		// Every group must be non-empty and begin with its keynode
		// (Algorithm 2 invariant); EnumIC depends on it. The non-empty
		// check also keeps the Seq index in bounds for crafted files whose
		// offsets park a group at the end of the sequence.
		for j := range c.Keys {
			if c.KeyPos[j] >= c.KeyPos[j+1] {
				return nil, fmt.Errorf("index: γ=%d group %d is empty", gi+1, j)
			}
			if c.Seq[c.KeyPos[j]] != c.Keys[j] {
				return nil, fmt.Errorf("index: γ=%d group %d does not start with its keynode", gi+1, j)
			}
		}
		ix.perGamma[gi] = c
	}
	return ix, nil
}

// Load opens path and reads an index bound to g: the path-based loader
// shared by the public API (LoadIndex) and the server's admin endpoints,
// so validation and error text cannot drift between the two.
func Load(path string, g *graph.Graph) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadFrom(f, g)
}
