package general

import (
	"fmt"
	"testing"

	"influcomm/internal/core"
	"influcomm/internal/ecc"
	"influcomm/internal/gen"
	"influcomm/internal/truss"
)

func TestMinDegreeInstanceMatchesCore(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		g := gen.Random(80, 5, seed)
		for _, gamma := range []int32{2, 3} {
			for _, k := range []int{1, 4, 10} {
				want, err := core.TopK(g, k, gamma, core.Options{})
				if err != nil {
					t.Fatal(err)
				}
				got, err := LocalSearch(g, MinDegree(g, gamma), k, gamma)
				if err != nil {
					t.Fatal(err)
				}
				if len(got.Communities) != len(want.Communities) {
					t.Fatalf("seed %d γ=%d k=%d: %d vs %d communities",
						seed, gamma, k, len(got.Communities), len(want.Communities))
				}
				for i := range want.Communities {
					a := fmt.Sprintf("%d:%v", got.Communities[i].Keynode, got.Communities[i].Vertices)
					b := fmt.Sprintf("%d:%v", want.Communities[i].Keynode(), want.Communities[i].Vertices())
					if a != b {
						t.Fatalf("seed %d γ=%d k=%d: community %d differs\n got %s\nwant %s",
							seed, gamma, k, i, a, b)
					}
				}
			}
		}
	}
}

func TestTrussInstanceMatchesTruss(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		g := gen.Random(60, 9, seed)
		ix := truss.NewIndex(g)
		for _, gamma := range []int32{3, 4} {
			for _, k := range []int{1, 3} {
				want, err := truss.LocalSearch(ix, k, gamma)
				if err != nil {
					t.Fatal(err)
				}
				got, err := LocalSearch(g, Truss(ix, gamma), k, gamma)
				if err != nil {
					t.Fatal(err)
				}
				if len(got.Communities) != len(want.Communities) {
					t.Fatalf("seed %d γ=%d k=%d: %d vs %d communities",
						seed, gamma, k, len(got.Communities), len(want.Communities))
				}
				for i := range want.Communities {
					a := fmt.Sprintf("%d:%v", got.Communities[i].Keynode, got.Communities[i].Vertices)
					b := fmt.Sprintf("%d:%v", want.Communities[i].Keynode(), want.Communities[i].Vertices())
					if a != b {
						t.Fatalf("seed %d γ=%d k=%d: truss community %d differs\n got %s\nwant %s",
							seed, gamma, k, i, a, b)
					}
				}
			}
		}
	}
}

func TestEdgeConnectivityInstanceMatchesNaive(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		g := gen.Random(20, 4, seed)
		gamma := int32(2)
		naive := ecc.NaiveCommunities(g, gamma)
		for _, k := range []int{1, 3} {
			got, err := LocalSearch(g, EdgeConnectivity(g, gamma), k, gamma)
			if err != nil {
				t.Fatal(err)
			}
			want := naive
			if len(want) > k {
				want = want[:k]
			}
			if len(got.Communities) != len(want) {
				t.Fatalf("seed %d k=%d: %d vs %d communities", seed, k, len(got.Communities), len(want))
			}
			for i := range want {
				a := fmt.Sprintf("%d:%v", got.Communities[i].Keynode, got.Communities[i].Vertices)
				b := fmt.Sprintf("%d:%v", want[i].Keynode, want[i].Vertices)
				if a != b {
					t.Fatalf("seed %d k=%d: community %d differs\n got %s\nwant %s", seed, k, i, a, b)
				}
			}
		}
	}
}

func TestFrameworkAccessesPrefixOnly(t *testing.T) {
	g, err := gen.PlantedCommunities(20, 12, 0.8, 0.5, 11)
	if err != nil {
		t.Fatal(err)
	}
	res, err := LocalSearch(g, MinDegree(g, 4), 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.FinalPrefix >= g.NumVertices() {
		t.Errorf("framework scanned the whole graph (%d vertices) for a top-2 query",
			res.Stats.FinalPrefix)
	}
	if res.Stats.FinalSize != g.PrefixSize(res.Stats.FinalPrefix) {
		t.Errorf("FinalSize accounting inconsistent")
	}
}

func TestFrameworkValidation(t *testing.T) {
	g := gen.Random(20, 3, 1)
	if _, err := LocalSearch(nil, MinDegree(g, 2), 1, 2); err == nil {
		t.Error("nil graph: want error")
	}
	if _, err := LocalSearch(g, nil, 1, 2); err == nil {
		t.Error("nil measure: want error")
	}
	if _, err := LocalSearch(g, MinDegree(g, 2), 0, 2); err == nil {
		t.Error("k=0: want error")
	}
	if _, err := LocalSearch(g, MinDegree(g, 2), 1, 0); err == nil {
		t.Error("gamma=0: want error")
	}
	if MinDegree(g, 2).Name() != "min-degree" {
		t.Error("measure name")
	}
	if Truss(truss.NewIndex(g), 3).Name() != "k-truss" {
		t.Error("truss measure name")
	}
}
