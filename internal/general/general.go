// Package general implements the paper's generalized local search framework
// for arbitrary cohesiveness measures (§5.2, Algorithm 6): any measure that
// satisfies Property-I and Property-II (community sets are suffix-stable
// under weight thresholds) can plug its CountICC and EnumICC procedures
// into the same geometric-growth loop and inherit Theorem 5.2's complexity.
//
// Two instances ship with the repository: the minimum-degree measure
// (delegating to the core package) and the triangle/k-truss measure
// (delegating to the truss package). The instances exist both as the
// mechanism behind Algorithm 6 and as an executable check that the
// framework reproduces the specialized implementations exactly.
package general

import (
	"errors"
	"fmt"
	"sort"

	"influcomm/internal/core"
	"influcomm/internal/ecc"
	"influcomm/internal/graph"
	"influcomm/internal/truss"
)

// Community is a materialized influential γ-cohesive community
// (Definition 5.2) under whatever measure produced it.
type Community struct {
	Keynode   int32
	Influence float64
	Vertices  []int32 // ascending rank
}

// Measure abstracts one cohesiveness measure for Algorithm 6. A Measure is
// bound to a graph and a γ value; implementations must guarantee
// Property-I and Property-II of §5.2 for the framework to be correct.
type Measure interface {
	// Name identifies the measure in diagnostics.
	Name() string
	// CountICC returns the number of influential γ-cohesive communities
	// in the prefix subgraph [0, p).
	CountICC(p int) int
	// EnumICC returns the top-k such communities of the prefix [0, p) in
	// decreasing influence order (all of them when k < 0).
	EnumICC(p, k int) []Community
}

// Stats mirrors core.Stats for the generic framework.
type Stats struct {
	Rounds      int
	FinalPrefix int
	FinalSize   int64
	TotalWork   int64
	Communities int
}

// Result is the output of LocalSearch.
type Result struct {
	Communities []Community
	Stats       Stats
}

// LocalSearch is Algorithm 6: grow the high-weight prefix geometrically
// (δ = 2) until CountICC reports at least k communities, then enumerate.
// By Theorem 5.2 the total cost is O(T_count(G≥τ*) + T_enum(G≥τ*)).
func LocalSearch(g *graph.Graph, m Measure, k int, gamma int32) (*Result, error) {
	switch {
	case g == nil || g.NumVertices() == 0:
		return nil, errors.New("general: nil or empty graph")
	case m == nil:
		return nil, errors.New("general: nil measure")
	case k < 1:
		return nil, fmt.Errorf("general: k must be >= 1, got %d", k)
	case gamma < 1:
		return nil, fmt.Errorf("general: gamma must be >= 1, got %d", gamma)
	}
	n := g.NumVertices()
	p := k + int(gamma)
	if p > n {
		p = n
	}
	var st Stats
	for {
		cnt := m.CountICC(p)
		st.Rounds++
		st.TotalWork += g.PrefixSize(p)
		if cnt >= k || p == n {
			st.Communities = cnt
			break
		}
		next := g.PrefixForSize(2 * g.PrefixSize(p))
		if next <= p {
			next = p + 1
		}
		if next > n {
			next = n
		}
		p = next
	}
	st.FinalPrefix = p
	st.FinalSize = g.PrefixSize(p)
	return &Result{Communities: m.EnumICC(p, k), Stats: st}, nil
}

// MinDegree returns the γ-core (minimum degree) instance of the framework,
// backed by the core package's CountIC / EnumIC.
func MinDegree(g *graph.Graph, gamma int32) Measure {
	return &minDegreeMeasure{g: g, gamma: gamma}
}

type minDegreeMeasure struct {
	g     *graph.Graph
	gamma int32
}

func (m *minDegreeMeasure) Name() string { return "min-degree" }

func (m *minDegreeMeasure) CountICC(p int) int {
	return core.NewEngine(m.g, m.gamma).Run(p, 0, 0).Count()
}

func (m *minDegreeMeasure) EnumICC(p, k int) []Community {
	cvs := core.NewEngine(m.g, m.gamma).Run(p, 0, core.WantSeq)
	comms := core.EnumIC(m.g, cvs, k)
	out := make([]Community, 0, len(comms))
	for _, c := range comms {
		out = append(out, Community{
			Keynode:   c.Keynode(),
			Influence: c.Influence(),
			Vertices:  c.Vertices(),
		})
	}
	return out
}

// EdgeConnectivity returns the γ-edge-connected instance of the framework
// (§5.2, [6, 40]), backed by the ecc package's min-cut decomposition. The
// instance is reference-grade (see the ecc package doc) and intended for
// small graphs and tests.
func EdgeConnectivity(g *graph.Graph, gamma int32) Measure {
	return &eccMeasure{g: g, gamma: gamma}
}

type eccMeasure struct {
	g     *graph.Graph
	gamma int32
}

func (m *eccMeasure) Name() string { return "edge-connectivity" }

func (m *eccMeasure) CountICC(p int) int {
	return ecc.CountICC(m.g, p, m.gamma)
}

func (m *eccMeasure) EnumICC(p, k int) []Community {
	out := make([]Community, 0)
	for _, c := range ecc.EnumICC(m.g, p, k, m.gamma) {
		out = append(out, Community{Keynode: c.Keynode, Influence: c.Influence, Vertices: c.Vertices})
	}
	return out
}

// Truss returns the k-truss (triangle) instance of the framework, backed by
// the truss package's CountICC / EnumICC.
func Truss(ix *truss.Index, gamma int32) Measure {
	return &trussMeasure{ix: ix, gamma: gamma}
}

type trussMeasure struct {
	ix    *truss.Index
	gamma int32
}

func (m *trussMeasure) Name() string { return "k-truss" }

func (m *trussMeasure) CountICC(p int) int {
	return truss.CountICC(m.ix, p, m.gamma).Count()
}

func (m *trussMeasure) EnumICC(p, k int) []Community {
	cvs := truss.CountICC(m.ix, p, m.gamma)
	comms := truss.EnumICC(m.ix, cvs, k)
	out := make([]Community, 0, len(comms))
	for _, c := range comms {
		vs := c.Vertices()
		sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
		out = append(out, Community{
			Keynode:   c.Keynode(),
			Influence: c.Influence(),
			Vertices:  vs,
		})
	}
	return out
}
