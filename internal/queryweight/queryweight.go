// Package queryweight implements the extension the paper sketches in
// footnote 1 and its conclusion: vertex weights computed online from the
// query itself, where a vertex's influence is the reciprocal of its
// shortest distance to a set of query vertices (as in closest community
// search [23]). Combined with LocalSearch this answers "find the most
// cohesive communities around these seed users" without any precomputation
// — precisely the kind of ad-hoc weight vector an index cannot serve.
package queryweight

import (
	"fmt"

	"influcomm/internal/graph"
)

// Distances returns the multi-source BFS hop distance from every vertex to
// the nearest seed, or -1 for unreachable vertices. Seeds are rank IDs of g.
func Distances(g *graph.Graph, seeds []int32) ([]int32, error) {
	n := g.NumVertices()
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = -1
	}
	queue := make([]int32, 0, len(seeds))
	for _, s := range seeds {
		if s < 0 || int(s) >= n {
			return nil, fmt.Errorf("queryweight: seed %d out of range [0, %d)", s, n)
		}
		if dist[s] == 0 && len(queue) > 0 {
			continue // duplicate seed
		}
		dist[s] = 0
		queue = append(queue, s)
	}
	if len(queue) == 0 {
		return nil, fmt.Errorf("queryweight: no seed vertices")
	}
	for i := 0; i < len(queue); i++ {
		v := queue[i]
		for _, w := range g.Neighbors(v) {
			if dist[w] < 0 {
				dist[w] = dist[v] + 1
				queue = append(queue, w)
			}
		}
	}
	return dist, nil
}

// Reweight returns a copy of g whose vertex weights are 1/(1+d) for hop
// distance d to the nearest seed; unreachable vertices get weight 0 and
// therefore sort last (they can only appear in the lowest-influence
// communities). Labels and original IDs are preserved. Seeds are rank IDs
// of the input graph; use the returned graph's OrigID to map results back.
func Reweight(g *graph.Graph, seeds []int32) (*graph.Graph, error) {
	dist, err := Distances(g, seeds)
	if err != nil {
		return nil, err
	}
	var b graph.Builder
	for u := int32(0); int(u) < g.NumVertices(); u++ {
		w := 0.0
		if dist[u] >= 0 {
			w = 1 / (1 + float64(dist[u]))
		}
		id := g.OrigID(u)
		if g.HasLabels() {
			b.AddLabeledVertex(id, w, g.Label(u))
		} else {
			b.AddVertex(id, w)
		}
	}
	for u := int32(0); int(u) < g.NumVertices(); u++ {
		for _, v := range g.UpNeighbors(u) {
			b.AddEdge(g.OrigID(v), g.OrigID(u))
		}
	}
	return b.Build()
}
