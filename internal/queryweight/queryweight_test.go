package queryweight

import (
	"testing"

	"influcomm/internal/core"
	"influcomm/internal/gen"
	"influcomm/internal/graph"
)

func path5(t *testing.T) *graph.Graph {
	t.Helper()
	return graph.MustFromEdges(
		[]float64{50, 40, 30, 20, 10},
		[][2]int32{{0, 1}, {1, 2}, {2, 3}, {3, 4}},
	)
}

func TestDistances(t *testing.T) {
	g := path5(t)
	dist, err := Distances(g, []int32{0})
	if err != nil {
		t.Fatal(err)
	}
	for u, want := range []int32{0, 1, 2, 3, 4} {
		if dist[u] != want {
			t.Errorf("dist[%d] = %d, want %d", u, dist[u], want)
		}
	}
	// Multi-source: distance to the nearest of {0, 4}.
	dist, err = Distances(g, []int32{0, 4})
	if err != nil {
		t.Fatal(err)
	}
	for u, want := range []int32{0, 1, 2, 1, 0} {
		if dist[u] != want {
			t.Errorf("multi-source dist[%d] = %d, want %d", u, dist[u], want)
		}
	}
}

func TestDistancesUnreachable(t *testing.T) {
	g := graph.MustFromEdges([]float64{3, 2, 1}, [][2]int32{{0, 1}})
	dist, err := Distances(g, []int32{0})
	if err != nil {
		t.Fatal(err)
	}
	if dist[2] != -1 {
		t.Errorf("isolated vertex distance = %d, want -1", dist[2])
	}
}

func TestDistancesErrors(t *testing.T) {
	g := path5(t)
	if _, err := Distances(g, nil); err == nil {
		t.Error("no seeds: want error")
	}
	if _, err := Distances(g, []int32{99}); err == nil {
		t.Error("out-of-range seed: want error")
	}
}

func TestReweightOrdering(t *testing.T) {
	g := path5(t)
	rw, err := Reweight(g, []int32{2})
	if err != nil {
		t.Fatal(err)
	}
	// Closest to the seed = highest weight: the seed itself is rank 0.
	if rw.OrigID(0) != g.OrigID(2) {
		t.Errorf("seed should have the top rank, got original vertex %d", rw.OrigID(0))
	}
	if rw.Weight(0) != 1 {
		t.Errorf("seed weight = %v, want 1", rw.Weight(0))
	}
	if err := rw.Validate(); err != nil {
		t.Fatalf("reweighted graph invalid: %v", err)
	}
}

func TestQueryCentricCommunity(t *testing.T) {
	// Two cliques joined by a path; a query seeded in the low-weight clique
	// must surface that clique as the top community even though its
	// original weights are lower.
	var b graph.Builder
	for id := int32(0); id < 11; id++ {
		b.AddVertex(id, float64(100-id))
	}
	for i := int32(0); i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			b.AddEdge(i, j)     // high-weight clique 0-4
			b.AddEdge(i+6, j+6) // low-weight clique 6-10
		}
	}
	b.AddEdge(4, 5)
	b.AddEdge(5, 6)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// Without reweighting, the top community is the high clique.
	res, err := core.TopK(g, 1, 4, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Communities[0].Contains(10) { // rank 10 = original vertex 10
		t.Fatal("baseline top community unexpectedly contains the low clique")
	}
	// Seed the query at original vertex 8 (rank 8: weights are identity
	// order here).
	rw, err := Reweight(g, []int32{8})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := core.TopK(rw, 1, 4, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	top := res2.Communities[0]
	orig := map[int32]bool{}
	for _, v := range top.Vertices() {
		orig[rw.OrigID(v)] = true
	}
	for _, want := range []int32{6, 7, 8, 9, 10} {
		if !orig[want] {
			t.Fatalf("query-centric top community %v missing seed-clique member %d", top.Vertices(), want)
		}
	}
}

func TestReweightLargeGraphConsistency(t *testing.T) {
	g := gen.Random(300, 5, 13)
	rw, err := Reweight(g, []int32{0, 5, 9})
	if err != nil {
		t.Fatal(err)
	}
	if rw.NumVertices() != g.NumVertices() || rw.NumEdges() != g.NumEdges() {
		t.Fatal("reweight changed the graph shape")
	}
	// Queries still work end to end on the reweighted graph.
	if _, err := core.TopK(rw, 3, 2, core.Options{}); err != nil {
		t.Fatal(err)
	}
}
