// Package kcore implements γ-core computation: the maximal subgraph whose
// minimum degree is at least γ [Seidman 1983]. It is the cohesiveness
// substrate of every influential-community algorithm in this repository,
// and also provides the full core decomposition used for γmax in Table 1.
package kcore

import "influcomm/internal/graph"

// PrefixCore peels the prefix subgraph [0, p) of g down to its γ-core.
//
// It returns alive and deg slices of length p: alive[u] reports membership
// of u in the γ-core and deg[u] is u's degree inside it (undefined for dead
// vertices). The slices are fresh allocations; use a Peeler to amortize.
func PrefixCore(g *graph.Graph, p int, gamma int32) (alive []bool, deg []int32) {
	pl := NewPeeler(g.NumVertices())
	alive, deg = pl.PrefixCore(g, p, gamma)
	out := make([]bool, p)
	copy(out, alive[:p])
	dout := make([]int32, p)
	copy(dout, deg[:p])
	return out, dout
}

// Peeler holds reusable scratch buffers for repeated γ-core computations on
// prefixes of the same graph. It is not safe for concurrent use.
type Peeler struct {
	alive []bool
	deg   []int32
	queue []int32
}

// NewPeeler returns a Peeler able to handle prefixes of up to n vertices.
func NewPeeler(n int) *Peeler {
	return &Peeler{
		alive: make([]bool, n),
		deg:   make([]int32, n),
		queue: make([]int32, 0, n),
	}
}

// PrefixCore computes the γ-core of the prefix [0, p). The returned slices
// alias the Peeler's buffers (valid until the next call) and have length p.
func (pl *Peeler) PrefixCore(g *graph.Graph, p int, gamma int32) (alive []bool, deg []int32) {
	alive = pl.alive[:p]
	deg = pl.deg[:p]
	for u := 0; u < p; u++ {
		alive[u] = true
		deg[u] = g.DegreeWithin(int32(u), p)
	}
	q := pl.queue[:0]
	for u := 0; u < p; u++ {
		if deg[u] < gamma {
			alive[u] = false
			q = append(q, int32(u))
		}
	}
	for len(q) > 0 {
		v := q[len(q)-1]
		q = q[:len(q)-1]
		for _, w := range g.NeighborsWithin(v, p) {
			if !alive[w] {
				continue
			}
			deg[w]--
			if deg[w] < gamma {
				alive[w] = false
				q = append(q, w)
			}
		}
	}
	pl.queue = q[:0]
	return alive, deg
}

// CoreNumbers computes the core decomposition of g with the linear-time
// bucket algorithm of Batagelj–Zaveršnik: core[u] is the largest γ such
// that u belongs to the γ-core.
func CoreNumbers(g *graph.Graph) []int32 {
	n := g.NumVertices()
	core := make([]int32, n)
	if n == 0 {
		return core
	}
	deg := make([]int32, n)
	var maxDeg int32
	for u := 0; u < n; u++ {
		deg[u] = g.Degree(int32(u))
		if deg[u] > maxDeg {
			maxDeg = deg[u]
		}
	}
	// Bucket sort vertices by degree.
	bin := make([]int32, maxDeg+2)
	for u := 0; u < n; u++ {
		bin[deg[u]]++
	}
	start := int32(0)
	for d := int32(0); d <= maxDeg; d++ {
		cnt := bin[d]
		bin[d] = start
		start += cnt
	}
	pos := make([]int32, n)  // position of vertex in vert
	vert := make([]int32, n) // vertices sorted by current degree
	for u := 0; u < n; u++ {
		pos[u] = bin[deg[u]]
		vert[pos[u]] = int32(u)
		bin[deg[u]]++
	}
	for d := maxDeg; d > 0; d-- {
		bin[d] = bin[d-1]
	}
	bin[0] = 0

	for i := 0; i < n; i++ {
		v := vert[i]
		core[v] = deg[v]
		for _, w := range g.Neighbors(v) {
			if deg[w] <= deg[v] {
				continue
			}
			// Swap w to the front of its degree bucket, then shrink it.
			dw := deg[w]
			pw := pos[w]
			pstart := bin[dw]
			u := vert[pstart]
			if u != w {
				vert[pstart], vert[pw] = w, u
				pos[w], pos[u] = pstart, pw
			}
			bin[dw]++
			deg[w]--
		}
	}
	return core
}

// MaxCore returns γmax: the largest γ for which g has a non-empty γ-core.
func MaxCore(g *graph.Graph) int32 {
	var gmax int32
	for _, c := range CoreNumbers(g) {
		if c > gmax {
			gmax = c
		}
	}
	return gmax
}
