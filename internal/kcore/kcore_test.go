package kcore

import (
	"testing"
	"testing/quick"

	"influcomm/internal/gen"
	"influcomm/internal/graph"
)

func TestPrefixCoreClique(t *testing.T) {
	// K5: the 4-core is everything, the 5-core is empty.
	weights := []float64{5, 4, 3, 2, 1}
	var edges [][2]int32
	for i := int32(0); i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			edges = append(edges, [2]int32{i, j})
		}
	}
	g := graph.MustFromEdges(weights, edges)
	alive, deg := PrefixCore(g, 5, 4)
	for u := 0; u < 5; u++ {
		if !alive[u] || deg[u] != 4 {
			t.Errorf("vertex %d: alive=%v deg=%d, want alive deg=4", u, alive[u], deg[u])
		}
	}
	alive, _ = PrefixCore(g, 5, 5)
	for u := 0; u < 5; u++ {
		if alive[u] {
			t.Errorf("vertex %d alive in impossible 5-core", u)
		}
	}
}

func TestPrefixCoreCascade(t *testing.T) {
	// Path a-b-c-d: the 2-core is empty (endpoints peel, cascade kills all).
	g := graph.MustFromEdges([]float64{4, 3, 2, 1}, [][2]int32{{0, 1}, {1, 2}, {2, 3}})
	alive, _ := PrefixCore(g, 4, 2)
	for u := 0; u < 4; u++ {
		if alive[u] {
			t.Errorf("vertex %d alive in 2-core of a path", u)
		}
	}
	// Triangle plus pendant: 2-core keeps only the triangle.
	g2 := graph.MustFromEdges([]float64{4, 3, 2, 1}, [][2]int32{{0, 1}, {1, 2}, {0, 2}, {2, 3}})
	alive, deg := PrefixCore(g2, 4, 2)
	want := []bool{true, true, true, false}
	for u := 0; u < 4; u++ {
		if alive[u] != want[u] {
			t.Errorf("vertex %d alive=%v, want %v", u, alive[u], want[u])
		}
		if alive[u] && deg[u] != 2 {
			t.Errorf("vertex %d deg=%d, want 2", u, deg[u])
		}
	}
}

func TestPrefixCoreRespectsPrefix(t *testing.T) {
	// Triangle on ranks {0,1,4}: within prefix 4 the third vertex is
	// missing, so no 2-core exists among ranks 0..3.
	g := graph.MustFromEdges(
		[]float64{50, 40, 30, 20, 10},
		[][2]int32{{0, 1}, {0, 4}, {1, 4}, {2, 3}},
	)
	alive, _ := PrefixCore(g, 4, 2)
	for u := 0; u < 4; u++ {
		if alive[u] {
			t.Errorf("vertex %d alive in 2-core of prefix 4", u)
		}
	}
	alive5, _ := PrefixCore(g, 5, 2)
	for _, u := range []int{0, 1, 4} {
		if !alive5[u] {
			t.Errorf("triangle vertex %d dead in full 2-core", u)
		}
	}
}

// coreNumbersNaive recomputes core numbers by repeated peeling at every γ.
func coreNumbersNaive(g *graph.Graph) []int32 {
	n := g.NumVertices()
	core := make([]int32, n)
	for gamma := int32(1); ; gamma++ {
		alive, _ := PrefixCore(g, n, gamma)
		any := false
		for u := 0; u < n; u++ {
			if alive[u] {
				core[u] = gamma
				any = true
			}
		}
		if !any {
			return core
		}
	}
}

func TestCoreNumbersAgainstNaive(t *testing.T) {
	for seed := uint64(1); seed <= 10; seed++ {
		g := gen.Random(60, 6, seed)
		want := coreNumbersNaive(g)
		got := CoreNumbers(g)
		for u := range want {
			if got[u] != want[u] {
				t.Fatalf("seed %d: core[%d] = %d, want %d", seed, u, got[u], want[u])
			}
		}
	}
}

func TestCoreNumbersProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%50) + 5
		g := gen.Random(n, 4, seed)
		core := CoreNumbers(g)
		// Each vertex's core number is at most its degree, and the γmax-core
		// is non-empty.
		var gmax int32
		for u := 0; u < g.NumVertices(); u++ {
			if core[u] > g.Degree(int32(u)) {
				return false
			}
			if core[u] > gmax {
				gmax = core[u]
			}
		}
		if MaxCore(g) != gmax {
			return false
		}
		alive, deg := PrefixCore(g, g.NumVertices(), gmax)
		found := false
		for u := 0; u < g.NumVertices(); u++ {
			if alive[u] {
				found = true
				if deg[u] < gmax {
					return false
				}
			}
		}
		return found || gmax == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestCoreNumbersEmpty(t *testing.T) {
	var b graph.Builder
	b.AddVertex(0, 1)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if c := CoreNumbers(g); len(c) != 1 || c[0] != 0 {
		t.Errorf("singleton core numbers = %v", c)
	}
	if MaxCore(g) != 0 {
		t.Errorf("singleton MaxCore = %d", MaxCore(g))
	}
}

func TestPeelerReuse(t *testing.T) {
	g := gen.Random(50, 5, 3)
	pl := NewPeeler(g.NumVertices())
	for p := 1; p <= g.NumVertices(); p += 7 {
		alive1, _ := pl.PrefixCore(g, p, 3)
		got := make([]bool, p)
		copy(got, alive1)
		alive2, _ := PrefixCore(g, p, 3)
		for u := 0; u < p; u++ {
			if got[u] != alive2[u] {
				t.Fatalf("peeler reuse diverges at prefix %d vertex %d", p, u)
			}
		}
	}
}
