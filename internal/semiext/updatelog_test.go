package semiext

import (
	"os"
	"path/filepath"
	"testing"
)

func TestUpdateLogRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.edges.log")
	l, batches, err := OpenUpdateLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(batches) != 0 {
		t.Fatalf("fresh log replayed %d batches", len(batches))
	}
	want := [][]LogUpdate{
		{{U: 0, V: 3}, {U: 1, V: 2, Delete: true}},
		{{U: 2, V: 5}},
	}
	for _, b := range want {
		if err := l.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Append(nil); err != nil {
		t.Fatal(err) // empty batches are a no-op, not a record
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	_, got, err := OpenUpdateLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d batches, want %d", len(got), len(want))
	}
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("batch %d: %d ops, want %d", i, len(got[i]), len(want[i]))
		}
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("batch %d op %d: got %+v want %+v", i, j, got[i][j], want[i][j])
			}
		}
	}
}

// TestUpdateLogTornTail simulates a crash mid-append: replay must keep
// every complete record and ignore the partial one, and a subsequent
// append must land cleanly after the truncated tail.
func TestUpdateLogTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.edges.log")
	l, _, err := OpenUpdateLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]LogUpdate{{U: 0, V: 1}}); err != nil {
		t.Fatal(err)
	}
	l.Close()

	for _, tail := range [][]byte{
		{0x02, 0x00, 0x00, 0x00, 0x01},             // length claims 2 ops, body missing
		{0x01, 0x00, 0x00, 0x00, 0x01, 0x02, 0x03}, // one op, truncated mid-record
		{0xff}, // lone garbage byte
	} {
		f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write(tail); err != nil {
			t.Fatal(err)
		}
		f.Close()

		l, got, err := OpenUpdateLog(path)
		if err != nil {
			t.Fatalf("tail %x: %v", tail, err)
		}
		if len(got) != 1 || len(got[0]) != 1 || got[0][0] != (LogUpdate{U: 0, V: 1}) {
			t.Fatalf("tail %x: replay returned %+v", tail, got)
		}
		// The torn tail was truncated; appending again must produce a log
		// that replays both records.
		if err := l.Append([]LogUpdate{{U: 1, V: 2, Delete: true}}); err != nil {
			t.Fatal(err)
		}
		l.Close()
		got, _, err = ReplayUpdateLog(path)
		if err != nil || len(got) != 2 {
			t.Fatalf("tail %x: after truncate+append replay gave %d batches (%v)", tail, len(got), err)
		}
		// Reset for the next tail shape.
		if err := os.Remove(path); err != nil {
			t.Fatal(err)
		}
		l, _, err = OpenUpdateLog(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Append([]LogUpdate{{U: 0, V: 1}}); err != nil {
			t.Fatal(err)
		}
		l.Close()
	}
}

// TestUpdateLogCorruptRecord: a record whose CRC matches but whose content
// is invalid is a writer bug, not tail damage — replay must reject it.
func TestUpdateLogRejectsFlippedPayload(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.edges.log")
	l, _, err := OpenUpdateLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]LogUpdate{{U: 3, V: 7}}); err != nil {
		t.Fatal(err)
	}
	l.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[logHeaderSize+4] ^= 0xff // flip the op byte, CRC now mismatches
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	_, got, err := OpenUpdateLog(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("flipped record still replayed: %+v", got)
	}
}

func TestUpdateLogBadHeader(t *testing.T) {
	path := filepath.Join(t.TempDir(), "g.edges.log")
	if err := os.WriteFile(path, []byte("not a log at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenUpdateLog(path); err == nil {
		t.Fatal("bad magic accepted")
	}
	if err := os.WriteFile(path, []byte{0xc5, 0x10, 0xdb, 0x5e, 0x09, 0, 0, 0}, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenUpdateLog(path); err == nil {
		t.Fatal("future version accepted")
	}
}

func TestUpdateLogAppendRejectsUnnormalized(t *testing.T) {
	l, _, err := OpenUpdateLog(filepath.Join(t.TempDir(), "g.log"))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for _, u := range []LogUpdate{{U: 2, V: 1}, {U: 3, V: 3}, {U: -1, V: 4}} {
		if err := l.Append([]LogUpdate{u}); err == nil {
			t.Errorf("unnormalized update %+v accepted", u)
		}
	}
}
