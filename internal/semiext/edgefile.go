// Package semiext implements the I/O-efficient algorithm variants of
// Eval-VI/VII: graphs whose edges live on disk sorted in decreasing edge
// weight order (an edge's weight is the minimum weight of its endpoints,
// following [27]), with only per-vertex information held in memory.
//
// LocalSearchSE is the semi-external version of LocalSearch-P: it reads the
// on-disk edge stream strictly sequentially and only as far as the query
// needs. OnlineAllSE is the semi-external version of OnlineAll [27], which
// must ingest the entire file. The two reproduce Figure 16 (time) and
// Figure 17 (size of visited graph).
package semiext

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"influcomm/internal/graph"
)

const fileMagic = uint32(0x5EDB_E55A)

// WriteEdgeFile serializes g to path in the semi-external layout: a header,
// the vertex weight vector, the per-vertex up-degree vector, and then every
// up-adjacency list in ascending rank order of its owner — which is exactly
// decreasing edge weight order, so a prefix of the stream is a prefix
// subgraph G≥τ.
func WriteEdgeFile(path string, g *graph.Graph) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("semiext: creating edge file: %w", err)
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	w := bufio.NewWriter(f)
	le := binary.LittleEndian
	var hdr [20]byte
	le.PutUint32(hdr[0:], fileMagic)
	le.PutUint64(hdr[4:], uint64(g.NumVertices()))
	le.PutUint64(hdr[12:], uint64(g.NumEdges()))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	var buf [8]byte
	for u := int32(0); int(u) < g.NumVertices(); u++ {
		le.PutUint64(buf[:], math.Float64bits(g.Weight(u)))
		if _, err := w.Write(buf[:]); err != nil {
			return err
		}
	}
	for u := int32(0); int(u) < g.NumVertices(); u++ {
		le.PutUint32(buf[:4], uint32(g.UpDegree(u)))
		if _, err := w.Write(buf[:4]); err != nil {
			return err
		}
	}
	for u := int32(0); int(u) < g.NumVertices(); u++ {
		for _, v := range g.UpNeighbors(u) {
			le.PutUint32(buf[:4], uint32(v))
			if _, err := w.Write(buf[:4]); err != nil {
				return err
			}
		}
	}
	return w.Flush()
}

// Reader streams an edge file. Per the semi-external model it materializes
// only O(n) per-vertex state (weights and up-degrees); edges are delivered
// strictly sequentially and accounted in BytesRead.
type Reader struct {
	f       *os.File
	br      *bufio.Reader
	n       int
	m       int64
	weights []float64
	upDeg   []int32

	nextVertex int   // first vertex whose up-edges have not been read
	bytesRead  int64 // edge payload bytes consumed so far
	headerSize int64
}

// OpenReader opens path and loads the per-vertex information.
func OpenReader(path string) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("semiext: opening edge file: %w", err)
	}
	r := &Reader{f: f, br: bufio.NewReaderSize(f, 1<<20)}
	if err := r.readHeader(); err != nil {
		f.Close()
		return nil, err
	}
	return r, nil
}

func (r *Reader) readHeader() error {
	le := binary.LittleEndian
	var hdr [20]byte
	if _, err := io.ReadFull(r.br, hdr[:]); err != nil {
		return fmt.Errorf("semiext: reading header: %w", err)
	}
	if le.Uint32(hdr[0:]) != fileMagic {
		return fmt.Errorf("semiext: bad magic %#x", le.Uint32(hdr[0:]))
	}
	r.n = int(le.Uint64(hdr[4:]))
	r.m = int64(le.Uint64(hdr[12:]))
	if r.n < 0 || r.m < 0 || int64(r.n) > math.MaxInt32 {
		return fmt.Errorf("semiext: implausible header n=%d m=%d", r.n, r.m)
	}
	// The on-disk size must cover the header's claims; this rejects
	// truncated or hostile files before any header-sized allocation.
	if fi, err := r.f.Stat(); err == nil {
		need := 20 + 12*int64(r.n) + 4*r.m
		if fi.Size() < need {
			return fmt.Errorf("semiext: file holds %d bytes, header needs %d", fi.Size(), need)
		}
	}
	r.weights = make([]float64, r.n)
	r.upDeg = make([]int32, r.n)
	var buf [8]byte
	for i := 0; i < r.n; i++ {
		if _, err := io.ReadFull(r.br, buf[:]); err != nil {
			return fmt.Errorf("semiext: reading weights: %w", err)
		}
		r.weights[i] = math.Float64frombits(le.Uint64(buf[:]))
	}
	for i := 0; i < r.n; i++ {
		if _, err := io.ReadFull(r.br, buf[:4]); err != nil {
			return fmt.Errorf("semiext: reading degrees: %w", err)
		}
		r.upDeg[i] = int32(le.Uint32(buf[:4]))
	}
	r.headerSize = 20 + int64(r.n)*12
	return nil
}

// NumVertices returns the vertex count.
func (r *Reader) NumVertices() int { return r.n }

// NumEdges returns the edge count.
func (r *Reader) NumEdges() int64 { return r.m }

// Weight returns the weight of vertex u (rank order, as in graph.Graph).
func (r *Reader) Weight(u int32) float64 { return r.weights[u] }

// UpDegree returns |N≥(u)| without touching the edge stream.
func (r *Reader) UpDegree(u int32) int32 { return r.upDeg[u] }

// NextVertex returns the first vertex whose adjacency has not been
// streamed; the in-memory subgraph currently covers the prefix
// [0, NextVertex()).
func (r *Reader) NextVertex() int { return r.nextVertex }

// BytesRead returns the number of edge payload bytes consumed.
func (r *Reader) BytesRead() int64 { return r.bytesRead }

// ReadVertexEdges streams the up-adjacency list of the next unread vertex,
// appending (v, u) pairs to edges, and returns the extended slice. Calls
// must proceed in vertex order; io.EOF is never returned for vertices whose
// lists are empty.
func (r *Reader) ReadVertexEdges(edges [][2]int32) ([][2]int32, error) {
	if r.nextVertex >= r.n {
		return edges, io.EOF
	}
	u := int32(r.nextVertex)
	var buf [4]byte
	for i := int32(0); i < r.upDeg[u]; i++ {
		if _, err := io.ReadFull(r.br, buf[:]); err != nil {
			return edges, fmt.Errorf("semiext: reading adjacency of vertex %d: %w", u, err)
		}
		v := int32(binary.LittleEndian.Uint32(buf[:]))
		if v < 0 || v >= u {
			return edges, fmt.Errorf("semiext: corrupt up-edge (%d,%d)", v, u)
		}
		edges = append(edges, [2]int32{v, u})
		r.bytesRead += 4
	}
	r.nextVertex++
	return edges, nil
}

// Close releases the file handle.
func (r *Reader) Close() error { return r.f.Close() }
