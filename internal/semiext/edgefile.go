// Package semiext implements the I/O-efficient algorithm variants of
// Eval-VI/VII: graphs whose edges live on disk sorted in decreasing edge
// weight order (an edge's weight is the minimum weight of its endpoints,
// following [27]), with only per-vertex information held in memory.
//
// LocalSearchSE is the semi-external version of LocalSearch-P: it reads the
// on-disk edge stream strictly sequentially and only as far as the query
// needs. OnlineAllSE is the semi-external version of OnlineAll [27], which
// must ingest the entire file. The two reproduce Figure 16 (time) and
// Figure 17 (size of visited graph).
package semiext

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"influcomm/internal/atomicio"
	"influcomm/internal/graph"
)

const fileMagic = uint32(0x5EDB_E55A)

// WriteEdgeFile serializes g to path in the semi-external layout: a header,
// the vertex weight vector, the per-vertex up-degree vector, and then every
// up-adjacency list in ascending rank order of its owner — which is exactly
// decreasing edge weight order, so a prefix of the stream is a prefix
// subgraph G≥τ.
//
// The write is atomic: the file is assembled in a temporary sibling and
// renamed over path on success, so a crash mid-write can never leave a
// truncated edge file where a serving process expects a complete one.
func WriteEdgeFile(path string, g *graph.Graph) error {
	err := atomicio.WriteFile(path, func(f *os.File) error {
		w := bufio.NewWriter(f)
		le := binary.LittleEndian
		var hdr [20]byte
		le.PutUint32(hdr[0:], fileMagic)
		le.PutUint64(hdr[4:], uint64(g.NumVertices()))
		le.PutUint64(hdr[12:], uint64(g.NumEdges()))
		if _, err := w.Write(hdr[:]); err != nil {
			return err
		}
		var buf [8]byte
		for u := int32(0); int(u) < g.NumVertices(); u++ {
			le.PutUint64(buf[:], math.Float64bits(g.Weight(u)))
			if _, err := w.Write(buf[:]); err != nil {
				return err
			}
		}
		for u := int32(0); int(u) < g.NumVertices(); u++ {
			le.PutUint32(buf[:4], uint32(g.UpDegree(u)))
			if _, err := w.Write(buf[:4]); err != nil {
				return err
			}
		}
		for u := int32(0); int(u) < g.NumVertices(); u++ {
			for _, v := range g.UpNeighbors(u) {
				le.PutUint32(buf[:4], uint32(v))
				if _, err := w.Write(buf[:4]); err != nil {
					return err
				}
			}
		}
		return w.Flush()
	})
	if err != nil {
		return fmt.Errorf("semiext: writing edge file: %w", err)
	}
	return nil
}

// Reader streams an edge file. Per the semi-external model it materializes
// only O(n) per-vertex state (weights and up-degrees); edges are delivered
// strictly sequentially and accounted in BytesRead.
type Reader struct {
	c       io.Closer // underlying file; nil for in-memory streams
	br      *bufio.Reader
	size    int64 // total stream length in bytes
	n       int
	m       int64
	weights []float64
	upDeg   []int32

	nextVertex int   // first vertex whose up-edges have not been read
	bytesRead  int64 // edge payload bytes consumed so far
	headerSize int64

	// scratch receives each adjacency list in one bulk read before the
	// entries are decoded; it grows to the largest list seen and survives
	// Reopen, so a pooled reader stops allocating per query.
	scratch []byte
}

// OpenReader opens path and loads the per-vertex information.
func OpenReader(path string) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("semiext: opening edge file: %w", err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("semiext: opening edge file: %w", err)
	}
	r := &Reader{c: f, br: bufio.NewReaderSize(f, 1<<20), size: fi.Size()}
	if err := r.readHeader(); err != nil {
		f.Close()
		return nil, err
	}
	return r, nil
}

// NewReader streams an edge file already held in memory (or any reader of
// known length). It applies exactly the header validation OpenReader does;
// the fuzzer drives the format through this path without touching disk.
func NewReader(src io.Reader, size int64) (*Reader, error) {
	r := &Reader{br: bufio.NewReader(src), size: size}
	if err := r.readHeader(); err != nil {
		return nil, err
	}
	return r, nil
}

// Reopen opens path positioned directly at the edge payload, adopting
// per-vertex state a previous OpenReader of the same file already loaded
// and validated. A store serving many queries over one edge file opens the
// header once and then pays only an open+seek per query instead of
// re-reading 12n bytes of vectors; the reader never writes to the adopted
// slices. Only the file size is re-checked — if the file was swapped for
// one with a different shape, the edge-stream validation (range and order
// checks in ReadVertexAdj/ReadVertexEdges) still rejects it.
//
// The buffered reader's 1 MiB buffer and the decode scratch are kept
// across Reopen calls, so a pool of Readers serves the residual streaming
// path with zero steady-state allocations. The zero Reader is valid to
// Reopen.
func (r *Reader) Reopen(path string, weights []float64, upDeg []int32, m int64) error {
	n := len(weights)
	if len(upDeg) != n {
		return fmt.Errorf("semiext: weights hold %d vertices, up-degrees %d", n, len(upDeg))
	}
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("semiext: opening edge file: %w", err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("semiext: opening edge file: %w", err)
	}
	headerSize := 20 + 12*int64(n)
	if fi.Size() < headerSize || (fi.Size()-headerSize)/4 < m {
		f.Close()
		return fmt.Errorf("semiext: file holds %d bytes, too short for n=%d m=%d", fi.Size(), n, m)
	}
	if _, err := f.Seek(headerSize, io.SeekStart); err != nil {
		f.Close()
		return fmt.Errorf("semiext: seeking past header: %w", err)
	}
	if r.br == nil {
		r.br = bufio.NewReaderSize(f, 1<<20)
	} else {
		r.br.Reset(f)
	}
	r.c = f
	r.size = fi.Size()
	r.n = n
	r.m = m
	r.weights = weights
	r.upDeg = upDeg
	r.headerSize = headerSize
	r.nextVertex = 0
	r.bytesRead = 0
	return nil
}

func (r *Reader) readHeader() error {
	le := binary.LittleEndian
	var hdr [20]byte
	if _, err := io.ReadFull(r.br, hdr[:]); err != nil {
		return fmt.Errorf("semiext: reading header: %w", err)
	}
	if le.Uint32(hdr[0:]) != fileMagic {
		return fmt.Errorf("semiext: bad magic %#x", le.Uint32(hdr[0:]))
	}
	r.n = int(le.Uint64(hdr[4:]))
	r.m = int64(le.Uint64(hdr[12:]))
	if r.n < 0 || r.m < 0 || int64(r.n) > math.MaxInt32 {
		return fmt.Errorf("semiext: implausible header n=%d m=%d", r.n, r.m)
	}
	// The stream must cover the header's claims; this rejects truncated or
	// hostile files before any header-sized allocation. The edge payload is
	// compared by division so an absurd m cannot overflow the arithmetic.
	if vecEnd := 20 + 12*int64(r.n); r.size < vecEnd || (r.size-vecEnd)/4 < r.m {
		return fmt.Errorf("semiext: file holds %d bytes, too short for header n=%d m=%d", r.size, r.n, r.m)
	}
	r.weights = make([]float64, r.n)
	r.upDeg = make([]int32, r.n)
	var buf [8]byte
	for i := 0; i < r.n; i++ {
		if _, err := io.ReadFull(r.br, buf[:]); err != nil {
			return fmt.Errorf("semiext: reading weights: %w", err)
		}
		w := math.Float64frombits(le.Uint64(buf[:]))
		// The format stores vertices in rank order, so weights must be
		// finite and non-increasing; rejecting violations here keeps every
		// access path (streaming, mmap view, direct CSR assembly) in
		// agreement about which files are valid.
		if math.IsNaN(w) || math.IsInf(w, 0) {
			return fmt.Errorf("semiext: vertex %d has non-finite weight %v", i, w)
		}
		if i > 0 && w > r.weights[i-1] {
			return fmt.Errorf("semiext: weights not in decreasing rank order at vertex %d", i)
		}
		r.weights[i] = w
	}
	var degSum int64
	for i := 0; i < r.n; i++ {
		if _, err := io.ReadFull(r.br, buf[:4]); err != nil {
			return fmt.Errorf("semiext: reading degrees: %w", err)
		}
		d := int32(le.Uint32(buf[:4]))
		// Up-neighbors have strictly smaller rank, so vertex i can have at
		// most i of them; anything else is corruption the edge-stream
		// checks would only catch after wasted reads.
		if d < 0 || int64(d) > int64(i) {
			return fmt.Errorf("semiext: vertex %d claims %d up-neighbors, at most %d possible", i, d, i)
		}
		r.upDeg[i] = d
		degSum += int64(d)
	}
	if degSum != r.m {
		return fmt.Errorf("semiext: up-degrees sum to %d edges, header claims %d", degSum, r.m)
	}
	r.headerSize = 20 + int64(r.n)*12
	return nil
}

// NumVertices returns the vertex count.
func (r *Reader) NumVertices() int { return r.n }

// NumEdges returns the edge count.
func (r *Reader) NumEdges() int64 { return r.m }

// Weight returns the weight of vertex u (rank order, as in graph.Graph).
func (r *Reader) Weight(u int32) float64 { return r.weights[u] }

// UpDegree returns |N≥(u)| without touching the edge stream.
func (r *Reader) UpDegree(u int32) int32 { return r.upDeg[u] }

// NextVertex returns the first vertex whose adjacency has not been
// streamed; the in-memory subgraph currently covers the prefix
// [0, NextVertex()).
func (r *Reader) NextVertex() int { return r.nextVertex }

// BytesRead returns the number of edge payload bytes consumed.
func (r *Reader) BytesRead() int64 { return r.bytesRead }

// nextList bulk-reads the raw bytes of the next unread vertex's adjacency
// list into the reader's scratch buffer: one ReadFull per list instead of
// one per edge.
func (r *Reader) nextList() ([]byte, int32, error) {
	u := int32(r.nextVertex)
	need := 4 * int(r.upDeg[u])
	if cap(r.scratch) < need {
		r.scratch = make([]byte, need)
	}
	buf := r.scratch[:need]
	if _, err := io.ReadFull(r.br, buf); err != nil {
		return nil, u, fmt.Errorf("semiext: reading adjacency of vertex %d: %w", u, err)
	}
	return buf, u, nil
}

// ReadVertexEdges streams the up-adjacency list of the next unread vertex,
// appending (v, u) pairs to edges, and returns the extended slice. Calls
// must proceed in vertex order; io.EOF is never returned for vertices whose
// lists are empty.
func (r *Reader) ReadVertexEdges(edges [][2]int32) ([][2]int32, error) {
	if r.nextVertex >= r.n {
		return edges, io.EOF
	}
	buf, u, err := r.nextList()
	if err != nil {
		return edges, err
	}
	for i := 0; i < len(buf); i += 4 {
		v := int32(binary.LittleEndian.Uint32(buf[i:]))
		if v < 0 || v >= u {
			return edges, fmt.Errorf("semiext: corrupt up-edge (%d,%d)", v, u)
		}
		edges = append(edges, [2]int32{v, u})
		r.bytesRead += 4
	}
	r.nextVertex++
	return edges, nil
}

// ReadVertexAdj is ReadVertexEdges in the flat layout FromUpAdjacency
// consumes: the up-neighbor ranks themselves are appended to adj (their
// owner is implicit — the vertex whose turn it is), saving half the memory
// traffic of the pair representation and handing the prefix builder its
// input with no further transformation.
func (r *Reader) ReadVertexAdj(adj []int32) ([]int32, error) {
	if r.nextVertex >= r.n {
		return adj, io.EOF
	}
	buf, u, err := r.nextList()
	if err != nil {
		return adj, err
	}
	for i := 0; i < len(buf); i += 4 {
		v := int32(binary.LittleEndian.Uint32(buf[i:]))
		if v < 0 || v >= u {
			return adj, fmt.Errorf("semiext: corrupt up-edge (%d,%d)", v, u)
		}
		adj = append(adj, v)
		r.bytesRead += 4
	}
	r.nextVertex++
	return adj, nil
}

// Close releases the file handle; it is a no-op for in-memory readers. A
// closed Reader can be rebound to a file with Reopen, keeping its buffers.
func (r *Reader) Close() error {
	if r.c == nil {
		return nil
	}
	err := r.c.Close()
	r.c = nil
	return err
}
