// Package semiext implements the I/O-efficient algorithm variants of
// Eval-VI/VII: graphs whose edges live on disk sorted in decreasing edge
// weight order (an edge's weight is the minimum weight of its endpoints,
// following [27]), with only per-vertex information held in memory.
//
// LocalSearchSE is the semi-external version of LocalSearch-P: it reads the
// on-disk edge stream strictly sequentially and only as far as the query
// needs. OnlineAllSE is the semi-external version of OnlineAll [27], which
// must ingest the entire file. The two reproduce Figure 16 (time) and
// Figure 17 (size of visited graph).
package semiext

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"influcomm/internal/atomicio"
	"influcomm/internal/graph"
)

const (
	fileMagic  = uint32(0x5EDB_E55A)
	fileMagic2 = uint32(0x5EDB_E55B)
)

// Edge-file format versions. FormatV1 stores adjacency as fixed 4-byte
// little-endian ranks; FormatV2 stores each list delta-gap + varint encoded
// behind a block offset index (see varint.go and docs/FORMATS.md). Both
// open through the same Reader and View; writers choose with
// WriteEdgeFileFormat.
const (
	FormatV1 = 1
	FormatV2 = 2
)

// defaultBlockVerts is the v2 block granule: one 8-byte index entry per this
// many vertices, giving parallel decoders aligned entry points at ~0.1% file
// overhead.
const defaultBlockVerts = 1024

// WriteEdgeFile serializes g to path in the semi-external layout: a header,
// the vertex weight vector, the per-vertex up-degree vector, and then every
// up-adjacency list in ascending rank order of its owner — which is exactly
// decreasing edge weight order, so a prefix of the stream is a prefix
// subgraph G≥τ. It writes format v1; WriteEdgeFileFormat selects.
//
// The write is atomic: the file is assembled in a temporary sibling and
// renamed over path on success, so a crash mid-write can never leave a
// truncated edge file where a serving process expects a complete one.
func WriteEdgeFile(path string, g *graph.Graph) error {
	return WriteEdgeFileFormat(path, g, FormatV1)
}

// WriteEdgeFileFormat is WriteEdgeFile with an explicit format version:
// FormatV1 (fixed-width adjacency) or FormatV2 (delta-gap + varint
// compressed adjacency with a block offset index). Both carry the same
// graph; v2 files are typically 3-5x smaller on clustered graphs.
func WriteEdgeFileFormat(path string, g *graph.Graph, format int) error {
	var body func(w *bufio.Writer) error
	switch format {
	case FormatV1:
		body = func(w *bufio.Writer) error { return writeEdgeFileV1(w, g) }
	case FormatV2:
		body = func(w *bufio.Writer) error { return writeEdgeFileV2(w, g) }
	default:
		return fmt.Errorf("semiext: unknown edge-file format %d (want %d or %d)", format, FormatV1, FormatV2)
	}
	err := atomicio.WriteFile(path, func(f *os.File) error {
		w := bufio.NewWriter(f)
		if err := body(w); err != nil {
			return err
		}
		return w.Flush()
	})
	if err != nil {
		return fmt.Errorf("semiext: writing edge file: %w", err)
	}
	return nil
}

func writeEdgeFileV1(w *bufio.Writer, g *graph.Graph) error {
	le := binary.LittleEndian
	var hdr [20]byte
	le.PutUint32(hdr[0:], fileMagic)
	le.PutUint64(hdr[4:], uint64(g.NumVertices()))
	le.PutUint64(hdr[12:], uint64(g.NumEdges()))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	var buf [8]byte
	for u := int32(0); int(u) < g.NumVertices(); u++ {
		le.PutUint64(buf[:], math.Float64bits(g.Weight(u)))
		if _, err := w.Write(buf[:]); err != nil {
			return err
		}
	}
	for u := int32(0); int(u) < g.NumVertices(); u++ {
		le.PutUint32(buf[:4], uint32(g.UpDegree(u)))
		if _, err := w.Write(buf[:4]); err != nil {
			return err
		}
	}
	for u := int32(0); int(u) < g.NumVertices(); u++ {
		for _, v := range g.UpNeighbors(u) {
			le.PutUint32(buf[:4], uint32(v))
			if _, err := w.Write(buf[:4]); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeEdgeFileV2(w *bufio.Writer, g *graph.Graph) error {
	le := binary.LittleEndian
	n := g.NumVertices()
	bv := defaultBlockVerts
	nb := (n + bv - 1) / bv
	// Sizing pass: the block index and the varint up-degree section length
	// go in front of the payload, so their values are computed before any
	// list is encoded.
	blockOff := make([]int64, nb+1)
	var degBytes, payload int64
	for u := 0; u < n; u++ {
		if u%bv == 0 {
			blockOff[u/bv] = payload
		}
		list := g.UpNeighbors(int32(u))
		degBytes += int64(uvarintLen(uint64(len(list))))
		payload += int64(encodedListLen(list))
	}
	blockOff[nb] = payload
	var hdr [32]byte
	le.PutUint32(hdr[0:], fileMagic2)
	le.PutUint64(hdr[4:], uint64(n))
	le.PutUint64(hdr[12:], uint64(g.NumEdges()))
	le.PutUint32(hdr[20:], uint32(bv))
	le.PutUint64(hdr[24:], uint64(degBytes))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	var buf [8]byte
	for u := int32(0); int(u) < n; u++ {
		le.PutUint64(buf[:], math.Float64bits(g.Weight(u)))
		if _, err := w.Write(buf[:]); err != nil {
			return err
		}
	}
	var vbuf [binary.MaxVarintLen64]byte
	for u := int32(0); int(u) < n; u++ {
		if _, err := w.Write(vbuf[:binary.PutUvarint(vbuf[:], uint64(g.UpDegree(u)))]); err != nil {
			return err
		}
	}
	for _, off := range blockOff {
		le.PutUint64(buf[:], uint64(off))
		if _, err := w.Write(buf[:]); err != nil {
			return err
		}
	}
	var scratch []byte
	for u := int32(0); int(u) < n; u++ {
		var err error
		if scratch, err = appendEncodedList(scratch[:0], u, g.UpNeighbors(u)); err != nil {
			return err
		}
		if _, err := w.Write(scratch); err != nil {
			return err
		}
	}
	return nil
}

// Reader streams an edge file. Per the semi-external model it materializes
// only O(n) per-vertex state (weights and up-degrees); edges are delivered
// strictly sequentially and accounted in BytesRead.
type Reader struct {
	c       io.Closer // underlying file; nil for in-memory streams
	br      *bufio.Reader
	size    int64 // total stream length in bytes
	n       int
	m       int64
	weights []float64
	upDeg   []int32

	format     int     // FormatV1 or FormatV2
	blockVerts int     // v2: vertices per block-index granule
	blockOff   []int64 // v2: payload byte offset per block, plus total

	nextVertex int   // first vertex whose up-edges have not been read
	bytesRead  int64 // edge payload bytes consumed so far
	headerSize int64

	// scratch receives each v1 adjacency list in one bulk read before the
	// entries are decoded, and adjScratch each decoded v2 list; both grow to
	// the largest list seen and survive Reopen, so a pooled reader stops
	// allocating per query.
	scratch    []byte
	adjScratch []int32
}

// OpenReader opens path and loads the per-vertex information.
func OpenReader(path string) (*Reader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("semiext: opening edge file: %w", err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("semiext: opening edge file: %w", err)
	}
	r := &Reader{c: f, br: bufio.NewReaderSize(f, 1<<20), size: fi.Size()}
	if err := r.readHeader(); err != nil {
		f.Close()
		return nil, err
	}
	return r, nil
}

// NewReader streams an edge file already held in memory (or any reader of
// known length). It applies exactly the header validation OpenReader does;
// the fuzzer drives the format through this path without touching disk.
func NewReader(src io.Reader, size int64) (*Reader, error) {
	r := &Reader{br: bufio.NewReader(src), size: size}
	if err := r.readHeader(); err != nil {
		return nil, err
	}
	return r, nil
}

// FileMeta is the validated per-file state an open materializes: the
// per-vertex vectors, the payload geometry, and — for v2 files — the block
// offset index. A store that opened and validated an edge file once hands
// its meta to pooled Readers (Reopen) so the per-query cost is an open and
// a seek, not a header re-parse. Adopters must treat the slices as
// immutable.
type FileMeta struct {
	Format     int
	M          int64
	Weights    []float64
	UpDeg      []int32
	PayloadOff int64
	BlockVerts int     // v2 only: vertices per index granule
	BlockOff   []int64 // v2 only: payload byte offset per block, plus total
}

// Meta returns the reader's validated file state for adoption by Reopen on
// pooled readers.
func (r *Reader) Meta() FileMeta {
	return FileMeta{
		Format:     r.format,
		M:          r.m,
		Weights:    r.weights,
		UpDeg:      r.upDeg,
		PayloadOff: r.headerSize,
		BlockVerts: r.blockVerts,
		BlockOff:   r.blockOff,
	}
}

// Reopen opens path positioned directly at the edge payload, adopting
// per-vertex state a previous open of the same file already loaded and
// validated (see FileMeta). A store serving many queries over one edge file
// opens the header once and then pays only an open+seek per query instead
// of re-reading the vector sections; the reader never writes to the adopted
// slices. Only the file size is re-checked — if the file was swapped for
// one with a different shape, the edge-stream validation (range, order and
// block-boundary checks in ReadVertexAdj/ReadVertexEdges) still rejects it.
//
// The buffered reader's 1 MiB buffer and the decode scratch are kept
// across Reopen calls, so a pool of Readers serves the residual streaming
// path with zero steady-state allocations. The zero Reader is valid to
// Reopen.
func (r *Reader) Reopen(path string, meta FileMeta) error {
	n := len(meta.Weights)
	if len(meta.UpDeg) != n {
		return fmt.Errorf("semiext: weights hold %d vertices, up-degrees %d", n, len(meta.UpDeg))
	}
	switch meta.Format {
	case FormatV1:
		if meta.PayloadOff != 20+12*int64(n) {
			return fmt.Errorf("semiext: v1 payload offset %d inconsistent with n=%d", meta.PayloadOff, n)
		}
	case FormatV2:
		if meta.BlockVerts < 1 || len(meta.BlockOff) != (n+meta.BlockVerts-1)/meta.BlockVerts+1 {
			return fmt.Errorf("semiext: v2 meta has %d block offsets for n=%d", len(meta.BlockOff), n)
		}
	default:
		return fmt.Errorf("semiext: unknown edge-file format %d", meta.Format)
	}
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("semiext: opening edge file: %w", err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return fmt.Errorf("semiext: opening edge file: %w", err)
	}
	var payloadLen int64
	if meta.Format == FormatV1 {
		payloadLen = 4 * meta.M
	} else {
		payloadLen = meta.BlockOff[len(meta.BlockOff)-1]
	}
	if fi.Size() < meta.PayloadOff || fi.Size()-meta.PayloadOff < payloadLen {
		f.Close()
		return fmt.Errorf("semiext: file holds %d bytes, too short for n=%d m=%d", fi.Size(), n, meta.M)
	}
	if _, err := f.Seek(meta.PayloadOff, io.SeekStart); err != nil {
		f.Close()
		return fmt.Errorf("semiext: seeking past header: %w", err)
	}
	if r.br == nil {
		r.br = bufio.NewReaderSize(f, 1<<20)
	} else {
		r.br.Reset(f)
	}
	r.c = f
	r.size = fi.Size()
	r.n = n
	r.m = meta.M
	r.weights = meta.Weights
	r.upDeg = meta.UpDeg
	r.format = meta.Format
	r.blockVerts = meta.BlockVerts
	r.blockOff = meta.BlockOff
	r.headerSize = meta.PayloadOff
	r.nextVertex = 0
	r.bytesRead = 0
	return nil
}

func (r *Reader) readHeader() error {
	le := binary.LittleEndian
	var hdr [32]byte
	if _, err := io.ReadFull(r.br, hdr[:20]); err != nil {
		return fmt.Errorf("semiext: reading header: %w", err)
	}
	switch le.Uint32(hdr[0:]) {
	case fileMagic:
		r.format = FormatV1
	case fileMagic2:
		r.format = FormatV2
		if _, err := io.ReadFull(r.br, hdr[20:32]); err != nil {
			return fmt.Errorf("semiext: reading header: %w", err)
		}
	default:
		return fmt.Errorf("semiext: bad magic %#x", le.Uint32(hdr[0:]))
	}
	r.n = int(le.Uint64(hdr[4:]))
	r.m = int64(le.Uint64(hdr[12:]))
	if r.n < 0 || r.m < 0 || int64(r.n) > math.MaxInt32 {
		return fmt.Errorf("semiext: implausible header n=%d m=%d", r.n, r.m)
	}
	// The stream must cover the header's claims; this rejects truncated or
	// hostile files before any header-sized allocation. The v1 edge payload
	// is compared by division so an absurd m cannot overflow the arithmetic;
	// v2 bounds every section with subtraction from the known size.
	var degBytes int64
	var nb int
	if r.format == FormatV1 {
		if vecEnd := 20 + 12*int64(r.n); r.size < vecEnd || (r.size-vecEnd)/4 < r.m {
			return fmt.Errorf("semiext: file holds %d bytes, too short for header n=%d m=%d", r.size, r.n, r.m)
		}
		r.headerSize = 20 + int64(r.n)*12
	} else {
		r.blockVerts = int(le.Uint32(hdr[20:]))
		db := le.Uint64(hdr[24:])
		if r.blockVerts < 1 {
			return fmt.Errorf("semiext: implausible v2 block granule %d", r.blockVerts)
		}
		if db > uint64(r.size) {
			return fmt.Errorf("semiext: file holds %d bytes, too short for %d degree bytes", r.size, db)
		}
		degBytes = int64(db)
		nb = (r.n + r.blockVerts - 1) / r.blockVerts
		rem := r.size - 32 - 8*int64(r.n)
		if rem < 0 || rem-degBytes < 0 || rem-degBytes-8*int64(nb+1) < r.m {
			return fmt.Errorf("semiext: file holds %d bytes, too short for header n=%d m=%d", r.size, r.n, r.m)
		}
		r.headerSize = 32 + 8*int64(r.n) + degBytes + 8*int64(nb+1)
	}
	r.weights = make([]float64, r.n)
	r.upDeg = make([]int32, r.n)
	var buf [8]byte
	for i := 0; i < r.n; i++ {
		if _, err := io.ReadFull(r.br, buf[:]); err != nil {
			return fmt.Errorf("semiext: reading weights: %w", err)
		}
		w := math.Float64frombits(le.Uint64(buf[:]))
		// The format stores vertices in rank order, so weights must be
		// finite and non-increasing; rejecting violations here keeps every
		// access path (streaming, mmap view, direct CSR assembly) in
		// agreement about which files are valid.
		if math.IsNaN(w) || math.IsInf(w, 0) {
			return fmt.Errorf("semiext: vertex %d has non-finite weight %v", i, w)
		}
		if i > 0 && w > r.weights[i-1] {
			return fmt.Errorf("semiext: weights not in decreasing rank order at vertex %d", i)
		}
		r.weights[i] = w
	}
	var degSum int64
	if r.format == FormatV1 {
		for i := 0; i < r.n; i++ {
			if _, err := io.ReadFull(r.br, buf[:4]); err != nil {
				return fmt.Errorf("semiext: reading degrees: %w", err)
			}
			d := int32(le.Uint32(buf[:4]))
			// Up-neighbors have strictly smaller rank, so vertex i can have
			// at most i of them; anything else is corruption the edge-stream
			// checks would only catch after wasted reads.
			if d < 0 || int64(d) > int64(i) {
				return fmt.Errorf("semiext: vertex %d claims %d up-neighbors, at most %d possible", i, d, i)
			}
			r.upDeg[i] = d
			degSum += int64(d)
		}
	} else {
		var consumed int64
		for i := 0; i < r.n; i++ {
			d, k, err := readUvarint(r.br)
			if err != nil {
				return fmt.Errorf("semiext: reading degrees: %w", err)
			}
			consumed += int64(k)
			if consumed > degBytes || d > uint64(i) {
				return fmt.Errorf("semiext: vertex %d claims %d up-neighbors, at most %d possible", i, d, i)
			}
			r.upDeg[i] = int32(d)
			degSum += int64(d)
		}
		if consumed != degBytes {
			return fmt.Errorf("semiext: degree section holds %d bytes, header claims %d", consumed, degBytes)
		}
	}
	if degSum != r.m {
		return fmt.Errorf("semiext: up-degrees sum to %d edges, header claims %d", degSum, r.m)
	}
	if r.format == FormatV2 {
		off, err := readBlockIndex(r.br, nb, r.m, r.size-r.headerSize)
		if err != nil {
			return err
		}
		r.blockOff = off
	}
	return nil
}

// readUvarint decodes one unsigned varint from br, returning the value and
// the bytes consumed. Unlike binary.ReadUvarint it reports the byte count,
// which the v2 paths account against the declared section lengths. Both call
// sites expect a varint to be present, so running out of stream is reported
// as ErrUnexpectedEOF — a clean io.EOF would read as end-of-payload to
// streaming callers.
func readUvarint(br *bufio.Reader) (uint64, int, error) {
	var x uint64
	var s uint
	for i := 0; i < binary.MaxVarintLen64; i++ {
		b, err := br.ReadByte()
		if err != nil {
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return 0, i, err
		}
		if b < 0x80 {
			if i == binary.MaxVarintLen64-1 && b > 1 {
				return 0, i + 1, fmt.Errorf("varint overflows 64 bits")
			}
			return x | uint64(b)<<s, i + 1, nil
		}
		x |= uint64(b&0x7f) << s
		s += 7
	}
	return 0, binary.MaxVarintLen64, fmt.Errorf("varint overflows 64 bits")
}

// readBlockIndex reads and validates the nb+1 entry v2 block offset index:
// offsets are payload-relative, start at zero, never decrease, and the
// final entry — the encoded payload length — fits the file and covers at
// least one byte per edge.
func readBlockIndex(br *bufio.Reader, nb int, m, payloadCap int64) ([]int64, error) {
	off := make([]int64, nb+1)
	var buf [8]byte
	prev := uint64(0)
	for b := 0; b <= nb; b++ {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return nil, fmt.Errorf("semiext: reading block index: %w", err)
		}
		o := binary.LittleEndian.Uint64(buf[:])
		if (b == 0 && o != 0) || o < prev || o > uint64(payloadCap) {
			return nil, fmt.Errorf("semiext: corrupt block index at entry %d", b)
		}
		off[b] = int64(o)
		prev = o
	}
	if off[nb] < m {
		return nil, fmt.Errorf("semiext: payload of %d bytes cannot hold %d edges", off[nb], m)
	}
	return off, nil
}

// Format returns the edge-file format version: FormatV1 or FormatV2.
func (r *Reader) Format() int { return r.format }

// NumVertices returns the vertex count.
func (r *Reader) NumVertices() int { return r.n }

// NumEdges returns the edge count.
func (r *Reader) NumEdges() int64 { return r.m }

// Weight returns the weight of vertex u (rank order, as in graph.Graph).
func (r *Reader) Weight(u int32) float64 { return r.weights[u] }

// UpDegree returns |N≥(u)| without touching the edge stream.
func (r *Reader) UpDegree(u int32) int32 { return r.upDeg[u] }

// NextVertex returns the first vertex whose adjacency has not been
// streamed; the in-memory subgraph currently covers the prefix
// [0, NextVertex()).
func (r *Reader) NextVertex() int { return r.nextVertex }

// BytesRead returns the number of edge payload bytes consumed.
func (r *Reader) BytesRead() int64 { return r.bytesRead }

// nextList bulk-reads the raw bytes of the next unread vertex's adjacency
// list into the reader's scratch buffer: one ReadFull per list instead of
// one per edge.
func (r *Reader) nextList() ([]byte, int32, error) {
	u := int32(r.nextVertex)
	need := 4 * int(r.upDeg[u])
	if cap(r.scratch) < need {
		r.scratch = make([]byte, need)
	}
	buf := r.scratch[:need]
	if _, err := io.ReadFull(r.br, buf); err != nil {
		return nil, u, fmt.Errorf("semiext: reading adjacency of vertex %d: %w", u, err)
	}
	return buf, u, nil
}

// nextListV2 streams the delta-gap varint encoded list of the next unread
// vertex into the reader's int32 scratch, enforcing the same invariants the
// bulk View decoder does: block boundaries land on their declared offsets,
// entries ascend strictly within [0, owner), and a fully consumed stream
// ends exactly at the indexed payload length.
func (r *Reader) nextListV2() ([]int32, int32, error) {
	u := int32(r.nextVertex)
	if int(u)%r.blockVerts == 0 {
		if want := r.blockOff[int(u)/r.blockVerts]; r.bytesRead != want {
			return nil, u, fmt.Errorf("semiext: block %d starts at payload byte %d, index says %d", int(u)/r.blockVerts, r.bytesRead, want)
		}
	}
	d := int(r.upDeg[u])
	if cap(r.adjScratch) < d {
		r.adjScratch = make([]int32, d)
	}
	list := r.adjScratch[:d]
	var cur uint64
	for j := 0; j < d; j++ {
		x, k, err := readUvarint(r.br)
		if err != nil {
			return nil, u, fmt.Errorf("semiext: reading adjacency of vertex %d: %w", u, err)
		}
		r.bytesRead += int64(k)
		if j == 0 {
			cur = x
		} else {
			if x >= uint64(u) {
				return nil, u, fmt.Errorf("semiext: corrupt adjacency of vertex %d", u)
			}
			cur += x + 1
		}
		if cur >= uint64(u) {
			return nil, u, fmt.Errorf("semiext: corrupt adjacency of vertex %d", u)
		}
		list[j] = int32(cur)
	}
	r.nextVertex++
	if r.nextVertex == r.n {
		if want := r.blockOff[len(r.blockOff)-1]; r.bytesRead != want {
			return nil, u, fmt.Errorf("semiext: payload ends at byte %d, index says %d", r.bytesRead, want)
		}
	}
	return list, u, nil
}

// ReadVertexEdges streams the up-adjacency list of the next unread vertex,
// appending (v, u) pairs to edges, and returns the extended slice. Calls
// must proceed in vertex order; io.EOF is never returned for vertices whose
// lists are empty.
func (r *Reader) ReadVertexEdges(edges [][2]int32) ([][2]int32, error) {
	if r.nextVertex >= r.n {
		return edges, io.EOF
	}
	if r.format == FormatV2 {
		list, u, err := r.nextListV2()
		if err != nil {
			return edges, err
		}
		for _, v := range list {
			edges = append(edges, [2]int32{v, u})
		}
		return edges, nil
	}
	buf, u, err := r.nextList()
	if err != nil {
		return edges, err
	}
	for i := 0; i < len(buf); i += 4 {
		v := int32(binary.LittleEndian.Uint32(buf[i:]))
		if v < 0 || v >= u {
			return edges, fmt.Errorf("semiext: corrupt up-edge (%d,%d)", v, u)
		}
		edges = append(edges, [2]int32{v, u})
		r.bytesRead += 4
	}
	r.nextVertex++
	return edges, nil
}

// ReadVertexAdj is ReadVertexEdges in the flat layout FromUpAdjacency
// consumes: the up-neighbor ranks themselves are appended to adj (their
// owner is implicit — the vertex whose turn it is), saving half the memory
// traffic of the pair representation and handing the prefix builder its
// input with no further transformation.
func (r *Reader) ReadVertexAdj(adj []int32) ([]int32, error) {
	if r.nextVertex >= r.n {
		return adj, io.EOF
	}
	if r.format == FormatV2 {
		list, _, err := r.nextListV2()
		if err != nil {
			return adj, err
		}
		return append(adj, list...), nil
	}
	buf, u, err := r.nextList()
	if err != nil {
		return adj, err
	}
	for i := 0; i < len(buf); i += 4 {
		v := int32(binary.LittleEndian.Uint32(buf[i:]))
		if v < 0 || v >= u {
			return adj, fmt.Errorf("semiext: corrupt up-edge (%d,%d)", v, u)
		}
		adj = append(adj, v)
		r.bytesRead += 4
	}
	r.nextVertex++
	return adj, nil
}

// Close releases the file handle; it is a no-op for in-memory readers. A
// closed Reader can be rebound to a file with Reopen, keeping its buffers.
func (r *Reader) Close() error {
	if r.c == nil {
		return nil
	}
	err := r.c.Close()
	r.c = nil
	return err
}
