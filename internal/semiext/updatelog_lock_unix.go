//go:build unix

package semiext

import (
	"fmt"
	"os"
	"syscall"
)

// lockLogFile takes an exclusive advisory lock on the open log file, so
// two stores (two datasets of one server, or two processes) can never
// append to — and silently corrupt — the same write-ahead log. The lock
// dies with the file descriptor, so a crashed holder never blocks
// recovery the way a lock *file* would.
func lockLogFile(f *os.File) error {
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		return fmt.Errorf("semiext: update log %s is locked by another store (same edge file opened mutably twice?): %w", f.Name(), err)
	}
	return nil
}
