package semiext

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"influcomm/internal/core"
	"influcomm/internal/gen"
	"influcomm/internal/graph"
)

func writeTemp(t *testing.T, g *graph.Graph) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "graph.edges")
	if err := WriteEdgeFile(path, g); err != nil {
		t.Fatalf("writing edge file: %v", err)
	}
	return path
}

func TestEdgeFileRoundTrip(t *testing.T) {
	g := gen.Random(100, 6, 5)
	path := writeTemp(t, g)
	r, err := OpenReader(path)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	defer r.Close()
	if r.NumVertices() != g.NumVertices() || r.NumEdges() != g.NumEdges() {
		t.Fatalf("header (%d,%d), want (%d,%d)", r.NumVertices(), r.NumEdges(), g.NumVertices(), g.NumEdges())
	}
	for u := int32(0); int(u) < g.NumVertices(); u++ {
		if r.Weight(u) != g.Weight(u) {
			t.Fatalf("weight of %d = %v, want %v", u, r.Weight(u), g.Weight(u))
		}
		if r.UpDegree(u) != g.UpDegree(u) {
			t.Fatalf("updeg of %d = %d, want %d", u, r.UpDegree(u), g.UpDegree(u))
		}
	}
	var edges []int32
	for r.NextVertex() < r.NumVertices() {
		edges, err = r.ReadVertexAdj(edges)
		if err != nil {
			t.Fatalf("streaming: %v", err)
		}
	}
	if int64(len(edges)) != g.NumEdges() {
		t.Fatalf("streamed %d edges, want %d", len(edges), g.NumEdges())
	}
	if r.BytesRead() != 4*g.NumEdges() {
		t.Fatalf("BytesRead = %d, want %d", r.BytesRead(), 4*g.NumEdges())
	}
	// Rebuild and compare structure.
	rebuilt, err := buildPrefix(r, r.NumVertices(), edges)
	if err != nil {
		t.Fatalf("rebuild: %v", err)
	}
	if err := rebuilt.Validate(); err != nil {
		t.Fatalf("rebuilt graph invalid: %v", err)
	}
	for u := int32(0); int(u) < g.NumVertices(); u++ {
		if rebuilt.Degree(u) != g.Degree(u) {
			t.Fatalf("degree of %d = %d, want %d", u, rebuilt.Degree(u), g.Degree(u))
		}
	}
}

func TestLocalSearchSEMatchesInMemory(t *testing.T) {
	for seed := uint64(1); seed <= 6; seed++ {
		g := gen.Random(150, 6, seed)
		path := writeTemp(t, g)
		for _, gamma := range []int32{2, 3} {
			for _, k := range []int{1, 3, 8} {
				want, err := core.TopK(g, k, gamma, core.Options{})
				if err != nil {
					t.Fatalf("in-memory: %v", err)
				}
				got, st, err := LocalSearchSE(path, k, gamma)
				if err != nil {
					t.Fatalf("LocalSearchSE: %v", err)
				}
				if len(got) != len(want.Communities) {
					t.Fatalf("seed %d k=%d γ=%d: got %d communities, want %d",
						seed, k, gamma, len(got), len(want.Communities))
				}
				for i := range got {
					a := fmt.Sprintf("%d:%v", got[i].Keynode(), got[i].Vertices())
					b := fmt.Sprintf("%d:%v", want.Communities[i].Keynode(), want.Communities[i].Vertices())
					if a != b {
						t.Fatalf("seed %d k=%d γ=%d: community %d differs\n got %s\nwant %s", seed, k, gamma, i, a, b)
					}
				}
				if st.EdgesLoaded > g.NumEdges() {
					t.Errorf("loaded %d edges, graph has %d", st.EdgesLoaded, g.NumEdges())
				}
			}
		}
	}
}

func TestOnlineAllSEMatchesInMemory(t *testing.T) {
	g := gen.Random(120, 5, 9)
	path := writeTemp(t, g)
	got, st, err := OnlineAllSE(path, 5, 2)
	if err != nil {
		t.Fatalf("OnlineAllSE: %v", err)
	}
	want := core.NaiveTopK(g, 5, 2)
	if len(got) != len(want) {
		t.Fatalf("got %d communities, want %d", len(got), len(want))
	}
	for i := range want {
		a := fmt.Sprintf("%d:%v", got[i].Keynode, got[i].Vertices)
		b := fmt.Sprintf("%d:%v", want[i].Keynode, want[i].Vertices)
		if a != b {
			t.Fatalf("community %d differs\n got %s\nwant %s", i, a, b)
		}
	}
	if st.VisitedFraction != 1 {
		t.Errorf("OnlineAllSE visited fraction = %v, want 1", st.VisitedFraction)
	}
	if st.BytesRead != 4*g.NumEdges() {
		t.Errorf("OnlineAllSE read %d bytes, want %d", st.BytesRead, 4*g.NumEdges())
	}
}

func TestLocalSearchSEReadsLess(t *testing.T) {
	// On a graph whose top communities live among the highest weights, the
	// local algorithm must read strictly less of the file than a full scan.
	g, err := gen.PlantedCommunities(20, 15, 0.8, 0.5, 7)
	if err != nil {
		t.Fatal(err)
	}
	path := writeTemp(t, g)
	_, st, err := LocalSearchSE(path, 2, 4)
	if err != nil {
		t.Fatalf("LocalSearchSE: %v", err)
	}
	if st.BytesRead >= 4*g.NumEdges() {
		t.Errorf("local search read the whole file: %d of %d bytes", st.BytesRead, 4*g.NumEdges())
	}
	if st.VisitedFraction >= 1 {
		t.Errorf("visited fraction = %v, want < 1", st.VisitedFraction)
	}
}

func TestEdgeFileProperty(t *testing.T) {
	// Arbitrary random graphs round-trip through the edge file, and any
	// prefix of the stream reconstructs exactly the prefix subgraph.
	for seed := uint64(1); seed <= 10; seed++ {
		g := gen.Random(40+int(seed*13)%80, 5, seed)
		path := writeTemp(t, g)
		r, err := OpenReader(path)
		if err != nil {
			t.Fatal(err)
		}
		p := g.NumVertices() / 2
		var edges []int32
		for r.NextVertex() < p {
			edges, err = r.ReadVertexAdj(edges)
			if err != nil {
				t.Fatal(err)
			}
		}
		prefix, err := buildPrefix(r, p, edges)
		if err != nil {
			t.Fatal(err)
		}
		if prefix.NumEdges() != g.PrefixEdges(p) {
			t.Fatalf("seed %d: prefix %d has %d edges, want %d",
				seed, p, prefix.NumEdges(), g.PrefixEdges(p))
		}
		for u := int32(0); int(u) < p; u++ {
			if prefix.DegreeWithin(u, p) != g.DegreeWithin(u, p) {
				t.Fatalf("seed %d: prefix degree of %d differs", seed, u)
			}
		}
		r.Close()
	}
}

func TestReaderRejectsTruncatedFile(t *testing.T) {
	g := gen.Random(50, 5, 2)
	path := writeTemp(t, g)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	short := filepath.Join(t.TempDir(), "short.edges")
	if err := os.WriteFile(short, data[:len(data)-8], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenReader(short); err == nil {
		t.Error("truncated edge file: want error at open (size check)")
	}
}

func TestWriteEdgeFileAtomic(t *testing.T) {
	g := gen.Random(60, 4, 3)
	dir := t.TempDir()
	path := filepath.Join(dir, "g.edges")
	// Two writes to the same path: the second must replace the first via
	// rename, leaving no temporary siblings behind.
	for i := 0; i < 2; i++ {
		if err := WriteEdgeFile(path, g); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "g.edges" {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("directory holds %v, want only g.edges (temp files must not leak)", names)
	}
	if _, err := OpenReader(path); err != nil {
		t.Fatalf("rewritten file unreadable: %v", err)
	}
}

func TestReaderRejectsInconsistentDegrees(t *testing.T) {
	g := gen.Random(50, 5, 4)
	path := writeTemp(t, g)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	n := g.NumVertices()

	// Vertex 0 cannot have up-neighbors; claiming one must be rejected.
	impossible := append([]byte(nil), data...)
	impossible[20+8*n] = 1
	bad := filepath.Join(t.TempDir(), "impossible.edges")
	if err := os.WriteFile(bad, impossible, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenReader(bad); err == nil {
		t.Error("up-degree exceeding rank: want error at open")
	}

	// Zeroing a late vertex's degree breaks the sum-vs-header cross-check
	// without changing the file size.
	mismatch := append([]byte(nil), data...)
	for u := n - 1; u > 0; u-- {
		off := 20 + 8*n + 4*u
		if mismatch[off] != 0 {
			mismatch[off] = 0
			break
		}
	}
	bad2 := filepath.Join(t.TempDir(), "mismatch.edges")
	if err := os.WriteFile(bad2, mismatch, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenReader(bad2); err == nil {
		t.Error("degree sum != header edge count: want error at open")
	}
}

func TestOpenReaderErrors(t *testing.T) {
	if _, err := OpenReader(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("missing file: want error")
	}
	bad := filepath.Join(t.TempDir(), "bad")
	if err := os.WriteFile(bad, []byte("not an edge file at all........"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenReader(bad); err == nil {
		t.Error("corrupt file: want error")
	}
}

func TestQueryValidationSE(t *testing.T) {
	g := gen.Random(20, 3, 1)
	path := writeTemp(t, g)
	if _, _, err := LocalSearchSE(path, 0, 3); err == nil {
		t.Error("k=0: want error")
	}
	if _, _, err := OnlineAllSE(path, 1, 0); err == nil {
		t.Error("gamma=0: want error")
	}
}
