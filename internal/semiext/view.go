package semiext

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"sync"
	"unsafe"
)

// hostLittleEndian reports whether int32 values can be reinterpreted
// directly from the little-endian file bytes. On big-endian hosts every
// access path falls back to the explicit bulk decoder.
var hostLittleEndian = binary.NativeEndian.Uint16([]byte{0x34, 0x12}) == 0x1234

// int32view reinterprets b (length a multiple of 4, 4-byte aligned) as
// []int32 without copying. Callers gate on hostLittleEndian.
func int32view(b []byte) []int32 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*int32)(unsafe.Pointer(&b[0])), len(b)/4)
}

// int32bytes is the inverse view: the raw bytes backing s. Used to pread
// file content directly into a caller's []int32 buffer on little-endian
// hosts, skipping the intermediate byte buffer.
func int32bytes(s []int32) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*4)
}

// DecodeInt32s bulk-decodes little-endian int32 values: dst[i] is read from
// src[4i:4i+4]. len(src) must be at least 4*len(dst). Converting whole
// adjacency runs at once is what replaces the seed's per-edge
// binary.LittleEndian.Uint32 loop on paths that cannot alias the mapping.
func DecodeInt32s(dst []int32, src []byte) {
	_ = src[:4*len(dst)]
	for i := range dst {
		dst[i] = int32(binary.LittleEndian.Uint32(src[4*i:]))
	}
}

// decodeFloat64s bulk-decodes little-endian float64 values.
func decodeFloat64s(dst []float64, src []byte) {
	_ = src[:8*len(dst)]
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(src[8*i:]))
	}
}

// View is random access over an edge file with no per-query cost: the file
// is validated and its per-vertex vectors decoded once at open, and
// adjacency ranges are served as typed slices straight over a read-only
// memory mapping — no file opens, no buffered readers, no header re-parse,
// no per-edge decode loop on the query path. On platforms without the mmap
// path the same API is served by positioned ReaderAt reads plus the bulk
// decoder.
//
// A View is safe for concurrent use. Close unmaps the file; slices
// previously returned by Adj that alias the mapping must not be used after
// Close (the semi-external store refcounts queries to guarantee this).
type View struct {
	data []byte   // whole-file mapping, or the whole file for in-memory views; nil in ReaderAt mode
	f    *os.File // backing file; nil for in-memory views
	ra   io.ReaderAt

	n          int
	m          int64
	headerSize int64
	weights    []float64 // always decoded: the region is not 8-byte aligned
	upDeg      []int32   // aliases the mapping on little-endian v1 mmap builds

	format         int     // FormatV1 or FormatV2
	blockVerts     int     // v2: vertices per block-index granule
	blockOff       []int64 // v2: payload byte offset per block, plus total
	blockEdgeStart []int64 // v2: edge rank at each block boundary, plus m

	mapped bool // data came from mmapFile and needs munmap
}

// OpenView opens path as a View, memory-mapping it when the platform
// supports it and falling back to ReaderAt access otherwise. Validation is
// exactly OpenReader's.
func OpenView(path string) (*View, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("semiext: opening edge file: %w", err)
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("semiext: opening edge file: %w", err)
	}
	v := &View{f: f, ra: f}
	// On mmap failure — a platform without the fast path, or an unmappable
	// file (size overflow, exotic filesystem) — adjacency is served through
	// positioned reads instead of refusing a file the streaming path could
	// read.
	if data, merr := mmapFile(f, fi.Size()); merr == nil {
		v.data = data
		v.mapped = true
	}
	if err := v.parse(fi.Size()); err != nil {
		v.Close()
		return nil, err
	}
	return v, nil
}

// ViewFromBytes is a View over an edge-file image already in memory, with
// the same validation as OpenView; tests and the fuzzer drive the format
// through it without touching disk.
func ViewFromBytes(data []byte) (*View, error) {
	v := &View{data: data}
	if err := v.parse(int64(len(data))); err != nil {
		return nil, err
	}
	return v, nil
}

// parse validates the header and decodes the per-vertex vectors, mirroring
// Reader.readHeader: both entry points accept exactly the same files.
func (v *View) parse(size int64) error {
	le := binary.LittleEndian
	var hdrBuf [20]byte
	hdr, err := v.bytes(0, 20, hdrBuf[:0])
	if err != nil {
		return fmt.Errorf("semiext: reading header: %w", err)
	}
	switch le.Uint32(hdr[0:]) {
	case fileMagic:
		v.format = FormatV1
	case fileMagic2:
		v.format = FormatV2
	default:
		return fmt.Errorf("semiext: bad magic %#x", le.Uint32(hdr[0:]))
	}
	v.n = int(le.Uint64(hdr[4:]))
	v.m = int64(le.Uint64(hdr[12:]))
	if v.n < 0 || v.m < 0 || int64(v.n) > math.MaxInt32 {
		return fmt.Errorf("semiext: implausible header n=%d m=%d", v.n, v.m)
	}
	var degBytes int64
	var nb int
	var weightsOff int64 = 20
	if v.format == FormatV1 {
		vecEnd := 20 + 12*int64(v.n)
		if size < vecEnd || (size-vecEnd)/4 < v.m {
			return fmt.Errorf("semiext: file holds %d bytes, too short for header n=%d m=%d", size, v.n, v.m)
		}
		v.headerSize = vecEnd
	} else {
		var extBuf [12]byte
		ext, err := v.bytes(20, 12, extBuf[:0])
		if err != nil {
			return fmt.Errorf("semiext: reading header: %w", err)
		}
		v.blockVerts = int(le.Uint32(ext[0:]))
		db := le.Uint64(ext[4:])
		if v.blockVerts < 1 {
			return fmt.Errorf("semiext: implausible v2 block granule %d", v.blockVerts)
		}
		if db > uint64(size) {
			return fmt.Errorf("semiext: file holds %d bytes, too short for %d degree bytes", size, db)
		}
		degBytes = int64(db)
		nb = (v.n + v.blockVerts - 1) / v.blockVerts
		rem := size - 32 - 8*int64(v.n)
		if rem < 0 || rem-degBytes < 0 || rem-degBytes-8*int64(nb+1) < v.m {
			return fmt.Errorf("semiext: file holds %d bytes, too short for header n=%d m=%d", size, v.n, v.m)
		}
		v.headerSize = 32 + 8*int64(v.n) + degBytes + 8*int64(nb+1)
		weightsOff = 32
	}

	wb, err := v.bytes(weightsOff, 8*int64(v.n), nil)
	if err != nil {
		return fmt.Errorf("semiext: reading weights: %w", err)
	}
	v.weights = make([]float64, v.n)
	decodeFloat64s(v.weights, wb)
	for i, w := range v.weights {
		if math.IsNaN(w) || math.IsInf(w, 0) {
			return fmt.Errorf("semiext: vertex %d has non-finite weight %v", i, w)
		}
		if i > 0 && w > v.weights[i-1] {
			return fmt.Errorf("semiext: weights not in decreasing rank order at vertex %d", i)
		}
	}

	var degSum int64
	if v.format == FormatV1 {
		db, err := v.bytes(20+8*int64(v.n), 4*int64(v.n), nil)
		if err != nil {
			return fmt.Errorf("semiext: reading degrees: %w", err)
		}
		if v.data != nil && hostLittleEndian {
			v.upDeg = int32view(db)
		} else {
			v.upDeg = make([]int32, v.n)
			DecodeInt32s(v.upDeg, db)
		}
		for i, d := range v.upDeg {
			if d < 0 || int64(d) > int64(i) {
				return fmt.Errorf("semiext: vertex %d claims %d up-neighbors, at most %d possible", i, d, i)
			}
			degSum += int64(d)
		}
	} else {
		raw, err := v.bytes(32+8*int64(v.n), degBytes, nil)
		if err != nil {
			return fmt.Errorf("semiext: reading degrees: %w", err)
		}
		v.upDeg = make([]int32, v.n)
		pos := 0
		for i := 0; i < v.n; i++ {
			d, k := binary.Uvarint(raw[pos:])
			if k <= 0 || d > uint64(i) {
				return fmt.Errorf("semiext: vertex %d claims %d up-neighbors, at most %d possible", i, d, i)
			}
			pos += k
			v.upDeg[i] = int32(d)
			degSum += int64(d)
		}
		if int64(pos) != degBytes {
			return fmt.Errorf("semiext: degree section holds %d bytes, header claims %d", pos, degBytes)
		}
	}
	if degSum != v.m {
		return fmt.Errorf("semiext: up-degrees sum to %d edges, header claims %d", degSum, v.m)
	}
	if v.format == FormatV2 {
		ib, err := v.bytes(32+8*int64(v.n)+degBytes, 8*int64(nb+1), nil)
		if err != nil {
			return fmt.Errorf("semiext: reading block index: %w", err)
		}
		payloadCap := size - v.headerSize
		off := make([]int64, nb+1)
		prev := uint64(0)
		for b := 0; b <= nb; b++ {
			o := binary.LittleEndian.Uint64(ib[8*b:])
			if (b == 0 && o != 0) || o < prev || o > uint64(payloadCap) {
				return fmt.Errorf("semiext: corrupt block index at entry %d", b)
			}
			off[b] = int64(o)
			prev = o
		}
		if off[nb] < v.m {
			return fmt.Errorf("semiext: payload of %d bytes cannot hold %d edges", off[nb], v.m)
		}
		v.blockOff = off
		// Edge rank at every block boundary: the parallel decoder uses it to
		// give each chunk a disjoint slice of the output.
		es := make([]int64, nb+1)
		var sum int64
		for i, d := range v.upDeg {
			if i%v.blockVerts == 0 {
				es[i/v.blockVerts] = sum
			}
			sum += int64(d)
		}
		es[nb] = sum
		v.blockEdgeStart = es
	}
	return nil
}

// bytes returns the file region [off, off+n): sliced from the mapping when
// one exists, otherwise read into buf (grown as needed).
func (v *View) bytes(off, n int64, buf []byte) ([]byte, error) {
	if v.data != nil {
		if off+n > int64(len(v.data)) {
			return nil, io.ErrUnexpectedEOF
		}
		return v.data[off : off+n : off+n], nil
	}
	if int64(cap(buf)) < n {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := v.ra.ReadAt(buf, off); err != nil {
		return nil, err
	}
	return buf, nil
}

// NumVertices returns the vertex count.
func (v *View) NumVertices() int { return v.n }

// NumEdges returns the edge count.
func (v *View) NumEdges() int64 { return v.m }

// Weights returns the per-vertex weight vector indexed by rank. The caller
// must not modify it.
func (v *View) Weights() []float64 { return v.weights }

// UpDegrees returns the per-vertex up-degree vector. The caller must not
// modify it; on mmap builds it aliases the read-only mapping.
func (v *View) UpDegrees() []int32 { return v.upDeg }

// Format returns the edge-file format version: FormatV1 or FormatV2.
func (v *View) Format() int { return v.format }

// Mapped reports whether byte access goes through a memory mapping (as
// opposed to positioned reads).
func (v *View) Mapped() bool { return v.data != nil && hostLittleEndian }

// ZeroCopy reports whether adjacency results alias the mapping directly:
// true only for v1 files on little-endian mmap builds. v2 adjacency is
// always decoded into a caller buffer, whatever the byte access path.
func (v *View) ZeroCopy() bool { return v.Mapped() && v.format == FormatV1 }

// Meta returns the view's validated file state for adoption by Reopen on
// pooled streaming readers.
func (v *View) Meta() FileMeta {
	return FileMeta{
		Format:     v.format,
		M:          v.m,
		Weights:    v.weights,
		UpDeg:      v.upDeg,
		PayloadOff: v.headerSize,
		BlockVerts: v.blockVerts,
		BlockOff:   v.blockOff,
	}
}

// Adj returns the up-adjacency entries with edge ranks [lo, hi): the
// concatenation of every vertex's up-neighbor list in file order, so the
// run [0, E(p)) is exactly the up-adjacency of the prefix [0, p). On
// little-endian mmap builds the result aliases the mapping and buf is
// untouched; otherwise the entries are decoded into buf (grown as needed),
// one bulk read for the whole run.
func (v *View) Adj(lo, hi int64, buf []int32) ([]int32, error) {
	if v.format != FormatV1 {
		return nil, fmt.Errorf("semiext: format v%d adjacency has no per-edge byte offsets; use AdjPrefix", v.format)
	}
	if lo < 0 || hi < lo || hi > v.m {
		return nil, fmt.Errorf("semiext: adjacency range [%d,%d) outside [0,%d)", lo, hi, v.m)
	}
	cnt := hi - lo
	off := v.headerSize + 4*lo
	if v.data != nil {
		b := v.data[off : off+4*cnt : off+4*cnt]
		if hostLittleEndian {
			return int32view(b), nil
		}
		if int64(cap(buf)) < cnt {
			buf = make([]int32, cnt)
		}
		buf = buf[:cnt]
		DecodeInt32s(buf, b)
		return buf, nil
	}
	if int64(cap(buf)) < cnt {
		buf = make([]int32, cnt)
	}
	buf = buf[:cnt]
	if hostLittleEndian {
		// pread straight into the caller's buffer: the bytes are already in
		// the layout the host reads int32s in.
		if _, err := v.ra.ReadAt(int32bytes(buf), off); err != nil {
			return nil, fmt.Errorf("semiext: reading adjacency: %w", err)
		}
		return buf, nil
	}
	raw := make([]byte, 4*cnt)
	if _, err := v.ra.ReadAt(raw, off); err != nil {
		return nil, fmt.Errorf("semiext: reading adjacency: %w", err)
	}
	DecodeInt32s(buf, raw)
	return buf, nil
}

// minDecodeChunkEdges bounds how finely AdjPrefix splits a decode: below
// this many edges per chunk the goroutine handoff costs more than the
// decode it parallelizes.
const minDecodeChunkEdges = 1 << 15

// AdjPrefix returns the up-adjacency of the prefix [0, p) in the flat
// layout FromUpAdjacency consumes — edge ranks [0, e), where e is the edge
// count of the prefix (the caller's prefix sums already know it; it is
// re-validated here). For v1 this is Adj(0, e, buf) — zero-copy on mmap
// builds. For v2 the compressed payload is decoded into buf; with
// workers > 1 the block offset index splits the decode into disjoint
// chunks handled concurrently, each chunk writing its own slice of buf, so
// the result is byte-identical at any worker count.
func (v *View) AdjPrefix(p int, e int64, workers int, buf []int32) ([]int32, error) {
	if p < 0 || p > v.n {
		return nil, fmt.Errorf("semiext: prefix %d outside [0,%d]", p, v.n)
	}
	if v.format == FormatV1 {
		return v.Adj(0, e, buf)
	}
	bv := v.blockVerts
	nbp := (p + bv - 1) / bv
	want := v.blockEdgeStart[p/bv]
	for u := (p / bv) * bv; u < p; u++ {
		want += int64(v.upDeg[u])
	}
	if e != want {
		return nil, fmt.Errorf("semiext: prefix [0,%d) holds %d edges, caller claims %d", p, want, e)
	}
	if int64(cap(buf)) < e {
		buf = make([]int32, e)
	}
	buf = buf[:e]
	if p == 0 {
		return buf, nil
	}
	// One read covers every needed list: [0, blockOff[nbp]) spans through
	// the end of the last touched block (a partial final block decodes only
	// its first p-p/bv*bv vertices). On mmap builds this aliases the
	// mapping; in ReaderAt mode it is a single positioned read.
	raw, err := v.bytes(v.headerSize, v.blockOff[nbp], nil)
	if err != nil {
		return nil, fmt.Errorf("semiext: reading adjacency: %w", err)
	}
	if maxChunks := int(e / minDecodeChunkEdges); workers > maxChunks {
		workers = maxChunks
	}
	if workers > nbp {
		workers = nbp
	}
	if workers <= 1 {
		if _, err := decodeAdjRange(buf, raw, v.upDeg, 0, int32(p), bv, v.blockOff, 0); err != nil {
			return nil, err
		}
		return buf, nil
	}
	// Chunk boundaries balance edges, not blocks: blockEdgeStart is already
	// the prefix sum the split needs.
	bounds := make([]int, 0, workers+1)
	bounds = append(bounds, 0)
	for c := 1; c < workers; c++ {
		target := e * int64(c) / int64(workers)
		b := sort.Search(nbp, func(b int) bool { return v.blockEdgeStart[b] >= target })
		if b > bounds[len(bounds)-1] && b < nbp {
			bounds = append(bounds, b)
		}
	}
	bounds = append(bounds, nbp)
	errs := make([]error, len(bounds)-1)
	var wg sync.WaitGroup
	for c := 0; c < len(bounds)-1; c++ {
		ba, bb := bounds[c], bounds[c+1]
		u0, u1 := int32(ba*bv), int32(bb*bv)
		if int(u1) > p {
			u1 = int32(p)
		}
		out := buf[v.blockEdgeStart[ba]:e]
		if bb < nbp {
			out = buf[v.blockEdgeStart[ba]:v.blockEdgeStart[bb]]
		}
		in := raw[v.blockOff[ba]:v.blockOff[bb]]
		base := v.blockOff[ba]
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			_, errs[c] = decodeAdjRange(out, in, v.upDeg, u0, u1, bv, v.blockOff, base)
		}(c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return buf, nil
}

// Close releases the mapping and the file handle. Adj results that alias
// the mapping become invalid.
func (v *View) Close() error {
	var err error
	if v.mapped {
		err = munmapFile(v.data)
		v.data = nil
		v.mapped = false
		v.upDeg = nil // may alias the unmapped region
	}
	if v.f != nil {
		if cerr := v.f.Close(); err == nil {
			err = cerr
		}
		v.f = nil
	}
	return err
}
