package semiext

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"

	"influcomm/internal/core"
	"influcomm/internal/gen"
	"influcomm/internal/graph"
)

func writeTempFormat(t *testing.T, g *graph.Graph, format int) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), fmt.Sprintf("graph.v%d.edges", format))
	if err := WriteEdgeFileFormat(path, g, format); err != nil {
		t.Fatalf("writing v%d edge file: %v", format, err)
	}
	return path
}

// flatUpAdj is the reference adjacency: every vertex's up-neighbor list in
// rank order, concatenated.
func flatUpAdj(g *graph.Graph) []int32 {
	var flat []int32
	for u := int32(0); int(u) < g.NumVertices(); u++ {
		flat = append(flat, g.UpNeighbors(u)...)
	}
	return flat
}

func TestEdgeFileV2RoundTrip(t *testing.T) {
	for seed := uint64(1); seed <= 6; seed++ {
		g := gen.Random(80+int(seed)*31, 6, seed)
		path := writeTempFormat(t, g, FormatV2)
		want := flatUpAdj(g)

		r, err := OpenReader(path)
		if err != nil {
			t.Fatalf("seed %d: open: %v", seed, err)
		}
		if r.Format() != FormatV2 {
			t.Fatalf("seed %d: format = %d, want %d", seed, r.Format(), FormatV2)
		}
		if r.NumVertices() != g.NumVertices() || r.NumEdges() != g.NumEdges() {
			t.Fatalf("seed %d: header (%d,%d), want (%d,%d)",
				seed, r.NumVertices(), r.NumEdges(), g.NumVertices(), g.NumEdges())
		}
		for u := int32(0); int(u) < g.NumVertices(); u++ {
			if r.Weight(u) != g.Weight(u) || r.UpDegree(u) != g.UpDegree(u) {
				t.Fatalf("seed %d: per-vertex state differs at %d", seed, u)
			}
		}
		var flat []int32
		for r.NextVertex() < r.NumVertices() {
			flat, err = r.ReadVertexAdj(flat)
			if err != nil {
				t.Fatalf("seed %d: streaming: %v", seed, err)
			}
		}
		r.Close()
		if len(flat) != len(want) {
			t.Fatalf("seed %d: streamed %d entries, want %d", seed, len(flat), len(want))
		}
		for i := range want {
			if flat[i] != want[i] {
				t.Fatalf("seed %d: streamed adjacency differs at %d", seed, i)
			}
		}

		v, err := OpenView(path)
		if err != nil {
			t.Fatalf("seed %d: open view: %v", seed, err)
		}
		if v.Format() != FormatV2 {
			t.Fatalf("seed %d: view format = %d, want %d", seed, v.Format(), FormatV2)
		}
		if v.ZeroCopy() {
			t.Fatalf("seed %d: v2 view claims zero-copy adjacency", seed)
		}
		if _, err := v.Adj(0, v.NumEdges(), nil); err == nil {
			t.Fatalf("seed %d: Adj over v2: want error (no per-edge offsets)", seed)
		}
		got, err := v.AdjPrefix(v.NumVertices(), v.NumEdges(), 1, nil)
		if err != nil {
			t.Fatalf("seed %d: AdjPrefix: %v", seed, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("seed %d: view adjacency differs at %d", seed, i)
			}
		}
		// Partial prefixes, including ones not aligned to the block granule.
		for _, p := range []int{0, 1, g.NumVertices() / 3, g.NumVertices() / 2} {
			e := g.PrefixEdges(p)
			sub, err := v.AdjPrefix(p, e, 1, nil)
			if err != nil {
				t.Fatalf("seed %d: AdjPrefix(%d): %v", seed, p, err)
			}
			for i := range sub {
				if sub[i] != want[i] {
					t.Fatalf("seed %d: prefix %d adjacency differs at %d", seed, p, i)
				}
			}
		}
		// A wrong edge count for the prefix must be rejected, not trusted.
		if _, err := v.AdjPrefix(g.NumVertices()/2, g.PrefixEdges(g.NumVertices()/2)+1, 1, nil); err == nil {
			t.Fatalf("seed %d: AdjPrefix with wrong edge count accepted", seed)
		}
		rebuilt, err := graph.FromUpAdjacency(v.Weights(), v.UpDegrees(), got, nil)
		if err != nil {
			t.Fatalf("seed %d: rebuild: %v", seed, err)
		}
		if err := rebuilt.Validate(); err != nil {
			t.Fatalf("seed %d: rebuilt graph invalid: %v", seed, err)
		}
		v.Close()
	}
}

func TestEdgeFileV2ReopenStreamsPayload(t *testing.T) {
	g := gen.Random(300, 7, 11)
	path := writeTempFormat(t, g, FormatV2)
	v, err := OpenView(path)
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	var r Reader
	if err := r.Reopen(path, v.Meta()); err != nil {
		t.Fatalf("Reopen from view meta: %v", err)
	}
	defer r.Close()
	var flat []int32
	for r.NextVertex() < r.NumVertices() {
		flat, err = r.ReadVertexAdj(flat)
		if err != nil {
			t.Fatalf("streaming after Reopen: %v", err)
		}
	}
	want := flatUpAdj(g)
	if len(flat) != len(want) {
		t.Fatalf("streamed %d entries, want %d", len(flat), len(want))
	}
	for i := range want {
		if flat[i] != want[i] {
			t.Fatalf("adjacency differs at %d", i)
		}
	}
}

func TestAdjPrefixWorkersAgree(t *testing.T) {
	// Large enough that the chunked decode path actually engages (the chunk
	// floor is minDecodeChunkEdges edges); community structure keeps the
	// group fast path busy too.
	g, err := gen.PlantedCommunities(40, 128, 0.4, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, format := range []int{FormatV1, FormatV2} {
		path := writeTempFormat(t, g, format)
		v, err := OpenView(path)
		if err != nil {
			t.Fatal(err)
		}
		n := v.NumVertices()
		for _, p := range []int{n, n - 1, n / 2, defaultBlockVerts + 1, 17} {
			if p > n {
				continue
			}
			e := g.PrefixEdges(p)
			want, err := v.AdjPrefix(p, e, 1, nil)
			if err != nil {
				t.Fatalf("v%d AdjPrefix(%d) workers=1: %v", format, p, err)
			}
			for _, workers := range []int{2, 3, 4, 8} {
				got, err := v.AdjPrefix(p, e, workers, nil)
				if err != nil {
					t.Fatalf("v%d AdjPrefix(%d) workers=%d: %v", format, p, workers, err)
				}
				if len(got) != len(want) {
					t.Fatalf("v%d p=%d workers=%d: %d entries, want %d", format, p, workers, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("v%d p=%d workers=%d: entry %d differs", format, p, workers, i)
					}
				}
			}
		}
		v.Close()
	}
}

func TestEdgeFileV2Compression(t *testing.T) {
	// The acceptance bar: on a community-structured graph — the workload the
	// paper's algorithms target — v2 must be at least 3x smaller than v1.
	g, err := gen.PlantedCommunities(60, 192, 0.4, 2, 42)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	p1 := filepath.Join(dir, "g.v1.edges")
	p2 := filepath.Join(dir, "g.v2.edges")
	if err := WriteEdgeFileFormat(p1, g, FormatV1); err != nil {
		t.Fatal(err)
	}
	if err := WriteEdgeFileFormat(p2, g, FormatV2); err != nil {
		t.Fatal(err)
	}
	s1, err := os.Stat(p1)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := os.Stat(p2)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(s1.Size()) / float64(s2.Size())
	t.Logf("n=%d m=%d: v1=%d bytes, v2=%d bytes, ratio=%.2f",
		g.NumVertices(), g.NumEdges(), s1.Size(), s2.Size(), ratio)
	if ratio < 3 {
		t.Errorf("v2 compression ratio %.2f on clustered graph, want >= 3", ratio)
	}
}

func TestLocalSearchSEOverV2MatchesInMemory(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		g := gen.Random(150, 6, seed)
		path := writeTempFormat(t, g, FormatV2)
		for _, k := range []int{1, 3, 8} {
			want, err := core.TopK(g, k, 3, core.Options{})
			if err != nil {
				t.Fatalf("in-memory: %v", err)
			}
			got, _, err := LocalSearchSE(path, k, 3)
			if err != nil {
				t.Fatalf("LocalSearchSE over v2: %v", err)
			}
			if len(got) != len(want.Communities) {
				t.Fatalf("seed %d k=%d: got %d communities, want %d", seed, k, len(got), len(want.Communities))
			}
			for i := range got {
				a := fmt.Sprintf("%d:%v", got[i].Keynode(), got[i].Vertices())
				b := fmt.Sprintf("%d:%v", want.Communities[i].Keynode(), want.Communities[i].Vertices())
				if a != b {
					t.Fatalf("seed %d k=%d: community %d differs\n got %s\nwant %s", seed, k, i, a, b)
				}
			}
		}
	}
}

// TestEdgeFileV2RejectsCorrupt replays v2-specific corruptions against both
// open paths and both decode paths: the streaming Reader and the mmap View
// must accept and reject exactly the same files.
func TestEdgeFileV2RejectsCorrupt(t *testing.T) {
	g := gen.Random(200, 6, 4)
	path := writeTempFormat(t, g, FormatV2)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	n := int64(g.NumVertices())
	degBytes := int64(binary.LittleEndian.Uint64(data[24:]))
	indexOff := 32 + 8*n + degBytes
	payloadOff := indexOff + 8*2 // n=200 < blockVerts: one block, two index entries

	openErrs := func(img []byte) (rerr, verr error) {
		_, rerr = NewReader(bytes.NewReader(img), int64(len(img)))
		_, verr = ViewFromBytes(img)
		return
	}
	decodeErrs := func(img []byte) (rerr, verr error) {
		r, err := NewReader(bytes.NewReader(img), int64(len(img)))
		if err != nil {
			t.Fatalf("reader rejected image at open: %v", err)
		}
		var adj []int32
		for {
			adj, err = r.ReadVertexAdj(adj)
			if err != nil {
				break
			}
		}
		if !errors.Is(err, io.EOF) {
			rerr = err
		}
		v, err := ViewFromBytes(img)
		if err != nil {
			t.Fatalf("view rejected image at open: %v", err)
		}
		_, verr = v.AdjPrefix(v.NumVertices(), v.NumEdges(), 1, nil)
		return
	}

	atOpen := map[string]func([]byte){
		"zero block granule":   func(b []byte) { binary.LittleEndian.PutUint32(b[20:], 0) },
		"degree bytes lie":     func(b []byte) { binary.LittleEndian.PutUint64(b[24:], uint64(degBytes+1)) },
		"block index disorder": func(b []byte) { binary.LittleEndian.PutUint64(b[indexOff:], uint64(payloadOff)) },
		"payload shorter than index claims": func(b []byte) {
			binary.LittleEndian.PutUint64(b[indexOff+8:], uint64(len(b)))
		},
	}
	for name, mutate := range atOpen {
		img := append([]byte(nil), data...)
		mutate(img)
		rerr, verr := openErrs(img)
		if rerr == nil {
			t.Errorf("%s: reader accepted", name)
		}
		if verr == nil {
			t.Errorf("%s: view accepted", name)
		}
	}
	// Truncation is caught at open by the size checks.
	rerr, verr := openErrs(data[:len(data)-3])
	if rerr == nil || verr == nil {
		t.Errorf("truncated: reader err %v, view err %v; want both non-nil", rerr, verr)
	}

	// Payload corruption passes the header checks and must be caught when
	// the adjacency is actually decoded — by both paths.
	img := append([]byte(nil), data...)
	img[len(img)-1] ^= 0x80 // last payload byte grows a continuation bit
	rerr, verr = decodeErrs(img)
	if rerr == nil || verr == nil {
		t.Errorf("payload continuation bit: reader err %v, view err %v; want both non-nil", rerr, verr)
	}
}

// TestRecodeByteIdentical drives the decode→re-encode cycle both directions:
// converting a file to the other format and back reproduces the original
// byte for byte, so recoding is lossless by construction.
func TestRecodeByteIdentical(t *testing.T) {
	g, err := gen.PlantedCommunities(10, 40, 0.5, 1, 6)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	orig := map[int]string{
		FormatV1: filepath.Join(dir, "orig.v1.edges"),
		FormatV2: filepath.Join(dir, "orig.v2.edges"),
	}
	for f, p := range orig {
		if err := WriteEdgeFileFormat(p, g, f); err != nil {
			t.Fatal(err)
		}
	}
	recode := func(in string, format int, out string) {
		t.Helper()
		v, err := OpenView(in)
		if err != nil {
			t.Fatal(err)
		}
		defer v.Close()
		adj, err := v.AdjPrefix(v.NumVertices(), v.NumEdges(), 1, nil)
		if err != nil {
			t.Fatal(err)
		}
		rg, err := graph.FromUpAdjacency(v.Weights(), v.UpDegrees(), adj, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := WriteEdgeFileFormat(out, rg, format); err != nil {
			t.Fatal(err)
		}
	}
	for _, c := range []struct{ from, to int }{{FormatV1, FormatV2}, {FormatV2, FormatV1}} {
		mid := filepath.Join(dir, fmt.Sprintf("mid.%d to %d.edges", c.from, c.to))
		back := filepath.Join(dir, fmt.Sprintf("back.%d to %d.edges", c.from, c.to))
		recode(orig[c.from], c.to, mid)
		recode(mid, c.from, back)
		wantBytes, err := os.ReadFile(orig[c.from])
		if err != nil {
			t.Fatal(err)
		}
		gotBytes, err := os.ReadFile(back)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(wantBytes, gotBytes) {
			t.Errorf("v%d -> v%d -> v%d round trip is not byte-identical", c.from, c.to, c.from)
		}
		midBytes, err := os.ReadFile(mid)
		if err != nil {
			t.Fatal(err)
		}
		direct, err := os.ReadFile(orig[c.to])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(midBytes, direct) {
			t.Errorf("recoding v%d to v%d differs from writing v%d directly", c.from, c.to, c.to)
		}
	}
}
