package semiext

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"testing"

	"influcomm/internal/gen"
	"influcomm/internal/graph"
)

func TestViewMatchesReader(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		g := gen.Random(80+int(seed)*17, 6, seed)
		path := writeTemp(t, g)
		r, err := OpenReader(path)
		if err != nil {
			t.Fatal(err)
		}
		v, err := OpenView(path)
		if err != nil {
			t.Fatal(err)
		}
		if v.NumVertices() != r.NumVertices() || v.NumEdges() != r.NumEdges() {
			t.Fatalf("seed %d: view shape (%d,%d), reader (%d,%d)",
				seed, v.NumVertices(), v.NumEdges(), r.NumVertices(), r.NumEdges())
		}
		for u := int32(0); int(u) < r.NumVertices(); u++ {
			if v.Weights()[u] != r.Weight(u) || v.UpDegrees()[u] != r.UpDegree(u) {
				t.Fatalf("seed %d: per-vertex state differs at %d", seed, u)
			}
		}
		var flat []int32
		for r.NextVertex() < r.NumVertices() {
			flat, err = r.ReadVertexAdj(flat)
			if err != nil {
				t.Fatal(err)
			}
		}
		got, err := v.Adj(0, v.NumEdges(), nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(flat) {
			t.Fatalf("seed %d: view adjacency holds %d entries, stream %d", seed, len(got), len(flat))
		}
		for i := range got {
			if got[i] != flat[i] {
				t.Fatalf("seed %d: adjacency differs at entry %d", seed, i)
			}
		}
		// Sub-range reads agree with the full read.
		if v.NumEdges() >= 4 {
			lo, hi := v.NumEdges()/4, 3*v.NumEdges()/4
			sub, err := v.Adj(lo, hi, nil)
			if err != nil {
				t.Fatal(err)
			}
			for i := range sub {
				if sub[i] != flat[lo+int64(i)] {
					t.Fatalf("seed %d: sub-range read differs at %d", seed, i)
				}
			}
		}
		// The full adjacency plus the decoded vectors reconstructs the graph.
		pg, err := graph.FromUpAdjacency(v.Weights(), v.UpDegrees(), got, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := pg.Validate(); err != nil {
			t.Fatalf("seed %d: reconstructed graph invalid: %v", seed, err)
		}
		r.Close()
		v.Close()
	}
}

func TestViewAdjBounds(t *testing.T) {
	g := gen.Random(40, 4, 3)
	v, err := OpenView(writeTemp(t, g))
	if err != nil {
		t.Fatal(err)
	}
	defer v.Close()
	for _, r := range [][2]int64{{-1, 0}, {0, v.NumEdges() + 1}, {5, 4}} {
		if _, err := v.Adj(r[0], r[1], nil); err == nil {
			t.Errorf("Adj(%d,%d): want error", r[0], r[1])
		}
	}
	empty, err := v.Adj(2, 2, nil)
	if err != nil || len(empty) != 0 {
		t.Errorf("Adj(2,2) = %v, %v; want empty", empty, err)
	}
}

// TestViewRejectsWhatReaderRejects replays the reader's corruption cases
// against the view: the two open paths must accept exactly the same files.
func TestViewRejectsWhatReaderRejects(t *testing.T) {
	g := gen.Random(50, 5, 4)
	path := writeTemp(t, g)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	n := g.NumVertices()
	corrupt := map[string]func([]byte){
		"bad magic":        func(b []byte) { b[0] ^= 0xff },
		"impossible updeg": func(b []byte) { b[20+8*n] = 1 },
		"weight disorder": func(b []byte) {
			// Swap the first two weights: rank order breaks.
			for i := 0; i < 8; i++ {
				b[20+i], b[28+i] = b[28+i], b[20+i]
			}
		},
	}
	for name, mutate := range corrupt {
		img := append([]byte(nil), data...)
		mutate(img)
		if _, err := ViewFromBytes(img); err == nil {
			t.Errorf("%s: view accepted", name)
		}
		if _, err := NewReader(bytes.NewReader(img), int64(len(img))); err == nil {
			t.Errorf("%s: reader accepted", name)
		}
	}
	truncated := data[:len(data)-5]
	if _, err := ViewFromBytes(truncated); err == nil {
		t.Error("truncated: view accepted")
	}
	short := filepath.Join(t.TempDir(), "short.edges")
	if err := os.WriteFile(short, truncated, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenView(short); err == nil {
		t.Error("truncated: OpenView accepted")
	}
}

func TestDecodeInt32s(t *testing.T) {
	src := []byte{1, 0, 0, 0, 0xff, 0xff, 0xff, 0xff, 0x78, 0x56, 0x34, 0x12}
	dst := make([]int32, 3)
	DecodeInt32s(dst, src)
	want := []int32{1, -1, 0x12345678}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("dst[%d] = %d, want %d", i, dst[i], want[i])
		}
	}
	DecodeInt32s(nil, nil) // zero-length is a no-op
}

// FuzzViewReaderEquivalence is the mmap-view half of FuzzEdgeFile: for
// arbitrary bytes, ViewFromBytes and NewReader must agree on acceptance,
// and when both accept, the view's bulk adjacency must be byte-identical
// to the stream's edge-by-edge delivery — for both file formats, at any
// decode worker count.
func FuzzViewReaderEquivalence(f *testing.F) {
	seedDir := f.TempDir()
	for seed := uint64(1); seed <= 3; seed++ {
		g := gen.Random(20+int(seed)*9, 4, seed)
		for _, format := range []int{FormatV1, FormatV2} {
			path := filepath.Join(seedDir, "seed.edges")
			if err := WriteEdgeFileFormat(path, g, format); err != nil {
				f.Fatal(err)
			}
			data, err := os.ReadFile(path)
			if err != nil {
				f.Fatal(err)
			}
			f.Add(data)
			f.Add(data[:20])
			f.Add(data[:len(data)-2])
		}
	}
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		v, verr := ViewFromBytes(data)
		r, rerr := NewReader(bytes.NewReader(data), int64(len(data)))
		if (verr == nil) != (rerr == nil) {
			t.Fatalf("acceptance differs: view err %v, reader err %v", verr, rerr)
		}
		if verr != nil {
			return
		}
		if v.Format() != r.Format() {
			t.Fatalf("format differs: view %d, reader %d", v.Format(), r.Format())
		}
		if v.NumVertices() != r.NumVertices() || v.NumEdges() != r.NumEdges() {
			t.Fatalf("shape differs: view (%d,%d), reader (%d,%d)",
				v.NumVertices(), v.NumEdges(), r.NumVertices(), r.NumEdges())
		}
		for u := 0; u < v.NumVertices(); u++ {
			if v.Weights()[u] != r.Weight(int32(u)) || v.UpDegrees()[u] != r.UpDegree(int32(u)) {
				t.Fatalf("per-vertex state differs at %d", u)
			}
		}
		var flat []int32
		var err error
		for {
			flat, err = r.ReadVertexAdj(flat)
			if err != nil {
				break
			}
		}
		view, aerr := v.AdjPrefix(v.NumVertices(), v.NumEdges(), 1, nil)
		par, perr := v.AdjPrefix(v.NumVertices(), v.NumEdges(), 4, nil)
		if (aerr == nil) != (perr == nil) {
			t.Fatalf("decode worker count changes acceptance: 1 worker err %v, 4 workers err %v", aerr, perr)
		}
		if aerr == nil {
			for i := range view {
				if par[i] != view[i] {
					t.Fatalf("decode differs between worker counts at entry %d", i)
				}
			}
		}
		if v.Format() == FormatV1 {
			if aerr != nil {
				t.Fatalf("view adjacency read failed on accepted v1 image: %v", aerr)
			}
			// The stream validates entries (v < u) the raw v1 view does not; it
			// may stop early on a corrupt payload. The entries it did deliver
			// must still match the view byte for byte.
			for i := range flat {
				if flat[i] != view[i] {
					t.Fatalf("adjacency differs at entry %d: stream %d, view %d", i, flat[i], view[i])
				}
			}
			if err == io.EOF && int64(len(flat)) != v.NumEdges() {
				t.Fatalf("stream delivered %d entries, header claims %d", len(flat), v.NumEdges())
			}
			return
		}
		// v2: both paths validate the full payload, so a completed stream and
		// a successful bulk decode must coincide — and agree entry for entry.
		if (err == io.EOF) != (aerr == nil) {
			t.Fatalf("v2 payload acceptance differs: stream err %v, bulk decode err %v", err, aerr)
		}
		if aerr == nil {
			if int64(len(flat)) != v.NumEdges() {
				t.Fatalf("stream delivered %d entries, header claims %d", len(flat), v.NumEdges())
			}
			for i := range flat {
				if flat[i] != view[i] {
					t.Fatalf("adjacency differs at entry %d: stream %d, view %d", i, flat[i], view[i])
				}
			}
		}
	})
}
