package semiext

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// The write-ahead update log persists edge mutations between edge-file
// compactions: a mutable store appends each applied batch before mutating
// its in-memory snapshot, replays the log when the edge file is reopened,
// and deletes it after compacting the accumulated updates back into the
// edge file. See docs/FORMATS.md for the byte-level specification.
const (
	logMagic   = uint32(0x5EDB_10C5)
	logVersion = uint32(1)

	// logHeaderSize is the fixed prologue: magic then version.
	logHeaderSize = 8

	// opInsert / opDelete are the record operation codes.
	opInsert = byte(1)
	opDelete = byte(2)

	// maxLogBatch bounds a single record's operation count; a length field
	// beyond it is treated as corruption rather than an allocation request.
	maxLogBatch = 1 << 24
)

// LogUpdate is one edge mutation in an update log: endpoints are rank IDs
// normalized U < V, exactly the shape the incremental graph delta consumes.
type LogUpdate struct {
	Delete bool
	U, V   int32
}

// UpdateLog is an append handle on a write-ahead update log. One batch is
// one record, framed with a length prefix and a CRC32C trailer so replay
// can tell a torn tail (the crash case) from a complete record; every
// Append is fsynced before it returns, so an acknowledged batch survives
// a crash.
type UpdateLog struct {
	f    *os.File
	path string
	buf  []byte
}

// ReplayUpdateLog reads the update log at path and returns the logged
// batches in append order. A missing file is an empty log. Replay stops at
// the first incomplete or CRC-damaged record — the torn tail a crash
// mid-append leaves — and reports how many bytes of the file were valid;
// anything past validSize is garbage to be truncated by OpenUpdateLog.
// A log whose header is damaged is rejected outright.
func ReplayUpdateLog(path string) (batches [][]LogUpdate, validSize int64, err error) {
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, fmt.Errorf("semiext: reading update log: %w", err)
	}
	le := binary.LittleEndian
	if len(data) == 0 {
		// A zero-byte log is what OpenUpdateLog's O_CREATE leaves before
		// the header lands (or a crash right after create): an empty log.
		return nil, 0, nil
	}
	if len(data) < logHeaderSize {
		return nil, 0, fmt.Errorf("semiext: update log %s truncated inside its header", path)
	}
	if m := le.Uint32(data[0:]); m != logMagic {
		return nil, 0, fmt.Errorf("semiext: update log %s has bad magic %#x", path, m)
	}
	if v := le.Uint32(data[4:]); v != logVersion {
		return nil, 0, fmt.Errorf("semiext: update log %s has unsupported version %d (this build reads version %d)", path, v, logVersion)
	}
	pos := int64(logHeaderSize)
	for int64(len(data))-pos >= 4 {
		count := le.Uint32(data[pos:])
		if count == 0 || count > maxLogBatch {
			break // corrupt length: treat as tail damage
		}
		recLen := int64(4) + 9*int64(count) + 4
		if int64(len(data))-pos < recLen {
			break // torn tail: record was being written when we crashed
		}
		body := data[pos : pos+recLen-4]
		if crc32.Checksum(body, crcTable) != le.Uint32(data[pos+recLen-4:]) {
			break
		}
		batch := make([]LogUpdate, count)
		ok := true
		for i := range batch {
			rec := body[4+9*i:]
			u := LogUpdate{U: int32(le.Uint32(rec[1:])), V: int32(le.Uint32(rec[5:]))}
			switch rec[0] {
			case opInsert:
			case opDelete:
				u.Delete = true
			default:
				ok = false
			}
			// A stored rank beyond int32 wraps negative on decode, so the
			// sign checks also reject out-of-range encodings; u < v is the
			// normalization every writer guarantees.
			if u.U < 0 || u.V < 0 || u.U >= u.V {
				ok = false
			}
			batch[i] = u
		}
		if !ok {
			// The CRC matched but the content violates the format's own
			// rules: not tail damage, a writer bug or deliberate tampering.
			return nil, 0, fmt.Errorf("semiext: update log %s holds an invalid record at offset %d", path, pos)
		}
		batches = append(batches, batch)
		pos += recLen
	}
	return batches, pos, nil
}

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// OpenUpdateLog opens (creating if needed) the update log at path for
// appending, first truncating any torn tail left by a crash so new records
// land on a clean boundary. The caller replays the returned batches into
// its in-memory state before applying new ones. The log is held under an
// exclusive advisory lock for the handle's lifetime, taken before the
// replay reads a byte, so two stores over the same edge file fail fast
// instead of interleaving appends.
func OpenUpdateLog(path string) (*UpdateLog, [][]LogUpdate, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("semiext: opening update log: %w", err)
	}
	if err := lockLogFile(f); err != nil {
		f.Close()
		return nil, nil, err
	}
	batches, validSize, err := ReplayUpdateLog(path)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	if validSize == 0 {
		// Fresh log: write the header before any record.
		var hdr [logHeaderSize]byte
		binary.LittleEndian.PutUint32(hdr[0:], logMagic)
		binary.LittleEndian.PutUint32(hdr[4:], logVersion)
		if _, err := f.Write(hdr[:]); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("semiext: initializing update log: %w", err)
		}
		validSize = logHeaderSize
	}
	if err := f.Truncate(validSize); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("semiext: truncating torn log tail: %w", err)
	}
	if _, err := f.Seek(validSize, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, err
	}
	return &UpdateLog{f: f, path: path}, batches, nil
}

// Append durably logs one batch: the record is written in a single Write
// call and fsynced before Append returns, so a batch the caller goes on to
// apply in memory is guaranteed to be replayed after a crash.
func (l *UpdateLog) Append(batch []LogUpdate) error {
	if len(batch) == 0 {
		return nil
	}
	if len(batch) > maxLogBatch {
		return fmt.Errorf("semiext: update batch of %d exceeds the log's %d-op record limit", len(batch), maxLogBatch)
	}
	le := binary.LittleEndian
	need := 4 + 9*len(batch) + 4
	if cap(l.buf) < need {
		l.buf = make([]byte, need)
	}
	buf := l.buf[:need]
	le.PutUint32(buf[0:], uint32(len(batch)))
	for i, u := range batch {
		if u.U < 0 || u.U >= u.V {
			return fmt.Errorf("semiext: update (%d,%d) is not a normalized rank pair", u.U, u.V)
		}
		rec := buf[4+9*i:]
		if u.Delete {
			rec[0] = opDelete
		} else {
			rec[0] = opInsert
		}
		le.PutUint32(rec[1:], uint32(u.U))
		le.PutUint32(rec[5:], uint32(u.V))
	}
	le.PutUint32(buf[need-4:], crc32.Checksum(buf[:need-4], crcTable))
	if _, err := l.f.Write(buf); err != nil {
		return fmt.Errorf("semiext: appending to update log: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("semiext: syncing update log: %w", err)
	}
	return nil
}

// Path returns the log's file path.
func (l *UpdateLog) Path() string { return l.path }

// Close releases the file handle without removing the log; the logged
// batches will be replayed on the next open.
func (l *UpdateLog) Close() error {
	if l.f == nil {
		return nil
	}
	err := l.f.Close()
	l.f = nil
	return err
}

// Remove closes and deletes the log: the compaction epilogue, called only
// after the accumulated updates have been atomically rewritten into the
// edge file. Ordering matters — edge file first, log removal second — so a
// crash between the two replays the (now no-op free) log against the
// already-compacted file rather than losing updates.
func (l *UpdateLog) Remove() error {
	cerr := l.Close()
	if err := os.Remove(l.path); err != nil && !errors.Is(err, os.ErrNotExist) {
		return err
	}
	return cerr
}

// UpdateLogPath derives the update-log path of an edge file.
func UpdateLogPath(edgePath string) string { return edgePath + ".log" }
