package semiext

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"influcomm/internal/gen"
)

// FuzzEdgeFile feeds arbitrary bytes to the edge-file reader: NewReader
// (the same validation path OpenReader uses) must either reject the input
// or hand back a reader whose stream upholds the format invariants — no
// panics, no over-reads, and a fully streamed file delivers exactly the
// edge count its header claims.
func FuzzEdgeFile(f *testing.F) {
	seedDir := f.TempDir()
	for seed := uint64(1); seed <= 3; seed++ {
		g := gen.Random(20+int(seed)*7, 4, seed)
		path := filepath.Join(seedDir, "seed.edges")
		if err := WriteEdgeFile(path, g); err != nil {
			f.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
		f.Add(data[:20])
		f.Add(data[:len(data)-3])
	}
	f.Add([]byte{})
	f.Add([]byte{0x5a, 0xe5, 0xdb, 0x5e})

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data), int64(len(data)))
		if err != nil {
			return // rejected, fine
		}
		var edges [][2]int32
		for {
			edges, err = r.ReadVertexEdges(edges)
			if err != nil {
				break
			}
		}
		if !errors.Is(err, io.EOF) {
			return // corrupt edge payload, detected mid-stream
		}
		if int64(len(edges)) != r.NumEdges() {
			t.Fatalf("streamed %d edges, header claims %d", len(edges), r.NumEdges())
		}
		if r.BytesRead() != 4*r.NumEdges() {
			t.Fatalf("BytesRead = %d, want %d", r.BytesRead(), 4*r.NumEdges())
		}
		n := int32(r.NumVertices())
		for _, e := range edges {
			if e[0] < 0 || e[0] >= e[1] || e[1] >= n {
				t.Fatalf("invalid edge (%d,%d) in %d-vertex stream", e[0], e[1], n)
			}
		}
	})
}
