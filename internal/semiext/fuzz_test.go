package semiext

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"testing"

	"influcomm/internal/gen"
)

// FuzzEdgeFile feeds arbitrary bytes to the edge-file reader: NewReader
// (the same validation path OpenReader uses) must either reject the input
// or hand back a reader whose stream upholds the format invariants — no
// panics, no over-reads, and a fully streamed file delivers exactly the
// edge count its header claims.
func FuzzEdgeFile(f *testing.F) {
	seedDir := f.TempDir()
	for seed := uint64(1); seed <= 3; seed++ {
		g := gen.Random(20+int(seed)*7, 4, seed)
		for _, format := range []int{FormatV1, FormatV2} {
			path := filepath.Join(seedDir, "seed.edges")
			if err := WriteEdgeFileFormat(path, g, format); err != nil {
				f.Fatal(err)
			}
			data, err := os.ReadFile(path)
			if err != nil {
				f.Fatal(err)
			}
			f.Add(data)
			f.Add(data[:20])
			f.Add(data[:len(data)-3])
		}
	}
	f.Add([]byte{})
	f.Add([]byte{0x5a, 0xe5, 0xdb, 0x5e})
	f.Add([]byte{0x5b, 0xe5, 0xdb, 0x5e})

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data), int64(len(data)))
		if err != nil {
			return // rejected, fine
		}
		var edges [][2]int32
		for {
			edges, err = r.ReadVertexEdges(edges)
			if err != nil {
				break
			}
		}
		if !errors.Is(err, io.EOF) {
			return // corrupt edge payload, detected mid-stream
		}
		if int64(len(edges)) != r.NumEdges() {
			t.Fatalf("streamed %d edges, header claims %d", len(edges), r.NumEdges())
		}
		if r.Format() == FormatV1 && r.BytesRead() != 4*r.NumEdges() {
			t.Fatalf("BytesRead = %d, want %d", r.BytesRead(), 4*r.NumEdges())
		}
		n := int32(r.NumVertices())
		for _, e := range edges {
			if e[0] < 0 || e[0] >= e[1] || e[1] >= n {
				t.Fatalf("invalid edge (%d,%d) in %d-vertex stream", e[0], e[1], n)
			}
		}
	})
}

// FuzzVarintAdjacency exercises the v2 codec directly, below the file
// format: adjacency lists derived from the fuzz input must survive the
// encode→decode round trip exactly (full-range and per-block decodes,
// through the group fast path and the byte-at-a-time slow path), and
// feeding arbitrary bytes to the bulk decoder must produce an error or a
// structurally valid adjacency — never a panic or an out-of-bounds write.
func FuzzVarintAdjacency(f *testing.F) {
	f.Add([]byte{0xff, 0x0f, 0xa0, 0x55}, uint16(40), uint8(3))
	f.Add([]byte{}, uint16(0), uint8(0))
	f.Add([]byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x02}, uint16(9), uint8(7))

	f.Fuzz(func(t *testing.T, data []byte, nRaw uint16, bvRaw uint8) {
		n := int(nRaw) % 200
		bv := int(bvRaw)%8 + 1
		nb := (n + bv - 1) / bv

		// Derive strictly ascending lists in [0, u) from the input bits.
		bit := 0
		takeBit := func() bool {
			if bit/8 >= len(data) {
				bit++
				return false
			}
			b := data[bit/8]>>(uint(bit)%8)&1 == 1
			bit++
			return b
		}
		upDeg := make([]int32, n)
		lists := make([][]int32, n)
		for u := 0; u < n; u++ {
			for v := 0; v < u; v++ {
				if takeBit() {
					lists[u] = append(lists[u], int32(v))
				}
			}
			upDeg[u] = int32(len(lists[u]))
		}

		blockOff := make([]int64, nb+1)
		var payload []byte
		var total int
		for u := 0; u < n; u++ {
			if u%bv == 0 {
				blockOff[u/bv] = int64(len(payload))
			}
			before := len(payload)
			var err error
			payload, err = appendEncodedList(payload, int32(u), lists[u])
			if err != nil {
				t.Fatalf("encoding valid list of vertex %d: %v", u, err)
			}
			if got := len(payload) - before; got != encodedListLen(lists[u]) {
				t.Fatalf("vertex %d: encoded %d bytes, sizing pass predicted %d", u, got, encodedListLen(lists[u]))
			}
			total += len(lists[u])
		}
		blockOff[nb] = int64(len(payload))

		check := func(got []int32, u0, u1 int32) {
			i := 0
			for u := u0; u < u1; u++ {
				for _, v := range lists[u] {
					if got[i] != v {
						t.Fatalf("decoded adjacency differs at vertex %d", u)
					}
					i++
				}
			}
		}
		dst := make([]int32, total)
		consumed, err := decodeAdjRange(dst, payload, upDeg, 0, int32(n), bv, blockOff, 0)
		if err != nil {
			t.Fatalf("decoding freshly encoded payload: %v", err)
		}
		if consumed != int64(len(payload)) {
			t.Fatalf("decode consumed %d of %d payload bytes", consumed, len(payload))
		}
		check(dst, 0, int32(n))
		// Every block decodes independently from its indexed offset — the
		// contract the parallel prefix decode is built on.
		for b := 0; b < nb; b++ {
			u0, u1 := int32(b*bv), int32((b+1)*bv)
			if int(u1) > n {
				u1 = int32(n)
			}
			var cnt int32
			for u := u0; u < u1; u++ {
				cnt += upDeg[u]
			}
			part := make([]int32, cnt)
			if _, err := decodeAdjRange(part, payload[blockOff[b]:blockOff[b+1]], upDeg, u0, u1, bv, blockOff, blockOff[b]); err != nil {
				t.Fatalf("decoding block %d alone: %v", b, err)
			}
			check(part, u0, u1)
		}

		// Arbitrary bytes as payload: error or valid output, never a panic.
		if n > 0 {
			garbage := append([]byte(nil), data...)
			if int64(len(garbage)) > blockOff[nb] {
				garbage = garbage[:blockOff[nb]]
			}
			gOff := append([]int64(nil), blockOff...)
			gOff[nb] = int64(len(garbage))
			if _, err := decodeAdjRange(dst, garbage, upDeg, 0, int32(n), bv, gOff, 0); err == nil {
				i := 0
				for u := 0; u < n; u++ {
					prev := int32(-1)
					for j := int32(0); j < upDeg[u]; j++ {
						if dst[i] <= prev || dst[i] >= int32(u) {
							t.Fatalf("accepted garbage decoded invalid entry %d for vertex %d", dst[i], u)
						}
						prev = dst[i]
						i++
					}
				}
			}
		}
	})
}
