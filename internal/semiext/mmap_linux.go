//go:build linux && !appengine

package semiext

import (
	"fmt"
	"os"
	"syscall"
)

// MmapAvailable reports whether this build can memory-map edge files;
// callers that require the zero-copy path (the store's strict "mmap" mode,
// platform-dependent tests) gate on it.
const MmapAvailable = true

// mmapFile maps the whole file read-only. The returned slice stays valid
// after f is closed (the mapping pins the inode) and must be released with
// munmapFile.
func mmapFile(f *os.File, size int64) ([]byte, error) {
	if size <= 0 || size != int64(int(size)) {
		return nil, fmt.Errorf("semiext: cannot map %d-byte file", size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("semiext: mmap: %w", err)
	}
	return data, nil
}

func munmapFile(data []byte) error {
	return syscall.Munmap(data)
}
