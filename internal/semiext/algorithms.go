package semiext

import (
	"fmt"

	"influcomm/internal/baseline"
	"influcomm/internal/core"
	"influcomm/internal/graph"
)

// IOStats quantifies the disk and memory behavior of a semi-external run;
// the quantities plotted in Figures 16 and 17.
type IOStats struct {
	// BytesRead is the edge payload volume fetched from disk.
	BytesRead int64
	// EdgesLoaded is the peak number of edges resident in memory: the
	// "size of visited graph" of Figure 17.
	EdgesLoaded int64
	// VisitedFraction is EdgesLoaded / total edges.
	VisitedFraction float64
	// Rounds counts the prefix subgraphs processed (LocalSearchSE only).
	Rounds int
	// Communities found in the final subgraph.
	Communities int
}

// buildPrefix assembles the in-memory prefix graph [0, p) from the vertex
// weights and the streamed flat up-adjacency. Vertex IDs equal global
// ranks, so results are directly comparable with in-memory algorithms. The
// stream delivers lists in exactly the layout FromUpAdjacency consumes, so
// assembly is O(p + E) with no sorting or deduplication.
func buildPrefix(r *Reader, p int, upAdj []int32) (*graph.Graph, error) {
	return graph.FromUpAdjacency(r.weights[:p], r.upDeg[:p], upAdj, nil)
}

// LocalSearchSE answers a top-k influential γ-community query over the edge
// file at path, reading the stream strictly sequentially and only as far as
// the geometric growth of LocalSearch requires (see the semi-external
// remark of §3.1). Communities are returned in decreasing influence order;
// vertex IDs are global ranks.
func LocalSearchSE(path string, k int, gamma int32) ([]*core.Community, IOStats, error) {
	var st IOStats
	if k < 1 || gamma < 1 {
		return nil, st, fmt.Errorf("semiext: invalid query k=%d γ=%d", k, gamma)
	}
	r, err := OpenReader(path)
	if err != nil {
		return nil, st, err
	}
	defer r.Close()

	n := r.NumVertices()
	if n == 0 {
		return nil, st, fmt.Errorf("semiext: empty graph in %s", path)
	}
	p := k + int(gamma)
	if p > n {
		p = n
	}
	var edges []int32
	var cvs *core.CVS
	var g *graph.Graph
	for {
		// Stream up-adjacency lists until the prefix [0, p) is complete.
		for r.NextVertex() < p {
			edges, err = r.ReadVertexAdj(edges)
			if err != nil {
				return nil, st, err
			}
		}
		g, err = buildPrefix(r, p, edges)
		if err != nil {
			return nil, st, err
		}
		eng := core.NewEngine(g, gamma)
		cvs = eng.Run(p, 0, core.WantSeq)
		st.Rounds++
		if cvs.Count() >= k || p == n {
			st.Communities = cvs.Count()
			break
		}
		// Grow to at least twice the current size, extending vertex by
		// vertex using the in-memory up-degree vector (no disk seeks).
		target := 2 * (int64(p) + int64(len(edges)))
		size := int64(p) + int64(len(edges))
		for p < n && size < target {
			size += 1 + int64(r.UpDegree(int32(p)))
			p++
		}
	}
	st.BytesRead = r.BytesRead()
	st.EdgesLoaded = int64(len(edges))
	if r.NumEdges() > 0 {
		st.VisitedFraction = float64(st.EdgesLoaded) / float64(r.NumEdges())
	}
	return core.EnumIC(g, cvs, k), st, nil
}

// OnlineAllSE is the semi-external OnlineAll of [27]: it ingests the entire
// edge stream in decreasing weight order (the file order) into memory and
// runs the global OnlineAll enumeration. Its visited graph is therefore
// always the whole graph — the behavior Figure 17 contrasts with
// LocalSearchSE. ([27] additionally evicts edges of already-reported
// communities to bound peak RAM; that optimization changes neither the I/O
// volume nor the visited-graph size, so this reproduction omits it — see
// DESIGN.md §4.)
func OnlineAllSE(path string, k int, gamma int32) ([]baseline.Community, IOStats, error) {
	var st IOStats
	if k < 1 || gamma < 1 {
		return nil, st, fmt.Errorf("semiext: invalid query k=%d γ=%d", k, gamma)
	}
	r, err := OpenReader(path)
	if err != nil {
		return nil, st, err
	}
	defer r.Close()

	n := r.NumVertices()
	if n == 0 {
		return nil, st, fmt.Errorf("semiext: empty graph in %s", path)
	}
	var edges []int32
	for r.NextVertex() < n {
		edges, err = r.ReadVertexAdj(edges)
		if err != nil {
			return nil, st, err
		}
	}
	g, err := buildPrefix(r, n, edges)
	if err != nil {
		return nil, st, err
	}
	comms, bs, err := baseline.OnlineAll(g, k, gamma)
	if err != nil {
		return nil, st, err
	}
	st.BytesRead = r.BytesRead()
	st.EdgesLoaded = int64(len(edges))
	st.VisitedFraction = 1
	st.Rounds = 1
	st.Communities = bs.Communities
	return comms, st, nil
}
