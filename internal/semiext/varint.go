package semiext

import (
	"encoding/binary"
	"fmt"
	"math/bits"
)

// Edge-file format v2 stores each up-adjacency list delta-gap encoded:
// uvarint(first), then uvarint(gap-1) for every later entry, where gap is
// the difference between consecutive entries. Lists are strictly ascending
// (the CSR invariant), so gap >= 1 and the -1 keeps the common "next rank"
// case in one byte. Vertices ranked by weight put community members next to
// each other, which makes small gaps — and therefore one-byte varints — the
// overwhelmingly common case; clustered graphs compress 3-5x against the
// fixed 4 bytes per edge of v1.
//
// This file holds the codec shared by the writer, the streaming Reader and
// the random-access View: sizing, encoding, and the bulk group decoder that
// turns a run of encoded lists back into the flat up-adjacency layout
// FromUpAdjacency consumes.

// uvarintLen returns the encoded size of x in bytes (1..10).
func uvarintLen(x uint64) int {
	return (bits.Len64(x|1) + 6) / 7
}

// encodedListLen returns the encoded byte size of one strictly ascending
// up-adjacency list without materializing the encoding.
func encodedListLen(list []int32) int {
	if len(list) == 0 {
		return 0
	}
	n := uvarintLen(uint64(list[0]))
	for i := 1; i < len(list); i++ {
		n += uvarintLen(uint64(list[i]-list[i-1]) - 1)
	}
	return n
}

// appendEncodedList appends the v2 encoding of one up-adjacency list owned
// by u. The list must be strictly ascending with entries in [0, u) — the
// writer's callers guarantee it, and the check here keeps a corrupt graph
// from producing a file every reader would reject.
func appendEncodedList(dst []byte, u int32, list []int32) ([]byte, error) {
	prev := int32(-1)
	for _, v := range list {
		if v <= prev || v >= u {
			return dst, fmt.Errorf("semiext: up-adjacency of vertex %d is not strictly ascending in [0,%d)", u, u)
		}
		if prev < 0 {
			dst = binary.AppendUvarint(dst, uint64(v))
		} else {
			dst = binary.AppendUvarint(dst, uint64(v-prev)-1)
		}
		prev = v
	}
	return dst, nil
}

const allHighBits = uint64(0x8080_8080_8080_8080)

// decodeAdjRange decodes the encoded lists of vertices [u0, u1) from data —
// the payload bytes starting at u0's list — into dst, which must hold
// exactly the up-degrees of the range. It enforces the format invariants
// (entries strictly ascending in [0, owner), every block boundary landing
// exactly on its declared byte offset) and returns the payload bytes
// consumed.
//
// The hot loop is a group decoder: whenever the next eight gap bytes all
// have their continuation bit clear — the dominant case on clustered
// graphs — they are recognized with one 64-bit load and mask instead of
// eight per-byte branches, and expanded in a branch-free unrolled run.
// base is the payload offset of data[0], used for the boundary checks.
func decodeAdjRange(dst []int32, data []byte, upDeg []int32, u0, u1 int32, blockVerts int, blockOff []int64, base int64) (int64, error) {
	pos := 0
	di := 0
	for u := u0; u < u1; u++ {
		if int(u)%blockVerts == 0 {
			if want := blockOff[int(u)/blockVerts] - base; int64(pos) != want {
				return int64(pos), fmt.Errorf("semiext: block %d starts at payload byte %d, index says %d", int(u)/blockVerts, base+int64(pos), base+want)
			}
		}
		d := int(upDeg[u])
		if d == 0 {
			continue
		}
		first, k := binary.Uvarint(data[pos:])
		if k <= 0 || first >= uint64(u) {
			return int64(pos), fmt.Errorf("semiext: corrupt adjacency of vertex %d", u)
		}
		pos += k
		cur := first
		dst[di] = int32(cur)
		di++
		for j := 1; j < d; {
			// Group fast path: eight whole varints in one load.
			if j+8 <= d && pos+8 <= len(data) {
				w := binary.LittleEndian.Uint64(data[pos:])
				if w&allHighBits == 0 {
					cur += w&0xff + 1
					dst[di] = int32(cur)
					cur += w>>8&0xff + 1
					dst[di+1] = int32(cur)
					cur += w>>16&0xff + 1
					dst[di+2] = int32(cur)
					cur += w>>24&0xff + 1
					dst[di+3] = int32(cur)
					cur += w>>32&0xff + 1
					dst[di+4] = int32(cur)
					cur += w>>40&0xff + 1
					dst[di+5] = int32(cur)
					cur += w>>48&0xff + 1
					dst[di+6] = int32(cur)
					cur += w>>56&0xff + 1
					dst[di+7] = int32(cur)
					// Entries are strictly increasing, so checking the last
					// of the eight bounds them all.
					if cur >= uint64(u) {
						return int64(pos), fmt.Errorf("semiext: corrupt adjacency of vertex %d", u)
					}
					di += 8
					pos += 8
					j += 8
					continue
				}
			}
			gap, k := binary.Uvarint(data[pos:])
			if k <= 0 || gap >= uint64(u) || cur+gap+1 >= uint64(u) {
				return int64(pos), fmt.Errorf("semiext: corrupt adjacency of vertex %d", u)
			}
			pos += k
			cur += gap + 1
			dst[di] = int32(cur)
			di++
			j++
		}
	}
	if di != len(dst) {
		return int64(pos), fmt.Errorf("semiext: decoded %d adjacency entries, expected %d", di, len(dst))
	}
	// A range ending on a block boundary must land exactly on the declared
	// offset; the final block's end offset doubles as the payload length.
	if int(u1)%blockVerts == 0 || int(u1) == len(upDeg) {
		b := (int(u1) + blockVerts - 1) / blockVerts
		if want := blockOff[b] - base; int64(pos) != want {
			return int64(pos), fmt.Errorf("semiext: block %d ends at payload byte %d, index says %d", b-1, base+int64(pos), base+want)
		}
	}
	return int64(pos), nil
}
