//go:build !linux || appengine

package semiext

import (
	"errors"
	"os"
)

// MmapAvailable reports whether this build can memory-map edge files; on
// platforms without the Linux mmap path the View falls back to positioned
// ReaderAt reads over the same API, and the store's strict "mmap" mode
// refuses to open.
const MmapAvailable = false

func mmapFile(*os.File, int64) ([]byte, error) {
	return nil, errors.New("semiext: mmap not available on this platform")
}

func munmapFile([]byte) error { return nil }
