//go:build !unix

package semiext

import "os"

// lockLogFile is a no-op where flock is unavailable; the double-open
// protection of the write-ahead log is advisory and unix-only, matching
// the mmap fast path's platform split.
func lockLogFile(*os.File) error { return nil }
