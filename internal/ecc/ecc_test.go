package ecc

import (
	"fmt"
	"testing"
	"testing/quick"

	"influcomm/internal/gen"
	"influcomm/internal/graph"
)

func clique(t testing.TB, n int) *graph.Graph {
	t.Helper()
	weights := make([]float64, n)
	for i := range weights {
		weights[i] = float64(100 - i)
	}
	var edges [][2]int32
	for i := int32(0); int(i) < n; i++ {
		for j := i + 1; int(j) < n; j++ {
			edges = append(edges, [2]int32{i, j})
		}
	}
	return graph.MustFromEdges(weights, edges)
}

func allVerts(p int) []int32 {
	vs := make([]int32, p)
	for i := range vs {
		vs[i] = int32(i)
	}
	return vs
}

func TestDecomposeClique(t *testing.T) {
	// K5 is 4-edge-connected: one component at γ <= 4, none at γ = 5.
	g := clique(t, 5)
	comps := Decompose(g, allVerts(5), 5, 4)
	if len(comps) != 1 || len(comps[0]) != 5 {
		t.Fatalf("K5 at γ=4: %v", comps)
	}
	if comps := Decompose(g, allVerts(5), 5, 5); len(comps) != 0 {
		t.Fatalf("K5 at γ=5 should be empty, got %v", comps)
	}
}

func TestDecomposeBridge(t *testing.T) {
	// Two triangles joined by one bridge edge: 2-edge-connected components
	// are the triangles; the bridge is a 1-cut.
	g := graph.MustFromEdges(
		[]float64{60, 50, 40, 30, 20, 10},
		[][2]int32{{0, 1}, {1, 2}, {0, 2}, {3, 4}, {4, 5}, {3, 5}, {2, 3}},
	)
	comps := Decompose(g, allVerts(6), 6, 2)
	if len(comps) != 2 {
		t.Fatalf("got %d components, want 2: %v", len(comps), comps)
	}
	want := map[string]bool{"[0 1 2]": true, "[3 4 5]": true}
	for _, c := range comps {
		if !want[fmt.Sprint(c)] {
			t.Errorf("unexpected component %v", c)
		}
	}
	// At γ=1 the whole graph is one component.
	comps = Decompose(g, allVerts(6), 6, 1)
	if len(comps) != 1 || len(comps[0]) != 6 {
		t.Fatalf("γ=1: %v", comps)
	}
}

func TestDecomposeRespectsPrefix(t *testing.T) {
	g := graph.MustFromEdges(
		[]float64{40, 30, 20, 10},
		[][2]int32{{0, 1}, {1, 3}, {0, 3}, {2, 3}},
	)
	// Within prefix 3 the triangle {0,1,3} is incomplete.
	if comps := Decompose(g, allVerts(3), 3, 2); len(comps) != 0 {
		t.Fatalf("prefix 3 at γ=2: %v", comps)
	}
	if comps := Decompose(g, allVerts(4), 4, 2); len(comps) != 1 {
		t.Fatalf("prefix 4 at γ=2: %v", comps)
	}
}

func TestEnumMatchesNaive(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		g := gen.Random(22, 4, seed)
		for _, gamma := range []int32{1, 2, 3} {
			want := NaiveCommunities(g, gamma)
			got := EnumICC(g, g.NumVertices(), -1, gamma)
			if len(got) != len(want) {
				t.Fatalf("seed %d γ=%d: got %d communities, want %d", seed, gamma, len(got), len(want))
			}
			for i := range want {
				a := fmt.Sprintf("%d:%v", got[i].Keynode, got[i].Vertices)
				b := fmt.Sprintf("%d:%v", want[i].Keynode, want[i].Vertices)
				if a != b {
					t.Fatalf("seed %d γ=%d: community %d mismatch\n got %s\nwant %s", seed, gamma, i, a, b)
				}
			}
			if CountICC(g, g.NumVertices(), gamma) != len(want) {
				t.Fatalf("seed %d γ=%d: CountICC mismatch", seed, gamma)
			}
		}
	}
}

// TestMonotonicityProperty: Property-I of §5.2 holds for edge connectivity.
func TestMonotonicityProperty(t *testing.T) {
	f := func(seed uint64) bool {
		g := gen.Random(18, 4, seed|1)
		gamma := int32(2)
		prev := 0
		for p := 0; p <= g.NumVertices(); p += 2 {
			cnt := CountICC(g, p, gamma)
			if cnt < prev {
				return false
			}
			prev = cnt
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// TestCutValueProperty: every reported community really is γ-edge-connected
// (removing any single vertex's incident edges keeps it connected when
// γ >= 2 — a necessary condition checked cheaply).
func TestCommunityConnectivity(t *testing.T) {
	g := gen.Random(20, 5, 77)
	for _, c := range EnumICC(g, g.NumVertices(), -1, 2) {
		if len(c.Vertices) < 3 {
			t.Fatalf("2-edge-connected community with %d vertices", len(c.Vertices))
		}
		// Influence = min weight.
		for _, v := range c.Vertices {
			if g.Weight(v) < c.Influence {
				t.Fatal("influence is not the minimum weight")
			}
		}
	}
}
