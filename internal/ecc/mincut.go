// Package ecc implements the edge-connectivity cohesiveness measure of
// §5.2: an influential γ-cohesive community under this measure is a
// maximal connected subgraph that remains connected after removing any
// γ−1 edges (a γ-edge-connected component [6, 40]).
//
// The substrate is a Stoer–Wagner global minimum cut with recursive
// splitting, the textbook way to obtain maximal γ-edge-connected
// subgraphs. Its cost is O(n·m + n² log n) per cut, so this instance is
// reference-grade: it exists to demonstrate (and test) that the paper's
// generalized framework really is measure-agnostic, not to run on the
// benchmark graphs. (A production k-ECC decomposition as in [6] would slot
// in behind the same Measure interface.)
package ecc

import "influcomm/internal/graph"

// subgraph is a local adjacency view over an arbitrary vertex subset.
type subgraph struct {
	verts []int32       // global IDs
	pos   map[int32]int // global ID -> local index
	adj   [][]int32     // local adjacency (local indices)
}

func induce(g *graph.Graph, verts []int32, within int) *subgraph {
	s := &subgraph{verts: verts, pos: make(map[int32]int, len(verts))}
	for i, v := range verts {
		s.pos[v] = i
	}
	s.adj = make([][]int32, len(verts))
	for i, v := range verts {
		for _, w := range g.NeighborsWithin(v, within) {
			if j, ok := s.pos[w]; ok {
				s.adj[i] = append(s.adj[i], int32(j))
			}
		}
	}
	return s
}

// components returns the connected components of s as lists of local
// indices.
func (s *subgraph) components() [][]int32 {
	n := len(s.verts)
	seen := make([]bool, n)
	var out [][]int32
	for v := 0; v < n; v++ {
		if seen[v] {
			continue
		}
		comp := []int32{int32(v)}
		seen[v] = true
		for i := 0; i < len(comp); i++ {
			for _, w := range s.adj[comp[i]] {
				if !seen[w] {
					seen[w] = true
					comp = append(comp, w)
				}
			}
		}
		out = append(out, comp)
	}
	return out
}

// minCut runs Stoer–Wagner on the local vertices listed in comp (which must
// be connected) and returns the global minimum cut value together with one
// side of an optimal cut (local indices). comp must contain >= 2 vertices.
func (s *subgraph) minCut(comp []int32) (int, []int32) {
	n := len(comp)
	// Dense weight matrix over the component; merged supervertices track
	// their member lists.
	idx := make(map[int32]int, n)
	for i, v := range comp {
		idx[v] = i
	}
	w := make([][]int, n)
	for i := range w {
		w[i] = make([]int, n)
	}
	for i, v := range comp {
		for _, u := range s.adj[v] {
			if j, ok := idx[u]; ok {
				w[i][j]++
			}
		}
	}
	members := make([][]int32, n)
	for i, v := range comp {
		members[i] = []int32{v}
	}
	active := make([]int, n)
	for i := range active {
		active[i] = i
	}
	bestCut := int(^uint(0) >> 1)
	var bestSide []int32

	for len(active) > 1 {
		// Maximum adjacency (minimum cut phase).
		inA := make(map[int]bool, len(active))
		weights := make(map[int]int, len(active))
		order := make([]int, 0, len(active))
		for len(order) < len(active) {
			// Pick the most tightly connected remaining vertex.
			best, bestW := -1, -1
			for _, v := range active {
				if inA[v] {
					continue
				}
				if weights[v] > bestW {
					best, bestW = v, weights[v]
				}
			}
			inA[best] = true
			order = append(order, best)
			for _, v := range active {
				if !inA[v] {
					weights[v] += w[best][v]
				}
			}
		}
		t := order[len(order)-1]
		sPrev := order[len(order)-2]
		cutOfThePhase := 0
		for _, v := range active {
			if v != t {
				cutOfThePhase += w[t][v]
			}
		}
		if cutOfThePhase < bestCut {
			bestCut = cutOfThePhase
			bestSide = append([]int32(nil), members[t]...)
		}
		// Merge t into sPrev.
		members[sPrev] = append(members[sPrev], members[t]...)
		for _, v := range active {
			if v != t && v != sPrev {
				w[sPrev][v] += w[t][v]
				w[v][sPrev] = w[sPrev][v]
			}
		}
		na := active[:0]
		for _, v := range active {
			if v != t {
				na = append(na, v)
			}
		}
		active = na
	}
	return bestCut, bestSide
}

// Decompose returns the maximal γ-edge-connected subgraphs of the prefix
// [0, within) restricted to verts (global IDs), each as a sorted list of
// global IDs. Single vertices are never returned (an isolated vertex has
// connectivity 0).
func Decompose(g *graph.Graph, verts []int32, within int, gamma int32) [][]int32 {
	s := induce(g, verts, within)
	var out [][]int32
	var recurse func(comp []int32)
	recurse = func(comp []int32) {
		if len(comp) < 2 {
			return
		}
		cut, side := s.minCut(comp)
		if int32(cut) >= gamma {
			globals := make([]int32, len(comp))
			for i, v := range comp {
				globals[i] = s.verts[v]
			}
			insertionSort(globals)
			out = append(out, globals)
			return
		}
		// Split by the cut and recurse on the connected pieces of each side.
		inSide := make(map[int32]bool, len(side))
		for _, v := range side {
			inSide[v] = true
		}
		var a, b []int32
		for _, v := range comp {
			if inSide[v] {
				a = append(a, v)
			} else {
				b = append(b, v)
			}
		}
		for _, half := range [][]int32{a, b} {
			for _, sub := range s.componentsOf(half) {
				recurse(sub)
			}
		}
	}
	for _, comp := range s.components() {
		recurse(comp)
	}
	return out
}

// componentsOf returns the connected components of the induced sub-subgraph
// on the given local vertices.
func (s *subgraph) componentsOf(verts []int32) [][]int32 {
	in := make(map[int32]bool, len(verts))
	for _, v := range verts {
		in[v] = true
	}
	seen := make(map[int32]bool, len(verts))
	var out [][]int32
	for _, v := range verts {
		if seen[v] {
			continue
		}
		comp := []int32{v}
		seen[v] = true
		for i := 0; i < len(comp); i++ {
			for _, w := range s.adj[comp[i]] {
				if in[w] && !seen[w] {
					seen[w] = true
					comp = append(comp, w)
				}
			}
		}
		out = append(out, comp)
	}
	return out
}

func insertionSort(a []int32) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j-1] > a[j]; j-- {
			a[j-1], a[j] = a[j], a[j-1]
		}
	}
}
