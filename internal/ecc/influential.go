package ecc

import (
	"sort"

	"influcomm/internal/graph"
)

// Community is an influential γ-edge-connected community.
type Community struct {
	Keynode   int32
	Influence float64
	Vertices  []int32 // ascending rank
}

// CountICC counts the influential γ-edge-connected communities in the
// prefix [0, p) with the generic iteration of §5.2: repeatedly reduce to
// the maximal γ-cohesive subgraphs, take the minimum-weight remaining
// vertex as a keynode, and delete it.
func CountICC(g *graph.Graph, p int, gamma int32) int {
	return len(enumerate(g, p, gamma))
}

// EnumICC returns the top-k influential γ-edge-connected communities of
// the prefix [0, p) in decreasing influence order (all when k < 0).
func EnumICC(g *graph.Graph, p, k int, gamma int32) []Community {
	all := enumerate(g, p, gamma)
	// enumerate emits in increasing influence order; reverse and cut.
	for i, j := 0, len(all)-1; i < j; i, j = i+1, j-1 {
		all[i], all[j] = all[j], all[i]
	}
	if k >= 0 && len(all) > k {
		all = all[:k]
	}
	return all
}

func enumerate(g *graph.Graph, p int, gamma int32) []Community {
	alive := make([]int32, 0, p)
	for u := int32(0); int(u) < p; u++ {
		alive = append(alive, u)
	}
	var out []Community
	for {
		comps := Decompose(g, alive, p, gamma)
		if len(comps) == 0 {
			return out
		}
		// Survivors are exactly the union of the γ-connected components.
		alive = alive[:0]
		var keynode int32 = -1
		var keyComp []int32
		for _, comp := range comps {
			alive = append(alive, comp...)
			for _, v := range comp {
				if v > keynode {
					keynode = v
					keyComp = comp
				}
			}
		}
		community := append([]int32(nil), keyComp...)
		out = append(out, Community{
			Keynode:   keynode,
			Influence: g.Weight(keynode),
			Vertices:  community,
		})
		// Remove the keynode.
		next := alive[:0]
		for _, v := range alive {
			if v != keynode {
				next = append(next, v)
			}
		}
		alive = next
		sort.Slice(alive, func(i, j int) bool { return alive[i] < alive[j] })
	}
}

// NaiveCommunities is the definitional oracle: vertex u is a keynode iff it
// survives the γ-edge-connected decomposition of the prefix [0, u], and its
// community is its component there. Returned in decreasing influence order.
func NaiveCommunities(g *graph.Graph, gamma int32) []Community {
	var out []Community
	for u := int32(0); int(u) < g.NumVertices(); u++ {
		p := int(u) + 1
		verts := make([]int32, p)
		for i := range verts {
			verts[i] = int32(i)
		}
		for _, comp := range Decompose(g, verts, p, gamma) {
			for _, v := range comp {
				if v == u {
					out = append(out, Community{Keynode: u, Influence: g.Weight(u), Vertices: comp})
				}
			}
		}
	}
	return out
}
