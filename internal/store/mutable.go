package store

import (
	"context"

	"influcomm/internal/graph"
	"influcomm/internal/mutable"
)

// EdgeUpdate is one edge mutation of a MutableStore batch; endpoints are
// original vertex IDs (see mutable.Update).
type EdgeUpdate = mutable.Update

// ErrInvalidBatch marks ApplyUpdates failures caused by the batch itself
// (unknown vertices, self loops) rather than by the store; callers map it
// to client errors.
var ErrInvalidBatch = mutable.ErrInvalidBatch

// UpdateStats reports what one ApplyUpdates batch did.
type UpdateStats = mutable.ApplyStats

// UpdateEvent describes one published snapshot transition to an OnApply
// observer: the new epoch and the delta cut (smallest weight rank whose
// adjacency changed); see mutable.UpdateEvent.
type UpdateEvent = mutable.UpdateEvent

// MutableStore is a Store whose graph accepts online edge updates while
// serving: readers pin immutable copy-on-write snapshots, so queries in
// flight during an update complete on the graph they started on and
// serving never pauses. The "mutable" backend implements it.
type MutableStore interface {
	Store

	// ApplyUpdates applies one batch of edge insertions/deletions and
	// publishes the resulting snapshot. No-ops (inserting a present edge,
	// deleting an absent one) are skipped and counted, not errors.
	ApplyUpdates(ctx context.Context, batch []EdgeUpdate) (UpdateStats, error)

	// Snapshot returns the current graph with its epoch in one coherent
	// read; derived per-graph state (truss or prebuilt indexes) is keyed
	// by the epoch.
	Snapshot() (*graph.Graph, uint64)

	// SnapshotEpoch returns the current snapshot epoch (0 at open, +1 per
	// effective batch).
	SnapshotEpoch() uint64

	// UpdatesApplied returns the total effective edge mutations applied
	// since open.
	UpdatesApplied() int64

	// OnApply registers an observer of effectively applied batches,
	// called synchronously after each snapshot publish; nil removes it.
	// Incremental index maintenance hangs off this hook.
	OnApply(fn func(UpdateEvent))
}

// OpenMutable opens the edge file at path as a durable mutable store: the
// graph loads fully into memory, the write-ahead update log (path + ".log")
// is replayed over it, applied batches are logged before they are visible,
// and a clean Close compacts log and edge file back into one. See
// mutable.Open.
func OpenMutable(path string) (MutableStore, error) {
	return mutable.Open(path)
}

// OpenMutableGraph serves g mutably without durability: updates change the
// served snapshots but are not persisted anywhere.
func OpenMutableGraph(g *graph.Graph) (MutableStore, error) {
	return mutable.NewStore(g)
}

// AsMutable returns the store's mutable interface when its backend supports
// online updates, and nil otherwise; the serving layer uses it to route
// admin update requests without caring which concrete backend is loaded.
func AsMutable(st Store) MutableStore {
	ms, _ := st.(MutableStore)
	return ms
}
