package store

import (
	"context"
	"fmt"
	"sort"
	"sync/atomic"

	"influcomm/internal/core"
	"influcomm/internal/graph"
	"influcomm/internal/semiext"
)

// SemiExt is the semi-external backend (Eval-VI/VII of the paper): edges
// live on disk sorted in decreasing edge-weight order and only per-vertex
// state — weights, up-degrees, and the prefix-size vector derived from
// them — is resident, O(n) memory for an O(n+m) graph. Each query opens
// its own sequential stream over the edge file and reads exactly as far as
// LocalSearch's geometric growth requires, so concurrent queries never
// contend on a shared file position and a graph larger than RAM still
// serves point queries that touch only its heavy prefix.
type SemiExt struct {
	path    string
	n       int
	m       int64
	weights []float64
	upDeg   []int32
	// sizes[p] = size(G≥τ) = p + |E(G≥τ)| for the prefix [0, p); the
	// growth policy runs entirely on this vector, no disk involved.
	sizes  []int64
	closed atomic.Bool
}

// OpenEdgeFile opens a semi-external edge file written by
// semiext.WriteEdgeFile and loads its per-vertex state.
func OpenEdgeFile(path string) (*SemiExt, error) {
	r, err := semiext.OpenReader(path)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	n := r.NumVertices()
	s := &SemiExt{
		path:    path,
		n:       n,
		m:       r.NumEdges(),
		weights: make([]float64, n),
		upDeg:   make([]int32, n),
		sizes:   make([]int64, n+1),
	}
	for u := 0; u < n; u++ {
		s.weights[u] = r.Weight(int32(u))
		s.upDeg[u] = r.UpDegree(int32(u))
		s.sizes[u+1] = s.sizes[u] + 1 + int64(s.upDeg[u])
	}
	return s, nil
}

// Backend returns "semiext".
func (s *SemiExt) Backend() string { return "semiext" }

// NumVertices returns the vertex count.
func (s *SemiExt) NumVertices() int { return s.n }

// NumEdges returns the edge count.
func (s *SemiExt) NumEdges() int64 { return s.m }

// Path returns the edge file the store reads from.
func (s *SemiExt) Path() string { return s.path }

// Graph returns nil: the backend never holds the whole graph.
func (s *SemiExt) Graph() *graph.Graph { return nil }

// TopK answers a query by streaming a prefix of the edge file through the
// generic LocalSearch driver. Communities and access statistics are
// identical to an in-memory query over the same graph.
func (s *SemiExt) TopK(ctx context.Context, k int, gamma int32, opts core.Options) (*core.Result, error) {
	if s.closed.Load() {
		return nil, fmt.Errorf("store: %s is closed", s.path)
	}
	// The header was read and validated once at Open; each query adopts the
	// resident per-vertex vectors and pays only an open+seek before its
	// sequential edge reads.
	r, err := semiext.OpenEdgeStream(s.path, s.weights, s.upDeg, s.m)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	return core.TopKOver(ctx, &seSource{st: s, r: r, ctx: ctx}, k, gamma, opts)
}

// Close marks the store closed; subsequent queries fail, in-flight queries
// hold their own readers and are unaffected.
func (s *SemiExt) Close() error {
	s.closed.Store(true)
	return nil
}

// seSource adapts one query's edge-file stream to core.SearchSource. It is
// single-use: the reader position and the accumulated edge slice advance
// monotonically with the query's growing prefix.
type seSource struct {
	st    *SemiExt
	r     *semiext.Reader
	edges [][2]int32
	ctx   context.Context
}

func (q *seSource) NumVertices() int { return q.st.n }

func (q *seSource) PrefixSize(p int) int64 { return q.st.sizes[p] }

// PrefixForSize mirrors graph.PrefixForSize exactly, so the semi-external
// growth sequence matches the in-memory one round for round.
func (q *seSource) PrefixForSize(want int64) int {
	if want <= 0 {
		return 0
	}
	p := sort.Search(q.st.n, func(p int) bool { return q.st.sizes[p+1] >= want })
	if p == q.st.n {
		return q.st.n
	}
	return p + 1
}

// ctxCheckEvery bounds how many adjacency lists are streamed between two
// context polls while materializing a prefix.
const ctxCheckEvery = 4096

// Materialize streams the edge file up to vertex p and assembles the
// prefix subgraph. Vertex IDs equal global ranks, as the driver requires.
func (q *seSource) Materialize(p int) (*graph.Graph, error) {
	var err error
	for budget := 0; q.r.NextVertex() < p; budget++ {
		if budget%ctxCheckEvery == 0 {
			if err := q.ctx.Err(); err != nil {
				return nil, err
			}
		}
		if q.edges, err = q.r.ReadVertexEdges(q.edges); err != nil {
			return nil, err
		}
	}
	var b graph.Builder
	for u := 0; u < p; u++ {
		b.AddVertex(int32(u), q.st.weights[u])
	}
	for _, e := range q.edges {
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}
