package store

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"influcomm/internal/core"
	"influcomm/internal/graph"
	"influcomm/internal/semiext"
)

// SemiExt is the semi-external backend (Eval-VI/VII of the paper): edges
// live on disk sorted in decreasing edge-weight order and only per-vertex
// state — weights, up-degrees, and the prefix-size vector derived from
// them — is resident, O(n) memory for an O(n+m) graph.
//
// The read path is built around zero-copy access and cross-query sharing:
//
//   - By default the edge file is served through a semiext.View — one
//     memory mapping (with a positioned-read fallback on platforms without
//     it) opened at store creation, so a query pays no os.Open, no header
//     re-parse, and no per-edge decode loop; whole adjacency runs are
//     handed to the O(p+E) CSR assembler as typed slices over the mapping.
//
//   - LocalSearch's geometric growth means virtually every query touches
//     the heavy prefix [0, p), so the store can keep one immutable decoded
//     prefix graph — budgeted by WithPrefixCacheBytes, grown on demand
//     under a singleflight guard, swapped atomically — that all concurrent
//     queries read lock-free, each through pooled engines bound to it.
//     Queries whose growth stays inside the cache are allocation-free in
//     steady state apart from their Result; queries that outgrow it fall
//     back to materializing a private prefix from the view (or, in stream
//     mode, from a pooled sequential reader).
//
// Results and access statistics are byte-identical to the in-memory
// backend for the same graph, whichever path serves the query.
type SemiExt struct {
	path    string
	mode    string // "mmap", "pread", or "stream"
	n       int
	m       int64
	weights []float64
	upDeg   []int32
	// sizes[p] = size(G≥τ) = p + |E(G≥τ)| for the prefix [0, p); the
	// growth policy runs entirely on this vector, no disk involved.
	sizes []int64

	// format is the edge-file format version (semiext.FormatV1 or V2) and
	// meta the validated open state pooled stream readers adopt.
	format int
	meta   semiext.FileMeta

	// workers bounds intra-query parallelism: queries large enough to leave
	// the zero-overhead path evaluate their γ-round decompositions on up to
	// this many goroutines, and v2 bulk decodes split the same way. 0 or 1
	// serves strictly sequentially.
	workers int

	// view is the shared zero-copy window over the edge file; nil in
	// stream mode, where every access goes through a pooled Reader.
	view *semiext.View

	// cacheBudget caps the decoded-prefix cache's extra resident bytes;
	// maxCacheP is the largest prefix that fits it (0 disables caching).
	cacheBudget int64
	maxCacheP   int
	cache       atomic.Pointer[prefixCache]
	// growSem serializes cache growth (singleflight) as a 1-slot channel
	// rather than a mutex so waiters can abandon the wait when their
	// query's context expires instead of blocking uncancellably behind a
	// large build.
	growSem chan struct{}

	srcPool sync.Pool // *seSource: per-query scratch, reused across queries

	// refs counts in-flight queries; the mapping is released only once the
	// store is closed and the last query has drained, so a zero-copy slice
	// can never outlive its mapping.
	refs      atomic.Int64
	closed    atomic.Bool
	closeOnce sync.Once
}

// prefixCache is one immutable decoded prefix [0, p) shared by every query
// that fits in it, with an engine pool bound to its graph. Growth builds a
// new prefixCache and swaps the pointer; queries holding the old one finish
// on it unaffected.
type prefixCache struct {
	p    int
	g    *graph.Graph
	pool *core.Pool
}

// OpenOption configures Open and OpenEdgeFile.
type OpenOption func(*openConfig)

type openConfig struct {
	prefixCacheBytes int64
	mode             string
	workers          int
}

// WithPrefixCacheBytes budgets the semi-external decoded-prefix cache: the
// store keeps up to n extra resident bytes of decoded CSR covering the
// heavy prefix every LocalSearch query starts in. 0 (the default) disables
// the cache, preserving the strict O(n)-resident semi-external model; a
// budget of at least the decoded file size lets the cache grow to the
// whole graph, making steady-state queries as fast as the in-memory
// backend. Ignored by the memory backend.
func WithPrefixCacheBytes(n int64) OpenOption {
	return func(c *openConfig) { c.prefixCacheBytes = n }
}

// WithEdgeFileMode selects how the semi-external backend reads its edge
// file: "auto" (the default) serves adjacency through a shared zero-copy
// view, falling back to positioned reads on platforms or files the
// mapping cannot cover; "mmap" is the same view but refuses to open when
// the mapping is unavailable (an explicit request is a promise, not a
// hint); "stream" forces the per-query sequential reader (the residual
// path kept for fallback and comparison). Ignored by the memory backend.
func WithEdgeFileMode(mode string) OpenOption {
	return func(c *openConfig) { c.mode = mode }
}

// WithWorkers bounds intra-query parallelism for the semi-external backend:
// queries whose work size leaves the zero-overhead sequential path evaluate
// their independent γ-round decompositions on up to n goroutines, and bulk
// prefix decodes of compressed (v2) edge files split across the same
// worker count. Results are byte-identical at any setting. 0 or 1 (the
// default) serves strictly sequentially. Ignored by the memory backend.
func WithWorkers(n int) OpenOption {
	return func(c *openConfig) { c.workers = n }
}

// OpenEdgeFile opens a semi-external edge file written by
// semiext.WriteEdgeFile (format v1 or v2, detected from the header) and
// loads its per-vertex state.
func OpenEdgeFile(path string, opts ...OpenOption) (*SemiExt, error) {
	cfg := openConfig{mode: "auto"}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.prefixCacheBytes < 0 {
		return nil, fmt.Errorf("store: negative prefix-cache budget %d", cfg.prefixCacheBytes)
	}
	if cfg.workers < 0 {
		return nil, fmt.Errorf("store: negative worker count %d", cfg.workers)
	}
	s := &SemiExt{path: path, cacheBudget: cfg.prefixCacheBytes, workers: cfg.workers}
	switch cfg.mode {
	case "auto", "mmap":
		v, err := semiext.OpenView(path)
		if err != nil {
			return nil, err
		}
		if cfg.mode == "mmap" && !v.Mapped() {
			// An explicit mmap request is a promise about the access path,
			// not a hint: refuse rather than silently serve positioned
			// reads at different performance. "auto" is the degrading mode.
			v.Close()
			return nil, fmt.Errorf("store: %s: mmap requested but unavailable on this platform/file (use mode=auto to allow pread fallback)", path)
		}
		s.view = v
		s.n = v.NumVertices()
		s.m = v.NumEdges()
		s.weights = v.Weights()
		s.upDeg = v.UpDegrees()
		s.format = v.Format()
		s.meta = v.Meta()
		if v.Mapped() {
			s.mode = "mmap"
		} else {
			s.mode = "pread"
		}
	case "stream":
		r, err := semiext.OpenReader(path)
		if err != nil {
			return nil, err
		}
		defer r.Close()
		s.n = r.NumVertices()
		s.m = r.NumEdges()
		s.format = r.Format()
		s.meta = r.Meta()
		s.weights = s.meta.Weights
		s.upDeg = s.meta.UpDeg
		s.mode = "stream"
	default:
		return nil, fmt.Errorf("store: unknown edge-file mode %q (want \"auto\", \"mmap\", or \"stream\")", cfg.mode)
	}
	s.sizes = make([]int64, s.n+1)
	for u := 0; u < s.n; u++ {
		s.sizes[u+1] = s.sizes[u] + 1 + int64(s.upDeg[u])
	}
	if s.cacheBudget > 0 {
		// Largest prefix whose decoded CSR fits the budget; estCacheBytes
		// is monotone in p, so the frontier is a binary search.
		s.maxCacheP = sort.Search(s.n, func(p int) bool { return s.estCacheBytes(p+1) > s.cacheBudget })
	}
	s.growSem = make(chan struct{}, 1)
	s.srcPool.New = func() any { return &seSource{st: s} }
	return s, nil
}

// estCacheBytes estimates the extra resident bytes of a decoded prefix
// [0, p): the offset and up-prefix arrays plus both CSR directions of every
// edge. Weights and up-degrees alias the store's already-resident vectors
// and cost nothing extra; pooled engines (O(p) each, bounded by query
// concurrency) are deliberately not charged to the budget.
func (s *SemiExt) estCacheBytes(p int) int64 {
	return 16*int64(p+1) + 8*s.edgeCount(p)
}

// edgeCount returns |E(G≥τ)| for the prefix [0, p).
func (s *SemiExt) edgeCount(p int) int64 { return s.sizes[p] - int64(p) }

// prefixForSize mirrors graph.PrefixForSize on the resident size vector, so
// the semi-external growth sequence matches the in-memory one round for
// round.
func (s *SemiExt) prefixForSize(want int64) int {
	if want <= 0 {
		return 0
	}
	p := sort.Search(s.n, func(p int) bool { return s.sizes[p+1] >= want })
	if p == s.n {
		return s.n
	}
	return p + 1
}

// Backend returns "semiext".
func (s *SemiExt) Backend() string { return "semiext" }

// Mode reports how the edge file is accessed: "mmap" (zero-copy mapping),
// "pread" (positioned reads on platforms without the mapping fast path),
// or "stream" (per-query sequential reader).
func (s *SemiExt) Mode() string { return s.mode }

// Format returns the edge-file format version the store serves:
// semiext.FormatV1 (fixed-width adjacency) or semiext.FormatV2 (delta-gap
// varint compressed adjacency).
func (s *SemiExt) Format() int { return s.format }

// Workers returns the intra-query parallelism bound (0 or 1 means strictly
// sequential serving).
func (s *SemiExt) Workers() int { return s.workers }

// NumVertices returns the vertex count.
func (s *SemiExt) NumVertices() int { return s.n }

// NumEdges returns the edge count.
func (s *SemiExt) NumEdges() int64 { return s.m }

// Path returns the edge file the store reads from.
func (s *SemiExt) Path() string { return s.path }

// Graph returns nil: the backend never holds the whole graph.
func (s *SemiExt) Graph() *graph.Graph { return nil }

// CachedPrefix reports how many vertices the decoded-prefix cache currently
// covers; 0 when disabled or not yet grown.
func (s *SemiExt) CachedPrefix() int {
	if c := s.cache.Load(); c != nil {
		return c.p
	}
	return 0
}

// TopK answers a query through the generic LocalSearch driver over
// whichever access path serves it best: the shared decoded-prefix cache
// when the query fits, the zero-copy view otherwise. Communities and
// access statistics are identical to an in-memory query over the same
// graph.
func (s *SemiExt) TopK(ctx context.Context, k int, gamma int32, opts core.Options) (*core.Result, error) {
	// Pin the store before re-checking closed: Close only releases the
	// mapping once the reference count drains, so a query that got its
	// reference in can never observe a dead mapping.
	s.refs.Add(1)
	defer s.release()
	if s.closed.Load() {
		return nil, fmt.Errorf("store: %s is closed", s.path)
	}
	src := s.srcPool.Get().(*seSource)
	src.ctx = ctx
	defer s.putSource(src)
	if s.workers > 1 {
		return core.TopKOverParallel(ctx, src, k, gamma, opts, s.workers)
	}
	return core.TopKOver(ctx, src, k, gamma, opts)
}

// maxPooledScratchBytes caps how much private-build scratch a pooled
// source may retain between queries. Without a cap, one k≈n query on a
// large graph would pin O(m)-sized buffers per pooled source indefinitely
// — exactly the resident footprint the semi-external model exists to
// avoid. Oversized scratch is dropped; the occasional deep query pays a
// reallocation, the steady state stays bounded.
const maxPooledScratchBytes = 32 << 20

func (s *SemiExt) putSource(q *seSource) {
	q.ctx = nil
	q.adj = q.adj[:0]
	if q.streamOpen {
		q.r.Close()
		q.streamOpen = false
	}
	if q.scratchBytes() > maxPooledScratchBytes {
		q.csr = graph.PrefixScratch{}
		q.adjBuf = nil
		q.adj = nil
	}
	s.srcPool.Put(q)
}

func (s *SemiExt) release() {
	if s.refs.Add(-1) == 0 && s.closed.Load() {
		s.closeOnce.Do(s.closeResources)
	}
}

// Close marks the store closed; subsequent queries fail, in-flight queries
// complete normally — the mapping is released only after the last one
// drains.
func (s *SemiExt) Close() error {
	s.closed.Store(true)
	if s.refs.Load() == 0 {
		s.closeOnce.Do(s.closeResources)
	}
	return nil
}

func (s *SemiExt) closeResources() {
	if s.view != nil {
		s.view.Close()
	}
}

// growCache extends the decoded-prefix cache to cover at least p and
// returns the new cache graph, or (nil, nil) when p does not fit the
// budget. One grower builds at a time; racers re-check once admitted and
// adopt the freshly swapped cache instead of rebuilding, and a waiter
// whose context expires abandons the wait with ctx.Err(). The build
// itself polls ctx on the streaming path; the view path's single bulk
// decode+assembly runs at memory speed and is the one uninterruptible
// unit.
func (s *SemiExt) growCache(ctx context.Context, p int) (*graph.Graph, error) {
	if p > s.maxCacheP {
		return nil, nil
	}
	select {
	case s.growSem <- struct{}{}:
		defer func() { <-s.growSem }()
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	if c := s.cache.Load(); c != nil && c.p >= p {
		return c.g, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	// Overshoot geometrically (cover 2× the requested size, clamped to the
	// budget) so consecutive query rounds don't each trigger a rebuild;
	// total rebuild work stays linear in the final cached size.
	target := s.prefixForSize(2 * s.sizes[p])
	if target > s.maxCacheP {
		target = s.maxCacheP
	}
	if target < p {
		target = p
	}
	g, err := s.materialize(ctx, target, nil, nil)
	if err != nil {
		return nil, err
	}
	s.cache.Store(&prefixCache{p: target, g: g, pool: core.NewPool(g)})
	return g, nil
}

// materialize assembles the prefix graph [0, p) from the edge file, using
// the zero-copy view when the store has one and a sequential stream
// otherwise. A nil scratch builds into fresh arrays (cache growth); the
// per-query sources pass their pooled scratch. The streaming path polls
// ctx every few thousand adjacency lists.
func (s *SemiExt) materialize(ctx context.Context, p int, sc *graph.PrefixScratch, q *seSource) (*graph.Graph, error) {
	e := s.edgeCount(p)
	if s.view != nil {
		var buf []int32
		if q != nil {
			buf = q.adjBuf
		}
		upAdj, err := s.view.AdjPrefix(p, e, s.workers, buf)
		if err != nil {
			return nil, err
		}
		if q != nil && !s.view.ZeroCopy() {
			q.adjBuf = upAdj // keep the grown decode buffer for reuse
		}
		return graph.FromUpAdjacency(s.weights[:p], s.upDeg[:p], upAdj, sc)
	}
	// Stream mode: a pooled reader streams strictly sequentially from the
	// start of the payload up to p, accumulating the flat up-adjacency.
	var (
		adj []int32
		r   *semiext.Reader
	)
	if q != nil {
		if q.r == nil {
			q.r = new(semiext.Reader)
		}
		if !q.streamOpen {
			if err := q.r.Reopen(s.path, s.meta); err != nil {
				return nil, err
			}
			q.streamOpen = true
		}
		r, adj = q.r, q.adj
	} else {
		r = new(semiext.Reader)
		if err := r.Reopen(s.path, s.meta); err != nil {
			return nil, err
		}
		defer r.Close()
		adj = make([]int32, 0, e)
	}
	var err error
	for budget := 0; r.NextVertex() < p; budget++ {
		if budget%ctxCheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
		}
		if adj, err = r.ReadVertexAdj(adj); err != nil {
			return nil, err
		}
	}
	if q != nil {
		q.adj = adj
	}
	return graph.FromUpAdjacency(s.weights[:p], s.upDeg[:p], adj, sc)
}

// seSource adapts the store to core.SearchSource for one query. It is
// pooled: the CSR scratch, decode buffer, accumulated adjacency, and
// stream reader are reused by later queries once the query returns.
type seSource struct {
	st  *SemiExt
	ctx context.Context

	// Private-build state, used only by rounds that outgrow (or bypass)
	// the cache. The graphs built into csr alias its arrays, so the
	// scratch is reused only across rounds/queries, never while such a
	// graph is still referenced.
	csr    graph.PrefixScratch
	adjBuf []int32 // bulk-decode target when the view cannot alias the mapping

	// Stream-mode state: reader opened lazily on the first private build,
	// flat adjacency accumulated across this query's rounds.
	r          *semiext.Reader
	adj        []int32
	streamOpen bool
}

// scratchBytes is the memory the source would keep alive while pooled.
func (q *seSource) scratchBytes() int64 {
	return q.csr.Bytes() + 4*int64(cap(q.adjBuf)+cap(q.adj))
}

func (q *seSource) NumVertices() int { return q.st.n }

func (q *seSource) PrefixSize(p int) int64 { return q.st.sizes[p] }

func (q *seSource) PrefixForSize(want int64) int { return q.st.prefixForSize(want) }

// ctxCheckEvery bounds how many adjacency lists are streamed between two
// context polls while materializing a prefix.
const ctxCheckEvery = 4096

// Materialize returns an in-memory graph covering at least the prefix
// [0, p): the shared cache when p fits (growing it if the budget allows),
// a query-private build otherwise.
func (q *seSource) Materialize(p int) (*graph.Graph, error) {
	if c := q.st.cache.Load(); c != nil && p <= c.p {
		return c.g, nil
	}
	if g, err := q.st.growCache(q.ctx, p); g != nil || err != nil {
		return g, err
	}
	if err := q.ctx.Err(); err != nil {
		return nil, err
	}
	return q.st.materialize(q.ctx, p, &q.csr, q)
}

// SourcePool hands TopKOver the engine pool bound to the shared cache
// graph, so cache-fitting queries check pooled engines, CVS buffers, and
// enumeration state out instead of allocating per query.
func (q *seSource) SourcePool(g *graph.Graph) *core.Pool {
	if c := q.st.cache.Load(); c != nil && c.g == g {
		return c.pool
	}
	return nil
}

// Fork hands the parallel driver an independent source over the same store
// for one speculative round: private builds go into the fork's own pooled
// scratch, so concurrent rounds never share mutable state, while the
// decoded-prefix cache and its engine pool stay shared (both are safe for
// concurrent readers). The release callback returns the fork's scratch to
// the pool; the driver invokes it only once the round's graph is dead.
func (q *seSource) Fork(ctx context.Context) (core.SearchSource, func()) {
	f := q.st.srcPool.Get().(*seSource)
	f.ctx = ctx
	return f, func() { q.st.putSource(f) }
}
