package store

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"influcomm/internal/core"
	"influcomm/internal/gen"
	"influcomm/internal/graph"
	"influcomm/internal/semiext"
)

func writeEdgeFile(t testing.TB, g *graph.Graph) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "g.edges")
	if err := semiext.WriteEdgeFile(path, g); err != nil {
		t.Fatal(err)
	}
	return path
}

func renderResult(res *core.Result) string {
	s := fmt.Sprintf("rounds=%d prefix=%d size=%d work=%d comms=%d\n",
		res.Stats.Rounds, res.Stats.FinalPrefix, res.Stats.FinalSize,
		res.Stats.TotalWork, res.Stats.Communities)
	for _, c := range res.Communities {
		s += fmt.Sprintf("%v key=%d %v\n", c.Influence(), c.Keynode(), c.Vertices())
	}
	return s
}

// TestBackendsAgree is the core contract: for the same graph, the
// semi-external backend returns byte-identical results — communities AND
// access statistics — to the in-memory backend and to the plain core
// entry point, across semantics and tuning options.
func TestBackendsAgree(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		g := gen.Random(200, 6, seed)
		path := writeEdgeFile(t, g)
		se, err := OpenEdgeFile(path)
		if err != nil {
			t.Fatal(err)
		}
		mem, err := OpenMem(g)
		if err != nil {
			t.Fatal(err)
		}
		if se.NumVertices() != g.NumVertices() || se.NumEdges() != g.NumEdges() {
			t.Fatalf("seed %d: semiext shape (%d,%d), want (%d,%d)",
				seed, se.NumVertices(), se.NumEdges(), g.NumVertices(), g.NumEdges())
		}
		ctx := context.Background()
		cases := []struct {
			name  string
			k     int
			gamma int32
			opts  core.Options
		}{
			{"default", 5, 3, core.Options{}},
			{"k1", 1, 2, core.Options{}},
			{"deep", 50, 2, core.Options{}},
			{"noncontainment", 5, 3, core.Options{NonContainment: true}},
			{"delta4", 5, 3, core.Options{Delta: 4}},
			{"arith", 5, 3, core.Options{ArithmeticGrowth: 64}},
		}
		for _, tc := range cases {
			want, err := core.TopKCtx(ctx, g, tc.k, tc.gamma, tc.opts)
			if err != nil {
				t.Fatalf("seed %d %s: core: %v", seed, tc.name, err)
			}
			gotMem, err := mem.TopK(ctx, tc.k, tc.gamma, tc.opts)
			if err != nil {
				t.Fatalf("seed %d %s: mem: %v", seed, tc.name, err)
			}
			gotSE, err := se.TopK(ctx, tc.k, tc.gamma, tc.opts)
			if err != nil {
				t.Fatalf("seed %d %s: semiext: %v", seed, tc.name, err)
			}
			ref := renderResult(want)
			if got := renderResult(gotMem); got != ref {
				t.Errorf("seed %d %s: memory backend differs from core\n got %s\nwant %s", seed, tc.name, got, ref)
			}
			if got := renderResult(gotSE); got != ref {
				t.Errorf("seed %d %s: semiext backend differs from core\n got %s\nwant %s", seed, tc.name, got, ref)
			}
		}
	}
}

func TestSemiExtConcurrentQueries(t *testing.T) {
	g := gen.Random(300, 6, 11)
	se, err := OpenEdgeFile(writeEdgeFile(t, g))
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.TopK(g, 5, 3, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ref := renderResult(want)
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		go func() {
			res, err := se.TopK(context.Background(), 5, 3, core.Options{})
			if err != nil {
				errs <- err
				return
			}
			if got := renderResult(res); got != ref {
				errs <- fmt.Errorf("concurrent query diverged:\n got %s\nwant %s", got, ref)
				return
			}
			errs <- nil
		}()
	}
	for i := 0; i < 16; i++ {
		if err := <-errs; err != nil {
			t.Error(err)
		}
	}
}

func TestSemiExtClosed(t *testing.T) {
	g := gen.Random(50, 4, 2)
	se, err := OpenEdgeFile(writeEdgeFile(t, g))
	if err != nil {
		t.Fatal(err)
	}
	if err := se.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := se.TopK(context.Background(), 3, 2, core.Options{}); err == nil {
		t.Error("query on closed store: want error")
	}
}

func TestSemiExtCancellation(t *testing.T) {
	g := gen.Random(400, 6, 3)
	se, err := OpenEdgeFile(writeEdgeFile(t, g))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := se.TopK(ctx, 5, 3, core.Options{}); err != context.Canceled {
		t.Errorf("cancelled query returned %v, want context.Canceled", err)
	}
}

func TestOpenByBackend(t *testing.T) {
	g := gen.Random(60, 4, 7)
	dir := t.TempDir()

	txt := filepath.Join(dir, "g.txt")
	f, err := os.Create(txt)
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.WriteText(f, g); err != nil {
		t.Fatal(err)
	}
	f.Close()

	edges := filepath.Join(dir, "g.edges")
	if err := semiext.WriteEdgeFile(edges, g); err != nil {
		t.Fatal(err)
	}

	memSt, err := Open(txt, "memory")
	if err != nil {
		t.Fatal(err)
	}
	if memSt.Backend() != "memory" || memSt.Graph() == nil {
		t.Errorf("memory store: backend=%q graph=%v", memSt.Backend(), memSt.Graph())
	}
	seSt, err := Open(edges, "semiext")
	if err != nil {
		t.Fatal(err)
	}
	if seSt.Backend() != "semiext" || seSt.Graph() != nil {
		t.Errorf("semiext store: backend=%q graph non-nil=%v", seSt.Backend(), seSt.Graph() != nil)
	}
	if memSt.NumVertices() != seSt.NumVertices() || memSt.NumEdges() != seSt.NumEdges() {
		t.Errorf("shape mismatch: memory (%d,%d) vs semiext (%d,%d)",
			memSt.NumVertices(), memSt.NumEdges(), seSt.NumVertices(), seSt.NumEdges())
	}
	if _, err := Open(txt, "bogus"); err == nil {
		t.Error("unknown backend: want error")
	}
	if _, err := Open(filepath.Join(dir, "missing"), "memory"); err == nil {
		t.Error("missing file: want error")
	}
}

// BenchmarkSemiExtServe compares the semi-external serve path (per-query
// sequential edge-file streaming) against the in-memory pooled path for the
// same query; the perf-regression gate tracks both series.
func BenchmarkSemiExtServe(b *testing.B) {
	g := gen.Random(20000, 8, 42)
	path := writeEdgeFile(b, g)
	se, err := OpenEdgeFile(path)
	if err != nil {
		b.Fatal(err)
	}
	mem, err := OpenMem(g)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.Run("SemiExt", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := se.TopK(ctx, 10, 4, core.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Memory", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := mem.TopK(ctx, 10, 4, core.Options{}); err != nil {
				b.Fatal(err)
			}
		}
	})
}
