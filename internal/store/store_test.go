package store

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"influcomm/internal/core"
	"influcomm/internal/gen"
	"influcomm/internal/graph"
	"influcomm/internal/semiext"
)

func writeEdgeFile(t testing.TB, g *graph.Graph) string {
	return writeEdgeFileFormat(t, g, semiext.FormatV1)
}

func writeEdgeFileFormat(t testing.TB, g *graph.Graph, format int) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "g.edges")
	if err := semiext.WriteEdgeFileFormat(path, g, format); err != nil {
		t.Fatal(err)
	}
	return path
}

func renderResult(res *core.Result) string {
	s := fmt.Sprintf("rounds=%d prefix=%d size=%d work=%d comms=%d\n",
		res.Stats.Rounds, res.Stats.FinalPrefix, res.Stats.FinalSize,
		res.Stats.TotalWork, res.Stats.Communities)
	for _, c := range res.Communities {
		s += fmt.Sprintf("%v key=%d %v\n", c.Influence(), c.Keynode(), c.Vertices())
	}
	return s
}

// semiExtVariants is every semi-external serving configuration the
// equivalence tests must hold for: the residual streaming path, the
// zero-copy view without caching, and decoded-prefix caches from "too
// small to matter" through "covers the whole graph". The strict "mmap"
// mode refuses to open on platforms without the mapping, so it joins the
// matrix only where it can (the "auto" default still exercises the view
// everywhere, via pread on such platforms).
func semiExtVariants() map[string][]OpenOption {
	v := map[string][]OpenOption{
		"stream":      {WithEdgeFileMode("stream")},
		"auto":        nil,
		"cache-tiny":  {WithPrefixCacheBytes(1 << 10)},
		"cache-huge":  {WithPrefixCacheBytes(1 << 30)},
		"cache-strm":  {WithEdgeFileMode("stream"), WithPrefixCacheBytes(1 << 20)},
		"cache-small": {WithPrefixCacheBytes(16 << 10)},
		"workers":     {WithWorkers(4)},
		"workers-all": {WithWorkers(4), WithPrefixCacheBytes(1 << 30), WithEdgeFileMode("stream")},
	}
	if semiext.MmapAvailable {
		v["mmap"] = []OpenOption{WithEdgeFileMode("mmap")}
	}
	return v
}

// TestBackendsAgree is the core contract: for the same graph, every
// semi-external serving mode over every edge-file format returns
// byte-identical results — communities AND access statistics — to the
// in-memory backend and to the plain core entry point, across semantics and
// tuning options.
func TestBackendsAgree(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		g := gen.Random(200, 6, seed)
		ses := map[string]*SemiExt{}
		for _, format := range []int{semiext.FormatV1, semiext.FormatV2} {
			path := writeEdgeFileFormat(t, g, format)
			for name, opts := range semiExtVariants() {
				name = fmt.Sprintf("v%d/%s", format, name)
				se, err := OpenEdgeFile(path, opts...)
				if err != nil {
					t.Fatalf("seed %d %s: %v", seed, name, err)
				}
				if se.NumVertices() != g.NumVertices() || se.NumEdges() != g.NumEdges() {
					t.Fatalf("seed %d %s: semiext shape (%d,%d), want (%d,%d)",
						seed, name, se.NumVertices(), se.NumEdges(), g.NumVertices(), g.NumEdges())
				}
				if se.Format() != format {
					t.Fatalf("seed %d %s: store reports format %d", seed, name, se.Format())
				}
				ses[name] = se
			}
		}
		mem, err := OpenMem(g)
		if err != nil {
			t.Fatal(err)
		}
		ctx := context.Background()
		cases := []struct {
			name  string
			k     int
			gamma int32
			opts  core.Options
		}{
			{"default", 5, 3, core.Options{}},
			{"k1", 1, 2, core.Options{}},
			{"deep", 50, 2, core.Options{}},
			{"noncontainment", 5, 3, core.Options{NonContainment: true}},
			{"delta4", 5, 3, core.Options{Delta: 4}},
			{"arith", 5, 3, core.Options{ArithmeticGrowth: 64}},
		}
		for _, tc := range cases {
			want, err := core.TopKCtx(ctx, g, tc.k, tc.gamma, tc.opts)
			if err != nil {
				t.Fatalf("seed %d %s: core: %v", seed, tc.name, err)
			}
			ref := renderResult(want)
			gotMem, err := mem.TopK(ctx, tc.k, tc.gamma, tc.opts)
			if err != nil {
				t.Fatalf("seed %d %s: mem: %v", seed, tc.name, err)
			}
			if got := renderResult(gotMem); got != ref {
				t.Errorf("seed %d %s: memory backend differs from core\n got %s\nwant %s", seed, tc.name, got, ref)
			}
			for mode, se := range ses {
				gotSE, err := se.TopK(ctx, tc.k, tc.gamma, tc.opts)
				if err != nil {
					t.Fatalf("seed %d %s/%s: semiext: %v", seed, tc.name, mode, err)
				}
				if got := renderResult(gotSE); got != ref {
					t.Errorf("seed %d %s: semiext %s differs from core\n got %s\nwant %s", seed, tc.name, mode, got, ref)
				}
			}
		}
		for _, se := range ses {
			se.Close()
		}
	}
}

// TestParallelServeAgrees is the large-graph half of the backend contract:
// on a graph big enough to engage the speculative parallel driver and the
// chunked v2 decode, every (format, workers, mode) combination must still
// be byte-identical to the in-memory backend. Run under -race -cpu 1,4,8
// this is the end-to-end determinism proof for intra-query parallelism.
func TestParallelServeAgrees(t *testing.T) {
	g, err := gen.PlantedCommunities(40, 120, 0.4, 2, 19)
	if err != nil {
		t.Fatal(err)
	}
	if g.PrefixSize(g.NumVertices()) < core.ParallelMinRoundWork {
		t.Fatal("test graph too small to engage the parallel driver")
	}
	mem, err := OpenMem(g)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	cases := []struct {
		k     int
		gamma int32
	}{{1, 3}, {10, 4}, {200, 2}}
	refs := make([]string, len(cases))
	for i, tc := range cases {
		want, err := mem.TopK(ctx, tc.k, tc.gamma, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		refs[i] = renderResult(want)
	}
	for _, format := range []int{semiext.FormatV1, semiext.FormatV2} {
		path := writeEdgeFileFormat(t, g, format)
		variants := map[string][]OpenOption{
			"seq":            nil,
			"workers2":       {WithWorkers(2)},
			"workers8":       {WithWorkers(8)},
			"workers8-cache": {WithWorkers(8), WithPrefixCacheBytes(1 << 30)},
			"workers8-strm":  {WithWorkers(8), WithEdgeFileMode("stream")},
		}
		for name, opts := range variants {
			se, err := OpenEdgeFile(path, opts...)
			if err != nil {
				t.Fatalf("v%d/%s: %v", format, name, err)
			}
			for i, tc := range cases {
				// Twice per case: the second run hits the warmed cache and
				// pooled scratch.
				for run := 0; run < 2; run++ {
					res, err := se.TopK(ctx, tc.k, tc.gamma, core.Options{})
					if err != nil {
						t.Fatalf("v%d/%s k=%d γ=%d: %v", format, name, tc.k, tc.gamma, err)
					}
					if got := renderResult(res); got != refs[i] {
						t.Errorf("v%d/%s k=%d γ=%d run %d: differs from in-memory backend",
							format, name, tc.k, tc.gamma, run)
					}
				}
			}
			se.Close()
		}
	}
}

// TestPrefixCacheBudget drives the cache-budget edge cases: budget 0 never
// caches, a tiny budget never exceeds its frontier, and a budget larger
// than the decoded file grows to the whole graph — all while answers stay
// byte-identical to core.
func TestPrefixCacheBudget(t *testing.T) {
	g := gen.Random(300, 6, 17)
	path := writeEdgeFile(t, g)
	ctx := context.Background()
	want, err := core.TopK(g, 20, 2, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ref := renderResult(want)

	run := func(se *SemiExt) {
		t.Helper()
		res, err := se.TopK(ctx, 20, 2, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if got := renderResult(res); got != ref {
			t.Fatalf("result differs from core\n got %s\nwant %s", got, ref)
		}
	}

	off, err := OpenEdgeFile(path) // default: no cache
	if err != nil {
		t.Fatal(err)
	}
	run(off)
	if p := off.CachedPrefix(); p != 0 {
		t.Errorf("budget 0: cache covers %d vertices, want 0", p)
	}

	tiny, err := OpenEdgeFile(path, WithPrefixCacheBytes(2<<10))
	if err != nil {
		t.Fatal(err)
	}
	run(tiny)
	if tiny.maxCacheP >= g.NumVertices() {
		t.Fatalf("tiny budget admits the whole graph (maxCacheP=%d)", tiny.maxCacheP)
	}
	if p := tiny.CachedPrefix(); p > tiny.maxCacheP {
		t.Errorf("cache covers %d vertices, budget frontier is %d", p, tiny.maxCacheP)
	}

	huge, err := OpenEdgeFile(path, WithPrefixCacheBytes(1<<30))
	if err != nil {
		t.Fatal(err)
	}
	if huge.maxCacheP != g.NumVertices() {
		t.Errorf("huge budget: maxCacheP=%d, want %d", huge.maxCacheP, g.NumVertices())
	}
	run(huge)
	// A query that needs the whole graph pushes the cache to cover it; the
	// next query must be served entirely from the cache.
	if _, err := huge.TopK(ctx, g.NumVertices(), 2, core.Options{}); err != nil {
		t.Fatal(err)
	}
	if p := huge.CachedPrefix(); p != g.NumVertices() {
		t.Errorf("after a whole-graph query the cache covers %d of %d vertices", p, g.NumVertices())
	}
	run(huge)

	if _, err := OpenEdgeFile(path, WithPrefixCacheBytes(-1)); err == nil {
		t.Error("negative budget: want error")
	}
	if _, err := OpenEdgeFile(path, WithEdgeFileMode("bogus")); err == nil {
		t.Error("unknown mode: want error")
	}
}

// TestPrefixCacheConcurrentGrowth hammers one store from many goroutines
// with queries of increasing depth while the cache grows underneath them;
// run under -race this is the lock-free-readers/singleflight-grower proof.
func TestPrefixCacheConcurrentGrowth(t *testing.T) {
	g := gen.Random(400, 6, 23)
	se, err := OpenEdgeFile(writeEdgeFile(t, g), WithPrefixCacheBytes(1<<30))
	if err != nil {
		t.Fatal(err)
	}
	defer se.Close()
	ks := []int{1, 3, 10, 40, 120, 400}
	refs := make([]string, len(ks))
	for i, k := range ks {
		want, err := core.TopK(g, k, 3, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		refs[i] = renderResult(want)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2*len(ks); i++ {
				j := (w + i) % len(ks)
				res, err := se.TopK(context.Background(), ks[j], 3, core.Options{})
				if err != nil {
					errs <- err
					return
				}
				if got := renderResult(res); got != refs[j] {
					errs <- fmt.Errorf("k=%d diverged under concurrent growth", ks[j])
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestSemiExtCloseWaitsForQueries closes the store while queries hold
// references: the mapping must stay alive until they drain (a use-after-
// munmap would crash or corrupt under -race).
func TestSemiExtCloseWaitsForQueries(t *testing.T) {
	g := gen.Random(400, 6, 29)
	se, err := OpenEdgeFile(writeEdgeFile(t, g))
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.TopK(g, 5, 3, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ref := renderResult(want)
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := se.TopK(context.Background(), 5, 3, core.Options{})
			if err != nil {
				// A query admitted after Close fails cleanly; that is fine.
				return
			}
			if got := renderResult(res); got != ref {
				errs <- fmt.Errorf("query during close diverged:\n got %s\nwant %s", got, ref)
			}
		}()
	}
	se.Close()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if _, err := se.TopK(context.Background(), 5, 3, core.Options{}); err == nil {
		t.Error("query on closed store: want error")
	}
}

func TestSemiExtConcurrentQueries(t *testing.T) {
	g := gen.Random(300, 6, 11)
	se, err := OpenEdgeFile(writeEdgeFile(t, g))
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.TopK(g, 5, 3, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ref := renderResult(want)
	errs := make(chan error, 16)
	for i := 0; i < 16; i++ {
		go func() {
			res, err := se.TopK(context.Background(), 5, 3, core.Options{})
			if err != nil {
				errs <- err
				return
			}
			if got := renderResult(res); got != ref {
				errs <- fmt.Errorf("concurrent query diverged:\n got %s\nwant %s", got, ref)
				return
			}
			errs <- nil
		}()
	}
	for i := 0; i < 16; i++ {
		if err := <-errs; err != nil {
			t.Error(err)
		}
	}
}

func TestSemiExtClosed(t *testing.T) {
	g := gen.Random(50, 4, 2)
	se, err := OpenEdgeFile(writeEdgeFile(t, g))
	if err != nil {
		t.Fatal(err)
	}
	if err := se.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := se.TopK(context.Background(), 3, 2, core.Options{}); err == nil {
		t.Error("query on closed store: want error")
	}
}

func TestSemiExtCancellation(t *testing.T) {
	g := gen.Random(400, 6, 3)
	path := writeEdgeFile(t, g)
	se, err := OpenEdgeFile(path)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := se.TopK(ctx, 5, 3, core.Options{}); err != context.Canceled {
		t.Errorf("cancelled query returned %v, want context.Canceled", err)
	}
	// The cache-growth path observes cancellation too: a cancelled context
	// must not be able to hang on (or behind) the singleflight grower.
	cached, err := OpenEdgeFile(path, WithPrefixCacheBytes(1<<30))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cached.growCache(ctx, g.NumVertices()); err != context.Canceled {
		t.Errorf("cancelled cache growth returned %v, want context.Canceled", err)
	}
	if cached.CachedPrefix() != 0 {
		t.Error("cancelled growth still built a cache")
	}
}

func TestOpenByBackend(t *testing.T) {
	g := gen.Random(60, 4, 7)
	dir := t.TempDir()

	txt := filepath.Join(dir, "g.txt")
	f, err := os.Create(txt)
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.WriteText(f, g); err != nil {
		t.Fatal(err)
	}
	f.Close()

	edges := filepath.Join(dir, "g.edges")
	if err := semiext.WriteEdgeFile(edges, g); err != nil {
		t.Fatal(err)
	}

	memSt, err := Open(txt, "memory")
	if err != nil {
		t.Fatal(err)
	}
	if memSt.Backend() != "memory" || memSt.Graph() == nil {
		t.Errorf("memory store: backend=%q graph=%v", memSt.Backend(), memSt.Graph())
	}
	seSt, err := Open(edges, "semiext")
	if err != nil {
		t.Fatal(err)
	}
	if seSt.Backend() != "semiext" || seSt.Graph() != nil {
		t.Errorf("semiext store: backend=%q graph non-nil=%v", seSt.Backend(), seSt.Graph() != nil)
	}
	if memSt.NumVertices() != seSt.NumVertices() || memSt.NumEdges() != seSt.NumEdges() {
		t.Errorf("shape mismatch: memory (%d,%d) vs semiext (%d,%d)",
			memSt.NumVertices(), memSt.NumEdges(), seSt.NumVertices(), seSt.NumEdges())
	}
	if _, err := Open(txt, "bogus"); err == nil {
		t.Error("unknown backend: want error")
	}
	if _, err := Open(filepath.Join(dir, "missing"), "memory"); err == nil {
		t.Error("missing file: want error")
	}
}

// BenchmarkSemiExtServe compares every semi-external serve path against
// the in-memory pooled path for the same query; the perf-regression gate
// tracks all four series, including allocs/op:
//
//	SemiExt     — the residual per-query sequential streaming path
//	Mmap        — shared zero-copy view, prefix rebuilt per query
//	PrefixCache — shared decoded prefix, pooled engines, lock-free reads
//	Memory      — the fully in-memory backend (the target to approach)
func BenchmarkSemiExtServe(b *testing.B) {
	g := gen.Random(20000, 8, 42)
	path := writeEdgeFile(b, g)
	mem, err := OpenMem(g)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	bench := func(name string, st Store) {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := st.TopK(ctx, 10, 4, core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	se, err := OpenEdgeFile(path, WithEdgeFileMode("stream"))
	if err != nil {
		b.Fatal(err)
	}
	bench("SemiExt", se)
	mm, err := OpenEdgeFile(path)
	if err != nil {
		b.Fatal(err)
	}
	bench("Mmap", mm)
	pc, err := OpenEdgeFile(path, WithPrefixCacheBytes(64<<20))
	if err != nil {
		b.Fatal(err)
	}
	if _, err := pc.TopK(ctx, 10, 4, core.Options{}); err != nil { // warm the cache
		b.Fatal(err)
	}
	bench("PrefixCache", pc)
	bench("Memory", mem)
}

// benchPlanted returns the clustered serving workload the parallel and
// compression benchmarks share: a planted-community graph whose whole-graph
// work size is far above core.ParallelMinRoundWork — so large queries leave
// the sequential prelude — and whose weight-banded rank locality is the
// structure the v2 delta+varint layout compresses (~3x; uniformly random
// graphs compress far less and are the wrong benchmark for it).
func benchPlanted(b *testing.B) *graph.Graph {
	g, err := gen.PlantedCommunities(48, 160, 0.4, 2, 42)
	if err != nil {
		b.Fatal(err)
	}
	if g.PrefixSize(g.NumVertices()) < int64(core.ParallelMinRoundWork) {
		b.Fatalf("benchmark graph below the parallel cutoff (%d < %d)",
			g.PrefixSize(g.NumVertices()), core.ParallelMinRoundWork)
	}
	return g
}

// BenchmarkParallelServe measures intra-query parallelism on the
// semi-external backend: the same deep query (k past the community count,
// so the search sweeps the whole graph) served sequentially and with eight
// workers. Results are byte-identical; on multi-core machines the
// speculative rounds overlap and the parallel rows drop toward the cost of
// the largest round alone. On a single-core runner the rows track each
// other — the delta is then the pure orchestration overhead.
func BenchmarkParallelServe(b *testing.B) {
	g := benchPlanted(b)
	path := writeEdgeFileFormat(b, g, semiext.FormatV1)
	ctx := context.Background()
	for _, c := range []struct {
		name string
		opts []OpenOption
	}{
		{"Sequential", nil},
		{"Workers8", []OpenOption{WithWorkers(8)}},
	} {
		st, err := OpenEdgeFile(path, c.opts...)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(c.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := st.TopK(ctx, 200, 2, core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
		st.Close()
	}
}

// BenchmarkCompressedServe compares serving the flat (v1) and compressed
// (v2) edge-file layouts through the shared view: the same query against
// the same graph, differing only in how the adjacency bytes decode. The
// v2 rows buy the ~3x smaller file with the block-parallel SWAR varint
// decode; ServedBytes reports each layout's on-disk size.
func BenchmarkCompressedServe(b *testing.B) {
	g := benchPlanted(b)
	ctx := context.Background()
	for _, c := range []struct {
		name   string
		format int
	}{
		{"V1", semiext.FormatV1},
		{"V2", semiext.FormatV2},
	} {
		path := writeEdgeFileFormat(b, g, c.format)
		st, err := OpenEdgeFile(path)
		if err != nil {
			b.Fatal(err)
		}
		info, err := os.Stat(path)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(c.name, func(b *testing.B) {
			b.ReportAllocs()
			b.ReportMetric(float64(info.Size()), "file-bytes")
			for i := 0; i < b.N; i++ {
				if _, err := st.TopK(ctx, 200, 2, core.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
		st.Close()
	}
}
