// Package store abstracts where a weight-ranked graph lives behind one
// query interface. Two backends implement it: Mem serves a fully in-memory
// graph.Graph through a pooled engine, and SemiExt serves the semi-external
// on-disk edge files of internal/semiext, keeping only O(n) per-vertex
// state resident and streaming edge prefixes on demand. A query routed
// through a Store therefore runs identically — same communities, same
// access statistics — whether the graph fits in RAM or not; the serving
// layer picks backends per dataset without touching query code.
package store

import (
	"context"
	"fmt"

	"influcomm/internal/core"
	"influcomm/internal/graph"
)

// Store is one graph behind a backend-agnostic query interface. Stores are
// safe for concurrent use.
type Store interface {
	// Backend names the implementation: "memory" or "semiext".
	Backend() string

	// NumVertices returns the vertex count of the backing graph.
	NumVertices() int

	// NumEdges returns the edge count of the backing graph.
	NumEdges() int64

	// TopK answers a top-k influential γ-community query with LocalSearch
	// semantics; results are identical across backends for the same graph.
	TopK(ctx context.Context, k int, gamma int32, opts core.Options) (*core.Result, error)

	// Graph returns the fully in-memory graph when the backend holds one,
	// and nil otherwise. Features that need whole-graph access — truss
	// queries, prebuilt indexes — are only available when Graph is non-nil.
	Graph() *graph.Graph

	// Close releases backend resources. Queries issued after Close fail;
	// queries already in flight complete normally.
	Close() error
}

// Open opens the file at path as a Store. backend selects the
// implementation: "memory" (or "") loads the whole graph file into RAM —
// text format, or the compact binary format for paths ending in ".bin" —
// "semiext" opens a semi-external edge file (see WriteEdgeFile) loading
// only per-vertex state, and "mutable" opens an edge file as a durable
// MutableStore that accepts online edge updates. Options tune the
// semi-external backend (access mode, decoded-prefix cache budget) and are
// ignored by the others.
func Open(path, backend string, opts ...OpenOption) (Store, error) {
	switch backend {
	case "", "memory":
		g, err := graph.LoadFile(path)
		if err != nil {
			return nil, fmt.Errorf("store: loading %s: %w", path, err)
		}
		return OpenMem(g)
	case "semiext":
		return OpenEdgeFile(path, opts...)
	case "mutable":
		return OpenMutable(path)
	default:
		return nil, fmt.Errorf("store: unknown backend %q (want \"memory\", \"semiext\", or \"mutable\")", backend)
	}
}
