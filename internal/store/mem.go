package store

import (
	"context"
	"errors"

	"influcomm/internal/core"
	"influcomm/internal/graph"
)

// Mem is the in-memory backend: the whole graph is resident and queries run
// on pooled engines, so steady-state queries allocate only their results.
type Mem struct {
	g    *graph.Graph
	pool *core.Pool
}

// OpenMem returns the in-memory Store over g.
func OpenMem(g *graph.Graph) (*Mem, error) {
	if g == nil || g.NumVertices() == 0 {
		return nil, errors.New("store: nil or empty graph")
	}
	return &Mem{g: g, pool: core.NewPool(g)}, nil
}

// Backend returns "memory".
func (s *Mem) Backend() string { return "memory" }

// NumVertices returns the vertex count.
func (s *Mem) NumVertices() int { return s.g.NumVertices() }

// NumEdges returns the edge count.
func (s *Mem) NumEdges() int64 { return s.g.NumEdges() }

// Graph returns the resident graph.
func (s *Mem) Graph() *graph.Graph { return s.g }

// Pool returns the store's engine pool, so callers that mix store-routed
// and direct pooled queries (batching alongside serving) share warm
// scratch state.
func (s *Mem) Pool() *core.Pool { return s.pool }

// TopK answers a query on a pooled engine; equivalent to core.TopKCtx.
func (s *Mem) TopK(ctx context.Context, k int, gamma int32, opts core.Options) (*core.Result, error) {
	return s.pool.TopK(ctx, k, gamma, opts)
}

// Stream answers a progressive query with a pooled engine; equivalent to
// core.StreamCtx. Streaming needs random access to the whole graph, so it
// lives on the concrete in-memory type rather than the Store interface.
func (s *Mem) Stream(ctx context.Context, gamma int32, opts core.Options, yield func(*core.Community) bool) (core.Stats, error) {
	return s.pool.Stream(ctx, gamma, opts, yield)
}

// Close is a no-op: the graph is owned by the caller.
func (s *Mem) Close() error { return nil }
