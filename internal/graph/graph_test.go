package graph

import (
	"math"
	"testing"
)

func small(t testing.TB) *Graph {
	t.Helper()
	// Weights chosen so rank order differs from ID order.
	weights := []float64{5, 9, 1, 7, 3}
	edges := [][2]int32{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {0, 4}, {1, 3}}
	g, err := FromEdges(weights, edges)
	if err != nil {
		t.Fatalf("FromEdges: %v", err)
	}
	return g
}

func TestRankOrdering(t *testing.T) {
	g := small(t)
	if g.NumVertices() != 5 || g.NumEdges() != 6 {
		t.Fatalf("got (%d, %d), want (5, 6)", g.NumVertices(), g.NumEdges())
	}
	// Ranks: weights sorted desc: 9(v1), 7(v3), 5(v0), 3(v4), 1(v2).
	wantOrig := []int32{1, 3, 0, 4, 2}
	for r, want := range wantOrig {
		if g.OrigID(int32(r)) != want {
			t.Errorf("rank %d origID = %d, want %d", r, g.OrigID(int32(r)), want)
		}
	}
	for r := 1; r < g.NumVertices(); r++ {
		if g.Weight(int32(r)) >= g.Weight(int32(r-1)) {
			t.Errorf("weights not strictly decreasing at rank %d", r)
		}
	}
	if err := g.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestUpNeighbors(t *testing.T) {
	g := small(t)
	for u := int32(0); int(u) < g.NumVertices(); u++ {
		for _, v := range g.UpNeighbors(u) {
			if v >= u {
				t.Errorf("up-neighbor %d of %d is not higher-weight", v, u)
			}
		}
		if int(g.UpDegree(u)) != len(g.UpNeighbors(u)) {
			t.Errorf("UpDegree(%d) inconsistent", u)
		}
	}
}

func TestPrefixSizeArithmetic(t *testing.T) {
	g := small(t)
	if g.PrefixSize(0) != 0 {
		t.Errorf("PrefixSize(0) = %d", g.PrefixSize(0))
	}
	if g.PrefixSize(g.NumVertices()) != g.Size() {
		t.Errorf("PrefixSize(n) = %d, want %d", g.PrefixSize(g.NumVertices()), g.Size())
	}
	// Brute-force check each prefix.
	for p := 0; p <= g.NumVertices(); p++ {
		var edges int64
		for u := 0; u < p; u++ {
			for _, v := range g.Neighbors(int32(u)) {
				if int(v) < u {
					edges++
				}
			}
		}
		if got := g.PrefixSize(p); got != int64(p)+edges {
			t.Errorf("PrefixSize(%d) = %d, want %d", p, got, int64(p)+edges)
		}
	}
}

func TestPrefixForSize(t *testing.T) {
	g := small(t)
	for want := int64(0); want <= g.Size()+3; want++ {
		p := g.PrefixForSize(want)
		if want <= 0 && p != 0 {
			t.Errorf("PrefixForSize(%d) = %d, want 0", want, p)
			continue
		}
		if want > g.Size() {
			if p != g.NumVertices() {
				t.Errorf("PrefixForSize(%d) = %d, want n", want, p)
			}
			continue
		}
		if want > 0 {
			if g.PrefixSize(p) < want {
				t.Errorf("PrefixForSize(%d) = %d has size %d", want, p, g.PrefixSize(p))
			}
			if p > 0 && g.PrefixSize(p-1) >= want {
				t.Errorf("PrefixForSize(%d) = %d is not minimal", want, p)
			}
		}
	}
}

func TestDegreeWithin(t *testing.T) {
	g := small(t)
	for u := int32(0); int(u) < g.NumVertices(); u++ {
		for p := 0; p <= g.NumVertices(); p++ {
			var want int32
			for _, v := range g.Neighbors(u) {
				if int(v) < p {
					want++
				}
			}
			if got := g.DegreeWithin(u, p); got != want {
				t.Errorf("DegreeWithin(%d, %d) = %d, want %d", u, p, got, want)
			}
			if int32(len(g.NeighborsWithin(u, p))) != want {
				t.Errorf("NeighborsWithin(%d, %d) length mismatch", u, p)
			}
		}
	}
}

func TestBuilderDeduplication(t *testing.T) {
	var b Builder
	b.AddVertex(0, 3)
	b.AddVertex(1, 2)
	b.AddVertex(2, 1)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0) // duplicate, reversed
	b.AddEdge(0, 1) // duplicate
	b.AddEdge(2, 2) // self loop
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 1 {
		t.Errorf("got %d edges, want 1 after dedup", g.NumEdges())
	}
}

func TestBuilderErrors(t *testing.T) {
	var b Builder
	if _, err := b.Build(); err == nil {
		t.Error("empty builder: want error")
	}
	b.AddVertex(0, math.NaN())
	if _, err := b.Build(); err == nil {
		t.Error("NaN weight: want error")
	}
	var b2 Builder
	b2.AddVertex(0, math.Inf(1))
	if _, err := b2.Build(); err == nil {
		t.Error("Inf weight: want error")
	}
	var b3 Builder
	b3.AddVertex(0, 1)
	if err := b3.SetWeights([]float64{1, 2}); err == nil {
		t.Error("SetWeights length mismatch: want error")
	}
}

func TestFromEdgesOutOfRange(t *testing.T) {
	if _, err := FromEdges([]float64{1, 2}, [][2]int32{{0, 5}}); err == nil {
		t.Error("edge to unknown vertex: want error")
	}
	if _, err := FromEdges([]float64{1, 2}, [][2]int32{{-1, 0}}); err == nil {
		t.Error("negative endpoint: want error")
	}
}

func TestEqualWeightsTieBreak(t *testing.T) {
	// All-equal weights must still produce a strict total order by ID.
	g, err := FromEdges([]float64{7, 7, 7}, [][2]int32{{0, 1}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	for r := int32(0); r < 3; r++ {
		if g.OrigID(r) != r {
			t.Errorf("tie-break should preserve ID order: rank %d -> %d", r, g.OrigID(r))
		}
	}
}

func TestLabels(t *testing.T) {
	var b Builder
	b.AddLabeledVertex(0, 1, "alice")
	b.AddLabeledVertex(1, 2, "bob")
	b.AddEdge(0, 1)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if !g.HasLabels() {
		t.Fatal("labels lost")
	}
	// bob has the higher weight, so rank 0.
	if g.Label(0) != "bob" || g.Label(1) != "alice" {
		t.Errorf("labels = %q, %q", g.Label(0), g.Label(1))
	}
	// Unlabeled graphs fall back to numeric names.
	g2 := small(t)
	if g2.Label(0) == "" {
		t.Error("unlabeled graph should produce fallback labels")
	}
}

func TestStatistics(t *testing.T) {
	g := small(t)
	s := g.Statistics()
	if s.Vertices != 5 || s.Edges != 6 {
		t.Errorf("stats = %+v", s)
	}
	if s.MaxDegree != 3 {
		t.Errorf("dmax = %d, want 3", s.MaxDegree)
	}
	if s.AvgDegree != 2.4 {
		t.Errorf("davg = %v, want 2.4", s.AvgDegree)
	}
	hist := g.DegreeHistogram()
	var total int64
	for _, c := range hist {
		total += c
	}
	if total != 5 {
		t.Errorf("histogram sums to %d, want 5", total)
	}
}

func TestRankOfWeight(t *testing.T) {
	g := small(t) // weights by rank: 9 7 5 3 1
	cases := []struct {
		w    float64
		want int
	}{
		{10, 0}, {9, 1}, {8, 1}, {7, 2}, {2, 4}, {1, 5}, {0, 5},
	}
	for _, c := range cases {
		if got := g.RankOfWeight(c.w); got != c.want {
			t.Errorf("RankOfWeight(%v) = %d, want %d", c.w, got, c.want)
		}
	}
}
