package graph

import "testing"

// subTestGraph has three components, weight ties, and labels, so an induced
// subgraph exercises rank-order preservation and metadata carry-over.
func subTestGraph(t *testing.T) *Graph {
	t.Helper()
	var b Builder
	weights := []float64{5, 9, 9, 7, 3, 7, 8, 2, 6, 4}
	for id, w := range weights {
		b.AddLabeledVertex(int32(id), w, string(rune('a'+id)))
	}
	for _, e := range [][2]int32{
		{0, 1}, {1, 2}, {0, 2}, {2, 3},
		{4, 5}, {5, 6}, {4, 6},
		{7, 8}, {8, 9}, {7, 9},
	} {
		b.AddEdge(e[0], e[1])
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// hasEdge reports whether v appears in u's adjacency row.
func hasEdge(g *Graph, u, v int32) bool {
	for _, w := range g.Neighbors(u) {
		if w == v {
			return true
		}
	}
	return false
}

func TestInducedSubgraph(t *testing.T) {
	g := subTestGraph(t)
	// Drop every other rank; the rest must keep relative order and edges.
	var keep []int32
	for u := int32(0); int(u) < g.NumVertices(); u += 2 {
		keep = append(keep, u)
	}
	sub, err := InducedSubgraph(g, keep)
	if err != nil {
		t.Fatal(err)
	}
	if err := sub.Validate(); err != nil {
		t.Fatalf("induced subgraph fails validation: %v", err)
	}
	if sub.NumVertices() != len(keep) {
		t.Fatalf("n = %d, want %d", sub.NumVertices(), len(keep))
	}
	for i, u := range keep {
		if sub.Weight(int32(i)) != g.Weight(u) {
			t.Errorf("weight[%d] = %v, want %v", i, sub.Weight(int32(i)), g.Weight(u))
		}
		if sub.OrigID(int32(i)) != g.OrigID(u) {
			t.Errorf("origID[%d] = %d, want %d", i, sub.OrigID(int32(i)), g.OrigID(u))
		}
		if sub.Label(int32(i)) != g.Label(u) {
			t.Errorf("label[%d] = %q, want %q", i, sub.Label(int32(i)), g.Label(u))
		}
	}
	// Edges: exactly the pairs of kept vertices adjacent in g.
	var wantEdges int64
	for i, u := range keep {
		for j, v := range keep {
			got := hasEdge(sub, int32(i), int32(j))
			want := hasEdge(g, u, v)
			if got != want {
				t.Errorf("edge (%d,%d): got %v, want %v (global (%d,%d))", i, j, got, want, u, v)
			}
			if want && i < j {
				wantEdges++
			}
		}
	}
	if sub.NumEdges() != wantEdges {
		t.Errorf("m = %d, want %d", sub.NumEdges(), wantEdges)
	}
}

func TestInducedSubgraphIdentity(t *testing.T) {
	g := subTestGraph(t)
	all := make([]int32, g.NumVertices())
	for i := range all {
		all[i] = int32(i)
	}
	sub, err := InducedSubgraph(g, all)
	if err != nil {
		t.Fatal(err)
	}
	if sub.NumVertices() != g.NumVertices() || sub.NumEdges() != g.NumEdges() {
		t.Fatalf("identity subgraph: %d/%d vertices, %d/%d edges",
			sub.NumVertices(), g.NumVertices(), sub.NumEdges(), g.NumEdges())
	}
	for u := int32(0); int(u) < g.NumVertices(); u++ {
		if g.UpDegree(u) != sub.UpDegree(u) {
			t.Fatalf("updeg(%d) = %d, want %d", u, sub.UpDegree(u), g.UpDegree(u))
		}
	}
	if g.PrefixEdges(g.NumVertices()) != sub.PrefixEdges(sub.NumVertices()) {
		t.Fatal("prefix edge counts diverge")
	}
}

func TestInducedSubgraphErrors(t *testing.T) {
	g := subTestGraph(t)
	cases := []struct {
		name     string
		g        *Graph
		vertices []int32
	}{
		{"nil graph", nil, []int32{0}},
		{"empty set", g, nil},
		{"out of range", g, []int32{0, 99}},
		{"negative", g, []int32{-1, 2}},
		{"descending", g, []int32{3, 1}},
		{"duplicate", g, []int32{1, 1}},
	}
	for _, tc := range cases {
		if _, err := InducedSubgraph(tc.g, tc.vertices); err == nil {
			t.Errorf("%s: no error", tc.name)
		}
	}
}
