package graph

import (
	"fmt"
	"math"
)

// PrefixScratch holds the backing arrays FromUpAdjacency assembles a graph
// into, so a caller that materializes many prefix subgraphs (a semi-external
// query running one round after another) reuses one set of allocations
// instead of rebuilding them per round. A graph returned by FromUpAdjacency
// with a scratch aliases the scratch's arrays: the scratch must not be
// passed to FromUpAdjacency again while that graph is still in use.
//
// The zero value is ready to use.
type PrefixScratch struct {
	off      []int64
	adj      []int32
	upPrefix []int64
	fill     []int64
}

// Bytes returns the scratch's retained capacity in bytes, so pools holding
// scratches can bound how much memory idles between uses.
func (s *PrefixScratch) Bytes() int64 {
	return 8*int64(cap(s.off)+cap(s.upPrefix)+cap(s.fill)) + 4*int64(cap(s.adj))
}

// growI64 returns s resized to n entries, reallocating only when the
// capacity is insufficient. Contents are unspecified.
func growI64(s []int64, n int) []int64 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]int64, n)
}

// growI32 is growI64 for []int32.
func growI32(s []int32, n int) []int32 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]int32, n)
}

// FromUpAdjacency assembles a Graph directly from the components a
// semi-external edge file stores: per-vertex weights (non-increasing in
// rank), per-vertex up-degrees, and the concatenation of every up-adjacency
// list in ascending rank order of its owner, each list strictly ascending.
// Vertex IDs equal positions, exactly as a prefix of a rank-sorted graph.
//
// Unlike Builder — which re-sorts vertices, normalizes, sorts, and
// deduplicates the edge list on every Build — this runs in O(p + E) with
// two passes over upAdj and no sorting at all, which is what makes
// re-materializing a grown prefix per query round cheap. Malformed input
// (an out-of-range or non-ascending neighbor, a degree exceeding its
// vertex's rank, a degree sum that disagrees with len(upAdj)) is rejected,
// so corrupt edge files cannot produce a graph that violates CSR
// invariants.
//
// The returned graph aliases weights and upDeg (they must stay immutable
// while it lives) and, when sc is non-nil, the scratch's arrays.
func FromUpAdjacency(weights []float64, upDeg []int32, upAdj []int32, sc *PrefixScratch) (*Graph, error) {
	p := len(weights)
	if p == 0 {
		return nil, ErrNoVertices
	}
	if len(upDeg) != p {
		return nil, fmt.Errorf("graph: %d weights but %d up-degrees", p, len(upDeg))
	}
	if int64(p) > math.MaxInt32 {
		return nil, fmt.Errorf("graph: %d vertices exceed int32 range", p)
	}
	for i, w := range weights {
		if math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("graph: vertex %d has non-finite weight %v", i, w)
		}
		if i > 0 && w > weights[i-1] {
			return nil, fmt.Errorf("graph: weights not sorted at vertex %d", i)
		}
	}
	if sc == nil {
		sc = &PrefixScratch{}
	}

	// Pass 1: validate every list and count each vertex's total degree into
	// off[v+1] (up-degree contributed by its own list, down-degree by each
	// occurrence in a later list), building the up-edge prefix sums along
	// the way.
	off := growI64(sc.off, p+1)
	for i := range off {
		off[i] = 0
	}
	upPrefix := growI64(sc.upPrefix, p+1)
	upPrefix[0] = 0
	idx := 0
	for u := 0; u < p; u++ {
		d := int(upDeg[u])
		if d < 0 || d > u {
			return nil, fmt.Errorf("graph: vertex %d claims %d up-neighbors, at most %d possible", u, d, u)
		}
		if d > len(upAdj)-idx {
			return nil, fmt.Errorf("graph: up-adjacency holds %d entries, degrees need more", len(upAdj))
		}
		prev := int32(-1)
		for _, v := range upAdj[idx : idx+d] {
			if v <= prev || int(v) >= u {
				return nil, fmt.Errorf("graph: corrupt up-adjacency entry %d of vertex %d", v, u)
			}
			off[v+1]++
			prev = v
		}
		off[u+1] += int64(d)
		upPrefix[u+1] = upPrefix[u] + int64(d)
		idx += d
	}
	if idx != len(upAdj) {
		return nil, fmt.Errorf("graph: up-degrees sum to %d entries, up-adjacency holds %d", idx, len(upAdj))
	}
	m := int64(idx)

	for u := 0; u < p; u++ {
		off[u+1] += off[u]
	}

	// Pass 2: place each list as the up-run of its owner's row and scatter
	// the reverse (down) entries. Down-neighbors of v are written in
	// ascending u, so every row ends up strictly ascending with exactly
	// upDeg[u] leading up-entries — the CSR invariants — by construction.
	adj := growI32(sc.adj, int(2*m))
	fill := growI64(sc.fill, p)
	for u := 0; u < p; u++ {
		fill[u] = off[u] + int64(upDeg[u])
	}
	idx = 0
	for u := 0; u < p; u++ {
		d := int(upDeg[u])
		copy(adj[off[u]:off[u]+int64(d)], upAdj[idx:idx+d])
		for _, v := range upAdj[idx : idx+d] {
			adj[fill[v]] = int32(u)
			fill[v]++
		}
		idx += d
	}

	sc.off, sc.adj, sc.upPrefix, sc.fill = off, adj, upPrefix, fill
	return &Graph{
		n:        p,
		m:        m,
		weights:  weights,
		off:      off,
		adj:      adj,
		upDeg:    upDeg,
		upPrefix: upPrefix,
	}, nil
}
