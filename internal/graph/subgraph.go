package graph

import "fmt"

// InducedSubgraph returns the subgraph of g induced by the given vertex set,
// identified by rank and sorted strictly ascending. Weights, original IDs,
// and labels carry over untouched, and because the global rank order is
// already (weight desc, original ID asc), the restriction of that order is
// the subgraph's rank order: any two retained vertices keep their relative
// ranks, ties included. That property is what lets a component-closed
// partition of a graph answer queries byte-identically to the whole graph
// (see internal/cluster.Partition).
//
// Cost is O(len(vertices) + deg(vertices)) plus one O(n) scratch vector; no
// sorting — adjacency rows are filtered in place of g's already-sorted rows.
func InducedSubgraph(g *Graph, vertices []int32) (*Graph, error) {
	if g == nil {
		return nil, fmt.Errorf("graph: induced subgraph of a nil graph")
	}
	p := len(vertices)
	if p == 0 {
		return nil, fmt.Errorf("graph: induced subgraph over an empty vertex set")
	}
	// local[u] is u's rank in the subgraph, or -1 when u is dropped. The
	// strictly-ascending requirement makes the mapping monotone, so filtered
	// adjacency rows stay sorted without re-sorting.
	local := make([]int32, g.n)
	for i := range local {
		local[i] = -1
	}
	prev := int32(-1)
	for i, u := range vertices {
		if u < 0 || int(u) >= g.n {
			return nil, fmt.Errorf("graph: induced subgraph vertex %d out of range [0, %d)", u, g.n)
		}
		if u <= prev {
			return nil, fmt.Errorf("graph: induced subgraph vertices must be strictly ascending (saw %d after %d)", u, prev)
		}
		local[u] = int32(i)
		prev = u
	}

	sub := &Graph{
		n:        p,
		weights:  make([]float64, p),
		origID:   make([]int32, p),
		off:      make([]int64, p+1),
		upDeg:    make([]int32, p),
		upPrefix: make([]int64, p+1),
	}
	if len(g.labels) > 0 {
		sub.labels = make([]string, p)
	}
	var deg int64
	for i, u := range vertices {
		sub.weights[i] = g.weights[u]
		sub.origID[i] = g.OrigID(u)
		if sub.labels != nil {
			sub.labels[i] = g.labels[u]
		}
		for _, v := range g.Neighbors(u) {
			if local[v] >= 0 {
				deg++
			}
		}
		sub.off[i+1] = deg
	}
	sub.adj = make([]int32, deg)
	var at int64
	for i, u := range vertices {
		var up int32
		for _, v := range g.Neighbors(u) {
			lv := local[v]
			if lv < 0 {
				continue
			}
			sub.adj[at] = lv
			at++
			if lv < int32(i) {
				up++
			}
		}
		sub.upDeg[i] = up
		sub.upPrefix[i+1] = sub.upPrefix[i] + int64(up)
	}
	sub.m = deg / 2
	return sub, nil
}
