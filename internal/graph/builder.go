package graph

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Builder accumulates a vertex-weighted edge list and produces an immutable
// Graph sorted by decreasing weight. The zero value is ready to use.
//
// Vertices are identified by dense non-negative int32 IDs. Duplicate edges
// and self loops are dropped during Build.
type Builder struct {
	weights []float64
	labels  []string
	edges   [][2]int32
	labeled bool
}

// ErrNoVertices is returned by Build when no vertex was added.
var ErrNoVertices = errors.New("graph: builder has no vertices")

// AddVertex registers vertex id with the given weight, growing the vertex
// set as needed. Re-adding an ID overwrites its weight.
func (b *Builder) AddVertex(id int32, weight float64) {
	b.grow(int(id) + 1)
	b.weights[id] = weight
}

// AddLabeledVertex registers vertex id with a weight and a display name.
func (b *Builder) AddLabeledVertex(id int32, weight float64, label string) {
	b.AddVertex(id, weight)
	b.labeled = true
	for len(b.labels) < len(b.weights) {
		b.labels = append(b.labels, "")
	}
	b.labels[id] = label
}

// AddEdge records an undirected edge between u and v, registering either
// endpoint with weight 0 if it has not been seen yet.
func (b *Builder) AddEdge(u, v int32) {
	hi := u
	if v > hi {
		hi = v
	}
	b.grow(int(hi) + 1)
	b.edges = append(b.edges, [2]int32{u, v})
}

// SetWeights replaces all vertex weights at once; len(w) must equal the
// current vertex count.
func (b *Builder) SetWeights(w []float64) error {
	if len(w) != len(b.weights) {
		return fmt.Errorf("graph: SetWeights got %d weights for %d vertices", len(w), len(b.weights))
	}
	copy(b.weights, w)
	return nil
}

// NumVertices returns the number of vertices registered so far.
func (b *Builder) NumVertices() int { return len(b.weights) }

// Edges returns the raw edge list accumulated so far (including duplicates).
// The caller must not modify it.
func (b *Builder) Edges() [][2]int32 { return b.edges }

func (b *Builder) grow(n int) {
	for len(b.weights) < n {
		b.weights = append(b.weights, 0)
	}
	if b.labeled {
		for len(b.labels) < n {
			b.labels = append(b.labels, "")
		}
	}
}

// Build sorts vertices by (weight desc, original ID asc), remaps the edge
// list, deduplicates it, and returns the immutable Graph.
func (b *Builder) Build() (*Graph, error) {
	n := len(b.weights)
	if n == 0 {
		return nil, ErrNoVertices
	}
	if n > math.MaxInt32 {
		return nil, fmt.Errorf("graph: %d vertices exceed int32 range", n)
	}
	for id, w := range b.weights {
		if math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("graph: vertex %d has non-finite weight %v", id, w)
		}
	}

	// order[rank] = original ID; rank[origID] = rank.
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	sort.SliceStable(order, func(i, j int) bool {
		wi, wj := b.weights[order[i]], b.weights[order[j]]
		if wi != wj {
			return wi > wj
		}
		return order[i] < order[j]
	})
	rank := make([]int32, n)
	for r, id := range order {
		rank[id] = int32(r)
	}

	g := &Graph{
		n:       n,
		weights: make([]float64, n),
		origID:  order,
	}
	for r, id := range order {
		g.weights[r] = b.weights[id]
	}
	if b.labeled {
		g.labels = make([]string, n)
		for r, id := range order {
			g.labels[r] = b.labels[id]
		}
	}

	// Remap, normalize (lo < hi), sort and deduplicate edges.
	type edge struct{ lo, hi int32 }
	es := make([]edge, 0, len(b.edges))
	for _, e := range b.edges {
		u, v := rank[e[0]], rank[e[1]]
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		es = append(es, edge{u, v})
	}
	sort.Slice(es, func(i, j int) bool {
		if es[i].lo != es[j].lo {
			return es[i].lo < es[j].lo
		}
		return es[i].hi < es[j].hi
	})
	dedup := es[:0]
	for i, e := range es {
		if i > 0 && e == es[i-1] {
			continue
		}
		dedup = append(dedup, e)
	}
	es = dedup
	g.m = int64(len(es))

	// CSR construction: count degrees, fill rows, then sort each row.
	deg := make([]int64, n)
	for _, e := range es {
		deg[e.lo]++
		deg[e.hi]++
	}
	g.off = make([]int64, n+1)
	for u := 0; u < n; u++ {
		g.off[u+1] = g.off[u] + deg[u]
	}
	g.adj = make([]int32, 2*g.m)
	fill := make([]int64, n)
	copy(fill, g.off[:n])
	for _, e := range es {
		g.adj[fill[e.lo]] = e.hi
		fill[e.lo]++
		g.adj[fill[e.hi]] = e.lo
		fill[e.hi]++
	}
	g.upDeg = make([]int32, n)
	g.upPrefix = make([]int64, n+1)
	for u := 0; u < n; u++ {
		row := g.adj[g.off[u]:g.off[u+1]]
		sort.Slice(row, func(i, j int) bool { return row[i] < row[j] })
		up := sort.Search(len(row), func(i int) bool { return row[i] >= int32(u) })
		g.upDeg[u] = int32(up)
		g.upPrefix[u+1] = g.upPrefix[u] + int64(up)
	}
	return g, nil
}

// FromEdges builds a graph from an explicit weight vector and edge list.
// Vertex IDs in edges must index into weights.
func FromEdges(weights []float64, edges [][2]int32) (*Graph, error) {
	var b Builder
	for id, w := range weights {
		b.AddVertex(int32(id), w)
	}
	for _, e := range edges {
		if int(e[0]) >= len(weights) || int(e[1]) >= len(weights) || e[0] < 0 || e[1] < 0 {
			return nil, fmt.Errorf("graph: edge (%d,%d) references unknown vertex", e[0], e[1])
		}
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}

// MustFromEdges is FromEdges that panics on error; intended for tests and
// fixtures with known-good inputs.
func MustFromEdges(weights []float64, edges [][2]int32) *Graph {
	g, err := FromEdges(weights, edges)
	if err != nil {
		panic(err)
	}
	return g
}
