// Package graph provides the weighted undirected graph representation used
// throughout the repository.
//
// Vertices are stored in strictly decreasing weight order and the vertex ID
// is its weight rank: vertex 0 carries the highest weight. With this
// convention the induced subgraph G≥τ of the paper is always a prefix
// [0, p) of the vertex array, and the paper's pre-partitioned neighbor set
// N≥(u) (neighbors with weight no smaller than ω(u)) is exactly the leading
// run of u's ascending-sorted adjacency list. Ties between equal raw weights
// are broken by original vertex ID, which realizes the paper's "distinct
// weights" assumption as a strict total order.
package graph

import (
	"fmt"
	"sort"
)

// Graph is an immutable vertex-weighted undirected graph in CSR form.
// Construct one with a Builder, FromEdges, or one of the loaders in this
// package. The zero value is an empty graph.
type Graph struct {
	n int   // number of vertices
	m int64 // number of undirected edges

	// weights[u] is the raw weight of vertex u; non-increasing in u, and the
	// effective total order (weight desc, original ID asc) is strictly
	// decreasing in u.
	weights []float64

	// origID[u] is the identifier the vertex had in the Builder's input.
	origID []int32

	// labels is either empty or has length n; optional display names.
	labels []string

	// CSR adjacency. adj[off[u]:off[u+1]] lists the neighbors of u sorted by
	// ascending rank. The first upDeg[u] of them have rank < u (these are the
	// paper's N≥(u)); the rest have rank > u.
	off   []int64
	adj   []int32
	upDeg []int32

	// upPrefix[p] is the total number of edges whose both endpoints lie in
	// the prefix [0, p); upPrefix has length n+1. It makes size(G≥τ) an O(1)
	// lookup for every prefix.
	upPrefix []int64
}

// NumVertices returns the number of vertices.
func (g *Graph) NumVertices() int { return g.n }

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int64 { return g.m }

// Size returns size(G) = |V| + |E| as defined in the paper.
func (g *Graph) Size() int64 { return int64(g.n) + g.m }

// Weight returns the raw weight of vertex u.
func (g *Graph) Weight(u int32) float64 { return g.weights[u] }

// Weights returns the weight vector indexed by rank. The caller must not
// modify it.
func (g *Graph) Weights() []float64 { return g.weights }

// OrigID returns the identifier vertex u had before rank-sorting.
func (g *Graph) OrigID(u int32) int32 {
	if len(g.origID) == 0 {
		return u
	}
	return g.origID[u]
}

// Label returns the display name of vertex u, or a numeric fallback when the
// graph carries no labels.
func (g *Graph) Label(u int32) string {
	if len(g.labels) == 0 {
		return fmt.Sprintf("v%d", g.OrigID(u))
	}
	return g.labels[u]
}

// HasLabels reports whether the graph carries display names.
func (g *Graph) HasLabels() bool { return len(g.labels) > 0 }

// Degree returns the number of neighbors of u in the full graph.
func (g *Graph) Degree(u int32) int32 { return int32(g.off[u+1] - g.off[u]) }

// Neighbors returns the neighbors of u sorted by ascending rank. The caller
// must not modify the returned slice.
func (g *Graph) Neighbors(u int32) []int32 { return g.adj[g.off[u]:g.off[u+1]] }

// UpNeighbors returns N≥(u): the neighbors of u whose weight is larger than
// ω(u) (equivalently, rank smaller than u). The caller must not modify the
// returned slice.
func (g *Graph) UpNeighbors(u int32) []int32 {
	return g.adj[g.off[u] : g.off[u]+int64(g.upDeg[u])]
}

// UpDegree returns |N≥(u)|.
func (g *Graph) UpDegree(u int32) int32 { return g.upDeg[u] }

// PrefixSize returns size(G≥τ) for the prefix subgraph induced by the first
// p vertices: p plus the number of edges with both endpoints in [0, p).
func (g *Graph) PrefixSize(p int) int64 {
	return int64(p) + g.upPrefix[p]
}

// PrefixEdges returns the number of edges with both endpoints in [0, p).
func (g *Graph) PrefixEdges(p int) int64 { return g.upPrefix[p] }

// PrefixForSize returns the smallest prefix length p such that
// PrefixSize(p) >= want, or n if no prefix is that large. It implements
// Line 4 of Algorithm 1 (grow G≥τ to at least δ times its size) in
// O(log n) using the prefix-sum array.
func (g *Graph) PrefixForSize(want int64) int {
	if want <= 0 {
		return 0
	}
	p := sort.Search(g.n, func(p int) bool { return g.PrefixSize(p+1) >= want })
	if p == g.n {
		return g.n
	}
	return p + 1
}

// DegreeWithin returns the number of neighbors of u with rank < p, i.e. u's
// degree inside the prefix subgraph [0, p). It runs in O(log deg(u)).
func (g *Graph) DegreeWithin(u int32, p int) int32 {
	row := g.adj[g.off[u]:g.off[u+1]]
	return int32(sort.Search(len(row), func(i int) bool { return int(row[i]) >= p }))
}

// NeighborsWithin returns the neighbors of u with rank < p. The caller must
// not modify the returned slice.
func (g *Graph) NeighborsWithin(u int32, p int) []int32 {
	d := g.DegreeWithin(u, p)
	return g.adj[g.off[u] : g.off[u]+int64(d)]
}

// RankOfWeight returns the number of vertices with weight strictly greater
// than w under the effective total order; equivalently the prefix length p
// such that G≥w = [0, p) when w matches no vertex, using raw weights.
func (g *Graph) RankOfWeight(w float64) int {
	// weights is non-increasing; find first index with weights[i] < w.
	return sort.Search(g.n, func(i int) bool { return g.weights[i] < w })
}

// Validate checks structural invariants of the CSR representation. It is
// used by tests and by loaders of untrusted files.
func (g *Graph) Validate() error {
	if g.n < 0 {
		return fmt.Errorf("graph: negative vertex count %d", g.n)
	}
	if len(g.weights) != g.n || len(g.off) != g.n+1 || len(g.upDeg) != g.n || len(g.upPrefix) != g.n+1 {
		return fmt.Errorf("graph: inconsistent array lengths (n=%d)", g.n)
	}
	if len(g.labels) != 0 && len(g.labels) != g.n {
		return fmt.Errorf("graph: labels length %d != n %d", len(g.labels), g.n)
	}
	var halfEdges int64
	for u := 0; u < g.n; u++ {
		if u > 0 && g.weights[u] > g.weights[u-1] {
			return fmt.Errorf("graph: weights not sorted at vertex %d", u)
		}
		lo, hi := g.off[u], g.off[u+1]
		if lo > hi || hi > int64(len(g.adj)) {
			return fmt.Errorf("graph: bad offsets for vertex %d", u)
		}
		row := g.adj[lo:hi]
		up := 0
		for i, v := range row {
			if v < 0 || int(v) >= g.n {
				return fmt.Errorf("graph: neighbor %d of vertex %d out of range", v, u)
			}
			if int(v) == u {
				return fmt.Errorf("graph: self loop at vertex %d", u)
			}
			if i > 0 && row[i-1] >= v {
				return fmt.Errorf("graph: adjacency of vertex %d not strictly ascending", u)
			}
			if int(v) < u {
				up++
			}
		}
		if int(g.upDeg[u]) != up {
			return fmt.Errorf("graph: upDeg[%d]=%d, want %d", u, g.upDeg[u], up)
		}
		if g.upPrefix[u+1]-g.upPrefix[u] != int64(up) {
			return fmt.Errorf("graph: upPrefix inconsistent at vertex %d", u)
		}
		halfEdges += int64(len(row))
	}
	if halfEdges != 2*g.m {
		return fmt.Errorf("graph: adjacency lists sum to %d half-edges, want %d", halfEdges, 2*g.m)
	}
	return nil
}
