package graph

import (
	"fmt"
	"sort"
)

// HasEdge reports whether the undirected edge {u, v} (rank IDs) exists.
// It costs O(log deg) via binary search on the smaller-indexed row.
func (g *Graph) HasEdge(u, v int32) bool {
	if u == v || u < 0 || v < 0 || int(u) >= g.n || int(v) >= g.n {
		return false
	}
	row := g.adj[g.off[u]:g.off[u+1]]
	i := sort.Search(len(row), func(i int) bool { return row[i] >= v })
	return i < len(row) && row[i] == v
}

// ApplyEdgeDelta returns a new graph equal to g with the given edges
// inserted and deleted. Endpoints are rank IDs with each pair normalized
// lo < hi; inserts must be absent from g, deletes present, and the two
// lists must be disjoint and duplicate-free — the mutable layer
// normalizes raw update batches down to exactly this shape.
//
// Edge mutations never change vertex weights, so the weight ranking — and
// with it the identity of every vertex — is untouched. That makes the
// update incremental rather than a rebuild: the returned graph aliases
// g's weight, original-ID, and label arrays outright, copies the
// adjacency prefix below the smallest touched vertex verbatim, and
// re-merges only rows from that vertex on, recomputing the up-degree and
// up-prefix vectors over the affected suffix. Cost is O(n + m_suffix + b)
// with no sorting or deduplication of the surviving edge set — compare
// Builder.Build's O(m log m) sort-the-world pass, which ApplyEdits pays
// on every call.
func ApplyEdgeDelta(g *Graph, inserts, deletes [][2]int32) (*Graph, error) {
	ng, _, err := ApplyEdgeDeltaCut(g, inserts, deletes)
	return ng, err
}

// ApplyEdgeDeltaCut is ApplyEdgeDelta, additionally returning the delta's
// cut: the smallest rank owning a changed adjacency row. Every prefix
// subgraph G[0, p) with p <= cut is identical between the old and new
// graphs — both endpoints of every changed edge are >= cut — which is
// what lets the index layer keep the decomposition below the cut and
// recompute only the suffix. An empty delta returns g unchanged with cut
// n (nothing touched).
func ApplyEdgeDeltaCut(g *Graph, inserts, deletes [][2]int32) (*Graph, int, error) {
	if len(inserts) == 0 && len(deletes) == 0 {
		return g, g.n, nil
	}
	// Each undirected edge touches two rows: {lo,hi} adds hi to row lo and
	// lo to row hi. Collect the directed view, sorted by (owner, neighbor),
	// so every affected row sees its changes as one ascending run.
	type change struct {
		owner, nb int32
		del       bool
	}
	changes := make([]change, 0, 2*(len(inserts)+len(deletes)))
	addPair := func(e [2]int32, del bool) error {
		lo, hi := e[0], e[1]
		if lo >= hi || lo < 0 || int(hi) >= g.n {
			return fmt.Errorf("graph: delta edge (%d,%d) is not a normalized in-range pair", lo, hi)
		}
		changes = append(changes, change{lo, hi, del}, change{hi, lo, del})
		return nil
	}
	for _, e := range inserts {
		if err := addPair(e, false); err != nil {
			return nil, 0, err
		}
		if g.HasEdge(e[0], e[1]) {
			return nil, 0, fmt.Errorf("graph: delta inserts existing edge (%d,%d)", e[0], e[1])
		}
	}
	for _, e := range deletes {
		if err := addPair(e, true); err != nil {
			return nil, 0, err
		}
		if !g.HasEdge(e[0], e[1]) {
			return nil, 0, fmt.Errorf("graph: delta deletes missing edge (%d,%d)", e[0], e[1])
		}
	}
	sort.Slice(changes, func(i, j int) bool {
		if changes[i].owner != changes[j].owner {
			return changes[i].owner < changes[j].owner
		}
		return changes[i].nb < changes[j].nb
	})
	for i := 1; i < len(changes); i++ {
		if changes[i].owner == changes[i-1].owner && changes[i].nb == changes[i-1].nb {
			return nil, 0, fmt.Errorf("graph: delta lists edge (%d,%d) twice", changes[i].owner, changes[i].nb)
		}
	}

	newM := g.m + int64(len(inserts)) - int64(len(deletes))
	first := int(changes[0].owner) // rows below it are byte-identical

	ng := &Graph{
		n: g.n,
		m: newM,
		// Weights, identity, and labels are untouched by edge mutations;
		// aliasing them keeps every snapshot's OrigID/Label/Weight views
		// interchangeable, which the serving layer relies on when it
		// renders a result from one snapshot while another is current.
		weights:  g.weights,
		origID:   g.origID,
		labels:   g.labels,
		off:      make([]int64, g.n+1),
		adj:      make([]int32, 2*newM),
		upDeg:    make([]int32, g.n),
		upPrefix: make([]int64, g.n+1),
	}
	copy(ng.off[:first+1], g.off[:first+1])
	copy(ng.adj[:g.off[first]], g.adj[:g.off[first]])
	copy(ng.upDeg, g.upDeg)
	copy(ng.upPrefix[:first+1], g.upPrefix[:first+1])

	ci := 0
	for u := first; u < g.n; u++ {
		old := g.adj[g.off[u]:g.off[u+1]]
		w := ng.off[u]
		up := int64(0)
		if ci < len(changes) && int(changes[ci].owner) == u {
			// Merge the row's ascending change run into the ascending old
			// row; count the up-run (neighbors < u) as entries land.
			oi := 0
			for oi < len(old) || (ci < len(changes) && int(changes[ci].owner) == u) {
				var v int32
				switch {
				case ci < len(changes) && int(changes[ci].owner) == u &&
					(oi >= len(old) || changes[ci].nb <= old[oi]):
					c := changes[ci]
					ci++
					if c.del {
						// HasEdge verified presence, and the duplicate check
						// rules out a same-batch insert; the matching old
						// entry is next — skip it.
						oi++
						continue
					}
					v = c.nb
				default:
					v = old[oi]
					oi++
				}
				ng.adj[w] = v
				w++
				if int(v) < u {
					up++
				}
			}
		} else {
			copy(ng.adj[w:w+int64(len(old))], old)
			w += int64(len(old))
			up = int64(g.upDeg[u])
		}
		ng.off[u+1] = w
		ng.upDeg[u] = int32(up)
		ng.upPrefix[u+1] = ng.upPrefix[u] + up
	}
	if got := ng.off[g.n]; got != 2*newM {
		return nil, 0, fmt.Errorf("graph: delta produced %d half-edges, want %d", got, 2*newM)
	}
	return ng, first, nil
}
