package graph

// Stats summarizes a graph the way Table 1 of the paper does.
type Stats struct {
	Vertices  int
	Edges     int64
	MaxDegree int32
	AvgDegree float64
}

// Statistics computes the Table 1 columns except γmax (which needs a core
// decomposition; see the kcore package).
func (g *Graph) Statistics() Stats {
	s := Stats{Vertices: g.n, Edges: g.m}
	for u := int32(0); int(u) < g.n; u++ {
		if d := g.Degree(u); d > s.MaxDegree {
			s.MaxDegree = d
		}
	}
	if g.n > 0 {
		s.AvgDegree = 2 * float64(g.m) / float64(g.n)
	}
	return s
}

// DegreeHistogram returns hist where hist[d] counts vertices of degree d.
func (g *Graph) DegreeHistogram() []int64 {
	var maxD int32
	for u := int32(0); int(u) < g.n; u++ {
		if d := g.Degree(u); d > maxD {
			maxD = d
		}
	}
	hist := make([]int64, maxD+1)
	for u := int32(0); int(u) < g.n; u++ {
		hist[g.Degree(u)]++
	}
	return hist
}
