package graph

import (
	"testing"
)

// randomRanked builds a rank-sorted graph via the Builder and returns it
// with the flat up-adjacency layout a semi-external edge file stores.
func rankedFixture(t *testing.T, n int, seedEdges [][2]int32) (*Graph, []int32) {
	t.Helper()
	weights := make([]float64, n)
	for i := range weights {
		weights[i] = float64(n - i)
	}
	g, err := FromEdges(weights, seedEdges)
	if err != nil {
		t.Fatal(err)
	}
	flat := make([]int32, 0, g.NumEdges())
	for u := int32(0); int(u) < g.NumVertices(); u++ {
		flat = append(flat, g.UpNeighbors(u)...)
	}
	return g, flat
}

func TestFromUpAdjacencyMatchesBuilder(t *testing.T) {
	cases := [][][2]int32{
		{{0, 1}},
		{{0, 1}, {1, 2}, {0, 2}, {2, 3}, {0, 4}, {3, 4}},
		{{0, 5}, {1, 5}, {2, 5}, {3, 5}, {4, 5}},
		{}, // isolated vertices only
	}
	for ci, edges := range cases {
		n := 6
		g, flat := rankedFixture(t, n, edges)
		for _, sc := range []*PrefixScratch{nil, {}} {
			got, err := FromUpAdjacency(g.Weights(), g.upDeg, flat, sc)
			if err != nil {
				t.Fatalf("case %d: %v", ci, err)
			}
			if err := got.Validate(); err != nil {
				t.Fatalf("case %d: invalid CSR: %v", ci, err)
			}
			if got.NumVertices() != g.NumVertices() || got.NumEdges() != g.NumEdges() {
				t.Fatalf("case %d: shape (%d,%d), want (%d,%d)",
					ci, got.NumVertices(), got.NumEdges(), g.NumVertices(), g.NumEdges())
			}
			for u := int32(0); int(u) < n; u++ {
				a, b := got.Neighbors(u), g.Neighbors(u)
				if len(a) != len(b) {
					t.Fatalf("case %d: vertex %d has %d neighbors, want %d", ci, u, len(a), len(b))
				}
				for i := range a {
					if a[i] != b[i] {
						t.Fatalf("case %d: vertex %d adjacency differs", ci, u)
					}
				}
				if got.UpDegree(u) != g.UpDegree(u) {
					t.Fatalf("case %d: vertex %d up-degree differs", ci, u)
				}
			}
			for p := 0; p <= n; p++ {
				if got.PrefixSize(p) != g.PrefixSize(p) {
					t.Fatalf("case %d: PrefixSize(%d) differs", ci, p)
				}
			}
		}
	}
}

// TestFromUpAdjacencyScratchReuse reuses one scratch across many builds of
// different shapes: each build must be self-consistent (the point of the
// scratch is exactly this reuse).
func TestFromUpAdjacencyScratchReuse(t *testing.T) {
	var sc PrefixScratch
	g, flat := rankedFixture(t, 6, [][2]int32{{0, 1}, {1, 2}, {0, 2}, {2, 3}, {3, 4}, {4, 5}})
	for p := 1; p <= g.NumVertices(); p++ {
		upAdj := flat[:g.PrefixEdges(p)]
		got, err := FromUpAdjacency(g.Weights()[:p], g.upDeg[:p], upAdj, &sc)
		if err != nil {
			t.Fatalf("prefix %d: %v", p, err)
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("prefix %d: %v", p, err)
		}
		if got.NumEdges() != g.PrefixEdges(p) {
			t.Fatalf("prefix %d: %d edges, want %d", p, got.NumEdges(), g.PrefixEdges(p))
		}
		for u := int32(0); int(u) < p; u++ {
			if got.DegreeWithin(u, p) != g.DegreeWithin(u, p) {
				t.Fatalf("prefix %d: degree of %d differs", p, u)
			}
		}
	}
}

func TestFromUpAdjacencyRejectsCorruptInput(t *testing.T) {
	w := []float64{3, 2, 1}
	cases := []struct {
		name  string
		w     []float64
		upDeg []int32
		upAdj []int32
	}{
		{"empty", nil, nil, nil},
		{"degree mismatch", w, []int32{0, 1}, []int32{0}},
		{"degree exceeds rank", w, []int32{1, 0, 0}, []int32{0}},
		{"negative degree", w, []int32{0, -1, 0}, nil},
		{"neighbor out of range", w, []int32{0, 1, 0}, []int32{2}},
		{"negative neighbor", w, []int32{0, 1, 0}, []int32{-1}},
		{"non-ascending list", w, []int32{0, 0, 2}, []int32{1, 0}},
		{"duplicate neighbor", w, []int32{0, 0, 2}, []int32{0, 0}},
		{"too few entries", w, []int32{0, 1, 1}, []int32{0}},
		{"too many entries", w, []int32{0, 1, 0}, []int32{0, 0}},
		{"weights unsorted", []float64{1, 2, 3}, []int32{0, 0, 0}, nil},
		{"weight NaN", []float64{3, nan(), 1}, []int32{0, 0, 0}, nil},
	}
	for _, tc := range cases {
		if _, err := FromUpAdjacency(tc.w, tc.upDeg, tc.upAdj, nil); err == nil {
			t.Errorf("%s: want error", tc.name)
		}
	}
}

func nan() float64 {
	var zero float64
	return zero / zero
}
