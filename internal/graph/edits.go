package graph

import "fmt"

// Edit describes a batch of graph mutations. Endpoints are original vertex
// IDs (the IDs used when the graph was built), not ranks, so edits written
// against the input data keep working regardless of weight changes.
type Edit struct {
	AddEdges    [][2]int32
	RemoveEdges [][2]int32
	// SetWeights remaps vertex weights by original ID; missing entries
	// keep their old weight.
	SetWeights map[int32]float64
}

// ApplyEdits returns a new graph with the edit applied; g is unchanged
// (graphs are immutable, so a batch rebuild in O(n + m) is the update
// primitive). This is the operation that invalidates a prebuilt IndexAll
// structure — after any edit the index must be reconstructed from scratch,
// while LocalSearch simply queries the new graph (paper §1).
func ApplyEdits(g *Graph, e Edit) (*Graph, error) {
	var b Builder
	maxID := int32(-1)
	for u := int32(0); int(u) < g.NumVertices(); u++ {
		id := g.OrigID(u)
		w := g.Weight(u)
		if nw, ok := e.SetWeights[id]; ok {
			w = nw
		}
		if g.HasLabels() {
			b.AddLabeledVertex(id, w, g.Label(u))
		} else {
			b.AddVertex(id, w)
		}
		if id > maxID {
			maxID = id
		}
	}
	removed := make(map[[2]int32]bool, len(e.RemoveEdges))
	for _, ed := range e.RemoveEdges {
		removed[normEdge(ed)] = true
	}
	for u := int32(0); int(u) < g.NumVertices(); u++ {
		for _, v := range g.UpNeighbors(u) {
			ed := normEdge([2]int32{g.OrigID(v), g.OrigID(u)})
			if !removed[ed] {
				b.AddEdge(ed[0], ed[1])
			}
		}
	}
	for _, ed := range e.AddEdges {
		if ed[0] < 0 || ed[1] < 0 || ed[0] > maxID || ed[1] > maxID {
			return nil, fmt.Errorf("graph: edit adds edge (%d,%d) outside the vertex set", ed[0], ed[1])
		}
		b.AddEdge(ed[0], ed[1])
	}
	for id := range e.SetWeights {
		if id < 0 || id > maxID {
			return nil, fmt.Errorf("graph: edit reweights unknown vertex %d", id)
		}
	}
	return b.Build()
}

func normEdge(e [2]int32) [2]int32 {
	if e[0] > e[1] {
		e[0], e[1] = e[1], e[0]
	}
	return e
}
