package graph

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// WriteText serializes g in a simple line-oriented format:
//
//	n m
//	w_0 w_1 ... w_{n-1}        (one "v <origID> <weight>" line per vertex)
//	e <u> <v>                  (one line per undirected edge, original IDs)
//
// The format round-trips through ReadText.
func WriteText(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%d %d\n", g.n, g.m); err != nil {
		return err
	}
	for u := int32(0); int(u) < g.n; u++ {
		if _, err := fmt.Fprintf(bw, "v %d %g\n", g.OrigID(u), g.Weight(u)); err != nil {
			return err
		}
	}
	for u := int32(0); int(u) < g.n; u++ {
		for _, v := range g.UpNeighbors(u) {
			if _, err := fmt.Fprintf(bw, "e %d %d\n", g.OrigID(v), g.OrigID(u)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadText parses the format produced by WriteText (and tolerates plain
// "u v" edge lines with implicit unit weights for convenience).
func ReadText(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var b Builder
	line := 0
	sawHeader := false
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		f := strings.Fields(text)
		switch {
		case f[0] == "v":
			if len(f) != 3 {
				return nil, fmt.Errorf("graph: line %d: want 'v id weight', got %q", line, text)
			}
			id, err := strconv.ParseInt(f[1], 10, 32)
			if err != nil || id < 0 {
				return nil, fmt.Errorf("graph: line %d: bad vertex id %q", line, f[1])
			}
			w, err := strconv.ParseFloat(f[2], 64)
			if err != nil {
				return nil, fmt.Errorf("graph: line %d: bad weight: %v", line, err)
			}
			b.AddVertex(int32(id), w)
		case f[0] == "e":
			if len(f) != 3 {
				return nil, fmt.Errorf("graph: line %d: want 'e u v', got %q", line, text)
			}
			u, err := strconv.ParseInt(f[1], 10, 32)
			if err != nil || u < 0 {
				return nil, fmt.Errorf("graph: line %d: bad endpoint %q", line, f[1])
			}
			v, err := strconv.ParseInt(f[2], 10, 32)
			if err != nil || v < 0 {
				return nil, fmt.Errorf("graph: line %d: bad endpoint %q", line, f[2])
			}
			b.AddEdge(int32(u), int32(v))
		case !sawHeader && len(f) == 2:
			// Header "n m"; values are advisory, the builder recounts.
			sawHeader = true
		case len(f) == 2:
			// Bare edge line "u v".
			u, err1 := strconv.ParseInt(f[0], 10, 32)
			v, err2 := strconv.ParseInt(f[1], 10, 32)
			if err1 != nil || err2 != nil || u < 0 || v < 0 {
				return nil, fmt.Errorf("graph: line %d: bad edge line %q", line, text)
			}
			b.AddEdge(int32(u), int32(v))
		default:
			return nil, fmt.Errorf("graph: line %d: unrecognized line %q", line, text)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if b.NumVertices() == 0 {
		return nil, ErrNoVertices
	}
	return b.Build()
}

// LoadFile reads a graph from the file at path, dispatching on extension:
// a ".bin" suffix (matched case-insensitively) selects the compact binary
// format, anything else the text format. This is the one place the
// extension rule lives; LoadGraph and the store backends both call it.
func LoadFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if IsBinaryPath(path) {
		return ReadBinary(f)
	}
	return ReadText(f)
}

// IsBinaryPath reports whether path selects the binary format in LoadFile.
func IsBinaryPath(path string) bool {
	return len(path) >= 4 && strings.EqualFold(path[len(path)-4:], ".bin")
}
