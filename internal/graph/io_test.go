package graph

import (
	"bytes"
	"strings"
	"testing"

	"testing/quick"
)

func TestTextRoundTrip(t *testing.T) {
	g := small(t)
	var buf bytes.Buffer
	if err := WriteText(&buf, g); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	g2, err := ReadText(&buf)
	if err != nil {
		t.Fatalf("ReadText: %v", err)
	}
	assertSameGraph(t, g, g2)
}

func TestBinaryRoundTrip(t *testing.T) {
	g := small(t)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	g2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatalf("ReadBinary: %v", err)
	}
	assertSameGraph(t, g, g2)
}

func assertSameGraph(t *testing.T, a, b *Graph) {
	t.Helper()
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		t.Fatalf("shape (%d,%d) vs (%d,%d)", a.NumVertices(), a.NumEdges(), b.NumVertices(), b.NumEdges())
	}
	for u := int32(0); int(u) < a.NumVertices(); u++ {
		if a.Weight(u) != b.Weight(u) {
			t.Fatalf("weight of rank %d: %v vs %v", u, a.Weight(u), b.Weight(u))
		}
		if a.OrigID(u) != b.OrigID(u) {
			t.Fatalf("origID of rank %d: %d vs %d", u, a.OrigID(u), b.OrigID(u))
		}
		na, nb := a.Neighbors(u), b.Neighbors(u)
		if len(na) != len(nb) {
			t.Fatalf("degree of rank %d: %d vs %d", u, len(na), len(nb))
		}
		for i := range na {
			if na[i] != nb[i] {
				t.Fatalf("adjacency of rank %d differs at %d", u, i)
			}
		}
	}
	if err := b.Validate(); err != nil {
		t.Fatalf("round-tripped graph invalid: %v", err)
	}
}

// TestRoundTripProperty uses testing/quick to round-trip random graphs
// through both formats.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8, edgesRaw uint16) bool {
		n := int(nRaw%40) + 2
		m := int64(edgesRaw % 200)
		g := randomGraph(t, n, m, seed)
		var tb, bb bytes.Buffer
		if err := WriteText(&tb, g); err != nil {
			return false
		}
		gt, err := ReadText(&tb)
		if err != nil {
			return false
		}
		if err := WriteBinary(&bb, g); err != nil {
			return false
		}
		gb, err := ReadBinary(&bb)
		if err != nil {
			return false
		}
		return gt.NumEdges() == g.NumEdges() && gb.NumEdges() == g.NumEdges() &&
			gt.Validate() == nil && gb.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// randomGraph builds a small pseudo-random graph without importing gen
// (which would create an import cycle with this package's tests).
func randomGraph(t testing.TB, n int, m int64, seed uint64) *Graph {
	t.Helper()
	var b Builder
	state := seed | 1
	next := func() uint64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return state
	}
	for id := 0; id < n; id++ {
		b.AddVertex(int32(id), float64(next()%100000))
	}
	for i := int64(0); i < m; i++ {
		u := int32(next() % uint64(n))
		v := int32(next() % uint64(n))
		if u != v {
			b.AddEdge(u, v)
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatalf("randomGraph: %v", err)
	}
	return g
}

func TestReadTextBareEdges(t *testing.T) {
	in := "4 3\n0 1\n1 2\n2 3\n"
	g, err := ReadText(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ReadText: %v", err)
	}
	if g.NumVertices() != 4 || g.NumEdges() != 3 {
		t.Errorf("got (%d,%d), want (4,3)", g.NumVertices(), g.NumEdges())
	}
}

func TestReadTextComments(t *testing.T) {
	in := "# a comment\nv 0 5\nv 1 3\n\ne 0 1\n"
	g, err := ReadText(strings.NewReader(in))
	if err != nil {
		t.Fatalf("ReadText: %v", err)
	}
	if g.NumVertices() != 2 || g.NumEdges() != 1 {
		t.Errorf("got (%d,%d), want (2,1)", g.NumVertices(), g.NumEdges())
	}
}

func TestReadTextErrors(t *testing.T) {
	cases := []string{
		"",                     // empty
		"v 0\n",                // malformed vertex
		"v x 1\n",              // bad ID
		"v 0 zero\n",           // bad weight
		"v 0 1\ne 0\n",         // malformed edge
		"v 0 1\ne a b\n",       // bad endpoints
		"v 0 1\nz what is\n",   // unknown line
		"v 0 1\n0 1 2 3 4 5\n", // too many fields
	}
	for _, in := range cases {
		if _, err := ReadText(strings.NewReader(in)); err == nil {
			t.Errorf("ReadText(%q): want error", in)
		}
	}
}

func TestReadBinaryErrors(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader(nil)); err == nil {
		t.Error("empty input: want error")
	}
	if _, err := ReadBinary(bytes.NewReader(make([]byte, 40))); err == nil {
		t.Error("zero magic: want error")
	}
	// Truncated file: valid header, missing payload.
	g := small(t)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()/2]
	if _, err := ReadBinary(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated input: want error")
	}
}
