package graph

import (
	"bytes"
	"testing"
)

// FuzzReadText feeds arbitrary bytes to the text parser: it must either
// reject the input or produce a structurally valid graph, never panic.
func FuzzReadText(f *testing.F) {
	f.Add([]byte("v 0 1\nv 1 2\ne 0 1\n"))
	f.Add([]byte("3 2\n0 1\n1 2\n"))
	f.Add([]byte("# comment\nv 0 1e300\n"))
	f.Add([]byte("e 0 0\n"))
	f.Add([]byte("v -1 5\n"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadText(bytes.NewReader(data))
		if err != nil {
			return
		}
		if verr := g.Validate(); verr != nil {
			t.Fatalf("accepted graph fails validation: %v", verr)
		}
	})
}

// FuzzReadBinary does the same for the binary parser, seeding with valid
// encodings and corruptions of them.
func FuzzReadBinary(f *testing.F) {
	g := MustFromEdges([]float64{3, 2, 1}, [][2]int32{{0, 1}, {1, 2}})
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	corrupt := append([]byte(nil), valid...)
	if len(corrupt) > 24 {
		corrupt[24] ^= 0xFF
	}
	f.Add(corrupt)
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		if verr := g.Validate(); verr != nil {
			t.Fatalf("accepted graph fails validation: %v", verr)
		}
	})
}

// FuzzBuilderQuery stresses the whole pipeline: arbitrary edge bytes are
// decoded into a small graph and queried; nothing may panic and results
// must verify structurally.
func FuzzBuilderQuery(f *testing.F) {
	f.Add([]byte{0, 1, 1, 2, 2, 0}, uint8(3))
	f.Add([]byte{0, 0, 0, 0}, uint8(1))
	f.Fuzz(func(t *testing.T, raw []byte, gammaRaw uint8) {
		var b Builder
		const n = 16
		for id := int32(0); id < n; id++ {
			b.AddVertex(id, float64(id*7%13))
		}
		for i := 0; i+1 < len(raw) && i < 200; i += 2 {
			b.AddEdge(int32(raw[i]%n), int32(raw[i+1]%n))
		}
		g, err := b.Build()
		if err != nil {
			t.Fatalf("builder rejected in-range input: %v", err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("built graph invalid: %v", err)
		}
		// Exercise prefix arithmetic on every prefix.
		for p := 0; p <= g.NumVertices(); p++ {
			if got := g.PrefixForSize(g.PrefixSize(p)); got > p {
				t.Fatalf("PrefixForSize(PrefixSize(%d)) = %d > %d", p, got, p)
			}
		}
	})
}
