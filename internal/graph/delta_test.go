package graph

import (
	"math/rand"
	"testing"
)

// graphsEqual asserts structural equality of two graphs through the public
// accessors, so the incremental delta path can be checked against a
// from-scratch Builder rebuild field by field.
func graphsEqual(t *testing.T, got, want *Graph) {
	t.Helper()
	if err := got.Validate(); err != nil {
		t.Fatalf("delta graph invalid: %v", err)
	}
	if got.NumVertices() != want.NumVertices() || got.NumEdges() != want.NumEdges() {
		t.Fatalf("shape mismatch: got %d/%d vertices/edges, want %d/%d",
			got.NumVertices(), got.NumEdges(), want.NumVertices(), want.NumEdges())
	}
	for u := int32(0); int(u) < want.NumVertices(); u++ {
		if got.Weight(u) != want.Weight(u) {
			t.Fatalf("weight mismatch at %d", u)
		}
		if got.UpDegree(u) != want.UpDegree(u) {
			t.Fatalf("upDeg mismatch at %d: got %d want %d", u, got.UpDegree(u), want.UpDegree(u))
		}
		if got.PrefixEdges(int(u)+1) != want.PrefixEdges(int(u)+1) {
			t.Fatalf("upPrefix mismatch at %d", u)
		}
		gr, wr := got.Neighbors(u), want.Neighbors(u)
		if len(gr) != len(wr) {
			t.Fatalf("degree mismatch at %d: got %d want %d", u, len(gr), len(wr))
		}
		for i := range gr {
			if gr[i] != wr[i] {
				t.Fatalf("adjacency mismatch at %d[%d]: got %d want %d", u, i, gr[i], wr[i])
			}
		}
	}
}

// TestApplyEdgeDeltaMatchesRebuild drives random insert/delete batches
// through the incremental path and a full Builder rebuild and demands
// identical graphs after every batch.
func TestApplyEdgeDeltaMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		n := 8 + rng.Intn(40)
		weights := make([]float64, n)
		for i := range weights {
			weights[i] = rng.Float64() * 100
		}
		present := map[[2]int32]bool{}
		var edges [][2]int32
		for i := 0; i < 3*n; i++ {
			u, v := int32(rng.Intn(n)), int32(rng.Intn(n))
			if u == v {
				continue
			}
			if u > v {
				u, v = v, u
			}
			if !present[[2]int32{u, v}] {
				present[[2]int32{u, v}] = true
				edges = append(edges, [2]int32{u, v})
			}
		}
		base, err := FromEdges(weights, edges)
		if err != nil {
			t.Fatal(err)
		}
		// FromEdges remaps to rank IDs; track the live edge set in rank
		// space from the built graph itself.
		rank := map[[2]int32]bool{}
		for u := int32(0); int(u) < base.NumVertices(); u++ {
			for _, v := range base.UpNeighbors(u) {
				rank[[2]int32{v, u}] = true
			}
		}

		cur := base
		for batch := 0; batch < 8; batch++ {
			var ins, del [][2]int32
			seen := map[[2]int32]bool{}
			for i := 0; i < 1+rng.Intn(10); i++ {
				u, v := int32(rng.Intn(n)), int32(rng.Intn(n))
				if u == v {
					continue
				}
				if u > v {
					u, v = v, u
				}
				e := [2]int32{u, v}
				if seen[e] {
					continue
				}
				seen[e] = true
				if rank[e] {
					del = append(del, e)
					delete(rank, e)
				} else {
					ins = append(ins, e)
					rank[e] = true
				}
			}
			next, err := ApplyEdgeDelta(cur, ins, del)
			if err != nil {
				t.Fatalf("trial %d batch %d: %v", trial, batch, err)
			}
			var es [][2]int32
			for e := range rank {
				es = append(es, e)
			}
			want, err := FromEdges(cur.Weights(), es)
			if err != nil {
				t.Fatalf("rebuild: %v", err)
			}
			graphsEqual(t, next, want)
			cur = next
		}
	}
}

func TestApplyEdgeDeltaRejectsBadInput(t *testing.T) {
	g := MustFromEdges([]float64{5, 4, 3, 2}, [][2]int32{{0, 1}, {1, 2}, {2, 3}})
	cases := []struct {
		name     string
		ins, del [][2]int32
	}{
		{"insert existing", [][2]int32{{0, 1}}, nil},
		{"delete missing", nil, [][2]int32{{0, 3}}},
		{"self loop", [][2]int32{{2, 2}}, nil},
		{"unnormalized", [][2]int32{{3, 1}}, nil},
		{"out of range", [][2]int32{{0, 9}}, nil},
		{"duplicate insert", [][2]int32{{0, 2}, {0, 2}}, nil},
		{"insert and delete same edge", [][2]int32{{1, 2}}, [][2]int32{{1, 2}}},
	}
	for _, tc := range cases {
		if _, err := ApplyEdgeDelta(g, tc.ins, tc.del); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
}

func TestApplyEdgeDeltaAliasesIdentity(t *testing.T) {
	g := MustFromEdges([]float64{5, 4, 3, 2}, [][2]int32{{0, 1}, {1, 2}})
	ng, err := ApplyEdgeDelta(g, [][2]int32{{0, 2}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if &ng.Weights()[0] != &g.Weights()[0] {
		t.Error("weights should alias across a delta (they never change)")
	}
	if ng.OrigID(3) != g.OrigID(3) || ng.Label(3) != g.Label(3) {
		t.Error("identity mapping changed across a delta")
	}
	// Empty delta returns g itself.
	same, err := ApplyEdgeDelta(g, nil, nil)
	if err != nil || same != g {
		t.Errorf("empty delta should return the receiver, got %p/%v", same, err)
	}
}
