package graph

import "testing"

func TestApplyEditsAddRemove(t *testing.T) {
	g := small(t) // 5 vertices, 6 edges
	g2, err := ApplyEdits(g, Edit{
		AddEdges:    [][2]int32{{0, 2}},
		RemoveEdges: [][2]int32{{3, 4}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() {
		t.Fatalf("edges = %d, want %d (one added, one removed)", g2.NumEdges(), g.NumEdges())
	}
	if err := g2.Validate(); err != nil {
		t.Fatal(err)
	}
	// Original graph is untouched.
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	hasEdge := func(gr *Graph, a, b int32) bool {
		// a, b are original IDs; find ranks.
		var ra, rb int32 = -1, -1
		for u := int32(0); int(u) < gr.NumVertices(); u++ {
			if gr.OrigID(u) == a {
				ra = u
			}
			if gr.OrigID(u) == b {
				rb = u
			}
		}
		for _, w := range gr.Neighbors(ra) {
			if w == rb {
				return true
			}
		}
		return false
	}
	if !hasEdge(g2, 0, 2) {
		t.Error("added edge missing")
	}
	if hasEdge(g2, 3, 4) {
		t.Error("removed edge still present")
	}
}

func TestApplyEditsReweight(t *testing.T) {
	g := small(t)
	g2, err := ApplyEdits(g, Edit{SetWeights: map[int32]float64{2: 100}})
	if err != nil {
		t.Fatal(err)
	}
	// Vertex 2 had the lowest weight; now it must rank first.
	if g2.OrigID(0) != 2 || g2.Weight(0) != 100 {
		t.Errorf("rank 0 = vertex %d weight %v, want vertex 2 weight 100", g2.OrigID(0), g2.Weight(0))
	}
	if g2.NumEdges() != g.NumEdges() {
		t.Error("reweight changed the edge set")
	}
}

func TestApplyEditsRemoveDuplicatesAndReversed(t *testing.T) {
	g := small(t)
	// Removing an edge given in reversed orientation must still work.
	g2, err := ApplyEdits(g, Edit{RemoveEdges: [][2]int32{{1, 0}}})
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges()-1 {
		t.Errorf("edges = %d, want %d", g2.NumEdges(), g.NumEdges()-1)
	}
}

func TestApplyEditsErrors(t *testing.T) {
	g := small(t)
	if _, err := ApplyEdits(g, Edit{AddEdges: [][2]int32{{0, 99}}}); err == nil {
		t.Error("edge to unknown vertex: want error")
	}
	if _, err := ApplyEdits(g, Edit{SetWeights: map[int32]float64{99: 1}}); err == nil {
		t.Error("reweighting unknown vertex: want error")
	}
	// Empty edit is a no-op clone.
	g2, err := ApplyEdits(g, Edit{})
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() || g2.NumVertices() != g.NumVertices() {
		t.Error("empty edit changed the graph")
	}
}
