package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// binMagic identifies the binary graph format written by WriteBinary.
const binMagic = uint32(0x1C0FFEE1)

// WriteBinary serializes g in a compact little-endian binary format that
// preserves the rank order, weights and adjacency exactly.
func WriteBinary(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	le := binary.LittleEndian
	var hdr [20]byte
	le.PutUint32(hdr[0:], binMagic)
	le.PutUint64(hdr[4:], uint64(g.n))
	le.PutUint64(hdr[12:], uint64(g.m))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var buf [8]byte
	for u := 0; u < g.n; u++ {
		le.PutUint64(buf[:], math.Float64bits(g.weights[u]))
		if _, err := bw.Write(buf[:]); err != nil {
			return err
		}
	}
	for u := 0; u < g.n; u++ {
		le.PutUint32(buf[:4], uint32(g.OrigID(int32(u))))
		if _, err := bw.Write(buf[:4]); err != nil {
			return err
		}
	}
	for u := 0; u < g.n; u++ {
		le.PutUint32(buf[:4], uint32(g.upDeg[u]))
		if _, err := bw.Write(buf[:4]); err != nil {
			return err
		}
	}
	for u := int32(0); int(u) < g.n; u++ {
		for _, v := range g.UpNeighbors(u) {
			le.PutUint32(buf[:4], uint32(v))
			if _, err := bw.Write(buf[:4]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadBinary parses the format produced by WriteBinary and reconstructs the
// full CSR (both adjacency directions) from the stored up-edges.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	le := binary.LittleEndian
	var hdr [20]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("graph: reading binary header: %w", err)
	}
	if le.Uint32(hdr[0:]) != binMagic {
		return nil, fmt.Errorf("graph: bad magic %#x in binary graph", le.Uint32(hdr[0:]))
	}
	n := int(le.Uint64(hdr[4:]))
	m := int64(le.Uint64(hdr[12:]))
	if n < 0 || m < 0 || int64(n) > math.MaxInt32 {
		return nil, fmt.Errorf("graph: implausible binary header n=%d m=%d", n, m)
	}
	// Arrays grow by append while reading, so a corrupt header claiming
	// billions of vertices fails at EOF instead of attempting a
	// multi-gigabyte allocation up front.
	g := &Graph{n: n, m: m}
	var buf [8]byte
	for u := 0; u < n; u++ {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return nil, fmt.Errorf("graph: reading weights: %w", err)
		}
		g.weights = append(g.weights, math.Float64frombits(le.Uint64(buf[:])))
	}
	for u := 0; u < n; u++ {
		if _, err := io.ReadFull(br, buf[:4]); err != nil {
			return nil, fmt.Errorf("graph: reading original IDs: %w", err)
		}
		g.origID = append(g.origID, int32(le.Uint32(buf[:4])))
	}
	g.upPrefix = append(g.upPrefix, 0)
	for u := 0; u < n; u++ {
		if _, err := io.ReadFull(br, buf[:4]); err != nil {
			return nil, fmt.Errorf("graph: reading up-degrees: %w", err)
		}
		d := int32(le.Uint32(buf[:4]))
		if d < 0 || int64(d) > m {
			return nil, fmt.Errorf("graph: implausible up-degree %d of vertex %d", d, u)
		}
		g.upDeg = append(g.upDeg, d)
		g.upPrefix = append(g.upPrefix, g.upPrefix[u]+int64(d))
	}
	if g.upPrefix[n] != m {
		return nil, fmt.Errorf("graph: up-degrees sum to %d edges, header says %d", g.upPrefix[n], m)
	}

	// Read up-edges, then mirror them to obtain full adjacency. The
	// capacity hint is bounded so a lying header cannot force a huge
	// allocation before the stream runs dry.
	type edge struct{ lo, hi int32 }
	es := make([]edge, 0, minI64(m, 1<<20))
	for u := int32(0); int(u) < n; u++ {
		for i := int32(0); i < g.upDeg[u]; i++ {
			if _, err := io.ReadFull(br, buf[:4]); err != nil {
				return nil, fmt.Errorf("graph: reading adjacency: %w", err)
			}
			v := int32(le.Uint32(buf[:4]))
			if v < 0 || v >= u {
				return nil, fmt.Errorf("graph: up-neighbor %d of vertex %d is not an up-edge", v, u)
			}
			es = append(es, edge{v, u})
		}
	}
	deg := make([]int64, n)
	for _, e := range es {
		deg[e.lo]++
		deg[e.hi]++
	}
	g.off = make([]int64, n+1)
	for u := 0; u < n; u++ {
		g.off[u+1] = g.off[u] + deg[u]
	}
	g.adj = make([]int32, 2*m)
	fill := make([]int64, n)
	copy(fill, g.off[:n])
	// Up-edges are stored grouped by the higher-rank endpoint in ascending
	// order, so a two-pass fill keeps every row sorted: first the lo->hi
	// direction (hi ascending per lo), then hi->lo. To keep rows strictly
	// ascending we instead insert in rank order of the stored neighbor.
	for _, e := range es {
		g.adj[fill[e.hi]] = e.lo // up-neighbors of hi, ascending since file order is
		fill[e.hi]++
	}
	for _, e := range es {
		g.adj[fill[e.lo]] = e.hi
		fill[e.lo]++
	}
	// Rows are now up-neighbors (sorted, if file order was sorted) followed
	// by down-neighbors (sorted by construction order of es, which ascends
	// in hi). Validate sortedness cheaply and fix if the file interleaved.
	if err := g.sortRows(); err != nil {
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("graph: binary file inconsistent: %w", err)
	}
	return g, nil
}

func (g *Graph) sortRows() error {
	for u := 0; u < g.n; u++ {
		row := g.adj[g.off[u]:g.off[u+1]]
		for i := 1; i < len(row); i++ {
			if row[i-1] >= row[i] {
				insertionSortInt32(row)
				break
			}
		}
	}
	return nil
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func insertionSortInt32(a []int32) {
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j-1] > a[j]; j-- {
			a[j-1], a[j] = a[j], a[j-1]
		}
	}
}
