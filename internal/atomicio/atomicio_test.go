package atomicio

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestWriteFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.txt")
	for i, content := range []string{"first", "second overwrite"} {
		err := WriteFile(path, func(f *os.File) error {
			_, err := f.WriteString(content)
			return err
		})
		if err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != content {
			t.Fatalf("content = %q, want %q", got, content)
		}
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if perm := info.Mode().Perm(); perm != 0o644 {
		t.Errorf("permissions = %o, want 644 (CreateTemp's 0600 must not leak through)", perm)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("directory holds %d entries, temp files leaked", len(entries))
	}
}

// TestWriteFileBareRelativePath: the temp file must be a sibling of the
// destination even for a bare filename, or the final rename could cross
// filesystems (os.CreateTemp with dir "" falls back to os.TempDir).
func TestWriteFileBareRelativePath(t *testing.T) {
	orig, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(t.TempDir()); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := os.Chdir(orig); err != nil {
			t.Fatal(err)
		}
	}()
	if err := WriteFile("bare.txt", func(f *os.File) error {
		_, err := f.WriteString("x")
		return err
	}); err != nil {
		t.Fatalf("bare relative path: %v", err)
	}
	if _, err := os.Stat("bare.txt"); err != nil {
		t.Fatal(err)
	}
}

func TestWriteFileErrorCleansUp(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.txt")
	boom := errors.New("boom")
	if err := WriteFile(path, func(*os.File) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Error("destination exists after failed write")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Errorf("%d temp files left after failed write", len(entries))
	}
}
