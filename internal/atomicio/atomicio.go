// Package atomicio provides crash-safe file replacement: content is
// written to a temporary sibling and renamed over the destination only
// after a successful close, so a reader (or a server loading the file)
// never observes a partial write. SaveGraph, SaveIndex, and the
// semi-external edge-file writer all persist through it.
package atomicio

import (
	"fmt"
	"os"
	"path/filepath"
)

// WriteFile writes the output of write to path atomically. The temporary
// file is created in path's own directory — never os.TempDir, so the final
// rename cannot cross filesystems even for bare relative paths — and is
// given 0644 permissions (modulo umask via Chmod semantics) before the
// rename, matching what a plain os.Create would have produced. On any
// error the temporary file is removed and the destination is untouched.
func WriteFile(path string, write func(*os.File) error) (err error) {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	f, err := os.CreateTemp(dir, base+".tmp-*")
	if err != nil {
		return fmt.Errorf("creating temporary file for %s: %w", path, err)
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	if err = write(f); err != nil {
		return err
	}
	// os.CreateTemp hardcodes 0600; restore the permissions a direct
	// os.Create would have given so other service users can read the file.
	if err = f.Chmod(0o644); err != nil {
		return fmt.Errorf("preparing %s: %w", path, err)
	}
	if err = f.Close(); err != nil {
		return fmt.Errorf("writing %s: %w", path, err)
	}
	if err = os.Rename(tmp, path); err != nil {
		return fmt.Errorf("replacing %s: %w", path, err)
	}
	return nil
}
