package truss

import (
	"fmt"
	"testing"

	"influcomm/internal/gen"
)

func TestStreamMatchesNaive(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		g := gen.Random(50, 9, seed)
		ix := NewIndex(g)
		for _, gamma := range []int32{3, 4} {
			want := NaiveCommunities(g, gamma)
			var got []*Community
			if _, err := Stream(ix, gamma, func(c *Community) bool {
				got = append(got, c)
				return true
			}); err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("seed %d γ=%d: streamed %d communities, want %d", seed, gamma, len(got), len(want))
			}
			for i := range want {
				a := fmt.Sprintf("%d:%v", got[i].Keynode(), got[i].Vertices())
				b := fmt.Sprintf("%d:%v", want[i].Keynode, want[i].Vertices)
				if a != b {
					t.Fatalf("seed %d γ=%d: community %d mismatch\n got %s\nwant %s", seed, gamma, i, a, b)
				}
			}
		}
	}
}

func TestStreamEarlyStop(t *testing.T) {
	g := gen.Random(60, 10, 3)
	ix := NewIndex(g)
	all := NaiveCommunities(g, 3)
	if len(all) < 3 {
		t.Skip("fixture too sparse")
	}
	var got []*Community
	p, err := Stream(ix, 3, func(c *Community) bool {
		got = append(got, c)
		return len(got) < 2
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("stopped after %d communities, want 2", len(got))
	}
	for i := 0; i < 2; i++ {
		if got[i].Keynode() != all[i].Keynode {
			t.Errorf("community %d keynode = %d, want %d", i, got[i].Keynode(), all[i].Keynode)
		}
	}
	if p > g.NumVertices() {
		t.Errorf("prefix %d beyond graph", p)
	}
}

func TestStreamValidation(t *testing.T) {
	if _, err := Stream(nil, 3, nil); err == nil {
		t.Error("nil index: want error")
	}
	g := gen.Random(10, 2, 1)
	if _, err := Stream(NewIndex(g), 1, func(*Community) bool { return true }); err == nil {
		t.Error("gamma=1: want error")
	}
}

func TestCountICCFromSplit(t *testing.T) {
	g := gen.Random(40, 8, 5)
	ix := NewIndex(g)
	gamma := int32(4)
	n := g.NumVertices()
	for cut := 1; cut < n; cut += 7 {
		full := CountICC(ix, n, gamma)
		head := CountICCFrom(ix, n, cut, gamma)
		tail := CountICC(ix, cut, gamma)
		if len(head.Keys)+len(tail.Keys) != len(full.Keys) {
			t.Fatalf("cut %d: %d + %d keys != %d", cut, len(head.Keys), len(tail.Keys), len(full.Keys))
		}
		for i, k := range head.Keys {
			if full.Keys[i] != k {
				t.Fatalf("cut %d: head key %d differs", cut, i)
			}
		}
	}
}
