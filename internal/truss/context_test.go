package truss

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestLocalSearchCtxExpiredDeadline(t *testing.T) {
	ix := NewIndex(clique(t, 12))
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := LocalSearchCtx(ctx, ix, 3, 4); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	// Validation still beats the context check.
	if _, err := LocalSearchCtx(ctx, ix, 0, 4); errors.Is(err, context.DeadlineExceeded) {
		t.Fatal("invalid k should fail validation, not report the deadline")
	}
}

func TestLocalSearchCtxMatchesLocalSearch(t *testing.T) {
	ix := NewIndex(clique(t, 12))
	want, err := LocalSearch(ix, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	got, err := LocalSearchCtx(context.Background(), ix, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Communities) != len(want.Communities) || got.Stats != want.Stats {
		t.Fatalf("ctx variant diverges: %d communities %+v, want %d %+v",
			len(got.Communities), got.Stats, len(want.Communities), want.Stats)
	}
	for i := range want.Communities {
		if got.Communities[i].Influence() != want.Communities[i].Influence() {
			t.Errorf("community %d: influence %v, want %v",
				i, got.Communities[i].Influence(), want.Communities[i].Influence())
		}
	}
}

// TestCountICCCtxCancelDuringPeel drives the counting subroutine with a
// cancelled context on a prefix whose edge count spans several poll
// intervals: the cancellation must be observed inside the support/peel
// phase — the dominant cost of a truss round — not only between keynodes.
func TestCountICCCtxCancelDuringPeel(t *testing.T) {
	n := 150 // K150: 11175 edges > 2 poll intervals
	ix := NewIndex(clique(t, n))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := countICCFromCtx(ctx, ix, n, 0, 4); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
}

// TestStreamCtxCancelMidQuery cancels from inside the first yield; the
// stream must stop with ctx.Err() instead of draining the whole graph.
func TestStreamCtxCancelMidQuery(t *testing.T) {
	ix := NewIndex(clique(t, 30))
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	yields := 0
	_, err := StreamCtx(ctx, ix, 4, func(*Community) bool {
		yields++
		cancel()
		return true
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
	if yields == 0 {
		t.Fatal("stream never reached a yield")
	}
}
