package truss

import (
	"context"
	"errors"
	"fmt"
)

// CountICCFrom is the truss ConstructCVS (the Algorithm 5 counterpart for
// the truss measure): it runs CountICC on the prefix [0, p) but stops
// before processing any keynode with rank < stopBefore, producing only the
// keynodes new to this round. The suffix property of §4 carries over to
// the truss measure (Property-II of §5.2), which the property tests check.
func CountICCFrom(ix *Index, p, stopBefore int, gamma int32) *CVS {
	c, _ := countICCFromCtx(context.Background(), ix, p, stopBefore, gamma)
	return c
}

// ctxCheckInterval is the number of work units (support computations,
// removed edges, keynode iterations) between two context polls inside a
// CountICC run.
const ctxCheckInterval = 4096

// countICCFromCtx is CountICCFrom under a context: the runner polls it
// throughout support initialization, truss peeling, and keynode removal —
// the peel is the dominant cost, so a cancelled context aborts the run
// promptly with ctx.Err().
func countICCFromCtx(ctx context.Context, ix *Index, p, stopBefore int, gamma int32) (*CVS, error) {
	r := newRunner(ctx, ix, p, gamma)
	r.peelTruss()
	if r.err != nil {
		return nil, r.err
	}
	c := &CVS{P: p, KeyPos: []int32{0}}
	for u := int32(p) - 1; u >= int32(stopBefore); u-- {
		if !r.tick(1) {
			return nil, r.err
		}
		if r.vdeg[u] == 0 {
			continue
		}
		c.Keys = append(c.Keys, u)
		r.removeVertex(u, &c.Seq)
		if r.err != nil {
			return nil, r.err
		}
		c.KeyPos = append(c.KeyPos, int32(len(c.Seq)))
	}
	return c, nil
}

// EnumState is the persistent cross-round state of progressive truss
// enumeration, mirroring core.EnumState.
type EnumState struct {
	ix     *Index
	vgroup []int32
	parent []int32
	comms  []*Community
}

// NewEnumState returns an EnumState for the indexed graph.
func NewEnumState(ix *Index) *EnumState {
	s := &EnumState{ix: ix, vgroup: make([]int32, ix.g.NumVertices())}
	for i := range s.vgroup {
		s.vgroup[i] = -1
	}
	return s
}

func (s *EnumState) find(j int32) int32 {
	for s.parent[j] != j {
		s.parent[j] = s.parent[s.parent[j]]
		j = s.parent[j]
	}
	return j
}

// Process enumerates the communities of one round's CVS in decreasing
// influence order, linking them to communities from earlier rounds.
func (s *EnumState) Process(c *CVS) []*Community {
	out := make([]*Community, 0, len(c.Keys))
	for j := len(c.Keys) - 1; j >= 0; j-- {
		u := c.Keys[j]
		gid := int32(len(s.comms))
		s.parent = append(s.parent, gid)
		com := &Community{keynode: u, influence: s.ix.g.Weight(u)}
		claim := func(w int32) {
			if s.vgroup[w] < 0 {
				s.vgroup[w] = gid
				com.group = append(com.group, w)
				com.size++
				return
			}
			r := s.find(s.vgroup[w])
			if r == gid {
				return
			}
			child := s.comms[r]
			com.children = append(com.children, child)
			com.size += child.size
			s.parent[r] = gid
		}
		for _, e := range c.Group(j) {
			lo, hi := s.ix.Endpoints(e)
			claim(lo)
			claim(hi)
		}
		s.comms = append(s.comms, com)
		out = append(out, com)
	}
	return out
}

// Stream progressively reports influential γ-truss communities in
// decreasing influence order (the §4 progressive technique applied to the
// §5.2 truss measure). yield returning false stops the search; the number
// of vertices of the largest prefix processed is returned.
func Stream(ix *Index, gamma int32, yield func(*Community) bool) (int, error) {
	return StreamCtx(context.Background(), ix, gamma, yield)
}

// StreamCtx is Stream under a context: cancellation is observed at round
// boundaries and inside CountICC, stopping the search promptly.
func StreamCtx(ctx context.Context, ix *Index, gamma int32, yield func(*Community) bool) (int, error) {
	if ix == nil || ix.g == nil {
		return 0, errors.New("truss: nil index")
	}
	if gamma < 2 {
		return 0, fmt.Errorf("truss: gamma must be >= 2, got %d", gamma)
	}
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	g := ix.g
	n := g.NumVertices()
	p := 1 + int(gamma)
	if p > n {
		p = n
	}
	prev := 0
	st := NewEnumState(ix)
	for {
		cvs, err := countICCFromCtx(ctx, ix, p, prev, gamma)
		if err != nil {
			return p, err
		}
		for _, c := range st.Process(cvs) {
			if !yield(c) {
				return p, nil
			}
		}
		if p == n {
			return p, nil
		}
		if err := ctx.Err(); err != nil {
			return p, err
		}
		prev = p
		next := g.PrefixForSize(2 * g.PrefixSize(p))
		if next <= p {
			next = p + 1
		}
		if next > n {
			next = n
		}
		p = next
	}
}
