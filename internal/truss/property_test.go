package truss

import (
	"testing"
	"testing/quick"

	"influcomm/internal/gen"
	"influcomm/internal/graph"
)

// TestTrussCountMonotonicityProperty is the truss analogue of Lemma 3.1:
// the community count is non-decreasing as the prefix grows (Property-I of
// §5.2, the precondition of the generalized framework).
func TestTrussCountMonotonicityProperty(t *testing.T) {
	f := func(seed uint64, nRaw, gammaRaw uint8) bool {
		n := int(nRaw%30) + 10
		g := gen.Random(n, 6, seed|1)
		gamma := int32(gammaRaw%3) + 3
		ix := NewIndex(g)
		prev := 0
		for p := 0; p <= g.NumVertices(); p += 3 {
			cnt := CountICC(ix, p, gamma).Count()
			if cnt < prev {
				return false
			}
			prev = cnt
		}
		return CountICC(ix, g.NumVertices(), gamma).Count() >= prev
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestTrussCohesionProperty checks the guarantees a γ-truss community's
// vertex set implies. (A truss community is an *edge* subgraph — the
// vertex-induced closure may contain additional low-support edges — so the
// checkable vertex-level consequences are: every member touches a truss
// edge and therefore has at least γ−1 neighbors inside the community, the
// set is connected, and the influence is the minimum member weight. The
// edge-level support invariant is cross-validated against the naive
// reference in TestTrussAgainstNaive.)
func TestTrussCohesionProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%30) + 15
		g := gen.Random(n, 8, seed|1)
		gamma := int32(4)
		ix := NewIndex(g)
		cvs := CountICC(ix, g.NumVertices(), gamma)
		for _, c := range EnumICC(ix, cvs, -1) {
			vs := c.Vertices()
			in := map[int32]bool{}
			for _, v := range vs {
				in[v] = true
			}
			// A vertex with an alive edge of support >= γ-2 has >= γ-1
			// alive neighbors, all inside the community.
			for _, v := range vs {
				deg := int32(0)
				for _, w := range g.Neighbors(v) {
					if in[w] {
						deg++
					}
				}
				if deg < gamma-1 {
					return false
				}
			}
			if !connectedSet(g, vs) {
				return false
			}
			// Influence is the minimum member weight.
			for _, v := range vs {
				if g.Weight(v) < c.Influence() {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func connectedSet(g *graph.Graph, vs []int32) bool {
	if len(vs) == 0 {
		return true
	}
	in := map[int32]bool{}
	for _, v := range vs {
		in[v] = true
	}
	seen := map[int32]bool{vs[0]: true}
	stack := []int32{vs[0]}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range g.Neighbors(v) {
			if in[w] && !seen[w] {
				seen[w] = true
				stack = append(stack, w)
			}
		}
	}
	return len(seen) == len(vs)
}

// TestTrussNestingProperty: truss communities sharing a vertex are nested
// (the structural fact EnumICC's vertex-linking relies on).
func TestTrussNestingProperty(t *testing.T) {
	f := func(seed uint64) bool {
		g := gen.Random(40, 8, seed|1)
		all := NaiveCommunities(g, 4)
		sets := make([]map[int32]bool, len(all))
		for i, c := range all {
			sets[i] = map[int32]bool{}
			for _, v := range c.Vertices {
				sets[i][v] = true
			}
		}
		for i := range all {
			for j := i + 1; j < len(all); j++ {
				inter, small := 0, len(sets[j])
				if len(sets[i]) < small {
					small = len(sets[i])
				}
				for v := range sets[i] {
					if sets[j][v] {
						inter++
					}
				}
				if inter != 0 && inter != small {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestTrussSuffixProperty is the §4 suffix property for the truss measure:
// keys of a smaller prefix are a suffix of keys of a larger prefix
// (Property-II underlies it).
func TestTrussSuffixProperty(t *testing.T) {
	f := func(seed uint64, cut uint8) bool {
		g := gen.Random(40, 8, seed|1)
		n := g.NumVertices()
		p1 := int(cut)%n + 1
		ix := NewIndex(g)
		small := CountICC(ix, p1, 4)
		big := CountICC(ix, n, 4)
		if len(small.Keys) > len(big.Keys) {
			return false
		}
		off := len(big.Keys) - len(small.Keys)
		for i, k := range small.Keys {
			if big.Keys[off+i] != k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
