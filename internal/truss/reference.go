package truss

import (
	"context"
	"sort"

	"influcomm/internal/graph"
)

// NaiveCommunity is a materialized influential γ-truss community produced
// by the definitional reference.
type NaiveCommunity struct {
	Keynode   int32
	Influence float64
	Vertices  []int32
}

// NaiveCommunities enumerates every influential γ-truss community of g
// straight from Definition 5.2: vertex u is a keynode iff it retains an
// edge in the γ-truss of the prefix [0, u], and its community is then u's
// connected component over the truss's surviving edges. O(n · m^1.5);
// test oracle only.
func NaiveCommunities(g *graph.Graph, gamma int32) []NaiveCommunity {
	ix := NewIndex(g)
	n := g.NumVertices()
	var out []NaiveCommunity
	for u := int32(0); int(u) < n; u++ {
		p := int(u) + 1
		r := newRunner(context.Background(), ix, p, gamma)
		r.peelTruss()
		if r.vdeg[u] == 0 {
			continue
		}
		comp := aliveComponent(r, u)
		sort.Slice(comp, func(i, j int) bool { return comp[i] < comp[j] })
		out = append(out, NaiveCommunity{Keynode: u, Influence: g.Weight(u), Vertices: comp})
	}
	return out
}

// aliveComponent BFS-traverses from u over alive edges only.
func aliveComponent(r *runner, u int32) []int32 {
	seen := map[int32]bool{u: true}
	comp := []int32{u}
	for i := 0; i < len(comp); i++ {
		v := comp[i]
		for _, w := range r.ix.g.NeighborsWithin(v, r.p) {
			if seen[w] {
				continue
			}
			e := r.ix.EdgeID(v, w)
			if e < 0 || !r.alive[e] {
				continue
			}
			seen[w] = true
			comp = append(comp, w)
		}
	}
	return comp
}

// NaiveTopK returns the k highest-influence truss communities in decreasing
// influence order.
func NaiveTopK(g *graph.Graph, k int, gamma int32) []NaiveCommunity {
	all := NaiveCommunities(g, gamma)
	if len(all) > k {
		all = all[:k]
	}
	return all
}
