package truss

import (
	"context"
	"errors"
	"fmt"
	"sort"
)

// Community is one influential γ-truss community, a node of the containment
// forest exactly like core.Community (truss communities that share a vertex
// are nested, so the same forest representation applies).
type Community struct {
	keynode   int32
	influence float64
	group     []int32 // vertices first claimed by this community
	children  []*Community
	size      int
}

// Keynode returns the community's minimum-weight vertex.
func (c *Community) Keynode() int32 { return c.keynode }

// Influence returns f(g), the minimum vertex weight.
func (c *Community) Influence() float64 { return c.influence }

// Size returns the total number of vertices including nested children.
func (c *Community) Size() int { return c.size }

// Children returns the directly nested communities.
func (c *Community) Children() []*Community { return c.children }

// Vertices materializes the community's vertex set in ascending rank order.
func (c *Community) Vertices() []int32 {
	out := make([]int32, 0, c.size)
	var walk func(x *Community)
	walk = func(x *Community) {
		out = append(out, x.group...)
		for _, ch := range x.children {
			walk(ch)
		}
	}
	walk(c)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// CVS is the edge-sequence output of CountICC (Algorithm 7): keynodes in
// increasing weight order and the removed-edge sequence partitioned into one
// group per keynode.
type CVS struct {
	P      int
	Keys   []int32
	KeyPos []int32
	Seq    []int64 // edge IDs
}

// Count returns the number of influential γ-truss communities found.
func (c *CVS) Count() int { return len(c.Keys) }

// Group returns the edge group of keynode j.
func (c *CVS) Group(j int) []int64 { return c.Seq[c.KeyPos[j]:c.KeyPos[j+1]] }

// CountICC runs Algorithm 7 on the prefix subgraph [0, p): reduce to the
// γ-truss, then repeatedly remove the minimum-weight vertex and restore the
// γ-truss, recording keynodes and the community-aware edge sequence.
func CountICC(ix *Index, p int, gamma int32) *CVS {
	return CountICCFrom(ix, p, 0, gamma)
}

// EnumICC reconstructs the top-k influential γ-truss communities (all of
// them when k < 0) from a CountICC run, in decreasing influence order. Two
// truss communities sharing a vertex are nested (see package doc of core),
// so the EnumIC disjoint-set construction carries over with vertex sharing
// as the linking relation.
func EnumICC(ix *Index, c *CVS, k int) []*Community {
	start := 0
	if k >= 0 && len(c.Keys) > k {
		start = len(c.Keys) - k
	}
	n := ix.g.NumVertices()
	vgroup := make([]int32, n)
	for i := range vgroup {
		vgroup[i] = -1
	}
	var parent []int32
	find := func(j int32) int32 {
		for parent[j] != j {
			parent[j] = parent[parent[j]]
			j = parent[j]
		}
		return j
	}
	var comms []*Community
	out := make([]*Community, 0, len(c.Keys)-start)
	for j := len(c.Keys) - 1; j >= start; j-- {
		u := c.Keys[j]
		gid := int32(len(comms))
		parent = append(parent, gid)
		com := &Community{keynode: u, influence: ix.g.Weight(u)}
		claim := func(w int32) {
			if vgroup[w] < 0 {
				vgroup[w] = gid
				com.group = append(com.group, w)
				com.size++
				return
			}
			r := find(vgroup[w])
			if r == gid {
				return
			}
			child := comms[r]
			com.children = append(com.children, child)
			com.size += child.size
			parent[r] = gid
		}
		for _, e := range c.Group(j) {
			lo, hi := ix.Endpoints(e)
			claim(lo)
			claim(hi)
		}
		comms = append(comms, com)
		out = append(out, com)
	}
	return out
}

// Stats mirrors core.Stats for the truss algorithms.
type Stats struct {
	Rounds      int
	FinalPrefix int
	FinalSize   int64
	TotalWork   int64
	Communities int
}

// Result is the output of LocalSearch and GlobalSearch.
type Result struct {
	Communities []*Community
	Stats       Stats
}

func validate(ix *Index, k int, gamma int32) error {
	if ix == nil || ix.g == nil {
		return errors.New("truss: nil index")
	}
	if ix.g.NumVertices() == 0 {
		return errors.New("truss: empty graph")
	}
	if k < 1 {
		return fmt.Errorf("truss: k must be >= 1, got %d", k)
	}
	if gamma < 2 {
		return fmt.Errorf("truss: gamma must be >= 2, got %d", gamma)
	}
	return nil
}

// LocalSearch computes the top-k influential γ-truss communities with the
// generalized local search framework (Algorithm 6): grow the high-weight
// prefix geometrically (δ = 2) until it holds k communities, then enumerate.
func LocalSearch(ix *Index, k int, gamma int32) (*Result, error) {
	return LocalSearchCtx(context.Background(), ix, k, gamma)
}

// LocalSearchCtx is LocalSearch under a context: cancellation is observed
// at round boundaries and inside CountICC every few thousand edge removals,
// so the call returns ctx.Err() promptly once the context expires.
func LocalSearchCtx(ctx context.Context, ix *Index, k int, gamma int32) (*Result, error) {
	if err := validate(ix, k, gamma); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	g := ix.g
	n := g.NumVertices()
	p := k + int(gamma)
	if p > n {
		p = n
	}
	var st Stats
	var cvs *CVS
	for {
		var err error
		cvs, err = countICCFromCtx(ctx, ix, p, 0, gamma)
		if err != nil {
			return nil, err
		}
		st.Rounds++
		st.TotalWork += g.PrefixSize(p)
		if cvs.Count() >= k || p == n {
			st.Communities = cvs.Count()
			break
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		next := g.PrefixForSize(2 * g.PrefixSize(p))
		if next <= p {
			next = p + 1
		}
		if next > n {
			next = n
		}
		p = next
	}
	st.FinalPrefix = p
	st.FinalSize = g.PrefixSize(p)
	return &Result{Communities: EnumICC(ix, cvs, k), Stats: st}, nil
}

// GlobalSearch is the baseline of Eval-VIII: CountICC over the entire graph
// followed by EnumICC for the top-k.
func GlobalSearch(ix *Index, k int, gamma int32) (*Result, error) {
	if err := validate(ix, k, gamma); err != nil {
		return nil, err
	}
	n := ix.g.NumVertices()
	cvs := CountICC(ix, n, gamma)
	st := Stats{
		Rounds:      1,
		FinalPrefix: n,
		FinalSize:   ix.g.Size(),
		TotalWork:   ix.g.Size(),
		Communities: cvs.Count(),
	}
	return &Result{Communities: EnumICC(ix, cvs, k), Stats: st}, nil
}
