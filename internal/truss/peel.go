package truss

import (
	"context"
	"sort"
)

// runner holds the mutable edge state of one CountICC execution on a prefix
// subgraph. It is created per run and not safe for concurrent use.
type runner struct {
	ix     *Index
	gamma  int32
	p      int   // prefix length
	me     int64 // number of edges in the prefix
	alive  []bool
	queued []bool // scheduled for removal (may still be alive until popped)
	supp   []int32
	vdeg   []int32 // alive incident edges per vertex < p
	queue  []int64
	thresh int32 // γ-2 triangles per edge

	// Cancellation: ctx is polled every ctxCheckInterval work units; once
	// it fires, err is sticky and the peeling loops stop early.
	ctx    context.Context
	budget int
	err    error
}

func newRunner(ctx context.Context, ix *Index, p int, gamma int32) *runner {
	r := &runner{
		ix:     ix,
		gamma:  gamma,
		p:      p,
		me:     ix.g.PrefixEdges(p),
		thresh: gamma - 2,
		ctx:    ctx,
		budget: ctxCheckInterval,
	}
	r.alive = make([]bool, r.me)
	r.queued = make([]bool, r.me)
	r.supp = make([]int32, r.me)
	r.vdeg = make([]int32, p)
	return r
}

// tick consumes n work units and polls the context when the budget is
// spent; it reports whether the run may continue.
func (r *runner) tick(n int) bool {
	if r.err != nil {
		return false
	}
	r.budget -= n
	if r.budget > 0 {
		return true
	}
	r.budget = ctxCheckInterval
	if err := r.ctx.Err(); err != nil {
		r.err = err
		return false
	}
	return true
}

// commonNeighbors calls fn(c) for every common neighbor c of a and b within
// the prefix, iterating the smaller adjacency row and binary-searching the
// larger. Dead edges are not filtered here; callers check liveness.
func (r *runner) commonNeighbors(a, b int32, fn func(c int32)) {
	ra := r.ix.g.NeighborsWithin(a, r.p)
	rb := r.ix.g.NeighborsWithin(b, r.p)
	if len(ra) > len(rb) {
		ra, rb = rb, ra
	}
	for _, c := range ra {
		j := sort.Search(len(rb), func(i int) bool { return rb[i] >= c })
		if j < len(rb) && rb[j] == c {
			fn(c)
		}
	}
}

// initSupports computes the triangle support of every prefix edge. This is
// the dominant cost of a truss round, so it polls the context per edge.
func (r *runner) initSupports() {
	for e := int64(0); e < r.me; e++ {
		r.alive[e] = true
	}
	for e := int64(0); e < r.me; e++ {
		if !r.tick(1) {
			return
		}
		a, b := r.ix.elo[e], r.ix.ehi[e]
		cnt := int32(0)
		r.commonNeighbors(a, b, func(int32) { cnt++ })
		r.supp[e] = cnt
	}
}

// peelTruss reduces the prefix to its γ-truss: it kills every edge whose
// support is below γ−2 and cascades, then tallies per-vertex alive degrees.
func (r *runner) peelTruss() {
	r.initSupports()
	if r.err != nil {
		return
	}
	q := r.queue[:0]
	for e := int64(0); e < r.me; e++ {
		if r.supp[e] < r.thresh {
			r.queued[e] = true
			q = append(q, e)
		}
	}
	r.queue = q
	r.drain(nil)
	for e := int64(0); e < r.me; e++ {
		if r.alive[e] {
			r.vdeg[r.ix.elo[e]]++
			r.vdeg[r.ix.ehi[e]]++
		}
	}
}

// drain processes the pending removal queue. An edge dies when popped; at
// that moment every triangle it still forms with two alive edges is
// destroyed, so both partners lose one support. (Killing at pop rather than
// at enqueue is what guarantees each destroyed triangle decrements each
// surviving edge exactly once.) If seq is non-nil every removed edge is
// appended to it — the edge cvs of Algorithm 7 — and per-vertex alive
// degrees are maintained.
func (r *runner) drain(seq *[]int64) {
	q := r.queue
	for len(q) > 0 {
		e := q[len(q)-1]
		q = q[:len(q)-1]
		if !r.alive[e] {
			continue
		}
		if !r.tick(1) {
			break
		}
		r.alive[e] = false
		a, b := r.ix.elo[e], r.ix.ehi[e]
		if seq != nil {
			*seq = append(*seq, e)
			r.vdeg[a]--
			r.vdeg[b]--
		}
		r.commonNeighbors(a, b, func(c int32) {
			eac := r.ix.EdgeID(a, c)
			ebc := r.ix.EdgeID(b, c)
			if eac < 0 || ebc < 0 || !r.alive[eac] || !r.alive[ebc] {
				return
			}
			r.supp[eac]--
			if r.supp[eac] < r.thresh && !r.queued[eac] {
				r.queued[eac] = true
				q = append(q, eac)
			}
			r.supp[ebc]--
			if r.supp[ebc] < r.thresh && !r.queued[ebc] {
				r.queued[ebc] = true
				q = append(q, ebc)
			}
		})
	}
	r.queue = q[:0]
}

// removeVertex force-removes every alive edge incident to u and cascades,
// appending removed edges to seq (Lines 7–8 of Algorithm 7).
func (r *runner) removeVertex(u int32, seq *[]int64) {
	q := r.queue[:0]
	for _, v := range r.ix.g.NeighborsWithin(u, r.p) {
		e := r.ix.EdgeID(u, v)
		if e >= 0 && r.alive[e] && !r.queued[e] {
			r.queued[e] = true
			q = append(q, e)
		}
	}
	r.queue = q
	r.drain(seq)
}
