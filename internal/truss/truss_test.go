package truss

import (
	"fmt"
	"testing"

	"influcomm/internal/gen"
	"influcomm/internal/graph"
)

// clique builds a K_n with weights 100, 99, ... so vertex i has rank i.
func clique(t testing.TB, n int) *graph.Graph {
	t.Helper()
	weights := make([]float64, n)
	for i := range weights {
		weights[i] = float64(100 - i)
	}
	var edges [][2]int32
	for i := int32(0); int(i) < n; i++ {
		for j := i + 1; int(j) < n; j++ {
			edges = append(edges, [2]int32{i, j})
		}
	}
	g, err := graph.FromEdges(weights, edges)
	if err != nil {
		t.Fatalf("building clique: %v", err)
	}
	return g
}

func TestCliqueTrussCommunities(t *testing.T) {
	// In K6, the γ-truss for γ = 4 (each edge in >= 2 triangles) of every
	// prefix K_i with i >= 4 is the whole K_i, so keynodes are vertices
	// 3..5 and communities are the nested prefixes.
	g := clique(t, 6)
	ix := NewIndex(g)
	res, err := LocalSearch(ix, 10, 4)
	if err != nil {
		t.Fatalf("LocalSearch: %v", err)
	}
	if len(res.Communities) != 3 {
		t.Fatalf("got %d communities, want 3", len(res.Communities))
	}
	for idx, c := range res.Communities {
		if want := int32(3 + idx); c.Keynode() != want {
			t.Errorf("community %d keynode = %d, want %d", idx, c.Keynode(), want)
		}
		if want := 4 + idx; c.Size() != want {
			t.Errorf("community %d size = %d, want %d", idx, c.Size(), want)
		}
	}
}

func TestEdgeID(t *testing.T) {
	g := clique(t, 5)
	ix := NewIndex(g)
	seen := map[int64]bool{}
	for a := int32(0); a < 5; a++ {
		for b := a + 1; b < 5; b++ {
			e := ix.EdgeID(a, b)
			if e < 0 || e >= g.NumEdges() {
				t.Fatalf("EdgeID(%d,%d) = %d out of range", a, b, e)
			}
			if seen[e] {
				t.Fatalf("EdgeID(%d,%d) = %d duplicated", a, b, e)
			}
			seen[e] = true
			lo, hi := ix.Endpoints(e)
			if lo != a || hi != b {
				t.Errorf("Endpoints(%d) = (%d,%d), want (%d,%d)", e, lo, hi, a, b)
			}
			if ix.EdgeID(b, a) != e {
				t.Errorf("EdgeID not symmetric for (%d,%d)", a, b)
			}
		}
	}
	if ix.EdgeID(0, 0) != -1 {
		t.Error("self loop should have no edge ID")
	}
}

func TestTrussAgainstNaive(t *testing.T) {
	for seed := uint64(1); seed <= 10; seed++ {
		g := gen.Random(40, 8, seed)
		for _, gamma := range []int32{3, 4} {
			want := NaiveCommunities(g, gamma)
			ix := NewIndex(g)
			cvs := CountICC(ix, g.NumVertices(), gamma)
			if cvs.Count() != len(want) {
				t.Fatalf("seed %d γ=%d: CountICC = %d, naive = %d", seed, gamma, cvs.Count(), len(want))
			}
			got := EnumICC(ix, cvs, -1)
			for i := range want {
				w := fmt.Sprintf("%d:%v", want[i].Keynode, want[i].Vertices)
				gk := fmt.Sprintf("%d:%v", got[i].Keynode(), got[i].Vertices())
				if w != gk {
					t.Fatalf("seed %d γ=%d: community %d mismatch\n got %s\nwant %s", seed, gamma, i, gk, w)
				}
			}
		}
	}
}

func TestLocalMatchesGlobal(t *testing.T) {
	for seed := uint64(1); seed <= 6; seed++ {
		g := gen.Random(60, 10, seed)
		ix := NewIndex(g)
		for _, gamma := range []int32{3, 4} {
			for _, k := range []int{1, 2, 5} {
				glob, err := GlobalSearch(ix, k, gamma)
				if err != nil {
					t.Fatalf("GlobalSearch: %v", err)
				}
				loc, err := LocalSearch(ix, k, gamma)
				if err != nil {
					t.Fatalf("LocalSearch: %v", err)
				}
				if len(glob.Communities) != len(loc.Communities) {
					t.Fatalf("seed %d k=%d γ=%d: global %d vs local %d communities",
						seed, k, gamma, len(glob.Communities), len(loc.Communities))
				}
				for i := range glob.Communities {
					a := fmt.Sprintf("%d:%v", glob.Communities[i].Keynode(), glob.Communities[i].Vertices())
					b := fmt.Sprintf("%d:%v", loc.Communities[i].Keynode(), loc.Communities[i].Vertices())
					if a != b {
						t.Fatalf("seed %d k=%d γ=%d: community %d differs\nglobal %s\nlocal  %s", seed, k, gamma, i, a, b)
					}
				}
				if loc.Stats.FinalSize > glob.Stats.FinalSize {
					t.Errorf("local search accessed more than the whole graph")
				}
			}
		}
	}
}

// TestTrussInsideCore checks the relationship the case study reports: every
// influential γ-truss community is contained in some influential
// (γ-1)-community with at most the same influence (the γ-truss is a
// subgraph of the (γ-1)-core).
func TestTrussInsideCore(t *testing.T) {
	g := gen.Random(50, 9, 99)
	gamma := int32(4)
	trussComms := NaiveCommunities(g, gamma)
	if len(trussComms) == 0 {
		t.Skip("no truss communities in fixture")
	}
	// A γ-truss has minimum degree >= γ-1, so each truss community must be
	// inside the (γ-1)-core of its own prefix.
	for _, tc := range trussComms {
		in := map[int32]bool{}
		for _, v := range tc.Vertices {
			in[v] = true
		}
		for _, v := range tc.Vertices {
			deg := 0
			for _, w := range g.Neighbors(v) {
				if in[w] {
					deg++
				}
			}
			if int32(deg) < gamma-1 {
				t.Fatalf("truss community of keynode %d has vertex %d with degree %d < γ-1", tc.Keynode, v, deg)
			}
		}
	}
}

func TestTrussValidation(t *testing.T) {
	g := clique(t, 5)
	ix := NewIndex(g)
	if _, err := LocalSearch(nil, 1, 3); err == nil {
		t.Error("nil index: want error")
	}
	if _, err := LocalSearch(ix, 0, 3); err == nil {
		t.Error("k=0: want error")
	}
	if _, err := LocalSearch(ix, 1, 1); err == nil {
		t.Error("gamma=1: want error")
	}
	if _, err := GlobalSearch(ix, 0, 3); err == nil {
		t.Error("global k=0: want error")
	}
}
