// Package truss implements the paper's extension of the local search
// framework to the k-truss cohesiveness measure (§5.2): truss decomposition
// of prefix subgraphs, the CountICC / EnumICC subroutines (Algorithm 7) for
// influential γ-truss communities, and the LocalSearch-Truss /
// GlobalSearch-Truss algorithms compared in Eval-VIII (Figure 19).
//
// A graph has cohesiveness γ under the truss measure when every edge
// participates in at least γ−2 triangles.
package truss

import (
	"sort"

	"influcomm/internal/graph"
)

// Index assigns every undirected edge of a graph a dense ID grouped by the
// edge's lower-weight (higher-rank) endpoint in ascending rank order. With
// that numbering the edges of the prefix subgraph [0, p) are exactly the
// IDs [0, g.PrefixEdges(p)) — the truss analogue of the prefix property the
// core package relies on.
type Index struct {
	g   *graph.Graph
	elo []int32 // higher-weight endpoint (smaller rank) per edge ID
	ehi []int32 // lower-weight endpoint (larger rank) per edge ID
}

// NewIndex builds the edge index of g in O(m).
func NewIndex(g *graph.Graph) *Index {
	m := g.NumEdges()
	ix := &Index{g: g, elo: make([]int32, m), ehi: make([]int32, m)}
	for u := int32(0); int(u) < g.NumVertices(); u++ {
		base := g.PrefixEdges(int(u))
		for i, v := range g.UpNeighbors(u) {
			ix.elo[base+int64(i)] = v
			ix.ehi[base+int64(i)] = u
		}
	}
	return ix
}

// Graph returns the indexed graph.
func (ix *Index) Graph() *graph.Graph { return ix.g }

// Endpoints returns the two endpoints of edge e, higher-weight first.
func (ix *Index) Endpoints(e int64) (lo, hi int32) { return ix.elo[e], ix.ehi[e] }

// EdgeID returns the ID of edge {a, b}, or -1 when absent. O(log deg).
func (ix *Index) EdgeID(a, b int32) int64 {
	if a == b {
		return -1
	}
	if a > b {
		a, b = b, a
	}
	row := ix.g.UpNeighbors(b)
	i := sort.Search(len(row), func(i int) bool { return row[i] >= a })
	if i == len(row) || row[i] != a {
		return -1
	}
	return ix.g.PrefixEdges(int(b)) + int64(i)
}
