package cluster

import (
	"context"
	"encoding/json"
	"io"
	"math/rand/v2"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Resilience defaults. They apply when the corresponding option is not
// given (breaker, shard timeout) or given a non-positive knob that has
// a documented fallback.
const (
	// DefaultShardTimeout bounds a shard attempt when WithShardTimeout
	// is not used: a black-holed replica costs at most this long before
	// failover, instead of hanging the gather until client disconnect.
	DefaultShardTimeout = 30 * time.Second
	// DefaultBreakerThreshold is the consecutive-failure count that
	// opens a replica's circuit breaker.
	DefaultBreakerThreshold = 5
	// DefaultBreakerCooldown is how long an open breaker blocks
	// attempts before the next trial is admitted.
	DefaultBreakerCooldown = 5 * time.Second
	// DefaultProbeTimeout bounds one health probe.
	DefaultProbeTimeout = time.Second
	// DefaultOpenRetries is how many extra jittered-backoff passes over
	// a shard's replica list the coordinator makes at open time before
	// declaring the shard failed.
	DefaultOpenRetries = 1
	// retryBackoff is the base delay before an open-time retry pass;
	// pass p waits retryBackoff×2^(p-1) ± 50% jitter.
	retryBackoff = 50 * time.Millisecond
)

// Breaker states as reported in ReplicaStatus.Breaker.
const (
	breakerDisabled = "disabled"
	breakerClosed   = "closed"
	breakerOpen     = "open"
	// breakerHalfOpen is derived, not stored: the breaker is open and
	// the cooldown has elapsed, so the next attempt is a trial.
	breakerHalfOpen = "half-open"
)

// breaker is a per-replica circuit breaker. It opens after threshold
// consecutive failures; while open and within cooldown all attempts
// are rejected. Once the cooldown elapses the breaker is half-open:
// attempts are admitted as trials — a success closes it, a failure
// re-arms the cooldown. Health probes act as out-of-band trials: a
// probe success always closes the breaker (probe re-admission), so a
// recovering replica is re-admitted within one probe interval without
// risking a live query. A zero threshold disables the breaker.
type breaker struct {
	threshold int
	cooldown  time.Duration

	mu       sync.Mutex
	open     bool
	fails    int
	openedAt time.Time
	trips    int64
}

// admit reports whether an attempt may proceed. While open it admits
// only once the cooldown has elapsed (the half-open trial).
func (b *breaker) admit(now time.Time) bool {
	if b.threshold <= 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return !b.open || now.Sub(b.openedAt) >= b.cooldown
}

// success records a successful attempt (or probe) and closes the
// breaker unconditionally.
func (b *breaker) success() {
	if b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	b.open = false
	b.fails = 0
	b.mu.Unlock()
}

// failure records a failed attempt. Closed: count toward the
// threshold and trip when reached. Open: re-arm the cooldown, so a
// failing replica is never hammered more than once per cooldown.
func (b *breaker) failure(now time.Time) {
	if b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.open {
		b.openedAt = now
		return
	}
	b.fails++
	if b.fails >= b.threshold {
		b.open = true
		b.openedAt = now
		b.trips++
	}
}

// snapshot returns the display state, consecutive failures, and trips.
func (b *breaker) snapshot(now time.Time) (state string, fails int, trips int64) {
	if b.threshold <= 0 {
		return breakerDisabled, 0, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch {
	case !b.open:
		state = breakerClosed
	case now.Sub(b.openedAt) >= b.cooldown:
		state = breakerHalfOpen
	default:
		state = breakerOpen
	}
	return state, b.fails, b.trips
}

// replica is the coordinator's view of one shard replica: its breaker
// plus the latest probe verdict and an EWMA of observed latency
// (probe round-trips and query time-to-header).
type replica struct {
	url       string
	shardName string
	br        breaker

	probes atomic.Int64

	mu     sync.Mutex
	ewmaMS float64
	scored bool
	probed bool
	up     bool
	ready  bool
}

// ewmaAlpha weights new latency observations; ~0.3 follows shifts
// within a few observations without tracking single outliers.
const ewmaAlpha = 0.3

// observe folds one latency sample into the replica's EWMA score.
func (r *replica) observe(d time.Duration) {
	ms := float64(d.Microseconds()) / 1000.0
	r.mu.Lock()
	if !r.scored {
		r.ewmaMS, r.scored = ms, true
	} else {
		r.ewmaMS = ewmaAlpha*ms + (1-ewmaAlpha)*r.ewmaMS
	}
	r.mu.Unlock()
}

// setProbe records a probe verdict (and its latency when successful).
func (r *replica) setProbe(up, ready bool, d time.Duration) {
	r.mu.Lock()
	r.probed, r.up, r.ready = true, up, ready
	r.mu.Unlock()
	if up {
		r.observe(d)
	}
}

// health returns the probe-derived view: whether any probe has run,
// the latest up/ready verdict, and the current EWMA score.
func (r *replica) health() (probed, up, ready bool, ewmaMS float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.probed, r.up, r.ready, r.ewmaMS
}

// ShardStatus is one shard's per-replica resilience state, surfaced
// in Stats and on /v1/cluster.
type ShardStatus struct {
	// Name is the shard's configured name.
	Name string `json:"name"`
	// Replicas reports each replica in configured order.
	Replicas []ReplicaStatus `json:"replicas"`
}

// ReplicaStatus is the resilience view of a single replica.
type ReplicaStatus struct {
	// URL is the replica's base URL.
	URL string `json:"url"`
	// Breaker is the circuit state: disabled, closed, open, or
	// half-open (open with the cooldown elapsed; the next attempt is a
	// trial).
	Breaker string `json:"breaker"`
	// ConsecutiveFails is the current run of failures counting toward
	// the breaker threshold.
	ConsecutiveFails int `json:"consecutive_fails"`
	// Trips counts closed-to-open transitions since startup.
	Trips int64 `json:"trips"`
	// Probed reports whether at least one health probe has completed.
	Probed bool `json:"probed"`
	// Up is the latest probe verdict (meaningless until Probed).
	Up bool `json:"up"`
	// Ready is the replica's readiness from its last successful probe:
	// up but warming (datasets loading, index rebuilding) means false.
	Ready bool `json:"ready"`
	// EWMAMs is the replica's latency score in milliseconds — an
	// exponentially weighted moving average over probe round-trips and
	// query time-to-header. Zero until the first observation.
	EWMAMs float64 `json:"ewma_ms"`
	// Probes counts health probes sent to this replica.
	Probes int64 `json:"probes"`
}

// Status snapshots per-replica resilience state for every shard.
func (c *Coordinator) Status() []ShardStatus {
	now := time.Now()
	out := make([]ShardStatus, len(c.shards))
	for i, sh := range c.shards {
		st := ShardStatus{Name: sh.Name, Replicas: make([]ReplicaStatus, len(c.reps[i]))}
		for j, r := range c.reps[i] {
			state, fails, trips := r.br.snapshot(now)
			probed, up, ready, ewma := r.health()
			st.Replicas[j] = ReplicaStatus{
				URL:              r.url,
				Breaker:          state,
				ConsecutiveFails: fails,
				Trips:            trips,
				Probed:           probed,
				Up:               up,
				Ready:            ready,
				EWMAMs:           ewma,
				Probes:           r.probes.Load(),
			}
		}
		out[i] = st
	}
	return out
}

// Replica ordering classes: lower is tried earlier. Within a class
// replicas order by EWMA ascending, then configured index — so with
// probing off and no scores, the order is exactly the configured
// slice order, preserving pre-resilience behavior.
const (
	classHealthy  = iota // probed, up, and ready
	classUnknown         // never probed (prober off or not yet run)
	classDegraded        // probed but down or warming
	classOpen            // breaker open, cooldown not yet elapsed
)

// replicaOrder ranks shard si's replicas for one query.
func (c *Coordinator) replicaOrder(si int) []int {
	reps := c.reps[si]
	if len(reps) == 1 {
		return []int{0}
	}
	now := time.Now()
	type ranked struct {
		idx   int
		class int
		ewma  float64
	}
	rs := make([]ranked, len(reps))
	for i, r := range reps {
		probed, up, ready, ewma := r.health()
		class := classUnknown
		switch {
		case !r.br.admit(now):
			class = classOpen
		case probed && up && ready:
			class = classHealthy
		case probed:
			class = classDegraded
		}
		rs[i] = ranked{idx: i, class: class, ewma: ewma}
	}
	sort.SliceStable(rs, func(a, b int) bool {
		if rs[a].class != rs[b].class {
			return rs[a].class < rs[b].class
		}
		if rs[a].ewma != rs[b].ewma {
			return rs[a].ewma < rs[b].ewma
		}
		return rs[a].idx < rs[b].idx
	})
	order := make([]int, len(rs))
	for i, r := range rs {
		order[i] = r.idx
	}
	return order
}

// attempt is one slot in a shard's per-query attempt plan: a replica
// index plus the jittered backoff to sleep before opening it.
type attempt struct {
	rep  int
	wait time.Duration
}

// attemptPlan builds shard si's attempt sequence for one query: the
// health-ranked replica order, repeated once per retry pass, with a
// jittered exponential backoff ahead of each extra pass. The plan is
// fixed before the gather starts, so cursor advancement through it is
// monotone and the restart loop in topK terminates exactly as it did
// with bare replica slices.
func (c *Coordinator) attemptPlan(si int) []attempt {
	order := c.replicaOrder(si)
	plan := make([]attempt, 0, len(order)*(1+c.openRetries))
	for pass := 0; pass <= c.openRetries; pass++ {
		for j, ri := range order {
			var wait time.Duration
			if pass > 0 && j == 0 {
				base := retryBackoff << (pass - 1)
				// ±50% jitter de-synchronizes retry storms.
				wait = base/2 + rand.N(base)
			}
			plan = append(plan, attempt{rep: ri, wait: wait})
		}
	}
	return plan
}

// probeLoop probes one replica every probeInterval until Close.
func (c *Coordinator) probeLoop(r *replica) {
	defer c.probeWG.Done()
	// A random initial offset spreads probes across the interval so
	// replicas are not hit in lockstep.
	timer := time.NewTimer(rand.N(c.probeInterval))
	defer timer.Stop()
	for {
		select {
		case <-c.stopProbes:
			return
		case <-timer.C:
		}
		c.probeOnce(r)
		timer.Reset(c.probeInterval)
	}
}

// healthzBody is the subset of a replica's /healthz answer the prober
// reads. Ready is optional: servers predating the readiness dimension
// answer 200 without it and count as ready.
type healthzBody struct {
	Ready *bool `json:"ready"`
}

// probeOnce sends one /healthz probe and folds the verdict into the
// replica's state and breaker. A probe success closes the breaker
// (probe re-admission); a failure counts toward — or re-arms — it.
func (c *Coordinator) probeOnce(r *replica) {
	ctx, cancel := context.WithTimeout(context.Background(), c.probeTimeout)
	defer cancel()
	r.probes.Add(1)
	c.probes.Add(1)
	start := time.Now()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, strings.TrimSuffix(r.url, "/")+"/healthz", nil)
	if err != nil {
		r.setProbe(false, false, 0)
		r.br.failure(time.Now())
		return
	}
	resp, err := c.client.Do(req)
	if err != nil {
		r.setProbe(false, false, 0)
		r.br.failure(time.Now())
		return
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1024))
		r.setProbe(false, false, 0)
		r.br.failure(time.Now())
		return
	}
	var body healthzBody
	_ = json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&body)
	ready := body.Ready == nil || *body.Ready
	r.setProbe(true, ready, time.Since(start))
	r.br.success()
}
