package cluster

import (
	"context"
	"fmt"
	"net/http"
	"sort"
	"sync/atomic"
	"time"
)

// Shard is one partition of the dataset: a name the coordinator reports in
// epoch vectors and failure lists, and one or more replica base URLs that
// each serve the same partition.
type Shard struct {
	// Name identifies the shard in Result.Epochs and Result.FailedShards.
	Name string `json:"name"`
	// Replicas are base URLs ("http://host:port") tried in order: the first
	// is primary, the rest are failover targets serving the same partition.
	Replicas []string `json:"replicas"`
	// Dataset overrides the query's dataset name on this shard; empty means
	// the query's name (or the shard server's default) is used.
	Dataset string `json:"dataset,omitempty"`
}

// Result is one merged cluster answer.
type Result struct {
	// Communities is the global top-k, in decreasing influence order —
	// byte-identical (field for field) to single-node serving of the
	// unpartitioned graph when the shards were built with Partition.
	Communities []Community
	// Epochs maps each participating shard's name to the snapshot epoch it
	// pinned for this query: the epoch vector that tells a client exactly
	// which data version each piece of the answer reflects.
	Epochs map[string]uint64
	// Partial reports that at least one shard was dropped (all replicas
	// failed or timed out) and the answer covers only the survivors. Only
	// possible when the coordinator allows partial results.
	Partial bool
	// FailedShards names the dropped shards, sorted.
	FailedShards []string
}

// Option configures a Coordinator.
type Option func(*Coordinator)

// WithShardTimeout bounds each shard attempt (connect through trailer). A
// replica that exceeds it is treated exactly like a failed one: the
// coordinator fails over to the next replica, and past the last replica the
// shard is dropped (partial mode) or the query errors (strict mode). Zero
// means no per-shard bound; the request context still applies.
func WithShardTimeout(d time.Duration) Option {
	return func(c *Coordinator) { c.shardTimeout = d }
}

// WithPartialResults selects degraded serving: when a shard exhausts its
// replicas the query continues over the survivors and the Result is marked
// Partial. The default is strict mode — any shard failure fails the query,
// so an answer is always complete.
func WithPartialResults(allow bool) Option {
	return func(c *Coordinator) { c.partial = allow }
}

// WithHTTPClient substitutes the HTTP client used for shard streams.
func WithHTTPClient(client *http.Client) Option {
	return func(c *Coordinator) { c.client = client }
}

// Coordinator scatters top-k queries across shards and gathers the global
// answer by k-way merging the shards' decreasing-influence streams. It is
// safe for concurrent use.
type Coordinator struct {
	shards       []Shard
	client       *http.Client
	shardTimeout time.Duration
	partial      bool

	queries   atomic.Int64
	errors    atomic.Int64
	partials  atomic.Int64
	failovers atomic.Int64
}

// NewCoordinator validates the topology and builds a coordinator.
func NewCoordinator(shards []Shard, opts ...Option) (*Coordinator, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("cluster: a coordinator needs at least one shard")
	}
	seen := make(map[string]bool, len(shards))
	for i, sh := range shards {
		if sh.Name == "" {
			return nil, fmt.Errorf("cluster: shard %d has no name", i)
		}
		if seen[sh.Name] {
			return nil, fmt.Errorf("cluster: duplicate shard name %q", sh.Name)
		}
		seen[sh.Name] = true
		if len(sh.Replicas) == 0 {
			return nil, fmt.Errorf("cluster: shard %q has no replicas", sh.Name)
		}
	}
	c := &Coordinator{shards: shards, client: http.DefaultClient}
	for _, o := range opts {
		o(c)
	}
	return c, nil
}

// Shards returns the configured topology.
func (c *Coordinator) Shards() []Shard { return c.shards }

// Stats is a snapshot of the coordinator's serving counters.
type Stats struct {
	// Queries is the number of TopK calls started.
	Queries int64 `json:"queries"`
	// Errors is the number that returned an error.
	Errors int64 `json:"errors"`
	// PartialResults is the number answered with at least one shard dropped.
	PartialResults int64 `json:"partial_results"`
	// Failovers counts replica advances: every time a shard attempt failed
	// and the coordinator moved to the next replica (or dropped the shard).
	Failovers int64 `json:"failovers"`
	// Shards is the configured shard count.
	Shards int `json:"shards"`
}

// Stats snapshots the serving counters.
func (c *Coordinator) Stats() Stats {
	return Stats{
		Queries:        c.queries.Load(),
		Errors:         c.errors.Load(),
		PartialResults: c.partials.Load(),
		Failovers:      c.failovers.Load(),
		Shards:         len(c.shards),
	}
}

// TopK runs one scatter-gather query: the global top-k influential
// communities for gamma under mode (ModeCore, ModeNonContainment, or
// ModeTruss), over dataset (empty for each shard's default). Each shard
// streams its local answer in decreasing influence order; the merge pops the
// globally best head until k communities are popped — at that point every
// remaining head, and everything behind it in its stream, is dominated, so
// the coordinator closes the streams and the shards cancel their searches.
func (c *Coordinator) TopK(ctx context.Context, dataset string, k int, gamma int32, mode string) (*Result, error) {
	c.queries.Add(1)
	res, err := c.topK(ctx, dataset, k, gamma, mode)
	if err != nil {
		c.errors.Add(1)
		return nil, err
	}
	if res.Partial {
		c.partials.Add(1)
	}
	return res, nil
}

func (c *Coordinator) topK(ctx context.Context, dataset string, k int, gamma int32, mode string) (*Result, error) {
	if k < 1 {
		return nil, fmt.Errorf("cluster: k must be >= 1")
	}
	if gamma < 1 {
		return nil, fmt.Errorf("cluster: gamma must be >= 1")
	}
	switch mode {
	case "":
		mode = ModeCore
	case ModeCore, ModeNonContainment, ModeTruss:
	default:
		return nil, fmt.Errorf("cluster: unknown mode %q", mode)
	}

	n := len(c.shards)
	cursors := make([]int, n) // next replica to try, per shard
	dead := make([]bool, n)   // dropped shards (partial mode only)
	for {
		res, failIdx, failCursor, err := c.gather(ctx, dataset, k, gamma, mode, cursors, dead)
		if err != nil {
			return nil, err
		}
		if failIdx < 0 {
			return res, nil
		}
		// A shard failed after the merge had already consumed some of its
		// communities: those results are suspect (a replica restart may pin
		// a different epoch), so the whole gather restarts with that shard's
		// replica cursor advanced. Each restart either advances a cursor or
		// kills a shard, so the loop terminates.
		c.failovers.Add(1)
		cursors[failIdx] = failCursor
		if failCursor >= len(c.shards[failIdx].Replicas) {
			if !c.partial {
				return nil, fmt.Errorf("cluster: shard %q failed on all replicas", c.shards[failIdx].Name)
			}
			dead[failIdx] = true
		}
		alive := 0
		for i := range dead {
			if !dead[i] {
				alive++
			}
		}
		if alive == 0 {
			return nil, fmt.Errorf("cluster: all shards failed")
		}
	}
}

// shardItem is one event from a shard reader: exactly one of header, comm,
// trailer, or err is set. replica is the replica index that produced it.
type shardItem struct {
	header  *StreamHeader
	comm    *Community
	trailer *StreamTrailer
	err     error
	replica int
}

// send delivers an item unless the gather has been canceled.
func send(ctx context.Context, out chan<- shardItem, it shardItem) bool {
	select {
	case out <- it:
		return true
	case <-ctx.Done():
		return false
	}
}

// readShard streams one shard into out. Failures before the header are
// retried on the next replica internally — nothing has been consumed, so
// failover is invisible to the merge. Once a header is delivered the stream
// is committed: a later failure is reported as an err item and the merge
// decides whether a full restart is needed.
func (c *Coordinator) readShard(ctx context.Context, sh Shard, dataset string, start, limit int, gamma int32, mode string, out chan<- shardItem) {
	if sh.Dataset != "" {
		dataset = sh.Dataset
	}
	var lastErr error
	for r := start; r < len(sh.Replicas); r++ {
		if r > start {
			c.failovers.Add(1)
		}
		sctx, cancel := ctx, context.CancelFunc(func() {})
		if c.shardTimeout > 0 {
			sctx, cancel = context.WithTimeout(ctx, c.shardTimeout)
		}
		ss, err := openStream(sctx, c.client, sh.Replicas[r], dataset, mode, gamma, limit)
		if err != nil {
			cancel()
			lastErr = err
			continue
		}
		if !send(ctx, out, shardItem{header: &ss.header, replica: r}) {
			ss.Close()
			cancel()
			return
		}
		for {
			comm, trailer, err := ss.Next()
			var it shardItem
			switch {
			case err != nil:
				if sctx.Err() != nil {
					err = fmt.Errorf("shard %q replica %s: %w", sh.Name, sh.Replicas[r], sctx.Err())
				}
				it = shardItem{err: err, replica: r}
			case trailer != nil:
				it = shardItem{trailer: trailer, replica: r}
			default:
				it = shardItem{comm: comm, replica: r}
			}
			ok := send(ctx, out, it)
			if !ok || it.comm == nil {
				ss.Close()
				cancel()
				return
			}
		}
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("no replicas configured")
	}
	send(ctx, out, shardItem{
		err:     fmt.Errorf("shard %q: all replicas failed: %w", sh.Name, lastErr),
		replica: len(sh.Replicas),
	})
}

// gather runs one merge attempt. It returns either a finished Result
// (failIdx == -1), or a restart request: failIdx names a shard that failed
// after some of its communities were merged, failCursor the replica index to
// resume from. Terminal errors (bad context, strict-mode failure discovered
// before any consumption) come back as err.
func (c *Coordinator) gather(ctx context.Context, dataset string, k int, gamma int32, mode string, cursors []int, dead []bool) (res *Result, failIdx, failCursor int, err error) {
	gctx, cancel := context.WithCancel(ctx)
	defer cancel() // closes surviving streams -> shards cancel their searches

	n := len(c.shards)
	chans := make([]chan shardItem, n)
	for i := range c.shards {
		if dead[i] {
			continue
		}
		chans[i] = make(chan shardItem)
		go c.readShard(gctx, c.shards[i], dataset, cursors[i], k, gamma, mode, chans[i])
	}

	// Per-shard merge state. A shard is "live" while it might still produce
	// a community: it has a pending head, or a head has not been pulled yet.
	heads := make([]*Community, n)
	done := make([]bool, n)
	consumed := make([]int, n)
	epochs := make(map[string]uint64, n)
	failed := make([]string, 0)
	for i, sh := range c.shards {
		if dead[i] {
			failed = append(failed, sh.Name)
			done[i] = true
		}
	}

	// fail records a shard failure discovered at item it. If the merge has
	// already consumed communities from that shard the attempt must restart
	// from the next replica; otherwise the shard can be dropped (or the
	// query failed) in place without disturbing the merge.
	fail := func(i int, it shardItem) (restartAt int, err error) {
		if consumed[i] > 0 {
			return it.replica + 1, nil
		}
		if !c.partial {
			return -1, fmt.Errorf("cluster: shard %q failed: %w", c.shards[i].Name, it.err)
		}
		// The cursor advance is recorded so a restart triggered by another
		// shard does not resurrect this one.
		c.failovers.Add(1)
		dead[i] = true
		cursors[i] = len(c.shards[i].Replicas)
		done[i] = true
		heads[i] = nil
		delete(epochs, c.shards[i].Name)
		failed = append(failed, c.shards[i].Name)
		return -1, nil
	}

	// pull advances shard i to its next head (or marks it done). A restart
	// request surfaces as restartAt >= 0: the replica cursor to resume from.
	pull := func(i int) (restartAt int, err error) {
		for {
			select {
			case it := <-chans[i]:
				switch {
				case it.header != nil:
					epochs[c.shards[i].Name] = it.header.SnapshotEpoch
					continue // the first community/trailer follows
				case it.comm != nil:
					heads[i] = it.comm
					return -1, nil
				case it.trailer != nil:
					done[i] = true
					heads[i] = nil
					return -1, nil
				default:
					return fail(i, it)
				}
			case <-ctx.Done():
				return -1, fmt.Errorf("cluster: %w", ctx.Err())
			}
		}
	}

	// out stays nil when no shard produces anything, so an empty answer
	// marshals exactly like a single node's ("communities": null).
	var out []Community
	for len(out) < k {
		// Ensure every live shard has a head, then pop the global best. The
		// tie order (influence desc, keynode asc) is exactly the order the
		// unpartitioned stream emits: equal influence means equal keynode
		// weight, and the global vertex ranking breaks weight ties by
		// ascending original ID.
		best := -1
		for i := range c.shards {
			if done[i] {
				continue
			}
			if heads[i] == nil {
				restartAt, err := pull(i)
				if err != nil {
					return nil, -1, 0, err
				}
				if restartAt >= 0 {
					return nil, i, restartAt, nil
				}
				if heads[i] == nil {
					continue // went done (trailer) or was dropped
				}
			}
			h := heads[i]
			if best < 0 || h.Influence > heads[best].Influence ||
				(h.Influence == heads[best].Influence && h.Keynode < heads[best].Keynode) {
				best = i
			}
		}
		if best < 0 {
			break // every shard exhausted: the cluster has fewer than k
		}
		out = append(out, *heads[best])
		heads[best] = nil
		consumed[best]++
	}

	sort.Strings(failed)
	return &Result{
		Communities:  out,
		Epochs:       epochs,
		Partial:      len(failed) > 0,
		FailedShards: failed,
	}, -1, 0, nil
}
