package cluster

import (
	"context"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Shard is one partition of the dataset: a name the coordinator reports in
// epoch vectors and failure lists, and one or more replica base URLs that
// each serve the same partition.
type Shard struct {
	// Name identifies the shard in Result.Epochs and Result.FailedShards.
	Name string `json:"name"`
	// Replicas are base URLs ("http://host:port") serving the same
	// partition. With health probing off they are tried in order (the
	// first is primary); with probing on the coordinator prefers
	// healthy replicas with the lowest latency score.
	Replicas []string `json:"replicas"`
	// Dataset overrides the query's dataset name on this shard; empty means
	// the query's name (or the shard server's default) is used.
	Dataset string `json:"dataset,omitempty"`
}

// Result is one merged cluster answer.
type Result struct {
	// Communities is the global top-k, in decreasing influence order —
	// byte-identical (field for field) to single-node serving of the
	// unpartitioned graph when the shards were built with Partition.
	Communities []Community
	// Epochs maps each participating shard's name to the snapshot epoch it
	// pinned for this query: the epoch vector that tells a client exactly
	// which data version each piece of the answer reflects.
	Epochs map[string]uint64
	// Partial reports that at least one shard was dropped (all replicas
	// failed or timed out) and the answer covers only the survivors. Only
	// possible when the coordinator allows partial results.
	Partial bool
	// FailedShards names the dropped shards, sorted.
	FailedShards []string
}

// Option configures a Coordinator.
type Option func(*Coordinator)

// WithShardTimeout bounds each shard attempt (connect through trailer). A
// replica that exceeds it is treated exactly like a failed one: the
// coordinator fails over to the next replica, and past the last replica the
// shard is dropped (partial mode) or the query errors (strict mode).
// Non-positive values keep the default, DefaultShardTimeout — there is
// deliberately no way to run unbounded, because a black-holed replica
// would hang the gather until the client disconnects.
func WithShardTimeout(d time.Duration) Option {
	return func(c *Coordinator) {
		if d > 0 {
			c.shardTimeout = d
		}
	}
}

// WithPartialResults selects degraded serving: when a shard exhausts its
// replicas the query continues over the survivors and the Result is marked
// Partial. The default is strict mode — any shard failure fails the query,
// so an answer is always complete.
func WithPartialResults(allow bool) Option {
	return func(c *Coordinator) { c.partial = allow }
}

// WithHTTPClient substitutes the HTTP client used for shard streams and
// health probes.
func WithHTTPClient(client *http.Client) Option {
	return func(c *Coordinator) { c.client = client }
}

// WithBreaker configures the per-replica circuit breakers: a replica's
// breaker opens after threshold consecutive failures and, while open,
// rejects attempts until cooldown elapses (then the next attempt — or
// health probe — is a trial). threshold 0 disables the breakers;
// non-positive cooldown keeps DefaultBreakerCooldown. The default is
// DefaultBreakerThreshold/DefaultBreakerCooldown.
func WithBreaker(threshold int, cooldown time.Duration) Option {
	return func(c *Coordinator) {
		if threshold < 0 {
			threshold = 0
		}
		c.breakerThreshold = threshold
		if cooldown > 0 {
			c.breakerCooldown = cooldown
		}
	}
}

// WithHealthProbes enables background health probing: every interval each
// replica's /healthz is probed (bounded by timeout, non-positive means
// DefaultProbeTimeout), maintaining up/down state, readiness, and an EWMA
// latency score that drives replica ordering. Non-positive interval
// disables probing (the default). With probing enabled the caller must
// Close the coordinator to stop the probers.
func WithHealthProbes(interval, timeout time.Duration) Option {
	return func(c *Coordinator) {
		c.probeInterval = interval
		if timeout > 0 {
			c.probeTimeout = timeout
		}
	}
}

// WithHedge enables hedged shard opens: when opening a shard stream takes
// longer than delay, a second open is fired at the next admitted replica
// and the first header wins, the loser being cancelled. Hedging happens
// only at open time — before any result bytes are consumed — so merged
// answers stay byte-identical. Non-positive delay disables hedging (the
// default).
func WithHedge(delay time.Duration) Option {
	return func(c *Coordinator) { c.hedgeDelay = delay }
}

// WithOpenRetries sets how many extra passes over a shard's (health-
// ranked) replica list the coordinator makes at open time, each pass
// preceded by a jittered exponential backoff, before declaring the shard
// failed. Negative values clamp to zero; the default is
// DefaultOpenRetries.
func WithOpenRetries(n int) Option {
	return func(c *Coordinator) {
		if n < 0 {
			n = 0
		}
		c.openRetries = n
	}
}

// Coordinator scatters top-k queries across shards and gathers the global
// answer by k-way merging the shards' decreasing-influence streams. It is
// safe for concurrent use. A coordinator with health probing enabled owns
// background goroutines; Close releases them.
type Coordinator struct {
	shards       []Shard
	reps         [][]*replica // parallel to shards
	client       *http.Client
	shardTimeout time.Duration
	partial      bool

	breakerThreshold int
	breakerCooldown  time.Duration
	probeInterval    time.Duration
	probeTimeout     time.Duration
	hedgeDelay       time.Duration
	openRetries      int

	stopProbes chan struct{}
	probeWG    sync.WaitGroup
	closeOnce  sync.Once

	queries    atomic.Int64
	planNodes  atomic.Int64
	cseHits    atomic.Int64
	errors     atomic.Int64
	partials   atomic.Int64
	failovers  atomic.Int64
	probes     atomic.Int64
	retries    atomic.Int64
	hedges     atomic.Int64
	hedgesWon  atomic.Int64
	hedgesLost atomic.Int64
}

// NewCoordinator validates the topology and builds a coordinator.
func NewCoordinator(shards []Shard, opts ...Option) (*Coordinator, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("cluster: a coordinator needs at least one shard")
	}
	seen := make(map[string]bool, len(shards))
	for i, sh := range shards {
		if sh.Name == "" {
			return nil, fmt.Errorf("cluster: shard %d has no name", i)
		}
		if seen[sh.Name] {
			return nil, fmt.Errorf("cluster: duplicate shard name %q", sh.Name)
		}
		seen[sh.Name] = true
		if len(sh.Replicas) == 0 {
			return nil, fmt.Errorf("cluster: shard %q has no replicas", sh.Name)
		}
	}
	c := &Coordinator{
		shards:           shards,
		client:           http.DefaultClient,
		shardTimeout:     DefaultShardTimeout,
		breakerThreshold: DefaultBreakerThreshold,
		breakerCooldown:  DefaultBreakerCooldown,
		probeTimeout:     DefaultProbeTimeout,
		openRetries:      DefaultOpenRetries,
	}
	for _, o := range opts {
		o(c)
	}
	c.reps = make([][]*replica, len(shards))
	for i, sh := range shards {
		c.reps[i] = make([]*replica, len(sh.Replicas))
		for j, u := range sh.Replicas {
			c.reps[i][j] = &replica{
				url:       u,
				shardName: sh.Name,
				br:        breaker{threshold: c.breakerThreshold, cooldown: c.breakerCooldown},
			}
		}
	}
	if c.probeInterval > 0 {
		c.stopProbes = make(chan struct{})
		for i := range c.reps {
			for _, r := range c.reps[i] {
				c.probeWG.Add(1)
				go c.probeLoop(r)
			}
		}
	}
	return c, nil
}

// Close stops the background health probers (a no-op when probing is
// off). Safe to call more than once; in-flight queries are unaffected.
func (c *Coordinator) Close() {
	c.closeOnce.Do(func() {
		if c.stopProbes != nil {
			close(c.stopProbes)
			c.probeWG.Wait()
		}
	})
}

// Shards returns the configured topology.
func (c *Coordinator) Shards() []Shard { return c.shards }

// Stats is a snapshot of the coordinator's serving counters.
type Stats struct {
	// Queries is the number of TopK calls started (DSL plan fragments
	// included — each distinct fragment scatters as one TopK).
	Queries int64 `json:"queries"`
	// PlanNodes is the number of DSL plan nodes expanded by /v1/query
	// batches.
	PlanNodes int64 `json:"plan_nodes"`
	// CSEHits is the number of DSL plan nodes served from a fragment
	// already computed for an earlier node of the same batch, instead of
	// a fresh scatter.
	CSEHits int64 `json:"cse_hits"`
	// Errors is the number that returned an error.
	Errors int64 `json:"errors"`
	// PartialResults is the number answered with at least one shard dropped.
	PartialResults int64 `json:"partial_results"`
	// Failovers counts replica advances: every time a shard attempt failed
	// and the coordinator moved to the next replica (or dropped the shard).
	Failovers int64 `json:"failovers"`
	// Probes counts health probes sent across all replicas.
	Probes int64 `json:"probes"`
	// BreakerTrips counts circuit-breaker closed-to-open transitions
	// across all replicas since startup.
	BreakerTrips int64 `json:"breaker_trips"`
	// Retries counts backed-off open-time retry passes that ran.
	Retries int64 `json:"retries"`
	// Hedges counts hedged second opens fired.
	Hedges int64 `json:"hedges"`
	// HedgesWon counts hedged opens where the second replica's header
	// arrived first.
	HedgesWon int64 `json:"hedges_won"`
	// HedgesLost counts hedged opens where the primary still won.
	HedgesLost int64 `json:"hedges_lost"`
	// Shards is the configured shard count.
	Shards int `json:"shards"`
	// ShardStatus is the per-replica resilience state (breaker, health,
	// latency score) for every shard.
	ShardStatus []ShardStatus `json:"shard_status"`
}

// Stats snapshots the serving counters.
func (c *Coordinator) Stats() Stats {
	status := c.Status()
	var trips int64
	for _, sh := range status {
		for _, r := range sh.Replicas {
			trips += r.Trips
		}
	}
	return Stats{
		Queries:        c.queries.Load(),
		PlanNodes:      c.planNodes.Load(),
		CSEHits:        c.cseHits.Load(),
		Errors:         c.errors.Load(),
		PartialResults: c.partials.Load(),
		Failovers:      c.failovers.Load(),
		Probes:         c.probes.Load(),
		BreakerTrips:   trips,
		Retries:        c.retries.Load(),
		Hedges:         c.hedges.Load(),
		HedgesWon:      c.hedgesWon.Load(),
		HedgesLost:     c.hedgesLost.Load(),
		Shards:         len(c.shards),
		ShardStatus:    status,
	}
}

// TopK runs one scatter-gather query: the global top-k influential
// communities for gamma under mode (ModeCore, ModeNonContainment, or
// ModeTruss), over dataset (empty for each shard's default). Each shard
// streams its local answer in decreasing influence order; the merge pops the
// globally best head until k communities are popped — at that point every
// remaining head, and everything behind it in its stream, is dominated, so
// the coordinator closes the streams and the shards cancel their searches.
func (c *Coordinator) TopK(ctx context.Context, dataset string, k int, gamma int32, mode string) (*Result, error) {
	c.queries.Add(1)
	res, err := c.topK(ctx, dataset, k, gamma, mode)
	if err != nil {
		c.errors.Add(1)
		return nil, err
	}
	if res.Partial {
		c.partials.Add(1)
	}
	return res, nil
}

func (c *Coordinator) topK(ctx context.Context, dataset string, k int, gamma int32, mode string) (*Result, error) {
	if k < 1 {
		return nil, fmt.Errorf("cluster: k must be >= 1")
	}
	if gamma < 1 {
		return nil, fmt.Errorf("cluster: gamma must be >= 1")
	}
	switch mode {
	case "":
		mode = ModeCore
	case ModeCore, ModeNonContainment, ModeTruss:
	default:
		return nil, fmt.Errorf("cluster: unknown mode %q", mode)
	}

	// The attempt plan — health-ranked replica order times retry passes —
	// is fixed per shard before the first gather, so the restart loop
	// below advances monotonically through it and terminates.
	n := len(c.shards)
	plans := make([][]attempt, n)
	for i := range c.shards {
		plans[i] = c.attemptPlan(i)
	}
	cursors := make([]int, n) // next plan position to try, per shard
	dead := make([]bool, n)   // dropped shards (partial mode only)
	for {
		res, failIdx, failCursor, err := c.gather(ctx, dataset, k, gamma, mode, plans, cursors, dead)
		if err != nil {
			return nil, err
		}
		if failIdx < 0 {
			return res, nil
		}
		// A shard failed after the merge had already consumed some of its
		// communities: those results are suspect (a replica restart may pin
		// a different epoch), so the whole gather restarts with that shard's
		// plan cursor advanced. Each restart either advances a cursor or
		// kills a shard, so the loop terminates.
		c.failovers.Add(1)
		cursors[failIdx] = failCursor
		if failCursor >= len(plans[failIdx]) {
			if !c.partial {
				return nil, fmt.Errorf("cluster: shard %q failed on all replicas", c.shards[failIdx].Name)
			}
			dead[failIdx] = true
		}
		alive := 0
		for i := range dead {
			if !dead[i] {
				alive++
			}
		}
		if alive == 0 {
			return nil, fmt.Errorf("cluster: all shards failed")
		}
	}
}

// shardItem is one event from a shard reader: exactly one of header, comm,
// trailer, or err is set. pos is the attempt-plan position that produced it.
type shardItem struct {
	header  *StreamHeader
	comm    *Community
	trailer *StreamTrailer
	err     error
	pos     int
}

// send delivers an item unless the gather has been canceled.
func send(ctx context.Context, out chan<- shardItem, it shardItem) bool {
	select {
	case out <- it:
		return true
	case <-ctx.Done():
		return false
	}
}

// openResult is one resolved shard-open attempt: an open stream plus the
// attempt context that bounds its whole life, or an error. pos is the plan
// position that actually served (a winning hedge moves it forward).
type openResult struct {
	ss     *shardStream
	sctx   context.Context
	cancel context.CancelFunc
	pos    int
	err    error
}

// openAttempt opens the stream for plan[pos], feeding the replica's
// breaker and latency score with the outcome.
func (c *Coordinator) openAttempt(ctx context.Context, si int, dataset string, plan []attempt, pos, limit int, gamma int32, mode string) openResult {
	rep := c.reps[si][plan[pos].rep]
	sctx, cancel := context.WithTimeout(ctx, c.shardTimeout)
	start := time.Now()
	ss, err := openStream(sctx, c.client, rep.url, dataset, mode, gamma, limit)
	if err != nil {
		cancel()
		rep.br.failure(time.Now())
		return openResult{pos: pos, err: err}
	}
	rep.br.success()
	rep.observe(time.Since(start))
	return openResult{ss: ss, sctx: sctx, cancel: cancel, pos: pos}
}

// discardOpen drains a losing hedge attempt in the background, closing
// its stream (which cancels the shard-side search) when it resolves.
func discardOpen(ch <-chan openResult) {
	go func() {
		r := <-ch
		if r.ss != nil {
			r.ss.Close()
		}
		if r.cancel != nil {
			r.cancel()
		}
	}()
}

// openWithHedge opens plan[pos], firing a second open at the next
// admitted different replica if the first takes longer than the hedge
// delay. The first successful open wins and the loser is cancelled;
// hedging never races result consumption, only stream opening, so it
// cannot change merged bytes.
func (c *Coordinator) openWithHedge(ctx context.Context, si int, dataset string, plan []attempt, pos, limit int, gamma int32, mode string) openResult {
	if c.hedgeDelay <= 0 {
		return c.openAttempt(ctx, si, dataset, plan, pos, limit, gamma, mode)
	}
	hpos := -1
	now := time.Now()
	for p := pos + 1; p < len(plan); p++ {
		if plan[p].rep != plan[pos].rep && c.reps[si][plan[p].rep].br.admit(now) {
			hpos = p
			break
		}
	}
	primary := make(chan openResult, 1)
	go func() { primary <- c.openAttempt(ctx, si, dataset, plan, pos, limit, gamma, mode) }()
	if hpos < 0 {
		return <-primary // nowhere to hedge to
	}
	timer := time.NewTimer(c.hedgeDelay)
	defer timer.Stop()
	select {
	case r := <-primary:
		return r // resolved (either way) before the hedge delay
	case <-timer.C:
	}
	c.hedges.Add(1)
	hedge := make(chan openResult, 1)
	go func() { hedge <- c.openAttempt(ctx, si, dataset, plan, hpos, limit, gamma, mode) }()
	var firstErr *openResult
	pch, hch := primary, hedge
	for pch != nil || hch != nil {
		select {
		case r := <-pch:
			if r.err == nil {
				c.hedgesLost.Add(1)
				discardOpen(hedge)
				return r
			}
			firstErr, pch = &r, nil
		case r := <-hch:
			if r.err == nil {
				c.hedgesWon.Add(1)
				discardOpen(primary)
				return r
			}
			if firstErr == nil {
				firstErr = &r
			}
			hch = nil
		}
	}
	// Both opens failed; report the primary's error at the primary's
	// position so the caller advances normally.
	if firstErr.pos != pos {
		return openResult{pos: pos, err: firstErr.err}
	}
	return *firstErr
}

// readShard streams one shard into out, walking its attempt plan from
// start. Failures before the header are retried on later plan entries
// internally — nothing has been consumed, so failover is invisible to the
// merge. Once a header is delivered the stream is committed: a later
// failure is reported as an err item and the merge decides whether a full
// restart is needed. Replicas whose breaker is open (and not yet due a
// trial) are skipped without costing a timeout.
func (c *Coordinator) readShard(ctx context.Context, si int, dataset string, plan []attempt, start, limit int, gamma int32, mode string, out chan<- shardItem) {
	sh := c.shards[si]
	if sh.Dataset != "" {
		dataset = sh.Dataset
	}
	var lastErr error
	attempted := false
	for pos := start; pos < len(plan); pos++ {
		rep := c.reps[si][plan[pos].rep]
		if !rep.br.admit(time.Now()) {
			if lastErr == nil {
				lastErr = fmt.Errorf("replica %s: circuit breaker open", rep.url)
			}
			continue
		}
		if attempted {
			c.failovers.Add(1)
		}
		if w := plan[pos].wait; w > 0 {
			c.retries.Add(1)
			select {
			case <-time.After(w):
			case <-ctx.Done():
				return
			}
		}
		attempted = true
		r := c.openWithHedge(ctx, si, dataset, plan, pos, limit, gamma, mode)
		if r.err != nil {
			lastErr = r.err
			continue
		}
		pos = r.pos // a winning hedge may have advanced the plan position
		rep = c.reps[si][plan[pos].rep]
		if !send(ctx, out, shardItem{header: &r.ss.header, pos: pos}) {
			r.ss.Close()
			r.cancel()
			return
		}
		for {
			comm, trailer, err := r.ss.Next()
			var it shardItem
			switch {
			case err != nil:
				if r.sctx.Err() != nil {
					err = fmt.Errorf("shard %q replica %s: %w", sh.Name, rep.url, r.sctx.Err())
				}
				rep.br.failure(time.Now())
				it = shardItem{err: err, pos: pos}
			case trailer != nil:
				it = shardItem{trailer: trailer, pos: pos}
			default:
				it = shardItem{comm: comm, pos: pos}
			}
			ok := send(ctx, out, it)
			if !ok || it.comm == nil {
				r.ss.Close()
				r.cancel()
				return
			}
		}
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("no replicas configured")
	}
	send(ctx, out, shardItem{
		err: fmt.Errorf("shard %q: all replicas failed: %w", sh.Name, lastErr),
		pos: len(plan),
	})
}

// gather runs one merge attempt. It returns either a finished Result
// (failIdx == -1), or a restart request: failIdx names a shard that failed
// after some of its communities were merged, failCursor the plan position
// to resume from. Terminal errors (bad context, strict-mode failure
// discovered before any consumption) come back as err.
func (c *Coordinator) gather(ctx context.Context, dataset string, k int, gamma int32, mode string, plans [][]attempt, cursors []int, dead []bool) (res *Result, failIdx, failCursor int, err error) {
	gctx, cancel := context.WithCancel(ctx)
	defer cancel() // closes surviving streams -> shards cancel their searches

	n := len(c.shards)
	chans := make([]chan shardItem, n)
	for i := range c.shards {
		if dead[i] {
			continue
		}
		chans[i] = make(chan shardItem)
		go c.readShard(gctx, i, dataset, plans[i], cursors[i], k, gamma, mode, chans[i])
	}

	// Per-shard merge state. A shard is "live" while it might still produce
	// a community: it has a pending head, or a head has not been pulled yet.
	heads := make([]*Community, n)
	done := make([]bool, n)
	consumed := make([]int, n)
	epochs := make(map[string]uint64, n)
	failed := make([]string, 0)
	for i, sh := range c.shards {
		if dead[i] {
			failed = append(failed, sh.Name)
			done[i] = true
		}
	}

	// fail records a shard failure discovered at item it. If the merge has
	// already consumed communities from that shard the attempt must restart
	// from the next plan position; otherwise the shard can be dropped (or
	// the query failed) in place without disturbing the merge.
	fail := func(i int, it shardItem) (restartAt int, err error) {
		if consumed[i] > 0 {
			return it.pos + 1, nil
		}
		if !c.partial {
			return -1, fmt.Errorf("cluster: shard %q failed: %w", c.shards[i].Name, it.err)
		}
		// The cursor advance is recorded so a restart triggered by another
		// shard does not resurrect this one.
		c.failovers.Add(1)
		dead[i] = true
		cursors[i] = len(plans[i])
		done[i] = true
		heads[i] = nil
		delete(epochs, c.shards[i].Name)
		failed = append(failed, c.shards[i].Name)
		return -1, nil
	}

	// pull advances shard i to its next head (or marks it done). A restart
	// request surfaces as restartAt >= 0: the plan position to resume from.
	pull := func(i int) (restartAt int, err error) {
		for {
			select {
			case it := <-chans[i]:
				switch {
				case it.header != nil:
					epochs[c.shards[i].Name] = it.header.SnapshotEpoch
					continue // the first community/trailer follows
				case it.comm != nil:
					heads[i] = it.comm
					return -1, nil
				case it.trailer != nil:
					done[i] = true
					heads[i] = nil
					return -1, nil
				default:
					return fail(i, it)
				}
			case <-ctx.Done():
				return -1, fmt.Errorf("cluster: %w", ctx.Err())
			}
		}
	}

	// out stays nil when no shard produces anything, so an empty answer
	// marshals exactly like a single node's ("communities": null).
	var out []Community
	for len(out) < k {
		// Ensure every live shard has a head, then pop the global best. The
		// tie order (influence desc, keynode asc) is exactly the order the
		// unpartitioned stream emits: equal influence means equal keynode
		// weight, and the global vertex ranking breaks weight ties by
		// ascending original ID.
		best := -1
		for i := range c.shards {
			if done[i] {
				continue
			}
			if heads[i] == nil {
				restartAt, err := pull(i)
				if err != nil {
					return nil, -1, 0, err
				}
				if restartAt >= 0 {
					return nil, i, restartAt, nil
				}
				if heads[i] == nil {
					continue // went done (trailer) or was dropped
				}
			}
			h := heads[i]
			if best < 0 || h.Influence > heads[best].Influence ||
				(h.Influence == heads[best].Influence && h.Keynode < heads[best].Keynode) {
				best = i
			}
		}
		if best < 0 {
			break // every shard exhausted: the cluster has fewer than k
		}
		out = append(out, *heads[best])
		heads[best] = nil
		consumed[best]++
	}

	sort.Strings(failed)
	return &Result{
		Communities:  out,
		Epochs:       epochs,
		Partial:      len(failed) > 0,
		FailedShards: failed,
	}, -1, 0, nil
}
