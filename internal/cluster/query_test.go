package cluster_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"influcomm/internal/cluster"
	"influcomm/internal/graph"
	"influcomm/internal/server"
)

// countingShardServers is shardServers with a scatter counter: every open
// of a shard stream, across all shards, bumps scatters once.
func countingShardServers(t *testing.T, g *graph.Graph, n int, scatters *atomic.Int64) []cluster.Shard {
	t.Helper()
	parts, err := cluster.Partition(g, n)
	if err != nil {
		t.Fatal(err)
	}
	shards := make([]cluster.Shard, len(parts))
	for i, pg := range parts {
		s, err := server.New(pg)
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == cluster.StreamPath {
				scatters.Add(1)
			}
			s.ServeHTTP(w, r)
		}))
		t.Cleanup(ts.Close)
		shards[i] = cluster.Shard{Name: fmt.Sprintf("shard%d", i), Replicas: []string{ts.URL}}
	}
	return shards
}

// postClusterQuery POSTs a DSL batch to a coordinator front end.
func postClusterQuery(t *testing.T, front *httptest.Server, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(front.URL+"/v1/query", "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

// TestPlanClusterQueryMatchesTopK is the distributed half of the DSL's
// byte-identity property: through the coordinator HTTP front end, every
// fixed-shape plan node of a batch answers byte-identically to the
// coordinator's own /v1/topk for the same (k, γ, mode).
func TestPlanClusterQueryMatchesTopK(t *testing.T) {
	g := clusterTestGraph(t)
	var scatters atomic.Int64
	coord, err := cluster.NewCoordinator(countingShardServers(t, g, 3, &scatters))
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(cluster.NewHandler(coord, 1000))
	defer front.Close()

	code, body := postClusterQuery(t, front,
		`{"query":"topk(k=5, gamma=2..3, semantics=core+noncontainment); topk(k=2, gamma=3, semantics=truss) | size(>=3)"}`)
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var qr struct {
		Query     string `json:"query"`
		PlanNodes int    `json:"plan_nodes"`
		CSEHits   int    `json:"cse_hits"`
		Results   []struct {
			Statement string `json:"statement"`
			Nodes     []struct {
				K           int             `json:"k"`
				Gamma       int             `json:"gamma"`
				Mode        string          `json:"mode"`
				Path        string          `json:"path"`
				Communities json.RawMessage `json:"communities"`
			} `json:"nodes"`
		} `json:"results"`
	}
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatalf("unmarshal %s: %v", body, err)
	}
	if qr.PlanNodes != 5 {
		t.Errorf("plan_nodes = %d, want 5", qr.PlanNodes)
	}
	for si, st := range qr.Results {
		for ni, n := range st.Nodes {
			if n.Path != "scatter" {
				t.Errorf("stmt %d node %d: path %q, want scatter", si, ni, n.Path)
			}
			if si == 1 {
				continue // filtered; identity is asserted on unfiltered nodes
			}
			url := fmt.Sprintf("%s/v1/topk?k=%d&gamma=%d%s", front.URL, n.K, n.Gamma, modeFlag(n.Mode))
			want := singleCommunities(t, url)
			if string(n.Communities) != string(want) {
				t.Errorf("stmt %d node %d (γ=%d %s):\ndsl  %s\ntopk %s", si, ni, n.Gamma, n.Mode, n.Communities, want)
			}
		}
	}
}

// TestCSEClusterFragmentDedupe pins the coordinator's sharing property: a
// batch of N overlapping statements scatters once per distinct fragment —
// strictly fewer scatters than N independent queries — and reports the
// reuse in cse_hits on the response and /v1/stats.
func TestCSEClusterFragmentDedupe(t *testing.T) {
	g := clusterTestGraph(t)
	var scatters atomic.Int64
	const nShards = 3
	coord, err := cluster.NewCoordinator(countingShardServers(t, g, nShards, &scatters))
	if err != nil {
		t.Fatal(err)
	}

	// 4 plan nodes, 2 distinct fragments (γ=2 three times, γ=3 once).
	res, err := coord.Query(context.Background(),
		"", "topk(k=3, gamma=2); topk(k=3, gamma=2..3) | limit(1); topk(k=3, gamma=2)", 1000)
	if err != nil {
		t.Fatal(err)
	}
	if res.PlanNodes != 4 || res.CSEHits != 2 {
		t.Errorf("plan_nodes=%d cse_hits=%d, want 4 and 2", res.PlanNodes, res.CSEHits)
	}
	if got := scatters.Load(); got != 2*nShards {
		t.Errorf("shard stream opens = %d, want %d (2 fragments x %d shards)", got, 2*nShards, nShards)
	}
	// The acceptance bound: strictly fewer scatters than one per node.
	if got := scatters.Load(); got >= int64(res.PlanNodes*nShards) {
		t.Errorf("dedupe saved nothing: %d opens for %d nodes", got, res.PlanNodes)
	}
	// Shared nodes carry the same merged answer as their fragment leader.
	lead, err := json.Marshal(res.Results[0].Nodes[0].Communities)
	if err != nil {
		t.Fatal(err)
	}
	dup, err := json.Marshal(res.Results[2].Nodes[0].Communities)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Results[2].Nodes[0].Shared || string(lead) != string(dup) {
		t.Errorf("duplicate fragment: shared=%v\nlead %s\ndup  %s", res.Results[2].Nodes[0].Shared, lead, dup)
	}

	stats := coord.Stats()
	if stats.PlanNodes != 4 || stats.CSEHits != 2 {
		t.Errorf("stats plan_nodes=%d cse_hits=%d, want 4 and 2", stats.PlanNodes, stats.CSEHits)
	}
}

// TestPlanClusterQueryRejections covers the coordinator's refusal surface:
// near is not shard-safe, parse errors and oversized k are client errors.
func TestPlanClusterQueryRejections(t *testing.T) {
	g := clusterTestGraph(t)
	coord, err := cluster.NewCoordinator(shardServers(t, g, 2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := coord.Query(context.Background(), "", "near(seeds=[1], k=2)", 1000); err == nil || !strings.Contains(err.Error(), "shard-safe") {
		t.Errorf("near: err = %v, want shard-safe rejection", err)
	}

	front := httptest.NewServer(cluster.NewHandler(coord, 10))
	defer front.Close()
	cases := []struct {
		name string
		body string
		code int
	}{
		{"near", `{"query":"near(seeds=[1], k=2)"}`, http.StatusBadRequest},
		{"parse error", `{"query":"topk(k=)"}`, http.StatusBadRequest},
		{"k over maxK", `{"query":"topk(k=11)"}`, http.StatusBadRequest},
		{"bad json", `{"query":`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		code, body := postClusterQuery(t, front, tc.body)
		if code != tc.code {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, code, tc.code, body)
		}
	}
}
