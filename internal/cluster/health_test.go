package cluster

import (
	"testing"
	"time"
)

func TestBreakerStateMachine(t *testing.T) {
	t0 := time.Unix(1000, 0)
	b := breaker{threshold: 3, cooldown: time.Second}

	if !b.admit(t0) {
		t.Fatal("closed breaker must admit")
	}
	b.failure(t0)
	b.failure(t0)
	if state, fails, trips := b.snapshot(t0); state != breakerClosed || fails != 2 || trips != 0 {
		t.Fatalf("after 2 failures: %s fails=%d trips=%d", state, fails, trips)
	}
	// A success resets the consecutive count: failures must be consecutive
	// to trip the breaker.
	b.success()
	b.failure(t0)
	b.failure(t0)
	if state, _, _ := b.snapshot(t0); state != breakerClosed {
		t.Fatalf("non-consecutive failures tripped the breaker: %s", state)
	}
	b.failure(t0)
	if state, _, trips := b.snapshot(t0); state != breakerOpen || trips != 1 {
		t.Fatalf("after threshold consecutive failures: %s trips=%d, want open/1", state, trips)
	}
	if b.admit(t0.Add(b.cooldown / 2)) {
		t.Fatal("open breaker admitted before the cooldown elapsed")
	}

	// Cooldown elapsed: half-open, attempts admitted as trials.
	due := t0.Add(b.cooldown)
	if state, _, _ := b.snapshot(due); state != breakerHalfOpen {
		t.Fatalf("due breaker reports %s, want half-open", state)
	}
	if !b.admit(due) {
		t.Fatal("half-open breaker must admit a trial")
	}
	// A failed trial re-arms the cooldown without another trip.
	b.failure(due)
	if b.admit(due.Add(b.cooldown / 2)) {
		t.Fatal("failed trial did not re-arm the cooldown")
	}
	if _, _, trips := b.snapshot(due); trips != 1 {
		t.Fatalf("failed trial counted as a new trip: %d", trips)
	}
	// A successful trial closes it.
	b.success()
	if state, fails, _ := b.snapshot(due); state != breakerClosed || fails != 0 {
		t.Fatalf("after successful trial: %s fails=%d, want closed/0", state, fails)
	}
}

func TestBreakerDisabled(t *testing.T) {
	var b breaker // zero threshold: disabled
	now := time.Now()
	for i := 0; i < 100; i++ {
		b.failure(now)
	}
	if !b.admit(now) {
		t.Fatal("disabled breaker rejected an attempt")
	}
	if state, _, trips := b.snapshot(now); state != breakerDisabled || trips != 0 {
		t.Fatalf("disabled breaker reports %s/%d", state, trips)
	}
}

// newTestCoordinator builds a coordinator over fake URLs without probing.
func newTestCoordinator(t *testing.T, replicas int, opts ...Option) *Coordinator {
	t.Helper()
	urls := make([]string, replicas)
	for i := range urls {
		urls[i] = "http://replica" + string(rune('a'+i)) + ".invalid"
	}
	c, err := NewCoordinator([]Shard{{Name: "s0", Replicas: urls}}, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestReplicaOrderPreservesConfiguredOrderWhenUnprobed(t *testing.T) {
	c := newTestCoordinator(t, 3)
	if got := c.replicaOrder(0); got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Fatalf("unprobed order = %v, want configured order", got)
	}
}

func TestReplicaOrderPrefersHealthyLowestEWMA(t *testing.T) {
	c := newTestCoordinator(t, 4)
	// replica 0: probed, up, slow. replica 1: probed, up, fast.
	// replica 2: probed but down. replica 3: never probed.
	c.reps[0][0].setProbe(true, true, 50*time.Millisecond)
	c.reps[0][1].setProbe(true, true, 2*time.Millisecond)
	c.reps[0][2].setProbe(false, false, 0)
	want := []int{1, 0, 3, 2}
	if got := c.replicaOrder(0); len(got) != 4 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] || got[3] != want[3] {
		t.Fatalf("order = %v, want %v (healthy by EWMA, then unknown, then down)", got, want)
	}

	// A warming replica (up but not ready) drops to the degraded class:
	// the remaining healthy replica leads, the unknown one follows, and
	// the warming + down pair trails (ordered by EWMA between them).
	c.reps[0][1].setProbe(true, false, 2*time.Millisecond)
	if got := c.replicaOrder(0); got[0] != 0 || got[1] != 3 {
		t.Fatalf("order with warming replica = %v, want [0 3 ...]", got)
	}
}

func TestReplicaOrderPutsOpenBreakerLast(t *testing.T) {
	c := newTestCoordinator(t, 2, WithBreaker(1, time.Hour))
	c.reps[0][0].br.failure(time.Now()) // trips immediately (threshold 1)
	if got := c.replicaOrder(0); got[0] != 1 || got[1] != 0 {
		t.Fatalf("order = %v, want the open-breaker replica last", got)
	}
}

func TestAttemptPlanRetryPasses(t *testing.T) {
	c := newTestCoordinator(t, 2, WithOpenRetries(2))
	plan := c.attemptPlan(0)
	if len(plan) != 6 {
		t.Fatalf("plan length = %d, want 2 replicas × 3 passes", len(plan))
	}
	for i, at := range plan {
		if at.rep != i%2 {
			t.Fatalf("plan[%d].rep = %d, want %d", i, at.rep, i%2)
		}
		wantWait := i == 2 || i == 4 // first slot of each retry pass
		if (at.wait > 0) != wantWait {
			t.Fatalf("plan[%d].wait = %s, backoff expected only at pass starts", i, at.wait)
		}
	}
	// Exponential growth between passes (jitter is ±50%, so the second
	// pass's backoff is at least the base and the third at least 2× base).
	if plan[2].wait < retryBackoff/2 || plan[4].wait < retryBackoff {
		t.Fatalf("backoffs %s, %s do not grow exponentially", plan[2].wait, plan[4].wait)
	}
}

func TestAttemptPlanNoRetries(t *testing.T) {
	c := newTestCoordinator(t, 3, WithOpenRetries(0))
	plan := c.attemptPlan(0)
	if len(plan) != 3 {
		t.Fatalf("plan length = %d, want one pass", len(plan))
	}
	for i, at := range plan {
		if at.wait != 0 {
			t.Fatalf("plan[%d] has backoff %s in the first pass", i, at.wait)
		}
	}
}

func TestCoordinatorDefaults(t *testing.T) {
	c := newTestCoordinator(t, 1)
	if c.shardTimeout != DefaultShardTimeout {
		t.Errorf("shardTimeout = %s, want %s", c.shardTimeout, DefaultShardTimeout)
	}
	if c.breakerThreshold != DefaultBreakerThreshold || c.breakerCooldown != DefaultBreakerCooldown {
		t.Errorf("breaker = %d/%s, want %d/%s",
			c.breakerThreshold, c.breakerCooldown, DefaultBreakerThreshold, DefaultBreakerCooldown)
	}
	if c.openRetries != DefaultOpenRetries {
		t.Errorf("openRetries = %d, want %d", c.openRetries, DefaultOpenRetries)
	}
	if c.probeInterval != 0 || c.hedgeDelay != 0 {
		t.Errorf("probing/hedging must default off: %s/%s", c.probeInterval, c.hedgeDelay)
	}
	// The zero-value footgun: WithShardTimeout(0) must keep the bound.
	z := newTestCoordinator(t, 1, WithShardTimeout(0))
	if z.shardTimeout != DefaultShardTimeout {
		t.Errorf("WithShardTimeout(0) left timeout %s, want default %s", z.shardTimeout, DefaultShardTimeout)
	}
}
