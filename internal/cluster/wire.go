// Package cluster is the distributed serving tier: a scatter-gather
// coordinator that partitions top-k influential-community queries across N
// shard icserver nodes and merges their progressive per-shard streams into
// one global answer.
//
// The tier leans on the paper's decreasing-influence stream (Algorithm 4):
// every shard reports its communities in decreasing influence order, so the
// coordinator can k-way merge the streams and stop as soon as k global
// results dominate every shard's next-candidate bound — each shard then
// cancels its search having done only the output-proportional work the
// progressive algorithm promises. Graphs are partitioned with Partition,
// which keeps connected components whole; an influential community is
// connected, so every community lives entirely inside one shard and the
// merged answer is byte-identical to serving the unpartitioned graph (see
// docs/CLUSTER.md for the full argument).
//
// The wire protocol in this file is shared verbatim with the shard-side
// handler in internal/server, so the two ends cannot drift; the byte-level
// contract is specified in docs/CLUSTER.md.
package cluster

// StreamHeader is the first line of a shard stream response. It arrives
// before any community, so the coordinator can tag even an early-terminated
// stream with the snapshot epoch the shard pinned for the whole query.
type StreamHeader struct {
	// Dataset is the shard-side dataset name the stream runs against.
	Dataset string `json:"dataset"`
	// Mode is the query semantics: "core", "noncontainment", or "truss".
	Mode string `json:"mode"`
	// SnapshotEpoch is the epoch of the snapshot pinned for this stream: 0
	// for immutable backends, the update-batch counter for mutable ones. A
	// shard mid-update keeps serving its pinned snapshot; the epoch tells
	// the coordinator (and ultimately the client) exactly which one.
	SnapshotEpoch uint64 `json:"snapshot_epoch"`
}

// Community is one community on the wire: the JSON shape shared by shard
// stream data lines, single-node /v1/topk responses, and merged coordinator
// responses, so equality across the three is byte-equality.
type Community struct {
	// Influence is f(g): the minimum vertex weight of the community.
	Influence float64 `json:"influence"`
	// Size is the member count.
	Size int `json:"size"`
	// Keynode is the community's unique minimum-weight vertex, as an
	// original vertex ID when the serving backend has whole-graph access
	// and as a weight rank otherwise.
	Keynode int32 `json:"keynode"`
	// Members lists the community's vertices in ascending rank order,
	// identified like Keynode.
	Members []int32 `json:"members"`
	// Labels carries the members' display labels when the graph has them.
	Labels []string `json:"labels,omitempty"`
}

// StreamTrailer is the final line of a clean shard stream. Its presence is
// the integrity check: a stream that ends without one was truncated.
type StreamTrailer struct {
	// Done is always true; it marks the line as a trailer.
	Done bool `json:"done"`
	// Communities is the number of data lines the shard sent.
	Communities int `json:"communities"`
	// Exhausted reports that the shard has no further communities at all —
	// the stream ended because the shard ran dry, not because the
	// requested limit was reached.
	Exhausted bool `json:"exhausted"`
	// AccessedVertices is the final LocalSearch prefix the shard touched;
	// 0 for index-served streams.
	AccessedVertices int `json:"accessed_vertices,omitempty"`
}

// StreamLine is one NDJSON line of a shard stream: exactly one field is
// set. The envelope keeps every line self-describing, so a reader never
// guesses a line's kind from its fields.
type StreamLine struct {
	// Header opens the stream.
	Header *StreamHeader `json:"header,omitempty"`
	// Community is one result, in decreasing influence order.
	Community *Community `json:"community,omitempty"`
	// Trailer closes a clean stream.
	Trailer *StreamTrailer `json:"trailer,omitempty"`
	// Error reports a shard-side failure after the header was sent; the
	// stream ends with it.
	Error string `json:"error,omitempty"`
}

// Query semantics accepted by shards and the coordinator; the values match
// the single-node /v1/topk "mode" response field.
const (
	// ModeCore is the default containment semantics (Algorithm 1/4).
	ModeCore = "core"
	// ModeNonContainment reports only communities with no nested
	// sub-community (§5.1).
	ModeNonContainment = "noncontainment"
	// ModeTruss uses the γ-truss cohesiveness measure (§5.2); shards need
	// whole-graph backends for it.
	ModeTruss = "truss"
)

// StreamPath is the shard-side streaming endpoint the coordinator calls:
// GET {replica}StreamPath?gamma=G&limit=N[&dataset=D][&mode=M].
const StreamPath = "/v1/shard/stream"
