// Tests in this file live in package cluster_test so they can stand up real
// shard servers: internal/server imports internal/cluster for the wire
// types, so the reverse import has to stay out of package cluster.
package cluster_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"influcomm/internal/cluster"
	"influcomm/internal/graph"
	"influcomm/internal/server"
	"influcomm/internal/store"
)

// clusterTestGraph builds four connected components (rings with chords) with
// deliberately colliding weights, so influence ties across shards exercise
// the merge's keynode tie-break.
func clusterTestGraph(t *testing.T) *graph.Graph {
	t.Helper()
	var weights []float64
	var edges [][2]int32
	id := int32(0)
	for c, sz := range []int{14, 11, 9, 6} {
		base := id
		for i := 0; i < sz; i++ {
			weights = append(weights, float64((int(id)*7+c*3)%11+1))
			id++
		}
		for i := int32(0); int(i) < sz; i++ {
			edges = append(edges, [2]int32{base + i, base + (i+1)%int32(sz)})
			if int(i+2) < sz {
				edges = append(edges, [2]int32{base + i, base + i + 2})
			}
		}
	}
	return graph.MustFromEdges(weights, edges)
}

// shardServers partitions g into n shards, serves each from its own
// httptest server, and returns the coordinator topology.
func shardServers(t *testing.T, g *graph.Graph, n int) []cluster.Shard {
	t.Helper()
	parts, err := cluster.Partition(g, n)
	if err != nil {
		t.Fatal(err)
	}
	shards := make([]cluster.Shard, len(parts))
	for i, pg := range parts {
		s, err := server.New(pg)
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(s)
		t.Cleanup(ts.Close)
		shards[i] = cluster.Shard{Name: fmt.Sprintf("shard%d", i), Replicas: []string{ts.URL}}
	}
	return shards
}

// singleCommunities fetches the single-node answer's communities as raw JSON.
func singleCommunities(t *testing.T, url string) json.RawMessage {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Communities json.RawMessage `json:"communities"`
		Error       string          `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%s: status %d: %s", url, resp.StatusCode, body.Error)
	}
	return body.Communities
}

// modeFlag maps a cluster mode to the single-node query flag.
func modeFlag(mode string) string {
	switch mode {
	case cluster.ModeNonContainment:
		return "&noncontainment=1"
	case cluster.ModeTruss:
		return "&truss=1"
	}
	return ""
}

// TestCoordinatorMatchesSingleNode is the tier's core property: for every
// (k, γ, mode) in the matrix, the coordinator's merged answer over a
// partitioned deployment is byte-identical to one node serving the
// unpartitioned graph.
func TestCoordinatorMatchesSingleNode(t *testing.T) {
	g := clusterTestGraph(t)
	s, err := server.New(g)
	if err != nil {
		t.Fatal(err)
	}
	single := httptest.NewServer(s)
	defer single.Close()

	coord, err := cluster.NewCoordinator(shardServers(t, g, 3))
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []string{cluster.ModeCore, cluster.ModeNonContainment, cluster.ModeTruss} {
		for _, gamma := range []int32{2, 3, 4} {
			for _, k := range []int{1, 2, 5, 100} {
				res, err := coord.TopK(context.Background(), "", k, gamma, mode)
				if err != nil {
					t.Fatalf("%s k=%d γ=%d: %v", mode, k, gamma, err)
				}
				if res.Partial {
					t.Fatalf("%s k=%d γ=%d: unexpected partial result", mode, k, gamma)
				}
				got, err := json.Marshal(res.Communities)
				if err != nil {
					t.Fatal(err)
				}
				url := fmt.Sprintf("%s/v1/topk?k=%d&gamma=%d%s", single.URL, k, gamma, modeFlag(mode))
				want := singleCommunities(t, url)
				if string(got) != string(want) {
					t.Errorf("%s k=%d γ=%d:\ncluster %s\nsingle  %s", mode, k, gamma, got, want)
				}
				// γ=2 must produce real communities, or the matrix is vacuous.
				if gamma == 2 && k == 100 && len(res.Communities) == 0 {
					t.Fatalf("%s γ=2: no communities at all", mode)
				}
			}
		}
	}
}

// mutableDeployment is a cluster and a single node over the same graph, both
// backed by mutable stores so updates can be applied in lockstep.
type mutableDeployment struct {
	single   *httptest.Server
	globalMS store.MutableStore
	coord    *cluster.Coordinator
	shardMS  []store.MutableStore // parallel to shard names "shard0"...
	owner    map[int32]int        // original vertex ID -> shard index
}

func newMutableDeployment(t *testing.T, g *graph.Graph, n int) *mutableDeployment {
	t.Helper()
	d := &mutableDeployment{owner: make(map[int32]int)}
	gms, err := store.OpenMutableGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	d.globalMS = gms
	s, err := server.New(g, server.WithDataset("dyn", server.DatasetConfig{Store: gms}))
	if err != nil {
		t.Fatal(err)
	}
	d.single = httptest.NewServer(s)
	t.Cleanup(d.single.Close)

	parts, err := cluster.Partition(g, n)
	if err != nil {
		t.Fatal(err)
	}
	shards := make([]cluster.Shard, len(parts))
	for i, pg := range parts {
		for u := int32(0); int(u) < pg.NumVertices(); u++ {
			d.owner[pg.OrigID(u)] = i
		}
		ms, err := store.OpenMutableGraph(pg)
		if err != nil {
			t.Fatal(err)
		}
		d.shardMS = append(d.shardMS, ms)
		ss, err := server.New(pg, server.WithDataset("dyn", server.DatasetConfig{Store: ms}))
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(ss)
		t.Cleanup(ts.Close)
		shards[i] = cluster.Shard{Name: fmt.Sprintf("shard%d", i), Replicas: []string{ts.URL}}
	}
	d.coord, err = cluster.NewCoordinator(shards)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// apply routes one update batch to the global store and the owning shards.
// Every edge must stay within one shard, or the partition would no longer be
// component-closed.
func (d *mutableDeployment) apply(t *testing.T, batch []store.EdgeUpdate) {
	t.Helper()
	perShard := make(map[int][]store.EdgeUpdate)
	for _, u := range batch {
		su, sv := d.owner[u.U], d.owner[u.V]
		if su != sv {
			t.Fatalf("update (%d,%d) crosses shards %d and %d", u.U, u.V, su, sv)
		}
		perShard[su] = append(perShard[su], u)
	}
	if _, err := d.globalMS.ApplyUpdates(context.Background(), batch); err != nil {
		t.Fatal(err)
	}
	for s, b := range perShard {
		if _, err := d.shardMS[s].ApplyUpdates(context.Background(), b); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCoordinatorMatchesSingleNodeUnderUpdates drives update waves through a
// mutable deployment while background queries hammer both paths (the -race
// payoff), and after every wave — stores quiesced — asserts the matrix
// equivalence again plus the epoch vector.
func TestCoordinatorMatchesSingleNodeUnderUpdates(t *testing.T) {
	g := clusterTestGraph(t)
	d := newMutableDeployment(t, g, 3)

	// Background traffic across both serving paths for the whole test.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_, _ = d.coord.TopK(context.Background(), "dyn", 5, 3, cluster.ModeCore)
				resp, err := http.Get(d.single.URL + "/v1/topk?k=5&gamma=3&dataset=dyn")
				if err == nil {
					resp.Body.Close()
				}
			}
		}()
	}
	defer wg.Wait()
	defer close(stop)

	// Edge waves confined to component 0 (original IDs 0..13): new chords
	// arrive, then some leave again.
	waves := [][]store.EdgeUpdate{
		{{U: 0, V: 3}, {U: 1, V: 4}, {U: 2, V: 5}},
		{{U: 4, V: 7}, {U: 5, V: 8}, {U: 0, V: 3, Delete: true}},
		{{U: 1, V: 4, Delete: true}, {U: 2, V: 5, Delete: true}, {U: 6, V: 9}},
	}
	check := func(wave int) {
		for _, gamma := range []int32{2, 3, 4} {
			for _, k := range []int{1, 5, 100} {
				res, err := d.coord.TopK(context.Background(), "dyn", k, gamma, cluster.ModeCore)
				if err != nil {
					t.Fatalf("wave %d k=%d γ=%d: %v", wave, k, gamma, err)
				}
				got, _ := json.Marshal(res.Communities)
				url := fmt.Sprintf("%s/v1/topk?k=%d&gamma=%d&dataset=dyn", d.single.URL, k, gamma)
				want := singleCommunities(t, url)
				if string(got) != string(want) {
					t.Errorf("wave %d k=%d γ=%d:\ncluster %s\nsingle  %s", wave, k, gamma, got, want)
				}
				for i, ms := range d.shardMS {
					name := fmt.Sprintf("shard%d", i)
					if res.Epochs[name] != ms.SnapshotEpoch() {
						t.Errorf("wave %d: epoch[%s] = %d, store at %d", wave, name, res.Epochs[name], ms.SnapshotEpoch())
					}
				}
			}
		}
	}
	check(0)
	for i, w := range waves {
		d.apply(t, w)
		check(i + 1)
	}
}

// truncatingShard streams a header and one very influential community, then
// drops the connection without a trailer: a mid-stream failure the merge has
// already consumed from.
func truncatingShard(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		enc := json.NewEncoder(w)
		enc.Encode(cluster.StreamLine{Header: &cluster.StreamHeader{Dataset: "default", Mode: cluster.ModeCore, SnapshotEpoch: 7}})
		enc.Encode(cluster.StreamLine{Community: &cluster.Community{
			Influence: 999, Size: 1, Keynode: 1000, Members: []int32{1000},
		}})
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		// Returning here truncates: no trailer, no error line.
	}))
	t.Cleanup(ts.Close)
	return ts
}

// hangingShard streams a header and then stalls until the client gives up.
func hangingShard(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		enc := json.NewEncoder(w)
		enc.Encode(cluster.StreamLine{Header: &cluster.StreamHeader{Dataset: "default", Mode: cluster.ModeCore}})
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		<-r.Context().Done()
	}))
	t.Cleanup(ts.Close)
	return ts
}

func TestShardFailureStrictMode(t *testing.T) {
	g := clusterTestGraph(t)
	shards := shardServers(t, g, 2)
	shards[1] = cluster.Shard{Name: "bad", Replicas: []string{truncatingShard(t).URL}}
	coord, err := cluster.NewCoordinator(shards)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := coord.TopK(context.Background(), "", 5, 3, cluster.ModeCore); err == nil {
		t.Fatal("strict mode: want an error when a shard dies mid-query")
	}
}

func TestShardFailurePartialMode(t *testing.T) {
	g := clusterTestGraph(t)
	shards := shardServers(t, g, 2)
	good := shards[0]
	shards[1] = cluster.Shard{Name: "bad", Replicas: []string{truncatingShard(t).URL}}
	coord, err := cluster.NewCoordinator(shards, cluster.WithPartialResults(true))
	if err != nil {
		t.Fatal(err)
	}
	res, err := coord.TopK(context.Background(), "", 5, 3, cluster.ModeCore)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Partial || len(res.FailedShards) != 1 || res.FailedShards[0] != "bad" {
		t.Fatalf("partial=%v failed=%v, want partial with [bad]", res.Partial, res.FailedShards)
	}
	if _, ok := res.Epochs["bad"]; ok {
		t.Error("a dropped shard must not appear in the epoch vector")
	}
	// The answer is exactly the surviving shard's alone — the truncating
	// shard's fake 999-influence community must not leak into it.
	soloCoord, err := cluster.NewCoordinator([]cluster.Shard{good})
	if err != nil {
		t.Fatal(err)
	}
	solo, err := soloCoord.TopK(context.Background(), "", 5, 3, cluster.ModeCore)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := json.Marshal(res.Communities)
	want, _ := json.Marshal(solo.Communities)
	if string(got) != string(want) {
		t.Errorf("partial answer:\ngot  %s\nwant %s", got, want)
	}
}

func TestShardFailoverMidStream(t *testing.T) {
	g := clusterTestGraph(t)
	shards := shardServers(t, g, 2)
	// The second shard's primary dies mid-stream; its replica is healthy.
	// The coordinator must restart the query and deliver the full answer.
	shards[1].Replicas = append([]string{truncatingShard(t).URL}, shards[1].Replicas...)
	coord, err := cluster.NewCoordinator(shards)
	if err != nil {
		t.Fatal(err)
	}
	res, err := coord.TopK(context.Background(), "", 5, 3, cluster.ModeCore)
	if err != nil {
		t.Fatal(err)
	}
	if res.Partial {
		t.Fatal("failover should produce a complete answer")
	}
	for _, c := range res.Communities {
		if c.Influence == 999 {
			t.Fatal("truncated stream's community leaked into the merged answer")
		}
	}
	if coord.Stats().Failovers == 0 {
		t.Error("failover counter did not move")
	}
}

func TestShardFailoverOpenTime(t *testing.T) {
	g := clusterTestGraph(t)
	shards := shardServers(t, g, 2)
	// Primary refuses connections outright (closed server): the reader fails
	// over before anything is consumed, invisibly to the merge.
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()
	shards[0].Replicas = append([]string{deadURL}, shards[0].Replicas...)
	coord, err := cluster.NewCoordinator(shards)
	if err != nil {
		t.Fatal(err)
	}
	res, err := coord.TopK(context.Background(), "", 3, 3, cluster.ModeCore)
	if err != nil {
		t.Fatal(err)
	}
	if res.Partial || len(res.Communities) == 0 {
		t.Fatalf("partial=%v n=%d, want a complete answer", res.Partial, len(res.Communities))
	}
}

func TestShardTimeout(t *testing.T) {
	g := clusterTestGraph(t)
	shards := shardServers(t, g, 2)
	shards[1] = cluster.Shard{Name: "slow", Replicas: []string{hangingShard(t).URL}}
	coord, err := cluster.NewCoordinator(shards,
		cluster.WithShardTimeout(100*time.Millisecond),
		cluster.WithPartialResults(true))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	res, err := coord.TopK(context.Background(), "", 5, 3, cluster.ModeCore)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("timeout took %s", elapsed)
	}
	if !res.Partial || len(res.FailedShards) != 1 || res.FailedShards[0] != "slow" {
		t.Fatalf("partial=%v failed=%v, want [slow] dropped", res.Partial, res.FailedShards)
	}
}

func TestCoordinatorHandler(t *testing.T) {
	g := clusterTestGraph(t)
	coord, err := cluster.NewCoordinator(shardServers(t, g, 3))
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(cluster.NewHandler(coord, 1000))
	defer front.Close()

	s, err := server.New(g)
	if err != nil {
		t.Fatal(err)
	}
	single := httptest.NewServer(s)
	defer single.Close()

	resp, err := http.Get(front.URL + "/v1/topk?k=4&gamma=3")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		K            int               `json:"k"`
		Gamma        int               `json:"gamma"`
		Mode         string            `json:"mode"`
		Communities  json.RawMessage   `json:"communities"`
		Epochs       map[string]uint64 `json:"epochs"`
		Partial      bool              `json:"partial"`
		FailedShards []string          `json:"failed_shards"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || body.K != 4 || body.Gamma != 3 || body.Mode != "core" {
		t.Fatalf("status %d, body %+v", resp.StatusCode, body)
	}
	if len(body.Epochs) != 3 || body.Partial {
		t.Errorf("epochs %v partial %v", body.Epochs, body.Partial)
	}
	want := singleCommunities(t, single.URL+"/v1/topk?k=4&gamma=3")
	if string(body.Communities) != string(want) {
		t.Errorf("handler communities differ:\ngot  %s\nwant %s", body.Communities, want)
	}

	var health struct {
		Status string `json:"status"`
		Shards int    `json:"shards"`
	}
	hr, err := http.Get(front.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	json.NewDecoder(hr.Body).Decode(&health)
	hr.Body.Close()
	if health.Status != "ok" || health.Shards != 3 {
		t.Errorf("healthz = %+v", health)
	}

	var topo struct {
		Shards []cluster.Shard `json:"shards"`
	}
	cr, err := http.Get(front.URL + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	json.NewDecoder(cr.Body).Decode(&topo)
	cr.Body.Close()
	if len(topo.Shards) != 3 || topo.Shards[0].Name != "shard0" {
		t.Errorf("topology = %+v", topo)
	}

	var stats cluster.Stats
	sr, err := http.Get(front.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	json.NewDecoder(sr.Body).Decode(&stats)
	sr.Body.Close()
	if stats.Queries < 1 || stats.Shards != 3 {
		t.Errorf("stats = %+v", stats)
	}

	for _, q := range []string{
		"?k=0", "?k=x", "?gamma=0", "?mode=bogus", "?truss=1&noncontainment=1", "?k=100000",
	} {
		br, err := http.Get(front.URL + "/v1/topk" + q)
		if err != nil {
			t.Fatal(err)
		}
		br.Body.Close()
		if br.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", q, br.StatusCode)
		}
	}
}
