package cluster

import (
	"reflect"
	"testing"

	"influcomm/internal/graph"
)

// componentsGraph builds a graph of four components with sizes 4, 3, 2, 1.
func componentsGraph(t *testing.T) *graph.Graph {
	t.Helper()
	weights := []float64{9, 8, 7, 6, 5, 4, 3, 2, 1, 10}
	edges := [][2]int32{
		{0, 1}, {1, 2}, {2, 3}, {0, 3}, // component A (4 vertices)
		{4, 5}, {5, 6}, {4, 6}, // component B (3)
		{7, 8}, // component C (2)
		// vertex 9 is isolated: component D (1)
	}
	return graph.MustFromEdges(weights, edges)
}

func TestPartitionComponentClosure(t *testing.T) {
	g := componentsGraph(t)
	shards, err := Partition(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != 2 {
		t.Fatalf("got %d shards, want 2", len(shards))
	}
	// Every vertex appears in exactly one shard, identified by original ID.
	seen := make(map[int32]int)
	total := 0
	var edges int64
	for i, sh := range shards {
		total += sh.NumVertices()
		edges += sh.NumEdges()
		for u := int32(0); int(u) < sh.NumVertices(); u++ {
			id := sh.OrigID(u)
			if prev, dup := seen[id]; dup {
				t.Fatalf("vertex %d in shards %d and %d", id, prev, i)
			}
			seen[id] = i
		}
	}
	if total != g.NumVertices() || edges != g.NumEdges() {
		t.Fatalf("shards cover %d vertices / %d edges, want %d / %d",
			total, edges, g.NumVertices(), g.NumEdges())
	}
	// Component closure: endpoints of every global edge land in one shard.
	for u := int32(0); int(u) < g.NumVertices(); u++ {
		for _, v := range g.UpNeighbors(u) {
			if seen[g.OrigID(u)] != seen[g.OrigID(v)] {
				t.Fatalf("edge (%d,%d) crosses shards", g.OrigID(u), g.OrigID(v))
			}
		}
	}
	// Greedy balance over sizes 4,3,2,1 is 5 vs 5.
	if shards[0].NumVertices() != 5 || shards[1].NumVertices() != 5 {
		t.Errorf("balance: %d vs %d vertices, want 5 vs 5",
			shards[0].NumVertices(), shards[1].NumVertices())
	}
	for i, sh := range shards {
		if err := sh.Validate(); err != nil {
			t.Errorf("shard %d invalid: %v", i, err)
		}
	}
}

func TestPartitionDeterministic(t *testing.T) {
	g := componentsGraph(t)
	a, err := Partition(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Partition(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("%d vs %d shards", len(a), len(b))
	}
	for i := range a {
		ida := make([]int32, a[i].NumVertices())
		idb := make([]int32, b[i].NumVertices())
		for u := range ida {
			ida[u] = a[i].OrigID(int32(u))
		}
		for u := range idb {
			idb[u] = b[i].OrigID(int32(u))
		}
		if !reflect.DeepEqual(ida, idb) {
			t.Fatalf("shard %d differs across runs: %v vs %v", i, ida, idb)
		}
	}
}

func TestPartitionEdgeCases(t *testing.T) {
	g := componentsGraph(t)
	one, err := Partition(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(one) != 1 || one[0] != g {
		t.Error("n=1 should return the graph itself")
	}
	// More shards than components: capped at the component count, none empty.
	many, err := Partition(g, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(many) != 4 {
		t.Fatalf("got %d shards, want 4 (component count)", len(many))
	}
	for i, sh := range many {
		if sh.NumVertices() == 0 {
			t.Errorf("shard %d is empty", i)
		}
	}
	if _, err := Partition(nil, 2); err == nil {
		t.Error("nil graph: no error")
	}
	if _, err := Partition(g, 0); err == nil {
		t.Error("n=0: no error")
	}
}
