package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// NewHandler wraps a Coordinator in the iccoord HTTP front: the same /v1/topk
// query surface as a single icserver node, answered by scatter-gather.
//
//	GET /healthz                          liveness + shard count
//	GET /v1/cluster                       the configured shard topology
//	GET /v1/stats                         coordinator serving counters
//	GET /v1/topk?k=10&gamma=5             merged global top-k
//	    [&dataset=D][&mode=core|noncontainment|truss]
//	    [&truss=1][&noncontainment=1]     single-node flag spelling, same meaning
//	POST /v1/query                        DSL batch, fragments deduplicated
//	    {"query": "...", "dataset": "D"}  then scattered down the shard streams
//
// maxK bounds k exactly like icserver's -maxk.
func NewHandler(c *Coordinator, maxK int) http.Handler {
	h := &handler{c: c, maxK: maxK}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", h.healthz)
	mux.HandleFunc("GET /v1/cluster", h.cluster)
	mux.HandleFunc("GET /v1/stats", h.stats)
	mux.HandleFunc("GET /v1/topk", h.topK)
	mux.HandleFunc("POST /v1/query", h.query)
	return mux
}

type handler struct {
	c    *Coordinator
	maxK int
}

// topKResponse is the coordinator's /v1/topk envelope. Communities carries
// the same Community JSON as a shard stream and a single-node response;
// the cluster-only fields are the epoch vector and the degradation markers.
type topKResponse struct {
	K            int               `json:"k"`
	Gamma        int               `json:"gamma"`
	Mode         string            `json:"mode"`
	Communities  []Community       `json:"communities"`
	Epochs       map[string]uint64 `json:"epochs"`
	Partial      bool              `json:"partial"`
	FailedShards []string          `json:"failed_shards,omitempty"`
	ElapsedMS    float64           `json:"elapsed_ms"`
}

// queryRequest is the body of a coordinator POST /v1/query.
type queryRequest struct {
	// Query is the DSL batch source text.
	Query string `json:"query"`
	// Dataset optionally names the dataset on every shard (a shard's
	// configured dataset override still wins).
	Dataset string `json:"dataset,omitempty"`
}

// queryResponse is the coordinator's /v1/query envelope. Each node carries
// the same Community JSON as every other surface plus its fragment's
// cluster markers (epoch vector, partial, failed shards).
type queryResponse struct {
	Query     string                 `json:"query"`
	Dataset   string                 `json:"dataset,omitempty"`
	Results   []QueryStatementResult `json:"results"`
	PlanNodes int                    `json:"plan_nodes"`
	CSEHits   int                    `json:"cse_hits"`
	ElapsedMS float64                `json:"elapsed_ms"`
}

// maxQueryBody bounds a /v1/query request body.
const maxQueryBody = 1 << 20

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func (h *handler) healthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "shards": len(h.c.Shards())})
}

func (h *handler) cluster(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"shards": h.c.Shards(),
		"status": h.c.Status(),
	})
}

func (h *handler) stats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, h.c.Stats())
}

func (h *handler) topK(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	intOr := func(s string, def int) (int, error) {
		if s == "" {
			return def, nil
		}
		return strconv.Atoi(s)
	}
	k, err := intOr(q.Get("k"), 10)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad k: " + err.Error()})
		return
	}
	gamma, err := intOr(q.Get("gamma"), 5)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad gamma: " + err.Error()})
		return
	}
	if k < 1 || k > h.maxK {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": fmt.Sprintf("k must be in [1, %d]", h.maxK)})
		return
	}
	if gamma < 1 {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "gamma must be >= 1"})
		return
	}
	mode := q.Get("mode")
	useTruss, nonContain := q.Get("truss") == "1", q.Get("noncontainment") == "1"
	switch {
	case mode != "":
		if mode != ModeCore && mode != ModeNonContainment && mode != ModeTruss {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": fmt.Sprintf("unknown mode %q", mode)})
			return
		}
	case useTruss && nonContain:
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "truss and noncontainment are mutually exclusive"})
		return
	case useTruss:
		mode = ModeTruss
	case nonContain:
		mode = ModeNonContainment
	default:
		mode = ModeCore
	}

	start := time.Now()
	res, err := h.c.TopK(r.Context(), q.Get("dataset"), k, int32(gamma), mode)
	if err != nil {
		status := http.StatusBadGateway
		if errors.Is(err, context.DeadlineExceeded) {
			status = http.StatusGatewayTimeout
		}
		writeJSON(w, status, map[string]string{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, &topKResponse{
		K:            k,
		Gamma:        gamma,
		Mode:         mode,
		Communities:  res.Communities,
		Epochs:       res.Epochs,
		Partial:      res.Partial,
		FailedShards: res.FailedShards,
		ElapsedMS:    float64(time.Since(start).Microseconds()) / 1000.0,
	})
}

func (h *handler) query(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxQueryBody)).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad request body: " + err.Error()})
		return
	}
	start := time.Now()
	res, err := h.c.Query(r.Context(), req.Dataset, req.Query, h.maxK)
	if err != nil {
		status := http.StatusBadGateway
		// Parse/plan/shape errors are the client's; shard failures are not.
		if strings.HasPrefix(err.Error(), "query:") ||
			strings.HasPrefix(err.Error(), "cluster: near(") ||
			strings.HasPrefix(err.Error(), "cluster: k must") {
			status = http.StatusBadRequest
		}
		if errors.Is(err, context.DeadlineExceeded) {
			status = http.StatusGatewayTimeout
		}
		writeJSON(w, status, map[string]string{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, &queryResponse{
		Query:     res.Canonical,
		Dataset:   req.Dataset,
		Results:   res.Results,
		PlanNodes: res.PlanNodes,
		CSEHits:   res.CSEHits,
		ElapsedMS: float64(time.Since(start).Microseconds()) / 1000.0,
	})
}
