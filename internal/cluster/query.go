package cluster

import (
	"context"
	"fmt"

	"influcomm/internal/graph"
	"influcomm/internal/query"
)

// This file is the cluster side of the query DSL (internal/query): the one
// community renderer every serving surface shares, the filter-pipeline
// evaluator, and the coordinator batch executor that deduplicates plan
// fragments before scattering them down the existing NDJSON shard streams.

// Render converts one raw search result into the wire Community shape.
// Every serving surface — single-node /v1/topk, shard streams, merged
// coordinator answers, DSL plan nodes — renders through this function, so
// equality across surfaces is byte-equality. With a whole graph, keynode
// and members are translated to original vertex IDs and labels are
// attached; without one (semi-external backends) they stay weight ranks.
func Render(g *graph.Graph, influence float64, keynode int32, members []int32) Community {
	c := Community{
		Influence: influence,
		Size:      len(members),
		Keynode:   keynode,
	}
	if g == nil {
		c.Members = append(c.Members, members...)
		return c
	}
	c.Keynode = g.OrigID(keynode)
	for _, v := range members {
		c.Members = append(c.Members, g.OrigID(v))
		if g.HasLabels() {
			c.Labels = append(c.Labels, g.Label(v))
		}
	}
	return c
}

// ApplyDSLFilters runs a statement's filter pipeline over a plan node's
// communities, in pipeline order: predicates (label/influence/size) keep or
// drop, limit truncates what has survived so far. The input is never
// mutated — shared plan-node results stay intact for the other statements
// reusing them — and an empty pipeline returns the input as-is, preserving
// byte-identity with the unfiltered fixed-shape answer.
func ApplyDSLFilters(fs []query.Filter, comms []Community) []Community {
	out := comms
	for _, f := range fs {
		if f.Name == query.FilterLimit {
			if len(out) > f.Int {
				out = out[:f.Int:f.Int]
			}
			continue
		}
		kept := make([]Community, 0, len(out))
		for _, c := range out {
			if f.Keep(c.Influence, c.Size, c.Labels) {
				kept = append(kept, c)
			}
		}
		out = kept
	}
	return out
}

// QueryNodeResult is one executed plan node in a coordinator DSL answer:
// the fixed shape it ran, the merged communities after the statement's
// filters, and the scatter-gather markers of the fragment that produced it.
type QueryNodeResult struct {
	// K, Gamma, and Mode are the node's fixed shape.
	K     int    `json:"k"`
	Gamma int    `json:"gamma"`
	Mode  string `json:"mode"`
	// Path is the access path the planner assigned ("scatter" on the
	// coordinator — every fragment rides the shard streams).
	Path string `json:"path"`
	// Shared marks nodes served by a fragment another node in the batch
	// already computed (a common-subexpression hit).
	Shared bool `json:"shared,omitempty"`
	// Communities is the merged global answer after filters.
	Communities []Community `json:"communities"`
	// Epochs is the fragment's per-shard snapshot epoch vector.
	Epochs map[string]uint64 `json:"epochs"`
	// Partial and FailedShards carry the fragment's degradation markers.
	Partial      bool     `json:"partial,omitempty"`
	FailedShards []string `json:"failed_shards,omitempty"`
}

// QueryStatementResult groups the executed nodes of one statement, in plan
// (γ, then semantics) order, under the statement's canonical form.
type QueryStatementResult struct {
	// Statement is the canonical print of the statement.
	Statement string `json:"statement"`
	// Nodes holds one result per plan node the statement expanded to.
	Nodes []QueryNodeResult `json:"nodes"`
}

// QueryResult is one executed DSL batch.
type QueryResult struct {
	// Canonical is the batch's canonical print.
	Canonical string
	// Results holds one entry per statement, in input order.
	Results []QueryStatementResult
	// PlanNodes is how many plan nodes the batch expanded to.
	PlanNodes int
	// CSEHits is how many of those were served from a fragment already
	// computed for an earlier node of the same batch.
	CSEHits int
}

// Query parses and executes one DSL batch by scatter-gather: the batch is
// planned into fixed-shape nodes, duplicate fragments (equal canonical
// keys) are computed once, and each distinct fragment runs as a normal
// scatter down the shard streams. Seed-scoped (near) statements are
// rejected — reweighting by seed distance is a whole-graph transform, so a
// per-shard local answer is not a fragment of the global one. maxK bounds
// every node's k; non-positive means unbounded.
func (c *Coordinator) Query(ctx context.Context, dataset, src string, maxK int) (*QueryResult, error) {
	q, err := query.Parse(src)
	if err != nil {
		return nil, err
	}
	nodes, err := query.PlanQuery(q, func(mode string, near bool) string { return query.PathScatter })
	if err != nil {
		return nil, err
	}
	for _, n := range nodes {
		if !n.FixedShape() {
			return nil, fmt.Errorf("cluster: near(...) is not shard-safe (seed reweighting is global); query a single node instead")
		}
		if maxK > 0 && n.K > maxK {
			return nil, fmt.Errorf("cluster: k must be in [1, %d]", maxK)
		}
	}
	c.planNodes.Add(int64(len(nodes)))

	// Fragment dedupe: one scatter per distinct canonical key. Nodes are
	// executed in plan order, so a batch of N overlapping queries performs
	// exactly as many scatters as it has distinct fragments.
	fragments := make(map[string]*Result, len(nodes))
	res := &QueryResult{Canonical: q.String(), PlanNodes: len(nodes)}
	for _, st := range q.Statements {
		res.Results = append(res.Results, QueryStatementResult{Statement: st.String()})
	}
	for _, n := range nodes {
		frag, ok := fragments[n.Key]
		if ok {
			c.cseHits.Add(1)
			res.CSEHits++
		} else {
			frag, err = c.TopK(ctx, dataset, n.K, n.Gamma, n.Mode)
			if err != nil {
				return nil, fmt.Errorf("plan node %s: %w", n.Key, err)
			}
			fragments[n.Key] = frag
		}
		res.Results[n.Stmt].Nodes = append(res.Results[n.Stmt].Nodes, QueryNodeResult{
			K:            n.K,
			Gamma:        int(n.Gamma),
			Mode:         n.Mode,
			Path:         n.Path,
			Shared:       ok,
			Communities:  ApplyDSLFilters(q.Statements[n.Stmt].Filters, frag.Communities),
			Epochs:       frag.Epochs,
			Partial:      frag.Partial,
			FailedShards: frag.FailedShards,
		})
	}
	return res, nil
}
