// Resilience tests: the coordinator under injected faults. Everything
// here drives real shard servers through a seeded faultnet transport, so
// each failure schedule is reproducible by request count.
package cluster_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"influcomm/internal/cluster"
	"influcomm/internal/faultnet"
	"influcomm/internal/graph"
	"influcomm/internal/server"
)

// replicatedShardServers partitions g into n shards and serves each from
// r independent httptest servers (replicas of the same partition).
func replicatedShardServers(t *testing.T, g *graph.Graph, n, r int) []cluster.Shard {
	t.Helper()
	parts, err := cluster.Partition(g, n)
	if err != nil {
		t.Fatal(err)
	}
	shards := make([]cluster.Shard, len(parts))
	for i, pg := range parts {
		sh := cluster.Shard{Name: fmt.Sprintf("shard%d", i)}
		for j := 0; j < r; j++ {
			s, err := server.New(pg)
			if err != nil {
				t.Fatal(err)
			}
			ts := httptest.NewServer(s)
			t.Cleanup(ts.Close)
			sh.Replicas = append(sh.Replicas, ts.URL)
		}
		shards[i] = sh
	}
	return shards
}

func hostOf(t *testing.T, url string) string {
	t.Helper()
	h, ok := strings.CutPrefix(url, "http://")
	if !ok {
		t.Fatalf("unexpected replica URL %s", url)
	}
	return h
}

func mustScript(t *testing.T, dsl string, seed int64) faultnet.Script {
	t.Helper()
	s, err := faultnet.ParseScript(dsl, seed)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func median(ds []time.Duration) time.Duration {
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[len(sorted)/2]
}

// TestCoordinatorMatchesSingleNodeWithResilienceEnabled re-runs the
// tier's core byte-identity property with every resilience feature
// switched on at aggressive settings: probing, breakers, hedging, and
// retry passes change routing, never results.
func TestCoordinatorMatchesSingleNodeWithResilienceEnabled(t *testing.T) {
	g := clusterTestGraph(t)
	s, err := server.New(g)
	if err != nil {
		t.Fatal(err)
	}
	single := httptest.NewServer(s)
	defer single.Close()

	coord, err := cluster.NewCoordinator(replicatedShardServers(t, g, 3, 2),
		cluster.WithHealthProbes(10*time.Millisecond, 200*time.Millisecond),
		cluster.WithBreaker(3, 100*time.Millisecond),
		cluster.WithHedge(time.Millisecond), // hedge nearly every open
		cluster.WithOpenRetries(2),
		cluster.WithShardTimeout(5*time.Second),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	for _, mode := range []string{cluster.ModeCore, cluster.ModeNonContainment, cluster.ModeTruss} {
		for _, gamma := range []int32{2, 3, 4} {
			for _, k := range []int{1, 2, 5, 100} {
				res, err := coord.TopK(context.Background(), "", k, gamma, mode)
				if err != nil {
					t.Fatalf("%s k=%d γ=%d: %v", mode, k, gamma, err)
				}
				if res.Partial {
					t.Fatalf("%s k=%d γ=%d: unexpected partial result", mode, k, gamma)
				}
				got, err := json.Marshal(res.Communities)
				if err != nil {
					t.Fatal(err)
				}
				url := fmt.Sprintf("%s/v1/topk?k=%d&gamma=%d%s", single.URL, k, gamma, modeFlag(mode))
				want := singleCommunities(t, url)
				if string(got) != string(want) {
					t.Errorf("%s k=%d γ=%d:\ncluster %s\nsingle  %s", mode, k, gamma, got, want)
				}
			}
		}
	}
	if st := coord.Stats(); st.Probes == 0 {
		t.Error("probing was on but no probes were counted")
	}
}

// TestBreakerShortCircuitsDeadReplica is the PR's latency acceptance
// criterion: with a black-holed replica in the rotation, the first
// queries pay the shard timeout, the breaker opens, and steady-state
// latency returns to within 2x of the healthy baseline — no per-query
// full shard-timeout penalty.
func TestBreakerShortCircuitsDeadReplica(t *testing.T) {
	g := clusterTestGraph(t)
	shards := replicatedShardServers(t, g, 2, 2)

	tr := faultnet.NewTransport(nil)
	deadHost := hostOf(t, shards[0].Replicas[0])
	tr.Set(deadHost, mustScript(t, "blackhole", 1))
	client := &http.Client{Transport: tr}

	const shardTimeout = 250 * time.Millisecond
	coord, err := cluster.NewCoordinator(shards,
		cluster.WithHTTPClient(client),
		cluster.WithShardTimeout(shardTimeout),
		// A long cooldown keeps the dead replica out of rotation for the
		// whole measurement; recovery is probed separately.
		cluster.WithBreaker(2, time.Hour),
		cluster.WithOpenRetries(0),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	// Healthy baseline: the same topology without the black-holed replica.
	healthy := []cluster.Shard{
		{Name: shards[0].Name, Replicas: shards[0].Replicas[1:]},
		shards[1],
	}
	base, err := cluster.NewCoordinator(healthy,
		cluster.WithHTTPClient(client),
		cluster.WithShardTimeout(shardTimeout),
		cluster.WithOpenRetries(0),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer base.Close()

	query := func(c *cluster.Coordinator) time.Duration {
		start := time.Now()
		if _, err := c.TopK(context.Background(), "", 5, 3, cluster.ModeCore); err != nil {
			t.Fatalf("query: %v", err)
		}
		return time.Since(start)
	}

	var baseline []time.Duration
	for i := 0; i < 20; i++ {
		baseline = append(baseline, query(base))
	}

	// Warm up until the dead replica's breaker has tripped. Each of these
	// queries pays up to the full shard timeout before failing over.
	for i := 0; i < 50 && coord.Stats().BreakerTrips == 0; i++ {
		query(coord)
	}
	if coord.Stats().BreakerTrips == 0 {
		t.Fatal("breaker never tripped on the black-holed replica")
	}

	var steady []time.Duration
	for i := 0; i < 20; i++ {
		steady = append(steady, query(coord))
	}

	baseMed, steadyMed := median(baseline), median(steady)
	// 2x the healthy baseline, plus a small absolute allowance because the
	// baseline is single-digit milliseconds and scheduler noise is not.
	limit := 2*baseMed + 50*time.Millisecond
	if steadyMed > limit {
		t.Errorf("steady-state median %s exceeds 2x healthy baseline %s (+50ms)", steadyMed, baseMed)
	}
	if steadyMed >= shardTimeout {
		t.Errorf("steady-state median %s still pays the shard timeout %s", steadyMed, shardTimeout)
	}
}

// TestHedgedOpenWinsOnSlowReplica: with hedging on, a slow primary does
// not gate the query — the hedge fires, the fast replica's header wins,
// and the result is still byte-identical to single-node.
func TestHedgedOpenWinsOnSlowReplica(t *testing.T) {
	g := clusterTestGraph(t)
	s, err := server.New(g)
	if err != nil {
		t.Fatal(err)
	}
	single := httptest.NewServer(s)
	defer single.Close()

	shards := replicatedShardServers(t, g, 1, 2)
	tr := faultnet.NewTransport(nil)
	tr.Set(hostOf(t, shards[0].Replicas[0]), mustScript(t, "latency=400ms", 1))
	coord, err := cluster.NewCoordinator(shards,
		cluster.WithHTTPClient(&http.Client{Transport: tr}),
		cluster.WithHedge(30*time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	start := time.Now()
	res, err := coord.TopK(context.Background(), "", 5, 3, cluster.ModeCore)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed >= 400*time.Millisecond {
		t.Errorf("query took %s: the hedge did not rescue it from the slow primary", elapsed)
	}
	got, _ := json.Marshal(res.Communities)
	want := singleCommunities(t, single.URL+"/v1/topk?k=5&gamma=3")
	if string(got) != string(want) {
		t.Errorf("hedged answer differs:\ngot  %s\nwant %s", got, want)
	}
	st := coord.Stats()
	if st.Hedges == 0 || st.HedgesWon == 0 {
		t.Errorf("hedge counters = fired %d won %d, want both > 0", st.Hedges, st.HedgesWon)
	}
}

// TestProbesDriveBreakerAndRecovery: active probing alone — no query
// traffic — opens the breaker of a failing replica, marks it down, and
// re-admits it within a probe interval of recovery.
func TestProbesDriveBreakerAndRecovery(t *testing.T) {
	g := clusterTestGraph(t)
	shards := replicatedShardServers(t, g, 1, 2)
	tr := faultnet.NewTransport(nil)
	sickHost := hostOf(t, shards[0].Replicas[0])
	tr.Set(sickHost, mustScript(t, "status=503", 1))
	coord, err := cluster.NewCoordinator(shards,
		cluster.WithHTTPClient(&http.Client{Transport: tr}),
		cluster.WithHealthProbes(10*time.Millisecond, 200*time.Millisecond),
		cluster.WithBreaker(3, 50*time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	sick := func() cluster.ReplicaStatus { return coord.Status()[0].Replicas[0] }
	waitFor(t, "probes to open the sick replica's breaker", func() bool {
		r := sick()
		return r.Probed && !r.Up && r.Breaker != "closed" && r.Trips >= 1
	})

	// Queries keep working throughout: the healthy replica serves.
	if _, err := coord.TopK(context.Background(), "", 3, 3, cluster.ModeCore); err != nil {
		t.Fatalf("query during outage: %v", err)
	}

	// Heal the replica: the next successful probe re-admits it.
	tr.Clear(sickHost)
	waitFor(t, "probe re-admission after recovery", func() bool {
		r := sick()
		return r.Up && r.Ready && r.Breaker == "closed"
	})
	if st := coord.Stats(); st.Probes == 0 || st.BreakerTrips == 0 {
		t.Errorf("stats = probes %d trips %d, want both > 0", st.Probes, st.BreakerTrips)
	}
}

// TestFlappingReplicasSoak is the chaos property test: replicas flap on
// seeded request-count schedules (5xx bursts on one shard, mid-stream
// truncations on the other) under concurrent query traffic, with
// probing, breakers, hedging, and retries all on. Every query must
// succeed (the second replica of each shard stays healthy) and answer
// byte-identical to single-node; after the faults stop, breaker state
// must converge back to closed. CHAOS_SOAK extends the soak duration
// (e.g. CHAOS_SOAK=60s in the nightly chaos workflow).
func TestFlappingReplicasSoak(t *testing.T) {
	soak := 1500 * time.Millisecond
	if v := os.Getenv("CHAOS_SOAK"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil {
			t.Fatalf("bad CHAOS_SOAK %q: %v", v, err)
		}
		soak = d
	}

	g := clusterTestGraph(t)
	s, err := server.New(g)
	if err != nil {
		t.Fatal(err)
	}
	single := httptest.NewServer(s)
	defer single.Close()

	// Reference answers, fetched once: the graph is static.
	type qcase struct {
		k     int
		gamma int32
	}
	cases := []qcase{{1, 2}, {5, 2}, {5, 3}, {100, 3}, {2, 4}}
	want := make(map[qcase]string)
	for _, qc := range cases {
		url := fmt.Sprintf("%s/v1/topk?k=%d&gamma=%d", single.URL, qc.k, qc.gamma)
		want[qc] = string(singleCommunities(t, url))
	}

	shards := replicatedShardServers(t, g, 2, 2)
	tr := faultnet.NewTransport(nil)
	flap0 := hostOf(t, shards[0].Replicas[0])
	flap1 := hostOf(t, shards[1].Replicas[0])
	// Shard 0's first replica rejects in bursts (open-time failures);
	// shard 1's first replica drops streams mid-flight after the header
	// plus one community (committed-stream failures force full-gather
	// restarts). Probes share the transport, so they are faulted too.
	tr.Set(flap0, mustScript(t, "up,for=8;status=503,for=4;loop", 11))
	tr.Set(flap1, mustScript(t, "up,for=6;truncate=2l,for=2;loop", 12))

	coord, err := cluster.NewCoordinator(shards,
		cluster.WithHTTPClient(&http.Client{Transport: tr}),
		cluster.WithShardTimeout(2*time.Second),
		cluster.WithHealthProbes(25*time.Millisecond, 500*time.Millisecond),
		cluster.WithBreaker(3, 100*time.Millisecond),
		cluster.WithHedge(50*time.Millisecond),
		cluster.WithOpenRetries(1),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				qc := cases[(w+i)%len(cases)]
				res, err := coord.TopK(context.Background(), "", qc.k, qc.gamma, cluster.ModeCore)
				if err != nil {
					t.Errorf("worker %d query %d (k=%d γ=%d): %v", w, i, qc.k, qc.gamma, err)
					return
				}
				if res.Partial {
					t.Errorf("worker %d query %d: partial answer in strict mode", w, i)
					return
				}
				got, _ := json.Marshal(res.Communities)
				if string(got) != want[qc] {
					t.Errorf("worker %d query %d (k=%d γ=%d): answer diverged under faults:\ngot  %s\nwant %s",
						w, i, qc.k, qc.gamma, got, want[qc])
					return
				}
			}
		}(w)
	}
	time.Sleep(soak)
	close(stop)
	wg.Wait()

	if st := coord.Stats(); st.Failovers == 0 {
		t.Log("note: soak finished without a single failover — faults may not have fired")
	}

	// Faults off: breaker state must converge back to closed and both
	// flapping replicas must be probed up and re-admitted.
	tr.Clear(flap0)
	tr.Clear(flap1)
	waitFor(t, "breakers to converge after the faults stop", func() bool {
		for _, sh := range coord.Status() {
			for _, r := range sh.Replicas {
				if r.Breaker != "closed" || !r.Up || !r.Ready {
					return false
				}
			}
		}
		return true
	})
	// And the converged cluster still answers byte-identically.
	for _, qc := range cases {
		res, err := coord.TopK(context.Background(), "", qc.k, qc.gamma, cluster.ModeCore)
		if err != nil {
			t.Fatalf("post-soak k=%d γ=%d: %v", qc.k, qc.gamma, err)
		}
		got, _ := json.Marshal(res.Communities)
		if string(got) != want[qc] {
			t.Errorf("post-soak k=%d γ=%d:\ngot  %s\nwant %s", qc.k, qc.gamma, got, want[qc])
		}
	}
}
