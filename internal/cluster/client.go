package cluster

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
)

// shardStream is one open NDJSON stream from a shard replica: the header has
// been read and validated, communities and the trailer follow via Next.
type shardStream struct {
	header StreamHeader
	body   io.ReadCloser
	sc     *bufio.Scanner
}

// maxLineBytes bounds a single stream line. Community lines grow with
// membership; 16 MiB allows communities of roughly a million members.
const maxLineBytes = 16 << 20

// openStream issues the shard request and reads through the header line.
// Every failure before the header — connection refused, non-200 status, a
// malformed or missing header — is an open-time failure: nothing from this
// replica has been consumed, so the caller can fail over to the next replica
// without disturbing an in-progress merge.
func openStream(ctx context.Context, client *http.Client, base, dataset, mode string, gamma int32, limit int) (*shardStream, error) {
	v := url.Values{}
	v.Set("gamma", strconv.Itoa(int(gamma)))
	v.Set("limit", strconv.Itoa(limit))
	v.Set("mode", mode)
	if dataset != "" {
		v.Set("dataset", dataset)
	}
	u := strings.TrimSuffix(base, "/") + StreamPath + "?" + v.Encode()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, fmt.Errorf("cluster: building request for %s: %w", base, err)
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, fmt.Errorf("cluster: %s: %w", base, err)
	}
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
		resp.Body.Close()
		return nil, fmt.Errorf("cluster: %s returned %d: %s", base, resp.StatusCode, strings.TrimSpace(string(msg)))
	}
	ss := &shardStream{body: resp.Body, sc: bufio.NewScanner(resp.Body)}
	ss.sc.Buffer(make([]byte, 64*1024), maxLineBytes)
	line, err := ss.next()
	if err != nil {
		resp.Body.Close()
		return nil, fmt.Errorf("cluster: %s: reading stream header: %w", base, err)
	}
	if line.Header == nil {
		resp.Body.Close()
		return nil, fmt.Errorf("cluster: %s: stream did not open with a header line", base)
	}
	ss.header = *line.Header
	return ss, nil
}

// next reads and decodes one stream line.
func (ss *shardStream) next() (*StreamLine, error) {
	if !ss.sc.Scan() {
		if err := ss.sc.Err(); err != nil {
			return nil, err
		}
		return nil, io.ErrUnexpectedEOF
	}
	var line StreamLine
	if err := json.Unmarshal(ss.sc.Bytes(), &line); err != nil {
		return nil, fmt.Errorf("malformed stream line: %w", err)
	}
	return &line, nil
}

// Next returns the next community, or the trailer when the stream ends
// cleanly. Exactly one of the returns is non-nil/non-error. A stream that
// ends without a trailer — the connection dropped, or the shard sent an
// error line — is reported as an error: the trailer is the integrity check.
func (ss *shardStream) Next() (*Community, *StreamTrailer, error) {
	line, err := ss.next()
	if err != nil {
		if err == io.ErrUnexpectedEOF {
			err = fmt.Errorf("stream truncated before trailer")
		}
		return nil, nil, err
	}
	switch {
	case line.Community != nil:
		return line.Community, nil, nil
	case line.Trailer != nil:
		return nil, line.Trailer, nil
	case line.Error != "":
		return nil, nil, fmt.Errorf("shard error: %s", line.Error)
	default:
		return nil, nil, fmt.Errorf("stream line is neither community, trailer, nor error")
	}
}

// Close releases the underlying connection. Closing before the trailer
// cancels the shard-side search — this is how the coordinator's early
// termination propagates.
func (ss *shardStream) Close() error { return ss.body.Close() }
