package cluster

import (
	"fmt"
	"sort"

	"influcomm/internal/dsu"
	"influcomm/internal/graph"
)

// Partition splits g into at most n shard graphs whose vertex sets are
// unions of whole connected components, balanced greedily by vertex count
// (largest component first onto the lightest shard). The result is
// deterministic for a given graph.
//
// Component closure is the property the scatter-gather merge relies on: an
// influential γ-community (core or truss) is connected, so it lies inside
// one component and therefore inside exactly one shard; and because a shard
// holds only whole components, its communities are exactly the global
// communities of those components. InducedSubgraph preserves weights,
// original IDs, labels, and the relative rank order, so per-shard results
// merge back into the unpartitioned graph's answers byte for byte.
//
// When g has fewer components than n, fewer than n shards are returned —
// a shard is never empty. n == 1 returns g itself.
func Partition(g *graph.Graph, n int) ([]*graph.Graph, error) {
	if g == nil || g.NumVertices() == 0 {
		return nil, fmt.Errorf("cluster: cannot partition a nil or empty graph")
	}
	if n < 1 {
		return nil, fmt.Errorf("cluster: shard count %d must be at least 1", n)
	}
	if n == 1 {
		return []*graph.Graph{g}, nil
	}
	nv := g.NumVertices()
	d := dsu.New(nv)
	for u := int32(0); int(u) < nv; u++ {
		for _, v := range g.UpNeighbors(u) {
			d.Union(u, v)
		}
	}
	// Components keyed by root, members collected in ascending rank order.
	sizes := make(map[int32]int)
	for u := int32(0); int(u) < nv; u++ {
		sizes[d.Find(u)]++
	}
	type component struct {
		root int32
		size int
	}
	comps := make([]component, 0, len(sizes))
	for root, size := range sizes {
		comps = append(comps, component{root, size})
	}
	// Largest first; equal sizes by root rank so the assignment is
	// deterministic regardless of map iteration order.
	sort.Slice(comps, func(i, j int) bool {
		if comps[i].size != comps[j].size {
			return comps[i].size > comps[j].size
		}
		return comps[i].root < comps[j].root
	})
	if len(comps) < n {
		n = len(comps)
	}
	assign := make(map[int32]int, len(comps)) // component root -> shard
	load := make([]int, n)
	for _, c := range comps {
		best := 0
		for s := 1; s < n; s++ {
			if load[s] < load[best] {
				best = s
			}
		}
		assign[c.root] = best
		load[best] += c.size
	}
	members := make([][]int32, n)
	for s := range members {
		members[s] = make([]int32, 0, load[s])
	}
	for u := int32(0); int(u) < nv; u++ {
		members[assign[d.Find(u)]] = append(members[assign[d.Find(u)]], u)
	}
	shards := make([]*graph.Graph, n)
	for s := range shards {
		sub, err := graph.InducedSubgraph(g, members[s])
		if err != nil {
			return nil, fmt.Errorf("cluster: building shard %d: %w", s, err)
		}
		shards[s] = sub
	}
	return shards, nil
}
