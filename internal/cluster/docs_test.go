package cluster

import (
	"os"
	"reflect"
	"regexp"
	"strings"
	"testing"
)

// The coordinator's /v1/stats fields are pinned to docs/OPERATIONS.md the
// same way the shard server's are (see internal/server/docs_test.go); the
// tiny parser is duplicated rather than exported — it is test scaffolding,
// not API.

var docFieldRow = regexp.MustCompile("(?m)^\\| `([a-z0-9_]+)`")

func docFields(t *testing.T, path, section string) map[string]bool {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading %s: %v", path, err)
	}
	begin := "<!-- fields:" + section + ":begin -->"
	_, rest, ok := strings.Cut(string(data), begin)
	if !ok {
		t.Fatalf("%s: marker %q not found", path, begin)
	}
	body, _, ok := strings.Cut(rest, "<!-- fields:"+section+":end -->")
	if !ok {
		t.Fatalf("%s: end marker for %q not found", path, section)
	}
	fields := make(map[string]bool)
	for _, m := range docFieldRow.FindAllStringSubmatch(body, -1) {
		fields[m[1]] = true
	}
	if len(fields) == 0 {
		t.Fatalf("%s: section %s documents no fields", path, section)
	}
	return fields
}

func jsonFields(t *testing.T, v any) map[string]bool {
	t.Helper()
	fields := make(map[string]bool)
	rt := reflect.TypeOf(v)
	for i := 0; i < rt.NumField(); i++ {
		name, _, _ := strings.Cut(rt.Field(i).Tag.Get("json"), ",")
		if name != "" && name != "-" {
			fields[name] = true
		}
	}
	return fields
}

// TestCoordinatorStatsDocumented pins the iccoord /v1/stats fields to
// docs/OPERATIONS.md in both directions.
func TestCoordinatorStatsDocumented(t *testing.T) {
	code := jsonFields(t, Stats{})
	doc := docFields(t, "../../docs/OPERATIONS.md", "coordinator-stats")
	for f := range code {
		if !doc[f] {
			t.Errorf("coordinator /v1/stats field %q is not documented", f)
		}
	}
	for f := range doc {
		if !code[f] {
			t.Errorf("documented coordinator stats field %q is no longer emitted", f)
		}
	}
}

// TestReplicaStatusFieldsDocumented pins the per-replica resilience
// status (Stats.ShardStatus[].Replicas[] and /v1/cluster "status") to the
// replica-status table in docs/CLUSTER.md.
func TestReplicaStatusFieldsDocumented(t *testing.T) {
	code := jsonFields(t, ReplicaStatus{})
	doc := docFields(t, "../../docs/CLUSTER.md", "coordinator-replica")
	for f := range code {
		if !doc[f] {
			t.Errorf("coordinator replica-status field %q is not documented", f)
		}
	}
	for f := range doc {
		if !code[f] {
			t.Errorf("documented replica-status field %q is no longer emitted", f)
		}
	}
}

// TestTopKResponseFieldsDocumented pins the iccoord /v1/topk envelope to the
// response-shape table in docs/CLUSTER.md.
func TestTopKResponseFieldsDocumented(t *testing.T) {
	code := jsonFields(t, topKResponse{})
	doc := docFields(t, "../../docs/CLUSTER.md", "coordinator-topk")
	for f := range code {
		if !doc[f] {
			t.Errorf("coordinator /v1/topk field %q is not documented", f)
		}
	}
	for f := range doc {
		if !code[f] {
			t.Errorf("documented coordinator topk field %q is no longer emitted", f)
		}
	}
}

// TestQueryEnvelopeDocumented pins the iccoord /v1/query envelope — the
// top-level payload, the per-statement objects, and the per-node
// fragment results — to the coordinator-query table in docs/CLUSTER.md.
func TestQueryEnvelopeDocumented(t *testing.T) {
	code := jsonFields(t, queryResponse{})
	for f := range jsonFields(t, QueryStatementResult{}) {
		code[f] = true
	}
	for f := range jsonFields(t, QueryNodeResult{}) {
		code[f] = true
	}
	doc := docFields(t, "../../docs/CLUSTER.md", "coordinator-query")
	for f := range code {
		if !doc[f] {
			t.Errorf("coordinator /v1/query field %q is not documented", f)
		}
	}
	for f := range doc {
		if !code[f] {
			t.Errorf("documented coordinator query field %q is no longer emitted", f)
		}
	}
}
