package workload

import (
	"os"
	"testing"

	"influcomm/internal/kcore"
)

func TestRegistryLoads(t *testing.T) {
	if testing.Short() {
		t.Skip("dataset generation in -short mode")
	}
	d, err := ByName("email")
	if err != nil {
		t.Fatal(err)
	}
	g, err := d.Load()
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != d.N {
		t.Fatalf("email has %d vertices, want %d", g.NumVertices(), d.N)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("generated graph invalid: %v", err)
	}
	// Weights must be PageRank scores: positive and summing to ~1.
	var sum float64
	for u := int32(0); int(u) < g.NumVertices(); u++ {
		w := g.Weight(u)
		if w <= 0 {
			t.Fatalf("vertex %d has non-positive PageRank %v", u, w)
		}
		sum += w
	}
	if sum < 0.99 || sum > 1.01 {
		t.Fatalf("PageRank weights sum to %v, want ~1", sum)
	}
	// γmax must support the default γ=10 queries.
	if gmax := kcore.MaxCore(g); gmax < 5 {
		t.Fatalf("email γmax = %d, too small for experiments", gmax)
	}
	// Loading again returns the cached instance.
	g2, err := d.Load()
	if err != nil {
		t.Fatal(err)
	}
	if g2 != g {
		t.Error("Load is not cached")
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("facebook"); err == nil {
		t.Error("unknown dataset: want error")
	}
}

func TestEdgeFileCached(t *testing.T) {
	if testing.Short() {
		t.Skip("dataset generation in -short mode")
	}
	d, err := ByName("email")
	if err != nil {
		t.Fatal(err)
	}
	p1, err := d.EdgeFile()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(p1); err != nil {
		t.Fatalf("edge file missing: %v", err)
	}
	p2, err := d.EdgeFile()
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("EdgeFile is not cached")
	}
}

func TestClampGamma(t *testing.T) {
	cases := []struct{ gamma, gmax, want int32 }{
		{10, 43, 10},
		{50, 43, 43},
		{50, 0, 1},
		{0, 10, 1},
	}
	for _, c := range cases {
		if got := ClampGamma(c.gamma, c.gmax); got != c.want {
			t.Errorf("ClampGamma(%d, %d) = %d, want %d", c.gamma, c.gmax, got, c.want)
		}
	}
}
