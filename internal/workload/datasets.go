// Package workload defines the experimental setup of §6: a registry of
// deterministic synthetic stand-ins for the paper's eight real graphs
// (offline substitution, DESIGN.md §4), PageRank vertex weighting exactly
// as the paper assigns it, and the query parameter grids of each figure.
//
// Stand-ins preserve the properties the algorithms are sensitive to —
// heavy-tailed degree distributions, the relative size ordering of the
// datasets, and density differences — at a scale where every experiment
// runs on a laptop in minutes.
package workload

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"influcomm/internal/gen"
	"influcomm/internal/graph"
	"influcomm/internal/pagerank"
	"influcomm/internal/semiext"
)

// Dataset describes one synthetic stand-in.
type Dataset struct {
	// Name matches the paper's dataset (lowercase).
	Name string
	// N is the vertex count of the stand-in.
	N int
	// EdgesPerVertex is the preferential-attachment density parameter.
	EdgesPerVertex int
	// TriangleP is the Holme–Kim triangle-closure probability, giving the
	// stand-in the clustering of a real social/web graph.
	TriangleP float64
	// Seed makes generation deterministic.
	Seed uint64
	// SkipOnlineAll mirrors the paper's omission of OnlineAll on its three
	// largest graphs (it ran out of memory there; here it would only burn
	// wall-clock on the quadratic global scan).
	SkipOnlineAll bool
}

// Registry lists the eight stand-ins in the paper's Table 1 order.
var Registry = []Dataset{
	{Name: "email", N: 3000, EdgesPerVertex: 5, TriangleP: 0.5, Seed: 101},
	{Name: "youtube", N: 6000, EdgesPerVertex: 4, TriangleP: 0.4, Seed: 102},
	{Name: "wiki", N: 6000, EdgesPerVertex: 14, TriangleP: 0.5, Seed: 103},
	{Name: "livejournal", N: 8000, EdgesPerVertex: 12, TriangleP: 0.5, Seed: 104},
	{Name: "orkut", N: 7000, EdgesPerVertex: 28, TriangleP: 0.5, Seed: 105},
	{Name: "arabic", N: 40000, EdgesPerVertex: 18, TriangleP: 0.6, Seed: 106, SkipOnlineAll: true},
	{Name: "uk", N: 50000, EdgesPerVertex: 12, TriangleP: 0.6, Seed: 107, SkipOnlineAll: true},
	{Name: "twitter", N: 45000, EdgesPerVertex: 22, TriangleP: 0.5, Seed: 108, SkipOnlineAll: true},
}

// ByName returns the registered dataset called name.
func ByName(name string) (*Dataset, error) {
	for i := range Registry {
		if Registry[i].Name == name {
			return &Registry[i], nil
		}
	}
	return nil, fmt.Errorf("workload: unknown dataset %q", name)
}

var (
	mu        sync.Mutex
	graphs    = map[string]*graph.Graph{}
	edgeFiles = map[string]string{}
	tmpDir    string
)

// Load generates (or returns the cached) stand-in graph with PageRank
// vertex weights, the paper's weighting (§6, damping 0.85).
func (d *Dataset) Load() (*graph.Graph, error) {
	mu.Lock()
	defer mu.Unlock()
	if g, ok := graphs[d.Name]; ok {
		return g, nil
	}
	raw, err := gen.SocialNetwork(d.N, d.EdgesPerVertex, d.TriangleP, d.Seed)
	if err != nil {
		return nil, fmt.Errorf("workload: generating %s: %w", d.Name, err)
	}
	g, err := pagerank.Reweight(raw, pagerank.Options{})
	if err != nil {
		return nil, fmt.Errorf("workload: weighting %s: %w", d.Name, err)
	}
	graphs[d.Name] = g
	return g, nil
}

// EdgeFile writes (or returns the cached path of) the dataset's on-disk
// semi-external edge file for the Eval-VI/VII experiments.
func (d *Dataset) EdgeFile() (string, error) {
	g, err := d.Load()
	if err != nil {
		return "", err
	}
	mu.Lock()
	defer mu.Unlock()
	if p, ok := edgeFiles[d.Name]; ok {
		return p, nil
	}
	if tmpDir == "" {
		tmpDir, err = os.MkdirTemp("", "influcomm-edges-")
		if err != nil {
			return "", fmt.Errorf("workload: temp dir: %w", err)
		}
	}
	path := filepath.Join(tmpDir, d.Name+".edges")
	if err := semiext.WriteEdgeFile(path, g); err != nil {
		return "", err
	}
	edgeFiles[d.Name] = path
	return path, nil
}

// Cleanup removes cached edge files; call at the end of a harness run.
func Cleanup() {
	mu.Lock()
	defer mu.Unlock()
	if tmpDir != "" {
		os.RemoveAll(tmpDir)
		tmpDir = ""
		edgeFiles = map[string]string{}
	}
}

// Query parameter grids of §6.
var (
	// KGrid is the k sweep of Figures 8, 11, 12, 15, 16, 18.
	KGrid = []int{5, 10, 20, 50, 100}
	// GammaGrid is the γ sweep of Figure 9, scaled to the stand-ins' γmax
	// (the paper used {5, 10, 20, 50} against γmax values of 99–3247).
	GammaGrid = []int32{5, 8, 10, 12}
	// DefaultK and DefaultGamma are the paper's defaults.
	DefaultK     = 10
	DefaultGamma = int32(10)
	// DeltaGrid is the growth-ratio sweep of Figure 13.
	DeltaGrid = []float64{1.5, 2, 3, 4, 8, 16, 32, 64, 128}
	// LargeKGrid and LargeGammaGrid correspond to Figure 10's {250, 500,
	// 1000, 2000}; the γ values are scaled to the stand-ins' γmax (the
	// stand-ins are orders of magnitude smaller than Arabic/Twitter, whose
	// γmax exceeded 2000 — see EXPERIMENTS.md).
	LargeKGrid     = []int{250, 500, 1000, 2000}
	LargeGammaGrid = []int32{8, 12, 16, 20}
)

// ClampGamma lowers gamma to the largest value that is meaningful for g
// (at most γmax would return communities; the paper likewise caps Email's
// γ at 40 because its γmax is 43). It never returns less than 1.
func ClampGamma(gamma, gammaMax int32) int32 {
	if gamma > gammaMax {
		gamma = gammaMax
	}
	if gamma < 1 {
		gamma = 1
	}
	return gamma
}
