package faultnet

import (
	"fmt"
	"strings"
	"time"
)

// ParseScript parses the compact fault-script DSL used by
// iccoordfault and chaos tests into a Script seeded with seed.
//
// Phases are separated by ';'. Each phase is a comma-separated list
// of directives:
//
//	up                 no fault (explicit healthy phase)
//	latency=DUR        add DUR before forwarding (Go duration syntax)
//	ramp=DUR           add DUR×n extra latency to the n-th phase request
//	jitter=DUR         add uniform [0,DUR) seeded-random latency
//	status=N           answer with HTTP status N instead of forwarding
//	blackhole          swallow the request until the client gives up
//	truncate=Nl        cut the response after N body lines
//	truncate=Nb        cut the response after N body bytes
//	for=N              the phase covers N requests (default: forever)
//	loop               restart at the first phase after the last
//
// Example — healthy for 20 requests, then reject 5, forever:
//
//	up,for=20;status=503,for=5;loop
func ParseScript(s string, seed int64) (Script, error) {
	out := Script{Seed: seed}
	for _, phaseSpec := range strings.Split(s, ";") {
		phaseSpec = strings.TrimSpace(phaseSpec)
		if phaseSpec == "" {
			continue
		}
		var ph Phase
		explicit := false
		for _, tok := range strings.Split(phaseSpec, ",") {
			tok = strings.TrimSpace(tok)
			if tok == "" {
				continue
			}
			key, val, hasVal := strings.Cut(tok, "=")
			switch key {
			case "up":
				explicit = true
			case "loop":
				out.Loop = true
				explicit = true
			case "latency", "ramp", "jitter":
				if !hasVal {
					return Script{}, fmt.Errorf("faultnet: %s wants a duration value", key)
				}
				d, err := time.ParseDuration(val)
				if err != nil || d < 0 {
					return Script{}, fmt.Errorf("faultnet: bad %s duration %q", key, val)
				}
				switch key {
				case "latency":
					ph.Behavior.Latency = d
				case "ramp":
					ph.Behavior.Ramp = d
				case "jitter":
					ph.Behavior.Jitter = d
				}
				explicit = true
			case "status":
				n, err := parseInt(key, val)
				if err != nil {
					return Script{}, err
				}
				if n < 100 || n > 599 {
					return Script{}, fmt.Errorf("faultnet: status %d out of range", n)
				}
				ph.Behavior.Status = n
				explicit = true
			case "blackhole":
				ph.Behavior.BlackHole = true
				explicit = true
			case "truncate":
				if !hasVal || len(val) < 2 {
					return Script{}, fmt.Errorf("faultnet: truncate wants Nl (lines) or Nb (bytes)")
				}
				unit := val[len(val)-1]
				n, err := parseInt(key, val[:len(val)-1])
				if err != nil {
					return Script{}, err
				}
				switch unit {
				case 'l':
					ph.Behavior.TruncateLines = n
				case 'b':
					ph.Behavior.TruncateBytes = int64(n)
				default:
					return Script{}, fmt.Errorf("faultnet: truncate unit %q is not l or b", string(unit))
				}
				explicit = true
			case "for":
				n, err := parseInt(key, val)
				if err != nil {
					return Script{}, err
				}
				ph.Requests = n
				explicit = true
			default:
				return Script{}, fmt.Errorf("faultnet: unknown directive %q", tok)
			}
		}
		if !explicit {
			continue
		}
		// A bare "loop" marker phase carries no behavior of its own.
		if ph == (Phase{}) && out.Loop && phaseSpec == "loop" {
			continue
		}
		out.Phases = append(out.Phases, ph)
	}
	if len(out.Phases) == 0 {
		return Script{}, fmt.Errorf("faultnet: script %q has no phases", s)
	}
	return out, nil
}
