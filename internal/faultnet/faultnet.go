// Package faultnet injects deterministic network faults into HTTP
// traffic so cluster resilience can be tested reproducibly.
//
// Faults are described by a Script: an ordered list of phases, each
// applying one Behavior (added latency, 5xx bursts, black holes,
// mid-stream truncation) for a fixed number of requests. Phase
// progression is driven by per-target request counts — never by wall
// clock — and the only randomness (latency jitter) comes from a
// seeded PRNG, so a given (script, seed, request sequence) always
// produces the same faults.
//
// Two entry points share the same script engine:
//
//   - Transport wraps an http.RoundTripper and applies scripts to
//     requests by target host. Use it as an http.Client transport in
//     tests to fault in-process traffic.
//   - Proxy is a reverse-proxy http.Handler for the iccoordfault
//     command, faulting traffic between a real coordinator and a real
//     shard server.
package faultnet

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// Behavior is the fault applied to a single request. The zero value
// passes the request through untouched.
type Behavior struct {
	// Latency is added before the request is forwarded (or answered).
	Latency time.Duration
	// Ramp adds Ramp×n extra latency to the n-th request of the phase,
	// modelling a target that degrades under sustained load.
	Ramp time.Duration
	// Jitter adds a uniform random duration in [0, Jitter) drawn from
	// the script's seeded PRNG.
	Jitter time.Duration
	// Status, when non-zero, answers the request locally with this
	// HTTP status instead of forwarding it (5xx burst injection).
	Status int
	// BlackHole swallows the request: no response, no error, until the
	// request context is cancelled (client timeout or disconnect).
	BlackHole bool
	// TruncateLines cuts the response body after this many
	// newline-terminated lines, simulating a mid-stream connection
	// drop inside an NDJSON stream. Zero means no line truncation.
	TruncateLines int
	// TruncateBytes cuts the response body after this many bytes.
	// Zero means no byte truncation.
	TruncateBytes int64
}

// Phase applies one Behavior for a fixed number of requests.
type Phase struct {
	// Requests is how many requests this phase covers; 0 means the
	// phase never ends.
	Requests int
	// Behavior is the fault applied to every request in the phase.
	Behavior Behavior
}

// Script is a per-target fault schedule: phases applied in order,
// optionally looping, with all randomness derived from Seed.
type Script struct {
	Phases []Phase
	// Loop restarts at the first phase after the last one completes;
	// otherwise requests beyond the script pass through untouched.
	Loop bool
	// Seed seeds the PRNG used for Jitter. Two targets with the same
	// script and seed see identical jitter sequences.
	Seed int64
}

// target is the per-host script interpreter state.
type target struct {
	mu      sync.Mutex
	script  Script
	rng     *rand.Rand
	phase   int // index into script.Phases
	served  int // requests served within the current phase
	done    bool
	total   int64
	faulted int64
}

func newTarget(s Script) *target {
	return &target{script: s, rng: rand.New(rand.NewSource(s.Seed))}
}

// step consumes one request slot and returns the behavior plus the
// request's index within its phase (for Ramp) — the only mutating
// entry point, so counting stays deterministic under concurrency.
func (tg *target) step() (Behavior, int) {
	tg.mu.Lock()
	defer tg.mu.Unlock()
	tg.total++
	for !tg.done {
		if tg.phase >= len(tg.script.Phases) {
			if !tg.script.Loop || len(tg.script.Phases) == 0 {
				tg.done = true
				break
			}
			tg.phase, tg.served = 0, 0
		}
		ph := tg.script.Phases[tg.phase]
		if ph.Requests > 0 && tg.served >= ph.Requests {
			tg.phase++
			tg.served = 0
			continue
		}
		n := tg.served
		tg.served++
		b := ph.Behavior
		if b.Jitter > 0 {
			b.Latency += time.Duration(tg.rng.Int63n(int64(b.Jitter)))
		}
		if b != (Behavior{}) {
			tg.faulted++
		}
		return b, n
	}
	return Behavior{}, 0
}

// delay returns the total pre-forward latency for the n-th request of
// a phase under behavior b (jitter already folded into b.Latency).
func delay(b Behavior, n int) time.Duration {
	return b.Latency + time.Duration(n)*b.Ramp
}

// Stats reports how many requests a target has seen and how many had
// a fault applied.
type Stats struct {
	Requests int64 `json:"requests"`
	Faulted  int64 `json:"faulted"`
}

// Transport is an http.RoundTripper that applies per-host fault
// scripts before delegating to an underlying transport. Hosts without
// a script pass through untouched.
type Transport struct {
	next http.RoundTripper

	mu      sync.Mutex
	targets map[string]*target
}

// NewTransport wraps next (nil means http.DefaultTransport).
func NewTransport(next http.RoundTripper) *Transport {
	if next == nil {
		next = http.DefaultTransport
	}
	return &Transport{next: next, targets: make(map[string]*target)}
}

// Set installs (or replaces) the fault script for a host:port target,
// resetting its phase and request counters.
func (t *Transport) Set(host string, s Script) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.targets[host] = newTarget(s)
}

// Clear removes the script for host; its traffic passes through.
func (t *Transport) Clear(host string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.targets, host)
}

// Stats returns request/fault counts for host (zero if unknown).
func (t *Transport) Stats(host string) Stats {
	t.mu.Lock()
	tg := t.targets[host]
	t.mu.Unlock()
	if tg == nil {
		return Stats{}
	}
	tg.mu.Lock()
	defer tg.mu.Unlock()
	return Stats{Requests: tg.total, Faulted: tg.faulted}
}

// RoundTrip implements http.RoundTripper.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	t.mu.Lock()
	tg := t.targets[req.URL.Host]
	t.mu.Unlock()
	if tg == nil {
		return t.next.RoundTrip(req)
	}
	b, n := tg.step()
	if d := delay(b, n); d > 0 {
		select {
		case <-time.After(d):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	}
	if b.BlackHole {
		<-req.Context().Done()
		return nil, req.Context().Err()
	}
	if b.Status > 0 {
		body := fmt.Sprintf("faultnet: injected %d\n", b.Status)
		return &http.Response{
			StatusCode:    b.Status,
			Status:        fmt.Sprintf("%d %s", b.Status, http.StatusText(b.Status)),
			Proto:         req.Proto,
			ProtoMajor:    req.ProtoMajor,
			ProtoMinor:    req.ProtoMinor,
			Header:        http.Header{"Content-Type": []string{"text/plain; charset=utf-8"}},
			Body:          io.NopCloser(bytes.NewReader([]byte(body))),
			ContentLength: int64(len(body)),
			Request:       req,
		}, nil
	}
	resp, err := t.next.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if b.TruncateLines > 0 || b.TruncateBytes > 0 {
		resp.Body = &truncatedBody{rc: resp.Body, lines: b.TruncateLines, bytes: b.TruncateBytes}
		resp.ContentLength = -1
	}
	return resp, nil
}

// truncatedBody passes bytes through until a line or byte budget is
// exhausted, then reports a clean EOF — the reader sees a stream that
// ends mid-flight, exactly like a dropped connection.
type truncatedBody struct {
	rc    io.ReadCloser
	lines int   // remaining newline budget; 0 means unlimited
	bytes int64 // remaining byte budget; 0 means unlimited
	done  bool
}

func (tb *truncatedBody) Read(p []byte) (int, error) {
	if tb.done {
		return 0, io.EOF
	}
	if tb.bytes > 0 && int64(len(p)) > tb.bytes {
		p = p[:tb.bytes]
	}
	n, err := tb.rc.Read(p)
	if tb.bytes > 0 {
		tb.bytes -= int64(n)
		if tb.bytes <= 0 {
			tb.done = true
			return n, io.EOF
		}
	}
	if tb.lines > 0 {
		for i := 0; i < n; i++ {
			if p[i] == '\n' {
				tb.lines--
				if tb.lines == 0 {
					tb.done = true
					return i + 1, io.EOF
				}
			}
		}
	}
	return n, err
}

func (tb *truncatedBody) Close() error { return tb.rc.Close() }

// parseInt is a strict strconv.Atoi with a contextual error.
func parseInt(key, v string) (int, error) {
	n, err := strconv.Atoi(v)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("faultnet: %s wants a non-negative integer, got %q", key, v)
	}
	return n, nil
}
