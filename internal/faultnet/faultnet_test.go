package faultnet

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"
)

func TestParseScript(t *testing.T) {
	cases := []struct {
		in      string
		want    Script
		wantErr bool
	}{
		{in: "up,for=20;status=503,for=5;loop", want: Script{
			Phases: []Phase{{Requests: 20}, {Requests: 5, Behavior: Behavior{Status: 503}}},
			Loop:   true,
		}},
		{in: "latency=100ms,jitter=50ms", want: Script{
			Phases: []Phase{{Behavior: Behavior{Latency: 100 * time.Millisecond, Jitter: 50 * time.Millisecond}}},
		}},
		{in: "blackhole", want: Script{Phases: []Phase{{Behavior: Behavior{BlackHole: true}}}}},
		{in: "truncate=2l,for=1;up", want: Script{
			Phases: []Phase{{Requests: 1, Behavior: Behavior{TruncateLines: 2}}, {}},
		}},
		{in: "truncate=512b", want: Script{Phases: []Phase{{Behavior: Behavior{TruncateBytes: 512}}}}},
		{in: "ramp=1ms,for=10", want: Script{Phases: []Phase{{Requests: 10, Behavior: Behavior{Ramp: time.Millisecond}}}}},
		{in: "", wantErr: true},
		{in: "latency=oops", wantErr: true},
		{in: "status=42", wantErr: true},
		{in: "truncate=5x", wantErr: true},
		{in: "bogus=1", wantErr: true},
		{in: "for=-1", wantErr: true},
	}
	for _, tc := range cases {
		got, err := ParseScript(tc.in, 1)
		if tc.wantErr {
			if err == nil {
				t.Errorf("ParseScript(%q): want error, got %+v", tc.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseScript(%q): %v", tc.in, err)
			continue
		}
		tc.want.Seed = 1
		if fmt.Sprint(got) != fmt.Sprint(tc.want) {
			t.Errorf("ParseScript(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
	}
}

func TestScriptPhaseProgressionDeterministic(t *testing.T) {
	s, err := ParseScript("up,for=2;status=503,for=3;loop", 7)
	if err != nil {
		t.Fatal(err)
	}
	run := func() []int {
		tg := newTarget(s)
		var seq []int
		for i := 0; i < 12; i++ {
			b, _ := tg.step()
			seq = append(seq, b.Status)
		}
		return seq
	}
	want := []int{0, 0, 503, 503, 503, 0, 0, 503, 503, 503, 0, 0}
	got := run()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("phase sequence = %v, want %v", got, want)
		}
	}
	// Same script, same seed: identical sequence on every run.
	again := run()
	for i := range got {
		if got[i] != again[i] {
			t.Fatalf("script not deterministic: %v vs %v", got, again)
		}
	}
}

func TestJitterDeterministicPerSeed(t *testing.T) {
	s := Script{Phases: []Phase{{Behavior: Behavior{Jitter: time.Second}}}, Seed: 42}
	draw := func() []time.Duration {
		tg := newTarget(s)
		var ds []time.Duration
		for i := 0; i < 8; i++ {
			b, _ := tg.step()
			ds = append(ds, b.Latency)
		}
		return ds
	}
	a, b := draw(), draw()
	varied := false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("jitter not deterministic for fixed seed: %v vs %v", a, b)
		}
		if i > 0 && a[i] != a[0] {
			varied = true
		}
	}
	if !varied {
		t.Fatalf("jitter produced a constant sequence: %v", a)
	}
}

func newBackend(t *testing.T) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		for i := 0; i < 5; i++ {
			fmt.Fprintf(w, "{\"line\":%d}\n", i)
		}
	}))
	t.Cleanup(srv.Close)
	return srv
}

func hostOf(t *testing.T, rawurl string) string {
	t.Helper()
	u, err := url.Parse(rawurl)
	if err != nil {
		t.Fatal(err)
	}
	return u.Host
}

func TestTransportStatusAndPassthrough(t *testing.T) {
	backend := newBackend(t)
	tr := NewTransport(nil)
	s, err := ParseScript("status=503,for=2;up", 1)
	if err != nil {
		t.Fatal(err)
	}
	tr.Set(hostOf(t, backend.URL), s)
	client := &http.Client{Transport: tr}

	for i, wantStatus := range []int{503, 503, 200, 200} {
		resp, err := client.Get(backend.URL)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != wantStatus {
			t.Fatalf("request %d: status = %d, want %d", i, resp.StatusCode, wantStatus)
		}
	}
	st := tr.Stats(hostOf(t, backend.URL))
	if st.Requests != 4 || st.Faulted != 2 {
		t.Fatalf("stats = %+v, want 4 requests / 2 faulted", st)
	}
}

func TestTransportBlackHoleRespectsContext(t *testing.T) {
	backend := newBackend(t)
	tr := NewTransport(nil)
	tr.Set(hostOf(t, backend.URL), Script{Phases: []Phase{{Behavior: Behavior{BlackHole: true}}}})
	client := &http.Client{Transport: tr}

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, backend.URL, nil)
	start := time.Now()
	_, err := client.Do(req)
	if err == nil {
		t.Fatal("black hole produced a response")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed < 40*time.Millisecond {
		t.Fatalf("black hole returned after %v, before the context deadline", elapsed)
	}
}

func TestTransportTruncatesLines(t *testing.T) {
	backend := newBackend(t)
	tr := NewTransport(nil)
	tr.Set(hostOf(t, backend.URL), Script{Phases: []Phase{{Behavior: Behavior{TruncateLines: 2}}}})
	client := &http.Client{Transport: tr}

	resp, err := client.Get(backend.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if got, want := string(body), "{\"line\":0}\n{\"line\":1}\n"; got != want {
		t.Fatalf("truncated body = %q, want %q", got, want)
	}
}

func TestTransportLatency(t *testing.T) {
	backend := newBackend(t)
	tr := NewTransport(nil)
	tr.Set(hostOf(t, backend.URL), Script{Phases: []Phase{{Behavior: Behavior{Latency: 60 * time.Millisecond}}}})
	client := &http.Client{Transport: tr}

	start := time.Now()
	resp, err := client.Get(backend.URL)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if elapsed := time.Since(start); elapsed < 50*time.Millisecond {
		t.Fatalf("request finished in %v despite 60ms injected latency", elapsed)
	}
}

func TestProxyForwardsAndInjects(t *testing.T) {
	backend := newBackend(t)
	s, err := ParseScript("status=502,for=1;up", 3)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewProxy(backend.URL, s, nil)
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(p)
	defer front.Close()

	resp, err := http.Get(front.URL + "/anything?x=1")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 502 {
		t.Fatalf("first request: status = %d, want injected 502", resp.StatusCode)
	}

	resp, err = http.Get(front.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(body), "{\"line\":4}") {
		t.Fatalf("second request: status=%d body=%q, want passthrough", resp.StatusCode, body)
	}
	if st := p.Stats(); st.Requests != 2 || st.Faulted != 1 {
		t.Fatalf("proxy stats = %+v, want 2 requests / 1 faulted", st)
	}
}

func TestProxyTruncationAbortsMidStream(t *testing.T) {
	backend := newBackend(t)
	p, err := NewProxy(backend.URL, Script{Phases: []Phase{{Behavior: Behavior{TruncateLines: 2}}}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(p)
	defer front.Close()

	resp, err := http.Get(front.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, readErr := io.ReadAll(resp.Body)
	if readErr == nil {
		t.Fatalf("expected a mid-stream read error, got clean body %q", body)
	}
	if !strings.HasPrefix(string(body), "{\"line\":0}\n{\"line\":1}\n") && len(body) > 0 {
		t.Fatalf("body before abort = %q", body)
	}
}

func TestProxyBadUpstream(t *testing.T) {
	if _, err := NewProxy("ftp://nope", Script{Phases: []Phase{{}}}, nil); err == nil {
		t.Fatal("ftp upstream accepted")
	}
	if _, err := NewProxy("://", Script{Phases: []Phase{{}}}, nil); err == nil {
		t.Fatal("garbage upstream accepted")
	}
}
