package faultnet

import (
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"
)

// Proxy is a fault-injecting reverse proxy: it forwards requests to a
// single upstream target, applying a Script along the way. Unlike
// Transport it operates at the connection level — black holes hold
// the client connection open and truncation aborts the response
// mid-stream — so it exercises a coordinator over real sockets.
// It backs the iccoordfault command.
type Proxy struct {
	upstream *url.URL
	client   *http.Client
	tg       *target
}

// NewProxy builds a proxy forwarding to upstream (for example
// "http://localhost:8081") and faulting per script. client may be nil
// for http.DefaultClient semantics without timeouts.
func NewProxy(upstream string, script Script, client *http.Client) (*Proxy, error) {
	u, err := url.Parse(upstream)
	if err != nil {
		return nil, fmt.Errorf("faultnet: bad upstream %q: %w", upstream, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return nil, fmt.Errorf("faultnet: upstream %q must be http or https", upstream)
	}
	if client == nil {
		client = &http.Client{}
	}
	return &Proxy{upstream: u, client: client, tg: newTarget(script)}, nil
}

// Stats reports request/fault counts for the proxy's upstream.
func (p *Proxy) Stats() Stats {
	p.tg.mu.Lock()
	defer p.tg.mu.Unlock()
	return Stats{Requests: p.tg.total, Faulted: p.tg.faulted}
}

// ServeHTTP implements http.Handler.
func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	b, n := p.tg.step()
	if d := delay(b, n); d > 0 {
		select {
		case <-time.After(d):
		case <-r.Context().Done():
			return
		}
	}
	if b.BlackHole {
		// Hold the connection without a byte of response until the
		// client disconnects or times out.
		<-r.Context().Done()
		panic(http.ErrAbortHandler)
	}
	if b.Status > 0 {
		http.Error(w, fmt.Sprintf("faultnet: injected %d", b.Status), b.Status)
		return
	}

	out := *p.upstream
	out.Path = singleJoin(p.upstream.Path, r.URL.Path)
	out.RawQuery = r.URL.RawQuery
	req, err := http.NewRequestWithContext(r.Context(), r.Method, out.String(), r.Body)
	if err != nil {
		http.Error(w, "faultnet: "+err.Error(), http.StatusBadGateway)
		return
	}
	req.Header = r.Header.Clone()
	resp, err := p.client.Do(req)
	if err != nil {
		http.Error(w, "faultnet: upstream: "+err.Error(), http.StatusBadGateway)
		return
	}
	defer resp.Body.Close()
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	// Content-Length no longer holds if we may cut the body short.
	if b.TruncateLines > 0 || b.TruncateBytes > 0 {
		w.Header().Del("Content-Length")
	}
	w.WriteHeader(resp.StatusCode)

	var body io.Reader = resp.Body
	var tb *truncatedBody
	if b.TruncateLines > 0 || b.TruncateBytes > 0 {
		tb = &truncatedBody{rc: resp.Body, lines: b.TruncateLines, bytes: b.TruncateBytes}
		body = tb
	}
	flusher, _ := w.(http.Flusher)
	buf := make([]byte, 32*1024)
	for {
		m, rerr := body.Read(buf)
		if m > 0 {
			if _, werr := w.Write(buf[:m]); werr != nil {
				return
			}
			if flusher != nil {
				flusher.Flush()
			}
		}
		if rerr != nil {
			break
		}
	}
	if tb != nil && tb.done {
		// Abort the connection so the client sees a mid-stream drop,
		// not a clean end of a shorter-than-promised body.
		panic(http.ErrAbortHandler)
	}
}

// singleJoin joins two URL path segments with exactly one slash.
func singleJoin(a, b string) string {
	switch {
	case b == "":
		return a
	case a == "", a == "/":
		return b
	}
	return strings.TrimSuffix(a, "/") + "/" + strings.TrimPrefix(b, "/")
}
