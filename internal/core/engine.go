package core

import "influcomm/internal/graph"

// Engine bundles the scratch state for repeated CountIC / ConstructCVS runs
// over prefixes of one graph with one γ. It exposes both the batch Run
// (Algorithms 2 and 5) and a step-wise API (Peel / NextMin / Component /
// Remove) that the global-search baselines are built from. An Engine is not
// safe for concurrent use.
type Engine struct {
	g     *graph.Graph
	gamma int32

	p      int     // current prefix length
	alive  []bool  // membership in the maintained γ-core, per vertex < p
	deg    []int32 // degree inside the maintained γ-core
	queue  []int32 // scratch removal queue
	cursor int     // scan position for NextMin (monotonically decreasing)

	stamp    []int32 // visited stamps for Component
	curStamp int32
}

// NewEngine returns an Engine for graph g and cohesion threshold gamma.
func NewEngine(g *graph.Graph, gamma int32) *Engine {
	n := g.NumVertices()
	return &Engine{
		g:     g,
		gamma: gamma,
		alive: make([]bool, n),
		deg:   make([]int32, n),
		queue: make([]int32, 0, n),
		stamp: make([]int32, n),
	}
}

// Graph returns the engine's graph.
func (e *Engine) Graph() *graph.Graph { return e.g }

// Gamma returns the engine's cohesion threshold.
func (e *Engine) Gamma() int32 { return e.gamma }

// Peel initializes the engine on the prefix subgraph [0, p) and reduces it
// to its γ-core (Line 1 of Algorithm 2). Any previous state is discarded.
func (e *Engine) Peel(p int) {
	e.p = p
	e.cursor = p - 1
	alive, deg := e.alive[:p], e.deg[:p]
	for u := 0; u < p; u++ {
		alive[u] = true
		deg[u] = e.g.DegreeWithin(int32(u), p)
	}
	q := e.queue[:0]
	for u := 0; u < p; u++ {
		if deg[u] < e.gamma {
			alive[u] = false
			q = append(q, int32(u))
		}
	}
	for len(q) > 0 {
		v := q[len(q)-1]
		q = q[:len(q)-1]
		for _, w := range e.g.NeighborsWithin(v, p) {
			if !alive[w] {
				continue
			}
			deg[w]--
			if deg[w] < e.gamma {
				alive[w] = false
				q = append(q, w)
			}
		}
	}
	e.queue = q[:0]
}

// Alive reports whether vertex u is still in the maintained γ-core.
func (e *Engine) Alive(u int32) bool { return e.alive[u] }

// AliveSize returns the number of vertices and edges currently alive; used
// by baselines to measure the cost of a component traversal.
func (e *Engine) AliveSize() (int, int64) {
	var nv int
	var half int64
	for u := 0; u < e.p; u++ {
		if e.alive[u] {
			nv++
			half += int64(e.deg[u])
		}
	}
	return nv, half / 2
}

// NextMin returns the minimum-weight vertex of the maintained γ-core (the
// next keynode, Line 5 of Algorithm 2), or -1 when the core is empty.
func (e *Engine) NextMin() int32 {
	for e.cursor >= 0 {
		if e.alive[e.cursor] {
			return int32(e.cursor)
		}
		e.cursor--
	}
	return -1
}

// Remove deletes u from the maintained γ-core and cascades the deletion to
// keep the remainder a γ-core (procedure Remove of Algorithm 2). The
// removed vertices, starting with u, are appended to seq and the extended
// slice is returned; the appended run is gp(u) when u is a keynode.
func (e *Engine) Remove(u int32, seq []int32) []int32 {
	q := e.queue[:0]
	e.alive[u] = false
	q = append(q, u)
	for len(q) > 0 {
		v := q[len(q)-1]
		q = q[:len(q)-1]
		seq = append(seq, v)
		for _, w := range e.g.NeighborsWithin(v, e.p) {
			if !e.alive[w] {
				continue
			}
			e.deg[w]--
			if e.deg[w] < e.gamma {
				e.alive[w] = false
				q = append(q, w)
			}
		}
	}
	e.queue = q[:0]
	return seq
}

// Component returns the connected component of u inside the maintained
// γ-core via BFS; u must be alive. The result is freshly allocated and in
// BFS order. This is the expensive subroutine that OnlineAll runs for every
// community and Forward runs only for the last k.
func (e *Engine) Component(u int32) []int32 {
	e.curStamp++
	s := e.curStamp
	comp := []int32{u}
	e.stamp[u] = s
	for i := 0; i < len(comp); i++ {
		v := comp[i]
		for _, w := range e.g.NeighborsWithin(v, e.p) {
			if e.alive[w] && e.stamp[w] != s {
				e.stamp[w] = s
				comp = append(comp, w)
			}
		}
	}
	return comp
}

// CVS is the output of CountIC / ConstructCVS: the keynode sequence keys
// (in increasing weight order) and the community-aware vertex sequence cvs,
// partitioned into one group per keynode. NC[j], when computed, reports
// whether keynode j is a non-containment keynode (§5.1).
type CVS struct {
	P      int     // prefix length the run was performed on
	Keys   []int32 // keynodes, increasing weight order (min weight first)
	KeyPos []int32 // len(Keys)+1; group j is Seq[KeyPos[j]:KeyPos[j+1]]
	Seq    []int32 // cvs: community-aware vertex sequence
	NC     []bool  // per-key non-containment flag; nil unless requested
}

// Count returns the number of influential γ-communities found.
func (c *CVS) Count() int { return len(c.Keys) }

// Group returns gp(Keys[j]). The caller must not modify it.
func (c *CVS) Group(j int) []int32 { return c.Seq[c.KeyPos[j]:c.KeyPos[j+1]] }

// RunFlags selects optional work in Engine.Run.
type RunFlags uint8

const (
	// WantSeq materializes the cvs sequence (needed for enumeration).
	WantSeq RunFlags = 1 << iota
	// WantNC additionally classifies keynodes as non-containment.
	WantNC
)

// Run executes CountIC (Algorithm 2) on the prefix [0, p) when stopBefore
// is 0, or ConstructCVS (Algorithm 5) when stopBefore > 0: the iteration
// stops before processing any keynode with rank < stopBefore (weight ≥ the
// previous round's threshold), so only the new keynodes of this round are
// produced. WantNC requires WantSeq.
func (e *Engine) Run(p, stopBefore int, flags RunFlags) *CVS {
	e.Peel(p)
	c := &CVS{P: p, KeyPos: []int32{0}}
	if flags&WantNC != 0 {
		flags |= WantSeq
	}
	for {
		u := e.NextMin()
		if u < 0 || int(u) < stopBefore {
			break
		}
		c.Keys = append(c.Keys, u)
		segStart := len(c.Seq)
		c.Seq = e.Remove(u, c.Seq)
		if flags&WantSeq == 0 {
			c.Seq = c.Seq[:0]
			c.KeyPos = append(c.KeyPos, 0)
			continue
		}
		c.KeyPos = append(c.KeyPos, int32(len(c.Seq)))
		if flags&WantNC != 0 {
			c.NC = append(c.NC, e.isNonContainment(c.Seq[segStart:]))
		}
	}
	return c
}

// isNonContainment reports whether the removed segment has no edge to a
// vertex that is still alive: exactly the paper's condition for the
// segment's keynode to be a non-containment keynode (§5.1).
func (e *Engine) isNonContainment(seg []int32) bool {
	for _, v := range seg {
		for _, w := range e.g.NeighborsWithin(v, e.p) {
			if e.alive[w] {
				return false
			}
		}
	}
	return true
}

// CountIC returns the number of influential γ-communities in the prefix
// subgraph [0, p) of g: the counting subroutine of Algorithm 1, running in
// O(size(G≥τ)) by Lemma 3.4 (communities are in bijection with keynodes).
func CountIC(g *graph.Graph, p int, gamma int32) int {
	return NewEngine(g, gamma).Run(p, 0, 0).Count()
}
