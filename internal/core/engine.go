package core

import (
	"context"

	"influcomm/internal/graph"
)

// ctxCheckInterval is the number of elementary engine steps (vertices
// removed or visited) between two context polls. Polling a context costs an
// atomic load plus a channel-closed check; at 4096 steps the overhead on the
// peeling hot loop is unmeasurable while cancellation latency stays bounded
// by a few microseconds of work.
const ctxCheckInterval = 4096

// Engine bundles the scratch state for repeated CountIC / ConstructCVS runs
// over prefixes of one graph. It exposes both the batch Run (Algorithms 2
// and 5) and a step-wise API (Peel / NextMin / Component / Remove) that the
// global-search baselines are built from. An Engine is not safe for
// concurrent use, but it is reusable: Reset rebinds it to a new γ (and
// clears any context) so one engine can serve many queries — that is what
// Pool exploits to make steady-state queries allocation-free.
type Engine struct {
	g     *graph.Graph
	gamma int32

	p      int     // current prefix length
	alive  []bool  // membership in the maintained γ-core, per vertex < p
	deg    []int32 // degree inside the maintained γ-core
	queue  []int32 // scratch removal queue
	cursor int     // scan position for NextMin (monotonically decreasing)

	stamp    []int32 // visited stamps for Component
	curStamp int32

	// Cancellation support. ctx is nil for engines that never had a
	// context attached, which keeps the step-wise baselines overhead-free.
	ctx    context.Context
	budget int   // steps until the next context poll
	ctxErr error // sticky; set once the context is observed cancelled
}

// NewEngine returns an Engine for graph g and cohesion threshold gamma.
func NewEngine(g *graph.Graph, gamma int32) *Engine {
	n := g.NumVertices()
	return &Engine{
		g:     g,
		gamma: gamma,
		alive: make([]bool, n),
		deg:   make([]int32, n),
		queue: make([]int32, 0, n),
		stamp: make([]int32, n),
	}
}

// Graph returns the engine's graph.
func (e *Engine) Graph() *graph.Graph { return e.g }

// Gamma returns the engine's cohesion threshold.
func (e *Engine) Gamma() int32 { return e.gamma }

// Reset rebinds the engine to a new cohesion threshold and detaches any
// context. The O(n) scratch slices are retained — they only depend on the
// graph — so a reset engine answers its next query without allocating.
func (e *Engine) Reset(gamma int32) {
	e.gamma = gamma
	e.p = 0
	e.cursor = -1
	e.ctx = nil
	e.budget = 0
	e.ctxErr = nil
}

// SetContext attaches ctx to the engine: subsequent runs poll it at round
// boundaries and every ctxCheckInterval removal/traversal steps, aborting
// early when it is cancelled. A nil ctx detaches (zero overhead).
func (e *Engine) SetContext(ctx context.Context) {
	e.ctx = ctx
	e.budget = ctxCheckInterval
	e.ctxErr = nil
}

// Err returns the context error that aborted the current run, if any.
func (e *Engine) Err() error { return e.ctxErr }

// tick consumes n work units and polls the attached context once the budget
// is spent. It reports whether the run may continue.
func (e *Engine) tick(n int) bool {
	if e.ctx == nil {
		return true
	}
	if e.ctxErr != nil {
		return false
	}
	e.budget -= n
	if e.budget > 0 {
		return true
	}
	e.budget = ctxCheckInterval
	if err := e.ctx.Err(); err != nil {
		e.ctxErr = err
		return false
	}
	return true
}

// Peel initializes the engine on the prefix subgraph [0, p) and reduces it
// to its γ-core (Line 1 of Algorithm 2). Any previous state is discarded.
// When a cancelled context is attached, Peel may leave the core partially
// reduced; the error is reported by Err and the next Peel starts clean.
func (e *Engine) Peel(p int) {
	e.p = p
	e.cursor = p - 1
	alive, deg := e.alive[:p], e.deg[:p]
	for u := 0; u < p; u++ {
		alive[u] = true
		deg[u] = e.g.DegreeWithin(int32(u), p)
	}
	q := e.queue[:0]
	for u := 0; u < p; u++ {
		if deg[u] < e.gamma {
			alive[u] = false
			q = append(q, int32(u))
		}
	}
	if !e.tick(p) {
		e.queue = q[:0]
		return
	}
	for len(q) > 0 {
		v := q[len(q)-1]
		q = q[:len(q)-1]
		if !e.tick(1) {
			break
		}
		for _, w := range e.g.NeighborsWithin(v, p) {
			if !alive[w] {
				continue
			}
			deg[w]--
			if deg[w] < e.gamma {
				alive[w] = false
				q = append(q, w)
			}
		}
	}
	e.queue = q[:0]
}

// Alive reports whether vertex u is still in the maintained γ-core.
func (e *Engine) Alive(u int32) bool { return e.alive[u] }

// AliveSize returns the number of vertices and edges currently alive; used
// by baselines to measure the cost of a component traversal.
func (e *Engine) AliveSize() (int, int64) {
	var nv int
	var half int64
	for u := 0; u < e.p; u++ {
		if e.alive[u] {
			nv++
			half += int64(e.deg[u])
		}
	}
	return nv, half / 2
}

// NextMin returns the minimum-weight vertex of the maintained γ-core (the
// next keynode, Line 5 of Algorithm 2), or -1 when the core is empty.
func (e *Engine) NextMin() int32 {
	for e.cursor >= 0 {
		if e.alive[e.cursor] {
			return int32(e.cursor)
		}
		e.cursor--
	}
	return -1
}

// Remove deletes u from the maintained γ-core and cascades the deletion to
// keep the remainder a γ-core (procedure Remove of Algorithm 2). The
// removed vertices, starting with u, are appended to seq and the extended
// slice is returned; the appended run is gp(u) when u is a keynode. A
// cancelled context stops the cascade early (check Err).
func (e *Engine) Remove(u int32, seq []int32) []int32 {
	q := e.queue[:0]
	e.alive[u] = false
	q = append(q, u)
	for len(q) > 0 {
		v := q[len(q)-1]
		q = q[:len(q)-1]
		seq = append(seq, v)
		if !e.tick(1) {
			break
		}
		for _, w := range e.g.NeighborsWithin(v, e.p) {
			if !e.alive[w] {
				continue
			}
			e.deg[w]--
			if e.deg[w] < e.gamma {
				e.alive[w] = false
				q = append(q, w)
			}
		}
	}
	e.queue = q[:0]
	return seq
}

// Component returns the connected component of u inside the maintained
// γ-core via BFS; u must be alive. The result is freshly allocated and in
// BFS order. This is the expensive subroutine that OnlineAll runs for every
// community and Forward runs only for the last k. A cancelled context stops
// the traversal early (check Err).
func (e *Engine) Component(u int32) []int32 {
	e.curStamp++
	s := e.curStamp
	comp := []int32{u}
	e.stamp[u] = s
	for i := 0; i < len(comp); i++ {
		v := comp[i]
		if !e.tick(1) {
			break
		}
		for _, w := range e.g.NeighborsWithin(v, e.p) {
			if e.alive[w] && e.stamp[w] != s {
				e.stamp[w] = s
				comp = append(comp, w)
			}
		}
	}
	return comp
}

// CVS is the output of CountIC / ConstructCVS: the keynode sequence keys
// (in increasing weight order) and the community-aware vertex sequence cvs,
// partitioned into one group per keynode. NC[j], when computed, reports
// whether keynode j is a non-containment keynode (§5.1).
type CVS struct {
	P      int     // prefix length the run was performed on
	Keys   []int32 // keynodes, increasing weight order (min weight first)
	KeyPos []int32 // len(Keys)+1; group j is Seq[KeyPos[j]:KeyPos[j+1]]
	Seq    []int32 // cvs: community-aware vertex sequence
	NC     []bool  // per-key non-containment flag; nil unless requested
}

// Count returns the number of influential γ-communities found.
func (c *CVS) Count() int { return len(c.Keys) }

// Group returns gp(Keys[j]). The caller must not modify it.
func (c *CVS) Group(j int) []int32 { return c.Seq[c.KeyPos[j]:c.KeyPos[j+1]] }

// reset truncates the CVS in place for a new run on prefix p, keeping the
// backing arrays so pooled runs stop allocating per round.
func (c *CVS) reset(p int) {
	c.P = p
	c.Keys = c.Keys[:0]
	c.KeyPos = append(c.KeyPos[:0], 0)
	c.Seq = c.Seq[:0]
	c.NC = c.NC[:0]
}

// CompactTail returns a fresh CVS holding copies of the last k groups of c
// (all of them when k < 0). Enumeration retains group sub-slices, so a
// pooled run — whose CVS buffers go back to the pool — hands enumeration a
// compact copy instead; the copy is exactly the data the result keeps alive.
func (c *CVS) CompactTail(k int) *CVS {
	start := 0
	if k >= 0 && len(c.Keys) > k {
		start = len(c.Keys) - k
	}
	nk := len(c.Keys) - start
	out := &CVS{
		P:      c.P,
		Keys:   make([]int32, nk),
		KeyPos: make([]int32, nk+1),
	}
	copy(out.Keys, c.Keys[start:])
	base := c.KeyPos[start]
	out.Seq = make([]int32, c.KeyPos[len(c.Keys)]-base)
	copy(out.Seq, c.Seq[base:])
	for j := 0; j <= nk; j++ {
		out.KeyPos[j] = c.KeyPos[start+j] - base
	}
	if c.NC != nil {
		out.NC = make([]bool, nk)
		copy(out.NC, c.NC[start:])
	}
	return out
}

// RunFlags selects optional work in Engine.Run.
type RunFlags uint8

const (
	// WantSeq materializes the cvs sequence (needed for enumeration).
	WantSeq RunFlags = 1 << iota
	// WantNC additionally classifies keynodes as non-containment.
	WantNC
)

// Run executes CountIC (Algorithm 2) on the prefix [0, p) when stopBefore
// is 0, or ConstructCVS (Algorithm 5) when stopBefore > 0: the iteration
// stops before processing any keynode with rank < stopBefore (weight ≥ the
// previous round's threshold), so only the new keynodes of this round are
// produced. WantNC requires WantSeq.
func (e *Engine) Run(p, stopBefore int, flags RunFlags) *CVS {
	c, _ := e.RunInto(nil, p, stopBefore, flags)
	return c
}

// RunInto is Run writing into a caller-provided CVS (a fresh one is
// allocated when c is nil), enabling buffer reuse across rounds and queries.
// It returns the context error when a cancelled context aborted the run; the
// CVS content is then partial and must be discarded.
func (e *Engine) RunInto(c *CVS, p, stopBefore int, flags RunFlags) (*CVS, error) {
	e.Peel(p)
	if c == nil {
		c = &CVS{}
	}
	c.reset(p)
	if flags&WantNC != 0 {
		flags |= WantSeq
	}
	for e.ctxErr == nil {
		u := e.NextMin()
		if u < 0 || int(u) < stopBefore {
			break
		}
		c.Keys = append(c.Keys, u)
		segStart := len(c.Seq)
		c.Seq = e.Remove(u, c.Seq)
		if flags&WantSeq == 0 {
			c.Seq = c.Seq[:0]
			c.KeyPos = append(c.KeyPos, 0)
			continue
		}
		c.KeyPos = append(c.KeyPos, int32(len(c.Seq)))
		if flags&WantNC != 0 {
			c.NC = append(c.NC, e.isNonContainment(c.Seq[segStart:]))
		}
	}
	if flags&WantNC == 0 && len(c.NC) == 0 {
		c.NC = nil
	}
	return c, e.ctxErr
}

// isNonContainment reports whether the removed segment has no edge to a
// vertex that is still alive: exactly the paper's condition for the
// segment's keynode to be a non-containment keynode (§5.1).
func (e *Engine) isNonContainment(seg []int32) bool {
	for _, v := range seg {
		for _, w := range e.g.NeighborsWithin(v, e.p) {
			if e.alive[w] {
				return false
			}
		}
	}
	return true
}

// CountIC returns the number of influential γ-communities in the prefix
// subgraph [0, p) of g: the counting subroutine of Algorithm 1, running in
// O(size(G≥τ)) by Lemma 3.4 (communities are in bijection with keynodes).
func CountIC(g *graph.Graph, p int, gamma int32) int {
	return NewEngine(g, gamma).Run(p, 0, 0).Count()
}
