package core

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"influcomm/internal/gen"
	"influcomm/internal/graph"
)

// forkCounter wraps a ForkableSource and counts Fork calls, so tests can
// tell whether the speculative phase actually engaged or the query fell
// back to (or finished inside) the sequential path.
type forkCounter struct {
	ForkableSource
	forks atomic.Int64
}

func (s *forkCounter) Fork(ctx context.Context) (SearchSource, func()) {
	s.forks.Add(1)
	return s.ForkableSource.Fork(ctx)
}

func requireSameResult(t *testing.T, label string, want, got *Result) {
	t.Helper()
	if want.Stats != got.Stats {
		t.Fatalf("%s: stats differ\n got %+v\nwant %+v", label, got.Stats, want.Stats)
	}
	if len(want.Communities) != len(got.Communities) {
		t.Fatalf("%s: got %d communities, want %d", label, len(got.Communities), len(want.Communities))
	}
	// Compare the containment forests structurally — keynode, influence,
	// group contents and child order must all coincide, which is exactly
	// "byte-identical output" without materializing (and re-sorting) every
	// nested vertex set.
	var same func(w, g *Community) bool
	same = func(w, g *Community) bool {
		if w.Keynode() != g.Keynode() || w.Influence() != g.Influence() ||
			w.Size() != g.Size() || len(w.Group()) != len(g.Group()) ||
			len(w.Children()) != len(g.Children()) {
			return false
		}
		for j, v := range w.Group() {
			if g.Group()[j] != v {
				return false
			}
		}
		for j, ch := range w.Children() {
			if !same(ch, g.Children()[j]) {
				return false
			}
		}
		return true
	}
	for i := range want.Communities {
		if !same(want.Communities[i], got.Communities[i]) {
			t.Fatalf("%s: community %d (keynode %d vs %d) differs",
				label, i, want.Communities[i].Keynode(), got.Communities[i].Keynode())
		}
	}
}

// TestTopKOverParallelMatchesSequential is the determinism property test:
// over a grid of (graph, k, γ, worker count), the parallel driver must
// return byte-identical communities and access statistics to TopKOver.
// Run it under -race -cpu 1,4,8 to cover scheduling interleavings.
func TestTopKOverParallelMatchesSequential(t *testing.T) {
	planted, err := gen.PlantedCommunities(30, 90, 0.5, 2, 11)
	if err != nil {
		t.Fatal(err)
	}
	graphs := map[string]*graph.Graph{
		"random":  gen.Random(4000, 40, 7),
		"planted": planted,
	}
	for name, g := range graphs {
		if g.PrefixSize(g.NumVertices()) < ParallelMinRoundWork {
			t.Fatalf("%s test graph too small to engage the parallel path", name)
		}
		src := GraphSource(g)
		for _, gamma := range []int32{2, 4} {
			for _, k := range []int{1, 5, 40, 1 << 20} {
				want, err := TopKOver(context.Background(), src, k, gamma, Options{})
				if err != nil {
					t.Fatalf("%s k=%d γ=%d: sequential: %v", name, k, gamma, err)
				}
				for _, workers := range []int{1, 2, 4, 8} {
					fc := &forkCounter{ForkableSource: src.(ForkableSource)}
					got, err := TopKOverParallel(context.Background(), fc, k, gamma, Options{}, workers)
					if err != nil {
						t.Fatalf("%s k=%d γ=%d workers=%d: parallel: %v", name, k, gamma, workers, err)
					}
					requireSameResult(t, fmt.Sprintf("%s k=%d γ=%d workers=%d", name, k, gamma, workers), want, got)
					// A winner round at or above the cutoff cannot have run in
					// the sequential prelude, so the speculative phase must
					// have forked.
					if workers > 1 && want.Stats.FinalSize >= ParallelMinRoundWork && fc.forks.Load() == 0 {
						t.Fatalf("%s k=%d γ=%d workers=%d: query never forked", name, k, gamma, workers)
					}
				}
			}
		}
	}
}

func TestTopKOverParallelNonContainment(t *testing.T) {
	g := gen.Random(3500, 40, 13)
	src := GraphSource(g)
	opts := Options{NonContainment: true}
	for _, k := range []int{2, 10} {
		want, err := TopKOver(context.Background(), src, k, 3, opts)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 8} {
			got, err := TopKOverParallel(context.Background(), src, k, 3, opts, workers)
			if err != nil {
				t.Fatal(err)
			}
			requireSameResult(t, fmt.Sprintf("NC k=%d workers=%d", k, workers), want, got)
		}
	}
}

// TestTopKOverParallelSmallGraphFallback: queries below the work-size
// cutoff must stay on the sequential path (no forks) and still return the
// sequential result.
func TestTopKOverParallelSmallGraphFallback(t *testing.T) {
	g := gen.Random(120, 6, 3)
	src := GraphSource(g)
	if g.PrefixSize(g.NumVertices()) >= ParallelMinRoundWork {
		t.Fatal("fallback test graph unexpectedly above the cutoff")
	}
	want, err := TopKOver(context.Background(), src, 4, 2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fc := &forkCounter{ForkableSource: src.(ForkableSource)}
	got, err := TopKOverParallel(context.Background(), fc, 4, 2, Options{}, 8)
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, "small graph", want, got)
	if fc.forks.Load() != 0 {
		t.Fatalf("query below the cutoff forked %d times", fc.forks.Load())
	}
}

// TestTopKOverParallelAblationFallback: the arithmetic-growth ablation has
// an unbounded round count, so the parallel driver must hand it to the
// sequential path rather than precompute its plan.
func TestTopKOverParallelAblationFallback(t *testing.T) {
	g := gen.Random(3000, 30, 5)
	src := GraphSource(g)
	opts := Options{ArithmeticGrowth: 500}
	want, err := TopKOver(context.Background(), src, 3, 2, opts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := TopKOverParallel(context.Background(), src, 3, 2, opts, 4)
	if err != nil {
		t.Fatal(err)
	}
	requireSameResult(t, "arithmetic growth", want, got)
}

func TestTopKOverParallelValidation(t *testing.T) {
	g := gen.Random(3000, 30, 5)
	src := GraphSource(g)
	if _, err := TopKOverParallel(context.Background(), src, 0, 2, Options{}, 4); err == nil {
		t.Error("k=0: want error")
	}
	if _, err := TopKOverParallel(context.Background(), src, 1, 0, Options{}, 4); err == nil {
		t.Error("gamma=0: want error")
	}
	if _, err := TopKOverParallel(context.Background(), nil, 1, 2, Options{}, 4); err == nil {
		t.Error("nil source: want error")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := TopKOverParallel(ctx, src, 1, 2, Options{}, 4); !errors.Is(err, context.Canceled) {
		t.Errorf("pre-cancelled context: err = %v, want context.Canceled", err)
	}
}

// cancellingSource cancels the query's context from inside the Nth
// Materialize call — the shape of a client disconnecting while speculative
// rounds are in flight.
type cancellingSource struct {
	SearchSource
	cancel context.CancelFunc
	after  int64
	calls  *atomic.Int64
	ctx    context.Context
}

func (s *cancellingSource) Fork(ctx context.Context) (SearchSource, func()) {
	return &cancellingSource{SearchSource: s.SearchSource, cancel: s.cancel, after: s.after, calls: s.calls, ctx: ctx}, func() {}
}

func (s *cancellingSource) Materialize(p int) (*graph.Graph, error) {
	if s.calls.Add(1) >= s.after {
		s.cancel()
	}
	if s.ctx != nil {
		if err := s.ctx.Err(); err != nil {
			return nil, err
		}
	}
	return s.SearchSource.Materialize(p)
}

func TestTopKOverParallelCancellationMidQuery(t *testing.T) {
	g := gen.Random(5000, 40, 9)
	base := GraphSource(g)
	// An initial prefix already above the cutoff skips the sequential
	// prelude, and k beyond any community count forces the search through
	// every round to the whole graph — so the cancellation always lands
	// while speculative rounds are in flight.
	opts := Options{InitialPrefix: 4000}
	probe, err := TopKOver(context.Background(), base, 1<<20, 3, opts)
	if err != nil {
		t.Fatal(err)
	}
	if probe.Stats.Rounds < 2 || base.PrefixSize(opts.InitialPrefix) < ParallelMinRoundWork {
		t.Fatalf("probe: %d rounds, initial size %d; cancellation would never land mid-flight",
			probe.Stats.Rounds, base.PrefixSize(opts.InitialPrefix))
	}
	for _, after := range []int64{1, 2} {
		for _, workers := range []int{2, 8} {
			ctx, cancel := context.WithCancel(context.Background())
			src := &cancellingSource{SearchSource: base, cancel: cancel, after: after, calls: &atomic.Int64{}}
			res, err := TopKOverParallel(ctx, src, 1<<20, 3, opts, workers)
			if err == nil {
				t.Fatalf("after=%d workers=%d: query survived its own cancellation, result %+v", after, workers, res.Stats)
			}
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("after=%d workers=%d: err = %v, want context.Canceled", after, workers, err)
			}
			cancel()
		}
	}
}
