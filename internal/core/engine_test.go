package core

import (
	"sort"
	"testing"

	"influcomm/internal/gen"
)

func TestEngineStepAPI(t *testing.T) {
	g := figure1(t)
	eng := NewEngine(g, 3)
	eng.Peel(g.NumVertices())

	// Figure 1's two communities survive the 3-core; v2 and nothing else
	// peels (v2 has degree 2).
	aliveCount := 0
	for u := int32(0); int(u) < g.NumVertices(); u++ {
		if eng.Alive(u) {
			aliveCount++
		}
	}
	if aliveCount != 9 {
		t.Fatalf("3-core has %d vertices, want 9", aliveCount)
	}
	nv, ne := eng.AliveSize()
	if nv != 9 {
		t.Errorf("AliveSize vertices = %d, want 9", nv)
	}
	if ne != 15 {
		t.Errorf("AliveSize edges = %d, want 15", ne)
	}

	// First keynode: the minimum-weight alive vertex is v0 (weight 10).
	u := eng.NextMin()
	if u < 0 || g.Weight(u) != 10 {
		t.Fatalf("NextMin weight = %v, want 10", g.Weight(u))
	}
	comp := eng.Component(u)
	if len(comp) != 4 {
		t.Fatalf("component of v0 has %d vertices, want 4", len(comp))
	}
	seq := eng.Remove(u, nil)
	if len(seq) != 4 {
		t.Fatalf("removing v0 cascaded %d vertices, want 4 (its whole K4)", len(seq))
	}
	if seq[0] != u {
		t.Errorf("removed segment must start with the keynode")
	}

	// Second keynode: weight 13 community of five vertices.
	u2 := eng.NextMin()
	if u2 < 0 || g.Weight(u2) != 13 {
		t.Fatalf("second NextMin weight = %v, want 13", g.Weight(u2))
	}
	comp2 := eng.Component(u2)
	if len(comp2) != 5 {
		t.Fatalf("second component has %d vertices, want 5", len(comp2))
	}
	eng.Remove(u2, nil)
	if eng.NextMin() != -1 {
		t.Error("engine should be exhausted after both communities")
	}
}

func TestEnginePeelResets(t *testing.T) {
	g := gen.Random(100, 5, 4)
	eng := NewEngine(g, 3)
	// Run to exhaustion, then Peel again: results must be identical.
	first := eng.Run(g.NumVertices(), 0, WantSeq)
	second := eng.Run(g.NumVertices(), 0, WantSeq)
	if len(first.Keys) != len(second.Keys) || len(first.Seq) != len(second.Seq) {
		t.Fatalf("engine reuse diverged: (%d,%d) vs (%d,%d)",
			len(first.Keys), len(first.Seq), len(second.Keys), len(second.Seq))
	}
	for i := range first.Keys {
		if first.Keys[i] != second.Keys[i] {
			t.Fatalf("keys diverge at %d", i)
		}
	}
}

func TestCVSGroupsPartitionCore(t *testing.T) {
	g := gen.Random(150, 5, 12)
	gamma := int32(3)
	eng := NewEngine(g, gamma)
	cvs := eng.Run(g.NumVertices(), 0, WantSeq)
	// Every group starts with its keynode and the groups are disjoint.
	seen := map[int32]bool{}
	for j := 0; j < cvs.Count(); j++ {
		grp := cvs.Group(j)
		if len(grp) == 0 || grp[0] != cvs.Keys[j] {
			t.Fatalf("group %d does not start with its keynode", j)
		}
		for _, v := range grp {
			if seen[v] {
				t.Fatalf("vertex %d appears in two groups", v)
			}
			seen[v] = true
		}
	}
	// The union of groups is exactly the γ-core of the graph.
	eng2 := NewEngine(g, gamma)
	eng2.Peel(g.NumVertices())
	for u := int32(0); int(u) < g.NumVertices(); u++ {
		if eng2.Alive(u) != seen[u] {
			t.Fatalf("vertex %d: core membership %v but group membership %v",
				u, eng2.Alive(u), seen[u])
		}
	}
}

func TestComponentIsMaximal(t *testing.T) {
	g := gen.Random(120, 4, 8)
	eng := NewEngine(g, 2)
	eng.Peel(g.NumVertices())
	u := eng.NextMin()
	if u < 0 {
		t.Skip("no 2-core in fixture")
	}
	comp := eng.Component(u)
	in := map[int32]bool{}
	for _, v := range comp {
		in[v] = true
	}
	// No alive vertex outside comp may neighbor a comp vertex.
	for _, v := range comp {
		for _, w := range g.Neighbors(v) {
			if eng.Alive(w) && !in[w] {
				t.Fatalf("component not maximal: alive neighbor %d of %d excluded", w, v)
			}
		}
	}
	// Deterministic: repeated traversal returns the same set.
	comp2 := eng.Component(u)
	sort.Slice(comp, func(i, j int) bool { return comp[i] < comp[j] })
	sort.Slice(comp2, func(i, j int) bool { return comp2[i] < comp2[j] })
	for i := range comp {
		if comp[i] != comp2[i] {
			t.Fatal("Component is not deterministic")
		}
	}
}

func TestCountOnlyRunMatchesFullRun(t *testing.T) {
	g := gen.Random(200, 5, 21)
	for _, gamma := range []int32{1, 2, 3, 5} {
		a := NewEngine(g, gamma).Run(g.NumVertices(), 0, 0).Count()
		b := NewEngine(g, gamma).Run(g.NumVertices(), 0, WantSeq).Count()
		if a != b {
			t.Errorf("γ=%d: count-only %d vs full %d", gamma, a, b)
		}
	}
}

func TestRunNCImpliesSeq(t *testing.T) {
	g := gen.Random(50, 4, 2)
	cvs := NewEngine(g, 2).Run(g.NumVertices(), 0, WantNC)
	if cvs.Count() > 0 && len(cvs.Seq) == 0 {
		t.Error("WantNC must imply WantSeq")
	}
	if len(cvs.NC) != cvs.Count() {
		t.Errorf("NC flags %d != keys %d", len(cvs.NC), cvs.Count())
	}
}

func TestEmptyPrefix(t *testing.T) {
	g := figure1(t)
	cvs := NewEngine(g, 3).Run(0, 0, WantSeq)
	if cvs.Count() != 0 {
		t.Errorf("empty prefix has %d communities", cvs.Count())
	}
	if got := CountIC(g, 1, 3); got != 0 {
		t.Errorf("single-vertex prefix has %d communities", got)
	}
}
