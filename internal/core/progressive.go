package core

import (
	"context"

	"influcomm/internal/graph"
)

// Stream runs LocalSearch-P (Algorithm 4): it computes and reports
// influential γ-communities progressively in decreasing influence order,
// invoking yield for each one as soon as it is available. No k needs to be
// specified; iteration ends when yield returns false or the whole graph has
// been processed. The returned Stats describe the portion of the graph
// accessed up to termination, which by §4 is O(size(G≥τ*_k)) when the
// caller stops after k communities — LocalSearch's instance-optimality
// carries over.
func Stream(g *graph.Graph, gamma int32, opts Options, yield func(*Community) bool) (Stats, error) {
	return StreamCtx(context.Background(), g, gamma, opts, yield)
}

// StreamCtx is Stream under a context: cancellation is observed at round
// boundaries and inside rounds every few thousand steps, so a cancelled
// context stops the search promptly between yields.
func StreamCtx(ctx context.Context, g *graph.Graph, gamma int32, opts Options, yield func(*Community) bool) (Stats, error) {
	var st Stats
	if err := validateQuery(g, 1, gamma); err != nil {
		return st, err
	}
	if err := opts.validate(); err != nil {
		return st, err
	}
	if err := ctx.Err(); err != nil {
		return st, err
	}
	eng := NewEngine(g, gamma)
	eng.SetContext(ctx)
	return runStream(ctx, eng, g, opts, yield)
}

// runStream is the shared LocalSearch-P driver behind StreamCtx and
// Pool.Stream. Unlike runTopK it never reuses CVS buffers across rounds:
// progressive enumeration retains each round's group slices in the
// communities it yields, so every round's CVS must own its memory.
func runStream(ctx context.Context, eng *Engine, g *graph.Graph, opts Options, yield func(*Community) bool) (Stats, error) {
	var st Stats
	n := g.NumVertices()
	// Line 1 of Algorithm 4: largest τ that could hold one community.
	p := initialPrefix(g, 1, eng.Gamma(), opts)
	prev := 0
	enum := NewEnumState(n)
	flags := WantSeq
	if opts.NonContainment {
		flags |= WantNC
	}
	for {
		// ConstructCVS (Algorithm 5): only keynodes not already reported
		// in the previous round's prefix are produced, implementing the
		// computation sharing that makes LocalSearch-P no slower than
		// LocalSearch (Figure 15).
		cvs, err := eng.RunInto(nil, p, prev, flags)
		if err != nil {
			return st, err
		}
		st.Rounds++
		st.TotalWork += g.PrefixSize(p)
		st.FinalPrefix = p
		st.FinalSize = g.PrefixSize(p)

		if opts.NonContainment {
			for j := len(cvs.Keys) - 1; j >= 0; j-- {
				if !cvs.NC[j] {
					continue
				}
				st.Communities++
				seg := cvs.Group(j)
				c := &Community{
					keynode:   cvs.Keys[j],
					influence: g.Weight(cvs.Keys[j]),
					group:     seg,
					size:      len(seg),
				}
				if !yield(c) {
					return st, nil
				}
			}
		} else {
			for _, c := range enum.Process(g, cvs, -1) {
				st.Communities++
				if !yield(c) {
					return st, nil
				}
			}
		}
		if p == n {
			return st, nil
		}
		if err := ctx.Err(); err != nil {
			return st, err
		}
		prev = p
		p = growPrefix(g, p, opts)
	}
}

// TopKProgressive answers a top-k query with LocalSearch-P, collecting the
// first k streamed communities. It exists so benchmarks can compare the
// progressive and non-progressive algorithms on identical queries
// (Figures 14 and 15).
func TopKProgressive(g *graph.Graph, k int, gamma int32, opts Options) (*Result, error) {
	if err := validateQuery(g, k, gamma); err != nil {
		return nil, err
	}
	res := &Result{}
	st, err := Stream(g, gamma, opts, func(c *Community) bool {
		res.Communities = append(res.Communities, c)
		return len(res.Communities) < k
	})
	if err != nil {
		return nil, err
	}
	res.Stats = st
	return res, nil
}
