package core

import (
	"context"
	"errors"
	"fmt"

	"influcomm/internal/graph"
)

// DefaultDelta is the subgraph growth ratio δ of Algorithm 1. The paper
// proves the 2δ²/(δ−1) constant of Theorem 3.3 is minimized at δ = 2 and
// confirms it empirically (Figure 13).
const DefaultDelta = 2.0

// Options tunes LocalSearch. The zero value means: δ = DefaultDelta,
// initial prefix from the paper's (k+γ)-th weight heuristic, geometric
// growth, containment semantics.
type Options struct {
	// Delta is the geometric growth ratio; must be > 1 if set.
	Delta float64

	// InitialPrefix overrides the starting prefix length τ₁ heuristic
	// (Line 1 of Algorithm 1) when > 0.
	InitialPrefix int

	// ArithmeticGrowth, when > 0, replaces geometric growth with fixed
	// increments of that many size units per round. The paper's §3.3
	// remark predicts (and BenchmarkAblationArithmeticGrowth confirms)
	// super-linear behavior; the option exists only for that ablation.
	ArithmeticGrowth int64

	// NonContainment switches to non-containment community semantics
	// (§5.1): only communities with no nested sub-community are reported.
	NonContainment bool
}

func (o Options) delta() float64 {
	if o.Delta == 0 {
		return DefaultDelta
	}
	return o.Delta
}

func (o Options) validate() error {
	if o.Delta != 0 && o.Delta <= 1 {
		return fmt.Errorf("core: growth ratio δ must exceed 1, got %v", o.Delta)
	}
	if o.ArithmeticGrowth < 0 {
		return fmt.Errorf("core: negative arithmetic growth %d", o.ArithmeticGrowth)
	}
	return nil
}

// Stats reports how much of the graph a run accessed; the quantities of the
// instance-optimality analysis (§3.3).
type Stats struct {
	// Rounds counts the prefixes G≥τ₁ … G≥τ_h processed.
	Rounds int
	// FinalPrefix is the vertex count of the last prefix G≥τ_h.
	FinalPrefix int
	// FinalSize is size(G≥τ_h) = |V| + |E| of the last prefix: the largest
	// subgraph accessed, bounded by 2δ·size(G≥τ*) (Lemma 3.8).
	FinalSize int64
	// TotalWork is Σᵢ size(G≥τᵢ): the total counting work, bounded by
	// (1 + 1/(δ−1))·FinalSize (Lemma 3.7).
	TotalWork int64
	// Communities is the number of communities in the final prefix.
	Communities int
}

// Result is the output of TopK.
type Result struct {
	// Communities holds at most k communities in decreasing influence
	// order. Fewer are returned when the whole graph has fewer.
	Communities []*Community
	Stats       Stats
}

var errNilGraph = errors.New("core: nil graph")

func validateQuery(g *graph.Graph, k int, gamma int32) error {
	if g == nil {
		return errNilGraph
	}
	if g.NumVertices() == 0 {
		return errors.New("core: empty graph")
	}
	if k < 1 {
		return fmt.Errorf("core: k must be >= 1, got %d", k)
	}
	if gamma < 1 {
		return fmt.Errorf("core: gamma must be >= 1, got %d", gamma)
	}
	return nil
}

// PrefixSizer exposes the prefix-size geometry of a ranked graph: the only
// facts the LocalSearch growth policy (Lines 1 and 4 of Algorithm 1) needs,
// with no access to the adjacency itself. *graph.Graph implements it
// directly; semi-external backends implement it from the in-memory
// up-degree vector without touching disk.
type PrefixSizer interface {
	NumVertices() int
	// PrefixSize returns size(G≥τ) = p + |E(G≥τ)| for the prefix [0, p).
	PrefixSize(p int) int64
	// PrefixForSize returns the smallest prefix length p with
	// PrefixSize(p) >= want, or NumVertices() if no prefix is that large.
	PrefixForSize(want int64) int
}

// initialPrefix implements Line 1 of Algorithm 1: the largest τ such that
// G≥τ could possibly hold k influential γ-communities. k communities span
// at least k+γ distinct vertices, so τ₁ is the (k+γ)-th largest weight.
func initialPrefix(g PrefixSizer, k int, gamma int32, opts Options) int {
	n := g.NumVertices()
	p := opts.InitialPrefix
	if p <= 0 {
		p = k + int(gamma)
	}
	if p > n {
		p = n
	}
	if p < 1 {
		p = 1
	}
	return p
}

// growPrefix implements Line 4 of Algorithm 1: the largest τ (smallest
// prefix) whose size is at least δ times the current size, falling back to
// the whole graph.
func growPrefix(g PrefixSizer, p int, opts Options) int {
	cur := g.PrefixSize(p)
	var want int64
	if opts.ArithmeticGrowth > 0 {
		want = cur + opts.ArithmeticGrowth
	} else {
		want = int64(opts.delta() * float64(cur))
		if want <= cur {
			want = cur + 1
		}
	}
	next := g.PrefixForSize(want)
	if next <= p {
		next = p + 1
	}
	if next > g.NumVertices() {
		next = g.NumVertices()
	}
	return next
}

// TopK computes the top-k influential γ-communities of g with the
// LocalSearch algorithm (Algorithm 1). Communities are returned in
// decreasing influence order. The run touches only prefixes of the graph;
// by Theorem 3.3 its total work is O(2δ²/(δ−1) · size(G≥τ*)) where G≥τ* is
// the smallest subgraph any index-free algorithm must access.
func TopK(g *graph.Graph, k int, gamma int32, opts Options) (*Result, error) {
	return TopKCtx(context.Background(), g, k, gamma, opts)
}

// TopKCtx is TopK under a context: cancellation is observed at round
// boundaries and every few thousand removal/traversal steps inside a round,
// so an expired context makes the call return ctx.Err() promptly even on
// graphs where a single round is large.
func TopKCtx(ctx context.Context, g *graph.Graph, k int, gamma int32, opts Options) (*Result, error) {
	if err := validateQuery(g, k, gamma); err != nil {
		return nil, err
	}
	// One-shot queries route through the backend-agnostic driver; the
	// pooled path (Pool.TopK) keeps its scratch-reusing twin runTopK.
	return TopKOver(ctx, GraphSource(g), k, gamma, opts)
}

// runTopK is the shared LocalSearch driver behind TopKCtx and Pool.TopK.
// When scratch is non-nil every round runs into it and enumeration works on
// a compact copy of the tail, so the scratch (and the engine) can go back
// to a pool while the returned Result owns only its own memory. A non-nil
// enum replaces EnumIC's fresh per-query state; the caller recycles it.
func runTopK(ctx context.Context, eng *Engine, scratch *CVS, enum *EnumState, g *graph.Graph, k int, opts Options) (*Result, error) {
	n := g.NumVertices()
	p := initialPrefix(g, k, eng.Gamma(), opts)
	flags := WantSeq
	if opts.NonContainment {
		flags |= WantNC
	}
	var st Stats
	var cvs *CVS
	for {
		var err error
		cvs, err = eng.RunInto(scratch, p, 0, flags)
		if err != nil {
			return nil, err
		}
		st.Rounds++
		st.TotalWork += g.PrefixSize(p)
		cnt := countOf(cvs, opts.NonContainment)
		if cnt >= k || p == n {
			st.Communities = cnt
			break
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		p = growPrefix(g, p, opts)
	}
	st.FinalPrefix = p
	st.FinalSize = g.PrefixSize(p)

	if scratch != nil {
		if opts.NonContainment {
			// Non-containment keynodes are sparse among all keynodes, so
			// the whole tail may be needed to collect k of them.
			cvs = cvs.CompactTail(-1)
		} else {
			cvs = cvs.CompactTail(k)
		}
	}
	var comms []*Community
	switch {
	case opts.NonContainment:
		comms = nonContainmentCommunities(g, cvs, k)
	case enum != nil:
		comms = enum.Process(g, cvs, k)
	default:
		comms = EnumIC(g, cvs, k)
	}
	return &Result{Communities: comms, Stats: st}, nil
}

func countOf(c *CVS, nonContainment bool) int {
	if !nonContainment {
		return c.Count()
	}
	cnt := 0
	for _, nc := range c.NC {
		if nc {
			cnt++
		}
	}
	return cnt
}

// nonContainmentCommunities extracts the top-k non-containment communities:
// the non-containment keynodes' groups are exactly their communities (§5.1).
func nonContainmentCommunities(g *graph.Graph, c *CVS, k int) []*Community {
	var out []*Community
	for j := len(c.Keys) - 1; j >= 0 && len(out) < k; j-- {
		if !c.NC[j] {
			continue
		}
		seg := c.Group(j)
		out = append(out, &Community{
			keynode:   c.Keys[j],
			influence: g.Weight(c.Keys[j]),
			group:     seg,
			size:      len(seg),
		})
	}
	return out
}
