package core

import (
	"fmt"
	"testing"

	"influcomm/internal/gen"
	"influcomm/internal/graph"
)

// communityKey renders a materialized community for comparison.
func communityKey(keynode int32, vertices []int32) string {
	return fmt.Sprintf("%d:%v", keynode, vertices)
}

// checkAgainstNaive verifies that TopK and TopKProgressive agree with the
// definitional reference on graph g for the given query.
func checkAgainstNaive(t *testing.T, g *graph.Graph, k int, gamma int32) {
	t.Helper()
	want := NaiveTopK(g, k, gamma)

	res, err := TopK(g, k, gamma, Options{})
	if err != nil {
		t.Fatalf("TopK(k=%d, γ=%d): %v", k, gamma, err)
	}
	compare(t, "LocalSearch", g, k, gamma, res.Communities, want)

	prog, err := TopKProgressive(g, k, gamma, Options{})
	if err != nil {
		t.Fatalf("TopKProgressive(k=%d, γ=%d): %v", k, gamma, err)
	}
	compare(t, "LocalSearch-P", g, k, gamma, prog.Communities, want)
}

func compare(t *testing.T, algo string, g *graph.Graph, k int, gamma int32, got []*Community, want []NaiveCommunity) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s(k=%d, γ=%d): got %d communities, want %d", algo, k, gamma, len(got), len(want))
	}
	for i := range want {
		w := communityKey(want[i].Keynode, want[i].Vertices)
		gk := communityKey(got[i].Keynode(), got[i].Vertices())
		if w != gk {
			t.Fatalf("%s(k=%d, γ=%d): community %d mismatch\n got %s\nwant %s", algo, k, gamma, i, gk, w)
		}
	}
}

func TestCrossCheckRandomGraphs(t *testing.T) {
	for seed := uint64(1); seed <= 25; seed++ {
		n := 20 + int(seed*7)%60
		avg := 2 + float64(seed%5)
		g := gen.Random(n, avg, seed)
		for _, gamma := range []int32{1, 2, 3, 4} {
			for _, k := range []int{1, 2, 5, 1 << 30} {
				checkAgainstNaive(t, g, k, gamma)
			}
		}
	}
}

func TestCrossCheckPreferentialAttachment(t *testing.T) {
	for seed := uint64(1); seed <= 6; seed++ {
		g, err := gen.PreferentialAttachment(150, 3, seed)
		if err != nil {
			t.Fatalf("generator: %v", err)
		}
		for _, gamma := range []int32{2, 3} {
			for _, k := range []int{1, 3, 10} {
				checkAgainstNaive(t, g, k, gamma)
			}
		}
	}
}

func TestCrossCheckPlantedCommunities(t *testing.T) {
	g, err := gen.PlantedCommunities(8, 12, 0.7, 1.0, 42)
	if err != nil {
		t.Fatalf("generator: %v", err)
	}
	for _, gamma := range []int32{3, 4, 5} {
		for _, k := range []int{1, 2, 4, 8} {
			checkAgainstNaive(t, g, k, gamma)
		}
	}
}

func TestCrossCheckDeltaVariants(t *testing.T) {
	g := gen.Random(120, 5, 7)
	want := NaiveTopK(g, 5, 3)
	for _, delta := range []float64{1.5, 2, 3, 8, 64} {
		res, err := TopK(g, 5, 3, Options{Delta: delta})
		if err != nil {
			t.Fatalf("δ=%v: %v", delta, err)
		}
		compare(t, fmt.Sprintf("LocalSearch(δ=%v)", delta), g, 5, 3, res.Communities, want)
	}
	res, err := TopK(g, 5, 3, Options{ArithmeticGrowth: 64})
	if err != nil {
		t.Fatalf("arithmetic growth: %v", err)
	}
	compare(t, "LocalSearch(arithmetic)", g, 5, 3, res.Communities, want)
}

func TestInitialPrefixOverrides(t *testing.T) {
	g := gen.Random(150, 5, 23)
	want := NaiveTopK(g, 4, 3)
	n := g.NumVertices()
	for _, p0 := range []int{1, 2, 7, 50, n / 2, n} {
		res, err := TopK(g, 4, 3, Options{InitialPrefix: p0})
		if err != nil {
			t.Fatalf("initial prefix %d: %v", p0, err)
		}
		compare(t, fmt.Sprintf("LocalSearch(p0=%d)", p0), g, 4, 3, res.Communities, want)
	}
}

func TestStreamDeltaVariants(t *testing.T) {
	g := gen.Random(120, 5, 29)
	want := NaiveCommunities(g, 3)
	for _, delta := range []float64{1.2, 2, 16} {
		var got []*Community
		_, err := Stream(g, 3, Options{Delta: delta}, func(c *Community) bool {
			got = append(got, c)
			return true
		})
		if err != nil {
			t.Fatalf("δ=%v: %v", delta, err)
		}
		if len(got) != len(want) {
			t.Fatalf("δ=%v: streamed %d, want %d", delta, len(got), len(want))
		}
		for i := range want {
			if got[i].Keynode() != want[i].Keynode {
				t.Fatalf("δ=%v: community %d keynode %d, want %d", delta, i, got[i].Keynode(), want[i].Keynode)
			}
		}
	}
}

func TestStreamMatchesFullEnumeration(t *testing.T) {
	for seed := uint64(1); seed <= 10; seed++ {
		g := gen.Random(80, 4, seed)
		for _, gamma := range []int32{2, 3} {
			want := NaiveCommunities(g, gamma)
			var got []*Community
			_, err := Stream(g, gamma, Options{}, func(c *Community) bool {
				got = append(got, c)
				return true
			})
			if err != nil {
				t.Fatalf("Stream: %v", err)
			}
			if len(got) != len(want) {
				t.Fatalf("seed %d γ=%d: streamed %d communities, want %d", seed, gamma, len(got), len(want))
			}
			for i := range want {
				w := communityKey(want[i].Keynode, want[i].Vertices)
				gk := communityKey(got[i].Keynode(), got[i].Vertices())
				if w != gk {
					t.Fatalf("seed %d γ=%d: community %d mismatch\n got %s\nwant %s", seed, gamma, i, gk, w)
				}
			}
		}
	}
}

func TestStreamEarlyTermination(t *testing.T) {
	g := gen.Random(200, 6, 3)
	all := NaiveCommunities(g, 3)
	if len(all) < 4 {
		t.Skip("fixture has too few communities")
	}
	for stop := 1; stop <= 4; stop++ {
		var got []*Community
		_, err := Stream(g, 3, Options{}, func(c *Community) bool {
			got = append(got, c)
			return len(got) < stop
		})
		if err != nil {
			t.Fatalf("Stream: %v", err)
		}
		if len(got) != stop {
			t.Fatalf("stopped after %d, want %d", len(got), stop)
		}
		for i := 0; i < stop; i++ {
			if got[i].Keynode() != all[i].Keynode {
				t.Fatalf("community %d keynode = %d, want %d", i, got[i].Keynode(), all[i].Keynode)
			}
		}
	}
}

func TestNonContainmentMatchesNaive(t *testing.T) {
	for seed := uint64(1); seed <= 12; seed++ {
		g := gen.Random(60, 5, seed)
		for _, gamma := range []int32{2, 3} {
			want := NaiveNonContainment(g, gamma)
			res, err := TopK(g, 1<<30, gamma, Options{NonContainment: true})
			if err != nil {
				t.Fatalf("TopK NC: %v", err)
			}
			if len(res.Communities) != len(want) {
				t.Fatalf("seed %d γ=%d: got %d NC communities, want %d", seed, gamma, len(res.Communities), len(want))
			}
			for i := range want {
				w := communityKey(want[i].Keynode, want[i].Vertices)
				gk := communityKey(res.Communities[i].Keynode(), res.Communities[i].Vertices())
				if w != gk {
					t.Fatalf("seed %d γ=%d: NC community %d mismatch\n got %s\nwant %s", seed, gamma, i, gk, w)
				}
			}
			// Non-containment communities must be pairwise disjoint (§5.1).
			seen := make(map[int32]bool)
			for _, c := range res.Communities {
				for _, v := range c.Vertices() {
					if seen[v] {
						t.Fatalf("seed %d γ=%d: NC communities overlap at vertex %d", seed, gamma, v)
					}
					seen[v] = true
				}
			}
		}
	}
}
