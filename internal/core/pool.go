package core

import (
	"context"
	"sync"

	"influcomm/internal/graph"
)

// Pool amortizes per-query setup cost for repeated LocalSearch queries over
// one graph. A fresh query through TopK builds four O(n) engine slices and
// per-round CVS buffers; under serving traffic that allocation dominates
// small queries and pressures the GC. A Pool keeps engines (rebound to each
// query's γ on checkout, which subsumes keeping one pool per γ — the
// scratch depends only on the graph) and CVS buffers in sync.Pools, so
// steady-state queries perform zero engine allocations.
//
// A Pool is safe for concurrent use; each checked-out engine is used by one
// goroutine at a time.
type Pool struct {
	g       *graph.Graph
	engines sync.Pool // *Engine
	buffers sync.Pool // *CVS
	enums   sync.Pool // *EnumState
}

// NewPool returns a Pool serving queries over g.
func NewPool(g *graph.Graph) *Pool {
	p := &Pool{g: g}
	p.engines.New = func() any { return NewEngine(g, 0) }
	p.buffers.New = func() any { return new(CVS) }
	p.enums.New = func() any { return NewEnumState(g.NumVertices()) }
	return p
}

// Graph returns the pool's graph.
func (p *Pool) Graph() *graph.Graph { return p.g }

// Get checks an engine out of the pool, reset to the given γ. Return it
// with Put when the query is done.
func (p *Pool) Get(gamma int32) *Engine {
	e := p.engines.Get().(*Engine)
	e.Reset(gamma)
	return e
}

// Put returns an engine obtained from Get to the pool.
func (p *Pool) Put(e *Engine) {
	e.SetContext(nil)
	p.engines.Put(e)
}

// TopK answers a top-k query with pooled scratch state: equivalent to
// TopKCtx but allocation-free in steady state apart from the returned
// Result, which owns its own memory.
func (p *Pool) TopK(ctx context.Context, k int, gamma int32, opts Options) (*Result, error) {
	if err := validateQuery(p.g, k, gamma); err != nil {
		return nil, err
	}
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	eng := p.Get(gamma)
	defer p.Put(eng)
	eng.SetContext(ctx)
	scratch := p.buffers.Get().(*CVS)
	defer p.buffers.Put(scratch)
	var enum *EnumState
	if !opts.NonContainment {
		enum = p.enums.Get().(*EnumState)
		defer func() {
			enum.Recycle()
			p.enums.Put(enum)
		}()
	}
	return runTopK(ctx, eng, scratch, enum, p.g, k, opts)
}

// Stream answers a progressive query with a pooled engine: equivalent to
// StreamCtx. CVS buffers are not reused here — the yielded communities
// retain each round's group slices — so only the engine allocation is
// saved.
func (p *Pool) Stream(ctx context.Context, gamma int32, opts Options, yield func(*Community) bool) (Stats, error) {
	var st Stats
	if err := validateQuery(p.g, 1, gamma); err != nil {
		return st, err
	}
	if err := opts.validate(); err != nil {
		return st, err
	}
	if err := ctx.Err(); err != nil {
		return st, err
	}
	eng := p.Get(gamma)
	defer p.Put(eng)
	eng.SetContext(ctx)
	return runStream(ctx, eng, p.g, opts, yield)
}
