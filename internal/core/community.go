// Package core implements the paper's primary contribution: the
// instance-optimal LocalSearch algorithm (Algorithm 1) for top-k influential
// γ-community search, its counting (CountIC, Algorithm 2) and enumeration
// (EnumIC, Algorithm 3) subroutines, the progressive LocalSearch-P variant
// (Algorithms 4–5), and the non-containment extension (§5.1).
package core

import (
	"sort"

	"influcomm/internal/graph"
)

// Community is one influential γ-community, represented as a node of the
// community containment forest: its own group gp(u) of vertices plus child
// communities that are nested inside it (paper Lemma 3.6). This linked form
// is what makes EnumIC run in time linear in the graph rather than in the
// (potentially much larger) total output size.
type Community struct {
	keynode   int32
	influence float64
	group     []int32
	children  []*Community
	size      int
}

// Keynode returns the rank ID of the community's keynode: its unique
// minimum-weight vertex (Lemma 3.4).
func (c *Community) Keynode() int32 { return c.keynode }

// Influence returns f(g), the minimum vertex weight of the community.
func (c *Community) Influence() float64 { return c.influence }

// Size returns the number of vertices in the community, including all
// nested child communities. It is O(1).
func (c *Community) Size() int { return c.size }

// Group returns gp(u): the vertices that belong to this community but to no
// nested child community. The caller must not modify the returned slice.
func (c *Community) Group() []int32 { return c.group }

// Children returns the communities nested directly inside this one, i.e.
// Ch(u) of Algorithm 3. The caller must not modify the returned slice.
func (c *Community) Children() []*Community { return c.children }

// Vertices materializes the full vertex set of the community in ascending
// rank order. It costs O(Size) and allocates; prefer walking Group and
// Children for large nested results.
func (c *Community) Vertices() []int32 {
	out := make([]int32, 0, c.size)
	var walk func(x *Community)
	walk = func(x *Community) {
		out = append(out, x.group...)
		for _, ch := range x.children {
			walk(ch)
		}
	}
	walk(c)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Contains reports whether vertex u belongs to the community.
func (c *Community) Contains(u int32) bool {
	for _, v := range c.group {
		if v == u {
			return true
		}
	}
	for _, ch := range c.children {
		if ch.Contains(u) {
			return true
		}
	}
	return false
}

// MinDegree returns the minimum degree of the community's induced subgraph
// in g. It is a verification helper (tests, examples); cost O(output edges).
func (c *Community) MinDegree(g *graph.Graph) int32 {
	vs := c.Vertices()
	in := make(map[int32]bool, len(vs))
	for _, v := range vs {
		in[v] = true
	}
	minDeg := int32(-1)
	for _, v := range vs {
		var d int32
		for _, w := range g.Neighbors(v) {
			if in[w] {
				d++
			}
		}
		if minDeg < 0 || d < minDeg {
			minDeg = d
		}
	}
	return minDeg
}
