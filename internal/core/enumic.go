package core

import "influcomm/internal/graph"

// EnumState implements EnumIC (Algorithm 3) and its progressive sibling
// EnumIC-P. It owns the v2key disjoint-set structure mapping each vertex to
// the smallest keynode whose community contains it; for LocalSearch-P the
// same state is shared across rounds so enumeration work is never repeated.
// An EnumState is bound to one graph/γ and is not safe for concurrent use.
type EnumState struct {
	vgroup []int32      // per vertex: group index, or -1 when unassigned
	parent []int32      // disjoint sets over group indices
	comms  []*Community // community per group index
}

// NewEnumState returns an EnumState for a graph with n vertices.
func NewEnumState(n int) *EnumState {
	s := &EnumState{vgroup: make([]int32, n)}
	for i := range s.vgroup {
		s.vgroup[i] = -1
	}
	return s
}

// Recycle returns the state to its freshly-constructed condition by
// undoing exactly the assignments the previous enumeration made (touched
// vertices are recorded in the communities' group slices), so a pooled
// state resets in output-size rather than O(n) time. The communities
// themselves are not touched — they are owned by the caller of Process.
func (s *EnumState) Recycle() {
	for i, c := range s.comms {
		for _, v := range c.group {
			s.vgroup[v] = -1
		}
		s.comms[i] = nil // drop the reference; the result owns the community
	}
	s.comms = s.comms[:0]
	s.parent = s.parent[:0]
}

// find returns the representative group of j with path halving. Combined
// with the directed unions below this gives the amortized near-constant
// Find/Union of Algorithm 3 [12].
func (s *EnumState) find(j int32) int32 {
	for s.parent[j] != j {
		s.parent[j] = s.parent[s.parent[j]]
		j = s.parent[j]
	}
	return j
}

// Process runs EnumIC over the keynodes of c, in decreasing weight order,
// restricted to the last k keynodes (all of them when k < 0). It returns
// the corresponding communities in decreasing influence order. Each group
// slice of c is retained by the resulting communities; c must therefore not
// be reused as a scratch buffer by the caller.
//
// In progressive mode the method is called once per round with the round's
// fresh CVS; the persistent v2key state makes each new community link to
// the already-built communities nested inside it (Lemma 3.6).
func (s *EnumState) Process(g *graph.Graph, c *CVS, k int) []*Community {
	start := 0
	if k >= 0 && len(c.Keys) > k {
		start = len(c.Keys) - k
	}
	out := make([]*Community, 0, len(c.Keys)-start)
	for j := len(c.Keys) - 1; j >= start; j-- {
		u := c.Keys[j]
		seg := c.Group(j)

		gid := int32(len(s.comms))
		s.parent = append(s.parent, gid)

		// Line 8: v2key(v) <- u for all v in gp(u).
		for _, v := range seg {
			s.vgroup[v] = gid
		}

		// Lines 9-13: collect child communities through edges from gp(u)
		// to already-assigned vertices, merging their sets into gid.
		com := &Community{
			keynode:   u,
			influence: g.Weight(u),
			group:     seg,
			size:      len(seg),
		}
		for _, v := range seg {
			for _, w := range g.NeighborsWithin(v, c.P) {
				gw := s.vgroup[w]
				if gw < 0 {
					continue
				}
				r := s.find(gw)
				if r == gid {
					continue
				}
				child := s.comms[r]
				com.children = append(com.children, child)
				com.size += child.size
				s.parent[r] = gid
			}
		}
		s.comms = append(s.comms, com)
		out = append(out, com)
	}
	return out
}

// EnumIC computes the top-k influential γ-communities of the prefix
// subgraph that c was computed on, in decreasing influence order
// (Algorithm 3). c must have been produced with WantSeq.
func EnumIC(g *graph.Graph, c *CVS, k int) []*Community {
	return NewEnumState(g.NumVertices()).Process(g, c, k)
}
