package core

import (
	"sort"

	"influcomm/internal/graph"
)

// NaiveCommunity is a fully materialized influential γ-community produced
// by the definitional reference implementation.
type NaiveCommunity struct {
	Keynode   int32
	Influence float64
	Vertices  []int32 // ascending rank order
}

// NaiveCommunities computes every influential γ-community of g directly
// from Definition 2.2, independently of the CountIC/EnumIC machinery: a
// vertex u is a keynode iff it survives the γ-core of the prefix [0, u],
// and its community is then u's connected component in that core (the
// maximal connected cohesive subgraph whose minimum weight is ω(u)).
//
// The cost is O(n·(n+m)); it exists purely as a test oracle for
// cross-validating the optimized algorithms and baselines.
func NaiveCommunities(g *graph.Graph, gamma int32) []NaiveCommunity {
	n := g.NumVertices()
	var out []NaiveCommunity
	eng := NewEngine(g, gamma)
	for u := int32(0); int(u) < n; u++ {
		eng.Peel(int(u) + 1)
		if !eng.Alive(u) {
			continue
		}
		comp := eng.Component(u)
		sort.Slice(comp, func(i, j int) bool { return comp[i] < comp[j] })
		out = append(out, NaiveCommunity{
			Keynode:   u,
			Influence: g.Weight(u),
			Vertices:  comp,
		})
	}
	// Vertices ascend in rank = descend in weight, so out is already in
	// decreasing influence order.
	return out
}

// NaiveTopK returns the k highest-influence communities of the naive
// enumeration, in decreasing influence order.
func NaiveTopK(g *graph.Graph, k int, gamma int32) []NaiveCommunity {
	all := NaiveCommunities(g, gamma)
	if len(all) > k {
		all = all[:k]
	}
	return all
}

// NaiveNonContainment filters the naive enumeration down to communities
// with no other community nested inside them (Definition 5.1), by pairwise
// subset tests. Quadratic; test oracle only.
func NaiveNonContainment(g *graph.Graph, gamma int32) []NaiveCommunity {
	all := NaiveCommunities(g, gamma)
	sets := make([]map[int32]bool, len(all))
	for i, c := range all {
		sets[i] = make(map[int32]bool, len(c.Vertices))
		for _, v := range c.Vertices {
			sets[i][v] = true
		}
	}
	var out []NaiveCommunity
	for i, c := range all {
		nc := true
		for j, other := range all {
			if i == j || len(other.Vertices) >= len(c.Vertices) {
				continue
			}
			subset := true
			for _, v := range other.Vertices {
				if !sets[i][v] {
					subset = false
					break
				}
			}
			if subset {
				nc = false
				break
			}
		}
		if nc {
			out = append(out, c)
		}
	}
	return out
}
