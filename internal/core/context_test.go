package core

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestTopKCtxExpiredDeadline(t *testing.T) {
	g := nestedChain(t, 200)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	start := time.Now()
	_, err := TopKCtx(ctx, g, 10, 3, Options{})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Errorf("expired-deadline query took %v, want prompt return", d)
	}
}

func TestTopKCtxCanceled(t *testing.T) {
	g := figure1(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := TopKCtx(ctx, g, 2, 3, Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
	// Validation still beats the context check, matching TopK.
	if _, err := TopKCtx(ctx, g, 0, 3, Options{}); errors.Is(err, context.Canceled) {
		t.Fatal("invalid k should fail validation, not report cancellation")
	}
}

// TestStreamCtxCancelMidQuery cancels the context from inside the first
// yield: the search must stop at the next cancellation point and return
// ctx.Err() even though the graph holds many more communities.
func TestStreamCtxCancelMidQuery(t *testing.T) {
	g := nestedChain(t, 500) // one community per prefix ≥ 4: hundreds total
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	yields := 0
	st, err := StreamCtx(ctx, g, 3, Options{}, func(*Community) bool {
		yields++
		cancel()
		return true
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want Canceled", err)
	}
	if yields == 0 {
		t.Fatal("search never reached a yield")
	}
	if st.Communities >= 496 {
		t.Errorf("cancellation did not stop the search: %d communities reported", st.Communities)
	}
}

func TestEngineRemoveStopsOnCancel(t *testing.T) {
	// Drive the step-wise API with a cancelled context: Remove must stop
	// its cascade early and record the error.
	// More vertices than one poll interval, so the cancellation must be
	// observed strictly before the peel sequence completes.
	n := ctxCheckInterval + 1000
	g := nestedChain(t, n)
	e := NewEngine(g, 3)
	ctx, cancel := context.WithCancel(context.Background())
	e.SetContext(ctx)
	e.Peel(n)
	cancel()
	for e.Err() == nil {
		u := e.NextMin()
		if u < 0 {
			break
		}
		e.Remove(u, nil)
	}
	if e.Err() == nil {
		t.Fatal("engine never observed the cancelled context")
	}
	if !errors.Is(e.Err(), context.Canceled) {
		t.Fatalf("Err() = %v, want Canceled", e.Err())
	}
	if e.NextMin() < 0 {
		t.Error("cascade ran to completion despite cancellation")
	}
}

// TestPoolMatchesTopK checks that pooled queries return the same
// communities as the per-query path, including after engine reuse across
// different γ values and semantics.
func TestPoolMatchesTopK(t *testing.T) {
	g := figure1(t)
	pool := NewPool(g)
	cases := []struct {
		k     int
		gamma int32
		opts  Options
	}{
		{1, 3, Options{}},
		{2, 3, Options{}},
		{5, 3, Options{}},
		{2, 2, Options{}},
		{1, 4, Options{}},
		{2, 3, Options{NonContainment: true}},
	}
	for round := 0; round < 3; round++ { // repeat so engines are reused
		for _, c := range cases {
			want, err := TopK(g, c.k, c.gamma, c.opts)
			if err != nil {
				t.Fatal(err)
			}
			got, err := pool.TopK(context.Background(), c.k, c.gamma, c.opts)
			if err != nil {
				t.Fatal(err)
			}
			if len(got.Communities) != len(want.Communities) {
				t.Fatalf("k=%d γ=%d: pooled %d communities, want %d",
					c.k, c.gamma, len(got.Communities), len(want.Communities))
			}
			for i := range want.Communities {
				w, gc := want.Communities[i], got.Communities[i]
				if gc.Influence() != w.Influence() || gc.Size() != w.Size() || gc.Keynode() != w.Keynode() {
					t.Errorf("k=%d γ=%d community %d: got (%v,%d,%d), want (%v,%d,%d)",
						c.k, c.gamma, i, gc.Influence(), gc.Size(), gc.Keynode(),
						w.Influence(), w.Size(), w.Keynode())
				}
				if !equalVertices(gc.Vertices(), w.Vertices()) {
					t.Errorf("k=%d γ=%d community %d: vertex sets differ", c.k, c.gamma, i)
				}
			}
			if got.Stats != want.Stats {
				t.Errorf("k=%d γ=%d: stats %+v, want %+v", c.k, c.gamma, got.Stats, want.Stats)
			}
		}
	}
}

// TestPoolResultOwnsMemory ensures a pooled result stays intact after the
// pool's buffers are reused by later queries (the CompactTail contract).
func TestPoolResultOwnsMemory(t *testing.T) {
	g := figure1(t)
	pool := NewPool(g)
	res, err := pool.TopK(context.Background(), 2, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	snapshot := make([][]int32, len(res.Communities))
	for i, c := range res.Communities {
		snapshot[i] = c.Vertices()
	}
	for i := 0; i < 50; i++ { // churn the pooled buffers
		if _, err := pool.TopK(context.Background(), i%5+1, 3, Options{}); err != nil {
			t.Fatal(err)
		}
	}
	for i, c := range res.Communities {
		if !equalVertices(c.Vertices(), snapshot[i]) {
			t.Fatalf("community %d mutated by later pooled queries", i)
		}
	}
}

func TestPoolStreamMatchesStream(t *testing.T) {
	g := figure1(t)
	pool := NewPool(g)
	var want, got []float64
	if _, err := Stream(g, 3, Options{}, func(c *Community) bool {
		want = append(want, c.Influence())
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := pool.Stream(context.Background(), 3, Options{}, func(c *Community) bool {
		got = append(got, c.Influence())
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("pooled stream yielded %d communities, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("yield %d: influence %v, want %v", i, got[i], want[i])
		}
	}
}

func equalVertices(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
