package core

import (
	"context"
	"errors"
	"fmt"

	"influcomm/internal/graph"
)

// SearchSource abstracts where the ranked graph lives for LocalSearch. The
// driver only ever inspects prefix subgraphs G≥τ, so a backend needs two
// capabilities: the prefix-size geometry (PrefixSizer, answerable from O(n)
// per-vertex state) and the ability to materialize a prefix in memory. The
// in-memory source is the graph itself at zero cost; a semi-external source
// streams just enough of its on-disk edge file.
type SearchSource interface {
	PrefixSizer

	// Materialize returns an in-memory graph covering at least the prefix
	// [0, p). Vertex IDs equal global weight ranks, so vertex u < p of the
	// returned graph is vertex u of the backing graph with the same weight
	// and the same prefix-internal edges. Implementations may return a
	// graph larger than requested (the in-memory source returns the whole
	// graph) and may reuse the returned value across calls; the driver
	// detects reuse by pointer identity.
	Materialize(p int) (*graph.Graph, error)
}

// PooledSource is an optional SearchSource extension: a source whose
// Materialize hands out a long-lived shared graph (an in-memory graph, a
// semi-external store's decoded prefix cache) also exposes the engine pool
// bound to that graph, and TopKOver then checks engines, CVS buffers, and
// enumeration state out of it instead of allocating O(p) scratch per query
// — the difference between a serving hot path that allocates only its
// Result and one that rebuilds four vertex-sized slices per request.
type PooledSource interface {
	// SourcePool returns the pool whose engines are bound to exactly g, or
	// nil when g is query-private and must get a fresh engine.
	SourcePool(g *graph.Graph) *Pool
}

// memSource adapts a fully in-memory graph to SearchSource.
type memSource struct{ g *graph.Graph }

func (s memSource) NumVertices() int                      { return s.g.NumVertices() }
func (s memSource) PrefixSize(p int) int64                { return s.g.PrefixSize(p) }
func (s memSource) PrefixForSize(want int64) int          { return s.g.PrefixForSize(want) }
func (s memSource) Materialize(int) (*graph.Graph, error) { return s.g, nil }

// Fork returns the source itself: an immutable in-memory graph serves any
// number of concurrent rounds without per-fork state.
func (s memSource) Fork(context.Context) (SearchSource, func()) { return s, func() {} }

// GraphSource returns the SearchSource view of an in-memory graph:
// Materialize hands back g itself, so TopKOver over it is exactly TopKCtx.
func GraphSource(g *graph.Graph) SearchSource { return memSource{g} }

// TopKOver runs LocalSearch (Algorithm 1) against an arbitrary SearchSource:
// the same round structure, growth policy, and enumeration as TopKCtx, but
// each round's γ-core computation happens on whatever graph the source
// materializes. Over GraphSource it is equivalent to TopKCtx; over a
// semi-external source the full graph is never loaded — each round touches
// only the prefix the search has grown to, which is how a query can execute
// against a graph larger than RAM.
func TopKOver(ctx context.Context, src SearchSource, k int, gamma int32, opts Options) (*Result, error) {
	if src == nil {
		return nil, errors.New("core: nil search source")
	}
	n := src.NumVertices()
	if n == 0 {
		return nil, errors.New("core: empty graph")
	}
	if k < 1 {
		return nil, fmt.Errorf("core: k must be >= 1, got %d", k)
	}
	if gamma < 1 {
		return nil, fmt.Errorf("core: gamma must be >= 1, got %d", gamma)
	}
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	p := initialPrefix(src, k, gamma, opts)
	flags := WantSeq
	if opts.NonContainment {
		flags |= WantNC
	}
	ps, _ := src.(PooledSource)
	var (
		st  Stats
		cvs *CVS
		g   *graph.Graph
		eng *Engine
		// pool, when non-nil, owns eng (invariant: eng came from pool.Get
		// and goes back with pool.Put). scratchPool likewise owns scratch;
		// the CVS buffer only depends on output size, so it is kept across
		// graph changes and returned to the pool it came from.
		pool        *Pool
		scratch     *CVS
		scratchPool *Pool
	)
	defer func() {
		if pool != nil && eng != nil {
			pool.Put(eng)
		}
		if scratchPool != nil && scratch != nil {
			scratchPool.buffers.Put(scratch)
		}
	}()
	for {
		mg, err := src.Materialize(p)
		if err != nil {
			return nil, err
		}
		if mg.NumVertices() < p {
			return nil, fmt.Errorf("core: source materialized %d vertices, prefix needs %d", mg.NumVertices(), p)
		}
		// Engines are bound to one graph; reuse only while the source keeps
		// returning the same one (the in-memory case, or a cached prefix
		// large enough for every round of this query).
		if eng == nil || mg != g {
			if pool != nil {
				pool.Put(eng)
			}
			g = mg
			pool = nil
			if ps != nil {
				pool = ps.SourcePool(g)
			}
			if pool != nil {
				eng = pool.Get(gamma)
				if scratch == nil {
					scratchPool = pool
					scratch = pool.buffers.Get().(*CVS)
				}
			} else {
				eng = NewEngine(g, gamma)
			}
			eng.SetContext(ctx)
		}
		cvs, err = eng.RunInto(scratch, p, 0, flags)
		if err != nil {
			return nil, err
		}
		st.Rounds++
		st.TotalWork += src.PrefixSize(p)
		cnt := countOf(cvs, opts.NonContainment)
		if cnt >= k || p == n {
			st.Communities = cnt
			break
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		p = growPrefix(src, p, opts)
	}
	st.FinalPrefix = p
	st.FinalSize = src.PrefixSize(p)

	if scratch != nil {
		// cvs aliases the pooled buffer; enumeration retains group slices,
		// so hand it a compact copy and let the buffer go back to the pool.
		if opts.NonContainment {
			cvs = cvs.CompactTail(-1)
		} else {
			cvs = cvs.CompactTail(k)
		}
	}
	return &Result{Communities: enumerateCommunities(g, cvs, pool, k, opts), Stats: st}, nil
}

// enumerateCommunities materializes the final communities from a peeled
// CVS: the shared tail of TopKOver and the parallel driver, so the two can
// never drift apart. A non-nil pool supplies recycled enumeration state.
func enumerateCommunities(g *graph.Graph, cvs *CVS, pool *Pool, k int, opts Options) []*Community {
	switch {
	case opts.NonContainment:
		return nonContainmentCommunities(g, cvs, k)
	case pool != nil:
		enum := pool.enums.Get().(*EnumState)
		comms := enum.Process(g, cvs, k)
		enum.Recycle()
		pool.enums.Put(enum)
		return comms
	default:
		return EnumIC(g, cvs, k)
	}
}
