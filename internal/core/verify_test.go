package core

import (
	"testing"

	"influcomm/internal/gen"
)

func TestVerifyAcceptsRealResults(t *testing.T) {
	for seed := uint64(1); seed <= 6; seed++ {
		g := gen.Random(120, 5, seed)
		for _, gamma := range []int32{2, 3} {
			res, err := TopK(g, 10, gamma, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if err := VerifyResult(g, gamma, res); err != nil {
				t.Fatalf("seed %d γ=%d: verifier rejected a correct result: %v", seed, gamma, err)
			}
		}
	}
}

func TestVerifyRejectsTampered(t *testing.T) {
	g := figure1(t)
	res, err := TopK(g, 2, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	good := res.Communities[0]

	// Wrong influence.
	bad := &Community{keynode: good.keynode, influence: good.influence + 1, group: good.group, size: good.size}
	if Verify(g, 3, bad) == nil {
		t.Error("tampered influence accepted")
	}
	// Missing a vertex (drop one from the group).
	bad = &Community{keynode: good.keynode, influence: good.influence, group: good.group[:len(good.group)-1], size: good.size - 1}
	if Verify(g, 3, bad) == nil {
		t.Error("truncated community accepted")
	}
	// Wrong γ: under γ=4 the keynode peels out of its own prefix's core.
	if Verify(g, 4, good) == nil {
		t.Error("community verified under the wrong γ")
	}
	// Inconsistent size cache.
	bad = &Community{keynode: good.keynode, influence: good.influence, group: good.group, size: good.size + 3}
	if Verify(g, 3, bad) == nil {
		t.Error("bad size cache accepted")
	}
	// Non-keynode vertex.
	bad = &Community{keynode: 0, influence: g.Weight(0), group: []int32{0}, size: 1}
	if Verify(g, 3, bad) == nil {
		t.Error("non-keynode community accepted")
	}
	if Verify(g, 3, nil) == nil {
		t.Error("nil community accepted")
	}
	if VerifyResult(g, 3, nil) == nil {
		t.Error("nil result accepted")
	}
}

func TestVerifyResultOrdering(t *testing.T) {
	g := figure1(t)
	res, err := TopK(g, 2, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Swap to break the decreasing-influence invariant.
	res.Communities[0], res.Communities[1] = res.Communities[1], res.Communities[0]
	if VerifyResult(g, 3, res) == nil {
		t.Error("out-of-order result accepted")
	}
}
