package core

import (
	"fmt"
	"sort"

	"influcomm/internal/graph"
)

// Verify checks a reported community against Definition 2.2 independently
// of the machinery that produced it: the keynode is the community's unique
// minimum-weight vertex, the vertex set is exactly the connected component
// of the keynode in the γ-core of G≥ω(keynode) (which establishes
// connectivity, cohesion and maximality at once), and the cached size is
// consistent. It runs one γ-core peel over the prefix [0, keynode], so it
// is cheap enough to spot-check results on large graphs.
func Verify(g *graph.Graph, gamma int32, c *Community) error {
	if c == nil {
		return fmt.Errorf("core: nil community")
	}
	u := c.Keynode()
	if u < 0 || int(u) >= g.NumVertices() {
		return fmt.Errorf("core: keynode %d out of range", u)
	}
	if c.Influence() != g.Weight(u) {
		return fmt.Errorf("core: influence %v differs from keynode weight %v", c.Influence(), g.Weight(u))
	}
	got := c.Vertices()
	if len(got) != c.Size() {
		return fmt.Errorf("core: community reports size %d but materializes %d vertices", c.Size(), len(got))
	}
	for _, v := range got {
		if v > u {
			return fmt.Errorf("core: member %d has smaller weight than the keynode %d", v, u)
		}
	}

	eng := NewEngine(g, gamma)
	eng.Peel(int(u) + 1)
	if !eng.Alive(u) {
		return fmt.Errorf("core: keynode %d is not in the γ-core of its own prefix", u)
	}
	want := eng.Component(u)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	if len(want) != len(got) {
		return fmt.Errorf("core: community has %d vertices, the maximal one has %d", len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			return fmt.Errorf("core: community differs from the maximal subgraph at vertex %d (got %d, want %d)",
				i, got[i], want[i])
		}
	}
	return nil
}

// VerifyResult verifies every community of a top-k result and that the
// result is sorted by strictly decreasing influence.
func VerifyResult(g *graph.Graph, gamma int32, res *Result) error {
	if res == nil {
		return fmt.Errorf("core: nil result")
	}
	for i, c := range res.Communities {
		if i > 0 && c.Influence() >= res.Communities[i-1].Influence() {
			return fmt.Errorf("core: result not in strictly decreasing influence order at position %d", i)
		}
		if err := Verify(g, gamma, c); err != nil {
			return fmt.Errorf("community %d: %w", i, err)
		}
	}
	return nil
}
