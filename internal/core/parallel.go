package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"influcomm/internal/graph"
)

// ForkableSource is an optional SearchSource extension that unlocks the
// speculative parallel driver: Fork returns an independent source over the
// same ranked graph for use by one concurrent round, plus a release
// callback returning the fork's resources (pooled scratch, file handles)
// once the round's materialized graph is no longer referenced. Forks of one
// source may materialize prefixes concurrently with each other and with the
// parent.
type ForkableSource interface {
	SearchSource

	// Fork returns a source whose Materialize observes ctx, and a release
	// callback the driver invokes exactly once when the fork's graphs are
	// dead.
	Fork(ctx context.Context) (SearchSource, func())
}

// ParallelMinRoundWork is the work-size cutoff of the parallel driver:
// rounds whose prefix size (vertices + edges) is below it run inline on the
// calling goroutine, and queries over graphs smaller than it never leave
// TopKOver's zero-overhead sequential path. Peeling a prefix this size
// takes tens of microseconds — well above the cost of a goroutine handoff,
// so rounds past the cutoff gain from overlap while small queries pay
// nothing.
const ParallelMinRoundWork = 1 << 16

// TopKOverParallel is TopKOver with bounded intra-query parallelism: the
// γ-round decompositions of LocalSearch are evaluated speculatively on up
// to workers goroutines. The growth sequence τ₁ > τ₂ > … depends only on
// prefix-size geometry — never on a round's outcome — so every round's
// prefix is known up front and rounds are independent γ-core computations;
// the driver claims them in order, runs them concurrently, and selects the
// same round the sequential driver would have stopped at: the first whose
// community count reaches k (or that covers the whole graph) with every
// earlier round decided short. Overshooting rounds are cancelled. Results
// — communities and access statistics — are byte-identical to TopKOver at
// any worker count.
//
// Sources that do not implement ForkableSource, worker counts below 2, and
// queries below the work-size cutoff all fall back to TopKOver, as does
// the ArithmeticGrowth ablation (whose unbounded round count defeats
// speculation).
func TopKOverParallel(ctx context.Context, src SearchSource, k int, gamma int32, opts Options, workers int) (*Result, error) {
	if src == nil {
		return TopKOver(ctx, src, k, gamma, opts)
	}
	fs, ok := src.(ForkableSource)
	if !ok || workers <= 1 || opts.ArithmeticGrowth > 0 {
		return TopKOver(ctx, src, k, gamma, opts)
	}
	n := src.NumVertices()
	if n == 0 || src.PrefixSize(n) < ParallelMinRoundWork {
		return TopKOver(ctx, src, k, gamma, opts)
	}
	if k < 1 {
		return nil, fmt.Errorf("core: k must be >= 1, got %d", k)
	}
	if gamma < 1 {
		return nil, fmt.Errorf("core: gamma must be >= 1, got %d", gamma)
	}
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// The whole round plan is known before any γ-core is peeled: that is
	// what makes speculation deterministic — round i inspects the same
	// prefix whether rounds run one at a time or concurrently.
	plan := []int{initialPrefix(src, k, gamma, opts)}
	for p := plan[0]; p < n; {
		p = growPrefix(src, p, opts)
		plan = append(plan, p)
	}

	flags := WantSeq
	if opts.NonContainment {
		flags |= WantNC
	}
	ps, _ := src.(PooledSource)
	var st Stats

	// Sequential prelude: rounds below the cutoff run inline exactly as
	// TopKOver runs them — same engine reuse, same pooling — so an early
	// answer never pays for goroutines it didn't need.
	start := 0
	{
		var (
			g           *graph.Graph
			eng         *Engine
			pool        *Pool
			scratch     *CVS
			scratchPool *Pool
		)
		putBack := func() {
			if pool != nil && eng != nil {
				pool.Put(eng)
			}
			if scratchPool != nil && scratch != nil {
				scratchPool.buffers.Put(scratch)
			}
		}
		for start < len(plan) && src.PrefixSize(plan[start]) < ParallelMinRoundWork {
			p := plan[start]
			mg, err := src.Materialize(p)
			if err != nil {
				putBack()
				return nil, err
			}
			if mg.NumVertices() < p {
				putBack()
				return nil, fmt.Errorf("core: source materialized %d vertices, prefix needs %d", mg.NumVertices(), p)
			}
			if eng == nil || mg != g {
				if pool != nil {
					pool.Put(eng)
				}
				g = mg
				pool = nil
				if ps != nil {
					pool = ps.SourcePool(g)
				}
				if pool != nil {
					eng = pool.Get(gamma)
					if scratch == nil {
						scratchPool = pool
						scratch = pool.buffers.Get().(*CVS)
					}
				} else {
					eng = NewEngine(g, gamma)
				}
				eng.SetContext(ctx)
			}
			cvs, err := eng.RunInto(scratch, p, 0, flags)
			if err != nil {
				putBack()
				return nil, err
			}
			st.Rounds++
			st.TotalWork += src.PrefixSize(p)
			cnt := countOf(cvs, opts.NonContainment)
			if cnt >= k || p == n {
				st.Communities = cnt
				st.FinalPrefix = p
				st.FinalSize = src.PrefixSize(p)
				if scratch != nil {
					if opts.NonContainment {
						cvs = cvs.CompactTail(-1)
					} else {
						cvs = cvs.CompactTail(k)
					}
				}
				comms := enumerateCommunities(g, cvs, pool, k, opts)
				putBack()
				return &Result{Communities: comms, Stats: st}, nil
			}
			if err := ctx.Err(); err != nil {
				putBack()
				return nil, err
			}
			start++
		}
		putBack()
	}

	// Speculative phase: workers claim the remaining rounds in plan order
	// and evaluate them concurrently on forked sources. The coordinator
	// advances a frontier over finished rounds; the first winner candidate
	// (count ≥ k, or the whole-graph round) it reaches with all earlier
	// rounds decided short is exactly the sequential stopping round, and
	// everything still running past it is cancelled.
	specCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := make([]*specRound, len(plan))
	ready := make([]bool, len(plan))
	done := make(chan int, len(plan))
	var next atomic.Int64
	next.Store(int64(start))
	nw := workers
	if r := len(plan) - start; nw > r {
		nw = r
	}
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(plan) {
					return
				}
				results[i] = evalSpecRound(specCtx, fs, plan[i], n, gamma, flags, k, opts)
				done <- i
			}
		}()
	}
	winnerIdx := -1
	var rerr error
	for f := start; f < len(plan); {
		if !ready[f] {
			ready[<-done] = true
			continue
		}
		r := results[f]
		if r.err != nil {
			rerr = r.err
			break
		}
		if r.cnt >= k || plan[f] == n {
			winnerIdx = f
			break
		}
		f++
	}
	cancel()
	wg.Wait()
	defer func() {
		for i, r := range results {
			if r != nil && r.release != nil && i != winnerIdx {
				r.release()
			}
		}
	}()
	if rerr != nil {
		return nil, rerr
	}
	if winnerIdx < 0 {
		return nil, fmt.Errorf("core: parallel driver found no stopping round over %d rounds", len(plan))
	}
	win := results[winnerIdx]
	for i := start; i <= winnerIdx; i++ {
		st.Rounds++
		st.TotalWork += src.PrefixSize(plan[i])
	}
	st.Communities = win.cnt
	st.FinalPrefix = plan[winnerIdx]
	st.FinalSize = src.PrefixSize(plan[winnerIdx])
	comms := enumerateCommunities(win.g, win.cvs, win.pool, k, opts)
	if win.release != nil {
		win.release()
		win.release = nil
	}
	return &Result{Communities: comms, Stats: st}, nil
}

// specRound is the outcome of one speculatively evaluated round. Loser
// rounds (count short of k on a partial prefix) carry only their count;
// winner candidates keep the peeled CVS and materialized graph alive —
// release non-nil — until the coordinator either enumerates them or rules
// them out.
type specRound struct {
	cnt     int
	cvs     *CVS
	g       *graph.Graph
	pool    *Pool
	release func()
	err     error
}

// evalSpecRound runs one γ-round on a forked source: materialize the
// prefix, peel the γ-core, count communities. It mirrors one iteration of
// TopKOver's loop, with pooled engines and CVS scratch checked out per
// round and returned before the result is handed back.
func evalSpecRound(ctx context.Context, fs ForkableSource, p, n int, gamma int32, flags RunFlags, k int, opts Options) *specRound {
	if err := ctx.Err(); err != nil {
		return &specRound{err: err}
	}
	src, release := fs.Fork(ctx)
	out := &specRound{}
	g, err := src.Materialize(p)
	if err != nil {
		release()
		out.err = err
		return out
	}
	if g.NumVertices() < p {
		release()
		out.err = fmt.Errorf("core: source materialized %d vertices, prefix needs %d", g.NumVertices(), p)
		return out
	}
	var pool *Pool
	if ps, ok := src.(PooledSource); ok {
		pool = ps.SourcePool(g)
	}
	var eng *Engine
	var scratch *CVS
	if pool != nil {
		eng = pool.Get(gamma)
		scratch = pool.buffers.Get().(*CVS)
	} else {
		eng = NewEngine(g, gamma)
	}
	eng.SetContext(ctx)
	cvs, err := eng.RunInto(scratch, p, 0, flags)
	if err != nil {
		out.err = err
	} else {
		out.cnt = countOf(cvs, opts.NonContainment)
		if out.cnt >= k || p == n {
			// Winner candidate: keep the peeled state. The CVS is compacted
			// (or simply kept, when round-private) exactly as the sequential
			// driver would before enumeration.
			if scratch != nil {
				if opts.NonContainment {
					out.cvs = cvs.CompactTail(-1)
				} else {
					out.cvs = cvs.CompactTail(k)
				}
			} else {
				out.cvs = cvs
			}
			out.g = g
			out.pool = pool
		}
	}
	if pool != nil {
		pool.Put(eng)
		pool.buffers.Put(scratch)
	}
	if out.g == nil {
		release()
	} else {
		out.release = release
	}
	return out
}
