package core
