package core

import (
	"testing"
	"testing/quick"

	"influcomm/internal/gen"
	"influcomm/internal/graph"
)

// quickGraph derives a small random graph from quick-check inputs.
func quickGraph(seed uint64, nRaw uint8, degRaw uint8) *graph.Graph {
	n := int(nRaw%60) + 10
	avg := 1 + float64(degRaw%6)
	return gen.Random(n, avg, seed|1)
}

// TestCountMonotonicityProperty checks Lemma 3.1: the number of influential
// γ-communities in G≥τ is non-decreasing as the prefix grows.
func TestCountMonotonicityProperty(t *testing.T) {
	f := func(seed uint64, nRaw, degRaw, gammaRaw uint8) bool {
		g := quickGraph(seed, nRaw, degRaw)
		gamma := int32(gammaRaw%4) + 1
		eng := NewEngine(g, gamma)
		prev := 0
		for p := 0; p <= g.NumVertices(); p++ {
			cnt := eng.Run(p, 0, 0).Count()
			if cnt < prev {
				return false
			}
			prev = cnt
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestKeynodeBijectionProperty checks Lemma 3.4: keynodes are in bijection
// with the communities of the definitional reference.
func TestKeynodeBijectionProperty(t *testing.T) {
	f := func(seed uint64, nRaw, degRaw, gammaRaw uint8) bool {
		g := quickGraph(seed, nRaw, degRaw)
		gamma := int32(gammaRaw%4) + 1
		naive := NaiveCommunities(g, gamma)
		cvs := NewEngine(g, gamma).Run(g.NumVertices(), 0, 0)
		if cvs.Count() != len(naive) {
			return false
		}
		// keys ascend in weight = descend in rank; naive descends in
		// influence = ascends in rank.
		for i, nc := range naive {
			if cvs.Keys[len(cvs.Keys)-1-i] != nc.Keynode {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestCVSSuffixProperty checks the incremental-construction property of §4:
// keys and cvs of a smaller prefix are a suffix of those of a larger one.
func TestCVSSuffixProperty(t *testing.T) {
	f := func(seed uint64, nRaw, degRaw, gammaRaw uint8, cut uint8) bool {
		g := quickGraph(seed, nRaw, degRaw)
		gamma := int32(gammaRaw%4) + 1
		n := g.NumVertices()
		p1 := int(cut)%n + 1
		small := NewEngine(g, gamma).Run(p1, 0, WantSeq)
		big := NewEngine(g, gamma).Run(n, 0, WantSeq)
		if len(small.Keys) > len(big.Keys) || len(small.Seq) > len(big.Seq) {
			return false
		}
		offK := len(big.Keys) - len(small.Keys)
		for i, k := range small.Keys {
			if big.Keys[offK+i] != k {
				return false
			}
		}
		offS := len(big.Seq) - len(small.Seq)
		for i, v := range small.Seq {
			if big.Seq[offS+i] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestConstructCVSStopProperty checks Algorithm 5: a run with stopBefore p1
// produces exactly the keynodes of the full run that are missing from the
// prefix-p1 run.
func TestConstructCVSStopProperty(t *testing.T) {
	f := func(seed uint64, nRaw, degRaw, gammaRaw uint8, cut uint8) bool {
		g := quickGraph(seed, nRaw, degRaw)
		gamma := int32(gammaRaw%4) + 1
		n := g.NumVertices()
		p1 := int(cut)%n + 1
		small := NewEngine(g, gamma).Run(p1, 0, 0)
		full := NewEngine(g, gamma).Run(n, 0, 0)
		inc := NewEngine(g, gamma).Run(n, p1, 0)
		if len(inc.Keys)+len(small.Keys) != len(full.Keys) {
			return false
		}
		for i, k := range inc.Keys {
			if full.Keys[i] != k {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestInstanceBoundProperty checks Lemma 3.8: the final subgraph LocalSearch
// accesses is smaller than 2δ times the optimal subgraph G≥τ*.
func TestInstanceBoundProperty(t *testing.T) {
	f := func(seed uint64, nRaw, degRaw uint8, kRaw uint8) bool {
		g := quickGraph(seed, nRaw, degRaw)
		gamma := int32(2)
		k := int(kRaw%5) + 1
		total := CountIC(g, g.NumVertices(), gamma)
		if total < k {
			return true // τ* undefined; LocalSearch legitimately scans all.
		}
		// Optimal prefix: smallest p with at least k communities.
		eng := NewEngine(g, gamma)
		pStar := 0
		for p := 1; p <= g.NumVertices(); p++ {
			if eng.Run(p, 0, 0).Count() >= k {
				pStar = p
				break
			}
		}
		res, err := TopK(g, k, gamma, Options{})
		if err != nil {
			return false
		}
		delta := DefaultDelta
		bound := int64(2*delta*float64(g.PrefixSize(pStar))) + 2
		return res.Stats.FinalSize <= bound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestForestInvariantsProperty checks the EnumIC output structure: group
// segments partition each community, children have strictly larger
// influence, sizes are consistent, and communities are nested or disjoint.
func TestForestInvariantsProperty(t *testing.T) {
	f := func(seed uint64, nRaw, degRaw, gammaRaw uint8) bool {
		g := quickGraph(seed, nRaw, degRaw)
		gamma := int32(gammaRaw%4) + 1
		cvs := NewEngine(g, gamma).Run(g.NumVertices(), 0, WantSeq)
		comms := EnumIC(g, cvs, -1)
		seenGroup := map[int32]bool{}
		for _, c := range comms {
			for _, ch := range c.Children() {
				if ch.Influence() <= c.Influence() {
					return false
				}
			}
			total := len(c.Group())
			for _, ch := range c.Children() {
				total += ch.Size()
			}
			if total != c.Size() {
				return false
			}
			if len(c.Vertices()) != c.Size() {
				return false
			}
			for _, v := range c.Group() {
				if seenGroup[v] {
					return false // groups must partition the vertex set
				}
				seenGroup[v] = true
			}
		}
		// Pairwise: nested or disjoint.
		sets := make([]map[int32]bool, len(comms))
		for i, c := range comms {
			sets[i] = map[int32]bool{}
			for _, v := range c.Vertices() {
				sets[i][v] = true
			}
		}
		for i := range comms {
			for j := i + 1; j < len(comms); j++ {
				inter, small := 0, len(sets[j])
				if len(sets[i]) < small {
					small = len(sets[i])
				}
				for v := range sets[i] {
					if sets[j][v] {
						inter++
					}
				}
				if inter != 0 && inter != small {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// TestCommunityCohesionProperty checks Definition 2.2 directly on every
// enumerated community: connected and minimum degree >= γ.
func TestCommunityCohesionProperty(t *testing.T) {
	f := func(seed uint64, nRaw, degRaw, gammaRaw uint8) bool {
		g := quickGraph(seed, nRaw, degRaw)
		gamma := int32(gammaRaw%4) + 1
		res, err := TopK(g, 1<<30, gamma, Options{})
		if err != nil {
			return false
		}
		for _, c := range res.Communities {
			if c.MinDegree(g) < gamma {
				return false
			}
			if !connected(g, c.Vertices()) {
				return false
			}
			// Influence is the minimum member weight.
			min := c.Influence()
			for _, v := range c.Vertices() {
				if g.Weight(v) < min {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func connected(g *graph.Graph, vs []int32) bool {
	if len(vs) == 0 {
		return true
	}
	in := map[int32]bool{}
	for _, v := range vs {
		in[v] = true
	}
	seen := map[int32]bool{vs[0]: true}
	stack := []int32{vs[0]}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range g.Neighbors(v) {
			if in[w] && !seen[w] {
				seen[w] = true
				stack = append(stack, w)
			}
		}
	}
	return len(seen) == len(vs)
}

// TestStatsAccounting checks the Stats fields against manual recomputation.
func TestStatsAccounting(t *testing.T) {
	g := gen.Random(300, 5, 17)
	res, err := TopK(g, 5, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.Rounds < 1 {
		t.Errorf("rounds = %d", st.Rounds)
	}
	if st.FinalSize != g.PrefixSize(st.FinalPrefix) {
		t.Errorf("FinalSize %d != PrefixSize(%d) = %d", st.FinalSize, st.FinalPrefix, g.PrefixSize(st.FinalPrefix))
	}
	if st.TotalWork < st.FinalSize {
		t.Errorf("TotalWork %d < FinalSize %d", st.TotalWork, st.FinalSize)
	}
	// Lemma 3.7: total work is at most (1 + 1/(δ-1)) · final size, plus the
	// initial prefix which may not obey the geometric chain.
	bound := int64(float64(st.FinalSize)*(1+1/(DefaultDelta-1))) + g.PrefixSize(5+3)
	if st.TotalWork > bound {
		t.Errorf("TotalWork %d exceeds geometric-sum bound %d", st.TotalWork, bound)
	}
}
