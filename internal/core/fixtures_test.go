package core

import (
	"sort"
	"testing"

	"influcomm/internal/graph"
)

// figure1 reconstructs the example graph of Figure 1 of the paper:
// vertices v0..v9 with weights 10..19 and, for γ = 3, exactly two
// influential γ-communities — {v0,v1,v5,v6} with influence 10 and
// {v3,v4,v7,v8,v9} with influence 13 — where {v3,v4,v7,v8} is cohesive and
// connected with the same influence but not maximal.
func figure1(t testing.TB) *graph.Graph {
	t.Helper()
	weights := []float64{10, 11, 12, 13, 14, 15, 16, 17, 18, 19}
	edges := [][2]int32{
		// K4 on {v0, v1, v5, v6}.
		{0, 1}, {0, 5}, {0, 6}, {1, 5}, {1, 6}, {5, 6},
		// K4 on {v3, v4, v7, v8}.
		{3, 4}, {3, 7}, {3, 8}, {4, 7}, {4, 8}, {7, 8},
		// v9 attaches to v3, v7, v8.
		{3, 9}, {7, 9}, {8, 9},
		// v2 bridges the two communities with degree 2 (peels at γ = 3).
		{1, 2}, {2, 3},
	}
	g, err := graph.FromEdges(weights, edges)
	if err != nil {
		t.Fatalf("building figure 1 graph: %v", err)
	}
	return g
}

// nestedChain builds a graph whose influential 3-communities form one
// nested chain: a K4 on the four highest-weight vertices, then each further
// vertex attaches to three existing ones, so every prefix [0, i] with
// i >= 3 is itself a community with keynode i.
func nestedChain(t testing.TB, n int) *graph.Graph {
	t.Helper()
	if n < 4 {
		t.Fatalf("nestedChain needs n >= 4, got %d", n)
	}
	weights := make([]float64, n)
	for i := range weights {
		weights[i] = float64(1000 - i) // vertex i has rank i
	}
	edges := [][2]int32{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}
	for i := int32(4); int(i) < n; i++ {
		edges = append(edges, [2]int32{i, i - 1}, [2]int32{i, i - 2}, [2]int32{i, i - 3})
	}
	g, err := graph.FromEdges(weights, edges)
	if err != nil {
		t.Fatalf("building nested chain: %v", err)
	}
	return g
}

// twoCliques builds two disjoint K5s; the higher-weight clique holds
// vertices 0..4, the lower-weight one vertices 5..9.
func twoCliques(t testing.TB) *graph.Graph {
	t.Helper()
	weights := make([]float64, 10)
	for i := range weights {
		weights[i] = float64(100 - i)
	}
	var edges [][2]int32
	for _, base := range []int32{0, 5} {
		for i := int32(0); i < 5; i++ {
			for j := i + 1; j < 5; j++ {
				edges = append(edges, [2]int32{base + i, base + j})
			}
		}
	}
	g, err := graph.FromEdges(weights, edges)
	if err != nil {
		t.Fatalf("building two cliques: %v", err)
	}
	return g
}

// origSet maps a community's vertex ranks back to original IDs for
// comparison against paper-stated vertex names.
func origSet(g *graph.Graph, ranks []int32) []int32 {
	out := make([]int32, 0, len(ranks))
	for _, r := range ranks {
		out = append(out, g.OrigID(r))
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func equalInt32(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestFigure1Communities(t *testing.T) {
	g := figure1(t)
	all := NaiveCommunities(g, 3)
	if len(all) != 2 {
		t.Fatalf("figure 1 with γ=3: got %d communities, want 2", len(all))
	}
	// Decreasing influence order: influence 13 first, then 10.
	if all[0].Influence != 13 || all[1].Influence != 10 {
		t.Fatalf("influences = %v, %v; want 13, 10", all[0].Influence, all[1].Influence)
	}
	if got, want := origSet(g, all[0].Vertices), []int32{3, 4, 7, 8, 9}; !equalInt32(got, want) {
		t.Errorf("top-1 community = %v, want %v", got, want)
	}
	if got, want := origSet(g, all[1].Vertices), []int32{0, 1, 5, 6}; !equalInt32(got, want) {
		t.Errorf("top-2 community = %v, want %v", got, want)
	}
}

func TestFigure1LocalSearch(t *testing.T) {
	g := figure1(t)
	res, err := TopK(g, 2, 3, Options{})
	if err != nil {
		t.Fatalf("TopK: %v", err)
	}
	if len(res.Communities) != 2 {
		t.Fatalf("got %d communities, want 2", len(res.Communities))
	}
	if got, want := origSet(g, res.Communities[0].Vertices()), []int32{3, 4, 7, 8, 9}; !equalInt32(got, want) {
		t.Errorf("top-1 = %v, want %v", got, want)
	}
	if got, want := origSet(g, res.Communities[1].Vertices()), []int32{0, 1, 5, 6}; !equalInt32(got, want) {
		t.Errorf("top-2 = %v, want %v", got, want)
	}
	if res.Communities[0].Influence() != 13 {
		t.Errorf("top-1 influence = %v, want 13", res.Communities[0].Influence())
	}
}

func TestFigure1CountIC(t *testing.T) {
	g := figure1(t)
	n := g.NumVertices()
	if got := CountIC(g, n, 3); got != 2 {
		t.Errorf("CountIC(whole graph, γ=3) = %d, want 2", got)
	}
	// γ = 4 admits no community: neither K4 has minimum degree 4 and the
	// five-vertex community has minimum degree 3.
	if got := CountIC(g, n, 4); got != 0 {
		t.Errorf("CountIC(whole graph, γ=4) = %d, want 0", got)
	}
	// γ = 1: every connected prefix component with an edge counts.
	if got := CountIC(g, n, 1); got == 0 {
		t.Errorf("CountIC(whole graph, γ=1) = 0, want > 0")
	}
}

func TestNestedChainStructure(t *testing.T) {
	const n = 12
	g := nestedChain(t, n)
	res, err := TopK(g, n, 3, Options{})
	if err != nil {
		t.Fatalf("TopK: %v", err)
	}
	// Keynodes i = 3..n-1, communities are the prefixes [0, i].
	if len(res.Communities) != n-3 {
		t.Fatalf("got %d communities, want %d", len(res.Communities), n-3)
	}
	// Decreasing influence order means keynode ranks ascend: 3, 4, ..., n-1.
	for idx, c := range res.Communities {
		if want := int32(3 + idx); c.Keynode() != want {
			t.Errorf("community %d keynode = %d, want %d", idx, c.Keynode(), want)
		}
		if want := 4 + idx; c.Size() != want {
			t.Errorf("community %d size = %d, want %d", idx, c.Size(), want)
		}
		vs := c.Vertices()
		for i, v := range vs {
			if int(v) != i {
				t.Errorf("community %d vertices = %v, want prefix 0..%d", idx, vs, 3+idx)
				break
			}
		}
	}
	// The containment forest must be one chain: each community's sole child
	// is the next-higher-influence community.
	for idx := 1; idx < len(res.Communities); idx++ {
		outer := res.Communities[idx]
		if len(outer.Children()) != 1 || outer.Children()[0] != res.Communities[idx-1] {
			t.Errorf("community %d should have exactly the previous community as child", idx)
		}
		if len(outer.Group()) != 1 {
			t.Errorf("community %d group = %v, want singleton", idx, outer.Group())
		}
	}
}

func TestTwoCliquesDisjoint(t *testing.T) {
	g := twoCliques(t)
	res, err := TopK(g, 10, 4, Options{})
	if err != nil {
		t.Fatalf("TopK: %v", err)
	}
	if len(res.Communities) != 2 {
		t.Fatalf("got %d communities, want 2", len(res.Communities))
	}
	top := res.Communities[0]
	if got, want := origSet(g, top.Vertices()), []int32{0, 1, 2, 3, 4}; !equalInt32(got, want) {
		t.Errorf("top community = %v, want %v", got, want)
	}
	second := res.Communities[1]
	if got, want := origSet(g, second.Vertices()), []int32{5, 6, 7, 8, 9}; !equalInt32(got, want) {
		t.Errorf("second community = %v, want %v", got, want)
	}
	if len(top.Children()) != 0 || len(second.Children()) != 0 {
		t.Errorf("disjoint cliques must have no nested children")
	}
}

func TestTopKFewerThanK(t *testing.T) {
	g := figure1(t)
	res, err := TopK(g, 50, 3, Options{})
	if err != nil {
		t.Fatalf("TopK: %v", err)
	}
	if len(res.Communities) != 2 {
		t.Errorf("asking for 50 of 2 communities: got %d", len(res.Communities))
	}
}

func TestTopKNoCommunities(t *testing.T) {
	g := figure1(t)
	res, err := TopK(g, 3, 5, Options{})
	if err != nil {
		t.Fatalf("TopK: %v", err)
	}
	if len(res.Communities) != 0 {
		t.Errorf("γ=5 should yield no communities, got %d", len(res.Communities))
	}
}

func TestQueryValidation(t *testing.T) {
	g := figure1(t)
	if _, err := TopK(nil, 1, 1, Options{}); err == nil {
		t.Error("nil graph: want error")
	}
	if _, err := TopK(g, 0, 1, Options{}); err == nil {
		t.Error("k=0: want error")
	}
	if _, err := TopK(g, 1, 0, Options{}); err == nil {
		t.Error("gamma=0: want error")
	}
	if _, err := TopK(g, 1, 3, Options{Delta: 0.5}); err == nil {
		t.Error("delta<=1: want error")
	}
	if _, err := TopK(g, 1, 3, Options{ArithmeticGrowth: -1}); err == nil {
		t.Error("negative arithmetic growth: want error")
	}
}
