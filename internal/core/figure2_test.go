package core

import (
	"testing"

	"influcomm/internal/graph"
)

// figure2 realizes the behavior of the paper's Figure 2 walkthrough: a
// 16-vertex graph where, for γ = 3,
//
//   - the high-weight subgraph G≥τ₁ holds exactly one influential
//     γ-community, the K4 {v3, v4, v8, v9};
//   - growing to roughly twice the size (G≥τ₂) exposes three communities:
//     {v3,v4,v8,v9}, {v0,v1,v5,v6} and {v3,v4,v8,v9,v10};
//   - a top-2 query therefore terminates after the second round without
//     ever touching the low-weight remainder of the graph.
func figure2(t testing.TB) *graph.Graph {
	t.Helper()
	weights := map[int32]float64{
		0: 12, 1: 15, 2: 4, 3: 14, 4: 13, 5: 8, 6: 7, 7: 3,
		8: 11, 9: 10, 10: 6, 11: 2, 12: 1.5, 13: 9, 14: 9.5, 15: 1,
	}
	var b graph.Builder
	for id := int32(0); id < 16; id++ {
		b.AddVertex(id, weights[id])
	}
	for _, e := range [][2]int32{
		// K4 {v3, v4, v8, v9}: influence 10 community.
		{3, 4}, {3, 8}, {3, 9}, {4, 8}, {4, 9}, {8, 9},
		// v10 joins it: influence 6 community.
		{10, 4}, {10, 8}, {10, 9},
		// K4 {v0, v1, v5, v6}: influence 7 community.
		{0, 1}, {0, 5}, {0, 6}, {1, 5}, {1, 6}, {5, 6},
		// Low-degree scaffolding that always peels at γ = 3.
		{13, 14}, {13, 9}, {14, 3},
		{2, 1}, {2, 3},
		{7, 5}, {7, 10},
		{11, 12}, {12, 15},
	} {
		b.AddEdge(e[0], e[1])
	}
	g, err := b.Build()
	if err != nil {
		t.Fatalf("building figure 2 graph: %v", err)
	}
	return g
}

func TestFigure2CommunityInventory(t *testing.T) {
	g := figure2(t)
	all := NaiveCommunities(g, 3)
	if len(all) != 3 {
		for _, c := range all {
			t.Logf("community: keynode %d influence %v vertices %v", c.Keynode, c.Influence, origSet(g, c.Vertices))
		}
		t.Fatalf("figure 2 with γ=3: got %d communities, want 3", len(all))
	}
	wantInfluences := []float64{10, 7, 6}
	wantSets := [][]int32{
		{3, 4, 8, 9},
		{0, 1, 5, 6},
		{3, 4, 8, 9, 10},
	}
	for i := range all {
		if all[i].Influence != wantInfluences[i] {
			t.Errorf("community %d influence = %v, want %v", i, all[i].Influence, wantInfluences[i])
		}
		if got := origSet(g, all[i].Vertices); !equalInt32(got, wantSets[i]) {
			t.Errorf("community %d = %v, want %v", i, got, wantSets[i])
		}
	}
}

func TestFigure2HighPrefixHoldsOneCommunity(t *testing.T) {
	g := figure2(t)
	// The prefix covering weights >= 9 contains only the K4 community.
	p := g.RankOfWeight(9 - 1e-9) // all vertices with weight >= 9
	if got := CountIC(g, p, 3); got != 1 {
		t.Fatalf("CountIC(G≥9) = %d, want 1", got)
	}
	// The whole graph holds all three.
	if got := CountIC(g, g.NumVertices(), 3); got != 3 {
		t.Fatalf("CountIC(G) = %d, want 3", got)
	}
}

func TestFigure2Top2TerminatesEarly(t *testing.T) {
	g := figure2(t)
	res, err := TopK(g, 2, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Communities) != 2 {
		t.Fatalf("got %d communities, want 2", len(res.Communities))
	}
	if got := origSet(g, res.Communities[0].Vertices()); !equalInt32(got, []int32{3, 4, 8, 9}) {
		t.Errorf("top-1 = %v", got)
	}
	if got := origSet(g, res.Communities[1].Vertices()); !equalInt32(got, []int32{0, 1, 5, 6}) {
		t.Errorf("top-2 = %v", got)
	}
	if res.Stats.FinalPrefix >= g.NumVertices() {
		t.Errorf("top-2 query scanned all %d vertices; local search should stop early", g.NumVertices())
	}
}

func TestFigure2NonContainment(t *testing.T) {
	g := figure2(t)
	res, err := TopK(g, 10, 3, Options{NonContainment: true})
	if err != nil {
		t.Fatal(err)
	}
	// {v3,v4,v8,v9,v10} contains {v3,v4,v8,v9}, so only the two K4s are
	// non-containment communities.
	if len(res.Communities) != 2 {
		t.Fatalf("got %d NC communities, want 2", len(res.Communities))
	}
	if got := origSet(g, res.Communities[0].Vertices()); !equalInt32(got, []int32{3, 4, 8, 9}) {
		t.Errorf("NC top-1 = %v", got)
	}
	if got := origSet(g, res.Communities[1].Vertices()); !equalInt32(got, []int32{0, 1, 5, 6}) {
		t.Errorf("NC top-2 = %v", got)
	}
}
