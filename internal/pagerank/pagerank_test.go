package pagerank

import (
	"math"
	"testing"

	"influcomm/internal/gen"
	"influcomm/internal/graph"
)

func TestScoresSumToOne(t *testing.T) {
	g := gen.Random(200, 5, 7)
	scores := Scores(g, Options{})
	var sum float64
	for _, s := range scores {
		if s <= 0 {
			t.Fatalf("non-positive score %v", s)
		}
		sum += s
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("scores sum to %v, want 1", sum)
	}
}

func TestStarGraphRanking(t *testing.T) {
	// Star: hub 0 connected to 5 leaves; the hub must get the top score and
	// all leaves equal scores.
	weights := []float64{6, 5, 4, 3, 2, 1}
	edges := [][2]int32{{0, 1}, {0, 2}, {0, 3}, {0, 4}, {0, 5}}
	g := graph.MustFromEdges(weights, edges)
	scores := Scores(g, Options{})
	hub := scores[0]
	for i := 1; i < 6; i++ {
		if scores[i] >= hub {
			t.Errorf("leaf %d score %v >= hub %v", i, scores[i], hub)
		}
		if math.Abs(scores[i]-scores[1]) > 1e-12 {
			t.Errorf("leaf scores differ: %v vs %v", scores[i], scores[1])
		}
	}
}

func TestDanglingVertices(t *testing.T) {
	// Two isolated vertices and one edge pair: mass must still sum to 1.
	weights := []float64{4, 3, 2, 1}
	g := graph.MustFromEdges(weights, [][2]int32{{0, 1}})
	scores := Scores(g, Options{})
	var sum float64
	for _, s := range scores {
		sum += s
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("dangling mass lost: sum %v", sum)
	}
}

func TestReweightPreservesStructure(t *testing.T) {
	g := gen.Random(80, 4, 3)
	rw, err := Reweight(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rw.NumVertices() != g.NumVertices() || rw.NumEdges() != g.NumEdges() {
		t.Fatalf("shape changed: (%d,%d) -> (%d,%d)",
			g.NumVertices(), g.NumEdges(), rw.NumVertices(), rw.NumEdges())
	}
	if err := rw.Validate(); err != nil {
		t.Fatalf("reweighted graph invalid: %v", err)
	}
	// Weight order must now follow PageRank: non-increasing by rank.
	for u := 1; u < rw.NumVertices(); u++ {
		if rw.Weight(int32(u)) > rw.Weight(int32(u-1)) {
			t.Fatalf("weights not sorted after reweight at rank %d", u)
		}
	}
	// Degree multiset must be preserved under the permutation.
	var dOld, dNew int64
	for u := int32(0); int(u) < g.NumVertices(); u++ {
		dOld += int64(g.Degree(u)) * int64(g.Degree(u))
		dNew += int64(rw.Degree(u)) * int64(rw.Degree(u))
	}
	if dOld != dNew {
		t.Errorf("degree distribution changed: %d vs %d", dOld, dNew)
	}
}

func TestReweightKeepsLabels(t *testing.T) {
	var b graph.Builder
	b.AddLabeledVertex(0, 1, "a")
	b.AddLabeledVertex(1, 2, "b")
	b.AddLabeledVertex(2, 3, "c")
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	rw, err := Reweight(g, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rw.HasLabels() {
		t.Fatal("labels lost in reweight")
	}
	seen := map[string]bool{}
	for u := int32(0); u < 3; u++ {
		seen[rw.Label(u)] = true
	}
	for _, want := range []string{"a", "b", "c"} {
		if !seen[want] {
			t.Errorf("label %q lost", want)
		}
	}
}

func TestConvergenceEarlyStop(t *testing.T) {
	g := gen.Random(50, 4, 1)
	// A very tight iteration budget must still produce a valid distribution.
	scores := Scores(g, Options{Iterations: 2})
	var sum float64
	for _, s := range scores {
		sum += s
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Errorf("2-iteration scores sum to %v", sum)
	}
	// High budgets converge: doubling iterations changes nothing.
	a := Scores(g, Options{Iterations: 200})
	b := Scores(g, Options{Iterations: 400})
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-9 {
			t.Fatalf("not converged at vertex %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestEmptyGraphScores(t *testing.T) {
	var b graph.Builder
	b.AddVertex(0, 1)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	scores := Scores(g, Options{})
	if len(scores) != 1 || math.Abs(scores[0]-1) > 1e-9 {
		t.Errorf("singleton scores = %v", scores)
	}
}
