// Package pagerank computes PageRank scores on undirected graphs.
//
// The paper's experiments (§6) assign each vertex its PageRank value with
// damping factor 0.85 as the influence weight; this package reproduces that
// weighting step. On an undirected graph every edge is treated as a pair of
// directed edges, the standard convention.
package pagerank

import "influcomm/internal/graph"

// Options configures a PageRank computation. The zero value is replaced by
// the defaults the paper uses (damping 0.85) with 40 power iterations and a
// 1e-10 convergence tolerance.
type Options struct {
	Damping    float64
	Iterations int
	Tolerance  float64
}

func (o Options) withDefaults() Options {
	if o.Damping == 0 {
		o.Damping = 0.85
	}
	if o.Iterations == 0 {
		o.Iterations = 40
	}
	if o.Tolerance == 0 {
		o.Tolerance = 1e-10
	}
	return o
}

// Scores runs power iteration and returns a score per vertex (indexed by
// rank in g). Dangling mass is redistributed uniformly.
func Scores(g *graph.Graph, opts Options) []float64 {
	opts = opts.withDefaults()
	n := g.NumVertices()
	if n == 0 {
		return nil
	}
	cur := make([]float64, n)
	next := make([]float64, n)
	inv := 1 / float64(n)
	for i := range cur {
		cur[i] = inv
	}
	d := opts.Damping
	for it := 0; it < opts.Iterations; it++ {
		dangling := 0.0
		for u := 0; u < n; u++ {
			if g.Degree(int32(u)) == 0 {
				dangling += cur[u]
			}
			next[u] = 0
		}
		base := (1-d)*inv + d*dangling*inv
		for u := 0; u < n; u++ {
			du := g.Degree(int32(u))
			if du == 0 {
				continue
			}
			share := d * cur[u] / float64(du)
			for _, v := range g.Neighbors(int32(u)) {
				next[v] += share
			}
		}
		var delta float64
		for u := 0; u < n; u++ {
			next[u] += base
			diff := next[u] - cur[u]
			if diff < 0 {
				diff = -diff
			}
			delta += diff
		}
		cur, next = next, cur
		if delta < opts.Tolerance {
			break
		}
	}
	return cur
}

// Reweight returns a copy of g whose vertex weights are the PageRank scores
// of the original graph, re-ranked accordingly. Labels and original IDs are
// preserved.
func Reweight(g *graph.Graph, opts Options) (*graph.Graph, error) {
	scores := Scores(g, opts)
	var b graph.Builder
	for u := int32(0); int(u) < g.NumVertices(); u++ {
		id := g.OrigID(u)
		if g.HasLabels() {
			b.AddLabeledVertex(id, scores[u], g.Label(u))
		} else {
			b.AddVertex(id, scores[u])
		}
	}
	for u := int32(0); int(u) < g.NumVertices(); u++ {
		for _, v := range g.UpNeighbors(u) {
			b.AddEdge(g.OrigID(v), g.OrigID(u))
		}
	}
	return b.Build()
}
