package query

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestCSESharerComputesOnce(t *testing.T) {
	s := NewSharer(0)
	var builds atomic.Int64
	s.SetExecHook(func(string) { builds.Add(1) })

	const callers = 32
	var wg sync.WaitGroup
	release := make(chan struct{})
	vals := make([]any, callers)
	sharedCount := atomic.Int64{}
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, shared, err := s.Do(context.Background(), 1, "topk(k=3, gamma=2, semantics=core)", func() (any, error) {
				<-release // hold the call open so every goroutine joins it
				return "result", nil
			})
			if err != nil {
				t.Errorf("Do: %v", err)
			}
			if shared {
				sharedCount.Add(1)
			}
			vals[i] = v
		}(i)
	}
	close(release)
	wg.Wait()

	if got := builds.Load(); got != 1 {
		t.Fatalf("computation ran %d times, want exactly 1", got)
	}
	if got := s.Execs(); got != 1 {
		t.Fatalf("Execs = %d, want 1", got)
	}
	if got := s.Hits(); got != callers-1 {
		t.Fatalf("Hits = %d, want %d", got, callers-1)
	}
	if got := sharedCount.Load(); got != callers-1 {
		t.Fatalf("shared reported by %d callers, want %d", got, callers-1)
	}
	for i, v := range vals {
		if v != "result" {
			t.Fatalf("caller %d got %v", i, v)
		}
	}
}

func TestCSESharerMemoHit(t *testing.T) {
	s := NewSharer(4)
	exec := func() (any, error) { return 42, nil }
	if _, shared, _ := s.Do(context.Background(), 7, "n", exec); shared {
		t.Fatal("first call reported shared")
	}
	v, shared, err := s.Do(context.Background(), 7, "n", exec)
	if err != nil || !shared || v != 42 {
		t.Fatalf("memo hit: v=%v shared=%v err=%v", v, shared, err)
	}
	if s.Execs() != 1 || s.Hits() != 1 {
		t.Fatalf("execs=%d hits=%d", s.Execs(), s.Hits())
	}
}

func TestCSESharerNeverCrossesEpochs(t *testing.T) {
	s := NewSharer(0)
	var builds atomic.Int64
	fn := func() (any, error) { return builds.Add(1), nil }
	if _, shared, _ := s.Do(context.Background(), 1, "n", fn); shared {
		t.Fatal("epoch 1 first call shared")
	}
	// Same key, newer epoch: must execute again, never reuse epoch 1's answer.
	v, shared, err := s.Do(context.Background(), 2, "n", fn)
	if err != nil || shared {
		t.Fatalf("epoch 2: shared=%v err=%v", shared, err)
	}
	if v != int64(2) || builds.Load() != 2 {
		t.Fatalf("epoch 2 got %v after %d builds", v, builds.Load())
	}
	// Epoch 1 is still memoized independently.
	v, shared, _ = s.Do(context.Background(), 1, "n", fn)
	if !shared || v != int64(1) {
		t.Fatalf("epoch 1 re-read: v=%v shared=%v", v, shared)
	}
}

func TestCSESharerErrorsNotMemoized(t *testing.T) {
	s := NewSharer(0)
	boom := errors.New("boom")
	calls := 0
	fn := func() (any, error) { calls++; return nil, boom }
	if _, _, err := s.Do(context.Background(), 1, "n", fn); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if _, _, err := s.Do(context.Background(), 1, "n", fn); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if calls != 2 {
		t.Fatalf("failing computation ran %d times, want 2 (errors must not be memoized)", calls)
	}
}

func TestCSESharerFollowerRetriesCancelledLeader(t *testing.T) {
	s := NewSharer(0)
	leaderStarted := make(chan struct{})
	leaderRelease := make(chan struct{})
	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	defer cancelLeader()

	var leaderErr error
	done := make(chan struct{})
	go func() {
		defer close(done)
		_, _, leaderErr = s.Do(leaderCtx, 1, "n", func() (any, error) {
			close(leaderStarted)
			<-leaderRelease
			return nil, leaderCtx.Err() // leader was cancelled mid-flight
		})
	}()
	<-leaderStarted

	followerDone := make(chan struct{})
	var fv any
	var ferr error
	go func() {
		defer close(followerDone)
		fv, _, ferr = s.Do(context.Background(), 1, "n", func() (any, error) {
			return "fresh", nil
		})
	}()

	cancelLeader()
	close(leaderRelease)
	<-done
	<-followerDone

	if !errors.Is(leaderErr, context.Canceled) {
		t.Fatalf("leader err = %v", leaderErr)
	}
	if ferr != nil || fv != "fresh" {
		t.Fatalf("follower after cancelled leader: v=%v err=%v (should have retaken the computation)", fv, ferr)
	}
}

func TestCSESharerMemoBounded(t *testing.T) {
	s := NewSharer(2)
	for i := 0; i < 5; i++ {
		key := fmt.Sprintf("n%d", i)
		if _, _, err := s.Do(context.Background(), 1, key, func() (any, error) { return i, nil }); err != nil {
			t.Fatal(err)
		}
	}
	s.mu.Lock()
	n := len(s.memo)
	s.mu.Unlock()
	if n != 2 {
		t.Fatalf("memo holds %d entries, want 2", n)
	}
	// The two newest keys survive; the oldest were evicted.
	if _, shared, _ := s.Do(context.Background(), 1, "n4", func() (any, error) { return -1, nil }); !shared {
		t.Fatal("newest key evicted")
	}
	if _, shared, _ := s.Do(context.Background(), 1, "n0", func() (any, error) { return -1, nil }); shared {
		t.Fatal("oldest key unexpectedly retained")
	}
}
