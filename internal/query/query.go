// Package query is the composable query DSL of the serving tier: a tiny
// language over the paper's search primitives, a statistics-free greedy
// planner that expands each statement into fixed-shape plan nodes and picks
// an access path (prebuilt index, online LocalSearch, or the truss index)
// per node, and a work-sharing executor primitive (Sharer) that computes
// identical plan nodes exactly once across concurrent queries.
//
// A batch is one or more statements separated by ';'. Each statement is a
// source followed by a pipeline of filters:
//
//	batch     := statement ( ';' statement )* [';']
//	statement := source { '|' filter }
//	source    := ('topk' | 'near') '(' [arg {',' arg}] ')'
//	arg       := 'k' '=' INT
//	           | 'gamma' '=' INT [ '..' INT ]
//	           | 'semantics' '=' SEM { '+' SEM }
//	           | 'seeds' '=' '[' INT {',' INT} ']'
//	SEM       := 'core' | 'noncontainment' | 'truss'
//	filter    := 'label' '(' STRING ')'
//	           | 'influence' '(' CMP NUMBER ')'
//	           | 'size' '(' CMP INT ')'
//	           | 'limit' '(' INT ')'
//	CMP       := '>=' | '>' | '<=' | '<' | '=' | '!='
//
// topk is the paper's fixed-shape top-k query; a gamma range and a '+'
// semantics combinator expand into one plan node per (γ, semantics) pair.
// near is the seed-scoped variant (TopKNearQuery): vertex weights become
// reciprocal hop distances to the seed set before the search runs. Filters
// select from a node's top-k result in pipeline order — they never change
// what the underlying decomposition computes, which is what keeps plan
// nodes shareable across queries that filter differently.
//
// Every construct has one canonical spelling; Query.String (and
// Statement.String, Node key printing) emit it, and Parse of a canonical
// form reproduces it exactly — the parse→print→parse fixpoint FuzzParseQuery
// pins. Canonical node keys are the common-subexpression identity the
// batch executor shares work on.
package query

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Query semantics names; the values match the serving tier's "mode" fields.
const (
	SemCore           = "core"
	SemNonContainment = "noncontainment"
	SemTruss          = "truss"
)

// Defaults applied when a source omits an argument.
const (
	DefaultK     = 10
	DefaultGamma = 5
)

// Query is one parsed batch: a sequence of statements that execute against
// the same dataset snapshot and share identical plan nodes.
type Query struct {
	Statements []*Statement
}

// String renders the canonical form of the batch: statements joined by
// "; ", each in its canonical spelling.
func (q *Query) String() string {
	parts := make([]string, len(q.Statements))
	for i, st := range q.Statements {
		parts[i] = st.String()
	}
	return strings.Join(parts, "; ")
}

// Statement is one source with its filter pipeline.
type Statement struct {
	Source  Source
	Filters []Filter
}

// String renders the canonical form of the statement.
func (s *Statement) String() string {
	var b strings.Builder
	b.WriteString(s.Source.String())
	for _, f := range s.Filters {
		b.WriteString(" | ")
		b.WriteString(f.String())
	}
	return b.String()
}

// Source is the search a statement runs before filtering: a fixed-shape
// top-k (Seeds nil) or a seed-scoped near query (Seeds non-empty), over one
// γ value or range, under one or more semantics.
type Source struct {
	// Seeds, when non-empty, selects the near form: weights are recomputed
	// as reciprocal hop distances to these seed vertices (rank IDs of the
	// served graph). Canonicalized sorted ascending without duplicates.
	Seeds []int32
	// K is the per-node result bound.
	K int
	// GammaLo and GammaHi bound the γ range; equal for a single value.
	GammaLo, GammaHi int32
	// Semantics holds the requested semantics in canonical order (core,
	// noncontainment, truss), without duplicates.
	Semantics []string
}

// Near reports whether the source is the seed-scoped form.
func (s *Source) Near() bool { return len(s.Seeds) > 0 }

// String renders the canonical form of the source.
func (s *Source) String() string {
	var b strings.Builder
	if s.Near() {
		b.WriteString("near(seeds=[")
		for i, sd := range s.Seeds {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(strconv.Itoa(int(sd)))
		}
		b.WriteString("], ")
	} else {
		b.WriteString("topk(")
	}
	fmt.Fprintf(&b, "k=%d, gamma=%d", s.K, s.GammaLo)
	if s.GammaHi != s.GammaLo {
		fmt.Fprintf(&b, "..%d", s.GammaHi)
	}
	b.WriteString(", semantics=")
	b.WriteString(strings.Join(s.Semantics, "+"))
	b.WriteByte(')')
	return b.String()
}

// Filter kinds.
const (
	FilterLabel     = "label"
	FilterInfluence = "influence"
	FilterSize      = "size"
	FilterLimit     = "limit"
)

// Filter is one pipeline stage: a post-selection predicate (or truncation)
// over a plan node's communities. Filters run in pipeline order, so
// "| influence(>=2) | limit(3)" keeps the three best communities above the
// threshold while "| limit(3) | influence(>=2)" thresholds only the first
// three.
type Filter struct {
	// Name is the filter kind: FilterLabel, FilterInfluence, FilterSize,
	// or FilterLimit.
	Name string
	// Op is the comparison operator of influence/size filters: ">=", ">",
	// "<=", "<", "=", or "!=".
	Op string
	// Num is the influence threshold.
	Num float64
	// Int is the size threshold or the limit count.
	Int int
	// Pattern is the label glob ('*' matches any run of characters).
	Pattern string
}

// String renders the canonical form of the filter.
func (f Filter) String() string {
	switch f.Name {
	case FilterLabel:
		return `label("` + f.Pattern + `")`
	case FilterInfluence:
		return "influence(" + f.Op + formatNumber(f.Num) + ")"
	case FilterSize:
		return "size(" + f.Op + strconv.Itoa(f.Int) + ")"
	default: // FilterLimit
		return "limit(" + strconv.Itoa(f.Int) + ")"
	}
}

// Keep reports whether a community with the given influence, size, and
// member labels passes this filter. Limit filters always report true here;
// callers handle truncation (see cluster.ApplyDSLFilters).
func (f Filter) Keep(influence float64, size int, labels []string) bool {
	switch f.Name {
	case FilterLabel:
		for _, l := range labels {
			if globMatch(f.Pattern, l) {
				return true
			}
		}
		// A graph without labels can only pass the match-anything pattern.
		return len(labels) == 0 && f.Pattern == "*"
	case FilterInfluence:
		return cmpFloat(f.Op, influence, f.Num)
	case FilterSize:
		return cmpFloat(f.Op, float64(size), float64(f.Int))
	default:
		return true
	}
}

func cmpFloat(op string, a, b float64) bool {
	switch op {
	case ">=":
		return a >= b
	case ">":
		return a > b
	case "<=":
		return a <= b
	case "<":
		return a < b
	case "=":
		return a == b
	default: // "!="
		return a != b
	}
}

// globMatch matches s against a pattern where '*' matches any (possibly
// empty) run of characters and every other byte matches itself.
func globMatch(pattern, s string) bool {
	segs := strings.Split(pattern, "*")
	if len(segs) == 1 {
		return pattern == s
	}
	if !strings.HasPrefix(s, segs[0]) {
		return false
	}
	s = s[len(segs[0]):]
	for _, seg := range segs[1 : len(segs)-1] {
		i := strings.Index(s, seg)
		if i < 0 {
			return false
		}
		s = s[i+len(seg):]
	}
	return strings.HasSuffix(s, segs[len(segs)-1])
}

// formatNumber renders a float in its canonical (shortest round-trip)
// form, so printing and re-parsing a filter threshold is a fixpoint.
func formatNumber(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// semRank orders semantics canonically: core < noncontainment < truss.
func semRank(s string) int {
	switch s {
	case SemCore:
		return 0
	case SemNonContainment:
		return 1
	default:
		return 2
	}
}

// normalize canonicalizes and validates a parsed source in place: defaults
// applied, seeds sorted and deduplicated, semantics sorted and
// deduplicated, bounds checked.
func (s *Source) normalize() error {
	if s.K == 0 {
		s.K = DefaultK
	}
	if s.GammaLo == 0 {
		s.GammaLo, s.GammaHi = DefaultGamma, DefaultGamma
	}
	if len(s.Semantics) == 0 {
		s.Semantics = []string{SemCore}
	}
	if s.K < 1 {
		return fmt.Errorf("query: k must be >= 1, got %d", s.K)
	}
	if s.GammaLo < 1 {
		return fmt.Errorf("query: gamma must be >= 1, got %d", s.GammaLo)
	}
	if s.GammaHi < s.GammaLo {
		return fmt.Errorf("query: empty gamma range %d..%d", s.GammaLo, s.GammaHi)
	}
	sort.Slice(s.Semantics, func(i, j int) bool { return semRank(s.Semantics[i]) < semRank(s.Semantics[j]) })
	dedupSem := s.Semantics[:0]
	for i, sem := range s.Semantics {
		if i == 0 || sem != s.Semantics[i-1] {
			dedupSem = append(dedupSem, sem)
		}
	}
	s.Semantics = dedupSem
	if s.Near() {
		sort.Slice(s.Seeds, func(i, j int) bool { return s.Seeds[i] < s.Seeds[j] })
		dedup := s.Seeds[:0]
		for i, sd := range s.Seeds {
			if sd < 0 {
				return fmt.Errorf("query: negative seed %d", sd)
			}
			if i == 0 || sd != s.Seeds[i-1] {
				dedup = append(dedup, sd)
			}
		}
		s.Seeds = dedup
		for _, sem := range s.Semantics {
			if sem == SemTruss {
				return fmt.Errorf("query: near supports core and noncontainment semantics, not truss (the truss index is built per dataset, not per reweighting)")
			}
		}
	}
	return nil
}
