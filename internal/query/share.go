package query

import (
	"context"
	"errors"
	"strconv"
	"sync"
	"sync/atomic"
)

// DefaultMemoSize is the memo capacity a Sharer gets when constructed with
// a non-positive one.
const DefaultMemoSize = 256

// Sharer computes identical plan nodes exactly once across concurrent
// queries. It combines singleflight (concurrent requests for one key join
// the in-flight computation) with a small bounded memo (a request arriving
// just after completion reuses the result), both keyed on the node's
// canonical Key *and* the snapshot epoch it executes against — sharing
// never crosses epochs, so an answer computed before an update is never
// served for a plan node that must see the update.
//
// Errors are never memoized; a leader cancelled by its own caller is
// retried by any follower whose context is still live.
type Sharer struct {
	mu    sync.Mutex
	calls map[string]*sharedCall
	memo  map[string]any
	order []string // memo keys, oldest first
	cap   int

	hits  atomic.Int64
	execs atomic.Int64
	// onExec, when set, observes every real execution (the CSE tests'
	// build-count hook).
	onExec atomic.Pointer[func(key string)]
}

type sharedCall struct {
	done chan struct{}
	val  any
	err  error
}

// NewSharer returns a Sharer whose memo keeps at most capacity completed
// results (DefaultMemoSize if capacity is not positive).
func NewSharer(capacity int) *Sharer {
	if capacity <= 0 {
		capacity = DefaultMemoSize
	}
	return &Sharer{
		calls: make(map[string]*sharedCall),
		memo:  make(map[string]any),
		cap:   capacity,
	}
}

// Do returns the result of fn for (epoch, key), computing it at most once
// across all concurrent and recent callers of the same pair. shared
// reports whether the caller reused work (memo hit or joined an in-flight
// computation) rather than executing fn itself.
func (s *Sharer) Do(ctx context.Context, epoch uint64, key string, fn func() (any, error)) (val any, shared bool, err error) {
	full := strconv.FormatUint(epoch, 10) + "|" + key
	for {
		s.mu.Lock()
		if v, ok := s.memo[full]; ok {
			s.mu.Unlock()
			s.hits.Add(1)
			return v, true, nil
		}
		if c, ok := s.calls[full]; ok {
			s.mu.Unlock()
			select {
			case <-c.done:
			case <-ctx.Done():
				return nil, false, ctx.Err()
			}
			if c.err == nil {
				s.hits.Add(1)
				return c.val, true, nil
			}
			// The leader failed. If it was merely cancelled, its failure
			// says nothing about the computation — take over as leader
			// (we know our own context is live). Real errors propagate.
			if errors.Is(c.err, context.Canceled) || errors.Is(c.err, context.DeadlineExceeded) {
				continue
			}
			return nil, false, c.err
		}
		c := &sharedCall{done: make(chan struct{})}
		s.calls[full] = c
		s.mu.Unlock()

		s.execs.Add(1)
		if hook := s.onExec.Load(); hook != nil {
			(*hook)(key)
		}
		c.val, c.err = fn()

		s.mu.Lock()
		delete(s.calls, full)
		if c.err == nil {
			if len(s.memo) >= s.cap {
				oldest := s.order[0]
				s.order = s.order[1:]
				delete(s.memo, oldest)
			}
			s.memo[full] = c.val
			s.order = append(s.order, full)
		}
		s.mu.Unlock()
		close(c.done)
		return c.val, false, c.err
	}
}

// Hits returns how many Do calls reused shared work instead of executing.
func (s *Sharer) Hits() int64 { return s.hits.Load() }

// Execs returns how many times Do actually executed a computation.
func (s *Sharer) Execs() int64 { return s.execs.Load() }

// SetExecHook installs (or, with nil, removes) a function observing every
// real execution's key. It exists for tests that assert exactly how many
// decompositions a batch performed.
func (s *Sharer) SetExecHook(hook func(key string)) {
	if hook == nil {
		s.onExec.Store(nil)
		return
	}
	s.onExec.Store(&hook)
}
