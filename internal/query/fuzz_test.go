package query

import "testing"

// FuzzParseQuery asserts the two parser invariants the serving tier relies
// on: Parse never panics on any input, and for every accepted input the
// canonical print is a fixpoint — Parse(q.String()) succeeds and prints
// the same string, so canonical node keys are stable identities.
func FuzzParseQuery(f *testing.F) {
	seeds := []string{
		"topk()",
		"topk(k=3, gamma=2..4, semantics=core+truss)",
		"near(seeds=[1,2,3], k=5, gamma=3, semantics=noncontainment)",
		`topk(k=5) | label("db*") | influence(>=1.5) | size(<10) | limit(2)`,
		"topk(gamma=2); topk(gamma=3); near(seeds=[0])",
		"topk() | influence(!=1e-3)",
		"topk(k=1,gamma=1..64)",
		"topk( ; near(seeds=[",
		`topk() | label("")`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		q, err := Parse(src)
		if err != nil {
			return
		}
		printed := q.String()
		q2, err := Parse(printed)
		if err != nil {
			t.Fatalf("canonical print %q of accepted input %q does not reparse: %v", printed, src, err)
		}
		if got := q2.String(); got != printed {
			t.Fatalf("print not a fixpoint: %q -> %q -> %q", src, printed, got)
		}
		// Accepted queries must also plan without panicking.
		if nodes, err := PlanQuery(q, nil); err == nil {
			for _, n := range nodes {
				if n.Key == "" || n.K < 1 || n.Gamma < 1 {
					t.Fatalf("malformed node %+v from %q", n, src)
				}
			}
		}
	})
}
