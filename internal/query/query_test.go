package query

import (
	"strings"
	"testing"
)

func TestParseCanonicalPrint(t *testing.T) {
	cases := []struct {
		in   string
		want string
	}{
		{"topk()", "topk(k=10, gamma=5, semantics=core)"},
		{"topk(k=3)", "topk(k=3, gamma=5, semantics=core)"},
		{"topk(gamma=2..4)", "topk(k=10, gamma=2..4, semantics=core)"},
		{"topk(gamma=4..4)", "topk(k=10, gamma=4, semantics=core)"},
		{"topk(semantics=truss+core)", "topk(k=10, gamma=5, semantics=core+truss)"},
		{"topk(semantics=core+core)", "topk(k=10, gamma=5, semantics=core)"},
		{
			"near(seeds=[9,1,1,4],k=2,gamma=3,semantics=noncontainment)",
			"near(seeds=[1,4,9], k=2, gamma=3, semantics=noncontainment)",
		},
		{
			`topk(k=5) | label("db*") | influence(>=1.5) | size(<10) | limit(2)`,
			`topk(k=5, gamma=5, semantics=core) | label("db*") | influence(>=1.5) | size(<10) | limit(2)`,
		},
		{
			" topk( k = 7 , gamma = 2 ) ;\nnear( seeds = [ 0 ] ) ;",
			"topk(k=7, gamma=2, semantics=core); near(seeds=[0], k=10, gamma=5, semantics=core)",
		},
		{"topk() | influence(!=0.25)", "topk(k=10, gamma=5, semantics=core) | influence(!=0.25)"},
		{"topk() | influence(>1e3)", "topk(k=10, gamma=5, semantics=core) | influence(>1000)"},
	}
	for _, tc := range cases {
		q, err := Parse(tc.in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", tc.in, err)
		}
		if got := q.String(); got != tc.want {
			t.Errorf("Parse(%q).String() = %q, want %q", tc.in, got, tc.want)
		}
		// Canonical printing is a fixpoint.
		q2, err := Parse(q.String())
		if err != nil {
			t.Fatalf("reparse of %q: %v", q.String(), err)
		}
		if q2.String() != q.String() {
			t.Errorf("reparse of %q printed %q", q.String(), q2.String())
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"   ",
		"topk",
		"topk(",
		"topk(k=0)",
		"topk(k=-1)",
		"topk(gamma=0)",
		"topk(gamma=5..2)",
		"topk(k=1,k=2)",
		"topk(seeds=[1])",
		"topk(semantics=banana)",
		"topk(bogus=1)",
		"near()",
		"near(seeds=[])",
		"near(seeds=[-1])",
		"near(seeds=[1],semantics=truss)",
		"topk() | bogus(1)",
		"topk() | label(unquoted)",
		`topk() | label("a`,
		`topk() | label("a\"b")`,
		"topk() | influence(5)",
		"topk() | influence(>=)",
		"topk() | size(>1.5)",
		"topk() | limit(-1)",
		"topk() garbage",
		"topk();;",
		strings.Repeat("topk();", MaxStatements+1),
	}
	for _, in := range cases {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) unexpectedly succeeded", in)
		}
	}
}

func TestPlanQueryExpansion(t *testing.T) {
	q, err := Parse("topk(k=3, gamma=2..3, semantics=core+truss); near(seeds=[1,2], gamma=4)")
	if err != nil {
		t.Fatal(err)
	}
	nodes, err := PlanQuery(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := []struct {
		stmt  int
		gamma int32
		mode  string
		path  string
		key   string
	}{
		{0, 2, SemCore, PathLocal, "topk(k=3, gamma=2, semantics=core)"},
		{0, 2, SemTruss, PathTruss, "topk(k=3, gamma=2, semantics=truss)"},
		{0, 3, SemCore, PathLocal, "topk(k=3, gamma=3, semantics=core)"},
		{0, 3, SemTruss, PathTruss, "topk(k=3, gamma=3, semantics=truss)"},
		{1, 4, SemCore, PathLocal, "near(seeds=[1,2], k=10, gamma=4, semantics=core)"},
	}
	if len(nodes) != len(want) {
		t.Fatalf("got %d nodes, want %d: %+v", len(nodes), len(want), nodes)
	}
	for i, w := range want {
		n := nodes[i]
		if n.Stmt != w.stmt || n.Gamma != w.gamma || n.Mode != w.mode || n.Path != w.path || n.Key != w.key {
			t.Errorf("node %d = %+v, want %+v", i, n, w)
		}
	}
	if !nodes[0].FixedShape() || nodes[4].FixedShape() {
		t.Errorf("FixedShape misclassified: %v %v", nodes[0].FixedShape(), nodes[4].FixedShape())
	}
}

func TestPlanQuerySharedKeysAcrossStatements(t *testing.T) {
	// Statements differing only in filters expand to nodes with equal keys.
	q, err := Parse(`topk(k=5, gamma=3) | limit(1); topk(k=5, gamma=3) | influence(>=2)`)
	if err != nil {
		t.Fatal(err)
	}
	nodes, err := PlanQuery(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != 2 || nodes[0].Key != nodes[1].Key {
		t.Fatalf("want two nodes with equal keys, got %+v", nodes)
	}
}

func TestPlanQueryNodeCap(t *testing.T) {
	q, err := Parse("topk(gamma=1..1000)")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := PlanQuery(q, nil); err == nil {
		t.Fatal("plan over MaxPlanNodes unexpectedly succeeded")
	}
}

func TestPlanQueryPickOverride(t *testing.T) {
	q, err := Parse("topk(semantics=core+noncontainment+truss)")
	if err != nil {
		t.Fatal(err)
	}
	pick := func(mode string, near bool) string {
		if mode == SemCore {
			return PathIndex
		}
		if mode == SemTruss {
			return PathTruss
		}
		return PathLocal
	}
	nodes, err := PlanQuery(q, pick)
	if err != nil {
		t.Fatal(err)
	}
	got := []string{nodes[0].Path, nodes[1].Path, nodes[2].Path}
	if got[0] != PathIndex || got[1] != PathLocal || got[2] != PathTruss {
		t.Fatalf("paths = %v", got)
	}
}

func TestFilterKeep(t *testing.T) {
	cases := []struct {
		f         Filter
		influence float64
		size      int
		labels    []string
		want      bool
	}{
		{Filter{Name: FilterInfluence, Op: ">=", Num: 2}, 2, 1, nil, true},
		{Filter{Name: FilterInfluence, Op: ">", Num: 2}, 2, 1, nil, false},
		{Filter{Name: FilterInfluence, Op: "!=", Num: 2}, 3, 1, nil, true},
		{Filter{Name: FilterSize, Op: "<=", Num: 0, Int: 4}, 0, 4, nil, true},
		{Filter{Name: FilterSize, Op: "<", Int: 4}, 0, 4, nil, false},
		{Filter{Name: FilterSize, Op: "=", Int: 4}, 0, 4, nil, true},
		{Filter{Name: FilterLabel, Pattern: "db*"}, 0, 1, []string{"ml", "dbsys"}, true},
		{Filter{Name: FilterLabel, Pattern: "db*"}, 0, 1, []string{"ml"}, false},
		{Filter{Name: FilterLabel, Pattern: "*"}, 0, 1, nil, true},
		{Filter{Name: FilterLabel, Pattern: "db*"}, 0, 1, nil, false},
		{Filter{Name: FilterLabel, Pattern: "a*b*c"}, 0, 1, []string{"aXbYc"}, true},
		{Filter{Name: FilterLabel, Pattern: "a*b*c"}, 0, 1, []string{"aXcYb"}, false},
		{Filter{Name: FilterLimit, Int: 0}, 9, 9, nil, true},
	}
	for i, tc := range cases {
		if got := tc.f.Keep(tc.influence, tc.size, tc.labels); got != tc.want {
			t.Errorf("case %d (%s): Keep = %v, want %v", i, tc.f, got, tc.want)
		}
	}
}
