package query

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Parser limits. They bound work per request, not expressiveness: a batch
// wanting more statements can be split; a plan wanting more nodes is almost
// certainly a runaway γ range.
const (
	// MaxStatements caps statements per batch.
	MaxStatements = 32
	// MaxSeeds caps the seed set of one near source.
	MaxSeeds = 4096
	// MaxFilters caps the filter pipeline of one statement.
	MaxFilters = 16
)

// Parse parses one batch of the query DSL (see the package documentation
// for the grammar) and returns it in canonical form: seeds and semantics
// sorted and deduplicated, defaults filled in. Parsing never panics on any
// input; the returned query always round-trips through String.
func Parse(src string) (*Query, error) {
	p := &parser{s: src}
	q := &Query{}
	for {
		p.ws()
		if p.pos >= len(p.s) {
			break
		}
		if len(q.Statements) >= MaxStatements {
			return nil, fmt.Errorf("query: more than %d statements in one batch", MaxStatements)
		}
		st, err := p.statement()
		if err != nil {
			return nil, err
		}
		q.Statements = append(q.Statements, st)
		p.ws()
		if p.pos >= len(p.s) {
			break
		}
		if !p.eat(";") {
			return nil, p.errf("expected ';' between statements")
		}
	}
	if len(q.Statements) == 0 {
		return nil, fmt.Errorf("query: empty query")
	}
	return q, nil
}

type parser struct {
	s   string
	pos int
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("query: %s at offset %d", fmt.Sprintf(format, args...), p.pos)
}

// ws skips whitespace.
func (p *parser) ws() {
	for p.pos < len(p.s) {
		switch p.s[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

// eat consumes lit if it is next (after whitespace) and reports whether it did.
func (p *parser) eat(lit string) bool {
	p.ws()
	if strings.HasPrefix(p.s[p.pos:], lit) {
		p.pos += len(lit)
		return true
	}
	return false
}

func (p *parser) expect(lit string) error {
	if !p.eat(lit) {
		return p.errf("expected %q", lit)
	}
	return nil
}

// ident scans a lowercase identifier; empty if none is next.
func (p *parser) ident() string {
	p.ws()
	start := p.pos
	for p.pos < len(p.s) {
		c := p.s[p.pos]
		if c < 'a' || c > 'z' {
			break
		}
		p.pos++
	}
	return p.s[start:p.pos]
}

// integer scans a decimal integer with an optional sign.
func (p *parser) integer() (int64, error) {
	p.ws()
	start := p.pos
	if p.pos < len(p.s) && p.s[p.pos] == '-' {
		p.pos++
	}
	digits := p.pos
	for p.pos < len(p.s) && p.s[p.pos] >= '0' && p.s[p.pos] <= '9' {
		p.pos++
	}
	if p.pos == digits {
		return 0, p.errf("expected integer")
	}
	v, err := strconv.ParseInt(p.s[start:p.pos], 10, 64)
	if err != nil {
		return 0, p.errf("integer out of range")
	}
	return v, nil
}

// number scans a decimal float (optional sign, optional fraction, optional
// exponent) — the forms strconv.FormatFloat(_, 'g', -1, 64) emits for every
// finite value.
func (p *parser) number() (float64, error) {
	p.ws()
	start := p.pos
	if p.pos < len(p.s) && p.s[p.pos] == '-' {
		p.pos++
	}
	intDigits := p.digits()
	fracDigits := 0
	if p.pos < len(p.s) && p.s[p.pos] == '.' {
		p.pos++
		fracDigits = p.digits()
	}
	if intDigits+fracDigits == 0 {
		p.pos = start
		return 0, p.errf("expected number")
	}
	if p.pos < len(p.s) && (p.s[p.pos] == 'e' || p.s[p.pos] == 'E') {
		p.pos++
		if p.pos < len(p.s) && (p.s[p.pos] == '+' || p.s[p.pos] == '-') {
			p.pos++
		}
		if p.digits() == 0 {
			return 0, p.errf("expected exponent digits")
		}
	}
	v, err := strconv.ParseFloat(p.s[start:p.pos], 64)
	if err != nil || math.IsInf(v, 0) || math.IsNaN(v) {
		return 0, p.errf("number out of range")
	}
	return v, nil
}

func (p *parser) digits() int {
	n := 0
	for p.pos < len(p.s) && p.s[p.pos] >= '0' && p.s[p.pos] <= '9' {
		p.pos++
		n++
	}
	return n
}

// compareOp scans a comparison operator (longest match first).
func (p *parser) compareOp() (string, error) {
	p.ws()
	for _, op := range []string{">=", "<=", "!=", ">", "<", "="} {
		if strings.HasPrefix(p.s[p.pos:], op) {
			p.pos += len(op)
			return op, nil
		}
	}
	return "", p.errf("expected comparison operator (>=, >, <=, <, =, !=)")
}

func (p *parser) statement() (*Statement, error) {
	st := &Statement{}
	if err := p.source(&st.Source); err != nil {
		return nil, err
	}
	for p.eat("|") {
		if len(st.Filters) >= MaxFilters {
			return nil, p.errf("more than %d filters in one statement", MaxFilters)
		}
		f, err := p.filter()
		if err != nil {
			return nil, err
		}
		st.Filters = append(st.Filters, f)
	}
	return st, nil
}

func (p *parser) source(s *Source) error {
	name := p.ident()
	switch name {
	case "topk", "near":
	default:
		return p.errf("expected source 'topk' or 'near', got %q", name)
	}
	if err := p.expect("("); err != nil {
		return err
	}
	seen := map[string]bool{}
	if !p.eat(")") {
		for {
			if err := p.sourceArg(s, seen); err != nil {
				return err
			}
			if p.eat(")") {
				break
			}
			if err := p.expect(","); err != nil {
				return err
			}
		}
	}
	if name == "near" && !seen["seeds"] {
		return p.errf("near requires seeds=[...]")
	}
	if name == "topk" && seen["seeds"] {
		return p.errf("seeds is only valid in near(...)")
	}
	return s.normalize()
}

func (p *parser) sourceArg(s *Source, seen map[string]bool) error {
	key := p.ident()
	if key == "" {
		return p.errf("expected argument name")
	}
	if seen[key] {
		return p.errf("duplicate argument %q", key)
	}
	seen[key] = true
	if err := p.expect("="); err != nil {
		return err
	}
	switch key {
	case "k":
		v, err := p.integer()
		if err != nil {
			return err
		}
		if v < 1 || v > math.MaxInt32 {
			return p.errf("k must be in [1, %d]", math.MaxInt32)
		}
		s.K = int(v)
	case "gamma":
		lo, err := p.integer()
		if err != nil {
			return err
		}
		if lo < 1 || lo > math.MaxInt32 {
			return p.errf("gamma must be in [1, %d]", math.MaxInt32)
		}
		s.GammaLo, s.GammaHi = int32(lo), int32(lo)
		if p.eat("..") {
			hi, err := p.integer()
			if err != nil {
				return err
			}
			if hi < 1 || hi > math.MaxInt32 {
				return p.errf("gamma must be in [1, %d]", math.MaxInt32)
			}
			s.GammaHi = int32(hi)
		}
	case "semantics":
		for {
			sem := p.ident()
			switch sem {
			case SemCore, SemNonContainment, SemTruss:
			default:
				return p.errf("unknown semantics %q (want core, noncontainment, or truss)", sem)
			}
			s.Semantics = append(s.Semantics, sem)
			if !p.eat("+") {
				break
			}
		}
	case "seeds":
		if err := p.expect("["); err != nil {
			return err
		}
		for {
			v, err := p.integer()
			if err != nil {
				return err
			}
			if v < 0 || v > math.MaxInt32 {
				return p.errf("seed must be in [0, %d]", math.MaxInt32)
			}
			if len(s.Seeds) >= MaxSeeds {
				return p.errf("more than %d seeds", MaxSeeds)
			}
			s.Seeds = append(s.Seeds, int32(v))
			if p.eat("]") {
				break
			}
			if err := p.expect(","); err != nil {
				return err
			}
		}
		if len(s.Seeds) == 0 {
			return p.errf("seeds must not be empty")
		}
	default:
		return p.errf("unknown argument %q (want k, gamma, semantics, or seeds)", key)
	}
	return nil
}

func (p *parser) filter() (Filter, error) {
	name := p.ident()
	var f Filter
	switch name {
	case FilterLabel, FilterInfluence, FilterSize, FilterLimit:
		f.Name = name
	default:
		return f, p.errf("unknown filter %q (want label, influence, size, or limit)", name)
	}
	if err := p.expect("("); err != nil {
		return f, err
	}
	switch name {
	case FilterLabel:
		pat, err := p.quoted()
		if err != nil {
			return f, err
		}
		f.Pattern = pat
	case FilterInfluence:
		op, err := p.compareOp()
		if err != nil {
			return f, err
		}
		v, err := p.number()
		if err != nil {
			return f, err
		}
		f.Op, f.Num = op, v
	case FilterSize:
		op, err := p.compareOp()
		if err != nil {
			return f, err
		}
		v, err := p.integer()
		if err != nil {
			return f, err
		}
		if v < 0 || v > math.MaxInt32 {
			return f, p.errf("size threshold must be in [0, %d]", math.MaxInt32)
		}
		f.Op, f.Int = op, int(v)
	case FilterLimit:
		v, err := p.integer()
		if err != nil {
			return f, err
		}
		if v < 0 || v > math.MaxInt32 {
			return f, p.errf("limit must be in [0, %d]", math.MaxInt32)
		}
		f.Int = int(v)
	}
	if err := p.expect(")"); err != nil {
		return f, err
	}
	return f, nil
}

// quoted scans a double-quoted string. To keep canonical printing a
// fixpoint without an escape syntax, quotes, backslashes, and control
// characters are rejected inside the literal.
func (p *parser) quoted() (string, error) {
	if err := p.expect(`"`); err != nil {
		return "", err
	}
	start := p.pos
	for p.pos < len(p.s) {
		c := p.s[p.pos]
		if c == '"' {
			lit := p.s[start:p.pos]
			p.pos++
			return lit, nil
		}
		if c == '\\' || c < 0x20 || c == 0x7f {
			return "", p.errf("unsupported character in string literal")
		}
		p.pos++
	}
	return "", p.errf("unterminated string literal")
}
