package query

import "fmt"

// Access paths a plan node can be assigned. They are the planner's greedy,
// statistics-free choice; executors treat them as advisory and stay free to
// fall back (e.g. index → LocalSearch while a rebuild is in flight).
const (
	// PathIndex serves the node from the dataset's prebuilt influence index.
	PathIndex = "index"
	// PathLocal runs the paper's online LocalSearch.
	PathLocal = "localsearch"
	// PathTruss serves the node from the γ-truss index.
	PathTruss = "truss"
	// PathScatter scatter-gathers the node across cluster shards.
	PathScatter = "scatter"
)

// MaxPlanNodes caps the nodes one batch may expand to — a wide γ range
// times a semantics combinator multiplies, and the cap keeps one request
// from monopolizing a server.
const MaxPlanNodes = 64

// Node is one fixed-shape unit of work: a single (k, γ, semantics) search,
// optionally seed-scoped. Nodes are what executors run, cache, and share:
// two nodes with equal Key over the same snapshot epoch are the same
// computation regardless of which statements or queries produced them.
type Node struct {
	// Stmt is the index of the originating statement in the query.
	Stmt int
	// K is the result bound.
	K int
	// Gamma is the minimum-degree (or truss) threshold.
	Gamma int32
	// Mode is the node's semantics: SemCore, SemNonContainment, or SemTruss.
	Mode string
	// Seeds is the near scope (nil for fixed-shape nodes). Aliases the
	// source's canonicalized slice; treat as read-only.
	Seeds []int32
	// Path is the access path the planner picked.
	Path string
	// Key is the canonical identity of the computation — the canonical
	// print of a single-(γ, semantics) source. Filters and statement
	// position do not contribute, so overlapping queries that differ only
	// in their pipelines share nodes.
	Key string
}

// FixedShape reports whether the node is exactly one of the serving tier's
// classic (k, γ, semantics) queries — the shapes /v1/topk answers and the
// byte-identity property tests compare against.
func (n *Node) FixedShape() bool { return n.Seeds == nil }

// PickPath decides a node's access path. Executors pass one reflecting the
// dataset's capabilities; nil means no prebuilt indexes (always LocalSearch
// or the truss fallback).
type PickPath func(mode string, near bool) string

// PlanQuery expands a parsed batch into its plan nodes: one node per
// (statement, γ, semantics) combination, in statement order, with access
// paths chosen by pick. The expansion is bounded by MaxPlanNodes.
func PlanQuery(q *Query, pick PickPath) ([]Node, error) {
	if pick == nil {
		pick = func(mode string, near bool) string {
			if mode == SemTruss {
				return PathTruss
			}
			return PathLocal
		}
	}
	var nodes []Node
	total := 0
	for si, st := range q.Statements {
		src := &st.Source
		span := int(src.GammaHi-src.GammaLo) + 1
		total += span * len(src.Semantics)
		if total > MaxPlanNodes {
			return nil, fmt.Errorf("query: plan expands to more than %d nodes (narrow the gamma range or split the batch)", MaxPlanNodes)
		}
		for g := src.GammaLo; g <= src.GammaHi; g++ {
			for _, sem := range src.Semantics {
				n := Node{
					Stmt:  si,
					K:     src.K,
					Gamma: g,
					Mode:  sem,
					Seeds: src.Seeds,
					Path:  pick(sem, src.Near()),
				}
				n.Key = nodeKey(src, n.Gamma, n.Mode)
				nodes = append(nodes, n)
			}
		}
	}
	return nodes, nil
}

// nodeKey renders the canonical single-(γ, semantics) source print that
// identifies a node's computation.
func nodeKey(src *Source, gamma int32, mode string) string {
	single := Source{
		Seeds:     src.Seeds,
		K:         src.K,
		GammaLo:   gamma,
		GammaHi:   gamma,
		Semantics: []string{mode},
	}
	return single.String()
}
