package dsu

import (
	"testing"
	"testing/quick"
)

func TestBasicUnionFind(t *testing.T) {
	d := New(6)
	if d.Len() != 6 {
		t.Fatalf("Len = %d", d.Len())
	}
	for i := int32(0); i < 6; i++ {
		if d.Find(i) != i {
			t.Errorf("fresh element %d not its own root", i)
		}
	}
	d.Union(0, 1)
	d.Union(2, 3)
	if !d.Same(0, 1) || !d.Same(2, 3) {
		t.Error("unions not applied")
	}
	if d.Same(0, 2) {
		t.Error("unrelated sets merged")
	}
	d.Union(1, 3)
	if !d.Same(0, 2) {
		t.Error("transitive union failed")
	}
	if d.Same(0, 5) {
		t.Error("element 5 should be separate")
	}
}

func TestUnionInto(t *testing.T) {
	d := New(5)
	d.Union(1, 2)
	root := d.Find(3)
	d.UnionInto(root, 1)
	if d.Find(1) != root || d.Find(2) != root {
		t.Error("UnionInto must keep the designated root")
	}
	// Idempotent when already in the set.
	d.UnionInto(root, 2)
	if d.Find(2) != root {
		t.Error("repeated UnionInto broke the root")
	}
}

func TestGrowAndReset(t *testing.T) {
	d := New(2)
	d.Union(0, 1)
	d.Grow(4)
	if d.Len() != 4 {
		t.Fatalf("Len after Grow = %d", d.Len())
	}
	if d.Same(1, 3) {
		t.Error("grown elements must be singletons")
	}
	d.Reset()
	if d.Same(0, 1) {
		t.Error("Reset must separate everything")
	}
}

// TestEquivalenceProperty checks that DSU agrees with a brute-force
// union-find over random operation sequences.
func TestEquivalenceProperty(t *testing.T) {
	type op struct{ A, B uint8 }
	f := func(ops []op) bool {
		const n = 16
		d := New(n)
		group := make([]int, n)
		for i := range group {
			group[i] = i
		}
		merge := func(a, b int) {
			ga, gb := group[a], group[b]
			if ga == gb {
				return
			}
			for i := range group {
				if group[i] == gb {
					group[i] = ga
				}
			}
		}
		for _, o := range ops {
			a, b := int32(o.A%n), int32(o.B%n)
			d.Union(a, b)
			merge(int(a), int(b))
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if d.Same(int32(i), int32(j)) != (group[i] == group[j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
