// Package dsu implements a disjoint-set union (union-find) structure with
// union by rank and path halving, giving effectively constant amortized
// Find/Union as required by the EnumIC analysis (paper §3.2.2, [12]).
package dsu

// DSU is a forest of int32 element sets. Construct with New.
type DSU struct {
	parent []int32
	rank   []uint8
}

// New returns a DSU over n singleton sets {0}, ..., {n-1}.
func New(n int) *DSU {
	d := &DSU{parent: make([]int32, n), rank: make([]uint8, n)}
	for i := range d.parent {
		d.parent[i] = int32(i)
	}
	return d
}

// Len returns the number of elements.
func (d *DSU) Len() int { return len(d.parent) }

// Grow extends the universe to n elements, adding singletons.
func (d *DSU) Grow(n int) {
	for len(d.parent) < n {
		d.parent = append(d.parent, int32(len(d.parent)))
		d.rank = append(d.rank, 0)
	}
}

// Find returns the representative of x's set, halving paths as it goes.
func (d *DSU) Find(x int32) int32 {
	for d.parent[x] != x {
		d.parent[x] = d.parent[d.parent[x]]
		x = d.parent[x]
	}
	return x
}

// Union merges the sets of a and b and returns the surviving representative.
func (d *DSU) Union(a, b int32) int32 {
	ra, rb := d.Find(a), d.Find(b)
	if ra == rb {
		return ra
	}
	if d.rank[ra] < d.rank[rb] {
		ra, rb = rb, ra
	}
	d.parent[rb] = ra
	if d.rank[ra] == d.rank[rb] {
		d.rank[ra]++
	}
	return ra
}

// UnionInto merges b's set into a's set keeping a's representative as the
// root regardless of rank. EnumIC needs this directed form: the smallest
// keynode's group must stay the representative of its community.
func (d *DSU) UnionInto(root, b int32) {
	rb := d.Find(b)
	if rb == root {
		return
	}
	d.parent[rb] = root
}

// Same reports whether a and b are in the same set.
func (d *DSU) Same(a, b int32) bool { return d.Find(a) == d.Find(b) }

// Reset restores all elements to singletons without reallocating.
func (d *DSU) Reset() {
	for i := range d.parent {
		d.parent[i] = int32(i)
		d.rank[i] = 0
	}
}
