package baseline

import (
	"fmt"
	"testing"

	"influcomm/internal/core"
	"influcomm/internal/gen"
	"influcomm/internal/graph"
)

func naiveAsCommunities(g *graph.Graph, k int, gamma int32) []Community {
	naive := core.NaiveTopK(g, k, gamma)
	out := make([]Community, len(naive))
	for i, c := range naive {
		out[i] = Community{Keynode: c.Keynode, Influence: c.Influence, Vertices: c.Vertices}
	}
	return out
}

func sameCommunities(t *testing.T, algo string, got, want []Community) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d communities, want %d", algo, len(got), len(want))
	}
	for i := range want {
		a := fmt.Sprintf("%d:%v", got[i].Keynode, got[i].Vertices)
		b := fmt.Sprintf("%d:%v", want[i].Keynode, want[i].Vertices)
		if a != b {
			t.Fatalf("%s: community %d mismatch\n got %s\nwant %s", algo, i, a, b)
		}
	}
}

func TestGlobalAlgorithmsMatchNaive(t *testing.T) {
	for seed := uint64(1); seed <= 12; seed++ {
		g := gen.Random(70, 5, seed)
		for _, gamma := range []int32{2, 3} {
			for _, k := range []int{1, 3, 7, 1 << 20} {
				want := naiveAsCommunities(g, k, gamma)

				got, _, err := OnlineAll(g, k, gamma)
				if err != nil {
					t.Fatalf("OnlineAll: %v", err)
				}
				sameCommunities(t, fmt.Sprintf("OnlineAll(seed=%d,k=%d,γ=%d)", seed, k, gamma), got, want)

				got, _, err = Forward(g, k, gamma)
				if err != nil {
					t.Fatalf("Forward: %v", err)
				}
				sameCommunities(t, fmt.Sprintf("Forward(seed=%d,k=%d,γ=%d)", seed, k, gamma), got, want)

				got, _, err = Backward(g, k, gamma)
				if err != nil {
					t.Fatalf("Backward: %v", err)
				}
				sameCommunities(t, fmt.Sprintf("Backward(seed=%d,k=%d,γ=%d)", seed, k, gamma), got, want)

				got, _, err = LocalSearchOA(g, k, gamma)
				if err != nil {
					t.Fatalf("LocalSearchOA: %v", err)
				}
				sameCommunities(t, fmt.Sprintf("LocalSearchOA(seed=%d,k=%d,γ=%d)", seed, k, gamma), got, want)
			}
		}
	}
}

func TestForwardNonContainmentMatchesNaive(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		g := gen.Random(50, 5, seed)
		for _, gamma := range []int32{2, 3} {
			naive := core.NaiveNonContainment(g, gamma)
			want := make([]Community, len(naive))
			for i, c := range naive {
				want[i] = Community{Keynode: c.Keynode, Influence: c.Influence, Vertices: c.Vertices}
			}
			got, _, err := ForwardNonContainment(g, 1<<20, gamma)
			if err != nil {
				t.Fatalf("ForwardNonContainment: %v", err)
			}
			sameCommunities(t, fmt.Sprintf("ForwardNC(seed=%d,γ=%d)", seed, gamma), got, want)
		}
	}
}

func TestOnlineAllRingBuffer(t *testing.T) {
	// A nested chain produces many communities; OnlineAll must retain only
	// the k highest-influence ones regardless of the total count.
	var b graph.Builder
	n := 30
	for i := 0; i < n; i++ {
		b.AddVertex(int32(i), float64(1000-i))
	}
	for _, e := range [][2]int32{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}} {
		b.AddEdge(e[0], e[1])
	}
	for i := int32(4); int(i) < n; i++ {
		b.AddEdge(i, i-1)
		b.AddEdge(i, i-2)
		b.AddEdge(i, i-3)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	got, st, err := OnlineAll(g, 5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if st.Communities != n-3 {
		t.Fatalf("total communities = %d, want %d", st.Communities, n-3)
	}
	if len(got) != 5 {
		t.Fatalf("kept %d communities, want 5", len(got))
	}
	for i, c := range got {
		if want := int32(3 + i); c.Keynode != want {
			t.Errorf("community %d keynode = %d, want %d", i, c.Keynode, want)
		}
	}
}

func TestBackwardStopsAtMinimalPrefix(t *testing.T) {
	g := gen.Random(200, 6, 11)
	k, gamma := 3, 3
	if len(core.NaiveTopK(g, k, int32(gamma))) < k {
		t.Skip("fixture too sparse")
	}
	_, _, err := Backward(g, k, int32(gamma))
	if err != nil {
		t.Fatalf("Backward: %v", err)
	}
}

func TestBaselineValidation(t *testing.T) {
	g := gen.Random(10, 2, 1)
	cases := []func() error{
		func() error { _, _, err := OnlineAll(nil, 1, 1); return err },
		func() error { _, _, err := Forward(g, 0, 1); return err },
		func() error { _, _, err := Backward(g, 1, 0); return err },
		func() error { _, _, err := LocalSearchOA(g, -1, 1); return err },
		func() error { _, _, err := ForwardNonContainment(nil, 1, 1); return err },
	}
	for i, fn := range cases {
		if fn() == nil {
			t.Errorf("case %d: want validation error", i)
		}
	}
}
