package baseline

import "errors"

var (
	errNil      = errors.New("baseline: nil graph")
	errEmpty    = errors.New("baseline: empty graph")
	errBadK     = errors.New("baseline: k must be >= 1")
	errBadGamma = errors.New("baseline: gamma must be >= 1")
)
