// Package baseline implements the algorithms the paper evaluates
// LocalSearch against: the global search algorithms OnlineAll [26] and
// Forward [8], the quadratic local search Backward [8], and the
// LocalSearch-OA ablation that counts communities by enumeration instead of
// CountIC (Eval-III). All of them reuse the step-wise γ-core engine of the
// core package, so differences in measured cost reflect algorithmic
// structure rather than implementation detail.
package baseline

import (
	"sort"

	"influcomm/internal/core"
	"influcomm/internal/graph"
)

// Community is a fully materialized community as the global-search
// algorithms produce it (they have no containment forest: each community is
// an explicit vertex set, which is why OnlineAll runs out of memory on the
// paper's largest graphs).
type Community struct {
	Keynode   int32
	Influence float64
	Vertices  []int32 // ascending rank order
}

func newCommunity(g *graph.Graph, u int32, comp []int32) Community {
	sort.Slice(comp, func(i, j int) bool { return comp[i] < comp[j] })
	return Community{Keynode: u, Influence: g.Weight(u), Vertices: comp}
}

// Stats describes the work a baseline performed.
type Stats struct {
	// Communities is the total number of communities the algorithm
	// discovered (for global algorithms: all of them, not just k).
	Communities int
	// ComponentWork is the summed size of every connected-component
	// traversal, the dominant cost of OnlineAll (§1).
	ComponentWork int64
}

// OnlineAll implements the global search algorithm of Li et al. [26]:
// reduce the graph to its γ-core, then repeatedly (1) locate the
// minimum-weight vertex, (2) traverse its connected component — the next
// influential γ-community, (3) remove the vertex and restore the γ-core.
// Only the last k communities are retained (a ring buffer), and they are
// returned in decreasing influence order.
func OnlineAll(g *graph.Graph, k int, gamma int32) ([]Community, Stats, error) {
	if err := Validate(g, k, gamma); err != nil {
		return nil, Stats{}, err
	}
	eng := core.NewEngine(g, gamma)
	n := g.NumVertices()
	eng.Peel(n)
	ring := make([]Community, 0, k)
	next := 0
	var st Stats
	var seq []int32
	for {
		u := eng.NextMin()
		if u < 0 {
			break
		}
		comp := eng.Component(u)
		st.ComponentWork += int64(len(comp))
		st.Communities++
		c := newCommunity(g, u, comp)
		if len(ring) < k {
			ring = append(ring, c)
		} else {
			ring[next] = c
			next = (next + 1) % k
		}
		seq = eng.Remove(u, seq[:0])
	}
	// Ring contents oldest..newest = increasing influence; emit reversed.
	out := make([]Community, 0, len(ring))
	for i := 0; i < len(ring); i++ {
		out = append(out, ring[(next+len(ring)-1-i)%len(ring)])
	}
	return out, st, nil
}

// Forward implements the state-of-the-art global search of Chen et al. [8]:
// a first peeling pass over the whole graph learns the keynode sequence;
// a second pass repeats the peel but performs the expensive component
// traversal only for the last k keynodes. Results are in decreasing
// influence order.
func Forward(g *graph.Graph, k int, gamma int32) ([]Community, Stats, error) {
	if err := Validate(g, k, gamma); err != nil {
		return nil, Stats{}, err
	}
	n := g.NumVertices()
	eng := core.NewEngine(g, gamma)
	total := eng.Run(n, 0, 0).Count()
	var st Stats
	st.Communities = total

	eng.Peel(n)
	skip := total - k
	out := make([]Community, 0, min(k, total))
	var seq []int32
	for i := 0; ; i++ {
		u := eng.NextMin()
		if u < 0 {
			break
		}
		if i >= skip {
			comp := eng.Component(u)
			st.ComponentWork += int64(len(comp))
			out = append(out, newCommunity(g, u, comp))
		}
		seq = eng.Remove(u, seq[:0])
	}
	// Collected in increasing influence order; reverse.
	for i, j := 0, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out, st, nil
}

// ForwardNonContainment is the Forward variant of [8] for non-containment
// queries (Eval-VII): a full-graph CountIC pass with non-containment
// classification, returning the last k non-containment groups.
func ForwardNonContainment(g *graph.Graph, k int, gamma int32) ([]Community, Stats, error) {
	if err := Validate(g, k, gamma); err != nil {
		return nil, Stats{}, err
	}
	eng := core.NewEngine(g, gamma)
	cvs := eng.Run(g.NumVertices(), 0, core.WantSeq|core.WantNC)
	var st Stats
	st.Communities = cvs.Count()
	var out []Community
	for j := len(cvs.Keys) - 1; j >= 0 && len(out) < k; j-- {
		if !cvs.NC[j] {
			continue
		}
		seg := append([]int32(nil), cvs.Group(j)...)
		out = append(out, newCommunity(g, cvs.Keys[j], seg))
	}
	return out, st, nil
}

// Backward reproduces the local search of Chen et al. [8]: it grows the
// high-weight prefix one vertex at a time and re-derives the community
// count after every insertion, stopping at the very first prefix that holds
// k communities. It therefore accesses the minimal subgraph G≥τ* but pays
// O(size(G≥τ*)²) time — the quadratic behavior the paper criticizes and
// Figure 11 measures.
func Backward(g *graph.Graph, k int, gamma int32) ([]Community, Stats, error) {
	if err := Validate(g, k, gamma); err != nil {
		return nil, Stats{}, err
	}
	n := g.NumVertices()
	eng := core.NewEngine(g, gamma)
	p := k + int(gamma)
	if p > n {
		p = n
	}
	var st Stats
	var cvs *core.CVS
	for {
		cvs = eng.Run(p, 0, core.WantSeq)
		if cvs.Count() >= k || p == n {
			break
		}
		p++
	}
	st.Communities = cvs.Count()
	comms := core.EnumIC(g, cvs, k)
	out := make([]Community, 0, len(comms))
	for _, c := range comms {
		out = append(out, Community{
			Keynode:   c.Keynode(),
			Influence: c.Influence(),
			Vertices:  c.Vertices(),
		})
	}
	return out, st, nil
}

// CountViaOnlineAll counts the influential γ-communities of the prefix
// [0, p) the way OnlineAll would: enumerating every community with a
// component traversal. It is the counting oracle of the LocalSearch-OA
// ablation (Eval-III) — correct, but Θ(count · size) instead of CountIC's
// O(size).
func CountViaOnlineAll(g *graph.Graph, p int, gamma int32) (int, int64) {
	eng := core.NewEngine(g, gamma)
	eng.Peel(p)
	count := 0
	var work int64
	var seq []int32
	for {
		u := eng.NextMin()
		if u < 0 {
			break
		}
		work += int64(len(eng.Component(u)))
		count++
		seq = eng.Remove(u, seq[:0])
	}
	return count, work
}

// LocalSearchOA is Algorithm 1 with CountIC replaced by the OnlineAll
// counting oracle, exactly the LocalSearch-OA configuration of Eval-III.
func LocalSearchOA(g *graph.Graph, k int, gamma int32) ([]Community, Stats, error) {
	if err := Validate(g, k, gamma); err != nil {
		return nil, Stats{}, err
	}
	n := g.NumVertices()
	p := k + int(gamma)
	if p > n {
		p = n
	}
	var st Stats
	for {
		cnt, work := CountViaOnlineAll(g, p, gamma)
		st.ComponentWork += work
		if cnt >= k || p == n {
			st.Communities = cnt
			break
		}
		want := int64(core.DefaultDelta * float64(g.PrefixSize(p)))
		np := g.PrefixForSize(want)
		if np <= p {
			np = p + 1
		}
		if np > n {
			np = n
		}
		p = np
	}
	eng := core.NewEngine(g, gamma)
	cvs := eng.Run(p, 0, core.WantSeq)
	comms := core.EnumIC(g, cvs, k)
	out := make([]Community, 0, len(comms))
	for _, c := range comms {
		out = append(out, Community{
			Keynode:   c.Keynode(),
			Influence: c.Influence(),
			Vertices:  c.Vertices(),
		})
	}
	return out, st, nil
}

// Validate checks the common query preconditions shared by all baselines.
func Validate(g *graph.Graph, k int, gamma int32) error {
	return validate(g, k, gamma)
}

func validate(g *graph.Graph, k int, gamma int32) error {
	switch {
	case g == nil:
		return errNil
	case g.NumVertices() == 0:
		return errEmpty
	case k < 1:
		return errBadK
	case gamma < 1:
		return errBadGamma
	}
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
