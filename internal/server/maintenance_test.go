package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"influcomm/internal/gen"
	"influcomm/internal/graph"
	"influcomm/internal/index"
	"influcomm/internal/semiext"
	"influcomm/internal/store"
)

// reindexServer builds a server whose "dyn" dataset is a durable mutable
// store over a fresh edge file of g, registered with cfg (Store is filled
// in). withIndex attaches a prebuilt index over the opened snapshot, so
// the dataset starts out serving index-first.
func reindexServer(t *testing.T, g *graph.Graph, withIndex bool, cfg DatasetConfig, opts ...Option) (*Server, *httptest.Server, store.MutableStore) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "g.edges")
	if err := semiext.WriteEdgeFile(path, g); err != nil {
		t.Fatal(err)
	}
	ms, err := store.OpenMutable(path)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Store = ms
	if withIndex {
		ix, err := index.Build(ms.Graph())
		if err != nil {
			t.Fatal(err)
		}
		cfg.Index = ix
	}
	s, err := New(rankGraph(t), append(opts, WithDataset("dyn", cfg))...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts, ms
}

// maintOf returns the "dyn" dataset's maintenance pipeline for white-box
// steering (repair fraction, build observation hooks).
func maintOf(t *testing.T, s *Server) *maintainer {
	t.Helper()
	ds := s.registry.lookup("dyn")
	if ds == nil {
		t.Fatal("dataset dyn not registered")
	}
	if ds.maint == nil {
		t.Fatal("dataset dyn has no maintainer")
	}
	return ds.maint
}

func serializedIndex(t *testing.T, ix *index.Index) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// maintainedUpdateResponse is the slice of updatesResponse these tests
// care about.
type maintainedUpdateResponse struct {
	Index            string `json:"index"`
	IndexInvalidated bool   `json:"index_invalidated"`
	SnapshotEpoch    uint64 `json:"snapshot_epoch"`
}

func postMaintainedUpdate(t *testing.T, ts *httptest.Server, body string) maintainedUpdateResponse {
	t.Helper()
	resp, b := postUpdates(t, ts, "dyn", body, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("update: status %d: %s", resp.StatusCode, b)
	}
	var ur maintainedUpdateResponse
	if err := json.Unmarshal(b, &ur); err != nil {
		t.Fatalf("unmarshal %s: %v", b, err)
	}
	return ur
}

// requireFreshBuildMatch asserts the attached index serializes
// byte-identically to a fresh Build over the store's current snapshot and
// is attached at the current epoch.
func requireFreshBuildMatch(t *testing.T, s *Server, ms store.MutableStore) {
	t.Helper()
	ds := s.registry.lookup("dyn")
	g, epoch := ms.Snapshot()
	at := ds.attached.Load()
	if at == nil {
		t.Fatal("no index attached")
	}
	if at.epoch != epoch {
		t.Fatalf("attached at epoch %d, store at %d", at.epoch, epoch)
	}
	fresh, err := index.Build(g)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(serializedIndex(t, at.ix), serializedIndex(t, fresh)) {
		t.Fatal("maintained index differs from a fresh build on the same snapshot")
	}
}

// dynInfo fetches the "dyn" dataset's stats row.
func dynInfo(t *testing.T, ts *httptest.Server) DatasetInfo {
	t.Helper()
	var stats struct {
		Datasets []DatasetInfo `json:"datasets"`
	}
	getJSON(t, ts.URL+"/v1/stats", &stats)
	return *datasetNamed(t, stats.Datasets, "dyn")
}

// TestReindexDeltaRepairKeepsIndexAttached covers the synchronous fast
// path: a small-suffix update is repaired before the update response, the
// repaired index is byte-identical to a fresh build, and queries keep
// being served index-first with no rebuild involved.
func TestReindexDeltaRepairKeepsIndexAttached(t *testing.T) {
	s, ts, ms := reindexServer(t, rankGraph(t), true, DatasetConfig{Reindex: "auto"})
	m := maintOf(t, s)
	// Accept any suffix, so every update takes the repair path.
	m.repairFraction.Store(math.Float64bits(1))

	ur := postMaintainedUpdate(t, ts, `{"updates":[{"op":"delete","u":8,"v":9}]}`)
	if ur.Index != outcomeRepaired {
		t.Fatalf("index outcome %q, want %q", ur.Index, outcomeRepaired)
	}
	if ur.IndexInvalidated {
		t.Fatal("repair must not report the index as invalidated")
	}
	requireFreshBuildMatch(t, s, ms)

	info := dynInfo(t, ts)
	if info.IndexState != "attached" || !info.IndexLoaded {
		t.Fatalf("after repair: state %q loaded %v, want attached", info.IndexState, info.IndexLoaded)
	}
	if info.IndexDeltaRepairs < 1 {
		t.Fatalf("delta repairs = %d, want >= 1", info.IndexDeltaRepairs)
	}

	// The repaired index serves the very next query (no rebuild window).
	var res map[string]any
	getJSON(t, ts.URL+"/v1/topk?dataset=dyn&k=5&gamma=3", &res)
	after := dynInfo(t, ts)
	if after.IndexQueries != info.IndexQueries+1 {
		t.Fatalf("index queries %d -> %d, want an index-served query", info.IndexQueries, after.IndexQueries)
	}

	// A second batch repairs again from the already-repaired index.
	ur = postMaintainedUpdate(t, ts, `{"updates":[{"op":"insert","u":8,"v":9},{"op":"insert","u":4,"v":5}]}`)
	if ur.Index != outcomeRepaired {
		t.Fatalf("second batch outcome %q, want %q", ur.Index, outcomeRepaired)
	}
	requireFreshBuildMatch(t, s, ms)
}

// TestReindexBackgroundRebuildAttaches covers the general path: a dataset
// loaded without an index bootstraps one in the background, and an update
// too large for the fast path detaches into "rebuilding" until the
// epoch-tagged rebuild attaches a byte-identical-to-fresh index.
func TestReindexBackgroundRebuildAttaches(t *testing.T) {
	s, ts, ms := reindexServer(t, rankGraph(t), false,
		DatasetConfig{Reindex: "auto", ReindexDebounce: time.Millisecond})
	m := maintOf(t, s)

	// Bootstrap: auto-reindex builds the first index on its own.
	waitFor(t, "bootstrap rebuild", func() bool { return dynInfo(t, ts).IndexState == "attached" })
	if n := m.rebuilds.Load(); n != 1 {
		t.Fatalf("rebuilds after bootstrap = %d, want 1", n)
	}
	requireFreshBuildMatch(t, s, ms)

	// Refuse every repair, so the update must go through the worker.
	m.repairFraction.Store(math.Float64bits(0))
	ur := postMaintainedUpdate(t, ts, `{"updates":[{"op":"insert","u":0,"v":9}]}`)
	if ur.Index != outcomeRebuilding {
		t.Fatalf("index outcome %q, want %q", ur.Index, outcomeRebuilding)
	}
	if got := m.outcomeFor(ur.SnapshotEpoch); got != outcomeRebuilding {
		t.Fatalf("outcomeFor(%d) = %q mid-rebuild", ur.SnapshotEpoch, got)
	}

	// Mid-rebuild the dataset still answers (LocalSearch fallback).
	var res map[string]any
	getJSON(t, ts.URL+"/v1/topk?dataset=dyn&k=5&gamma=3", &res)

	waitFor(t, "rebuild after update", func() bool { return dynInfo(t, ts).IndexState == "attached" })
	if n := m.rebuilds.Load(); n != 2 {
		t.Fatalf("rebuilds = %d, want 2", n)
	}
	requireFreshBuildMatch(t, s, ms)

	info := dynInfo(t, ts)
	if info.IndexRebuilds != 2 {
		t.Fatalf("stats report %d rebuilds, want 2", info.IndexRebuilds)
	}
}

// TestReindexMaintainedMatchesFreshBuildUnderTraffic is the acceptance
// property: across a (k, gamma, update-batch) matrix with concurrent query
// traffic, maintenance — whichever mix of delta repairs and background
// rebuilds it chooses — converges to an index byte-identical to a fresh
// build on the final snapshot, and the quiesced server serves index-first
// with index_queries advancing.
func TestReindexMaintainedMatchesFreshBuildUnderTraffic(t *testing.T) {
	g := gen.Random(120, 6, 7)
	s, ts, ms := reindexServer(t, g, true,
		DatasetConfig{Reindex: "auto", ReindexDebounce: 2 * time.Millisecond},
		WithResultCache(0))

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ks := []int{1, 5, 10}
			gammas := []int{1, 2, 3, 4}
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				url := fmt.Sprintf("%s/v1/topk?dataset=dyn&k=%d&gamma=%d",
					ts.URL, ks[(w+i)%len(ks)], gammas[i%len(gammas)])
				resp, err := http.Get(url)
				if err != nil {
					t.Error(err)
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("query status %d", resp.StatusCode)
					return
				}
			}
		}(w)
	}

	// Toggle tracked edges so every batch is effective, mixing small
	// batches (repair path) with spread-out ones (rebuild path).
	rng := rand.New(rand.NewSource(11))
	n := int32(g.NumVertices())
	exists := make(map[[2]int32]bool)
	for batch := 0; batch < 12; batch++ {
		var ops []string
		used := make(map[[2]int32]bool)
		want := 1 + rng.Intn(5)
		for len(ops) < want {
			u, v := rng.Int31n(n), rng.Int31n(n)
			if u == v {
				continue
			}
			if u > v {
				u, v = v, u
			}
			key := [2]int32{u, v}
			if used[key] {
				// Toggling the same edge twice in one batch would cancel
				// out into a no-op; every op here must stay effective.
				continue
			}
			used[key] = true
			if _, seen := exists[key]; !seen {
				exists[key] = g.HasEdge(u, v)
			}
			op := "insert"
			if exists[key] {
				op = "delete"
			}
			exists[key] = !exists[key]
			ops = append(ops, fmt.Sprintf(`{"op":%q,"u":%d,"v":%d}`, op, g.OrigID(u), g.OrigID(v)))
		}
		ur := postMaintainedUpdate(t, ts, `{"updates":[`+strings.Join(ops, ",")+`]}`)
		if ur.Index != outcomeRepaired && ur.Index != outcomeRebuilding {
			t.Fatalf("batch %d: index outcome %q", batch, ur.Index)
		}
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()

	// Quiesce: maintenance converges to an attached, current index.
	waitFor(t, "index to converge", func() bool { return dynInfo(t, ts).IndexState == "attached" })
	requireFreshBuildMatch(t, s, ms)

	before := dynInfo(t, ts)
	for gamma := 1; gamma <= 3; gamma++ {
		var res map[string]any
		getJSON(t, fmt.Sprintf("%s/v1/topk?dataset=dyn&k=10&gamma=%d", ts.URL, gamma), &res)
	}
	after := dynInfo(t, ts)
	if after.IndexState != "attached" {
		t.Fatalf("quiesced state %q, want attached", after.IndexState)
	}
	if after.IndexQueries != before.IndexQueries+3 {
		t.Fatalf("index_queries %d -> %d, want +3 (index-first serving restored)",
			before.IndexQueries, after.IndexQueries)
	}
	m := maintOf(t, s)
	if m.rebuilds.Load()+m.deltaRepairs.Load() == 0 {
		t.Fatal("maintenance attached nothing despite 12 effective batches")
	}
}

// TestReindexMidRebuildDiscardsStale pins the epoch fence: an update
// landing while a rebuild is in flight makes the finished build stale —
// it is discarded, never attached, and the worker immediately rebuilds
// against the snapshot that superseded it.
func TestReindexMidRebuildDiscardsStale(t *testing.T) {
	s, ts, ms := reindexServer(t, rankGraph(t), true,
		DatasetConfig{Reindex: "auto", ReindexDebounce: time.Millisecond})
	m := maintOf(t, s)
	m.repairFraction.Store(math.Float64bits(0)) // force the rebuild path

	started := make(chan uint64, 8)
	release := make(chan struct{})
	var blockFirst atomic.Bool
	blockFirst.Store(true)
	hook := func(epoch uint64) {
		select {
		case started <- epoch:
		default:
		}
		if blockFirst.CompareAndSwap(true, false) {
			<-release
		}
	}
	m.testBuildStarted.Store(&hook)

	postMaintainedUpdate(t, ts, `{"updates":[{"op":"delete","u":0,"v":1}]}`)
	e1 := <-started // the worker is now mid-build against e1, holding it open

	// Land a second batch while the first build is in flight.
	ur := postMaintainedUpdate(t, ts, `{"updates":[{"op":"delete","u":1,"v":2}]}`)
	if ur.SnapshotEpoch <= e1 {
		t.Fatalf("second batch epoch %d did not pass build epoch %d", ur.SnapshotEpoch, e1)
	}
	close(release)

	waitFor(t, "rebuild at the superseding epoch", func() bool {
		return dynInfo(t, ts).IndexState == "attached"
	})
	if d := m.discarded.Load(); d < 1 {
		t.Fatalf("discarded = %d, want >= 1 (stale build must not attach)", d)
	}
	e2 := <-started
	if e2 != ur.SnapshotEpoch {
		t.Fatalf("retry built against epoch %d, want %d", e2, ur.SnapshotEpoch)
	}
	requireFreshBuildMatch(t, s, ms)
}

// TestReindexCloseDrainsInFlightRebuild pins shutdown: Server.Close while
// the rebuild worker has a build in flight cancels it, waits the worker
// out without hanging, and never attaches the cancelled build.
func TestReindexCloseDrainsInFlightRebuild(t *testing.T) {
	g := gen.Random(800, 8, 3)
	s, ts, _ := reindexServer(t, g, false,
		DatasetConfig{Reindex: "auto", ReindexDebounce: time.Millisecond})
	m := maintOf(t, s)
	waitFor(t, "bootstrap rebuild", func() bool { return dynInfo(t, ts).IndexState == "attached" })
	m.repairFraction.Store(math.Float64bits(0)) // force the rebuild path

	// Park the worker right at the start of its build cycle, so Close
	// provably lands while the rebuild is in flight.
	started := make(chan uint64, 8)
	release := make(chan struct{})
	var blockFirst atomic.Bool
	blockFirst.Store(true)
	hook := func(epoch uint64) {
		select {
		case started <- epoch:
		default:
		}
		if blockFirst.CompareAndSwap(true, false) {
			<-release
		}
	}
	m.testBuildStarted.Store(&hook)

	op := "insert"
	if g.HasEdge(0, 1) {
		op = "delete"
	}
	postMaintainedUpdate(t, ts, fmt.Sprintf(`{"updates":[{"op":%q,"u":%d,"v":%d}]}`, op, g.OrigID(0), g.OrigID(1)))
	<-started

	ts.Close()
	done := make(chan error, 1)
	go func() { done <- s.Close() }()
	// Close is now blocked draining the worker; release it into a build
	// whose context Close has already cancelled.
	time.Sleep(5 * time.Millisecond)
	close(release)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("close: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Server.Close hung on an in-flight rebuild")
	}
	if n := m.rebuilds.Load(); n != 1 {
		t.Fatalf("rebuilds = %d after close, want only the bootstrap build (a cancelled build must not attach)", n)
	}
}

// TestReindexWALReplayRebuildsOnce covers the crash path: reopening a
// mutable store replays the whole write-ahead log before the maintenance
// hook exists, so an auto-reindex dataset over the replayed store
// triggers exactly one rebuild, not one per replayed batch.
func TestReindexWALReplayRebuildsOnce(t *testing.T) {
	g := rankGraph(t)
	path := filepath.Join(t.TempDir(), "g.edges")
	if err := semiext.WriteEdgeFile(path, g); err != nil {
		t.Fatal(err)
	}
	ms, err := store.OpenMutable(path)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, b := range [][]store.EdgeUpdate{
		{{U: 0, V: 1, Delete: true}},
		{{U: 0, V: 9}},
		{{U: 2, V: 7}},
	} {
		if _, err := ms.ApplyUpdates(ctx, b); err != nil {
			t.Fatal(err)
		}
	}
	wantEpoch := ms.SnapshotEpoch()
	if err := ms.(interface{ Abandon() error }).Abandon(); err != nil {
		t.Fatal(err)
	}

	re, err := store.OpenMutable(path)
	if err != nil {
		t.Fatal(err)
	}
	if re.SnapshotEpoch() != wantEpoch {
		t.Fatalf("replayed epoch %d, want %d", re.SnapshotEpoch(), wantEpoch)
	}
	s, err := New(rankGraph(t),
		WithDataset("dyn", DatasetConfig{Store: re, Reindex: "auto", ReindexDebounce: time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)

	m := maintOf(t, s)
	waitFor(t, "post-replay rebuild", func() bool { return dynInfo(t, ts).IndexState == "attached" })
	// Give a hypothetical second rebuild time to fire, then pin the count.
	time.Sleep(20 * time.Millisecond)
	if n := m.rebuilds.Load(); n != 1 {
		t.Fatalf("rebuilds after crash-replay = %d, want exactly 1", n)
	}
	if d := m.discarded.Load(); d != 0 {
		t.Fatalf("discarded = %d after a quiet replay", d)
	}
	requireFreshBuildMatch(t, s, re)
}

// TestReindexOffDroppedLatch pins the unmaintained contract: with
// maintenance off, the first effective batch drops the index and reports
// the transition; every later batch still reports index "dropped" even
// though the transition flag is spent.
func TestReindexOffDroppedLatch(t *testing.T) {
	s, ts, _ := reindexServer(t, rankGraph(t), true, DatasetConfig{Reindex: "off"})
	if ds := s.registry.lookup("dyn"); ds.maint != nil {
		t.Fatal("reindex=off must not start a maintainer")
	}

	first := postMaintainedUpdate(t, ts, `{"updates":[{"op":"delete","u":8,"v":9}]}`)
	if !first.IndexInvalidated || first.Index != outcomeDropped {
		t.Fatalf("first batch: invalidated=%v index=%q, want the drop transition", first.IndexInvalidated, first.Index)
	}
	second := postMaintainedUpdate(t, ts, `{"updates":[{"op":"insert","u":8,"v":9}]}`)
	if second.IndexInvalidated {
		t.Fatal("second batch re-reported the drop transition")
	}
	if second.Index != outcomeDropped {
		t.Fatalf("second batch index %q, want %q (latched)", second.Index, outcomeDropped)
	}
	if st := dynInfo(t, ts).IndexState; st != "dropped" {
		t.Fatalf("dataset state %q, want dropped", st)
	}
}

// BenchmarkIndexMaintenance measures query cost on a mutable dataset under
// a steady trickle of updates (one small batch per 32 queries, in-process
// through ServeHTTP): "auto-reindex" keeps the index current — the batch
// pays a synchronous delta repair and the queries stay index-served —
// while "localsearch-fallback" is the unmaintained behavior, every query
// paying an online LocalSearch after the index drops.
func BenchmarkIndexMaintenance(b *testing.B) {
	run := func(b *testing.B, reindex string) {
		g := gen.Random(400, 8, 5)
		path := filepath.Join(b.TempDir(), "g.edges")
		if err := semiext.WriteEdgeFile(path, g); err != nil {
			b.Fatal(err)
		}
		ms, err := store.OpenMutable(path)
		if err != nil {
			b.Fatal(err)
		}
		ix, err := index.Build(ms.Graph())
		if err != nil {
			b.Fatal(err)
		}
		s, err := New(rankGraph(b), WithResultCache(0),
			WithDataset("dyn", DatasetConfig{Store: ms, Index: ix, Reindex: reindex, ReindexDebounce: time.Millisecond}))
		if err != nil {
			b.Fatal(err)
		}
		defer s.Close()

		// Toggle an edge between the two lowest-weight vertices: the delta
		// cut lands at rank n-2, the small-suffix case the repair path is
		// built for.
		n := int32(g.NumVertices())
		u, v := g.OrigID(n-2), g.OrigID(n-1)
		del := g.HasEdge(n-2, n-1)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if i%32 == 31 {
				op := "insert"
				if del {
					op = "delete"
				}
				del = !del
				body := fmt.Sprintf(`{"updates":[{"op":%q,"u":%d,"v":%d}]}`, op, u, v)
				req := httptest.NewRequest("POST", "/v1/admin/datasets/dyn/updates", strings.NewReader(body))
				w := httptest.NewRecorder()
				s.ServeHTTP(w, req)
				if w.Code != http.StatusOK {
					b.Fatalf("update: %d %s", w.Code, w.Body)
				}
			}
			req := httptest.NewRequest("GET", "/v1/topk?dataset=dyn&k=10&gamma=3", nil)
			w := httptest.NewRecorder()
			s.ServeHTTP(w, req)
			if w.Code != http.StatusOK {
				b.Fatalf("query: %d %s", w.Code, w.Body)
			}
		}
	}
	b.Run("auto-reindex", func(b *testing.B) { run(b, "auto") })
	b.Run("localsearch-fallback", func(b *testing.B) { run(b, "off") })
}

// TestReindexConfigValidation pins the registration rules: bad values and
// explicitly requested maintenance on ineligible backends fail loudly,
// while the inherited server-wide default silently skips them.
func TestReindexConfigValidation(t *testing.T) {
	if _, err := New(rankGraph(t), WithDataset("x", DatasetConfig{Graph: rankGraph(t), Reindex: "always"})); err == nil {
		t.Fatal("bad reindex value accepted")
	}
	// Explicit auto on an immutable in-memory dataset: error.
	if _, err := New(rankGraph(t), WithDataset("x", DatasetConfig{Graph: rankGraph(t), Reindex: "auto"})); err == nil {
		t.Fatal("reindex=auto accepted on an immutable backend")
	}
	// Inherited default on the same dataset: silently skipped.
	s, err := New(rankGraph(t), WithAutoReindex(), WithDataset("x", DatasetConfig{Graph: rankGraph(t)}))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if ds := s.registry.lookup("x"); ds.maint != nil {
		t.Fatal("inherited auto-reindex started a maintainer on an immutable dataset")
	}

	// The server-wide default does start maintenance on eligible datasets.
	s2, ts, _ := reindexServer(t, rankGraph(t), true, DatasetConfig{}, WithAutoReindex())
	maintOf(t, s2)
	ur := postMaintainedUpdate(t, ts, `{"updates":[{"op":"delete","u":8,"v":9}]}`)
	if ur.Index != outcomeRepaired && ur.Index != outcomeRebuilding {
		t.Fatalf("maintained default: outcome %q", ur.Index)
	}
}

// TestHealthzReportsWarmingDuringRebuild pins the readiness dimension: a
// dataset whose index is still being (re)built is "up but warming" —
// /healthz stays 200 (liveness) but ready flips false and names the
// dataset, and DatasetInfo mirrors it via ready=false — so a cluster
// prober can deprioritize the replica without evicting it.
func TestHealthzReportsWarmingDuringRebuild(t *testing.T) {
	// A debounce far beyond the test's lifetime freezes the dataset in
	// the "rebuilding" state: no index attached, maintainer pending.
	_, ts, _ := reindexServer(t, rankGraph(t), false,
		DatasetConfig{Reindex: "auto", ReindexDebounce: time.Hour})
	var got struct {
		Status  string   `json:"status"`
		Ready   bool     `json:"ready"`
		Warming []string `json:"warming"`
	}
	if code := getJSON(t, ts.URL+"/healthz", &got); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if got.Status != "ok" {
		t.Fatalf("warming must not fail liveness: %+v", got)
	}
	if got.Ready || len(got.Warming) != 1 || got.Warming[0] != "dyn" {
		t.Fatalf("healthz = %+v, want ready=false warming=[dyn]", got)
	}
	if info := dynInfo(t, ts); info.Ready {
		t.Fatalf("dataset info = %+v, want ready=false mid-rebuild", info)
	}
}
