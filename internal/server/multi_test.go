package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"influcomm/internal/graph"
	"influcomm/internal/index"
	"influcomm/internal/semiext"
	"influcomm/internal/store"
)

// rankGraph returns a graph whose original IDs coincide with weight ranks
// (weights strictly decreasing in ID), so in-memory responses — which
// report original IDs — are comparable byte for byte with semi-external
// responses, which report ranks.
func rankGraph(t testing.TB) *graph.Graph {
	t.Helper()
	weights := []float64{20, 19, 18, 17, 16, 15, 14, 13, 12, 11}
	edges := [][2]int32{
		{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3},
		{5, 6}, {5, 7}, {5, 8}, {6, 7}, {6, 8}, {7, 8},
		{3, 5}, {4, 0}, {4, 9}, {8, 9},
	}
	return graph.MustFromEdges(weights, edges)
}

// edgeFileStore writes g to a semi-external edge file and opens it.
func edgeFileStore(t testing.TB, g *graph.Graph) store.Store {
	t.Helper()
	path := filepath.Join(t.TempDir(), "g.edges")
	if err := semiext.WriteEdgeFile(path, g); err != nil {
		t.Fatal(err)
	}
	st, err := store.OpenEdgeFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// normalizeBody strips timing fields (and the cache marker) from a
// /v1/topk body so responses can be compared byte for byte.
func normalizeBody(t *testing.T, body []byte) string {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("unmarshal %s: %v", body, err)
	}
	delete(m, "elapsed_ms")
	delete(m, "cached")
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

// TestMultiDatasetEquivalence is the acceptance criterion: one server,
// two datasets over the same graph — one in-memory, one semi-external —
// answer every query byte-identically (modulo timing fields) to a
// single-dataset in-memory server.
func TestMultiDatasetEquivalence(t *testing.T) {
	g := rankGraph(t)
	single, err := New(g, WithResultCache(0))
	if err != nil {
		t.Fatal(err)
	}
	multi, err := New(g,
		WithResultCache(0),
		WithDataset("mem2", DatasetConfig{Graph: g}),
		WithDataset("se", DatasetConfig{Store: edgeFileStore(t, g)}),
	)
	if err != nil {
		t.Fatal(err)
	}
	tsSingle := httptest.NewServer(single)
	defer tsSingle.Close()
	tsMulti := httptest.NewServer(multi)
	defer tsMulti.Close()

	var queries []string
	for gamma := 1; gamma <= 4; gamma++ {
		for _, k := range []int{1, 2, 5, 50} {
			queries = append(queries, fmt.Sprintf("k=%d&gamma=%d", k, gamma))
			queries = append(queries, fmt.Sprintf("k=%d&gamma=%d&noncontainment=1", k, gamma))
		}
	}
	for _, q := range queries {
		codeRef, bodyRef := fetch(t, tsSingle.URL+"/v1/topk?"+q)
		if codeRef != http.StatusOK {
			t.Fatalf("%s: single-dataset status %d", q, codeRef)
		}
		ref := normalizeBody(t, bodyRef)
		for _, name := range []string{"", "default", "mem2", "se"} {
			url := tsMulti.URL + "/v1/topk?" + q
			if name != "" {
				url += "&dataset=" + name
			}
			code, body := fetch(t, url)
			if code != http.StatusOK {
				t.Fatalf("%s dataset=%q: status %d (%s)", q, name, code, body)
			}
			if got := normalizeBody(t, body); got != ref {
				t.Fatalf("%s dataset=%q diverges from single-dataset serving\n got %s\nwant %s", q, name, got, ref)
			}
		}
	}
}

// TestMultiDatasetConcurrent hammers two datasets — one per backend — in
// parallel and checks every response against the single-dataset reference.
func TestMultiDatasetConcurrent(t *testing.T) {
	g := rankGraph(t)
	single, err := New(g, WithResultCache(0))
	if err != nil {
		t.Fatal(err)
	}
	tsSingle := httptest.NewServer(single)
	defer tsSingle.Close()
	multi, err := New(g,
		WithDataset("se", DatasetConfig{Store: edgeFileStore(t, g)}),
		WithMaxInFlight(-1),
	)
	if err != nil {
		t.Fatal(err)
	}
	tsMulti := httptest.NewServer(multi)
	defer tsMulti.Close()

	params := []string{"k=1&gamma=2", "k=2&gamma=3", "k=5&gamma=3", "k=3&gamma=3&noncontainment=1"}
	refs := make(map[string]string, len(params))
	for _, p := range params {
		code, body := fetch(t, tsSingle.URL+"/v1/topk?"+p)
		if code != http.StatusOK {
			t.Fatalf("%s: reference status %d", p, code)
		}
		refs[p] = normalizeBody(t, body)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p := params[i%len(params)]
			ds := "default"
			if i%2 == 1 {
				ds = "se"
			}
			resp, err := http.Get(tsMulti.URL + "/v1/topk?" + p + "&dataset=" + ds)
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			var buf bytes.Buffer
			if _, err := buf.ReadFrom(resp.Body); err != nil {
				errs <- err
				return
			}
			if resp.StatusCode != http.StatusOK {
				errs <- fmt.Errorf("%s on %s: status %d", p, ds, resp.StatusCode)
				return
			}
			if got := normalizeBody(t, buf.Bytes()); got != refs[p] {
				errs <- fmt.Errorf("%s on %s diverged:\n got %s\nwant %s", p, ds, got, refs[p])
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestCacheHitEquivalence: a repeated query is served from the cache —
// marked, counted, and otherwise byte-identical to the computed response.
func TestCacheHitEquivalence(t *testing.T) {
	g := rankGraph(t)
	s, err := New(g, WithDataset("se", DatasetConfig{Store: edgeFileStore(t, g)}))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()

	for _, ds := range []string{"default", "se"} {
		url := ts.URL + "/v1/topk?k=2&gamma=3&dataset=" + ds
		_, first := fetch(t, url)
		_, second := fetch(t, url)
		var miss, hit topKResponse
		if err := json.Unmarshal(first, &miss); err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(second, &hit); err != nil {
			t.Fatal(err)
		}
		if miss.Cached {
			t.Errorf("%s: first response claims cached", ds)
		}
		if !hit.Cached {
			t.Errorf("%s: second response not served from cache", ds)
		}
		if normalizeBody(t, first) != normalizeBody(t, second) {
			t.Errorf("%s: cache hit differs from computed response\n%s\n%s", ds, first, second)
		}
	}

	var st statsResponse
	if code := getJSON(t, ts.URL+"/v1/stats", &st); code != http.StatusOK {
		t.Fatalf("stats status %d", code)
	}
	if st.CacheHits != 2 || st.CacheMisses != 2 {
		t.Errorf("cache hits=%d misses=%d, want 2/2", st.CacheHits, st.CacheMisses)
	}
	if st.CacheEntries != 2 || st.CacheCapacity != 256 {
		t.Errorf("cache entries=%d capacity=%d, want 2/256", st.CacheEntries, st.CacheCapacity)
	}
}

// TestCacheLRUEviction exercises the eviction path with a tiny capacity.
func TestCacheLRUEviction(t *testing.T) {
	c := newResultCache(2)
	key := func(k int) cacheKey { return cacheKey{dataset: "d", k: k, gamma: 1, mode: "core"} }
	c.put(key(1), &topKResponse{K: 1})
	c.put(key(2), &topKResponse{K: 2})
	if _, ok := c.get(key(1)); !ok {
		t.Fatal("key 1 evicted prematurely")
	}
	c.put(key(3), &topKResponse{K: 3}) // evicts key 2 (LRU)
	if _, ok := c.get(key(2)); ok {
		t.Error("key 2 should have been evicted")
	}
	if _, ok := c.get(key(1)); !ok {
		t.Error("key 1 should have survived (recently used)")
	}
	if _, ok := c.get(key(3)); !ok {
		t.Error("key 3 should be present")
	}
	c.invalidateDataset("d")
	if c.len() != 0 {
		t.Errorf("after invalidation cache holds %d entries", c.len())
	}
}

// TestTrussNeedsMemoryBackend: truss queries need whole-graph access and
// must be rejected cleanly on semi-external datasets.
func TestTrussNeedsMemoryBackend(t *testing.T) {
	g := rankGraph(t)
	s, err := New(g, WithDataset("se", DatasetConfig{Store: edgeFileStore(t, g)}))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()
	code, body := fetch(t, ts.URL+"/v1/topk?k=2&gamma=3&truss=1&dataset=se")
	if code != http.StatusBadRequest {
		t.Fatalf("truss on semiext: status %d (%s)", code, body)
	}
	code, _ = fetch(t, ts.URL+"/v1/topk?k=2&gamma=3&truss=1&dataset=default")
	if code != http.StatusOK {
		t.Fatalf("truss on memory: status %d", code)
	}
}

// TestUnknownDataset404s.
func TestUnknownDataset404s(t *testing.T) {
	ts := newTestServer(t)
	var e map[string]string
	if code := getJSON(t, ts.URL+"/v1/topk?k=2&gamma=3&dataset=nope", &e); code != http.StatusNotFound {
		t.Fatalf("unknown dataset: status %d", code)
	}
	if e["error"] == "" {
		t.Error("missing error message")
	}
}

// TestAdminLoadUnload drives the admin endpoints end to end: load a
// memory dataset, a semiext dataset, and an indexed dataset from disk;
// list them; query them; unload them; confirm 404 after.
func TestAdminLoadUnload(t *testing.T) {
	g := rankGraph(t)
	dir := t.TempDir()
	graphPath := filepath.Join(dir, "g.txt")
	f, err := os.Create(graphPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.WriteText(f, g); err != nil {
		t.Fatal(err)
	}
	f.Close()
	edgePath := filepath.Join(dir, "g.edges")
	if err := semiext.WriteEdgeFile(edgePath, g); err != nil {
		t.Fatal(err)
	}
	ixPath := filepath.Join(dir, "g.icx")
	ix, err := index.Build(g)
	if err != nil {
		t.Fatal(err)
	}
	ixf, err := os.Create(ixPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ix.WriteTo(ixf); err != nil {
		t.Fatal(err)
	}
	ixf.Close()

	s, err := New(rankGraph(t))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()

	post := func(body string) (int, []byte) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/admin/datasets", "application/json", bytes.NewBufferString(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp.StatusCode, buf.Bytes()
	}

	if code, body := post(fmt.Sprintf(`{"name":"disk-mem","path":%q}`, graphPath)); code != http.StatusCreated {
		t.Fatalf("load memory dataset: status %d (%s)", code, body)
	}
	if code, body := post(fmt.Sprintf(`{"name":"disk-se","path":%q,"backend":"semiext"}`, edgePath)); code != http.StatusCreated {
		t.Fatalf("load semiext dataset: status %d (%s)", code, body)
	}
	if code, body := post(fmt.Sprintf(`{"name":"disk-ix","path":%q,"index":%q}`, graphPath, ixPath)); code != http.StatusCreated {
		t.Fatalf("load indexed dataset: status %d (%s)", code, body)
	}
	// Duplicate name conflicts.
	if code, _ := post(fmt.Sprintf(`{"name":"disk-mem","path":%q}`, graphPath)); code != http.StatusConflict {
		t.Fatalf("duplicate load: status %d, want 409", code)
	}
	// Bad backend and bad path are 400s.
	if code, _ := post(fmt.Sprintf(`{"name":"x","path":%q,"backend":"bogus"}`, graphPath)); code != http.StatusBadRequest {
		t.Fatalf("bad backend: status %d", code)
	}
	if code, _ := post(`{"name":"x","path":"/does/not/exist"}`); code != http.StatusBadRequest {
		t.Fatalf("bad path: status %d", code)
	}
	// Index on a semiext backend is rejected.
	if code, _ := post(fmt.Sprintf(`{"name":"x","path":%q,"backend":"semiext","index":"whatever"}`, edgePath)); code != http.StatusBadRequest {
		t.Fatalf("index on semiext: status %d", code)
	}

	var list struct {
		Datasets []DatasetInfo `json:"datasets"`
	}
	if code := getJSON(t, ts.URL+"/v1/datasets", &list); code != http.StatusOK {
		t.Fatalf("list status %d", code)
	}
	if len(list.Datasets) != 4 {
		t.Fatalf("listed %d datasets, want 4", len(list.Datasets))
	}

	// All loaded datasets answer, identically to the default (same graph
	// content) — including the indexed one, whose answers come from the
	// loaded index file. The index path reports no accessed_vertices (it
	// touches only its output), so that field is normalized away here.
	stripAccessed := func(body []byte) string {
		var m map[string]any
		if err := json.Unmarshal([]byte(normalizeBody(t, body)), &m); err != nil {
			t.Fatal(err)
		}
		delete(m, "accessed_vertices")
		out, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		return string(out)
	}
	_, refBody := fetch(t, ts.URL+"/v1/topk?k=2&gamma=3")
	ref := stripAccessed(refBody)
	for _, name := range []string{"disk-mem", "disk-se", "disk-ix"} {
		code, body := fetch(t, ts.URL+"/v1/topk?k=2&gamma=3&dataset="+name)
		if code != http.StatusOK {
			t.Fatalf("query %s: status %d (%s)", name, code, body)
		}
		if got := stripAccessed(body); got != ref {
			t.Errorf("%s diverges from default dataset\n got %s\nwant %s", name, got, ref)
		}
	}

	// The indexed dataset served its query from the index.
	for _, d := range s.Datasets() {
		if d.Name == "disk-ix" {
			if !d.IndexLoaded || d.IndexQueries != 1 {
				t.Errorf("disk-ix: index_loaded=%v index_queries=%d, want true/1", d.IndexLoaded, d.IndexQueries)
			}
		}
	}

	// Unload and verify routing stops.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/admin/datasets/disk-se", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("unload: status %d", resp.StatusCode)
	}
	if code, _ := fetch(t, ts.URL+"/v1/topk?k=2&gamma=3&dataset=disk-se"); code != http.StatusNotFound {
		t.Fatalf("query after unload: status %d, want 404", code)
	}
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/v1/admin/datasets/disk-se", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("double unload: status %d, want 404", resp.StatusCode)
	}
}

// TestAdminToken: with WithAdminToken set, admin endpoints demand the
// bearer token while queries stay open.
func TestAdminToken(t *testing.T) {
	s, err := New(rankGraph(t), WithAdminToken("s3cret"))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()

	if code, _ := fetch(t, ts.URL+"/v1/topk?k=2&gamma=3"); code != http.StatusOK {
		t.Fatalf("query with token configured: status %d, want open", code)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/admin/datasets/default", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("unauthenticated admin: status %d, want 401", resp.StatusCode)
	}
	req, _ = http.NewRequest(http.MethodPost, ts.URL+"/v1/admin/datasets", bytes.NewBufferString(`{"name":"x","path":"/nope"}`))
	req.Header.Set("Authorization", "Bearer wrong")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUnauthorized {
		t.Fatalf("wrong token: status %d, want 401", resp.StatusCode)
	}
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/v1/admin/datasets/default", nil)
	req.Header.Set("Authorization", "Bearer s3cret")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("authenticated unload: status %d, want 200", resp.StatusCode)
	}
}

// TestLoadUnloadUnderTraffic cycles a dataset in and out of the registry
// while queries hammer it and a stable sibling: every response must be a
// 200 with correct content or a clean 404 — never an error, a wrong
// answer, or a race (this test runs under -race in CI).
func TestLoadUnloadUnderTraffic(t *testing.T) {
	g := rankGraph(t)
	edgePath := filepath.Join(t.TempDir(), "g.edges")
	if err := semiext.WriteEdgeFile(edgePath, g); err != nil {
		t.Fatal(err)
	}
	s, err := New(g, WithMaxInFlight(-1))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()

	_, refBody := fetch(t, ts.URL+"/v1/topk?k=2&gamma=3")
	ref := normalizeBody(t, refBody)

	stop := make(chan struct{})
	var wrong atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ds := "default"
			if w%2 == 1 {
				ds = "cycling"
			}
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(ts.URL + "/v1/topk?k=2&gamma=3&dataset=" + ds)
				if err != nil {
					wrong.Add(1)
					return
				}
				var buf bytes.Buffer
				buf.ReadFrom(resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					if normalizeBody(t, buf.Bytes()) != ref {
						wrong.Add(1)
					}
				case http.StatusNotFound:
					if ds != "cycling" {
						wrong.Add(1)
					}
				default:
					wrong.Add(1)
				}
			}
		}(w)
	}

	for i := 0; i < 20; i++ {
		st, err := store.OpenEdgeFile(edgePath)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.AddDataset("cycling", DatasetConfig{Store: st}); err != nil {
			t.Fatal(err)
		}
		if err := s.RemoveDataset("cycling"); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if n := wrong.Load(); n != 0 {
		t.Fatalf("%d wrong responses under load/unload churn", n)
	}
}

// TestAdminLoadPrefixCache loads a semi-external dataset with a decoded-
// prefix cache budget through the admin endpoint: the dataset must report
// its access mode, grow the cache once queried, and answer identically to
// the in-memory default.
func TestAdminLoadPrefixCache(t *testing.T) {
	g := rankGraph(t)
	edgePath := filepath.Join(t.TempDir(), "g.edges")
	if err := semiext.WriteEdgeFile(edgePath, g); err != nil {
		t.Fatal(err)
	}
	s, err := New(rankGraph(t))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()

	body := fmt.Sprintf(`{"name":"cached","path":%q,"backend":"semiext","prefix_cache_bytes":%d}`, edgePath, 1<<20)
	resp, err := http.Post(ts.URL+"/v1/admin/datasets", "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	var info DatasetInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("load: status %d", resp.StatusCode)
	}
	if info.Mode != "mmap" && info.Mode != "pread" {
		t.Errorf("mode = %q, want mmap or pread", info.Mode)
	}

	_, refBody := fetch(t, ts.URL+"/v1/topk?k=2&gamma=3")
	code, seBody := fetch(t, ts.URL+"/v1/topk?k=2&gamma=3&dataset=cached")
	if code != http.StatusOK {
		t.Fatalf("query: status %d (%s)", code, seBody)
	}
	if normalizeBody(t, refBody) != normalizeBody(t, seBody) {
		t.Errorf("cached semiext dataset diverges from in-memory default")
	}
	for _, d := range s.Datasets() {
		if d.Name == "cached" && d.CachedPrefix == 0 {
			t.Error("cached_prefix still 0 after a query; cache never grew")
		}
	}

	// A bad mode in the admin request is a 400, not a crash.
	resp, err = http.Post(ts.URL+"/v1/admin/datasets", "application/json",
		bytes.NewBufferString(fmt.Sprintf(`{"name":"bad","path":%q,"backend":"semiext","mode":"bogus"}`, edgePath)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad mode: status %d, want 400", resp.StatusCode)
	}
}

// TestAdminLoadParallelCompressed loads a compressed (v2) edge file with
// intra-query parallelism through the admin endpoint: the dataset must
// report its format and worker count, and answer byte-identically to the
// in-memory default — the parallel path is an implementation detail, not a
// semantics change.
func TestAdminLoadParallelCompressed(t *testing.T) {
	g := rankGraph(t)
	edgePath := filepath.Join(t.TempDir(), "g.edges")
	if err := semiext.WriteEdgeFileFormat(edgePath, g, semiext.FormatV2); err != nil {
		t.Fatal(err)
	}
	s, err := New(rankGraph(t))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()

	body := fmt.Sprintf(`{"name":"par","path":%q,"backend":"semiext","workers":4}`, edgePath)
	resp, err := http.Post(ts.URL+"/v1/admin/datasets", "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	var info DatasetInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("load: status %d", resp.StatusCode)
	}
	if info.Format != "v2" {
		t.Errorf("format = %q, want v2", info.Format)
	}
	if info.Workers != 4 {
		t.Errorf("workers = %d, want 4", info.Workers)
	}

	for _, q := range []string{"k=2&gamma=3", "k=5&gamma=2", "k=1&gamma=1&noncontainment=1"} {
		_, refBody := fetch(t, ts.URL+"/v1/topk?"+q)
		code, parBody := fetch(t, ts.URL+"/v1/topk?"+q+"&dataset=par")
		if code != http.StatusOK {
			t.Fatalf("%s: status %d (%s)", q, code, parBody)
		}
		if normalizeBody(t, refBody) != normalizeBody(t, parBody) {
			t.Errorf("%s: parallel v2 dataset diverges from in-memory default", q)
		}
	}
	for _, d := range s.Datasets() {
		if d.Name == "par" && (d.Format != "v2" || d.Workers != 4) {
			t.Errorf("stats report format=%q workers=%d, want v2/4", d.Format, d.Workers)
		}
	}

	// A negative worker count in the admin request is a 400, not a crash.
	resp, err = http.Post(ts.URL+"/v1/admin/datasets", "application/json",
		bytes.NewBufferString(fmt.Sprintf(`{"name":"bad","path":%q,"backend":"semiext","workers":-1}`, edgePath)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative workers: status %d, want 400", resp.StatusCode)
	}
}
