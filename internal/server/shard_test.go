package server

import (
	"bufio"
	"encoding/json"
	"net/http"
	"testing"

	"influcomm/internal/cluster"
)

// readStream fetches a shard stream and decodes every line.
func readStream(t *testing.T, url string) (int, []cluster.StreamLine) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, nil
	}
	var lines []cluster.StreamLine
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var line cluster.StreamLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("malformed line %q: %v", sc.Text(), err)
		}
		lines = append(lines, line)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, lines
}

func TestShardStream(t *testing.T) {
	ts := newTestServer(t)
	code, lines := readStream(t, ts.URL+cluster.StreamPath+"?gamma=3&limit=10")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(lines) < 2 {
		t.Fatalf("got %d lines, want header + trailer at least", len(lines))
	}
	hdr := lines[0].Header
	if hdr == nil {
		t.Fatalf("first line is not a header: %+v", lines[0])
	}
	if hdr.Dataset != DefaultDataset || hdr.Mode != cluster.ModeCore {
		t.Errorf("header = %+v", hdr)
	}
	tr := lines[len(lines)-1].Trailer
	if tr == nil {
		t.Fatalf("last line is not a trailer: %+v", lines[len(lines)-1])
	}
	comms := lines[1 : len(lines)-1]
	if tr.Communities != len(comms) {
		t.Errorf("trailer counts %d communities, stream has %d", tr.Communities, len(comms))
	}
	if !tr.Exhausted {
		t.Error("limit 10 on the test graph should exhaust the stream")
	}
	// Decreasing influence order is the merge precondition.
	last := -1.0
	for i, l := range comms {
		c := l.Community
		if c == nil {
			t.Fatalf("line %d is not a community: %+v", i+1, l)
		}
		if last >= 0 && c.Influence > last {
			t.Fatalf("influence rose from %v to %v at line %d", last, c.Influence, i+1)
		}
		last = c.Influence
	}
	// The stream must agree with /v1/topk at the same k: same communities,
	// same order, field for field.
	var topk topKResponse
	if code := getJSON(t, ts.URL+"/v1/topk?k=10&gamma=3", &topk); code != http.StatusOK {
		t.Fatalf("topk status %d", code)
	}
	if len(topk.Communities) != len(comms) {
		t.Fatalf("stream has %d communities, /v1/topk %d", len(comms), len(topk.Communities))
	}
	for i := range comms {
		sj, _ := json.Marshal(comms[i].Community)
		tj, _ := json.Marshal(topk.Communities[i])
		if string(sj) != string(tj) {
			t.Errorf("community %d differs:\nstream %s\ntopk   %s", i, sj, tj)
		}
	}
}

func TestShardStreamLimit(t *testing.T) {
	ts := newTestServer(t)
	code, lines := readStream(t, ts.URL+cluster.StreamPath+"?gamma=3&limit=1")
	if code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	tr := lines[len(lines)-1].Trailer
	if tr == nil || tr.Communities != 1 {
		t.Fatalf("trailer = %+v, want 1 community", tr)
	}
	if tr.Exhausted {
		t.Error("limit 1 should not exhaust a graph with 2 communities at γ=3")
	}
}

func TestShardStreamModes(t *testing.T) {
	ts := newTestServer(t)
	for _, mode := range []string{cluster.ModeNonContainment, cluster.ModeTruss} {
		gamma := "3"
		if mode == cluster.ModeTruss {
			gamma = "4"
		}
		code, lines := readStream(t, ts.URL+cluster.StreamPath+"?gamma="+gamma+"&limit=5&mode="+mode)
		if code != http.StatusOK {
			t.Fatalf("%s: status %d", mode, code)
		}
		if lines[0].Header == nil || lines[0].Header.Mode != mode {
			t.Errorf("%s: header = %+v", mode, lines[0].Header)
		}
		if lines[len(lines)-1].Trailer == nil {
			t.Errorf("%s: no trailer", mode)
		}
	}
}

func TestShardStreamErrors(t *testing.T) {
	ts := newTestServer(t)
	for _, q := range []string{
		"?gamma=3",                     // missing limit
		"?gamma=3&limit=0",             // limit below 1
		"?gamma=3&limit=x",             // malformed limit
		"?gamma=0&limit=5",             // bad gamma
		"?gamma=3&limit=5&mode=bogus",  // unknown mode
		"?gamma=1&limit=5&mode=truss",  // truss needs gamma >= 2
		"?gamma=3&limit=5&dataset=nix", // unknown dataset
	} {
		code, _ := readStream(t, ts.URL+cluster.StreamPath+q)
		if code == http.StatusOK {
			t.Errorf("%s: got 200, want an error status", q)
		}
	}
}

func TestShardStreamCountsInStats(t *testing.T) {
	ts := newTestServer(t)
	readStream(t, ts.URL+cluster.StreamPath+"?gamma=3&limit=2")
	var st statsResponse
	getJSON(t, ts.URL+"/v1/stats", &st)
	if st.ShardStreams != 1 {
		t.Errorf("shard_streams = %d, want 1", st.ShardStreams)
	}
}
