// Package server exposes top-k influential community queries over HTTP:
// the serving layer a downstream system would put in front of the library.
//
// A server holds a registry of named datasets. Each dataset is one graph
// behind a pluggable Store backend — fully in-memory with pooled engines,
// or semi-external with on-disk edge files and only per-vertex state in
// RAM — plus an optional prebuilt index (in-memory backends only) that
// answers default-semantics queries in output-proportional time. Queries
// run concurrently, each request under its own context with a per-request
// deadline; a bounded LRU cache short-circuits repeated identical queries
// and reports hits and misses on /v1/stats. Datasets can be loaded and
// unloaded at runtime through the admin endpoints without restarting;
// unloading waits for in-flight queries on that dataset to drain before
// releasing the backend.
//
// Endpoints:
//
//	GET    /healthz                        liveness + readiness (warming datasets)
//	GET    /v1/stats                       statistics and serving counters
//	GET    /v1/datasets                    list loaded datasets
//	GET    /v1/topk?k=10&gamma=5           top-k influential γ-communities
//	GET    /v1/topk?...&dataset=name       ... against a named dataset
//	GET    /v1/topk?...&noncontainment=1   non-containment variant (§5.1)
//	GET    /v1/topk?...&truss=1            γ-truss variant (§5.2, in-memory datasets)
//	POST   /v1/query                       composable DSL batch: {"query": "...",
//	                                       "dataset": "name"}; plan nodes shared
//	                                       across concurrent batches (CSE)
//	GET    /v1/shard/stream?gamma=5&limit=10  progressive NDJSON community stream
//	                                       (the shard side of the cluster protocol)
//	POST   /v1/admin/datasets              load a dataset from disk
//	DELETE /v1/admin/datasets/{name}       unload a dataset
//	POST   /v1/admin/datasets/{name}/updates  apply edge updates (mutable datasets)
//
// Responses are JSON. Community members are reported as the graph's
// original vertex IDs (plus labels when the graph has them) for in-memory
// datasets; semi-external datasets identify vertices by weight rank, which
// is what the edge-file layout stores.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"sync/atomic"
	"time"

	"influcomm/internal/cluster"
	"influcomm/internal/graph"
	"influcomm/internal/index"
	"influcomm/internal/store"
)

// DefaultDataset is the name queries are routed to when no dataset
// parameter is given; New registers its graph argument under it.
const DefaultDataset = "default"

// Server answers community-search queries over a registry of datasets.
// Create with New; it is safe for concurrent use.
type Server struct {
	mux *http.ServeMux

	registry registry

	// cache short-circuits repeated identical queries; nil when disabled.
	cache *resultCache

	// adminToken, when non-empty, gates the admin endpoints behind a
	// bearer token; queries stay open.
	adminToken string

	// autoReindex makes index maintenance the default for every eligible
	// (mutable, whole-graph) dataset; see WithAutoReindex.
	autoReindex bool

	// maxK bounds per-request work; requests beyond it are rejected.
	maxK int
	// queryTimeout is the per-request search deadline; 0 disables it.
	queryTimeout time.Duration
	// inflight is the admission semaphore; nil means unlimited.
	inflight chan struct{}

	metrics metrics

	// pendingDatasets defers WithDataset registrations until New has
	// finished applying options, so option order does not matter.
	pendingDatasets []pendingDataset
}

type pendingDataset struct {
	name string
	cfg  DatasetConfig
}

// metrics holds the serving counters reported on /v1/stats.
type metrics struct {
	queries    atomic.Int64 // admitted /v1/topk requests
	inFlight   atomic.Int64 // currently executing queries
	rejected   atomic.Int64 // 503s from the in-flight limit
	errors     atomic.Int64 // bad requests and query failures
	canceled   atomic.Int64 // queries stopped by disconnect or deadline
	durationUS atomic.Int64 // cumulative query time of admitted requests

	indexServed atomic.Int64 // queries answered from a prebuilt index
	localServed atomic.Int64 // queries answered by online LocalSearch/truss

	shardStreams atomic.Int64 // /v1/shard/stream requests admitted

	dslQueries atomic.Int64 // admitted /v1/query batches
	planNodes  atomic.Int64 // plan nodes expanded by those batches
	cseHits    atomic.Int64 // plan nodes served by shared work, not fresh execution
}

// Option configures a Server.
type Option func(*Server)

// WithMaxK overrides the per-request k limit (default 10000).
func WithMaxK(maxK int) Option {
	return func(s *Server) { s.maxK = maxK }
}

// WithQueryTimeout overrides the per-request search deadline (default 30s);
// d <= 0 disables the deadline.
func WithQueryTimeout(d time.Duration) Option {
	return func(s *Server) { s.queryTimeout = d }
}

// WithIndex attaches a prebuilt IndexAll structure to the default dataset:
// default-semantics /v1/topk queries on it are then answered from the index
// in output-proportional time, with pooled LocalSearch remaining the
// fallback for non-containment and truss queries. The index must have been
// built on (or loaded against) exactly the graph the server serves; New
// rejects any other index.
func WithIndex(ix *index.Index) Option {
	return func(s *Server) { s.registry.defaultIndex = ix }
}

// WithAutoReindex keeps prebuilt indexes current under online updates for
// every eligible dataset — mutable backends with whole-graph access —
// registered on this server: small deltas are repaired synchronously
// (per-γ recompute above the delta cut, splice below it), larger ones
// trigger an epoch-tagged background rebuild that attaches only if the
// store has not moved on, and queries fall back to LocalSearch while no
// current index is attached. A dataset loaded without an index gets one
// built in the background. Per-dataset DatasetConfig.Reindex ("auto" /
// "off") overrides this default. Without this option — and without a
// per-dataset "auto" — an effective update drops the dataset's index
// until an operator reloads one.
func WithAutoReindex() Option {
	return func(s *Server) { s.autoReindex = true }
}

// WithDataset registers an additional named dataset at construction; the
// equivalent of calling AddDataset right after New.
func WithDataset(name string, cfg DatasetConfig) Option {
	return func(s *Server) {
		s.pendingDatasets = append(s.pendingDatasets, pendingDataset{name, cfg})
	}
}

// WithResultCache overrides the query-result cache capacity (default 256
// entries); n <= 0 disables the cache.
func WithResultCache(n int) Option {
	return func(s *Server) {
		if n <= 0 {
			s.cache = nil
			return
		}
		s.cache = newResultCache(n)
	}
}

// WithAdminToken protects the admin endpoints (dataset load/unload) with
// a bearer token: requests must carry "Authorization: Bearer <token>" or
// are rejected with 401. The default (empty) leaves them open — only
// acceptable when the listen address is not reachable by untrusted
// clients, since admins can unload live datasets and make the server open
// arbitrary server-side files.
func WithAdminToken(token string) Option {
	return func(s *Server) { s.adminToken = token }
}

// WithMaxInFlight overrides the concurrent query limit (default
// 4×GOMAXPROCS). Requests arriving beyond the limit are rejected with 503;
// n <= 0 removes the limit.
func WithMaxInFlight(n int) Option {
	return func(s *Server) {
		if n <= 0 {
			s.inflight = nil
			return
		}
		s.inflight = make(chan struct{}, n)
	}
}

// New returns a Server serving g as its default dataset.
func New(g *graph.Graph, opts ...Option) (*Server, error) {
	if g == nil || g.NumVertices() == 0 {
		return nil, fmt.Errorf("server: nil or empty graph")
	}
	s := &Server{
		mux:          http.NewServeMux(),
		cache:        newResultCache(256),
		maxK:         10000,
		queryTimeout: 30 * time.Second,
		inflight:     make(chan struct{}, 4*runtime.GOMAXPROCS(0)),
	}
	s.registry.datasets = make(map[string]*dataset)
	for _, o := range opts {
		o(s)
	}
	if err := s.AddDataset(DefaultDataset, DatasetConfig{Graph: g, Index: s.registry.defaultIndex}); err != nil {
		return nil, err
	}
	for _, p := range s.pendingDatasets {
		if err := s.AddDataset(p.name, p.cfg); err != nil {
			return nil, err
		}
	}
	s.pendingDatasets = nil
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/topk", s.handleTopK)
	s.mux.HandleFunc("POST /v1/query", s.handleQuery)
	s.mux.HandleFunc("GET "+cluster.StreamPath, s.handleShardStream)
	s.mux.HandleFunc("GET /v1/datasets", s.handleListDatasets)
	s.mux.HandleFunc("POST /v1/admin/datasets", s.handleLoadDataset)
	s.mux.HandleFunc("DELETE /v1/admin/datasets/{name}", s.handleUnloadDataset)
	s.mux.HandleFunc("POST /v1/admin/datasets/{name}/updates", s.handleApplyUpdates)
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// handleHealthz answers liveness (status, always "ok" when the process
// can serve HTTP) plus a readiness dimension: ready is false while any
// dataset is warming (index maintenance mid-rebuild), letting a cluster
// prober distinguish "up" from "up but degraded" without a separate
// endpoint. Warming dataset names are listed so operators can see what
// the replica is waiting on.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	infos := s.Datasets()
	var warming []string
	for _, info := range infos {
		if !info.Ready {
			warming = append(warming, info.Name)
		}
	}
	resp := map[string]any{
		"status":   "ok",
		"ready":    len(infos) > 0 && len(warming) == 0,
		"datasets": len(infos),
	}
	if len(warming) > 0 {
		resp["warming"] = warming
	}
	writeJSON(w, http.StatusOK, resp)
}

// statsResponse is the /v1/stats payload: the default dataset's shape (for
// compatibility with single-dataset deployments), the serving counters
// since startup, the cache counters, and one entry per loaded dataset.
type statsResponse struct {
	Vertices  int     `json:"vertices"`
	Edges     int64   `json:"edges"`
	MaxDegree int32   `json:"max_degree"`
	AvgDegree float64 `json:"avg_degree"`

	Queries     int64   `json:"queries"`
	InFlight    int64   `json:"in_flight"`
	Rejected    int64   `json:"rejected"`
	Errors      int64   `json:"errors"`
	Canceled    int64   `json:"canceled"`
	AvgLatency  float64 `json:"avg_latency_ms"`
	MaxInFlight int     `json:"max_in_flight"`

	// Serving-path split: IndexQueries were answered from a prebuilt
	// index, LocalQueries by online search (LocalSearch or truss),
	// CacheHits straight from the result cache.
	IndexLoaded   bool  `json:"index_loaded"`
	IndexGammaMax int32 `json:"index_gamma_max,omitempty"`
	IndexQueries  int64 `json:"index_queries"`
	LocalQueries  int64 `json:"local_queries"`

	// Index-maintenance state of the default dataset: IndexState is
	// "attached", "rebuilding", or "dropped" (empty when it never had an
	// index); IndexRebuilds and IndexDeltaRepairs count background
	// rebuilds and synchronous delta repairs attached since load.
	IndexState        string `json:"index_state,omitempty"`
	IndexRebuilds     int64  `json:"index_rebuilds,omitempty"`
	IndexDeltaRepairs int64  `json:"index_delta_repairs,omitempty"`

	// ShardStreams counts /v1/shard/stream requests served to cluster
	// coordinators.
	ShardStreams int64 `json:"shard_streams"`

	// DSL batch counters: DSLQueries admitted /v1/query batches, PlanNodes
	// the plan nodes those batches expanded to, CSEHits the nodes served
	// by work shared with another node (same batch or a concurrent one)
	// instead of a fresh decomposition.
	DSLQueries int64 `json:"dsl_queries"`
	PlanNodes  int64 `json:"plan_nodes"`
	CSEHits    int64 `json:"cse_hits"`

	// Mutable-dataset counters for the default dataset: the snapshot epoch
	// and the total effective edge mutations applied since load (per-
	// dataset figures live in Datasets).
	SnapshotEpoch  uint64 `json:"snapshot_epoch,omitempty"`
	UpdatesApplied int64  `json:"updates_applied,omitempty"`

	CacheCapacity int   `json:"cache_capacity"`
	CacheEntries  int   `json:"cache_entries"`
	CacheHits     int64 `json:"cache_hits"`
	CacheMisses   int64 `json:"cache_misses"`

	Datasets []DatasetInfo `json:"datasets"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	resp := statsResponse{
		Queries:     s.metrics.queries.Load(),
		InFlight:    s.metrics.inFlight.Load(),
		Rejected:    s.metrics.rejected.Load(),
		Errors:      s.metrics.errors.Load(),
		Canceled:    s.metrics.canceled.Load(),
		MaxInFlight: cap(s.inflight),

		IndexQueries: s.metrics.indexServed.Load(),
		LocalQueries: s.metrics.localServed.Load(),
		ShardStreams: s.metrics.shardStreams.Load(),
		DSLQueries:   s.metrics.dslQueries.Load(),
		PlanNodes:    s.metrics.planNodes.Load(),
		CSEHits:      s.metrics.cseHits.Load(),
	}
	if ds := s.registry.lookup(DefaultDataset); ds != nil {
		if g := ds.st.Graph(); g != nil {
			st := g.Statistics()
			resp.MaxDegree = st.MaxDegree
			resp.AvgDegree = st.AvgDegree
		}
		resp.Vertices = ds.st.NumVertices()
		resp.Edges = ds.st.NumEdges()
		if ix := ds.indexAt(ds.epoch()); ix != nil {
			resp.IndexLoaded = true
			resp.IndexGammaMax = ix.GammaMax()
		}
		resp.IndexState = ds.indexState()
		if ds.maint != nil {
			resp.IndexRebuilds = ds.maint.rebuilds.Load()
			resp.IndexDeltaRepairs = ds.maint.deltaRepairs.Load()
		}
		if ms := store.AsMutable(ds.st); ms != nil {
			resp.SnapshotEpoch = ms.SnapshotEpoch()
			resp.UpdatesApplied = ms.UpdatesApplied()
		}
	}
	if s.cache != nil {
		resp.CacheCapacity = s.cache.capacity
		resp.CacheEntries = s.cache.len()
		resp.CacheHits = s.cache.hits.Load()
		resp.CacheMisses = s.cache.misses.Load()
	}
	resp.Datasets = s.Datasets()
	if resp.Queries > 0 {
		resp.AvgLatency = float64(s.metrics.durationUS.Load()) / 1000 / float64(resp.Queries)
	}
	writeJSON(w, http.StatusOK, resp)
}

// communityJSON is one community of a /v1/topk response. It is the cluster
// wire shape: single-node responses, shard stream data lines, and merged
// coordinator responses all marshal the same struct, so equal communities
// are byte-equal across the three.
type communityJSON = cluster.Community

// topKResponse is the /v1/topk payload.
type topKResponse struct {
	K           int             `json:"k"`
	Gamma       int             `json:"gamma"`
	Mode        string          `json:"mode"`
	Communities []communityJSON `json:"communities"`
	ElapsedMS   float64         `json:"elapsed_ms"`
	// AccessedVertices reports how much of the graph the local search
	// touched.
	AccessedVertices int `json:"accessed_vertices,omitempty"`
	// Cached marks responses served from the result cache.
	Cached bool `json:"cached,omitempty"`
}

type httpError struct {
	code int
	msg  string
}

func (e *httpError) Error() string { return e.msg }

func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) {
	// Admission control: a saturated server sheds load immediately rather
	// than queueing unbounded work behind slow searches.
	if s.inflight != nil {
		select {
		case s.inflight <- struct{}{}:
			defer func() { <-s.inflight }()
		default:
			s.metrics.rejected.Add(1)
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": "server saturated, retry later"})
			return
		}
	}
	s.metrics.queries.Add(1)
	s.metrics.inFlight.Add(1)
	defer s.metrics.inFlight.Add(-1)

	ctx := r.Context()
	if s.queryTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.queryTimeout)
		defer cancel()
	}

	start := time.Now()
	resp, err := s.topK(ctx, r)
	s.metrics.durationUS.Add(time.Since(start).Microseconds())
	if err != nil {
		writeJSON(w, s.classify(err), map[string]string{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// classify maps a query error to an HTTP status, counting it in the
// serving metrics. Context errors mean the search was stopped mid-query:
// a hit deadline is a 504, a client disconnect a 499 (the nginx
// convention; the client is gone, the code is for the counters and logs).
func (s *Server) classify(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		s.metrics.canceled.Add(1)
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		s.metrics.canceled.Add(1)
		return 499
	}
	s.metrics.errors.Add(1)
	if he := (*httpError)(nil); errors.As(err, &he) {
		return he.code
	}
	return http.StatusInternalServerError
}

func (s *Server) topK(ctx context.Context, r *http.Request) (*topKResponse, error) {
	q := r.URL.Query()
	p, err := parseQueryParams(q, s.maxK)
	if err != nil {
		return nil, err
	}

	name := q.Get("dataset")
	if name == "" {
		name = DefaultDataset
	}
	// Resolve and pin in one step: an admin unload concurrent with this
	// request only releases the backend once we are done.
	ds := s.registry.acquireLookup(name)
	if ds == nil {
		return nil, &httpError{http.StatusNotFound, fmt.Sprintf("dataset %q is not loaded", name)}
	}
	defer ds.release()
	ds.queries.Add(1)

	// The epoch is read once, before the query executes, and keys both the
	// cache entry and executeTopK's index-validity check: a concurrent
	// update can at worst leave an entry keyed under an epoch that no future
	// request carries (monotonic, so it just ages out of the LRU) — never
	// a stale result served as current.
	epoch := ds.epoch()
	key := cacheKey{dataset: name, gen: ds.gen, epoch: epoch, k: p.K, gamma: int(p.Gamma), mode: p.Mode}
	if s.cache != nil {
		if hit, ok := s.cache.get(key); ok { // hit/miss counters live on the cache
			resp := *hit // shallow copy; communities are immutable once built
			resp.Cached = true
			return &resp, nil
		}
	}

	start := time.Now()
	er, err := s.executeTopK(ctx, ds, p, epoch)
	if err != nil {
		return nil, err
	}
	resp := &topKResponse{
		K: p.K, Gamma: int(p.Gamma), Mode: p.Mode,
		Communities:      er.Communities,
		AccessedVertices: er.Accessed,
		ElapsedMS:        float64(time.Since(start)) / float64(time.Millisecond),
	}
	if s.cache != nil {
		cached := *resp
		cached.ElapsedMS = 0
		s.cache.put(key, &cached)
	}
	return resp, nil
}

// queryError passes context errors through for classify and wraps anything
// else as a bad request (the search layer only fails on invalid queries).
func queryError(err error) error {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	return &httpError{http.StatusBadRequest, err.Error()}
}

// Datasets returns a snapshot of the loaded datasets, sorted by name.
func (s *Server) Datasets() []DatasetInfo {
	s.registry.mu.RLock()
	out := make([]DatasetInfo, 0, len(s.registry.datasets))
	for _, ds := range s.registry.datasets {
		out = append(out, ds.info())
	}
	s.registry.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func (s *Server) handleListDatasets(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"datasets": s.Datasets()})
}

func intParam(raw string, def int) (int, error) {
	if raw == "" {
		return def, nil
	}
	return strconv.Atoi(raw)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}
