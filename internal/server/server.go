// Package server exposes top-k influential community queries over HTTP:
// the serving layer a downstream system would put in front of the library.
// One immutable graph is loaded at startup; queries run concurrently, each
// with its own search engine (the same isolation TopKBatch relies on).
//
// Endpoints:
//
//	GET /v1/stats                       graph statistics
//	GET /v1/topk?k=10&gamma=5           top-k influential γ-communities
//	GET /v1/topk?...&noncontainment=1   non-containment variant (§5.1)
//	GET /v1/topk?...&truss=1            γ-truss variant (§5.2)
//
// Responses are JSON. Community members are reported as the graph's
// original vertex IDs (plus labels when the graph has them).
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"influcomm/internal/core"
	"influcomm/internal/graph"
	"influcomm/internal/truss"
)

// Server answers community-search queries over one graph. Create with New;
// it is safe for concurrent use.
type Server struct {
	g   *graph.Graph
	mux *http.ServeMux

	// maxK bounds per-request work; requests beyond it are rejected.
	maxK int
}

// Option configures a Server.
type Option func(*Server)

// WithMaxK overrides the per-request k limit (default 10000).
func WithMaxK(maxK int) Option {
	return func(s *Server) { s.maxK = maxK }
}

// New returns a Server for g.
func New(g *graph.Graph, opts ...Option) (*Server, error) {
	if g == nil || g.NumVertices() == 0 {
		return nil, fmt.Errorf("server: nil or empty graph")
	}
	s := &Server{g: g, mux: http.NewServeMux(), maxK: 10000}
	for _, o := range opts {
		o(s)
	}
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/topk", s.handleTopK)
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// statsResponse is the /v1/stats payload.
type statsResponse struct {
	Vertices  int     `json:"vertices"`
	Edges     int64   `json:"edges"`
	MaxDegree int32   `json:"max_degree"`
	AvgDegree float64 `json:"avg_degree"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.g.Statistics()
	writeJSON(w, http.StatusOK, statsResponse{
		Vertices:  st.Vertices,
		Edges:     st.Edges,
		MaxDegree: st.MaxDegree,
		AvgDegree: st.AvgDegree,
	})
}

// communityJSON is one community of a /v1/topk response.
type communityJSON struct {
	Influence float64  `json:"influence"`
	Size      int      `json:"size"`
	Keynode   int32    `json:"keynode"`
	Members   []int32  `json:"members"`
	Labels    []string `json:"labels,omitempty"`
}

// topKResponse is the /v1/topk payload.
type topKResponse struct {
	K           int             `json:"k"`
	Gamma       int             `json:"gamma"`
	Mode        string          `json:"mode"`
	Communities []communityJSON `json:"communities"`
	ElapsedMS   float64         `json:"elapsed_ms"`
	// AccessedVertices reports how much of the graph the local search
	// touched (0 for the truss path, which reports via its own stats).
	AccessedVertices int `json:"accessed_vertices,omitempty"`
}

type httpError struct {
	code int
	msg  string
}

func (e *httpError) Error() string { return e.msg }

func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) {
	resp, err := s.topK(r)
	if err != nil {
		he, ok := err.(*httpError)
		if !ok {
			he = &httpError{http.StatusInternalServerError, err.Error()}
		}
		writeJSON(w, he.code, map[string]string{"error": he.msg})
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) topK(r *http.Request) (*topKResponse, error) {
	q := r.URL.Query()
	k, err := intParam(q.Get("k"), 10)
	if err != nil {
		return nil, &httpError{http.StatusBadRequest, "bad k: " + err.Error()}
	}
	gamma, err := intParam(q.Get("gamma"), 5)
	if err != nil {
		return nil, &httpError{http.StatusBadRequest, "bad gamma: " + err.Error()}
	}
	if k < 1 || k > s.maxK {
		return nil, &httpError{http.StatusBadRequest, fmt.Sprintf("k must be in [1, %d]", s.maxK)}
	}
	if gamma < 1 {
		return nil, &httpError{http.StatusBadRequest, "gamma must be >= 1"}
	}
	useTruss := q.Get("truss") == "1"
	nonContain := q.Get("noncontainment") == "1"
	if useTruss && nonContain {
		return nil, &httpError{http.StatusBadRequest, "truss and noncontainment are mutually exclusive"}
	}

	start := time.Now()
	resp := &topKResponse{K: k, Gamma: gamma, Mode: "core"}
	switch {
	case useTruss:
		resp.Mode = "truss"
		if gamma < 2 {
			return nil, &httpError{http.StatusBadRequest, "truss queries need gamma >= 2"}
		}
		res, err := truss.LocalSearch(truss.NewIndex(s.g), k, int32(gamma))
		if err != nil {
			return nil, &httpError{http.StatusBadRequest, err.Error()}
		}
		for _, c := range res.Communities {
			resp.Communities = append(resp.Communities, s.render(c.Influence(), c.Keynode(), c.Vertices()))
		}
		resp.AccessedVertices = res.Stats.FinalPrefix
	default:
		if nonContain {
			resp.Mode = "noncontainment"
		}
		res, err := core.TopK(s.g, k, int32(gamma), core.Options{NonContainment: nonContain})
		if err != nil {
			return nil, &httpError{http.StatusBadRequest, err.Error()}
		}
		for _, c := range res.Communities {
			resp.Communities = append(resp.Communities, s.render(c.Influence(), c.Keynode(), c.Vertices()))
		}
		resp.AccessedVertices = res.Stats.FinalPrefix
	}
	resp.ElapsedMS = float64(time.Since(start)) / float64(time.Millisecond)
	return resp, nil
}

func (s *Server) render(influence float64, keynode int32, members []int32) communityJSON {
	c := communityJSON{
		Influence: influence,
		Size:      len(members),
		Keynode:   s.g.OrigID(keynode),
	}
	for _, v := range members {
		c.Members = append(c.Members, s.g.OrigID(v))
		if s.g.HasLabels() {
			c.Labels = append(c.Labels, s.g.Label(v))
		}
	}
	return c
}

func intParam(raw string, def int) (int, error) {
	if raw == "" {
		return def, nil
	}
	return strconv.Atoi(raw)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}
