// Package server exposes top-k influential community queries over HTTP:
// the serving layer a downstream system would put in front of the library.
// One immutable graph is loaded at startup; queries run concurrently on
// pooled search engines, each request under its own context with a
// per-request deadline, so steady-state queries allocate no engine state
// and abandoned requests stop searching.
//
// When a prebuilt index is attached (WithIndex), default-semantics queries
// are answered from it in output-proportional time and pooled LocalSearch
// serves the rest; /v1/stats reports the per-path split as index_queries
// vs local_queries.
//
// Endpoints:
//
//	GET /healthz                        liveness probe
//	GET /v1/stats                       graph statistics and serving counters
//	GET /v1/topk?k=10&gamma=5           top-k influential γ-communities
//	GET /v1/topk?...&noncontainment=1   non-containment variant (§5.1)
//	GET /v1/topk?...&truss=1            γ-truss variant (§5.2)
//
// Responses are JSON. Community members are reported as the graph's
// original vertex IDs (plus labels when the graph has them).
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"influcomm/internal/core"
	"influcomm/internal/graph"
	"influcomm/internal/index"
	"influcomm/internal/truss"
)

// Server answers community-search queries over one graph. Create with New;
// it is safe for concurrent use.
type Server struct {
	g    *graph.Graph
	mux  *http.ServeMux
	pool *core.Pool

	// index, when non-nil, answers default-semantics queries in
	// output-proportional time; LocalSearch remains the fallback for the
	// variants the index does not materialize (non-containment, truss).
	index *index.Index

	// trussIndex is built once, on the first truss query: the graph is
	// immutable, so rebuilding the O(m) index per request would be the
	// same per-query setup waste the engine pool exists to avoid, while
	// building it eagerly would tax servers that never see truss traffic.
	trussOnce  sync.Once
	trussIndex *truss.Index

	// maxK bounds per-request work; requests beyond it are rejected.
	maxK int
	// queryTimeout is the per-request search deadline; 0 disables it.
	queryTimeout time.Duration
	// inflight is the admission semaphore; nil means unlimited.
	inflight chan struct{}

	metrics metrics
}

// metrics holds the serving counters reported on /v1/stats.
type metrics struct {
	queries    atomic.Int64 // admitted /v1/topk requests
	inFlight   atomic.Int64 // currently executing queries
	rejected   atomic.Int64 // 503s from the in-flight limit
	errors     atomic.Int64 // bad requests and query failures
	canceled   atomic.Int64 // queries stopped by disconnect or deadline
	durationUS atomic.Int64 // cumulative query time of admitted requests

	indexServed atomic.Int64 // queries answered from the prebuilt index
	localServed atomic.Int64 // queries answered by online LocalSearch/truss
}

// Option configures a Server.
type Option func(*Server)

// WithMaxK overrides the per-request k limit (default 10000).
func WithMaxK(maxK int) Option {
	return func(s *Server) { s.maxK = maxK }
}

// WithQueryTimeout overrides the per-request search deadline (default 30s);
// d <= 0 disables the deadline.
func WithQueryTimeout(d time.Duration) Option {
	return func(s *Server) { s.queryTimeout = d }
}

// WithIndex attaches a prebuilt IndexAll structure: default-semantics
// /v1/topk queries are then answered from the index in output-proportional
// time, with pooled LocalSearch remaining the fallback for non-containment
// and truss queries. The index must have been built on (or loaded against)
// exactly the graph the server serves; New rejects any other index.
func WithIndex(ix *index.Index) Option {
	return func(s *Server) { s.index = ix }
}

// WithMaxInFlight overrides the concurrent query limit (default
// 4×GOMAXPROCS). Requests arriving beyond the limit are rejected with 503;
// n <= 0 removes the limit.
func WithMaxInFlight(n int) Option {
	return func(s *Server) {
		if n <= 0 {
			s.inflight = nil
			return
		}
		s.inflight = make(chan struct{}, n)
	}
}

// New returns a Server for g.
func New(g *graph.Graph, opts ...Option) (*Server, error) {
	if g == nil || g.NumVertices() == 0 {
		return nil, fmt.Errorf("server: nil or empty graph")
	}
	s := &Server{
		g:            g,
		mux:          http.NewServeMux(),
		pool:         core.NewPool(g),
		maxK:         10000,
		queryTimeout: 30 * time.Second,
		inflight:     make(chan struct{}, 4*runtime.GOMAXPROCS(0)),
	}
	for _, o := range opts {
		o(s)
	}
	if s.index != nil && s.index.Graph() != g {
		return nil, fmt.Errorf("server: index is bound to a different graph than the one being served (%d vs %d vertices); rebuild or reload it against this graph",
			s.index.Graph().NumVertices(), g.NumVertices())
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/topk", s.handleTopK)
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// statsResponse is the /v1/stats payload: static graph shape plus the
// serving counters since startup.
type statsResponse struct {
	Vertices  int     `json:"vertices"`
	Edges     int64   `json:"edges"`
	MaxDegree int32   `json:"max_degree"`
	AvgDegree float64 `json:"avg_degree"`

	Queries     int64   `json:"queries"`
	InFlight    int64   `json:"in_flight"`
	Rejected    int64   `json:"rejected"`
	Errors      int64   `json:"errors"`
	Canceled    int64   `json:"canceled"`
	AvgLatency  float64 `json:"avg_latency_ms"`
	MaxInFlight int     `json:"max_in_flight"`

	// Serving-path split: IndexQueries were answered from the prebuilt
	// index, LocalQueries by online search (LocalSearch or truss).
	IndexLoaded   bool  `json:"index_loaded"`
	IndexGammaMax int32 `json:"index_gamma_max,omitempty"`
	IndexQueries  int64 `json:"index_queries"`
	LocalQueries  int64 `json:"local_queries"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	st := s.g.Statistics()
	resp := statsResponse{
		Vertices:    st.Vertices,
		Edges:       st.Edges,
		MaxDegree:   st.MaxDegree,
		AvgDegree:   st.AvgDegree,
		Queries:     s.metrics.queries.Load(),
		InFlight:    s.metrics.inFlight.Load(),
		Rejected:    s.metrics.rejected.Load(),
		Errors:      s.metrics.errors.Load(),
		Canceled:    s.metrics.canceled.Load(),
		MaxInFlight: cap(s.inflight),

		IndexLoaded:  s.index != nil,
		IndexQueries: s.metrics.indexServed.Load(),
		LocalQueries: s.metrics.localServed.Load(),
	}
	if s.index != nil {
		resp.IndexGammaMax = s.index.GammaMax()
	}
	if resp.Queries > 0 {
		resp.AvgLatency = float64(s.metrics.durationUS.Load()) / 1000 / float64(resp.Queries)
	}
	writeJSON(w, http.StatusOK, resp)
}

// communityJSON is one community of a /v1/topk response.
type communityJSON struct {
	Influence float64  `json:"influence"`
	Size      int      `json:"size"`
	Keynode   int32    `json:"keynode"`
	Members   []int32  `json:"members"`
	Labels    []string `json:"labels,omitempty"`
}

// topKResponse is the /v1/topk payload.
type topKResponse struct {
	K           int             `json:"k"`
	Gamma       int             `json:"gamma"`
	Mode        string          `json:"mode"`
	Communities []communityJSON `json:"communities"`
	ElapsedMS   float64         `json:"elapsed_ms"`
	// AccessedVertices reports how much of the graph the local search
	// touched.
	AccessedVertices int `json:"accessed_vertices,omitempty"`
}

type httpError struct {
	code int
	msg  string
}

func (e *httpError) Error() string { return e.msg }

func (s *Server) handleTopK(w http.ResponseWriter, r *http.Request) {
	// Admission control: a saturated server sheds load immediately rather
	// than queueing unbounded work behind slow searches.
	if s.inflight != nil {
		select {
		case s.inflight <- struct{}{}:
			defer func() { <-s.inflight }()
		default:
			s.metrics.rejected.Add(1)
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": "server saturated, retry later"})
			return
		}
	}
	s.metrics.queries.Add(1)
	s.metrics.inFlight.Add(1)
	defer s.metrics.inFlight.Add(-1)

	ctx := r.Context()
	if s.queryTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.queryTimeout)
		defer cancel()
	}

	start := time.Now()
	resp, err := s.topK(ctx, r)
	s.metrics.durationUS.Add(time.Since(start).Microseconds())
	if err != nil {
		writeJSON(w, s.classify(err), map[string]string{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// classify maps a query error to an HTTP status, counting it in the
// serving metrics. Context errors mean the search was stopped mid-query:
// a hit deadline is a 504, a client disconnect a 499 (the nginx
// convention; the client is gone, the code is for the counters and logs).
func (s *Server) classify(err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		s.metrics.canceled.Add(1)
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		s.metrics.canceled.Add(1)
		return 499
	}
	s.metrics.errors.Add(1)
	if he := (*httpError)(nil); errors.As(err, &he) {
		return he.code
	}
	return http.StatusInternalServerError
}

func (s *Server) topK(ctx context.Context, r *http.Request) (*topKResponse, error) {
	q := r.URL.Query()
	k, err := intParam(q.Get("k"), 10)
	if err != nil {
		return nil, &httpError{http.StatusBadRequest, "bad k: " + err.Error()}
	}
	gamma, err := intParam(q.Get("gamma"), 5)
	if err != nil {
		return nil, &httpError{http.StatusBadRequest, "bad gamma: " + err.Error()}
	}
	if k < 1 || k > s.maxK {
		return nil, &httpError{http.StatusBadRequest, fmt.Sprintf("k must be in [1, %d]", s.maxK)}
	}
	if gamma < 1 {
		return nil, &httpError{http.StatusBadRequest, "gamma must be >= 1"}
	}
	useTruss := q.Get("truss") == "1"
	nonContain := q.Get("noncontainment") == "1"
	if useTruss && nonContain {
		return nil, &httpError{http.StatusBadRequest, "truss and noncontainment are mutually exclusive"}
	}

	start := time.Now()
	resp := &topKResponse{K: k, Gamma: gamma, Mode: "core"}
	switch {
	case useTruss:
		resp.Mode = "truss"
		if gamma < 2 {
			return nil, &httpError{http.StatusBadRequest, "truss queries need gamma >= 2"}
		}
		s.trussOnce.Do(func() { s.trussIndex = truss.NewIndex(s.g) })
		res, err := truss.LocalSearchCtx(ctx, s.trussIndex, k, int32(gamma))
		if err != nil {
			return nil, queryError(err)
		}
		s.metrics.localServed.Add(1)
		for _, c := range res.Communities {
			resp.Communities = append(resp.Communities, s.render(c.Influence(), c.Keynode(), c.Vertices()))
		}
		resp.AccessedVertices = res.Stats.FinalPrefix
	case s.index != nil && !nonContain:
		// Index-first path: the materialized decomposition answers the
		// default semantics in output-proportional time. AccessedVertices
		// stays 0 — the point of the index is that no part of the graph
		// outside the reported communities is touched.
		comms, err := s.index.TopK(k, int32(gamma))
		if err != nil {
			return nil, queryError(err)
		}
		s.metrics.indexServed.Add(1)
		for _, c := range comms {
			resp.Communities = append(resp.Communities, s.render(c.Influence(), c.Keynode(), c.Vertices()))
		}
	default:
		if nonContain {
			resp.Mode = "noncontainment"
		}
		res, err := s.pool.TopK(ctx, k, int32(gamma), core.Options{NonContainment: nonContain})
		if err != nil {
			return nil, queryError(err)
		}
		s.metrics.localServed.Add(1)
		for _, c := range res.Communities {
			resp.Communities = append(resp.Communities, s.render(c.Influence(), c.Keynode(), c.Vertices()))
		}
		resp.AccessedVertices = res.Stats.FinalPrefix
	}
	resp.ElapsedMS = float64(time.Since(start)) / float64(time.Millisecond)
	return resp, nil
}

// queryError passes context errors through for classify and wraps anything
// else as a bad request (the search layer only fails on invalid queries).
func queryError(err error) error {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	return &httpError{http.StatusBadRequest, err.Error()}
}

func (s *Server) render(influence float64, keynode int32, members []int32) communityJSON {
	c := communityJSON{
		Influence: influence,
		Size:      len(members),
		Keynode:   s.g.OrigID(keynode),
	}
	for _, v := range members {
		c.Members = append(c.Members, s.g.OrigID(v))
		if s.g.HasLabels() {
			c.Labels = append(c.Labels, s.g.Label(v))
		}
	}
	return c
}

func intParam(raw string, def int) (int, error) {
	if raw == "" {
		return def, nil
	}
	return strconv.Atoi(raw)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}
