package server

import (
	"container/list"
	"sync"
	"sync/atomic"
)

// cacheKey identifies one query result. gen is the dataset's registration
// generation, so results of an unloaded dataset can never serve a later
// dataset that reuses its name, even if the purge raced a concurrent put.
// epoch is the dataset's snapshot epoch (always 0 for immutable backends):
// applying edge updates bumps it, so entries computed on an earlier
// snapshot silently stop matching — updates invalidate by key, not by
// purge, and a purge racing a concurrent put cannot resurrect stale data.
type cacheKey struct {
	dataset string
	gen     uint64
	epoch   uint64
	k       int
	gamma   int
	mode    string
}

// resultCache is a bounded LRU over successful /v1/topk responses. The
// graphs behind a server are immutable while loaded, so an entry can only
// go stale by its dataset being unloaded — which purges it. Hit and miss
// counters are reported on /v1/stats.
type resultCache struct {
	capacity int

	mu    sync.Mutex
	ll    *list.List // front = most recently used
	items map[cacheKey]*list.Element

	hits   atomic.Int64
	misses atomic.Int64
}

type cacheEntry struct {
	key  cacheKey
	resp *topKResponse
}

func newResultCache(capacity int) *resultCache {
	return &resultCache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[cacheKey]*list.Element),
	}
}

// get returns the cached response for key, updating recency and counters.
func (c *resultCache) get(key cacheKey) (*topKResponse, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).resp, true
}

// put inserts (or refreshes) a response, evicting the least recently used
// entry beyond capacity.
func (c *resultCache) put(key cacheKey, resp *topKResponse) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).resp = resp
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, resp: resp})
	for c.ll.Len() > c.capacity {
		last := c.ll.Back()
		c.ll.Remove(last)
		delete(c.items, last.Value.(*cacheEntry).key)
	}
}

// invalidateDataset drops every entry belonging to the named dataset.
func (c *resultCache) invalidateDataset(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for key, el := range c.items {
		if key.dataset == name {
			c.ll.Remove(el)
			delete(c.items, key)
		}
	}
}

// len returns the current entry count.
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
