package server

import (
	"context"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"influcomm/internal/index"
	"influcomm/internal/store"
)

// This file is the index-maintenance pipeline: the machinery that keeps a
// mutable dataset serving index-first under continuous ingest instead of
// degrading permanently to LocalSearch after the first effective update.
//
// Two paths maintain the index, both deterministic and byte-identical (in
// serialized form) to a fresh build on the post-update snapshot:
//
//   - Fast path, synchronous: when the update batch's delta cut leaves
//     only a small suffix of the weight ranking touched, the store's
//     OnApply hook repairs the attached index in place via
//     Index.ApplyDelta — recompute the at-or-above-cut head of every γ
//     decomposition, splice the unchanged below-cut tail — and attaches
//     the result before the update request is even acknowledged.
//
//   - General path, asynchronous: a per-dataset worker rebuilds from
//     scratch against the snapshot current when the build starts, tagged
//     with that snapshot's epoch, and attaches only if the store is still
//     at that epoch; an update landing mid-build makes the finished build
//     stale, so it is discarded and the worker immediately rebuilds
//     against the newer snapshot. Queries keep falling back to
//     LocalSearch while no current index is attached, so correctness
//     never depends on the pipeline's progress.

// Maintenance outcomes reported by the updates endpoint ("index" field).
const (
	outcomeRepaired   = "repaired"   // delta repair attached synchronously
	outcomeRebuilding = "rebuilding" // background rebuild pending or running
	outcomeDropped    = "dropped"    // no maintenance: index gone until reloaded
)

// attachedIndex pairs a prebuilt index with the snapshot epoch it
// describes. The pair is published atomically: tagging the epoch inside
// the same pointer is what lets a query decide index validity with one
// load, and what lets the rebuild worker attach a finished build with no
// window in which a stale index could serve a newer epoch.
type attachedIndex struct {
	ix    *index.Index
	epoch uint64
}

// maintainerConfig tunes one dataset's maintenance pipeline.
type maintainerConfig struct {
	// workers bounds build/repair parallelism (index.BuildContext
	// semantics; 0 = GOMAXPROCS with the small-work sequential escape).
	workers int
	// debounce is how long the rebuild worker waits after a kick before
	// building, so a burst of updates costs one rebuild, not one each.
	debounce time.Duration
	// repairFraction overrides the synchronous-repair gate (0 keeps
	// defaultRepairFraction); see maintainer.repairFraction.
	repairFraction float64
}

const (
	defaultReindexDebounce = 100 * time.Millisecond
	defaultRepairFraction  = 0.25
)

// maintainer keeps one mutable dataset's index current. It observes every
// effective update through the store's OnApply hook (synchronously, under
// the store's writer lock) and owns the dataset's background rebuild
// worker. Created by addDataset for datasets with reindex enabled;
// stopped by RemoveDataset and Server.Close.
type maintainer struct {
	ds  *dataset
	ms  store.MutableStore
	cfg maintainerConfig

	// mu guards minCut and the per-epoch outcome, and makes the rebuild
	// worker's stale-check-then-attach atomic against the OnApply hook.
	// Lock order: the hook holds the store's writer lock when it takes mu;
	// nothing holding mu ever takes a store or registry lock.
	mu sync.Mutex
	// minCut is the smallest delta cut observed since the attached index's
	// epoch: the combined delta from that epoch to now leaves every prefix
	// below minCut unchanged, so one repair with minCut absorbs any number
	// of accumulated batches. Reset to n on every attach.
	minCut int
	// lastOutcome and lastEpoch report what maintenance did about the
	// batch that published lastEpoch; the updates handler reads them to
	// answer "repaired or rebuilding?" for the batch it just applied.
	lastOutcome string
	lastEpoch   uint64

	// kick wakes the rebuild worker; buffered so the hook never blocks on
	// a worker that is mid-build (the pending kick is consumed after).
	kick   chan struct{}
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	rebuilds     atomic.Int64 // background builds attached
	deltaRepairs atomic.Int64 // synchronous repairs attached
	discarded    atomic.Int64 // finished builds dropped as stale

	// repairFraction is the largest touched-suffix fraction (n-cut)/n the
	// synchronous fast path accepts; larger deltas go to the background
	// rebuild. Stored as math.Float64bits; atomic so white-box tests can
	// steer the path choice while the pipeline runs.
	repairFraction atomic.Uint64

	// testBuildStarted, when set by white-box tests, observes every
	// background build attempt with the epoch it builds against; atomic so
	// tests can install it while the worker runs.
	testBuildStarted atomic.Pointer[func(epoch uint64)]
}

func newMaintainer(ds *dataset, ms store.MutableStore, cfg maintainerConfig) *maintainer {
	if cfg.debounce <= 0 {
		cfg.debounce = defaultReindexDebounce
	}
	if cfg.repairFraction <= 0 {
		cfg.repairFraction = defaultRepairFraction
	}
	m := &maintainer{ds: ds, ms: ms, cfg: cfg, kick: make(chan struct{}, 1)}
	m.repairFraction.Store(math.Float64bits(cfg.repairFraction))
	m.ctx, m.cancel = context.WithCancel(context.Background())
	m.minCut = ms.NumVertices()
	return m
}

// start registers the update hook and launches the rebuild worker. A
// dataset loaded without an index gets an immediate kick, so auto-reindex
// also bootstraps the first index — including after a WAL crash-replay,
// where Open replays every logged batch before the hook exists and the
// reopened dataset triggers exactly one rebuild, not one per batch.
func (m *maintainer) start() {
	m.ms.OnApply(m.onUpdate)
	m.wg.Add(1)
	go m.run()
	if m.ds.indexAt(m.ms.SnapshotEpoch()) == nil {
		m.kickWorker()
	}
}

// stop cancels any in-flight build or repair, waits for the worker to
// drain, and unregisters the hook (which waits out a hook invocation in
// flight on the store's writer lock).
func (m *maintainer) stop() {
	m.cancel()
	m.wg.Wait()
	m.ms.OnApply(nil)
}

func (m *maintainer) kickWorker() {
	select {
	case m.kick <- struct{}{}:
	default: // a kick is already pending
	}
}

// onUpdate observes one effective batch. It runs under the store's writer
// lock, after the new snapshot is published and before the update request
// is acknowledged — so the snapshot read here is exactly the one the
// event describes, no further batch can land until this returns, and a
// successful repair means the response can truthfully say "repaired".
func (m *maintainer) onUpdate(ev store.UpdateEvent) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if ev.Cut < m.minCut {
		m.minCut = ev.Cut
	}
	if at := m.ds.attached.Load(); at != nil {
		g, epoch := m.ms.Snapshot()
		n := g.NumVertices()
		if repairEligible(n, m.minCut, math.Float64frombits(m.repairFraction.Load())) {
			// The attached index may be several epochs behind (a stale
			// build can attach under its own older epoch tag); minCut
			// accumulates across exactly those epochs, so the repair below
			// is valid from whatever epoch the attached index describes.
			nix, err := at.ix.ApplyDeltaContext(m.ctx, g, m.minCut, m.cfg.workers)
			if err == nil {
				m.ds.attached.Store(&attachedIndex{ix: nix, epoch: epoch})
				m.minCut = n
				m.deltaRepairs.Add(1)
				m.lastOutcome, m.lastEpoch = outcomeRepaired, ev.Epoch
				return
			}
			// Only cancellation fails a repair (shutdown in progress); the
			// background path inherits the same cancelled context and will
			// exit, leaving queries on LocalSearch — the safe floor.
		}
	}
	m.lastOutcome, m.lastEpoch = outcomeRebuilding, ev.Epoch
	m.kickWorker()
}

// repairEligible is the synchronous fast-path gate: a combined delta
// touching only the rank suffix at or above minCut qualifies when that
// suffix, n-minCut vertices, is at most frac of the graph. Above it a
// repair recomputes most of every decomposition anyway, so the work moves
// to the background rebuild and queries stay on the LocalSearch fallback
// meanwhile.
func repairEligible(n, minCut int, frac float64) bool {
	return float64(n-minCut) <= frac*float64(n)
}

// outcomeFor reports what maintenance did about the batch that published
// epoch. A later batch may have superseded it; its outcome then covers
// this batch too (a repair or build at a later epoch absorbs every
// earlier one).
func (m *maintainer) outcomeFor(epoch uint64) string {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.lastEpoch >= epoch {
		return m.lastOutcome
	}
	return outcomeRebuilding
}

// run is the background rebuild worker: debounce a kick, then rebuild
// against the current snapshot until a build attaches — every build that
// finishes against an already-superseded epoch is discarded and retried
// against the newer snapshot, never attached.
func (m *maintainer) run() {
	defer m.wg.Done()
	timer := time.NewTimer(0)
	if !timer.Stop() {
		<-timer.C
	}
	for {
		select {
		case <-m.ctx.Done():
			return
		case <-m.kick:
		}
		timer.Reset(m.cfg.debounce)
		select {
		case <-m.ctx.Done():
			return
		case <-timer.C:
		}
		for {
			g, epoch := m.ms.Snapshot()
			if m.ds.indexAt(epoch) != nil {
				break // a synchronous repair already caught up
			}
			if f := m.testBuildStarted.Load(); f != nil {
				(*f)(epoch)
			}
			ix, err := index.BuildContext(m.ctx, g, m.cfg.workers)
			if err != nil {
				return // only a cancelled context fails a build: shutdown
			}
			m.mu.Lock()
			if m.ms.SnapshotEpoch() == epoch {
				m.ds.attached.Store(&attachedIndex{ix: ix, epoch: epoch})
				m.minCut = g.NumVertices()
				m.mu.Unlock()
				m.rebuilds.Add(1)
				break
			}
			m.mu.Unlock()
			// An update landed mid-build: the finished index describes a
			// snapshot no query will ever ask for again. Drop it and build
			// against the snapshot that superseded it.
			m.discarded.Add(1)
		}
	}
}
