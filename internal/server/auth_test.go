package server

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"influcomm/internal/store"
)

// mutableStoreOverRankGraph serves rankGraph mutably in memory — enough
// for exercising the admin routes without touching disk.
func mutableStoreOverRankGraph(t *testing.T) (store.MutableStore, error) {
	t.Helper()
	return store.OpenMutableGraph(rankGraph(t))
}

// authServer is a tokened server with one mutable dataset, so every admin
// route — load, unload, updates — exists and is gated.
func authServer(t *testing.T) *httptest.Server {
	t.Helper()
	ms, err := mutableStoreOverRankGraph(t)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(rankGraph(t), WithAdminToken("s3cret"), WithDataset("dyn", DatasetConfig{Store: ms}))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return ts
}

func doReq(t *testing.T, method, url, body string, auth string) (int, string) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = bytes.NewBufferString(body)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if auth != "" {
		req.Header.Set("Authorization", auth)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp.StatusCode, string(b)
}

// TestAdminAuthEdgeCases exhaustively covers the token matrix PR 3 only
// happy-path tested: every admin route rejects missing, wrong, malformed,
// prefix, and wrong-scheme credentials with 401 + WWW-Authenticate, while
// accepting the exact token; non-admin routes ignore the Authorization
// header entirely — including a wrong one.
func TestAdminAuthEdgeCases(t *testing.T) {
	ts := authServer(t)
	adminCalls := []struct{ method, path, body string }{
		{http.MethodPost, "/v1/admin/datasets", `{"name":"x","path":"/nope"}`},
		{http.MethodDelete, "/v1/admin/datasets/dyn", ""},
		{http.MethodPost, "/v1/admin/datasets/dyn/updates", `{"updates":[{"u":0,"v":9}]}`},
	}
	badAuth := []struct{ name, header string }{
		{"missing token", ""},
		{"wrong token", "Bearer wrong"},
		{"empty bearer", "Bearer "},
		{"token is a prefix", "Bearer s3cre"},
		{"token has a suffix", "Bearer s3cret2"},
		{"wrong scheme", "Basic s3cret"},
		{"bare token without scheme", "s3cret"},
		{"lowercase scheme", "bearer s3cret"},
	}
	for _, call := range adminCalls {
		for _, auth := range badAuth {
			code, _ := doReq(t, call.method, ts.URL+call.path, call.body, auth.header)
			if code != http.StatusUnauthorized {
				t.Errorf("%s %s with %s: got %d, want 401", call.method, call.path, auth.name, code)
			}
		}
	}
	// The challenge header names the scheme.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/admin/datasets/dyn", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("WWW-Authenticate"); got != "Bearer" {
		t.Errorf("WWW-Authenticate = %q, want Bearer", got)
	}

	// A 401 must short-circuit before any request processing: an
	// unauthenticated updates call with a garbage body reports the auth
	// failure, not a body parse error.
	code, body := doReq(t, http.MethodPost, ts.URL+"/v1/admin/datasets/dyn/updates", `{garbage`, "")
	if code != http.StatusUnauthorized || strings.Contains(body, "body") {
		t.Errorf("auth must run before body parsing: %d %s", code, body)
	}

	// Non-admin routes stay open with a token configured, and ignore any
	// Authorization header — wrong tokens must not break queries sent by
	// clients that broadcast credentials.
	for _, path := range []string{"/healthz", "/v1/stats", "/v1/datasets", "/v1/topk?k=2&gamma=2&dataset=dyn"} {
		for _, auth := range []string{"", "Bearer wrong", "Bearer s3cret"} {
			code, body := doReq(t, http.MethodGet, ts.URL+path, "", auth)
			if code != http.StatusOK {
				t.Errorf("GET %s with auth %q: got %d (%s), want 200", path, auth, code, body)
			}
		}
	}

	// The exact token is accepted on every admin route (updates first, so
	// the dataset still exists for the unload).
	code, body = doReq(t, http.MethodPost, ts.URL+"/v1/admin/datasets/dyn/updates", `{"updates":[{"u":0,"v":9}]}`, "Bearer s3cret")
	if code != http.StatusOK {
		t.Fatalf("authenticated updates: %d %s", code, body)
	}
	code, body = doReq(t, http.MethodDelete, ts.URL+"/v1/admin/datasets/dyn", "", "Bearer s3cret")
	if code != http.StatusOK {
		t.Fatalf("authenticated unload: %d %s", code, body)
	}
}

// TestNoTokenLeavesAdminOpen pins the documented default: with no token
// configured the admin endpoints accept unauthenticated requests.
func TestNoTokenLeavesAdminOpen(t *testing.T) {
	ms, err := mutableStoreOverRankGraph(t)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(rankGraph(t), WithDataset("dyn", DatasetConfig{Store: ms}))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()
	code, body := doReq(t, http.MethodPost, ts.URL+"/v1/admin/datasets/dyn/updates", `{"updates":[{"u":0,"v":9}]}`, "")
	if code != http.StatusOK {
		t.Fatalf("open-admin updates: %d %s", code, body)
	}
}
