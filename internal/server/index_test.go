package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"influcomm/internal/index"
)

// normalizeTopK strips the per-request timing fields from a /v1/topk body
// so index-served and LocalSearch-served responses can be compared byte
// for byte: elapsed_ms is wall clock and accessed_vertices reports how
// much of the graph the *online* search touched (the index touches only
// its output, so it reports none).
func normalizeTopK(t *testing.T, body []byte) string {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("unmarshal %s: %v", body, err)
	}
	delete(m, "elapsed_ms")
	delete(m, "accessed_vertices")
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

func fetch(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// TestIndexServedMatchesLocalSearch serves the same graph twice — once
// index-first, once through pooled LocalSearch — and requires the
// responses to be byte-identical for every (k, γ) and mode, including γ
// beyond γmax and k beyond the community count.
func TestIndexServedMatchesLocalSearch(t *testing.T) {
	g := testGraph(t)
	ix, err := index.Build(g)
	if err != nil {
		t.Fatal(err)
	}
	withIx, err := New(g, WithIndex(ix))
	if err != nil {
		t.Fatal(err)
	}
	plain, err := New(g)
	if err != nil {
		t.Fatal(err)
	}
	tsIx := httptest.NewServer(withIx)
	defer tsIx.Close()
	tsPlain := httptest.NewServer(plain)
	defer tsPlain.Close()

	var queries []string
	for gamma := 1; gamma <= int(ix.GammaMax())+2; gamma++ {
		for _, k := range []int{1, 2, 5, 50} {
			queries = append(queries, fmt.Sprintf("/v1/topk?k=%d&gamma=%d", k, gamma))
			queries = append(queries, fmt.Sprintf("/v1/topk?k=%d&gamma=%d&noncontainment=1", k, gamma))
		}
	}
	queries = append(queries, "/v1/topk?k=2&gamma=3&truss=1")
	for _, q := range queries {
		codeA, bodyA := fetch(t, tsIx.URL+q)
		codeB, bodyB := fetch(t, tsPlain.URL+q)
		if codeA != codeB {
			t.Fatalf("%s: status %d with index, %d without", q, codeA, codeB)
		}
		a, b := normalizeTopK(t, bodyA), normalizeTopK(t, bodyB)
		if a != b {
			t.Fatalf("%s: responses differ\nindex: %s\nlocal: %s", q, a, b)
		}
	}
}

// TestStatsReportServingPath checks the per-path counters: default queries
// hit the index, non-containment and truss queries fall back to online
// search, and an index-less server reports index_loaded=false.
func TestStatsReportServingPath(t *testing.T) {
	g := testGraph(t)
	ix, err := index.Build(g)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(g, WithIndex(ix))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()

	for _, q := range []string{
		"/v1/topk?k=2&gamma=3",
		"/v1/topk?k=1&gamma=2",
		"/v1/topk?k=2&gamma=3&noncontainment=1",
		"/v1/topk?k=2&gamma=3&truss=1",
	} {
		if code, body := fetch(t, ts.URL+q); code != http.StatusOK {
			t.Fatalf("%s: status %d (%s)", q, code, body)
		}
	}
	var st statsResponse
	if code := getJSON(t, ts.URL+"/v1/stats", &st); code != http.StatusOK {
		t.Fatalf("stats status %d", code)
	}
	if !st.IndexLoaded {
		t.Error("index_loaded = false, want true")
	}
	if st.IndexGammaMax != ix.GammaMax() {
		t.Errorf("index_gamma_max = %d, want %d", st.IndexGammaMax, ix.GammaMax())
	}
	if st.IndexQueries != 2 {
		t.Errorf("index_queries = %d, want 2", st.IndexQueries)
	}
	if st.LocalQueries != 2 {
		t.Errorf("local_queries = %d, want 2", st.LocalQueries)
	}

	tsPlain := newTestServer(t)
	var stPlain statsResponse
	getJSON(t, tsPlain.URL+"/v1/stats", &stPlain)
	if stPlain.IndexLoaded {
		t.Error("index-less server reports index_loaded = true")
	}
}

// TestWithIndexWrongGraphRejected is the startup staleness check: an index
// bound to any other graph — even a same-shaped copy — must be rejected by
// New with a clear error, because index answers depend on the exact weight
// vector.
func TestWithIndexWrongGraphRejected(t *testing.T) {
	g := testGraph(t)
	other := testGraph(t) // equal content, different instance
	ix, err := index.Build(other)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(g, WithIndex(ix)); err == nil {
		t.Error("index built on a different graph instance: want error")
	}
}
