package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"influcomm/internal/store"
)

// postQuery POSTs a DSL batch to ts and returns the status and raw body.
func postQuery(t *testing.T, ts *httptest.Server, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, b
}

// rawQueryResponse mirrors queryResponse but keeps each node's communities
// as raw JSON, so byte-identity against /v1/topk can be asserted on the
// serialized form rather than a re-marshaled decode.
type rawQueryResponse struct {
	Query     string `json:"query"`
	Dataset   string `json:"dataset"`
	PlanNodes int    `json:"plan_nodes"`
	CSEHits   int    `json:"cse_hits"`
	Results   []struct {
		Statement string `json:"statement"`
		Nodes     []struct {
			K           int             `json:"k"`
			Gamma       int             `json:"gamma"`
			Mode        string          `json:"mode"`
			Path        string          `json:"path"`
			Shared      bool            `json:"shared"`
			Communities json.RawMessage `json:"communities"`
		} `json:"nodes"`
	} `json:"results"`
	Error string `json:"error"`
}

// topKCommunities fetches a /v1/topk answer's communities as raw JSON.
func topKCommunities(t *testing.T, ts *httptest.Server, params string) json.RawMessage {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/topk?" + params)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Communities json.RawMessage `json:"communities"`
		Error       string          `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("topk %s: status %d: %s", params, resp.StatusCode, body.Error)
	}
	return body.Communities
}

// dslBackendsServer serves the same graph from all three backends: the
// default in-memory dataset, a semi-external "se" dataset, and a mutable
// "dyn" dataset. rankGraph keeps their answers byte-comparable.
func dslBackendsServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	ms, err := store.OpenMutableGraph(rankGraph(t))
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(rankGraph(t),
		WithDataset("se", DatasetConfig{Store: edgeFileStore(t, rankGraph(t))}),
		WithDataset("dyn", DatasetConfig{Store: ms}),
	)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

// TestPlanFixedShapeByteIdentity is the DSL's core property: a query whose
// plan reduces to a fixed (k, γ, semantics) shape returns communities
// byte-identical to /v1/topk with the same shape, on every backend.
func TestPlanFixedShapeByteIdentity(t *testing.T) {
	_, ts := dslBackendsServer(t)
	shapes := []struct {
		k     int
		gamma int
		sem   string
		flag  string
	}{
		{3, 2, "core", ""},
		{5, 3, "core", ""},
		{2, 3, "noncontainment", "&noncontainment=1"},
		{3, 3, "truss", "&truss=1"},
	}
	for _, dataset := range []string{"default", "se", "dyn"} {
		for _, sh := range shapes {
			if dataset == "se" && sh.sem == "truss" {
				continue // truss needs whole-graph access
			}
			src := fmt.Sprintf("topk(k=%d, gamma=%d, semantics=%s)", sh.k, sh.gamma, sh.sem)
			code, body := postQuery(t, ts, fmt.Sprintf(`{"query":%q,"dataset":%q}`, src, dataset))
			var qr rawQueryResponse
			if err := json.Unmarshal(body, &qr); err != nil {
				t.Fatalf("%s on %s: unmarshal %s: %v", src, dataset, body, err)
			}
			if code != http.StatusOK {
				t.Fatalf("%s on %s: status %d: %s", src, dataset, code, qr.Error)
			}
			if len(qr.Results) != 1 || len(qr.Results[0].Nodes) != 1 {
				t.Fatalf("%s on %s: unexpected result shape: %s", src, dataset, body)
			}
			got := qr.Results[0].Nodes[0].Communities
			want := topKCommunities(t, ts, fmt.Sprintf("k=%d&gamma=%d&dataset=%s%s", sh.k, sh.gamma, dataset, sh.flag))
			if string(got) != string(want) {
				t.Errorf("%s on %s:\ndsl  %s\ntopk %s", src, dataset, got, want)
			}
		}
	}
}

// TestPlanBatchExpansionAndFilters covers the composite surface: γ ranges
// and semantics sets expand to one node each, filters apply per statement,
// and the echoed batch is canonical.
func TestPlanBatchExpansionAndFilters(t *testing.T) {
	_, ts := dslBackendsServer(t)
	code, body := postQuery(t, ts,
		`{"query":"topk(gamma=2..3, k=5, semantics=noncontainment+core) | influence(>=15) | limit(1); topk(k=2, gamma=2)"}`)
	var qr rawQueryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, qr.Error)
	}
	wantCanon := "topk(k=5, gamma=2..3, semantics=core+noncontainment) | influence(>=15) | limit(1); topk(k=2, gamma=2, semantics=core)"
	if qr.Query != wantCanon {
		t.Errorf("canonical echo = %q, want %q", qr.Query, wantCanon)
	}
	if qr.PlanNodes != 5 {
		t.Errorf("plan_nodes = %d, want 5 (2 gammas x 2 semantics + 1)", qr.PlanNodes)
	}
	if len(qr.Results) != 2 || len(qr.Results[0].Nodes) != 4 || len(qr.Results[1].Nodes) != 1 {
		t.Fatalf("result shape: %s", body)
	}
	for _, n := range qr.Results[0].Nodes {
		var comms []communityJSON
		if err := json.Unmarshal(n.Communities, &comms); err != nil {
			t.Fatal(err)
		}
		if len(comms) > 1 {
			t.Errorf("limit(1) violated: %d communities", len(comms))
		}
		for _, c := range comms {
			if c.Influence < 15 {
				t.Errorf("influence(>=15) violated: %v", c.Influence)
			}
		}
	}
}

// TestCSESharedDecompositionComputedOnce is the sharing property: across N
// concurrent overlapping batches, each distinct plan node is decomposed
// exactly once — strictly fewer decompositions than the same statements
// run independently — while every answer stays byte-identical to its
// fixed-shape equivalent.
func TestCSESharedDecompositionComputedOnce(t *testing.T) {
	s, ts := dslBackendsServer(t)
	ds := s.registry.acquireLookup(DefaultDataset)
	if ds == nil {
		t.Fatal("default dataset missing")
	}
	defer ds.release()

	var mu sync.Mutex
	execs := make(map[string]int)
	ds.sharer.SetExecHook(func(key string) {
		mu.Lock()
		execs[key]++
		mu.Unlock()
	})
	defer ds.sharer.SetExecHook(nil)

	// 3 plan nodes per batch (γ2 twice, γ3 once), 2 distinct keys.
	const batches = 4
	src := `{"query":"topk(k=3, gamma=2); topk(k=3, gamma=2..3) | limit(2)"}`
	bodies := make([][]byte, batches)
	var wg sync.WaitGroup
	for i := 0; i < batches; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, body := postQuery(t, ts, src)
			if code != http.StatusOK {
				t.Errorf("batch %d: status %d: %s", i, code, body)
			}
			bodies[i] = body
		}(i)
	}
	wg.Wait()

	mu.Lock()
	total := 0
	for key, n := range execs {
		total += n
		if n != 1 {
			t.Errorf("node %q decomposed %d times, want exactly 1", key, n)
		}
	}
	mu.Unlock()
	if want := 2; total != want {
		t.Errorf("%d decompositions for %d submitted nodes, want %d", total, 3*batches, want)
	}
	// The acceptance bound: strictly fewer decompositions than independent
	// execution of every submitted node.
	if total >= 3*batches {
		t.Errorf("sharing saved nothing: %d decompositions for %d nodes", total, 3*batches)
	}

	// Every batch's communities match the fixed-shape answer, and the
	// per-batch counters add up: all but the first-executed instance of
	// each key is a CSE hit.
	hits := 0
	for i, body := range bodies {
		var qr rawQueryResponse
		if err := json.Unmarshal(body, &qr); err != nil {
			t.Fatal(err)
		}
		hits += qr.CSEHits
		for si, st := range qr.Results {
			for ni, n := range st.Nodes {
				want := topKCommunities(t, ts, fmt.Sprintf("k=3&gamma=%d", n.Gamma))
				got := n.Communities
				if si == 1 {
					// limit(2) truncates; compare the prefix via decode.
					var w, g []communityJSON
					if err := json.Unmarshal(want, &w); err != nil {
						t.Fatal(err)
					}
					if err := json.Unmarshal(got, &g); err != nil {
						t.Fatal(err)
					}
					if len(g) > 2 {
						t.Errorf("batch %d stmt %d node %d: limit(2) violated", i, si, ni)
					}
					continue
				}
				if string(got) != string(want) {
					t.Errorf("batch %d stmt %d node %d:\ndsl  %s\ntopk %s", i, si, ni, got, want)
				}
			}
		}
	}
	if want := 3*batches - 2; hits != want {
		t.Errorf("summed cse_hits = %d, want %d", hits, want)
	}
	if ds.sharer.Execs() != 2 {
		t.Errorf("sharer execs = %d, want 2", ds.sharer.Execs())
	}
	if ds.sharer.Hits() != int64(3*batches-2) {
		t.Errorf("sharer hits = %d, want %d", ds.sharer.Hits(), 3*batches-2)
	}
}

// TestCSESharingNeverCrossesEpochs pins the safety side of sharing: an
// update that publishes a new snapshot epoch invalidates every shared
// result, so the same batch decomposes afresh rather than serving the
// pre-update answer.
func TestCSESharingNeverCrossesEpochs(t *testing.T) {
	s, ts := dslBackendsServer(t)
	ds := s.registry.acquireLookup("dyn")
	if ds == nil {
		t.Fatal("dyn dataset missing")
	}
	defer ds.release()

	var mu sync.Mutex
	execs := make(map[string]int)
	ds.sharer.SetExecHook(func(key string) {
		mu.Lock()
		execs[key]++
		mu.Unlock()
	})
	defer ds.sharer.SetExecHook(nil)

	const src = `{"query":"topk(k=2, gamma=2)","dataset":"dyn"}`
	if code, body := postQuery(t, ts, src); code != http.StatusOK {
		t.Fatalf("first batch: status %d: %s", code, body)
	}
	// Re-running at the same epoch is served from the memo: no new exec.
	if code, body := postQuery(t, ts, src); code != http.StatusOK {
		t.Fatalf("repeat batch: status %d: %s", code, body)
	}
	mu.Lock()
	if n := len(execs); n != 1 {
		t.Fatalf("distinct keys before update = %d, want 1", n)
	}
	for key, n := range execs {
		if n != 1 {
			t.Fatalf("node %q decomposed %d times before update, want 1", key, n)
		}
	}
	mu.Unlock()

	// An effective update moves the epoch; the identical batch must not
	// reuse the pre-update decomposition.
	resp, body := postUpdates(t, ts, "dyn",
		`{"updates":[{"op":"insert","u":0,"v":9}]}`, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("update: status %d: %s", resp.StatusCode, body)
	}
	if code, qbody := postQuery(t, ts, src); code != http.StatusOK {
		t.Fatalf("post-update batch: status %d: %s", code, qbody)
	}
	mu.Lock()
	defer mu.Unlock()
	total := 0
	for _, n := range execs {
		total += n
	}
	if total != 2 {
		t.Errorf("decompositions across the epoch change = %d, want 2 (one per epoch)", total)
	}
}

// TestCSENearSharesReweight covers the seed-scoped path: one near seed set
// expanded over a γ range reweights the graph once, each γ node searches
// the shared reweighted graph, and the answer matches the public facade's
// TopKNearQuery semantics.
func TestCSENearSharesReweight(t *testing.T) {
	s, ts := dslBackendsServer(t)
	ds := s.registry.acquireLookup(DefaultDataset)
	if ds == nil {
		t.Fatal("default dataset missing")
	}
	defer ds.release()

	var mu sync.Mutex
	execs := make(map[string]int)
	ds.sharer.SetExecHook(func(key string) {
		mu.Lock()
		execs[key]++
		mu.Unlock()
	})
	defer ds.sharer.SetExecHook(nil)

	code, body := postQuery(t, ts, `{"query":"near(seeds=[0,1], k=2, gamma=2..3)"}`)
	var qr rawQueryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if code != http.StatusOK {
		t.Fatalf("status %d: %s", code, qr.Error)
	}
	if len(qr.Results) != 1 || len(qr.Results[0].Nodes) != 2 {
		t.Fatalf("result shape: %s", body)
	}
	for _, n := range qr.Results[0].Nodes {
		var comms []communityJSON
		if err := json.Unmarshal(n.Communities, &comms); err != nil {
			t.Fatal(err)
		}
		if len(comms) == 0 {
			t.Errorf("near γ=%d: no communities", n.Gamma)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	reweights := 0
	for key, n := range execs {
		if strings.HasPrefix(key, "reweight|") {
			reweights += n
		}
	}
	if reweights != 1 {
		t.Errorf("reweight executed %d times for a 2-node γ range, want 1", reweights)
	}
}

// TestPlanQueryErrors covers the handler's failure surface.
func TestPlanQueryErrors(t *testing.T) {
	_, ts := dslBackendsServer(t)
	cases := []struct {
		name string
		body string
		code int
		frag string
	}{
		{"parse error", `{"query":"topk(k=0)"}`, http.StatusBadRequest, "k"},
		{"syntax error", `{"query":"frobnicate()"}`, http.StatusBadRequest, "query:"},
		{"bad json", `{"query": `, http.StatusBadRequest, "bad request body"},
		{"unknown dataset", `{"query":"topk(k=1)","dataset":"nope"}`, http.StatusNotFound, "not loaded"},
		{"k too large", `{"query":"topk(k=99999999)"}`, http.StatusBadRequest, "k must be in"},
		{"near on semiext", `{"query":"near(seeds=[1], k=2)","dataset":"se"}`, http.StatusBadRequest, "whole-graph"},
		{"truss on semiext", `{"query":"topk(k=2, gamma=3, semantics=truss)","dataset":"se"}`, http.StatusBadRequest, "whole-graph"},
		{"near rejects truss", `{"query":"near(seeds=[1], semantics=truss)"}`, http.StatusBadRequest, "truss"},
	}
	for _, tc := range cases {
		code, body := postQuery(t, ts, tc.body)
		if code != tc.code {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, code, tc.code, body)
		}
		if !strings.Contains(string(body), tc.frag) {
			t.Errorf("%s: body %s does not mention %q", tc.name, body, tc.frag)
		}
	}
}

// BenchmarkBatchCSE measures a DSL batch whose statements overlap: after
// the first request warms the sharer's memo, every plan node is a CSE hit,
// so the number is dominated by parse + plan + filter + render — the
// fixed overhead sharing cannot remove. Gated in CI against
// BENCH_baseline.json.
func BenchmarkBatchCSE(b *testing.B) {
	s, err := New(rankGraph(b))
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()
	body := `{"query":"topk(k=5, gamma=2..4); topk(k=5, gamma=2..3) | limit(2); topk(k=5, gamma=4, semantics=noncontainment)"}`
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Post(ts.URL+"/v1/query", "application/json", strings.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
	}
}

// TestPlanQueryStatsCounters pins the new /v1/stats rows: DSL batches
// count under dsl_queries, their expansion under plan_nodes, and shared
// nodes under cse_hits.
func TestPlanQueryStatsCounters(t *testing.T) {
	_, ts := dslBackendsServer(t)
	if code, body := postQuery(t, ts, `{"query":"topk(k=2, gamma=2); topk(k=2, gamma=2)"}`); code != http.StatusOK {
		t.Fatalf("status %d: %s", code, body)
	}
	var stats statsResponse
	if code := getJSON(t, ts.URL+"/v1/stats", &stats); code != http.StatusOK {
		t.Fatalf("stats status %d", code)
	}
	if stats.DSLQueries != 1 {
		t.Errorf("dsl_queries = %d, want 1", stats.DSLQueries)
	}
	if stats.PlanNodes != 2 {
		t.Errorf("plan_nodes = %d, want 2", stats.PlanNodes)
	}
	if stats.CSEHits != 1 {
		t.Errorf("cse_hits = %d, want 1", stats.CSEHits)
	}
}
