package server

import (
	"os"
	"reflect"
	"regexp"
	"strings"
	"testing"
)

// docFieldRow matches a field row of a marked table in OPERATIONS.md:
// "| `field_name` | ...". Only backticked names in the first column count,
// so prose references elsewhere in the section cannot satisfy the check.
var docFieldRow = regexp.MustCompile("(?m)^\\| `([a-z0-9_]+)`")

// docFields parses the fields documented between the
// "<!-- fields:<section>:begin -->" and ":end" markers of path.
func docFields(t *testing.T, path, section string) map[string]bool {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading %s: %v (the stats tables there are kept in sync with the code by this test)", path, err)
	}
	begin := "<!-- fields:" + section + ":begin -->"
	end := "<!-- fields:" + section + ":end -->"
	_, rest, ok := strings.Cut(string(data), begin)
	if !ok {
		t.Fatalf("%s: marker %q not found", path, begin)
	}
	body, _, ok := strings.Cut(rest, end)
	if !ok {
		t.Fatalf("%s: marker %q not found", path, end)
	}
	fields := make(map[string]bool)
	for _, m := range docFieldRow.FindAllStringSubmatch(body, -1) {
		fields[m[1]] = true
	}
	if len(fields) == 0 {
		t.Fatalf("%s: section %s documents no fields", path, section)
	}
	return fields
}

// jsonFields reflects the JSON field names a struct value marshals to.
func jsonFields(t *testing.T, v any) map[string]bool {
	t.Helper()
	fields := make(map[string]bool)
	rt := reflect.TypeOf(v)
	for i := 0; i < rt.NumField(); i++ {
		tag := rt.Field(i).Tag.Get("json")
		name, _, _ := strings.Cut(tag, ",")
		if name == "" || name == "-" {
			continue
		}
		fields[name] = true
	}
	return fields
}

// checkFieldDrift asserts doc and code agree in both directions.
func checkFieldDrift(t *testing.T, what string, code, doc map[string]bool) {
	t.Helper()
	for f := range code {
		if !doc[f] {
			t.Errorf("%s: field %q is emitted by the server but not documented in docs/OPERATIONS.md", what, f)
		}
	}
	for f := range doc {
		if !code[f] {
			t.Errorf("%s: field %q is documented in docs/OPERATIONS.md but the server no longer emits it", what, f)
		}
	}
}

const operationsDoc = "../../docs/OPERATIONS.md"

// TestStatsFieldsDocumented pins every /v1/stats JSON field to a row in the
// OPERATIONS.md stats table, and vice versa: the doc cannot drift from the
// response in either direction.
func TestStatsFieldsDocumented(t *testing.T) {
	checkFieldDrift(t, "/v1/stats",
		jsonFields(t, statsResponse{}),
		docFields(t, operationsDoc, "server-stats"))
}

// TestDatasetFieldsDocumented does the same for the per-dataset objects
// served by /v1/datasets (and embedded in /v1/stats under "datasets").
func TestDatasetFieldsDocumented(t *testing.T) {
	checkFieldDrift(t, "/v1/datasets",
		jsonFields(t, DatasetInfo{}),
		docFields(t, operationsDoc, "server-datasets"))
}

// TestQueryEnvelopeDocumented pins the /v1/query response envelope — the
// top-level payload, the per-statement objects, and the per-node objects —
// to the OPERATIONS.md server-query table.
func TestQueryEnvelopeDocumented(t *testing.T) {
	code := jsonFields(t, queryResponse{})
	for f := range jsonFields(t, statementResult{}) {
		code[f] = true
	}
	for f := range jsonFields(t, nodeResult{}) {
		code[f] = true
	}
	checkFieldDrift(t, "/v1/query", code, docFields(t, operationsDoc, "server-query"))
}
