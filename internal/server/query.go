package server

import (
	"context"
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"time"

	"influcomm/internal/cluster"
	"influcomm/internal/core"
	"influcomm/internal/graph"
	"influcomm/internal/query"
	"influcomm/internal/queryweight"
)

// This file is the single-node side of the query DSL (internal/query):
// POST /v1/query parses a batch, plans it into fixed-shape nodes, and
// executes the nodes through the same engine boundary as /v1/topk
// (executeTopK), with cross-query sharing — identical canonical nodes at
// the same snapshot epoch are computed once across all concurrent batches
// via the dataset's Sharer, and seed-scoped (near) statements additionally
// share the reweighted graph across their γ expansion.

// maxQueryBody bounds a /v1/query request body.
const maxQueryBody = 1 << 20

// queryRequest is the POST /v1/query body.
type queryRequest struct {
	// Query is the DSL batch source text (see docs/ARCHITECTURE.md for
	// the grammar).
	Query string `json:"query"`
	// Dataset routes the batch; empty means the default dataset.
	Dataset string `json:"dataset,omitempty"`
}

// queryResponse is the /v1/query payload.
type queryResponse struct {
	// Query echoes the batch in canonical form.
	Query string `json:"query"`
	// Dataset is the dataset the batch ran against.
	Dataset string `json:"dataset"`
	// Results holds one entry per statement, in input order.
	Results []statementResult `json:"results"`
	// PlanNodes is how many plan nodes the batch expanded to.
	PlanNodes int `json:"plan_nodes"`
	// CSEHits is how many of those nodes were served by work shared with
	// another node (of this batch or a concurrent one) instead of a fresh
	// decomposition.
	CSEHits int `json:"cse_hits"`
	// SnapshotEpoch is the snapshot epoch the batch pinned (mutable
	// datasets; 0 otherwise).
	SnapshotEpoch uint64  `json:"snapshot_epoch,omitempty"`
	ElapsedMS     float64 `json:"elapsed_ms"`
}

// statementResult is one statement's executed plan nodes, in plan order,
// under the statement's canonical form.
type statementResult struct {
	Statement string       `json:"statement"`
	Nodes     []nodeResult `json:"nodes"`
}

// nodeResult is one executed plan node: its fixed shape, the access path
// the planner picked, and the communities after the statement's filters.
type nodeResult struct {
	K     int    `json:"k"`
	Gamma int    `json:"gamma"`
	Mode  string `json:"mode"`
	Path  string `json:"path"`
	// Shared marks nodes served by shared work (a memo hit or a join on an
	// in-flight identical node) rather than a fresh execution.
	Shared      bool            `json:"shared,omitempty"`
	Communities []communityJSON `json:"communities"`
	// AccessedVertices reports the LocalSearch prefix the node's execution
	// touched; 0 on the index path.
	AccessedVertices int `json:"accessed_vertices,omitempty"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	// Same admission control as /v1/topk: one slot per batch, shed when
	// saturated. DSL batches are counted separately (dsl_queries) so the
	// classic per-query latency average stays comparable.
	if s.inflight != nil {
		select {
		case s.inflight <- struct{}{}:
			defer func() { <-s.inflight }()
		default:
			s.metrics.rejected.Add(1)
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": "server saturated, retry later"})
			return
		}
	}
	s.metrics.dslQueries.Add(1)
	s.metrics.inFlight.Add(1)
	defer s.metrics.inFlight.Add(-1)

	ctx := r.Context()
	if s.queryTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.queryTimeout)
		defer cancel()
	}

	start := time.Now()
	resp, err := s.runQueryBatch(ctx, w, r)
	if err != nil {
		writeJSON(w, s.classify(err), map[string]string{"error": err.Error()})
		return
	}
	resp.ElapsedMS = float64(time.Since(start)) / float64(time.Millisecond)
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) runQueryBatch(ctx context.Context, w http.ResponseWriter, r *http.Request) (*queryResponse, error) {
	var req queryRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxQueryBody)).Decode(&req); err != nil {
		return nil, &httpError{http.StatusBadRequest, "bad request body: " + err.Error()}
	}
	q, err := query.Parse(req.Query)
	if err != nil {
		return nil, &httpError{http.StatusBadRequest, err.Error()}
	}

	name := req.Dataset
	if name == "" {
		name = DefaultDataset
	}
	ds := s.registry.acquireLookup(name)
	if ds == nil {
		return nil, &httpError{http.StatusNotFound, "dataset " + strconv.Quote(name) + " is not loaded"}
	}
	defer ds.release()
	ds.queries.Add(1)

	// One epoch pins the whole batch: every fixed-shape node executes and
	// shares against it, exactly like a /v1/topk cache key. (As everywhere
	// else, a concurrent update can at worst make an execution see a newer
	// snapshot than the epoch it is keyed under — never an older one.)
	epoch := ds.epoch()
	hasIndex := ds.indexAt(epoch) != nil
	nodes, err := query.PlanQuery(q, func(mode string, near bool) string {
		switch {
		case mode == query.SemTruss:
			return query.PathTruss
		case !near && mode == query.SemCore && hasIndex:
			return query.PathIndex
		default:
			return query.PathLocal
		}
	})
	if err != nil {
		return nil, &httpError{http.StatusBadRequest, err.Error()}
	}
	for _, n := range nodes {
		if n.K > s.maxK {
			return nil, &httpError{http.StatusBadRequest, "k must be in [1, " + strconv.Itoa(s.maxK) + "]"}
		}
	}
	s.metrics.planNodes.Add(int64(len(nodes)))

	resp := &queryResponse{
		Query:         q.String(),
		Dataset:       name,
		PlanNodes:     len(nodes),
		SnapshotEpoch: epoch,
	}
	for _, st := range q.Statements {
		resp.Results = append(resp.Results, statementResult{Statement: st.String()})
	}
	for _, n := range nodes {
		er, shared, err := s.executeNode(ctx, ds, n, epoch)
		if err != nil {
			return nil, err
		}
		if shared {
			s.metrics.cseHits.Add(1)
			resp.CSEHits++
		}
		resp.Results[n.Stmt].Nodes = append(resp.Results[n.Stmt].Nodes, nodeResult{
			K:                n.K,
			Gamma:            int(n.Gamma),
			Mode:             n.Mode,
			Path:             n.Path,
			Shared:           shared,
			Communities:      cluster.ApplyDSLFilters(q.Statements[n.Stmt].Filters, er.Communities),
			AccessedVertices: er.Accessed,
		})
	}
	return resp, nil
}

// executeNode runs one plan node with cross-query sharing: the node's
// canonical key plus the snapshot epoch identify the computation, so any
// concurrent or recent identical node — same batch, another batch, another
// client — yields one execution. Fixed-shape nodes run through executeTopK,
// the same engine boundary as /v1/topk, which is what makes a DSL node's
// communities byte-identical to its fixed-shape equivalent.
func (s *Server) executeNode(ctx context.Context, ds *dataset, n query.Node, epoch uint64) (*execResult, bool, error) {
	if n.FixedShape() {
		val, shared, err := ds.sharer.Do(ctx, epoch, n.Key, func() (any, error) {
			return s.executeTopK(ctx, ds, queryParams{K: n.K, Gamma: n.Gamma, Mode: n.Mode}, epoch)
		})
		if err != nil {
			return nil, false, err
		}
		return val.(*execResult), shared, nil
	}

	// near: reweight by seed distance, then search the reweighted graph.
	// The reweighting is itself a shareable prefix — every γ and semantics
	// expansion of one seed set, across all concurrent batches, uses one
	// BFS + rebuild. Keyed by the snapshot epoch actually read, which can
	// be newer than the batch epoch (the harmless direction).
	g, gepoch := snapshotOf(ds.st)
	if g == nil {
		return nil, false, &httpError{http.StatusBadRequest,
			"near queries need whole-graph access; dataset " + strconv.Quote(ds.name) + " uses the " + ds.st.Backend() + " backend"}
	}
	rwVal, _, err := ds.sharer.Do(ctx, gepoch, reweightKey(n.Seeds), func() (any, error) {
		rw, err := queryweight.Reweight(g, n.Seeds)
		if err != nil {
			return nil, &httpError{http.StatusBadRequest, err.Error()}
		}
		return rw, nil
	})
	if err != nil {
		return nil, false, err
	}
	rw := rwVal.(*graph.Graph)
	val, shared, err := ds.sharer.Do(ctx, gepoch, n.Key, func() (any, error) {
		res, err := core.TopKCtx(ctx, rw, n.K, n.Gamma, core.Options{
			NonContainment: n.Mode == cluster.ModeNonContainment,
		})
		if err != nil {
			return nil, queryError(err)
		}
		s.metrics.localServed.Add(1)
		ds.localServed.Add(1)
		out := &execResult{Accessed: res.Stats.FinalPrefix}
		for _, c := range res.Communities {
			out.Communities = append(out.Communities, cluster.Render(rw, c.Influence(), c.Keynode(), c.Vertices()))
		}
		return out, nil
	})
	if err != nil {
		return nil, false, err
	}
	return val.(*execResult), shared, nil
}

// reweightKey names the shared seed-reweighting computation for a
// canonical (sorted, deduplicated) seed set.
func reweightKey(seeds []int32) string {
	var b strings.Builder
	b.WriteString("reweight|seeds=[")
	for i, sd := range seeds {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(int(sd)))
	}
	b.WriteByte(']')
	return b.String()
}
