package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"influcomm/internal/cluster"
)

// handleShardStream serves GET /v1/shard/stream: the shard side of the
// cluster scatter-gather protocol (docs/CLUSTER.md). The response is NDJSON
// — one cluster.StreamLine per line — opening with a header that names the
// snapshot epoch pinned for the whole stream, followed by communities in
// decreasing influence order, and closed by a trailer; a stream that ends
// without a trailer (or with an error line) was not completed cleanly.
//
//	GET /v1/shard/stream?gamma=G&limit=N[&dataset=D][&mode=core|noncontainment|truss]
//
// limit bounds the stream: a coordinator merging toward a global top-k
// never needs more than k communities from one shard. Each line is flushed
// as soon as it is produced, so the coordinator can merge — and terminate
// the stream early by closing the connection, which cancels the search —
// while the shard is still working. A shard mid-update keeps serving the
// snapshot it pinned at the header; the epoch it reports is exactly that
// snapshot's.
func (s *Server) handleShardStream(w http.ResponseWriter, r *http.Request) {
	// Shard streams share the query admission control: a saturated shard
	// sheds coordinators like it sheds clients, and the coordinator's
	// failover treats the 503 like any other replica failure.
	if s.inflight != nil {
		select {
		case s.inflight <- struct{}{}:
			defer func() { <-s.inflight }()
		default:
			s.metrics.rejected.Add(1)
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": "server saturated, retry later"})
			return
		}
	}
	s.metrics.queries.Add(1)
	s.metrics.shardStreams.Add(1)
	s.metrics.inFlight.Add(1)
	defer s.metrics.inFlight.Add(-1)

	ctx := r.Context()
	if s.queryTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.queryTimeout)
		defer cancel()
	}

	q := r.URL.Query()
	p, err := parseQueryParams(q, s.maxK)
	if err == nil {
		// Coordinators name the semantics directly; mode= wins over the
		// single-node truss=1/noncontainment=1 flags.
		switch m := q.Get("mode"); m {
		case "", cluster.ModeCore:
			if m != "" {
				p.Mode = cluster.ModeCore
			}
		case cluster.ModeNonContainment, cluster.ModeTruss:
			p.Mode = m
		default:
			err = &httpError{http.StatusBadRequest, fmt.Sprintf("unknown mode %q", m)}
		}
	}
	if err == nil && q.Get("limit") == "" {
		err = &httpError{http.StatusBadRequest, "limit is required"}
	}
	var limit int
	if err == nil {
		limit, err = intParam(q.Get("limit"), 0)
		if err != nil {
			err = &httpError{http.StatusBadRequest, "bad limit: " + err.Error()}
		} else if limit < 1 || limit > s.maxK {
			err = &httpError{http.StatusBadRequest, fmt.Sprintf("limit must be in [1, %d]", s.maxK)}
		}
	}
	if err != nil {
		writeJSON(w, s.classify(err), map[string]string{"error": err.Error()})
		return
	}
	p.K = limit

	name := q.Get("dataset")
	if name == "" {
		name = DefaultDataset
	}
	ds := s.registry.acquireLookup(name)
	if ds == nil {
		s.metrics.errors.Add(1)
		writeJSON(w, http.StatusNotFound, map[string]string{"error": fmt.Sprintf("dataset %q is not loaded", name)})
		return
	}
	defer ds.release()
	ds.queries.Add(1)

	// Pin the snapshot once: graph and epoch are one coherent read, and the
	// whole stream — header, every community, trailer — describes exactly
	// that snapshot, however many update batches land while it runs.
	g, epoch := snapshotOf(ds.st)

	// Mode/backend validation must fail as an HTTP status, before the 200
	// and the header line commit us to the stream framing.
	if p.Mode == cluster.ModeTruss {
		if verr := validateTruss(ds, g, p.Gamma); verr != nil {
			writeJSON(w, s.classify(verr), map[string]string{"error": verr.Error()})
			return
		}
	}

	start := time.Now()
	w.Header().Set("Content-Type", "application/x-ndjson")
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	writeLine := func(line cluster.StreamLine) bool {
		if err := enc.Encode(line); err != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}
	if !writeLine(cluster.StreamLine{Header: &cluster.StreamHeader{
		Dataset: name, Mode: p.Mode, SnapshotEpoch: epoch,
	}}) {
		return
	}

	sr, err := s.executeStream(ctx, ds, p, limit, g, epoch, func(c communityJSON) bool {
		return writeLine(cluster.StreamLine{Community: &c})
	})
	s.metrics.durationUS.Add(time.Since(start).Microseconds())
	if err != nil {
		// The status is already written; the error travels as a stream
		// line. classify still runs for the serving counters.
		s.classify(err)
		if !errors.Is(err, context.Canceled) { // a gone client cannot read the line
			writeLine(cluster.StreamLine{Error: err.Error()})
		}
		return
	}
	writeLine(cluster.StreamLine{Trailer: &cluster.StreamTrailer{
		Done:             true,
		Communities:      sr.Sent,
		Exhausted:        sr.Exhausted,
		AccessedVertices: sr.Accessed,
	}})
}
