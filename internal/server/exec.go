package server

import (
	"context"
	"fmt"
	"net/http"
	"net/url"

	"influcomm/internal/cluster"
	"influcomm/internal/core"
	"influcomm/internal/graph"
	"influcomm/internal/store"
	"influcomm/internal/truss"
)

// This file is the engine boundary of the serving layer: one place where a
// parsed query is executed against a pinned dataset. Both the single-process
// HTTP handler (/v1/topk) and the shard stream the cluster coordinator
// consumes (/v1/shard/stream) enter through it, so a query answers
// identically whether it arrives from a client or from a coordinator
// scatter — the property the distributed tier's byte-identical guarantee is
// built on.

// queryParams is the engine-boundary description of one query: what to
// search for, independent of how the request arrived or where the answer
// goes.
type queryParams struct {
	K     int
	Gamma int32
	Mode  string // cluster.ModeCore, ModeNonContainment, or ModeTruss
}

// parseQueryParams extracts k/gamma/mode from URL query values, applying
// the handler defaults (k=10, gamma=5, core semantics) and the server's k
// bound.
func parseQueryParams(q url.Values, maxK int) (queryParams, error) {
	var p queryParams
	k, err := intParam(q.Get("k"), 10)
	if err != nil {
		return p, &httpError{http.StatusBadRequest, "bad k: " + err.Error()}
	}
	gamma, err := intParam(q.Get("gamma"), 5)
	if err != nil {
		return p, &httpError{http.StatusBadRequest, "bad gamma: " + err.Error()}
	}
	if k < 1 || k > maxK {
		return p, &httpError{http.StatusBadRequest, fmt.Sprintf("k must be in [1, %d]", maxK)}
	}
	if gamma < 1 {
		return p, &httpError{http.StatusBadRequest, "gamma must be >= 1"}
	}
	useTruss := q.Get("truss") == "1"
	nonContain := q.Get("noncontainment") == "1"
	if useTruss && nonContain {
		return p, &httpError{http.StatusBadRequest, "truss and noncontainment are mutually exclusive"}
	}
	p.K, p.Gamma, p.Mode = k, int32(gamma), cluster.ModeCore
	switch {
	case useTruss:
		p.Mode = cluster.ModeTruss
	case nonContain:
		p.Mode = cluster.ModeNonContainment
	}
	return p, nil
}

// execResult is what one executed query produced, before any transport
// framing (HTTP envelope, stream lines) is applied.
type execResult struct {
	Communities []communityJSON
	// Accessed is the final LocalSearch prefix; 0 on the index path.
	Accessed int
}

// executeTopK runs one top-k query against the pinned dataset ds. epoch is
// the snapshot epoch the caller read before executing; the prebuilt index
// answers only while it still equals the index's attach epoch, so a query
// racing an update can never serve a pre-update index answer as current.
// Serving-path metrics are counted here, shared by every entry point.
func (s *Server) executeTopK(ctx context.Context, ds *dataset, p queryParams, epoch uint64) (*execResult, error) {
	out := &execResult{}
	ix := ds.indexAt(epoch)
	switch {
	case p.Mode == cluster.ModeTruss:
		// Graph and epoch must be one coherent read for mutable datasets,
		// so the truss index is always built on exactly the snapshot the
		// epoch names (possibly newer than the keyed epoch above, which is
		// the harmless direction).
		g, tepoch := snapshotOf(ds.st)
		if err := validateTruss(ds, g, p.Gamma); err != nil {
			return nil, err
		}
		res, err := truss.LocalSearchCtx(ctx, ds.truss(g, tepoch), p.K, p.Gamma)
		if err != nil {
			return nil, queryError(err)
		}
		s.metrics.localServed.Add(1)
		ds.localServed.Add(1)
		for _, c := range res.Communities {
			out.Communities = append(out.Communities, cluster.Render(g, c.Influence(), c.Keynode(), c.Vertices()))
		}
		out.Accessed = res.Stats.FinalPrefix
	case ix != nil && p.Mode == cluster.ModeCore:
		// Index-first path: the materialized decomposition answers the
		// default semantics in output-proportional time. Accessed stays 0 —
		// the point of the index is that no part of the graph outside the
		// reported communities is touched.
		comms, err := ix.TopK(p.K, p.Gamma)
		if err != nil {
			return nil, queryError(err)
		}
		s.metrics.indexServed.Add(1)
		ds.indexServed.Add(1)
		for _, c := range comms {
			out.Communities = append(out.Communities, cluster.Render(ds.st.Graph(), c.Influence(), c.Keynode(), c.Vertices()))
		}
	default:
		res, err := ds.st.TopK(ctx, p.K, p.Gamma, core.Options{NonContainment: p.Mode == cluster.ModeNonContainment})
		if err != nil {
			return nil, queryError(err)
		}
		s.metrics.localServed.Add(1)
		ds.localServed.Add(1)
		for _, c := range res.Communities {
			out.Communities = append(out.Communities, cluster.Render(ds.st.Graph(), c.Influence(), c.Keynode(), c.Vertices()))
		}
		out.Accessed = res.Stats.FinalPrefix
	}
	return out, nil
}

// validateTruss rejects truss queries the dataset cannot answer.
func validateTruss(ds *dataset, g *graph.Graph, gamma int32) error {
	if g == nil {
		return &httpError{http.StatusBadRequest,
			fmt.Sprintf("truss queries need whole-graph access; dataset %q uses the %s backend", ds.name, ds.st.Backend())}
	}
	if gamma < 2 {
		return &httpError{http.StatusBadRequest, "truss queries need gamma >= 2"}
	}
	return nil
}

// streamResult describes how a progressive stream ended.
type streamResult struct {
	// Sent is the number of communities emitted.
	Sent int
	// Exhausted reports the shard ran out of communities before the
	// requested limit was reached: the stream's bound for any further
	// candidate is "none", not the last emitted influence.
	Exhausted bool
	// Accessed is the final LocalSearch prefix; 0 on the index path.
	Accessed int
}

// executeStream runs one progressive query against the pinned dataset ds,
// emitting communities in decreasing influence order until emit returns
// false or limit communities have been sent. g and epoch are the caller's
// pinned snapshot (g nil for semi-external backends). Three execution paths
// share the entry point:
//
//   - a valid prebuilt index serves core-semantics streams in
//     output-proportional time;
//   - whole-graph backends run LocalSearch-P (core.StreamCtx) or the truss
//     stream, which do only the work the emitted prefix requires — an early
//     cancellation from the coordinator stops the search right there;
//   - semi-external backends, which cannot stream progressively, fall back
//     to executeTopK with k = limit; the results are identical, the work is
//     not output-proportional.
func (s *Server) executeStream(ctx context.Context, ds *dataset, p queryParams, limit int, g *graph.Graph, epoch uint64, emit func(communityJSON) bool) (streamResult, error) {
	var sr streamResult
	stopped := false
	yield := func(c communityJSON) bool {
		if !emit(c) {
			stopped = true
			return false
		}
		sr.Sent++
		if sr.Sent >= limit {
			stopped = true
			return false
		}
		return true
	}

	if p.Mode == cluster.ModeTruss {
		if err := validateTruss(ds, g, p.Gamma); err != nil {
			return sr, err
		}
		prefix, err := truss.StreamCtx(ctx, ds.truss(g, epoch), p.Gamma, func(c *truss.Community) bool {
			return yield(cluster.Render(g, c.Influence(), c.Keynode(), c.Vertices()))
		})
		if err != nil {
			return sr, queryError(err)
		}
		s.metrics.localServed.Add(1)
		ds.localServed.Add(1)
		sr.Accessed = prefix
		sr.Exhausted = !stopped
		return sr, nil
	}

	if ix := ds.indexAt(epoch); ix != nil && p.Mode == cluster.ModeCore {
		comms, err := ix.TopK(limit, p.Gamma)
		if err != nil {
			return sr, queryError(err)
		}
		s.metrics.indexServed.Add(1)
		ds.indexServed.Add(1)
		for _, c := range comms {
			if !yield(cluster.Render(ds.st.Graph(), c.Influence(), c.Keynode(), c.Vertices())) {
				break
			}
		}
		sr.Exhausted = len(comms) < limit
		return sr, nil
	}

	if g == nil {
		// Semi-external fallback: no whole graph to stream over, so answer
		// with one bounded top-k. limit == the coordinator's global k, and a
		// global top-k never needs more than k communities from one shard.
		er, err := s.executeTopK(ctx, ds, queryParams{K: limit, Gamma: p.Gamma, Mode: p.Mode}, epoch)
		if err != nil {
			return sr, err
		}
		for _, c := range er.Communities {
			if !yield(c) {
				break
			}
		}
		sr.Accessed = er.Accessed
		sr.Exhausted = len(er.Communities) < limit
		return sr, nil
	}

	opts := core.Options{NonContainment: p.Mode == cluster.ModeNonContainment}
	var st core.Stats
	var err error
	if mem, ok := ds.st.(*store.Mem); ok && mem.Graph() == g {
		// The in-memory backend streams on pooled engines.
		st, err = mem.Stream(ctx, p.Gamma, opts, func(c *core.Community) bool {
			return yield(cluster.Render(g, c.Influence(), c.Keynode(), c.Vertices()))
		})
	} else {
		// Mutable backends: stream over the pinned snapshot, which stays
		// valid (and immutable) however many update batches land meanwhile.
		st, err = core.StreamCtx(ctx, g, p.Gamma, opts, func(c *core.Community) bool {
			return yield(cluster.Render(g, c.Influence(), c.Keynode(), c.Vertices()))
		})
	}
	if err != nil {
		return sr, queryError(err)
	}
	s.metrics.localServed.Add(1)
	ds.localServed.Add(1)
	sr.Accessed = st.FinalPrefix
	sr.Exhausted = !stopped
	return sr, nil
}
