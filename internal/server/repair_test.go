package server

import (
	"bytes"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"influcomm/internal/semiext"
)

// TestRepairEligibleBoundary pins the synchronous-repair gate at its
// boundary: a delta whose touched suffix is exactly frac·n qualifies,
// one vertex more does not.
func TestRepairEligibleBoundary(t *testing.T) {
	cases := []struct {
		n, minCut int
		frac      float64
		want      bool
	}{
		{100, 75, 0.25, true},  // 25 touched = exactly a quarter
		{100, 74, 0.25, false}, // 26 touched: one over
		{100, 100, 0.25, true}, // nothing touched
		{100, 0, 0.25, false},  // everything touched
		{100, 0, 1, true},      // frac=1 accepts any delta
		{4, 3, 0.25, true},     // 1 of 4 = exactly a quarter
		{4, 2, 0.25, false},
		{0, 0, 0.25, true}, // empty graph: vacuously eligible
	}
	for _, tc := range cases {
		if got := repairEligible(tc.n, tc.minCut, tc.frac); got != tc.want {
			t.Errorf("repairEligible(%d, %d, %v) = %v, want %v", tc.n, tc.minCut, tc.frac, got, tc.want)
		}
	}
}

// TestRepairFractionConfigValidation rejects fractions outside (0, 1] at
// registration and keeps the 0.25 default when the field is zero.
func TestRepairFractionConfigValidation(t *testing.T) {
	g := rankGraph(t)
	for _, bad := range []float64{-0.1, 1.5, math.Inf(1)} {
		_, err := New(g, WithDataset("x", DatasetConfig{Graph: rankGraph(t), RepairFraction: bad}))
		if err == nil || !strings.Contains(err.Error(), "repair fraction") {
			t.Errorf("RepairFraction=%v: err = %v, want repair-fraction validation error", bad, err)
		}
	}

	s, _, _ := reindexServer(t, g, true, DatasetConfig{Reindex: "auto"})
	if got := math.Float64frombits(maintOf(t, s).repairFraction.Load()); got != defaultRepairFraction {
		t.Errorf("default repair fraction = %v, want %v", got, defaultRepairFraction)
	}
	s2, _, _ := reindexServer(t, g, true, DatasetConfig{Reindex: "auto", RepairFraction: 0.5})
	if got := math.Float64frombits(maintOf(t, s2).repairFraction.Load()); got != 0.5 {
		t.Errorf("configured repair fraction = %v, want 0.5", got)
	}
}

// TestRepairFractionSteersMaintenance shows the configured gate choosing
// the path: with frac=1 every effective update repairs synchronously;
// with a near-zero fraction the same update goes to the background
// rebuild instead.
func TestRepairFractionSteersMaintenance(t *testing.T) {
	_, ts, _ := reindexServer(t, rankGraph(t), true, DatasetConfig{Reindex: "auto", RepairFraction: 1})
	ur := postMaintainedUpdate(t, ts, `{"updates":[{"op":"insert","u":0,"v":9}]}`)
	if ur.Index != outcomeRepaired {
		t.Errorf("frac=1: outcome %q, want %q", ur.Index, outcomeRepaired)
	}

	_, ts2, _ := reindexServer(t, rankGraph(t), true, DatasetConfig{Reindex: "auto", RepairFraction: 1e-9})
	ur = postMaintainedUpdate(t, ts2, `{"updates":[{"op":"insert","u":0,"v":9}]}`)
	if ur.Index != outcomeRebuilding {
		t.Errorf("frac=1e-9: outcome %q, want %q", ur.Index, outcomeRebuilding)
	}
}

// TestRepairFractionAdminLoad plumbs repair_frac through the admin load
// body: out-of-range values are rejected before the dataset registers,
// in-range values reach the maintainer.
func TestRepairFractionAdminLoad(t *testing.T) {
	s, err := New(rankGraph(t))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)

	path := filepath.Join(t.TempDir(), "g.edges")
	if err := semiext.WriteEdgeFile(path, rankGraph(t)); err != nil {
		t.Fatal(err)
	}
	post := func(body string) (int, string) {
		resp, err := http.Post(ts.URL+"/v1/admin/datasets", "application/json", bytes.NewBufferString(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		return resp.StatusCode, buf.String()
	}

	code, body := post(fmt.Sprintf(`{"name":"bad","path":%q,"mutable":true,"reindex":"auto","repair_frac":1.5}`, path))
	if code != http.StatusBadRequest || !strings.Contains(body, "repair fraction") {
		t.Errorf("repair_frac=1.5: status %d body %s", code, body)
	}
	code, body = post(fmt.Sprintf(`{"name":"dyn","path":%q,"mutable":true,"reindex":"auto","repair_frac":0.75}`, path))
	if code != http.StatusCreated {
		t.Fatalf("repair_frac=0.75: status %d body %s", code, body)
	}
	if got := math.Float64frombits(maintOf(t, s).repairFraction.Load()); got != 0.75 {
		t.Errorf("loaded repair fraction = %v, want 0.75", got)
	}
}
