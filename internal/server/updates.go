package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"influcomm/internal/store"
)

// updateJSON is one edge mutation of a POST .../updates request.
type updateJSON struct {
	// Op is "insert" (default when empty) or "delete".
	Op string `json:"op,omitempty"`
	// U, V are the edge endpoints as original vertex IDs.
	U int32 `json:"u"`
	V int32 `json:"v"`
}

// updatesRequest is the POST /v1/admin/datasets/{name}/updates body.
type updatesRequest struct {
	Updates []updateJSON `json:"updates"`
}

// updatesResponse reports what the batch did.
type updatesResponse struct {
	Dataset  string `json:"dataset"`
	Inserted int    `json:"inserted"`
	Deleted  int    `json:"deleted"`
	Skipped  int    `json:"skipped"`
	// SnapshotEpoch is the epoch queries see from now on.
	SnapshotEpoch uint64 `json:"snapshot_epoch"`
	// Index reports what happened to the dataset's prebuilt index:
	// "repaired" (delta repair attached a current index before this
	// response), "rebuilding" (a background rebuild is pending or running;
	// queries use LocalSearch meanwhile), or "dropped" (no maintenance on
	// this dataset: the index is gone until an operator reloads one).
	// Empty when the dataset has neither an index nor maintenance.
	Index string `json:"index,omitempty"`
	// IndexInvalidated reports that this batch was the one that dropped a
	// prebuilt index. Unlike Index — which keeps reporting the maintenance
	// state on every effective batch — it fires only on the drop
	// transition, so batches after the first report false even though the
	// index is still gone; prefer Index.
	IndexInvalidated bool `json:"index_invalidated,omitempty"`
}

// maxUpdateBatch bounds one request's operation count, keeping a single
// admin call from staging unbounded work.
const maxUpdateBatch = 1 << 20

// handleApplyUpdates serves POST /v1/admin/datasets/{name}/updates: apply
// one batch of edge insertions/deletions to a mutable dataset. The dataset
// keeps serving throughout — in-flight queries finish on the snapshot they
// pinned, queries arriving after the response see the updated graph. A
// prebuilt index on the dataset is invalidated (updates change the
// decomposition it materialized) and the result cache stops matching old
// entries via the epoch in its key.
func (s *Server) handleApplyUpdates(w http.ResponseWriter, r *http.Request) {
	if !s.adminAllowed(w, r) {
		return
	}
	name := r.PathValue("name")
	var req updatesRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad request body: " + err.Error()})
		return
	}
	if len(req.Updates) == 0 {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "updates must hold at least one operation"})
		return
	}
	if len(req.Updates) > maxUpdateBatch {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": fmt.Sprintf("batch of %d exceeds the %d-op limit", len(req.Updates), maxUpdateBatch)})
		return
	}
	batch := make([]store.EdgeUpdate, len(req.Updates))
	for i, u := range req.Updates {
		switch u.Op {
		case "", "insert":
		case "delete":
			batch[i].Delete = true
		default:
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": fmt.Sprintf("bad op %q (want \"insert\" or \"delete\")", u.Op)})
			return
		}
		batch[i].U, batch[i].V = u.U, u.V
	}

	ds := s.registry.acquireLookup(name)
	if ds == nil {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": fmt.Sprintf("dataset %q is not loaded", name)})
		return
	}
	defer ds.release()
	ms := store.AsMutable(ds.st)
	if ms == nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": fmt.Sprintf("dataset %q uses the immutable %s backend; load it with mutable=true to accept updates", name, ds.st.Backend())})
		return
	}
	stats, err := ms.ApplyUpdates(r.Context(), batch)
	if err != nil {
		// A bad batch is the client's fault; anything else — write-ahead
		// log I/O, a store closed by a racing unload — is the server's,
		// and must not tell clients (or their retry policies) that the
		// request itself was malformed.
		code := http.StatusInternalServerError
		if errors.Is(err, store.ErrInvalidBatch) {
			code = http.StatusBadRequest
		}
		writeJSON(w, code, map[string]string{"error": err.Error()})
		return
	}
	resp := updatesResponse{
		Dataset:       name,
		Inserted:      stats.Inserted,
		Deleted:       stats.Deleted,
		Skipped:       stats.Skipped,
		SnapshotEpoch: stats.Epoch,
	}
	if stats.Inserted+stats.Deleted > 0 {
		if m := ds.maint; m != nil {
			// Maintained dataset: the store's OnApply hook already ran
			// (synchronously, inside ApplyUpdates), so the outcome for this
			// batch's epoch is decided — either a delta repair attached a
			// current index before we got here, or the background rebuild
			// worker has been kicked.
			resp.Index = m.outcomeFor(stats.Epoch)
		} else {
			// No maintenance: the graph moved and the prebuilt index no
			// longer describes it. Drop it so default-semantics queries fall
			// back to pooled LocalSearch (which needs no maintenance — the
			// paper's core asymmetry) until an operator reloads an index.
			if ds.dropIndex() {
				resp.IndexInvalidated = true
			}
			if ds.indexDropped.Load() {
				resp.Index = outcomeDropped
			}
		}
		// Purge the dataset's cached results; the epoch in the cache key
		// already fences them off, the purge just frees the memory early.
		if s.cache != nil {
			s.cache.invalidateDataset(name)
		}
	}
	writeJSON(w, http.StatusOK, resp)
}
