package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"

	"influcomm/internal/graph"
	"influcomm/internal/index"
	"influcomm/internal/semiext"
	"influcomm/internal/store"
)

// mutableServer returns a server whose "dyn" dataset is a durable mutable
// store over a fresh edge file of rankGraph, plus the store itself so
// crash tests can Abandon it (releasing the write-ahead log's lock
// without compacting).
func mutableServer(t *testing.T, opts ...Option) (*httptest.Server, string, store.MutableStore) {
	t.Helper()
	g := rankGraph(t)
	path := filepath.Join(t.TempDir(), "g.edges")
	if err := semiext.WriteEdgeFile(path, g); err != nil {
		t.Fatal(err)
	}
	ms, err := store.OpenMutable(path)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(rankGraph(t), append(opts, WithDataset("dyn", DatasetConfig{Store: ms}))...)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return ts, path, ms
}

func postUpdates(t *testing.T, ts *httptest.Server, name, body string, hdr map[string]string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest("POST", ts.URL+"/v1/admin/datasets/"+name+"/updates", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp, b
}

// TestUpdateEndpoint applies a batch and checks the response accounting,
// the stats counters, and that query results actually change and match a
// server built fresh over the updated graph.
func TestUpdateEndpoint(t *testing.T) {
	ts, _, _ := mutableServer(t)

	var before map[string]any
	getJSON(t, ts.URL+"/v1/topk?k=5&gamma=3&dataset=dyn", &before)

	// Delete two edges of the top clique and insert one new edge.
	resp, body := postUpdates(t, ts, "dyn",
		`{"updates":[{"op":"delete","u":0,"v":1},{"op":"delete","u":2,"v":3},{"u":4,"v":5},{"u":4,"v":5}]}`, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("updates: %d %s", resp.StatusCode, body)
	}
	var ur updatesResponse
	if err := json.Unmarshal(body, &ur); err != nil {
		t.Fatal(err)
	}
	if ur.Inserted != 1 || ur.Deleted != 2 || ur.Skipped != 1 || ur.SnapshotEpoch != 1 {
		t.Fatalf("unexpected accounting: %+v", ur)
	}

	var after map[string]any
	getJSON(t, ts.URL+"/v1/topk?k=5&gamma=3&dataset=dyn", &after)
	ab, _ := json.Marshal(after)
	bb, _ := json.Marshal(before)
	if normalizeBody(t, ab) == normalizeBody(t, bb) {
		t.Fatal("query results unchanged after deleting clique edges")
	}

	// The updated dataset must answer exactly like a server built fresh
	// over the post-update graph.
	g := rankGraph(t)
	ng, err := graph.ApplyEdgeDelta(g, [][2]int32{{4, 5}}, [][2]int32{{0, 1}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := New(ng)
	if err != nil {
		t.Fatal(err)
	}
	fts := httptest.NewServer(fresh)
	defer fts.Close()
	for _, q := range []string{"k=5&gamma=3", "k=3&gamma=2", "k=2&gamma=2&noncontainment=1", "k=2&gamma=3&truss=1"} {
		r1, err := http.Get(ts.URL + "/v1/topk?" + q + "&dataset=dyn")
		if err != nil {
			t.Fatal(err)
		}
		b1, _ := io.ReadAll(r1.Body)
		r1.Body.Close()
		r2, err := http.Get(fts.URL + "/v1/topk?" + q)
		if err != nil {
			t.Fatal(err)
		}
		b2, _ := io.ReadAll(r2.Body)
		r2.Body.Close()
		if normalizeBody(t, b1) != normalizeBody(t, b2) {
			t.Fatalf("query %s: updated dataset diverges from fresh server\n%s\n%s", q, b1, b2)
		}
	}

	// Stats surface the mutation counters.
	var stats struct {
		Datasets []DatasetInfo `json:"datasets"`
	}
	getJSON(t, ts.URL+"/v1/stats", &stats)
	var dyn *DatasetInfo
	for i := range stats.Datasets {
		if stats.Datasets[i].Name == "dyn" {
			dyn = &stats.Datasets[i]
		}
	}
	if dyn == nil || !dyn.Mutable || dyn.SnapshotEpoch != 1 || dyn.UpdatesApplied != 3 {
		t.Fatalf("stats for dyn: %+v", dyn)
	}
}

// TestUpdateCacheInvalidation: a cached result must not survive an update
// that changes the graph.
func TestUpdateCacheInvalidation(t *testing.T) {
	ts, _, _ := mutableServer(t, WithResultCache(64))
	q := ts.URL + "/v1/topk?k=4&gamma=3&dataset=dyn"

	var first, second map[string]any
	getJSON(t, q, &first)
	getJSON(t, q, &second)
	if second["cached"] != true {
		t.Fatal("second identical query was not a cache hit")
	}
	resp, body := postUpdates(t, ts, "dyn", `{"updates":[{"op":"delete","u":0,"v":1}]}`, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("updates: %d %s", resp.StatusCode, body)
	}
	var third map[string]any
	getJSON(t, q, &third)
	if third["cached"] == true {
		t.Fatal("query after update served from the stale cache")
	}
	fb, _ := json.Marshal(first)
	tb, _ := json.Marshal(third)
	if normalizeBody(t, fb) == normalizeBody(t, tb) {
		t.Fatal("result unchanged after edge deletion")
	}
}

// TestUpdateInvalidatesIndex: a mutable dataset carrying a prebuilt index
// serves index-first until the first effective update, then falls back to
// LocalSearch with identical semantics on the new graph.
func TestUpdateInvalidatesIndex(t *testing.T) {
	g := rankGraph(t)
	ms, err := store.OpenMutableGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	ix, err := index.Build(g)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(rankGraph(t), WithDataset("dyn", DatasetConfig{Store: ms, Index: ix}))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()

	var r map[string]any
	getJSON(t, ts.URL+"/v1/topk?k=3&gamma=2&dataset=dyn", &r)
	var stats struct {
		Datasets []DatasetInfo `json:"datasets"`
	}
	getJSON(t, ts.URL+"/v1/stats", &stats)
	dyn := datasetNamed(t, stats.Datasets, "dyn")
	if !dyn.IndexLoaded || dyn.IndexQueries != 1 {
		t.Fatalf("expected one index-served query before updates: %+v", dyn)
	}

	resp, body := postUpdates(t, ts, "dyn", `{"updates":[{"op":"delete","u":5,"v":6}]}`, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("updates: %d %s", resp.StatusCode, body)
	}
	var ur updatesResponse
	if err := json.Unmarshal(body, &ur); err != nil {
		t.Fatal(err)
	}
	if !ur.IndexInvalidated {
		t.Fatalf("index not reported invalidated: %+v", ur)
	}

	getJSON(t, ts.URL+"/v1/topk?k=3&gamma=2&dataset=dyn", &r)
	getJSON(t, ts.URL+"/v1/stats", &stats)
	dyn = datasetNamed(t, stats.Datasets, "dyn")
	if dyn.IndexLoaded {
		t.Fatal("index still reported loaded after an update")
	}
	if dyn.IndexQueries != 1 || dyn.LocalQueries < 1 {
		t.Fatalf("post-update query did not fall back to LocalSearch: %+v", dyn)
	}
}

func datasetNamed(t *testing.T, ds []DatasetInfo, name string) *DatasetInfo {
	t.Helper()
	for i := range ds {
		if ds[i].Name == name {
			return &ds[i]
		}
	}
	t.Fatalf("dataset %q missing from stats", name)
	return nil
}

// TestUpdateValidationErrors covers the endpoint's rejection paths.
func TestUpdateValidationErrors(t *testing.T) {
	ts, _, _ := mutableServer(t)
	cases := []struct {
		name, target, body string
		want               int
	}{
		{"empty batch", "dyn", `{"updates":[]}`, http.StatusBadRequest},
		{"bad op", "dyn", `{"updates":[{"op":"upsert","u":0,"v":1}]}`, http.StatusBadRequest},
		{"bad body", "dyn", `{`, http.StatusBadRequest},
		{"self loop", "dyn", `{"updates":[{"u":3,"v":3}]}`, http.StatusBadRequest},
		{"unknown vertex", "dyn", `{"updates":[{"u":0,"v":99}]}`, http.StatusBadRequest},
		{"immutable dataset", "default", `{"updates":[{"u":0,"v":4}]}`, http.StatusBadRequest},
		{"missing dataset", "nope", `{"updates":[{"u":0,"v":4}]}`, http.StatusNotFound},
	}
	for _, tc := range cases {
		resp, body := postUpdates(t, ts, tc.target, tc.body, nil)
		if resp.StatusCode != tc.want {
			t.Errorf("%s: got %d (%s), want %d", tc.name, resp.StatusCode, body, tc.want)
		}
	}
}

// TestUpdatesUnderConcurrentTraffic hammers a mutable dataset with queries
// while update batches land (run under -race): no query may fail or be
// paused, and the final state must equal a fresh rebuild.
func TestUpdatesUnderConcurrentTraffic(t *testing.T) {
	ts, _, _ := mutableServer(t)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(fmt.Sprintf("%s/v1/topk?k=%d&gamma=2&dataset=dyn", ts.URL, 1+i%4))
				if err != nil {
					t.Errorf("query: %v", err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("query status %d", resp.StatusCode)
					return
				}
			}
		}()
	}
	for i := 0; i < 20; i++ {
		op := "insert"
		if i%2 == 1 {
			op = "delete"
		}
		// Toggle the same edge so every batch is effective.
		resp, body := postUpdates(t, ts, "dyn", fmt.Sprintf(`{"updates":[{"op":%q,"u":0,"v":9}]}`, op), nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("batch %d: %d %s", i, resp.StatusCode, body)
		}
	}
	close(stop)
	wg.Wait()
	var stats struct {
		SnapshotEpoch  uint64        `json:"snapshot_epoch"`
		Datasets       []DatasetInfo `json:"datasets"`
		UpdatesApplied int64         `json:"updates_applied"`
	}
	getJSON(t, ts.URL+"/v1/stats", &stats)
	if dyn := datasetNamed(t, stats.Datasets, "dyn"); dyn.SnapshotEpoch != 20 || dyn.UpdatesApplied != 20 {
		t.Fatalf("expected 20 effective batches: %+v", dyn)
	}
}

// TestMutableDurabilityThroughServer: updates applied over HTTP must
// survive the store being closed and reopened from its edge file + log.
func TestMutableDurabilityThroughServer(t *testing.T) {
	ts, path, ms := mutableServer(t)
	resp, body := postUpdates(t, ts, "dyn", `{"updates":[{"op":"delete","u":0,"v":1},{"u":4,"v":9,"op":"delete"}]}`, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("updates: %d %s", resp.StatusCode, body)
	}
	r1, err := http.Get(ts.URL + "/v1/topk?k=4&gamma=2&dataset=dyn")
	if err != nil {
		t.Fatal(err)
	}
	b1, _ := io.ReadAll(r1.Body)
	r1.Body.Close()
	ts.Close()
	// Crash the store: release the WAL's lock without compacting.
	if err := ms.(interface{ Abandon() error }).Abandon(); err != nil {
		t.Fatal(err)
	}

	// Reopen the edge file: the WAL replays the two deletions.
	re, err := store.OpenMutable(path)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := New(rankGraph(t), WithDataset("dyn", DatasetConfig{Store: re}))
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2)
	defer ts2.Close()
	r2, err := http.Get(ts2.URL + "/v1/topk?k=4&gamma=2&dataset=dyn")
	if err != nil {
		t.Fatal(err)
	}
	b2, _ := io.ReadAll(r2.Body)
	r2.Body.Close()
	if normalizeBody(t, b1) != normalizeBody(t, b2) {
		t.Fatalf("replayed dataset diverges:\n%s\n%s", b1, b2)
	}
}
