package server

import (
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"influcomm/internal/graph"
	"influcomm/internal/index"
	"influcomm/internal/query"
	"influcomm/internal/store"
	"influcomm/internal/truss"
)

// registry is the named-dataset table behind a Server. Lookups take a read
// lock; load/unload take the write lock. Queries hold per-dataset
// references so an unload never closes a backend out from under an
// in-flight search.
type registry struct {
	mu       sync.RWMutex
	datasets map[string]*dataset
	// gen increments per registration, so cache keys from an unloaded
	// dataset can never alias a later dataset with the same name.
	gen uint64

	// defaultIndex is stashed by WithIndex until New registers the
	// default dataset.
	defaultIndex *index.Index
}

// dataset is one served graph: a Store backend, an optional prebuilt
// index, a lazily built truss index, and serving counters.
type dataset struct {
	name string
	gen  uint64
	st   store.Store

	// attached, when non-nil, holds the prebuilt index answering
	// default-semantics queries in output-proportional time, paired with
	// the snapshot epoch it describes; only backends with whole-graph
	// access can carry one. Queries honor the index only while the epoch
	// they key their result by equals the attached epoch (indexAt), so a
	// query racing an update can never cache a pre-update index answer
	// under the post-update epoch. On datasets with maintenance (maint)
	// the pipeline repairs or rebuilds and re-attaches after every
	// effective update; without it, the update handler drops the index
	// (dropIndex) and queries fall back to pooled LocalSearch until an
	// operator rebuilds and reloads one (icindex + admin reload).
	attached atomic.Pointer[attachedIndex]
	// maint, when non-nil, is the dataset's index-maintenance pipeline
	// (see maintenance.go); set at registration, stopped on unload.
	maint *maintainer
	// indexDropped latches the first index drop so every later update
	// batch can still report the "dropped" outcome, not only the one that
	// performed the swap.
	indexDropped atomic.Bool

	// trussIndex is built lazily on the first truss query and rebuilt only
	// when the store's snapshot epoch moves: the graph is immutable
	// between updates, so rebuilding the O(m) index per request would be
	// the same per-query setup waste the engine pool exists to avoid,
	// while building it eagerly would tax servers that never see truss
	// traffic.
	trussMu    sync.Mutex
	trussIndex *truss.Index
	trussEpoch uint64

	queries     atomic.Int64
	indexServed atomic.Int64
	localServed atomic.Int64

	// sharer deduplicates DSL plan-node executions across concurrent
	// /v1/query batches: identical canonical nodes at the same snapshot
	// epoch are computed once (singleflight + bounded memo). Per dataset,
	// because node keys do not name the dataset and epochs of different
	// datasets are unrelated counters.
	sharer *query.Sharer

	// refs counts in-flight queries; unloaded marks removal from the
	// registry. The last releasing query (or the unload itself, when the
	// dataset is idle) closes the backend exactly once.
	refs      atomic.Int64
	unloaded  atomic.Bool
	closeOnce sync.Once
	closeErr  error
}

// epoch returns the store's snapshot epoch: 0 for immutable backends, the
// monotonically increasing batch counter for mutable ones. It keys the
// result cache and the truss index, so both stay coherent across updates.
func (d *dataset) epoch() uint64 {
	if ms := store.AsMutable(d.st); ms != nil {
		return ms.SnapshotEpoch()
	}
	return 0
}

// indexAt returns the prebuilt index valid at the given snapshot epoch,
// or nil when none is attached or the attached one describes a different
// epoch — one atomic load decides both, so there is no window in which a
// stale index can serve a newer snapshot.
func (d *dataset) indexAt(epoch uint64) *index.Index {
	at := d.attached.Load()
	if at == nil || at.epoch != epoch {
		return nil
	}
	return at.ix
}

// dropIndex detaches the index (datasets without maintenance lose it on
// the first effective update), reporting whether this call performed the
// drop; the latch keeps later batches reporting the dropped state.
func (d *dataset) dropIndex() bool {
	if d.attached.Swap(nil) != nil {
		d.indexDropped.Store(true)
		return true
	}
	return false
}

// indexState summarizes the dataset's index for operators: "attached"
// (serving index-first at the current epoch), "rebuilding" (maintenance
// is catching up; queries on LocalSearch meanwhile), "dropped" (no
// maintenance and an update invalidated the index), or "" (the dataset
// never had an index).
func (d *dataset) indexState() string {
	if d.indexAt(d.epoch()) != nil {
		return "attached"
	}
	if d.maint != nil {
		return "rebuilding"
	}
	if d.indexDropped.Load() {
		return "dropped"
	}
	return ""
}

// ready reports whether the dataset is serving at full capability: a
// dataset mid-rebuild ("rebuilding") is up but warming — answers come
// from the LocalSearch fallback until the index catches up.
func (d *dataset) ready() bool {
	return d.indexState() != "rebuilding"
}

// snapshotOf returns a store's whole graph together with the epoch it
// belongs to, in one coherent read for mutable backends; immutable
// backends are eternally at epoch 0 (and semi-external ones return nil).
func snapshotOf(st store.Store) (*graph.Graph, uint64) {
	if ms := store.AsMutable(st); ms != nil {
		return ms.Snapshot()
	}
	return st.Graph(), 0
}

// truss returns the truss index for g, building it on first use and
// rebuilding it when epoch has moved past the cached one.
func (d *dataset) truss(g *graph.Graph, epoch uint64) *truss.Index {
	d.trussMu.Lock()
	defer d.trussMu.Unlock()
	if d.trussIndex == nil || d.trussEpoch != epoch {
		d.trussIndex = truss.NewIndex(g)
		d.trussEpoch = epoch
	}
	return d.trussIndex
}

func (d *dataset) acquire() { d.refs.Add(1) }

// closeStore closes the backend exactly once, recording the error —
// mutable backends compact their write-ahead log here, and a failed
// compaction must not vanish silently. closeErr is written inside the
// Once and read only after a Do call has returned, which is the
// synchronization sync.Once provides.
func (d *dataset) closeStore() {
	d.closeOnce.Do(func() { d.closeErr = d.st.Close() })
}

func (d *dataset) release() {
	if d.refs.Add(-1) == 0 && d.unloaded.Load() {
		d.closeStore()
	}
}

// markUnloaded flags the dataset as removed and closes the backend if no
// query holds it; otherwise the drain in release does.
func (d *dataset) markUnloaded() {
	d.unloaded.Store(true)
	if d.refs.Load() == 0 {
		d.closeStore()
	}
}

// DatasetInfo describes one loaded dataset on /v1/datasets and /v1/stats.
type DatasetInfo struct {
	Name    string `json:"name"`
	Backend string `json:"backend"`
	// Mode reports the semi-external access path ("mmap", "pread", or
	// "stream"); empty for in-memory backends.
	Mode string `json:"mode,omitempty"`
	// Format reports the semi-external edge-file layout ("v1" flat, "v2"
	// delta+varint compressed); empty for in-memory backends.
	Format string `json:"format,omitempty"`
	// Workers is the per-query parallelism the dataset was loaded with;
	// 0 or 1 means sequential serving.
	Workers int `json:"workers,omitempty"`
	// CachedPrefix is the vertex count the semi-external decoded-prefix
	// cache currently covers; 0 when disabled or for in-memory backends.
	CachedPrefix int   `json:"cached_prefix,omitempty"`
	Vertices     int   `json:"vertices"`
	Edges        int64 `json:"edges"`
	IndexLoaded  bool  `json:"index_loaded"`
	// Ready distinguishes "up" from "warming": false while index
	// maintenance is rebuilding (queries fall back to LocalSearch
	// meanwhile), so cluster health probes can deprioritize the replica
	// without taking it out of rotation.
	Ready        bool  `json:"ready"`
	Queries      int64 `json:"queries"`
	IndexQueries int64 `json:"index_queries"`
	LocalQueries int64 `json:"local_queries"`
	// Mutable marks datasets that accept online edge updates;
	// SnapshotEpoch and UpdatesApplied report how many effective batches
	// and individual mutations have been applied since load.
	Mutable        bool   `json:"mutable,omitempty"`
	SnapshotEpoch  uint64 `json:"snapshot_epoch,omitempty"`
	UpdatesApplied int64  `json:"updates_applied,omitempty"`
	// IndexState reports the index-maintenance state ("attached",
	// "rebuilding", "dropped"); empty for datasets that never carried an
	// index. IndexRebuilds and IndexDeltaRepairs count background rebuilds
	// and synchronous delta repairs attached since load.
	IndexState        string `json:"index_state,omitempty"`
	IndexRebuilds     int64  `json:"index_rebuilds,omitempty"`
	IndexDeltaRepairs int64  `json:"index_delta_repairs,omitempty"`
}

func (d *dataset) info() DatasetInfo {
	info := DatasetInfo{
		Name:         d.name,
		Backend:      d.st.Backend(),
		Vertices:     d.st.NumVertices(),
		Edges:        d.st.NumEdges(),
		IndexLoaded:  d.indexAt(d.epoch()) != nil,
		IndexState:   d.indexState(),
		Ready:        d.ready(),
		Queries:      d.queries.Load(),
		IndexQueries: d.indexServed.Load(),
		LocalQueries: d.localServed.Load(),
	}
	if d.maint != nil {
		info.IndexRebuilds = d.maint.rebuilds.Load()
		info.IndexDeltaRepairs = d.maint.deltaRepairs.Load()
	}
	if se, ok := d.st.(*store.SemiExt); ok {
		info.Mode = se.Mode()
		info.Format = fmt.Sprintf("v%d", se.Format())
		info.Workers = se.Workers()
		info.CachedPrefix = se.CachedPrefix()
	}
	if ms := store.AsMutable(d.st); ms != nil {
		info.Mutable = true
		info.SnapshotEpoch = ms.SnapshotEpoch()
		info.UpdatesApplied = ms.UpdatesApplied()
	}
	return info
}

func (r *registry) lookup(name string) *dataset {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.datasets[name]
}

// acquireLookup resolves name and takes the in-flight reference while
// still under the registry read lock. RemoveDataset needs the write lock
// to delete the entry, so it can never observe zero references between a
// query resolving the dataset and pinning it — the gap a bare
// lookup-then-acquire would leave.
func (r *registry) acquireLookup(name string) *dataset {
	r.mu.RLock()
	defer r.mu.RUnlock()
	ds := r.datasets[name]
	if ds != nil {
		ds.acquire()
	}
	return ds
}

// DatasetConfig describes a dataset to register. Exactly one of Graph and
// Store must be set; Index optionally attaches a prebuilt index and
// requires an in-memory backend over exactly the index's graph.
type DatasetConfig struct {
	Graph *graph.Graph // in-memory backend over this graph
	Store store.Store  // explicit backend (e.g. store.OpenEdgeFile)
	Index *index.Index

	// Reindex selects index maintenance under online updates for mutable
	// whole-graph datasets: "auto" keeps the index current across updates
	// (synchronous delta repair for small deltas, epoch-tagged background
	// rebuild otherwise), "off" drops the index on the first effective
	// update (the pre-maintenance behavior), and "" inherits the server
	// default (WithAutoReindex). "auto" on an ineligible backend is a
	// registration error; the inherited default silently skips ineligible
	// datasets.
	Reindex string
	// ReindexWorkers bounds the maintenance build/repair parallelism
	// (index.BuildContext semantics; 0 = GOMAXPROCS with the small-work
	// sequential escape).
	ReindexWorkers int
	// ReindexDebounce is how long the background worker waits after an
	// invalidating update before rebuilding, so an update burst costs one
	// rebuild; 0 uses the 100ms default.
	ReindexDebounce time.Duration
	// RepairFraction is the largest touched-suffix fraction (as a share of
	// the vertex count, in (0, 1]) an update delta may reach and still be
	// repaired synchronously in the index-maintenance fast path; larger
	// deltas go to the background rebuild. 0 keeps the 0.25 default;
	// anything else outside (0, 1] is a registration error.
	RepairFraction float64
}

// errAlreadyLoaded distinguishes a name conflict (409) from other
// registration failures (400) in the admin handler.
var errAlreadyLoaded = errors.New("already loaded")

// AddDataset registers a dataset under name; it fails if the name is
// invalid or already taken, or the configuration is inconsistent. Safe to
// call while the server is serving.
func (s *Server) AddDataset(name string, cfg DatasetConfig) error {
	_, err := s.addDataset(name, cfg)
	return err
}

// addDataset is AddDataset returning the registered dataset, so the admin
// handler can describe it without a racy re-lookup.
func (s *Server) addDataset(name string, cfg DatasetConfig) (*dataset, error) {
	if !validDatasetName(name) {
		return nil, fmt.Errorf("server: invalid dataset name %q (want 1-64 chars of [A-Za-z0-9._-])", name)
	}
	var st store.Store
	switch {
	case cfg.Graph != nil && cfg.Store != nil:
		return nil, fmt.Errorf("server: dataset %q sets both Graph and Store", name)
	case cfg.Graph != nil:
		var err error
		if st, err = store.OpenMem(cfg.Graph); err != nil {
			return nil, fmt.Errorf("server: dataset %q: %w", name, err)
		}
	case cfg.Store != nil:
		st = cfg.Store
	default:
		return nil, fmt.Errorf("server: dataset %q has neither Graph nor Store", name)
	}
	if cfg.Index != nil {
		g := st.Graph()
		if g == nil {
			return nil, fmt.Errorf("server: dataset %q: an index needs whole-graph access, the %s backend cannot carry one", name, st.Backend())
		}
		if cfg.Index.Graph() != g {
			return nil, fmt.Errorf("server: dataset %q: index is bound to a different graph than the one being served (%d vs %d vertices); rebuild or reload it against this graph",
				name, cfg.Index.Graph().NumVertices(), g.NumVertices())
		}
	}
	switch cfg.Reindex {
	case "", "auto", "off":
	default:
		return nil, fmt.Errorf("server: dataset %q: bad reindex value %q (want \"auto\" or \"off\")", name, cfg.Reindex)
	}
	if cfg.RepairFraction < 0 || cfg.RepairFraction > 1 {
		return nil, fmt.Errorf("server: dataset %q: repair fraction %v out of (0, 1]", name, cfg.RepairFraction)
	}
	reindex := cfg.Reindex == "auto" || (cfg.Reindex == "" && s.autoReindex)
	ms := store.AsMutable(st)
	if reindex && (ms == nil || st.Graph() == nil) {
		if cfg.Reindex == "auto" {
			return nil, fmt.Errorf("server: dataset %q: reindex=auto needs a mutable whole-graph backend, not %s", name, st.Backend())
		}
		// The server-wide default applies only where maintenance can work.
		reindex = false
	}
	s.registry.mu.Lock()
	defer s.registry.mu.Unlock()
	if _, ok := s.registry.datasets[name]; ok {
		return nil, fmt.Errorf("server: dataset %q is %w", name, errAlreadyLoaded)
	}
	s.registry.gen++
	ds := &dataset{name: name, gen: s.registry.gen, st: st, sharer: query.NewSharer(0)}
	if cfg.Index != nil {
		ds.attached.Store(&attachedIndex{ix: cfg.Index, epoch: ds.epoch()})
	}
	if reindex {
		ds.maint = newMaintainer(ds, ms, maintainerConfig{
			workers:        cfg.ReindexWorkers,
			debounce:       cfg.ReindexDebounce,
			repairFraction: cfg.RepairFraction,
		})
		ds.maint.start()
	}
	s.registry.datasets[name] = ds
	return ds, nil
}

// RemoveDataset unloads the named dataset: it disappears from routing
// immediately, cached results for it are purged, and the backend is closed
// once in-flight queries drain. Safe to call while the server is serving.
func (s *Server) RemoveDataset(name string) error {
	s.registry.mu.Lock()
	ds, ok := s.registry.datasets[name]
	if ok {
		delete(s.registry.datasets, name)
	}
	s.registry.mu.Unlock()
	if !ok {
		return fmt.Errorf("server: dataset %q is not loaded", name)
	}
	if s.cache != nil {
		s.cache.invalidateDataset(name)
	}
	if ds.maint != nil {
		// Drain the maintenance pipeline before the backend can close: an
		// in-flight rebuild aborts through its context, and the update
		// hook is unregistered so nothing kicks it again.
		ds.maint.stop()
	}
	ds.markUnloaded()
	return nil
}

// Close unloads every dataset and closes its backend (waiting for
// in-flight queries per the usual drain discipline). Call it after the
// HTTP server has shut down: backends with durable state — mutable
// datasets with a pending write-ahead log — compact on close, so a clean
// process exit leaves their edge files fresh and their logs removed. The
// returned error joins every close failure of a dataset that was idle
// (the post-drain case); a dataset still pinned by a straggling query
// closes later, its error necessarily unreported.
func (s *Server) Close() error {
	s.registry.mu.Lock()
	dss := make([]*dataset, 0, len(s.registry.datasets))
	for name, ds := range s.registry.datasets {
		dss = append(dss, ds)
		delete(s.registry.datasets, name)
	}
	s.registry.mu.Unlock()
	var errs []error
	for _, ds := range dss {
		if ds.maint != nil {
			ds.maint.stop()
		}
		ds.markUnloaded()
		if ds.refs.Load() == 0 {
			// Synchronize with whichever goroutine ran the close, then
			// read its recorded outcome.
			ds.closeOnce.Do(func() {})
			if ds.closeErr != nil {
				errs = append(errs, fmt.Errorf("dataset %s: %w", ds.name, ds.closeErr))
			}
		}
	}
	return errors.Join(errs...)
}

func validDatasetName(name string) bool {
	if len(name) == 0 || len(name) > 64 {
		return false
	}
	for _, c := range []byte(name) {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// loadRequest is the POST /v1/admin/datasets body.
type loadRequest struct {
	// Name registers the dataset for routing (?dataset=name).
	Name string `json:"name"`
	// Path is the server-side file to load: a graph file for the memory
	// backend, an edge file for the semiext backend.
	Path string `json:"path"`
	// Backend selects "memory" (default), "semiext", or "mutable".
	Backend string `json:"backend,omitempty"`
	// Mutable opens the path (an edge file) as a durable mutable dataset;
	// shorthand for Backend "mutable".
	Mutable bool `json:"mutable,omitempty"`
	// Index optionally loads a prebuilt index file (memory backend only).
	Index string `json:"index,omitempty"`
	// PrefixCacheBytes budgets the semi-external decoded-prefix cache
	// (see store.WithPrefixCacheBytes); 0 disables it.
	PrefixCacheBytes int64 `json:"prefix_cache_bytes,omitempty"`
	// Mode selects the semi-external access path: "auto" (default),
	// "mmap", or "stream".
	Mode string `json:"mode,omitempty"`
	// Workers enables intra-query parallelism on the semi-external backend:
	// each query's candidate prefixes decode and evaluate on up to this many
	// goroutines (see store.WithWorkers). On the mutable backend it instead
	// bounds the index-maintenance build/repair parallelism (0 =
	// GOMAXPROCS). 0 or 1 serves sequentially.
	Workers int `json:"workers,omitempty"`
	// Reindex selects index maintenance for mutable datasets: "auto"
	// keeps the index current across updates, "off" drops it on the first
	// effective update; empty inherits the server default.
	Reindex string `json:"reindex,omitempty"`
	// ReindexDebounce overrides the background-rebuild debounce as a Go
	// duration string (e.g. "250ms"); empty uses the 100ms default.
	ReindexDebounce string `json:"reindex_debounce,omitempty"`
	// RepairFrac overrides the synchronous delta-repair gate (see
	// DatasetConfig.RepairFraction); 0 keeps the 0.25 default.
	RepairFrac float64 `json:"repair_frac,omitempty"`
}

// adminAllowed enforces the optional bearer token on admin endpoints.
func (s *Server) adminAllowed(w http.ResponseWriter, r *http.Request) bool {
	if s.adminToken == "" {
		return true
	}
	got := []byte(r.Header.Get("Authorization"))
	want := []byte("Bearer " + s.adminToken)
	if subtle.ConstantTimeCompare(got, want) == 1 {
		return true
	}
	w.Header().Set("WWW-Authenticate", "Bearer")
	writeJSON(w, http.StatusUnauthorized, map[string]string{"error": "admin endpoints need a valid bearer token"})
	return false
}

func (s *Server) handleLoadDataset(w http.ResponseWriter, r *http.Request) {
	if !s.adminAllowed(w, r) {
		return
	}
	var req loadRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad request body: " + err.Error()})
		return
	}
	if req.Name == "" || req.Path == "" {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "name and path are required"})
		return
	}
	var opts []store.OpenOption
	if req.PrefixCacheBytes != 0 {
		opts = append(opts, store.WithPrefixCacheBytes(req.PrefixCacheBytes))
	}
	if req.Mode != "" {
		opts = append(opts, store.WithEdgeFileMode(req.Mode))
	}
	if req.Workers != 0 {
		opts = append(opts, store.WithWorkers(req.Workers))
	}
	backend := req.Backend
	if req.Mutable {
		if backend != "" && backend != "mutable" {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": fmt.Sprintf("mutable conflicts with backend %q", backend)})
			return
		}
		backend = "mutable"
	}
	var debounce time.Duration
	if req.ReindexDebounce != "" {
		var err error
		if debounce, err = time.ParseDuration(req.ReindexDebounce); err != nil {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad reindex_debounce: " + err.Error()})
			return
		}
	}
	st, err := store.Open(req.Path, backend, opts...)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	cfg := DatasetConfig{Store: st, Reindex: req.Reindex, ReindexDebounce: debounce, RepairFraction: req.RepairFrac}
	if backend == "mutable" {
		cfg.ReindexWorkers = req.Workers
	}
	if req.Index != "" {
		g := st.Graph()
		if g == nil {
			st.Close()
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "an index needs the memory backend"})
			return
		}
		ix, err := index.Load(req.Index, g)
		if err != nil {
			st.Close()
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
			return
		}
		cfg.Index = ix
	}
	ds, err := s.addDataset(req.Name, cfg)
	if err != nil {
		st.Close()
		code := http.StatusBadRequest
		if errors.Is(err, errAlreadyLoaded) {
			code = http.StatusConflict
		}
		writeJSON(w, code, map[string]string{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusCreated, ds.info())
}

func (s *Server) handleUnloadDataset(w http.ResponseWriter, r *http.Request) {
	if !s.adminAllowed(w, r) {
		return
	}
	name := r.PathValue("name")
	if err := s.RemoveDataset(name); err != nil {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "unloaded", "dataset": name})
}
