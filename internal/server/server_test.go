package server

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"influcomm/internal/graph"
)

func testGraph(t *testing.T) *graph.Graph {
	t.Helper()
	weights := []float64{10, 11, 12, 13, 14, 15, 16, 17, 18, 19}
	edges := [][2]int32{
		{0, 1}, {0, 5}, {0, 6}, {1, 5}, {1, 6}, {5, 6},
		{3, 4}, {3, 7}, {3, 8}, {4, 7}, {4, 8}, {7, 8},
		{3, 9}, {7, 9}, {8, 9},
		{1, 2}, {2, 3},
	}
	return graph.MustFromEdges(weights, edges)
}

func newTestServer(t *testing.T, opts ...Option) *httptest.Server {
	t.Helper()
	s, err := New(testGraph(t), opts...)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return ts
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("decoding %s: %v", url, err)
	}
	return resp.StatusCode
}

func TestStatsEndpoint(t *testing.T) {
	ts := newTestServer(t)
	var got statsResponse
	if code := getJSON(t, ts.URL+"/v1/stats", &got); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if got.Vertices != 10 || got.Edges != 17 {
		t.Errorf("stats = %+v", got)
	}
}

func TestTopKEndpoint(t *testing.T) {
	ts := newTestServer(t)
	var got topKResponse
	if code := getJSON(t, ts.URL+"/v1/topk?k=2&gamma=3", &got); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if len(got.Communities) != 2 {
		t.Fatalf("got %d communities, want 2", len(got.Communities))
	}
	if got.Communities[0].Influence != 13 || got.Communities[1].Influence != 10 {
		t.Errorf("influences %v, %v", got.Communities[0].Influence, got.Communities[1].Influence)
	}
	if got.Communities[0].Size != 5 {
		t.Errorf("top community size = %d, want 5", got.Communities[0].Size)
	}
	if got.Mode != "core" {
		t.Errorf("mode = %q", got.Mode)
	}
	// Members are original IDs: {3,4,7,8,9}.
	want := map[int32]bool{3: true, 4: true, 7: true, 8: true, 9: true}
	for _, m := range got.Communities[0].Members {
		if !want[m] {
			t.Errorf("unexpected member %d", m)
		}
	}
}

func TestTopKDefaults(t *testing.T) {
	ts := newTestServer(t)
	var got topKResponse
	if code := getJSON(t, ts.URL+"/v1/topk", &got); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if got.K != 10 || got.Gamma != 5 {
		t.Errorf("defaults = k=%d γ=%d", got.K, got.Gamma)
	}
}

func TestTopKModes(t *testing.T) {
	ts := newTestServer(t)
	var nc topKResponse
	if code := getJSON(t, ts.URL+"/v1/topk?k=5&gamma=3&noncontainment=1", &nc); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if nc.Mode != "noncontainment" || len(nc.Communities) != 2 {
		t.Errorf("NC response: mode=%q n=%d", nc.Mode, len(nc.Communities))
	}
	var tr topKResponse
	if code := getJSON(t, ts.URL+"/v1/topk?k=5&gamma=4&truss=1", &tr); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if tr.Mode != "truss" || len(tr.Communities) == 0 {
		t.Errorf("truss response: mode=%q n=%d", tr.Mode, len(tr.Communities))
	}
}

func TestBadRequests(t *testing.T) {
	ts := newTestServer(t, WithMaxK(50))
	cases := []string{
		"/v1/topk?k=abc",
		"/v1/topk?gamma=x",
		"/v1/topk?k=0",
		"/v1/topk?k=51",
		"/v1/topk?gamma=0",
		"/v1/topk?truss=1&noncontainment=1",
		"/v1/topk?truss=1&gamma=1",
	}
	for _, path := range cases {
		var e map[string]string
		if code := getJSON(t, ts.URL+path, &e); code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", path, code)
		}
		if e["error"] == "" {
			t.Errorf("%s: missing error message", path)
		}
	}
}

func TestConcurrentRequests(t *testing.T) {
	ts := newTestServer(t)
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var got topKResponse
			url := fmt.Sprintf("%s/v1/topk?k=%d&gamma=3", ts.URL, i%5+1)
			resp, err := http.Get(url)
			if err != nil {
				errs <- err
				return
			}
			defer resp.Body.Close()
			if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
				errs <- err
				return
			}
			if len(got.Communities) == 0 {
				errs <- fmt.Errorf("request %d: empty result", i)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil); err == nil {
		t.Error("nil graph: want error")
	}
}

func TestHealthz(t *testing.T) {
	ts := newTestServer(t)
	var got struct {
		Status   string   `json:"status"`
		Ready    bool     `json:"ready"`
		Datasets int      `json:"datasets"`
		Warming  []string `json:"warming"`
	}
	if code := getJSON(t, ts.URL+"/healthz", &got); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if got.Status != "ok" {
		t.Errorf("healthz status = %+v", got)
	}
	if !got.Ready || got.Datasets < 1 || len(got.Warming) != 0 {
		t.Errorf("a steady server must be ready: %+v", got)
	}
}

// TestAbortedRequestStopsSearch drives the handler with already-cancelled
// and already-expired request contexts: the search must stop, the status
// must reflect why, and the canceled counter must advance — the end-to-end
// cancellation path without any timing dependence.
func TestAbortedRequestStopsSearch(t *testing.T) {
	s, err := New(testGraph(t))
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest("GET", "/v1/topk?k=2&gamma=3", nil).WithContext(ctx)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != 499 {
		t.Errorf("cancelled request: status %d, want 499", rec.Code)
	}

	dctx, dcancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer dcancel()
	req = httptest.NewRequest("GET", "/v1/topk?k=2&gamma=3&truss=1", nil).WithContext(dctx)
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusGatewayTimeout {
		t.Errorf("expired request: status %d, want 504", rec.Code)
	}

	if got := s.metrics.canceled.Load(); got != 2 {
		t.Errorf("canceled counter = %d, want 2", got)
	}
	if got := s.metrics.inFlight.Load(); got != 0 {
		t.Errorf("in-flight counter = %d after completion, want 0", got)
	}
}

// TestSaturationRejects fills the admission semaphore by hand and checks
// the next request is shed with a 503 and counted.
func TestSaturationRejects(t *testing.T) {
	s, err := New(testGraph(t), WithMaxInFlight(2))
	if err != nil {
		t.Fatal(err)
	}
	s.inflight <- struct{}{}
	s.inflight <- struct{}{}
	req := httptest.NewRequest("GET", "/v1/topk?k=1&gamma=3", nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("saturated server: status %d, want 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("503 response missing Retry-After")
	}
	if got := s.metrics.rejected.Load(); got != 1 {
		t.Errorf("rejected counter = %d, want 1", got)
	}
	<-s.inflight
	<-s.inflight
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest("GET", "/v1/topk?k=1&gamma=3", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("drained server: status %d, want 200", rec.Code)
	}
}

// TestConcurrentLoad hammers a limited server from many goroutines (run
// under -race): every response is a 200 or a shed 503, and the counters
// reconcile exactly with what the clients saw.
func TestConcurrentLoad(t *testing.T) {
	s, err := New(testGraph(t), WithMaxInFlight(2))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)

	const total = 128
	var ok, shed, other atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < total; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			url := fmt.Sprintf("%s/v1/topk?k=%d&gamma=3", ts.URL, i%5+1)
			resp, err := http.Get(url)
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusOK:
				var got topKResponse
				if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
					t.Errorf("request %d: %v", i, err)
					return
				}
				if len(got.Communities) == 0 {
					t.Errorf("request %d: empty result", i)
				}
				ok.Add(1)
			case http.StatusServiceUnavailable:
				shed.Add(1)
			default:
				other.Add(1)
				t.Errorf("request %d: status %d", i, resp.StatusCode)
			}
		}(i)
	}
	wg.Wait()
	if ok.Load()+shed.Load()+other.Load() != total {
		t.Fatalf("accounting mismatch: %d ok, %d shed, %d other", ok.Load(), shed.Load(), other.Load())
	}
	var st statsResponse
	if code := getJSON(t, ts.URL+"/v1/stats", &st); code != http.StatusOK {
		t.Fatalf("stats status %d", code)
	}
	if st.Queries != ok.Load() || st.Rejected != shed.Load() {
		t.Errorf("stats queries=%d rejected=%d, clients saw ok=%d shed=%d",
			st.Queries, st.Rejected, ok.Load(), shed.Load())
	}
	if st.InFlight != 0 {
		t.Errorf("in-flight = %d after load, want 0", st.InFlight)
	}
	if st.MaxInFlight != 2 {
		t.Errorf("max_in_flight = %d, want 2", st.MaxInFlight)
	}
}

// TestStatsCounters checks the query counter and latency accumulator move.
func TestStatsCounters(t *testing.T) {
	ts := newTestServer(t)
	for i := 0; i < 3; i++ {
		var got topKResponse
		if code := getJSON(t, ts.URL+"/v1/topk?k=2&gamma=3", &got); code != http.StatusOK {
			t.Fatalf("status %d", code)
		}
	}
	var e map[string]string
	if code := getJSON(t, ts.URL+"/v1/topk?k=0", &e); code != http.StatusBadRequest {
		t.Fatalf("bad request status %d", code)
	}
	var st statsResponse
	if code := getJSON(t, ts.URL+"/v1/stats", &st); code != http.StatusOK {
		t.Fatalf("stats status %d", code)
	}
	if st.Queries != 4 {
		t.Errorf("queries = %d, want 4 (bad requests are admitted before validation)", st.Queries)
	}
	if st.Errors != 1 {
		t.Errorf("errors = %d, want 1", st.Errors)
	}
	if st.Canceled != 0 || st.Rejected != 0 {
		t.Errorf("canceled=%d rejected=%d, want 0/0", st.Canceled, st.Rejected)
	}
}
