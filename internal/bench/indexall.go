package bench

import (
	"fmt"

	"influcomm/internal/core"
	"influcomm/internal/index"
	"influcomm/internal/workload"
)

// AblationIndexAll quantifies the paper's introduction: the index-based
// IndexAll [26] answers queries fastest but pays a large construction cost
// and serves only one weight vector, while LocalSearch needs no
// preparation. The figure reports per-query times side by side, with the
// one-off index construction cost in the notes.
func AblationIndexAll(cfg Config) (*Figure, error) {
	name := "livejournal"
	if len(cfg.Datasets) == 1 {
		name = cfg.Datasets[0]
	}
	_, g, err := load(name)
	if err != nil {
		return nil, err
	}
	gamma := gammaFor(name, g, workload.DefaultGamma)

	var ix *index.Index
	buildMS := timeMS(func() {
		var err error
		ix, err = index.Build(g)
		if err != nil {
			panic(err)
		}
	})

	f := &Figure{
		ID:     "ablation/indexall/" + name,
		Title:  fmt.Sprintf("IndexAll vs LocalSearch-P, γ=%d, vary k", gamma),
		XLabel: "k",
	}
	for _, k := range workload.KGrid {
		f.AddRow(fmt.Sprintf("%d", k), map[string]float64{
			"IndexAll (query)": bestOf(cfg.repeat(), func() {
				if _, err := ix.TopK(k, gamma); err != nil {
					panic(err)
				}
			}),
			"LocalSearch-P": bestOf(cfg.repeat(), func() {
				if _, err := core.TopKProgressive(g, k, gamma, core.Options{}); err != nil {
					panic(err)
				}
			}),
		})
	}
	f.Notes = append(f.Notes,
		fmt.Sprintf("IndexAll construction: %.1f ms (one-off, per weight vector; %d int32 slots)",
			buildMS, ix.MemoryFootprint()),
		"the index must be rebuilt on every graph or weight change; LocalSearch needs no preparation")
	return f, nil
}
