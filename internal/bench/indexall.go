package bench

import (
	"context"
	"fmt"
	"io"

	"influcomm/internal/core"
	"influcomm/internal/index"
	"influcomm/internal/workload"
)

// AblationIndexAll quantifies the paper's introduction: the index-based
// IndexAll [26] answers queries fastest but pays a large construction cost
// and serves only one weight vector, while LocalSearch needs no
// preparation. The figure reports per-query times side by side, with the
// one-off index construction cost in the notes.
func AblationIndexAll(cfg Config) (*Figure, error) {
	name := "livejournal"
	if len(cfg.Datasets) == 1 {
		name = cfg.Datasets[0]
	}
	_, g, err := load(name)
	if err != nil {
		return nil, err
	}
	gamma := gammaFor(name, g, workload.DefaultGamma)

	var ix *index.Index
	seqBuildMS := timeMS(func() {
		var err error
		ix, err = index.BuildContext(context.Background(), g, 1)
		if err != nil {
			panic(err)
		}
	})
	parBuildMS := timeMS(func() {
		var err error
		ix, err = index.Build(g) // bounded worker pool, all cores
		if err != nil {
			panic(err)
		}
	})
	serialized, err := ix.WriteTo(io.Discard)
	if err != nil {
		return nil, err
	}

	f := &Figure{
		ID:     "ablation/indexall/" + name,
		Title:  fmt.Sprintf("IndexAll vs LocalSearch-P, γ=%d, vary k", gamma),
		XLabel: "k",
	}
	for _, k := range workload.KGrid {
		f.AddRow(fmt.Sprintf("%d", k), map[string]float64{
			"IndexAll (query)": bestOf(cfg.repeat(), func() {
				if _, err := ix.TopK(k, gamma); err != nil {
					panic(err)
				}
			}),
			"LocalSearch-P": bestOf(cfg.repeat(), func() {
				if _, err := core.TopKProgressive(g, k, gamma, core.Options{}); err != nil {
					panic(err)
				}
			}),
		})
	}
	f.Notes = append(f.Notes,
		fmt.Sprintf("IndexAll construction: %.1f ms sequential, %.1f ms parallel (one-off, per weight vector; %d int32 slots, %d bytes serialized)",
			seqBuildMS, parBuildMS, ix.MemoryFootprint(), serialized),
		"the index must be rebuilt on every graph or weight change; LocalSearch needs no preparation",
		"prebuild and persist with icindex, serve index-first with icserver -index")
	return f, nil
}
