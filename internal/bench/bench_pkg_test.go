package bench

import (
	"strings"
	"testing"
)

// The harness smoke tests restrict every experiment to the smallest
// stand-in so the suite stays fast; cmd/icbench runs the full sweeps.
func smallCfg() Config { return Config{Datasets: []string{"email"}} }

func TestTable1(t *testing.T) {
	if testing.Short() {
		t.Skip("harness in -short mode")
	}
	f, err := Table1(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	out := f.String()
	for _, col := range []string{"vertices", "edges", "dmax", "davg", "gmax"} {
		if !strings.Contains(out, col) {
			t.Errorf("table 1 missing column %s:\n%s", col, out)
		}
	}
}

func TestFiguresSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("harness in -short mode")
	}
	cfg := smallCfg()
	cases := []struct {
		name string
		run  func() ([]*Figure, error)
	}{
		{"fig8", func() ([]*Figure, error) { return Fig8(cfg) }},
		{"fig9", func() ([]*Figure, error) { return Fig9(cfg) }},
		{"fig11", func() ([]*Figure, error) { return Fig11(cfg) }},
		{"fig12", func() ([]*Figure, error) { return Fig12(cfg) }},
		{"fig13", func() ([]*Figure, error) { return Fig13(cfg) }},
		{"fig15", func() ([]*Figure, error) { return Fig15(cfg) }},
		{"fig16", func() ([]*Figure, error) { return Fig16(cfg) }},
		{"fig17", func() ([]*Figure, error) { return Fig17(cfg) }},
		{"fig18", func() ([]*Figure, error) { return Fig18(cfg) }},
		{"fig19", func() ([]*Figure, error) { return Fig19(cfg) }},
	}
	for _, c := range cases {
		figs, err := c.run()
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if len(figs) == 0 {
			t.Fatalf("%s produced no figures", c.name)
		}
		for _, f := range figs {
			if len(f.Rows) == 0 || len(f.Series) == 0 {
				t.Errorf("%s/%s has empty rows or series", c.name, f.ID)
			}
			if f.String() == "" {
				t.Errorf("%s/%s renders empty", c.name, f.ID)
			}
		}
	}
}

func TestFig17Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("harness in -short mode")
	}
	figs, err := Fig17(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	// The paper's qualitative claim: OnlineAll-SE visits the entire graph,
	// LocalSearch-SE visits a fraction.
	for _, f := range figs {
		for _, r := range f.Rows {
			oa, ls := r.Values["OnlineAll-SE"], r.Values["LocalSearch-SE"]
			if oa != 1 {
				t.Errorf("%s k=%s: OnlineAll-SE visited %v of graph, want 1", f.ID, r.X, oa)
			}
			if ls > oa {
				t.Errorf("%s k=%s: LocalSearch-SE visited more than OnlineAll-SE", f.ID, r.X)
			}
		}
	}
}

func TestCaseStudy(t *testing.T) {
	if testing.Short() {
		t.Skip("harness in -short mode")
	}
	s, err := CaseStudy()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Top-1 influential 5-community", "minimum-weight member"} {
		if !strings.Contains(s, want) {
			t.Errorf("case study output missing %q:\n%s", want, s)
		}
	}
}

func TestRunUnknown(t *testing.T) {
	if err := Run(nil, "fig99", Config{}); err == nil {
		t.Error("unknown experiment: want error")
	}
}

func TestFigureRendering(t *testing.T) {
	f := &Figure{ID: "x", Title: "t", XLabel: "k"}
	f.AddRow("5", map[string]float64{"A": 1.5, "B": 1000})
	f.AddRow("10", map[string]float64{"A": 0.25})
	out := f.String()
	if !strings.Contains(out, "1.50") || !strings.Contains(out, "1000") || !strings.Contains(out, "0.2500") {
		t.Errorf("unexpected rendering:\n%s", out)
	}
	if !strings.Contains(out, "-") {
		t.Errorf("missing value should render as '-':\n%s", out)
	}
}
