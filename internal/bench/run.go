package bench

import (
	"fmt"
	"io"
)

// Experiment names accepted by Run, in paper order.
var Experiments = []string{
	"table1", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13",
	"fig14", "fig15", "fig16", "fig17", "fig18", "fig19",
	"access-fraction", "ablation-growth", "ablation-tau", "ablation-index",
	"semiserve", "casestudy",
}

// Run executes the named experiment and renders it to w. Name "all" runs
// the entire suite.
func Run(w io.Writer, name string, cfg Config) error {
	if name == "all" {
		for _, n := range Experiments {
			if err := Run(w, n, cfg); err != nil {
				return err
			}
		}
		return nil
	}
	single := func(f *Figure, err error) error {
		if err != nil {
			return err
		}
		f.Render(w)
		return nil
	}
	multi := func(fs []*Figure, err error) error {
		if err != nil {
			return err
		}
		for _, f := range fs {
			f.Render(w)
		}
		return nil
	}
	switch name {
	case "table1":
		return single(Table1(cfg))
	case "fig8":
		return multi(Fig8(cfg))
	case "fig9":
		return multi(Fig9(cfg))
	case "fig10":
		return multi(Fig10(cfg))
	case "fig11":
		return multi(Fig11(cfg))
	case "fig12":
		return multi(Fig12(cfg))
	case "fig13":
		return multi(Fig13(cfg))
	case "fig14":
		return multi(Fig14(cfg))
	case "fig15":
		return multi(Fig15(cfg))
	case "fig16":
		return multi(Fig16(cfg))
	case "fig17":
		return multi(Fig17(cfg))
	case "fig18":
		return multi(Fig18(cfg))
	case "fig19":
		return multi(Fig19(cfg))
	case "access-fraction":
		return single(AccessFraction(cfg))
	case "ablation-growth":
		return single(AblationArithmeticGrowth(cfg))
	case "ablation-tau":
		return single(AblationInitialTau(cfg))
	case "ablation-index":
		return single(AblationIndexAll(cfg))
	case "semiserve":
		return multi(SemiServe(cfg))
	case "casestudy":
		s, err := CaseStudy()
		if err != nil {
			return err
		}
		_, err = io.WriteString(w, s)
		return err
	default:
		return fmt.Errorf("bench: unknown experiment %q (known: %v, or \"all\")", name, Experiments)
	}
}
