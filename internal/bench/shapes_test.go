package bench

import (
	"testing"

	"influcomm/internal/baseline"
	"influcomm/internal/core"
	"influcomm/internal/truss"
	"influcomm/internal/workload"
)

// TestHeadlineShapes is the reproduction CI: it re-measures the paper's
// central comparative claims on the smallest stand-in and fails if any
// ordering inverts. Absolute numbers are noisy; an ordering with a 2x guard
// band is not.
func TestHeadlineShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("shape checks in -short mode")
	}
	d, err := workload.ByName("email")
	if err != nil {
		t.Fatal(err)
	}
	g, err := d.Load()
	if err != nil {
		t.Fatal(err)
	}
	gamma := gammaFor("email", g, workload.DefaultGamma)
	const k = 10
	rep := 3

	onlineAll := bestOf(rep, func() {
		if _, _, err := baseline.OnlineAll(g, k, gamma); err != nil {
			t.Error(err)
		}
	})
	forward := bestOf(rep, func() {
		if _, _, err := baseline.Forward(g, k, gamma); err != nil {
			t.Error(err)
		}
	})
	localP := bestOf(rep, func() {
		if _, err := core.TopKProgressive(g, k, gamma, core.Options{}); err != nil {
			t.Error(err)
		}
	})

	// Eval-I: LocalSearch-P < Forward < OnlineAll, each by a wide margin.
	if localP*2 >= forward {
		t.Errorf("LocalSearch-P (%.3fms) not clearly faster than Forward (%.3fms)", localP, forward)
	}
	if forward*2 >= onlineAll {
		t.Errorf("Forward (%.3fms) not clearly faster than OnlineAll (%.3fms)", forward, onlineAll)
	}

	// Eval-VIII: LocalSearch-Truss beats GlobalSearch-Truss.
	ix := truss.NewIndex(g)
	globalTruss := bestOf(rep, func() {
		if _, err := truss.GlobalSearch(ix, k, 4); err != nil {
			t.Error(err)
		}
	})
	localTruss := bestOf(rep, func() {
		if _, err := truss.LocalSearch(ix, k, 4); err != nil {
			t.Error(err)
		}
	})
	if localTruss*2 >= globalTruss {
		t.Errorf("LocalSearch-Truss (%.3fms) not clearly faster than GlobalSearch-Truss (%.3fms)",
			localTruss, globalTruss)
	}

	// §3.1: the query touches a small fraction of the graph.
	res, err := core.TopK(g, k, gamma, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if frac := float64(res.Stats.FinalSize) / float64(g.Size()); frac > 0.25 {
		t.Errorf("LocalSearch accessed %.1f%% of the graph; expected a small fraction", 100*frac)
	}
	// Theorem 3.3's constant: total work within (1 + 1/(δ-1)) of final size
	// plus the initial round.
	if res.Stats.TotalWork > 3*res.Stats.FinalSize {
		t.Errorf("total work %d exceeds 3x final size %d", res.Stats.TotalWork, res.Stats.FinalSize)
	}
}

// TestResultsConsistentAcrossAlgorithms spot-checks on the email stand-in
// that every implementation agrees on actual query answers, not just speed.
func TestResultsConsistentAcrossAlgorithms(t *testing.T) {
	if testing.Short() {
		t.Skip("consistency checks in -short mode")
	}
	d, err := workload.ByName("email")
	if err != nil {
		t.Fatal(err)
	}
	g, err := d.Load()
	if err != nil {
		t.Fatal(err)
	}
	gamma := gammaFor("email", g, workload.DefaultGamma)
	const k = 10

	ls, err := core.TopK(g, k, gamma, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := core.VerifyResult(g, gamma, ls); err != nil {
		t.Fatalf("LocalSearch result fails Definition 2.2 verification: %v", err)
	}
	fw, _, err := baseline.Forward(g, k, gamma)
	if err != nil {
		t.Fatal(err)
	}
	if len(fw) != len(ls.Communities) {
		t.Fatalf("Forward %d vs LocalSearch %d communities", len(fw), len(ls.Communities))
	}
	for i := range fw {
		if fw[i].Keynode != ls.Communities[i].Keynode() {
			t.Errorf("community %d keynode differs: %d vs %d", i, fw[i].Keynode, ls.Communities[i].Keynode())
		}
		if len(fw[i].Vertices) != ls.Communities[i].Size() {
			t.Errorf("community %d size differs: %d vs %d", i, len(fw[i].Vertices), ls.Communities[i].Size())
		}
	}
}
