package bench

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"influcomm/internal/baseline"
	"influcomm/internal/core"
	"influcomm/internal/gen"
	"influcomm/internal/graph"
	"influcomm/internal/kcore"
	"influcomm/internal/pagerank"
	"influcomm/internal/semiext"
	"influcomm/internal/store"
	"influcomm/internal/truss"
	"influcomm/internal/workload"
)

// Config tunes a harness run.
type Config struct {
	// Repeat is the number of timing repetitions per measurement (the
	// paper runs each query three times); minimum is reported.
	Repeat int
	// Datasets restricts experiments to the named stand-ins; empty means
	// each experiment's paper-default selection.
	Datasets []string
}

func (c Config) repeat() int {
	if c.Repeat < 1 {
		return 1
	}
	return c.Repeat
}

func (c Config) pick(defaults []string) []string {
	if len(c.Datasets) == 0 {
		return defaults
	}
	return c.Datasets
}

var (
	gmaxMu    sync.Mutex
	gmaxCache = map[string]int32{}
)

func load(name string) (*workload.Dataset, *graph.Graph, error) {
	d, err := workload.ByName(name)
	if err != nil {
		return nil, nil, err
	}
	g, err := d.Load()
	if err != nil {
		return nil, nil, err
	}
	return d, g, nil
}

func gammaMax(name string, g *graph.Graph) int32 {
	gmaxMu.Lock()
	defer gmaxMu.Unlock()
	if v, ok := gmaxCache[name]; ok {
		return v
	}
	v := kcore.MaxCore(g)
	gmaxCache[name] = v
	return v
}

// gammaFor clamps the requested γ to the dataset's γmax, mirroring the
// paper's treatment of Email (γmax 43, so its γ=50 point uses 40).
func gammaFor(name string, g *graph.Graph, want int32) int32 {
	return workload.ClampGamma(want, gammaMax(name, g))
}

// Table1 reproduces Table 1: per-dataset statistics including γmax.
func Table1(cfg Config) (*Figure, error) {
	f := &Figure{ID: "table1", Title: "Statistics of stand-in graphs", XLabel: "graph", Unit: "count"}
	for _, name := range cfg.pick(allNames()) {
		_, g, err := load(name)
		if err != nil {
			return nil, err
		}
		s := g.Statistics()
		f.AddRow(name, map[string]float64{
			"vertices": float64(s.Vertices),
			"edges":    float64(s.Edges),
			"dmax":     float64(s.MaxDegree),
			"davg":     s.AvgDegree,
			"gmax":     float64(gammaMax(name, g)),
		})
	}
	f.Series = []string{"vertices", "edges", "dmax", "davg", "gmax"}
	return f, nil
}

func allNames() []string {
	out := make([]string, len(workload.Registry))
	for i := range workload.Registry {
		out[i] = workload.Registry[i].Name
	}
	return out
}

// Fig8 reproduces Figure 8 (Eval-I): OnlineAll vs Forward vs LocalSearch-P,
// γ = 10, varying k, one figure per dataset.
func Fig8(cfg Config) ([]*Figure, error) {
	var out []*Figure
	for _, name := range cfg.pick(allNames()) {
		d, g, err := load(name)
		if err != nil {
			return nil, err
		}
		gamma := gammaFor(name, g, workload.DefaultGamma)
		f := &Figure{
			ID:     "fig8/" + name,
			Title:  fmt.Sprintf("Against global search, γ=%d, vary k", gamma),
			XLabel: "k",
		}
		for _, k := range workload.KGrid {
			row := map[string]float64{}
			if !d.SkipOnlineAll {
				row["OnlineAll"] = bestOf(cfg.repeat(), func() {
					if _, _, err := baseline.OnlineAll(g, k, gamma); err != nil {
						panic(err)
					}
				})
			}
			row["Forward"] = bestOf(cfg.repeat(), func() {
				if _, _, err := baseline.Forward(g, k, gamma); err != nil {
					panic(err)
				}
			})
			row["LocalSearch-P"] = bestOf(cfg.repeat(), func() {
				if _, err := core.TopKProgressive(g, k, gamma, core.Options{}); err != nil {
					panic(err)
				}
			})
			f.AddRow(fmt.Sprintf("%d", k), row)
		}
		if d.SkipOnlineAll {
			f.Notes = append(f.Notes, "OnlineAll omitted (paper: out of memory on this graph)")
		}
		out = append(out, f)
	}
	return out, nil
}

// Fig9 reproduces Figure 9 (Eval-I): k = 10, varying γ, on the four
// datasets the paper selects.
func Fig9(cfg Config) ([]*Figure, error) {
	var out []*Figure
	for _, name := range cfg.pick([]string{"wiki", "livejournal", "arabic", "uk"}) {
		d, g, err := load(name)
		if err != nil {
			return nil, err
		}
		f := &Figure{
			ID:     "fig9/" + name,
			Title:  fmt.Sprintf("Against global search, k=%d, vary γ", workload.DefaultK),
			XLabel: "gamma",
		}
		for _, gammaWant := range workload.GammaGrid {
			gamma := gammaFor(name, g, gammaWant)
			row := map[string]float64{}
			if !d.SkipOnlineAll {
				row["OnlineAll"] = bestOf(cfg.repeat(), func() {
					if _, _, err := baseline.OnlineAll(g, workload.DefaultK, gamma); err != nil {
						panic(err)
					}
				})
			}
			row["Forward"] = bestOf(cfg.repeat(), func() {
				if _, _, err := baseline.Forward(g, workload.DefaultK, gamma); err != nil {
					panic(err)
				}
			})
			row["LocalSearch-P"] = bestOf(cfg.repeat(), func() {
				if _, err := core.TopKProgressive(g, workload.DefaultK, gamma, core.Options{}); err != nil {
					panic(err)
				}
			})
			f.AddRow(fmt.Sprintf("%d", gamma), row)
		}
		out = append(out, f)
	}
	return out, nil
}

// Fig10 reproduces Figure 10 (Eval-I): Forward vs LocalSearch-P for large k
// and γ on the two densest stand-ins (the paper uses Arabic and Twitter,
// its graphs with the largest γmax).
func Fig10(cfg Config) ([]*Figure, error) {
	var out []*Figure
	for _, name := range cfg.pick([]string{"arabic", "twitter"}) {
		_, g, err := load(name)
		if err != nil {
			return nil, err
		}
		largeGamma := gammaFor(name, g, 16)
		fk := &Figure{
			ID:     "fig10/" + name + "/vary-k",
			Title:  fmt.Sprintf("Large queries, γ=%d, vary k", largeGamma),
			XLabel: "k",
		}
		for _, k := range workload.LargeKGrid {
			fk.AddRow(fmt.Sprintf("%d", k), map[string]float64{
				"Forward": bestOf(cfg.repeat(), func() {
					if _, _, err := baseline.Forward(g, k, largeGamma); err != nil {
						panic(err)
					}
				}),
				"LocalSearch-P": bestOf(cfg.repeat(), func() {
					if _, err := core.TopKProgressive(g, k, largeGamma, core.Options{}); err != nil {
						panic(err)
					}
				}),
			})
		}
		out = append(out, fk)

		fg := &Figure{
			ID:     "fig10/" + name + "/vary-gamma",
			Title:  "Large queries, k=1000, vary γ",
			XLabel: "gamma",
		}
		for _, gammaWant := range workload.LargeGammaGrid {
			gamma := gammaFor(name, g, gammaWant)
			fg.AddRow(fmt.Sprintf("%d", gamma), map[string]float64{
				"Forward": bestOf(cfg.repeat(), func() {
					if _, _, err := baseline.Forward(g, 1000, gamma); err != nil {
						panic(err)
					}
				}),
				"LocalSearch-P": bestOf(cfg.repeat(), func() {
					if _, err := core.TopKProgressive(g, 1000, gamma, core.Options{}); err != nil {
						panic(err)
					}
				}),
			})
		}
		out = append(out, fg)
	}
	return out, nil
}

// Fig11 reproduces Figure 11 (Eval-II): Backward vs LocalSearch-P on the
// two large web stand-ins, γ ∈ {10, high}, varying k.
func Fig11(cfg Config) ([]*Figure, error) {
	var out []*Figure
	for _, name := range cfg.pick([]string{"arabic", "uk"}) {
		_, g, err := load(name)
		if err != nil {
			return nil, err
		}
		for _, gammaWant := range []int32{10, gammaMax(name, g)} {
			gamma := gammaFor(name, g, gammaWant)
			f := &Figure{
				ID:     fmt.Sprintf("fig11/%s/gamma%d", name, gamma),
				Title:  fmt.Sprintf("Against Backward, γ=%d, vary k", gamma),
				XLabel: "k",
			}
			for _, k := range workload.KGrid {
				f.AddRow(fmt.Sprintf("%d", k), map[string]float64{
					"Backward": bestOf(cfg.repeat(), func() {
						if _, _, err := baseline.Backward(g, k, gamma); err != nil {
							panic(err)
						}
					}),
					"LocalSearch-P": bestOf(cfg.repeat(), func() {
						if _, err := core.TopKProgressive(g, k, gamma, core.Options{}); err != nil {
							panic(err)
						}
					}),
				})
			}
			out = append(out, f)
		}
	}
	return out, nil
}

// Fig12 reproduces Figure 12 (Eval-III): LocalSearch-OA (counting by
// enumeration) vs LocalSearch-P, γ = 10, varying k.
func Fig12(cfg Config) ([]*Figure, error) {
	var out []*Figure
	for _, name := range cfg.pick([]string{"wiki", "livejournal", "arabic", "uk"}) {
		_, g, err := load(name)
		if err != nil {
			return nil, err
		}
		gamma := gammaFor(name, g, workload.DefaultGamma)
		f := &Figure{
			ID:     "fig12/" + name,
			Title:  fmt.Sprintf("Counting ablation, γ=%d, vary k", gamma),
			XLabel: "k",
		}
		for _, k := range workload.KGrid {
			f.AddRow(fmt.Sprintf("%d", k), map[string]float64{
				"LocalSearch-OA": bestOf(cfg.repeat(), func() {
					if _, _, err := baseline.LocalSearchOA(g, k, gamma); err != nil {
						panic(err)
					}
				}),
				"LocalSearch-P": bestOf(cfg.repeat(), func() {
					if _, err := core.TopKProgressive(g, k, gamma, core.Options{}); err != nil {
						panic(err)
					}
				}),
			})
		}
		out = append(out, f)
	}
	return out, nil
}

// Fig13 reproduces Figure 13 (Eval-IV): LocalSearch-P with growth ratio
// δ ∈ {1.5 … 128}, k = γ = 10.
func Fig13(cfg Config) ([]*Figure, error) {
	var out []*Figure
	for _, name := range cfg.pick([]string{"wiki", "livejournal", "arabic", "uk"}) {
		_, g, err := load(name)
		if err != nil {
			return nil, err
		}
		gamma := gammaFor(name, g, workload.DefaultGamma)
		f := &Figure{
			ID:     "fig13/" + name,
			Title:  fmt.Sprintf("Growth ratio sweep, k=%d, γ=%d", workload.DefaultK, gamma),
			XLabel: "delta",
		}
		for _, delta := range workload.DeltaGrid {
			f.AddRow(fmt.Sprintf("%g", delta), map[string]float64{
				"LocalSearch-P": bestOf(cfg.repeat(), func() {
					if _, err := core.TopKProgressive(g, workload.DefaultK, gamma, core.Options{Delta: delta}); err != nil {
						panic(err)
					}
				}),
			})
		}
		out = append(out, f)
	}
	return out, nil
}

// Fig14 reproduces Figure 14 (Eval-V): elapsed time until the top-i
// community is reported, for i = 1…128. LocalSearch only reports at the
// end; LocalSearch-P reports progressively.
func Fig14(cfg Config) ([]*Figure, error) {
	const kMax = 128
	marks := []int{1, 2, 4, 8, 16, 32, 64, 128}
	var out []*Figure
	for _, name := range cfg.pick([]string{"arabic", "uk"}) {
		_, g, err := load(name)
		if err != nil {
			return nil, err
		}
		for _, gammaWant := range []int32{10, gammaMax(name, g)} {
			gamma := gammaFor(name, g, gammaWant)
			f := &Figure{
				ID:     fmt.Sprintf("fig14/%s/gamma%d", name, gamma),
				Title:  fmt.Sprintf("Progressive enumeration latency, γ=%d, k=%d", gamma, kMax),
				XLabel: "top-i",
			}
			// LocalSearch: all communities arrive when the run finishes.
			lsTotal := bestOf(cfg.repeat(), func() {
				if _, err := core.TopK(g, kMax, gamma, core.Options{}); err != nil {
					panic(err)
				}
			})
			// LocalSearch-P: record elapsed time at each emission.
			elapsed := make([]float64, 0, kMax)
			start := time.Now()
			_, err := core.Stream(g, gamma, core.Options{}, func(*core.Community) bool {
				elapsed = append(elapsed, float64(time.Since(start))/float64(time.Millisecond))
				return len(elapsed) < kMax
			})
			if err != nil {
				return nil, err
			}
			for _, i := range marks {
				row := map[string]float64{"LocalSearch": lsTotal}
				if i <= len(elapsed) {
					row["LocalSearch-P"] = elapsed[i-1]
				}
				f.AddRow(fmt.Sprintf("%d", i), row)
			}
			out = append(out, f)
		}
	}
	return out, nil
}

// Fig15 reproduces Figure 15 (Eval-V): total processing time of LocalSearch
// vs LocalSearch-P, varying k.
func Fig15(cfg Config) ([]*Figure, error) {
	var out []*Figure
	for _, name := range cfg.pick([]string{"arabic", "uk"}) {
		_, g, err := load(name)
		if err != nil {
			return nil, err
		}
		for _, gammaWant := range []int32{10, gammaMax(name, g)} {
			gamma := gammaFor(name, g, gammaWant)
			f := &Figure{
				ID:     fmt.Sprintf("fig15/%s/gamma%d", name, gamma),
				Title:  fmt.Sprintf("Progressive vs non-progressive, γ=%d, vary k", gamma),
				XLabel: "k",
			}
			for _, k := range workload.KGrid {
				f.AddRow(fmt.Sprintf("%d", k), map[string]float64{
					"LocalSearch": bestOf(cfg.repeat(), func() {
						if _, err := core.TopK(g, k, gamma, core.Options{}); err != nil {
							panic(err)
						}
					}),
					"LocalSearch-P": bestOf(cfg.repeat(), func() {
						if _, err := core.TopKProgressive(g, k, gamma, core.Options{}); err != nil {
							panic(err)
						}
					}),
				})
			}
			out = append(out, f)
		}
	}
	return out, nil
}

// Fig16 reproduces Figure 16 (Eval-VI): total processing time of the
// semi-external algorithms (I/O included), varying k.
func Fig16(cfg Config) ([]*Figure, error) {
	var out []*Figure
	for _, name := range cfg.pick([]string{"arabic", "twitter"}) {
		d, g, err := load(name)
		if err != nil {
			return nil, err
		}
		path, err := d.EdgeFile()
		if err != nil {
			return nil, err
		}
		for _, gammaWant := range []int32{10, gammaMax(name, g)} {
			gamma := gammaFor(name, g, gammaWant)
			f := &Figure{
				ID:     fmt.Sprintf("fig16/%s/gamma%d", name, gamma),
				Title:  fmt.Sprintf("Semi-external total time, γ=%d, vary k", gamma),
				XLabel: "k",
			}
			// OnlineAll-SE always ingests and processes the whole graph, so
			// its cost is independent of k (the paper's flat lines). It is
			// measured once and reported for every k to keep the suite's
			// wall-clock within reason — a single run takes minutes, exactly
			// the behavior the figure demonstrates.
			oa := timeMS(func() {
				if _, _, err := semiext.OnlineAllSE(path, workload.DefaultK, gamma); err != nil {
					panic(err)
				}
			})
			f.Notes = append(f.Notes, "OnlineAll-SE measured once per γ (its cost does not depend on k)")
			for _, k := range workload.KGrid {
				f.AddRow(fmt.Sprintf("%d", k), map[string]float64{
					"OnlineAll-SE": oa,
					"LocalSearch-SE": bestOf(cfg.repeat(), func() {
						if _, _, err := semiext.LocalSearchSE(path, k, gamma); err != nil {
							panic(err)
						}
					}),
				})
			}
			out = append(out, f)
		}
	}
	return out, nil
}

// SemiServe measures the serving tier's semi-external access paths against
// the in-memory backend, varying k: the residual per-query streaming
// reader ("stream"), the shared zero-copy view rebuilt per query ("mmap"),
// and the decoded-prefix cache with pooled engines ("prefix-cache", 64 MiB
// budget, warmed by one query). The figure is the zero-copy refactor's
// ledger: stream → mmap is what eliminating per-query opens and per-edge
// decoding buys, mmap → prefix-cache is what cross-query sharing buys, and
// the "memory" column is the floor the cache approaches.
func SemiServe(cfg Config) ([]*Figure, error) {
	var out []*Figure
	ctx := context.Background()
	for _, name := range cfg.pick([]string{"twitter", "livejournal"}) {
		d, g, err := load(name)
		if err != nil {
			return nil, err
		}
		path, err := d.EdgeFile()
		if err != nil {
			return nil, err
		}
		gamma := gammaFor(name, g, 10)
		mem, err := store.OpenMem(g)
		if err != nil {
			return nil, err
		}
		backends := []struct {
			label string
			st    store.Store
		}{{"memory", mem}}
		for _, v := range []struct {
			label string
			opts  []store.OpenOption
		}{
			{"stream", []store.OpenOption{store.WithEdgeFileMode("stream")}},
			{"mmap", nil},
			{"prefix-cache", []store.OpenOption{store.WithPrefixCacheBytes(64 << 20)}},
		} {
			st, err := store.OpenEdgeFile(path, v.opts...)
			if err != nil {
				return nil, err
			}
			backends = append(backends, struct {
				label string
				st    store.Store
			}{v.label, st})
		}
		f := &Figure{
			ID:     fmt.Sprintf("semiserve/%s/gamma%d", name, gamma),
			Title:  fmt.Sprintf("Semi-external serving modes, γ=%d, vary k", gamma),
			XLabel: "k",
		}
		f.Notes = append(f.Notes, "prefix-cache budget 64 MiB, warmed by one query before timing")
		for _, k := range workload.KGrid {
			row := map[string]float64{}
			for _, b := range backends {
				st := b.st
				if _, err := st.TopK(ctx, k, gamma, core.Options{}); err != nil { // warm caches/pools
					return nil, err
				}
				row[b.label] = bestOf(cfg.repeat(), func() {
					if _, err := st.TopK(ctx, k, gamma, core.Options{}); err != nil {
						panic(err)
					}
				})
			}
			f.AddRow(fmt.Sprintf("%d", k), row)
		}
		for _, b := range backends {
			b.st.Close()
		}
		out = append(out, f)
	}
	return out, nil
}

// Fig17 reproduces Figure 17 (Eval-VI): the size of the visited graph
// (fraction of edges loaded into memory) of the semi-external algorithms.
func Fig17(cfg Config) ([]*Figure, error) {
	var out []*Figure
	for _, name := range cfg.pick([]string{"arabic", "twitter"}) {
		d, g, err := load(name)
		if err != nil {
			return nil, err
		}
		path, err := d.EdgeFile()
		if err != nil {
			return nil, err
		}
		for _, gammaWant := range []int32{10, gammaMax(name, g)} {
			gamma := gammaFor(name, g, gammaWant)
			f := &Figure{
				ID:     fmt.Sprintf("fig17/%s/gamma%d", name, gamma),
				Title:  fmt.Sprintf("Semi-external visited graph, γ=%d, vary k", gamma),
				XLabel: "k",
				Unit:   "fraction of edges",
			}
			// OnlineAll-SE ingests the entire edge file by construction, so
			// its visited fraction is identically 1 (no need to run the
			// multi-minute global enumeration to measure it).
			f.Notes = append(f.Notes, "OnlineAll-SE visits the whole graph by construction")
			for _, k := range workload.KGrid {
				_, stLS, err := semiext.LocalSearchSE(path, k, gamma)
				if err != nil {
					return nil, err
				}
				f.AddRow(fmt.Sprintf("%d", k), map[string]float64{
					"OnlineAll-SE":   1,
					"LocalSearch-SE": stLS.VisitedFraction,
				})
			}
			out = append(out, f)
		}
	}
	return out, nil
}

// fig18Graphs caches the planted-community stand-ins of Fig18. The paper's
// web graphs contain many disjoint dense regions, so non-containment
// communities (the leaves of the containment forest) appear throughout the
// weight order; preferential-attachment stand-ins instead nest almost all
// communities into a single chain, leaving nearly no NC communities for a
// local search to find early. The planted-community generator restores the
// many-disjoint-dense-regions structure this experiment depends on
// (substitution recorded in EXPERIMENTS.md).
var (
	fig18Mu     sync.Mutex
	fig18Graphs = map[string]*graph.Graph{}
)

func fig18Graph(name string) (*graph.Graph, error) {
	fig18Mu.Lock()
	defer fig18Mu.Unlock()
	if g, ok := fig18Graphs[name]; ok {
		return g, nil
	}
	var g *graph.Graph
	var err error
	switch name {
	case "arabic":
		g, err = gen.PlantedArchipelago(400, 60, 0.35, 1806)
	case "uk":
		g, err = gen.PlantedArchipelago(500, 50, 0.4, 1807)
	default:
		g, err = gen.PlantedArchipelago(50, 40, 0.4, 1808)
	}
	if err != nil {
		return nil, err
	}
	fig18Graphs[name] = g
	return g, nil
}

// Fig18 reproduces Figure 18 (Eval-VII): non-containment queries, Forward
// vs LocalSearch-P, varying k, on planted-community stand-ins (see
// fig18Graph for why).
func Fig18(cfg Config) ([]*Figure, error) {
	var out []*Figure
	for _, name := range cfg.pick([]string{"arabic", "uk"}) {
		g, err := fig18Graph(name)
		if err != nil {
			return nil, err
		}
		gamma := workload.DefaultGamma
		f := &Figure{
			ID:     "fig18/" + name,
			Title:  fmt.Sprintf("Non-containment queries, γ=%d, vary k", gamma),
			XLabel: "k",
		}
		f.Notes = append(f.Notes, "planted-community stand-in (NC structure; see EXPERIMENTS.md)")
		for _, k := range workload.KGrid {
			f.AddRow(fmt.Sprintf("%d", k), map[string]float64{
				"Forward": bestOf(cfg.repeat(), func() {
					if _, _, err := baseline.ForwardNonContainment(g, k, gamma); err != nil {
						panic(err)
					}
				}),
				"LocalSearch-P": bestOf(cfg.repeat(), func() {
					if _, err := core.TopKProgressive(g, k, gamma, core.Options{NonContainment: true}); err != nil {
						panic(err)
					}
				}),
			})
		}
		out = append(out, f)
	}
	return out, nil
}

// Fig19 reproduces Figure 19 (Eval-VIII): influential γ-truss community
// search, GlobalSearch-Truss vs LocalSearch-Truss, γ = 10, varying k.
func Fig19(cfg Config) ([]*Figure, error) {
	var out []*Figure
	for _, name := range cfg.pick([]string{"wiki", "livejournal"}) {
		_, g, err := load(name)
		if err != nil {
			return nil, err
		}
		// γ = 5 rather than the paper's 10: the truss threshold is scaled to
		// the stand-ins' clustering the same way the γ-core grids are
		// scaled to their γmax (see EXPERIMENTS.md).
		gamma := int32(5)
		ix := truss.NewIndex(g)
		f := &Figure{
			ID:     "fig19/" + name,
			Title:  fmt.Sprintf("γ-truss community search, γ=%d, vary k", gamma),
			XLabel: "k",
		}
		f.Notes = append(f.Notes, "γ scaled to stand-in clustering (paper: γ=10 on the real graphs)")
		for _, k := range workload.KGrid {
			f.AddRow(fmt.Sprintf("%d", k), map[string]float64{
				"GlobalSearch-Truss": bestOf(cfg.repeat(), func() {
					if _, err := truss.GlobalSearch(ix, k, gamma); err != nil {
						panic(err)
					}
				}),
				"LocalSearch-Truss": bestOf(cfg.repeat(), func() {
					if _, err := truss.LocalSearch(ix, k, gamma); err != nil {
						panic(err)
					}
				}),
			})
		}
		out = append(out, f)
	}
	return out, nil
}

// AccessFraction reproduces the §3.1 claim "size(G≥τ*)/size(G) is smaller
// than 0.073% across all graphs tested for k = 10 and γ = 10": the
// fraction of each stand-in graph LocalSearch actually accesses.
func AccessFraction(cfg Config) (*Figure, error) {
	f := &Figure{
		ID:     "access-fraction",
		Title:  fmt.Sprintf("Fraction of size(G) accessed, k=%d, γ=%d", workload.DefaultK, workload.DefaultGamma),
		XLabel: "graph",
		Unit:   "percent",
	}
	for _, name := range cfg.pick(allNames()) {
		_, g, err := load(name)
		if err != nil {
			return nil, err
		}
		gamma := gammaFor(name, g, workload.DefaultGamma)
		res, err := core.TopK(g, workload.DefaultK, gamma, core.Options{})
		if err != nil {
			return nil, err
		}
		f.AddRow(name, map[string]float64{
			"accessed": 100 * float64(res.Stats.FinalSize) / float64(g.Size()),
			"rounds":   float64(res.Stats.Rounds),
		})
	}
	f.Series = []string{"accessed", "rounds"}
	f.Notes = append(f.Notes, "paper reports < 0.073% across its real graphs at this query point")
	return f, nil
}

// AblationArithmeticGrowth measures the §3.3 remark: arithmetic prefix
// growth does super-linear total work compared to geometric growth.
func AblationArithmeticGrowth(cfg Config) (*Figure, error) {
	_, g, err := load("uk")
	if err != nil {
		return nil, err
	}
	// The super-linear penalty only shows once the accessed subgraph spans
	// many growth steps, so the ablation uses the dataset's γmax (deepest
	// τ*) and a small fixed increment.
	gamma := gammaFor("uk", g, 1<<30)
	f := &Figure{
		ID:     "ablation/growth",
		Title:  fmt.Sprintf("Geometric vs arithmetic growth, γ=%d, vary k", gamma),
		XLabel: "k",
	}
	for _, k := range workload.KGrid {
		f.AddRow(fmt.Sprintf("%d", k), map[string]float64{
			"geometric (δ=2)": bestOf(cfg.repeat(), func() {
				if _, err := core.TopK(g, k, gamma, core.Options{}); err != nil {
					panic(err)
				}
			}),
			"arithmetic (+256)": bestOf(cfg.repeat(), func() {
				if _, err := core.TopK(g, k, gamma, core.Options{ArithmeticGrowth: 256}); err != nil {
					panic(err)
				}
			}),
		})
	}
	return f, nil
}

// AblationInitialTau compares the paper's (k+γ)-th weight starting
// heuristic with deliberately mis-sized starting prefixes.
func AblationInitialTau(cfg Config) (*Figure, error) {
	_, g, err := load("uk")
	if err != nil {
		return nil, err
	}
	gamma := gammaFor("uk", g, workload.DefaultGamma)
	k := workload.DefaultK
	f := &Figure{
		ID:     "ablation/initial-tau",
		Title:  fmt.Sprintf("Initial prefix heuristic, k=%d, γ=%d", k, gamma),
		XLabel: "initial prefix",
	}
	n := g.NumVertices()
	for _, p0 := range []int{1, k + int(gamma), 10 * (k + int(gamma)), n / 4, n} {
		f.AddRow(fmt.Sprintf("%d", p0), map[string]float64{
			"LocalSearch": bestOf(cfg.repeat(), func() {
				if _, err := core.TopK(g, k, gamma, core.Options{InitialPrefix: p0}); err != nil {
					panic(err)
				}
			}),
		})
	}
	f.Notes = append(f.Notes, fmt.Sprintf("paper heuristic is k+γ = %d", k+int(gamma)))
	return f, nil
}

// CaseStudy reproduces Eval-IX on the synthetic collaboration network: the
// top-1 influential γ-community (γ=5) against the top-1 influential γ-truss
// community (γ=6), reporting members, sizes, and the weight rank of each
// minimum-weight member, plus the size of the full 5-core community that
// contains the γ-community (the paper's Figure 21 contrast).
func CaseStudy() (string, error) {
	raw, err := gen.Collab(120, 14, 2026)
	if err != nil {
		return "", err
	}
	g, err := pagerank.Reweight(raw, pagerank.Options{})
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== case study: collaboration network (%d researchers, %d co-author pairs) ==\n",
		g.NumVertices(), g.NumEdges())

	coreRes, err := core.TopK(g, 1, 5, core.Options{})
	if err != nil {
		return "", err
	}
	if len(coreRes.Communities) == 0 {
		return "", fmt.Errorf("bench: case study graph has no 5-community")
	}
	top := coreRes.Communities[0]
	fmt.Fprintf(&b, "\nTop-1 influential 5-community (influence %.6f, %d members):\n", top.Influence(), top.Size())
	printMembers(&b, g, top.Vertices())
	fmt.Fprintf(&b, "  minimum-weight member %q ranks %d of %d by PageRank\n",
		g.Label(top.Keynode()), top.Keynode()+1, g.NumVertices())

	ix := truss.NewIndex(g)
	trussRes, err := truss.LocalSearch(ix, 1, 6)
	if err != nil {
		return "", err
	}
	if len(trussRes.Communities) > 0 {
		tt := trussRes.Communities[0]
		fmt.Fprintf(&b, "\nTop-1 influential 6-truss community (influence %.6f, %d members):\n", tt.Influence(), tt.Size())
		printMembers(&b, g, tt.Vertices())
		fmt.Fprintf(&b, "  minimum-weight member %q ranks %d of %d by PageRank\n",
			g.Label(tt.Keynode()), tt.Keynode()+1, g.NumVertices())
		if tt.Influence() <= top.Influence() {
			fmt.Fprintf(&b, "\nAs in the paper, the γ-truss community is denser but has a lower influence\n")
			fmt.Fprintf(&b, "value than the γ-community (the truss constraint is harder to satisfy).\n")
		}
	} else {
		fmt.Fprintf(&b, "\nNo influential 6-truss community exists in this graph.\n")
	}

	// Figure 21 contrast: the plain 5-core community (connected component of
	// the keynode in the 5-core of the whole graph) is far larger.
	eng := core.NewEngine(g, 5)
	eng.Peel(g.NumVertices())
	if eng.Alive(top.Keynode()) {
		comp := eng.Component(top.Keynode())
		fmt.Fprintf(&b, "\nThe plain 5-core community of the same keynode has %d members —\n", len(comp))
		fmt.Fprintf(&b, "influence filtering refines it to the %d core members above.\n", top.Size())
	}
	return b.String(), nil
}

func printMembers(b *strings.Builder, g *graph.Graph, vs []int32) {
	sorted := append([]int32(nil), vs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	shown := sorted
	const maxShown = 16
	truncated := false
	if len(shown) > maxShown {
		shown = shown[:maxShown]
		truncated = true
	}
	for _, v := range shown {
		fmt.Fprintf(b, "  %-28s (weight %.6f)\n", g.Label(v), g.Weight(v))
	}
	if truncated {
		fmt.Fprintf(b, "  ... and %d more\n", len(sorted)-maxShown)
	}
}
