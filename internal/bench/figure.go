// Package bench is the experiment harness: one function per table or
// figure of the paper's evaluation (§6), each regenerating the same rows or
// series the paper reports, on the synthetic stand-in datasets of the
// workload package. cmd/icbench drives the full sweep; bench_test.go at the
// repository root exposes representative points as testing.B benchmarks.
package bench

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Figure is a rendered experiment: one row per x-axis value, one column per
// algorithm (series), values in the figure's unit (milliseconds unless
// stated otherwise).
type Figure struct {
	ID     string // e.g. "fig8/wiki"
	Title  string
	XLabel string
	Unit   string
	Series []string
	Rows   []Row
	Notes  []string
}

// Row is one x-axis point of a Figure.
type Row struct {
	X      string
	Values map[string]float64
}

// AddRow appends a row, registering any new series names in order.
func (f *Figure) AddRow(x string, values map[string]float64) {
	for _, s := range sortedKeys(values) {
		if !contains(f.Series, s) {
			f.Series = append(f.Series, s)
		}
	}
	f.Rows = append(f.Rows, Row{X: x, Values: values})
}

func sortedKeys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func contains(ss []string, s string) bool {
	for _, x := range ss {
		if x == s {
			return true
		}
	}
	return false
}

// Render writes the figure as an aligned text table.
func (f *Figure) Render(w io.Writer) {
	unit := f.Unit
	if unit == "" {
		unit = "ms"
	}
	fmt.Fprintf(w, "== %s: %s (%s) ==\n", f.ID, f.Title, unit)
	widths := make([]int, len(f.Series)+1)
	widths[0] = len(f.XLabel)
	for _, r := range f.Rows {
		if len(r.X) > widths[0] {
			widths[0] = len(r.X)
		}
	}
	cells := make([][]string, len(f.Rows))
	for i, r := range f.Rows {
		cells[i] = make([]string, len(f.Series))
		for j, s := range f.Series {
			v, ok := r.Values[s]
			if !ok {
				cells[i][j] = "-"
			} else {
				cells[i][j] = formatValue(v)
			}
			if len(cells[i][j]) > widths[j+1] {
				widths[j+1] = len(cells[i][j])
			}
		}
	}
	for j, s := range f.Series {
		if len(s) > widths[j+1] {
			widths[j+1] = len(s)
		}
	}
	fmt.Fprintf(w, "%-*s", widths[0]+2, f.XLabel)
	for j, s := range f.Series {
		fmt.Fprintf(w, "%*s", widths[j+1]+2, s)
	}
	fmt.Fprintln(w)
	for i, r := range f.Rows {
		fmt.Fprintf(w, "%-*s", widths[0]+2, r.X)
		for j := range f.Series {
			fmt.Fprintf(w, "%*s", widths[j+1]+2, cells[i][j])
		}
		fmt.Fprintln(w)
	}
	for _, n := range f.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// String renders the figure to a string.
func (f *Figure) String() string {
	var b strings.Builder
	f.Render(&b)
	return b.String()
}

func formatValue(v float64) string {
	switch {
	case v == float64(int64(v)) && v < 1e6:
		return fmt.Sprintf("%d", int64(v))
	case v >= 100:
		return fmt.Sprintf("%.0f", v)
	case v >= 1:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// timeMS measures fn once and returns milliseconds.
func timeMS(fn func()) float64 {
	start := time.Now()
	fn()
	return float64(time.Since(start)) / float64(time.Millisecond)
}

// bestOf runs fn repeat times and returns the minimum duration in
// milliseconds (the paper averages three runs; the minimum is the standard
// noise-robust choice for micro-measurements).
func bestOf(repeat int, fn func()) float64 {
	if repeat < 1 {
		repeat = 1
	}
	best := timeMS(fn)
	for i := 1; i < repeat; i++ {
		if t := timeMS(fn); t < best {
			best = t
		}
	}
	return best
}
