package mutable

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"

	"influcomm/internal/core"
	"influcomm/internal/graph"
	"influcomm/internal/semiext"
	"influcomm/internal/truss"
)

// edgeSet extracts the live rank-space edge set of a graph.
func edgeSet(g *graph.Graph) [][2]int32 {
	var es [][2]int32
	for u := int32(0); int(u) < g.NumVertices(); u++ {
		for _, v := range g.UpNeighbors(u) {
			es = append(es, [2]int32{v, u})
		}
	}
	return es
}

// fingerprint renders a query result to a comparable string: communities in
// order with influence, keynode, and full membership, plus the access
// statistics — the "byte-identical" equality the acceptance criteria ask
// for, across top-k, stream, and truss.
func fingerprint(t *testing.T, g *graph.Graph) string {
	t.Helper()
	ctx := context.Background()
	out := ""
	pool := core.NewPool(g)
	for _, q := range []struct{ k, gamma int }{{1, 1}, {3, 2}, {5, 3}, {100, 2}} {
		res, err := pool.TopK(ctx, q.k, int32(q.gamma), core.Options{})
		if err != nil {
			t.Fatalf("topk(%d,%d): %v", q.k, q.gamma, err)
		}
		out += fmt.Sprintf("topk %d %d: %+v\n", q.k, q.gamma, res.Stats)
		for _, c := range res.Communities {
			out += fmt.Sprintf("  %v %d %v\n", c.Influence(), c.Keynode(), c.Vertices())
		}
		nc, err := pool.TopK(ctx, q.k, int32(q.gamma), core.Options{NonContainment: true})
		if err != nil {
			t.Fatalf("nc topk(%d,%d): %v", q.k, q.gamma, err)
		}
		for _, c := range nc.Communities {
			out += fmt.Sprintf("  nc %v %d %v\n", c.Influence(), c.Keynode(), c.Vertices())
		}
	}
	st, err := pool.Stream(ctx, 2, core.Options{}, func(c *core.Community) bool {
		out += fmt.Sprintf("stream %v %d %v\n", c.Influence(), c.Keynode(), c.Vertices())
		return true
	})
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	out += fmt.Sprintf("stream stats %+v\n", st)
	tres, err := truss.LocalSearch(truss.NewIndex(g), 3, 3)
	if err != nil {
		t.Fatalf("truss: %v", err)
	}
	for _, c := range tres.Communities {
		out += fmt.Sprintf("truss %v %d %v\n", c.Influence(), c.Keynode(), c.Vertices())
	}
	return out
}

// randomGraph builds a connected-ish random weighted graph in rank space.
func randomGraph(rng *rand.Rand, n int) *graph.Graph {
	weights := make([]float64, n)
	for i := range weights {
		weights[i] = rng.Float64() * 100
	}
	seen := map[[2]int32]bool{}
	var edges [][2]int32
	for i := 0; i < 4*n; i++ {
		u, v := int32(rng.Intn(n)), int32(rng.Intn(n))
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		if !seen[[2]int32{u, v}] {
			seen[[2]int32{u, v}] = true
			edges = append(edges, [2]int32{u, v})
		}
	}
	g, err := graph.FromEdges(weights, edges)
	if err != nil {
		panic(err)
	}
	return g
}

// randomBatch mutates roughly b edges of the current graph, mixing inserts,
// deletes, no-ops, and within-batch duplicates.
func randomBatch(rng *rand.Rand, g *graph.Graph, b int) []Update {
	n := int32(g.NumVertices())
	var batch []Update
	for i := 0; i < b; i++ {
		u, v := rng.Int31n(n), rng.Int31n(n)
		if u == v {
			continue
		}
		switch rng.Intn(4) {
		case 0: // deliberate no-op or duplicate-prone op
			batch = append(batch, Update{U: u, V: v, Delete: rng.Intn(2) == 0})
		case 1:
			batch = append(batch, Update{U: u, V: v, Delete: g.HasEdge(min32(u, v), max32(u, v))})
		default:
			batch = append(batch, Update{U: u, V: v, Delete: !g.HasEdge(min32(u, v), max32(u, v))})
		}
	}
	return batch
}

func min32(a, b int32) int32 {
	if a < b {
		return a
	}
	return b
}

func max32(a, b int32) int32 {
	if a < b {
		return b
	}
	return a
}

// TestApplyUpdatesMatchesFreshRebuild is the acceptance property test:
// after every batch, top-k (both semantics), stream, and truss results on
// the mutable store are byte-identical to a fresh in-memory store built
// from scratch over the updated edge set.
func TestApplyUpdatesMatchesFreshRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	ctx := context.Background()
	for trial := 0; trial < 6; trial++ {
		g := randomGraph(rng, 12+rng.Intn(30))
		st, err := NewStore(g)
		if err != nil {
			t.Fatal(err)
		}
		for batch := 0; batch < 6; batch++ {
			b := randomBatch(rng, st.Graph(), 1+rng.Intn(12))
			stats, err := st.ApplyUpdates(ctx, b)
			if err != nil {
				t.Fatalf("trial %d batch %d: %v", trial, batch, err)
			}
			if stats.Inserted+stats.Deleted+stats.Skipped == 0 && len(b) > 0 {
				t.Fatalf("batch of %d reported no work at all", len(b))
			}
			cur := st.Graph()
			fresh, err := graph.FromEdges(cur.Weights(), edgeSet(cur))
			if err != nil {
				t.Fatal(err)
			}
			if got, want := fingerprint(t, cur), fingerprint(t, fresh); got != want {
				t.Fatalf("trial %d batch %d: snapshot diverges from fresh rebuild\ngot:\n%s\nwant:\n%s", trial, batch, got, want)
			}
		}
	}
}

// TestSnapshotIsolationUnderConcurrentQueries hammers the store with
// concurrent queries while batches apply (run under -race): queries must
// never fail, never pause, and always see some complete snapshot.
func TestSnapshotIsolationUnderConcurrentQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	g := randomGraph(rng, 60)
	st, err := NewStore(g)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				res, err := st.TopK(ctx, 1+i%5, int32(1+i%3), core.Options{})
				if err != nil {
					t.Errorf("concurrent query failed: %v", err)
					return
				}
				if len(res.Communities) == 0 {
					t.Error("query returned no communities")
					return
				}
			}
		}(int64(w))
	}
	for batch := 0; batch < 40; batch++ {
		b := randomBatch(rng, st.Graph(), 6)
		if _, err := st.ApplyUpdates(ctx, b); err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
	}
	close(stop)
	wg.Wait()

	cur := st.Graph()
	fresh, err := graph.FromEdges(cur.Weights(), edgeSet(cur))
	if err != nil {
		t.Fatal(err)
	}
	if got, want := fingerprint(t, cur), fingerprint(t, fresh); got != want {
		t.Fatal("final state diverges from fresh rebuild after concurrent run")
	}
}

// TestDurableReplayAfterCrash: a store that is dropped without Close (the
// crash) must come back from edge file + log with the exact same graph.
func TestDurableReplayAfterCrash(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	dir := t.TempDir()
	path := filepath.Join(dir, "g.edges")
	g := randomGraph(rng, 25)
	if err := semiext.WriteEdgeFile(path, g); err != nil {
		t.Fatal(err)
	}

	st, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		if _, err := st.ApplyUpdates(ctx, randomBatch(rng, st.Graph(), 8)); err != nil {
			t.Fatal(err)
		}
	}
	want := fingerprint(t, st.Graph())
	wantEpoch := st.SnapshotEpoch()
	// Crash: no compaction, the log handle just dies (Abandon is the
	// in-process stand-in for the process exiting; it releases the log's
	// exclusive lock without folding anything in). The log must carry the
	// state.
	if _, err := os.Stat(semiext.UpdateLogPath(path)); err != nil {
		t.Fatalf("update log missing before crash-reopen: %v", err)
	}
	if err := st.Abandon(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := fingerprint(t, re.Graph()); got != want {
		t.Fatal("replayed store diverges from pre-crash state")
	}
	if re.SnapshotEpoch() != wantEpoch {
		t.Fatalf("replayed epoch %d, want %d", re.SnapshotEpoch(), wantEpoch)
	}

	// Clean shutdown compacts: log gone, edge file updated, reopen matches
	// with epoch reset to 0 (a compacted file has no pending updates).
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(semiext.UpdateLogPath(path)); !os.IsNotExist(err) {
		t.Fatalf("update log survived clean close: %v", err)
	}
	final, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer final.Close()
	if got := fingerprint(t, final.Graph()); got != want {
		t.Fatal("compacted store diverges from pre-crash state")
	}
	if final.SnapshotEpoch() != 0 {
		t.Fatalf("compacted store starts at epoch %d", final.SnapshotEpoch())
	}
}

// TestReplayIdempotentAfterCompactionCrash covers the crash window between
// edge-file compaction and log removal: replaying the stale log against the
// already-compacted file must be a pure no-op.
func TestReplayIdempotentAfterCompactionCrash(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	dir := t.TempDir()
	path := filepath.Join(dir, "g.edges")
	g := randomGraph(rng, 20)
	if err := semiext.WriteEdgeFile(path, g); err != nil {
		t.Fatal(err)
	}
	st, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.ApplyUpdates(context.Background(), randomBatch(rng, st.Graph(), 10)); err != nil {
		t.Fatal(err)
	}
	want := fingerprint(t, st.Graph())
	// Simulate the torn compaction: write the edge file (as Close would)
	// but leave the log in place, then crash.
	if err := semiext.WriteEdgeFile(path, st.Graph()); err != nil {
		t.Fatal(err)
	}
	if err := st.Abandon(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.UpdatesApplied() != 0 {
		t.Fatalf("stale log applied %d updates against the compacted file", re.UpdatesApplied())
	}
	if got := fingerprint(t, re.Graph()); got != want {
		t.Fatal("post-compaction-crash replay diverged")
	}
}

func TestApplyUpdatesValidation(t *testing.T) {
	g := graph.MustFromEdges([]float64{9, 8, 7}, [][2]int32{{0, 1}, {1, 2}})
	st, err := NewStore(g)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for _, b := range [][]Update{
		{{U: 0, V: 0}},  // self loop
		{{U: 0, V: 99}}, // unknown vertex
		{{U: -1, V: 1}},
	} {
		_, err := st.ApplyUpdates(ctx, b)
		if err == nil {
			t.Errorf("batch %+v accepted", b)
		} else if !errors.Is(err, ErrInvalidBatch) {
			t.Errorf("batch %+v: error %v does not wrap ErrInvalidBatch", b, err)
		}
	}
	// No-ops are skipped, not errors, and do not bump the epoch.
	stats, err := st.ApplyUpdates(ctx, []Update{{U: 0, V: 1}, {U: 0, V: 2, Delete: true}})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Skipped != 2 || stats.Inserted+stats.Deleted != 0 || stats.Epoch != 0 {
		t.Fatalf("no-op batch: %+v", stats)
	}
	// Last op on an edge wins within a batch.
	stats, err = st.ApplyUpdates(ctx, []Update{{U: 0, V: 2}, {U: 2, V: 0, Delete: true}})
	if err != nil {
		t.Fatal(err)
	}
	// One op superseded within the batch plus the surviving delete being a
	// no-op: two skips, nothing applied.
	if stats.Skipped != 2 || stats.Deleted != 0 || stats.Inserted != 0 {
		t.Fatalf("duplicate collapse: %+v", stats)
	}
	// Closed stores refuse queries and updates; the failure is the
	// store's, not the batch's.
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := st.TopK(ctx, 1, 1, core.Options{}); err == nil {
		t.Error("query on closed store succeeded")
	}
	if _, err := st.ApplyUpdates(ctx, []Update{{U: 0, V: 2}}); err == nil {
		t.Error("update on closed store succeeded")
	} else if errors.Is(err, ErrInvalidBatch) {
		t.Error("closed-store error must not claim the batch was invalid")
	}
}

// TestDoubleOpenRefused: two mutable stores over one edge file would
// interleave appends into one write-ahead log; the log's exclusive lock
// must make the second open fail instead.
func TestDoubleOpenRefused(t *testing.T) {
	if runtime.GOOS == "windows" || runtime.GOOS == "plan9" || runtime.GOOS == "js" || runtime.GOOS == "wasip1" {
		t.Skip("log locking is advisory flock, unix-only")
	}
	path := filepath.Join(t.TempDir(), "g.edges")
	if err := semiext.WriteEdgeFile(path, randomGraph(rand.New(rand.NewSource(5)), 10)); err != nil {
		t.Fatal(err)
	}
	st, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Fatal("second mutable open of the same edge file succeeded")
	}
	// Releasing the first store frees the lock.
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	re, err := Open(path)
	if err != nil {
		t.Fatalf("reopen after close: %v", err)
	}
	re.Close()
}

// TestOriginalIDResolution: stores over graphs whose original IDs differ
// from ranks must accept updates in original-ID space.
func TestOriginalIDResolution(t *testing.T) {
	// Vertex 0 has the lowest weight, so ranks reverse the IDs.
	g := graph.MustFromEdges([]float64{1, 2, 3, 4}, [][2]int32{{0, 1}, {2, 3}})
	st, err := NewStore(g)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.ApplyUpdates(context.Background(), []Update{{U: 0, V: 3}}); err != nil {
		t.Fatal(err)
	}
	ng := st.Graph()
	var found bool
	for _, e := range edgeSet(ng) {
		if ng.OrigID(e[0]) == 3 && ng.OrigID(e[1]) == 0 || ng.OrigID(e[0]) == 0 && ng.OrigID(e[1]) == 3 {
			found = true
		}
	}
	if !found {
		t.Fatal("edge (0,3) in original IDs not found after insert")
	}
}

// TestCompactionPreservesFormat: a store opened from a compressed (v2) edge
// file must compact back to v2 on Close, and the compacted file must carry
// the updated graph — the open/update/close/reopen cycle keeps both the
// layout and the data.
func TestCompactionPreservesFormat(t *testing.T) {
	for _, format := range []int{semiext.FormatV1, semiext.FormatV2} {
		t.Run(fmt.Sprintf("v%d", format), func(t *testing.T) {
			rng := rand.New(rand.NewSource(17))
			path := filepath.Join(t.TempDir(), "g.edges")
			g := randomGraph(rng, 30)
			if err := semiext.WriteEdgeFileFormat(path, g, format); err != nil {
				t.Fatal(err)
			}
			st, err := Open(path)
			if err != nil {
				t.Fatal(err)
			}
			ctx := context.Background()
			for i := 0; i < 3; i++ {
				if _, err := st.ApplyUpdates(ctx, randomBatch(rng, st.Graph(), 10)); err != nil {
					t.Fatal(err)
				}
			}
			want := fingerprint(t, st.Graph())
			if err := st.Close(); err != nil {
				t.Fatal(err)
			}
			r, err := semiext.OpenReader(path)
			if err != nil {
				t.Fatal(err)
			}
			if r.Format() != format {
				t.Fatalf("compacted file has format v%d, want v%d", r.Format(), format)
			}
			r.Close()
			re, err := Open(path)
			if err != nil {
				t.Fatal(err)
			}
			defer re.Close()
			if got := fingerprint(t, re.Graph()); got != want {
				t.Fatal("compacted store diverges from pre-close state")
			}
		})
	}
}
